// Package repro is a Go reproduction of "Approximate Closest Community
// Search in Networks" (Huang, Lakshmanan, Yu, Cheng; PVLDB 2015). Given an
// undirected graph and a set of query vertices Q, it finds a Closest Truss
// Community (CTC): a connected k-truss containing Q with the largest
// possible k and, among those, small diameter.
//
// The root package is a thin facade over the internal implementation. The
// unified query entry point is Search — one validated Request in, one
// Result (community + per-query stats) out, with context cancellation
// threaded through every phase of the pipeline:
//
//	g, _ := repro.LoadEdgeList(f)         // or repro.GenerateNetwork("dblp")
//	c := repro.Open(g)                    // builds the truss index
//	res, _ := c.Search(ctx, repro.Request{Q: q})                    // LCTC default
//	res, _ = c.Search(ctx, repro.Request{Q: q, Algo: repro.AlgoBasic})
//	items, _ := c.SearchBatch(ctx, reqs)  // many queries, one workspace
//
// The per-algorithm helpers remain as one-line wrappers over Search:
//
//	community, _ := c.LCTC(q, nil)        // fast local heuristic
//	community, _ = c.Basic(q, nil)        // 2-approximation (Theorem 3)
//	community, _ = c.BulkDelete(q, nil)   // (2+ε)-approx, much faster
//
// See README.md ("Query API") for the Request/Result shapes, cancellation
// granularity and batch semantics, and EXPERIMENTS.md for the reproduction
// of every table and figure of the paper.
package repro

import (
	"context"
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/directed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prob"
	"repro/internal/quality"
	"repro/internal/tcp"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// Re-exported types. Communities, options and graphs returned by this
// package are the internal types; callers interact with them through their
// exported methods.
type (
	// Graph is an immutable undirected simple graph.
	Graph = graph.Graph
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Community is a discovered closest truss community.
	Community = core.Community
	// Options tunes the legacy per-algorithm wrappers (fixed k, η, γ,
	// verification, timeout). New code should build a Request instead.
	Options = core.Options
	// Request is one validated community-search query: query vertices,
	// algorithm, and explicit parameters (no sentinel encodings).
	Request = core.Request
	// Result is a Search answer: the Community plus per-query Stats.
	Result = core.Result
	// QueryStats reports how one query executed (phase timings, snapshot
	// epoch, edges touched, peel rounds, workspace reuse).
	QueryStats = core.QueryStats
	// BatchItem is one request's outcome inside SearchBatch.
	BatchItem = core.BatchItem
	// Algo selects the search algorithm of a Request.
	Algo = core.Algo
	// DistanceMode selects LCTC's Steiner-seed metric (truss-penalty or
	// plain hop distance), replacing the old Gamma = -1 sentinel.
	DistanceMode = core.DistanceMode
	// Index is the compact truss index of §4.3 of the paper.
	Index = trussindex.Index
	// BaselineResult is a community found by the MDC/QDC baselines.
	BaselineResult = baseline.Result
	// MDCOptions tunes the minimum-degree (Cocktail Party) baseline.
	MDCOptions = baseline.MDCOptions
	// QDCOptions tunes the query-biased densest subgraph baseline.
	QDCOptions = baseline.QDCOptions
)

// Algorithm selectors for Request.Algo.
const (
	// AlgoLCTC is the local-exploration heuristic (Algorithm 5), the
	// recommended default (zero value).
	AlgoLCTC = core.AlgoLCTC
	// AlgoBasic is the greedy 2-approximation (Algorithm 1).
	AlgoBasic = core.AlgoBasic
	// AlgoBulkDelete is the batched (2+ε)-approximation (Algorithm 4).
	AlgoBulkDelete = core.AlgoBulkDelete
	// AlgoTrussOnly returns G0 without free-rider removal (Algorithm 2).
	AlgoTrussOnly = core.AlgoTrussOnly
	// AlgoDTruss is the directed (kc, kf)-D-truss model; Request.K sets
	// the flow level kf, Request.Direction the edge orientation.
	AlgoDTruss = core.AlgoDTruss
	// AlgoProbTruss is the probabilistic (k,γ)-truss model over synthetic
	// edge probabilities; Request.MinProb sets γ.
	AlgoProbTruss = core.AlgoProbTruss
	// AlgoMDC is the minimum-degree-community baseline.
	AlgoMDC = core.AlgoMDC
	// AlgoQDC is the query-biased densest-subgraph baseline.
	AlgoQDC = core.AlgoQDC
)

// DirectionMode selects AlgoDTruss's edge orientation.
type DirectionMode = core.DirectionMode

// Direction modes for Request.Direction.
const (
	// DirBoth orients every undirected edge as two opposing arcs (the
	// default, zero value).
	DirBoth = core.DirBoth
	// DirLowHigh orients each edge from its lower to its higher endpoint.
	DirLowHigh = core.DirLowHigh
	// DirHighLow orients each edge from its higher to its lower endpoint.
	DirHighLow = core.DirHighLow
	// DirHash picks each edge's arc direction by endpoint hash.
	DirHash = core.DirHash
)

// Distance modes for Request.DistanceMode.
const (
	// DistTrussPenalty is the paper's truss distance with penalty
	// Request.Gamma (0 = default 3). The zero value.
	DistTrussPenalty = core.DistTrussPenalty
	// DistHop is plain hop distance (γ = 0; Request.Gamma must be 0).
	DistHop = core.DistHop
)

// Typed request-validation errors returned by Search; match with errors.Is.
var (
	// ErrEmptyQuery: the request has no query vertices.
	ErrEmptyQuery = core.ErrEmptyQuery
	// ErrVertexOutOfRange: a query vertex is negative or >= Graph.N().
	ErrVertexOutOfRange = core.ErrVertexOutOfRange
	// ErrBadParam: a tuning parameter is outside its domain.
	ErrBadParam = core.ErrBadParam
)

// ParseAlgo maps the wire/CLI spellings (see AlgoSpellings; "" = LCTC)
// onto an Algo.
func ParseAlgo(s string) (Algo, error) { return core.ParseAlgo(s) }

// ParseDirection maps the wire/CLI spellings ("both", "lowhigh",
// "highlow", "hash"; "" = both) onto a DirectionMode.
func ParseDirection(s string) (DirectionMode, error) { return core.ParseDirection(s) }

// AlgoNames lists the canonical display names of every registered
// algorithm, in Algo order.
func AlgoNames() []string { return core.AlgoNames() }

// AlgoSpellings lists every spelling ParseAlgo accepts, comma-separated —
// the single source for CLI usage strings and error messages.
func AlgoSpellings() string { return core.AlgoSpellings() }

// NewBuilder returns a graph builder with capacity hints.
func NewBuilder(n, m int) *Builder { return graph.NewBuilder(n, m) }

// FromEdges builds a graph over vertices 0..n-1 from an edge list.
func FromEdges(n int, edges [][2]int) *Graph { return graph.FromEdges(n, edges) }

// LoadEdgeList parses a whitespace-separated "u v" edge list with '#'
// comments.
func LoadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// SaveEdgeList writes a graph in the LoadEdgeList format.
func SaveEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// GenerateNetwork builds one of the six synthetic analogues of the paper's
// datasets: "facebook", "amazon", "dblp", "youtube", "livejournal", "orkut".
// The ground-truth communities are nil for facebook.
func GenerateNetwork(name string) (*Graph, [][]int, error) {
	nw, err := gen.NetworkByName(name)
	if err != nil {
		return nil, nil, err
	}
	return nw.Graph(), nw.GroundTruth(), nil
}

// Client answers closest-truss-community queries over one graph.
type Client struct {
	s *core.Searcher
	g *Graph
}

// Open builds the truss index for g (O(ρ·m), see Remark 1 of the paper)
// and returns a query client. The cold decomposition is the parallel
// level-synchronous peel on graphs above truss.ParallelThreshold edges, so
// Open scales with GOMAXPROCS.
func Open(g *Graph) *Client {
	return &Client{s: core.NewSearcher(trussindex.Build(g)), g: g}
}

// OpenIndex restores a client from a serialized index (see SaveIndex).
func OpenIndex(r io.Reader) (*Client, error) {
	ix, err := trussindex.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return &Client{s: core.NewSearcher(ix), g: ix.Graph()}, nil
}

// SaveIndex serializes the truss index, returning the byte count.
func (c *Client) SaveIndex(w io.Writer) (int64, error) { return c.s.Index().WriteTo(w) }

// Graph returns the indexed graph.
func (c *Client) Graph() *Graph { return c.g }

// MaxTrussness returns τ̄(∅), the largest edge trussness in the graph.
func (c *Client) MaxTrussness() int { return int(c.s.Index().MaxTruss()) }

// VertexTrussness returns τ(v), the largest trussness of a subgraph
// containing v.
func (c *Client) VertexTrussness(v int) int { return int(c.s.Index().VertexTruss(v)) }

// Search answers one community-search request: validate, dispatch on
// req.Algo, and return the community with per-query stats. ctx cancellation
// and deadlines are polled at peel-round/BFS-level granularity through
// every phase (FindG0, Steiner seed, expansion, extraction, peeling), so
// cancelling an in-flight query returns context.Canceled /
// context.DeadlineExceeded promptly. Safe for any number of concurrent
// callers.
func (c *Client) Search(ctx context.Context, req Request) (*Result, error) {
	return c.s.Search(ctx, req)
}

// SearchBatch answers the requests in order on one pooled query workspace,
// amortizing workspace checkout across the batch. Each request fails or
// succeeds alone; a ctx cancellation fails the not-yet-run tail.
func (c *Client) SearchBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	return c.s.SearchBatch(ctx, reqs)
}

// Basic runs Algorithm 1: the greedy 2-approximation that repeatedly
// removes the vertex furthest from the query. Exact on trussness,
// diam ≤ 2·OPT (Theorem 3), but the slowest method. One-line wrapper over
// Search (AlgoBasic).
func (c *Client) Basic(q []int, opt *Options) (*Community, error) { return c.s.Basic(q, opt) }

// BulkDelete runs Algorithm 4: batch deletion of all far vertices per
// iteration. (2+ε)-approximation with ε = 2/diam(OPT) (Theorem 6). One-line
// wrapper over Search (AlgoBulkDelete).
func (c *Client) BulkDelete(q []int, opt *Options) (*Community, error) {
	return c.s.BulkDelete(q, opt)
}

// LCTC runs Algorithm 5: the local-exploration heuristic seeded by a
// truss-distance Steiner tree. The recommended default. One-line wrapper
// over Search (AlgoLCTC).
func (c *Client) LCTC(q []int, opt *Options) (*Community, error) { return c.s.LCTC(q, opt) }

// TrussOnly returns G0, the maximal connected k-truss containing Q with the
// largest k, without free-rider removal (Algorithm 2 / the "Truss"
// baseline). One-line wrapper over Search (AlgoTrussOnly).
func (c *Client) TrussOnly(q []int, opt *Options) (*Community, error) {
	return c.s.TrussOnly(q, opt)
}

// MDC runs the minimum-degree (Cocktail Party) baseline of Sozio & Gionis.
func (c *Client) MDC(q []int, opt *MDCOptions) (*BaselineResult, error) {
	return baseline.MDC(c.g, q, opt)
}

// QDC runs the query-biased densest subgraph baseline of Wu et al.
func (c *Client) QDC(q []int, opt *QDCOptions) (*BaselineResult, error) {
	return baseline.QDC(c.g, q, opt)
}

// TCPCommunity is a triangle-connected k-truss community (the prior model
// of Huang et al. SIGMOD 2014 this paper improves on).
type TCPCommunity = tcp.Community

// TCP searches for a triangle-connected k-truss community containing all
// query vertices at the largest feasible k. Unlike the CTC searches, this
// can fail even for connected queries (the paper's §1 motivation): triangle
// connectivity is strictly stronger than connectivity.
func (c *Client) TCP(q []int) (*TCPCommunity, error) {
	return tcp.MaxSearchMulti(c.g, c.s.Index().Decomposition(), q)
}

// Dynamic maintains a truss decomposition under edge insertions and
// deletions (the incremental machinery of the paper's reference [17]).
type Dynamic = truss.Dynamic

// OpenDynamic wraps g in a dynamically-maintained truss decomposition (the
// initial build is the same parallel cold path as Open).
// After updates, call Freeze to obtain a Client over the current graph.
func OpenDynamic(g *Graph) *Dynamic { return truss.NewDynamic(g) }

// FreezeDynamic converts the current state of a dynamic decomposition into
// a query client without re-running the decomposition.
func FreezeDynamic(dy *Dynamic) *Client {
	g := dy.Graph().Freeze()
	ix := trussindex.BuildFromDecomposition(g, dy.Snapshot())
	return &Client{s: core.NewSearcher(ix), g: g}
}

// F1 scores a detected community against a ground-truth community.
func F1(detected, truth []int) float64 { return quality.F1(detected, truth) }

// WriteDOT renders a community subgraph in Graphviz DOT format with the
// given vertices highlighted (vertex → fill color).
func WriteDOT(w io.Writer, sub *graph.Mutable, highlight map[int]string) error {
	return graph.WriteDOT(w, sub, &graph.DOTOptions{Name: "community", Highlight: highlight})
}

// Probabilistic-graph extension (§8 future work; see internal/prob).
type (
	// ProbGraph is an undirected graph with independent edge probabilities.
	ProbGraph = prob.Graph
	// ProbCommunity is a (k,γ)-truss community on an uncertain graph.
	ProbCommunity = prob.Community
)

// NewProbGraph attaches edge probabilities (nil entries default to 1) to g.
func NewProbGraph(g *Graph, probs map[graph.EdgeKey]float64) (*ProbGraph, error) {
	return prob.NewGraph(g, probs)
}

// ProbSearch finds a connected (k,γ)-truss containing q with the largest k
// and greedily minimized query distance on an uncertain graph.
func ProbSearch(pg *ProbGraph, q []int, gamma float64) (*ProbCommunity, error) {
	return prob.Search(pg, q, gamma)
}

// EdgeKey packs an undirected edge (used as the probability-map key).
type EdgeKey = graph.EdgeKey

// Key builds the EdgeKey for (u, v).
func Key(u, v int) EdgeKey { return graph.Key(u, v) }

// Directed-graph extension (§8 future work; see internal/directed).
type (
	// DiGraph is a simple directed graph.
	DiGraph = directed.DiGraph
	// DiBuilder accumulates arcs.
	DiBuilder = directed.DiBuilder
	// DirectedCommunity is a (kc,kf)-D-truss community.
	DirectedCommunity = directed.Community
)

// NewDiBuilder returns a directed-graph builder.
func NewDiBuilder(n int) *DiBuilder { return directed.NewDiBuilder(n) }

// DirectedSearch finds a closest D-truss community: the connected
// (kc, kf)-D-truss containing q with the largest cycle-support kc for the
// given flow-support requirement kf, shrunk toward the query.
func DirectedSearch(g *DiGraph, q []int, kf int) (*DirectedCommunity, error) {
	return directed.Search(g, q, kf)
}
