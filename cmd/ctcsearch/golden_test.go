package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from the current output")

// durationRe matches the elapsed-time tokens in the CLI output ("built in
// 1.2ms", "community in 345µs"), the only non-deterministic part of a run.
var durationRe = regexp.MustCompile(`\bin [0-9][^ \n)]*`)

func normalizeOutput(b []byte) []byte {
	return durationRe.ReplaceAll(b, []byte("in <dur>"))
}

// TestGoldenOutput is the end-to-end CLI-layer test: it runs a full search
// over the committed fixture graph (the paper's Figure 1(a)) and compares
// the complete normalized report — graph header, index line, community
// stats, member list — against a checked-in golden file per algorithm.
// Regenerate with: go test ./cmd/ctcsearch/ -run TestGoldenOutput -update-golden
func TestGoldenOutput(t *testing.T) {
	fixture := filepath.Join("testdata", "fixture.txt")
	for _, tc := range []struct {
		algo   string
		golden string
	}{
		{"lctc", "golden_lctc.txt"},
		{"truss", "golden_truss.txt"},
		{"basic", "golden_basic.txt"},
	} {
		var buf bytes.Buffer
		if err := run(&buf, fixture, "", "0,1,2", tc.algo, "", 0, 0, 0, 0, 0, true, true, ""); err != nil {
			t.Fatalf("%s: %v", tc.algo, err)
		}
		got := normalizeOutput(buf.Bytes())
		path := filepath.Join("testdata", tc.golden)
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update-golden): %v", tc.algo, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: output diverged from %s\n--- got ---\n%s--- want ---\n%s",
				tc.algo, path, got, want)
		}
	}
}

// TestGoldenNormalization pins the normalizer itself so a regression there
// cannot silently make the golden comparison vacuous.
func TestGoldenNormalization(t *testing.T) {
	in := "truss index built in 1.234ms (max trussness 4)\nLCTC found a 4-truss community in 567µs\n"
	want := "truss index built in <dur> (max trussness 4)\nLCTC found a 4-truss community in <dur>\n"
	if got := string(normalizeOutput([]byte(in))); got != want {
		t.Fatalf("normalize:\n got %q\nwant %q", got, want)
	}
}
