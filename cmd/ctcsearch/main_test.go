package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestParseQuery(t *testing.T) {
	q, err := parseQuery("1, 2,3")
	if err != nil || len(q) != 3 || q[0] != 1 || q[2] != 3 {
		t.Fatalf("q=%v err=%v", q, err)
	}
	if _, err := parseQuery(""); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := parseQuery("1,x"); err == nil {
		t.Fatal("junk query accepted")
	}
}

func writeTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	content := "# test graph: K5 plus pendant\n0 1\n0 2\n0 3\n0 4\n1 2\n1 3\n1 4\n2 3\n2 4\n3 4\n4 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGraph(t *testing.T) {
	path := writeTempGraph(t)
	g, err := loadGraph(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 6 || g.M() != 11 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if _, err := loadGraph("", ""); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadGraph(path, "dblp"); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadGraph("/does/not/exist", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadGraph("", "nonesuch"); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := writeTempGraph(t)
	for _, algo := range []string{"lctc", "basic", "bd", "truss", "dtruss", "prob", "mdc", "qdc"} {
		if err := run(io.Discard, path, "", "0,1", algo, "", 0, 0, 0, 0, 0, true, true, ""); err != nil {
			t.Fatalf("algo %s: %v", algo, err)
		}
	}
	// Model parameters thread through the flags.
	if err := run(io.Discard, path, "", "0,1", "dtruss", "hash", 0, 0, 0, 0, 0, false, true, ""); err != nil {
		t.Fatalf("dtruss hash: %v", err)
	}
	if err := run(io.Discard, path, "", "0,1", "prob", "", 0, 0, 0, 0.6, 0, false, true, ""); err != nil {
		t.Fatalf("prob minprob: %v", err)
	}
	if err := run(io.Discard, path, "", "0,1", "dtruss", "sideways", 0, 0, 0, 0, 0, false, false, ""); err == nil {
		t.Fatal("unknown direction accepted")
	}
	if err := run(io.Discard, path, "", "0,1", "nope", "", 0, 0, 0, 0, 0, false, false, ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(io.Discard, path, "", "", "lctc", "", 0, 0, 0, 0, 0, false, false, ""); err == nil {
		t.Fatal("missing query accepted")
	}
	// Fixed-k and LCTC knobs.
	if err := run(io.Discard, path, "", "0,1", "lctc", "", 3, 50, 2, 0, 0, false, true, filepath.Join(t.TempDir(), "c.dot")); err != nil {
		t.Fatalf("fixed-k run: %v", err)
	}
	// Infeasible fixed k.
	if err := run(io.Discard, path, "", "0,5", "basic", "", 5, 0, 0, 0, 0, false, false, ""); err == nil {
		t.Fatal("infeasible k accepted")
	}
}
