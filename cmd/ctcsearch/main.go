// Command ctcsearch answers closest-truss-community queries over an edge
// list or a generated synthetic network.
//
// Usage:
//
//	ctcsearch -graph graph.txt -q 12,35,77 [-algo lctc|basic|bd|truss|dtruss|prob|mdc|qdc] \
//	          [-k K] [-eta N] [-gamma G] [-direction MODE] [-minprob P] [-v]
//	ctcsearch -network dblp -q 12,35,77
//
// It prints the community's trussness, size, density, query distance and
// diameter, and optionally the member vertices.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (\"u v\" lines, # comments)")
		network   = flag.String("network", "", "synthetic network name (facebook, amazon, dblp, youtube, livejournal, orkut)")
		queryStr  = flag.String("q", "", "comma-separated query vertex IDs (required)")
		algo      = flag.String("algo", "lctc", "algorithm: "+repro.AlgoSpellings())
		fixedK    = flag.Int("k", 0, "fixed trussness k (0 = maximize; kf for dtruss)")
		eta       = flag.Int("eta", 0, "LCTC expansion budget η (0 = default 1000)")
		gamma     = flag.Float64("gamma", 0, "LCTC truss-distance penalty γ (0 = default 3)")
		direction = flag.String("direction", "", "dtruss edge orientation: both, lowhigh, highlow, hash")
		minProb   = flag.Float64("minprob", 0, "prob truss confidence threshold γ in (0,1] (0 = default 0.5)")
		timeout   = flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
		members   = flag.Bool("members", false, "print the community's vertex IDs")
		dotPath   = flag.String("dot", "", "write the community as a Graphviz DOT file")
		verify    = flag.Bool("v", false, "verify the result is a connected k-truss containing Q")
	)
	flag.Parse()
	if err := run(os.Stdout, *graphPath, *network, *queryStr, *algo, *direction, *fixedK, *eta, *gamma, *minProb, *timeout, *members, *verify, *dotPath); err != nil {
		fmt.Fprintln(os.Stderr, "ctcsearch:", err)
		os.Exit(1)
	}
}

// run executes one search and writes the human-readable report to out (an
// explicit writer so the end-to-end golden test can capture and normalize
// the CLI's output).
func run(out io.Writer, graphPath, network, queryStr, algo, direction string, fixedK, eta int,
	gamma, minProb float64, timeout time.Duration, members, verify bool, dotPath string) error {
	q, err := parseQuery(queryStr)
	if err != nil {
		return err
	}
	g, err := loadGraph(graphPath, network)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: %d vertices, %d edges\n", g.N(), g.M())
	start := time.Now()
	client := repro.Open(g)
	fmt.Fprintf(out, "truss index built in %v (max trussness %d)\n", time.Since(start).Round(time.Millisecond), client.MaxTrussness())
	// One request for every algorithm: the CLI decodes its flags into the
	// unified Request and calls Search. The historical -gamma -1 spelling
	// maps onto the explicit hop-distance mode; -timeout becomes a context
	// deadline that cancels the search mid-phase.
	req := repro.Request{Q: q, K: int32(fixedK), Eta: eta, MinProb: minProb, Verify: verify}
	if gamma < 0 {
		req.DistanceMode = repro.DistHop
	} else {
		req.Gamma = gamma
	}
	var err2 error
	req.Algo, err2 = repro.ParseAlgo(strings.ToLower(algo))
	if err2 != nil {
		return err2 // registry-derived: names every accepted spelling
	}
	req.Direction, err2 = repro.ParseDirection(strings.ToLower(direction))
	if err2 != nil {
		return err2
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start = time.Now()
	res, err := client.Search(ctx, req)
	if err != nil {
		return err
	}
	c := &res.Community
	elapsed := time.Since(start)
	fmt.Fprintf(out, "%s found a %d-truss community in %v\n", c.Algorithm, c.K, elapsed.Round(time.Microsecond))
	fmt.Fprintf(out, "  vertices:       %d\n", c.N())
	fmt.Fprintf(out, "  edges:          %d\n", c.M())
	fmt.Fprintf(out, "  density:        %.3f\n", c.Density())
	fmt.Fprintf(out, "  query distance: %d\n", c.QueryDist())
	fmt.Fprintf(out, "  diameter:       %d\n", c.Diameter())
	if members {
		fmt.Fprintf(out, "  members:        %v\n", c.Vertices())
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		highlight := map[int]string{}
		for _, v := range c.Vertices() {
			highlight[v] = "lightblue"
		}
		for _, v := range q {
			highlight[v] = "gold"
		}
		if err := repro.WriteDOT(f, c.Subgraph(), highlight); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n", dotPath)
	}
	return nil
}

func parseQuery(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -q (comma-separated vertex IDs)")
	}
	parts := strings.Split(s, ",")
	q := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad query vertex %q: %v", p, err)
		}
		q = append(q, v)
	}
	return q, nil
}

func loadGraph(graphPath, network string) (*repro.Graph, error) {
	switch {
	case graphPath != "" && network != "":
		return nil, fmt.Errorf("use either -graph or -network, not both")
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return repro.LoadEdgeList(f)
	case network != "":
		g, _, err := repro.GenerateNetwork(network)
		return g, err
	default:
		return nil, fmt.Errorf("need -graph FILE or -network NAME")
	}
}
