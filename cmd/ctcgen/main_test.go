package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run(true, "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(false, "", "", ""); err == nil {
		t.Fatal("missing network accepted")
	}
	if err := run(false, "nonesuch", "", ""); err == nil {
		t.Fatal("unknown network accepted")
	}
	// facebook has no ground truth: asking for it must fail.
	dir := t.TempDir()
	err := run(false, "facebook", filepath.Join(dir, "g.txt"), filepath.Join(dir, "t.txt"))
	if err == nil || !strings.Contains(err.Error(), "ground-truth") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	gPath := filepath.Join(dir, "amazon.txt")
	tPath := filepath.Join(dir, "amazon.gt")
	if err := run(false, "amazon", gPath, tPath); err != nil {
		t.Fatal(err)
	}
	gBytes, err := os.ReadFile(gPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(gBytes), "# undirected graph:") {
		t.Fatal("edge list header missing")
	}
	tBytes, err := os.ReadFile(tPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(tBytes)), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d ground-truth lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "#") {
		t.Fatal("ground truth header missing")
	}
}
