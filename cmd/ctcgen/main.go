// Command ctcgen generates the synthetic network analogues (and their
// ground-truth communities) used by the experiments, writing standard edge
// lists that ctcsearch and any other tool can consume.
//
// Usage:
//
//	ctcgen -list
//	ctcgen -network dblp -out dblp.txt [-truth dblp-communities.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/gen"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available networks with statistics")
		network = flag.String("network", "", "network to generate")
		out     = flag.String("out", "", "edge-list output file (default stdout)")
		truth   = flag.String("truth", "", "also write ground-truth communities to this file")
	)
	flag.Parse()
	if err := run(*list, *network, *out, *truth); err != nil {
		fmt.Fprintln(os.Stderr, "ctcgen:", err)
		os.Exit(1)
	}
}

func run(list bool, network, out, truth string) error {
	if list {
		fmt.Println("available networks (synthetic analogues of the paper's Table 2):")
		for _, nw := range gen.SharedNetworks() {
			g := nw.Graph()
			gt := "-"
			if nw.HasGroundTruth {
				gt = fmt.Sprintf("%d communities", len(nw.GroundTruth()))
			}
			fmt.Printf("  %-12s |V|=%-7d |E|=%-8d dmax=%-6d ground truth: %s\n",
				nw.Name, g.N(), g.M(), g.MaxDegree(), gt)
		}
		return nil
	}
	if network == "" {
		return fmt.Errorf("need -network NAME or -list")
	}
	g, comms, err := repro.GenerateNetwork(network)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := repro.SaveEdgeList(w, g); err != nil {
		return err
	}
	if out != "" {
		fmt.Printf("wrote %s: %d vertices, %d edges\n", out, g.N(), g.M())
	}
	if truth != "" {
		if comms == nil {
			return fmt.Errorf("network %s has no ground-truth communities", network)
		}
		f, err := os.Create(truth)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		fmt.Fprintf(bw, "# %d ground-truth communities, one per line\n", len(comms))
		for _, c := range comms {
			for i, v := range c {
				if i > 0 {
					fmt.Fprint(bw, " ")
				}
				fmt.Fprint(bw, v)
			}
			fmt.Fprintln(bw)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d communities\n", truth, len(comms))
	}
	return nil
}
