package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
)

// mixedResult is the JSON artifact of the mixed read/write stress
// (BENCH_pr3.json records one run per tracked configuration).
type mixedResult struct {
	Network         string  `json:"network"`
	N               int     `json:"n"`
	M               int     `json:"m"`
	Workers         int     `json:"workers"`
	DurationS       float64 `json:"duration_s"`
	UpdateRate      int     `json:"update_rate_target_per_s"`
	UpdatesEnqueued int64   `json:"updates_enqueued"`
	Queries         int64   `json:"queries"`
	NoCommunity     int64   `json:"no_community"`
	QPS             float64 `json:"qps"`
	P50US           int64   `json:"query_p50_us"`
	P90US           int64   `json:"query_p90_us"`
	P99US           int64   `json:"query_p99_us"`
	MaxUS           int64   `json:"query_max_us"`
	Epochs          int64   `json:"epochs_published"`
	FullRebuilds    int64   `json:"full_rebuilds"`
	MaxSnapAgeMS    float64 `json:"max_snapshot_age_ms"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	GoVersion       string  `json:"go_version"`
}

// runMixed drives the serving scenario end to end: one serve.Manager
// ingesting a sustained stream of edge deletions and re-insertions while
// `workers` goroutines run LCTC queries against whatever snapshot
// they acquire — queries never block on the writer (the acquire path is an
// atomic load plus a refcount CAS). Per-query latencies are recorded and
// reported as percentiles; with benchOut != "" the result is written as
// JSON (the BENCH_pr3.json artifact).
func runMixed(workers int, dur time.Duration, netName string, rate int, seed uint64, benchOut string, out io.Writer) error {
	if rate <= 0 {
		return fmt.Errorf("-mixed-rate must be positive, got %d", rate)
	}
	nw, err := gen.NetworkByName(netName)
	if err != nil {
		return err
	}
	g := nw.Graph()
	fmt.Fprintf(out, "mixed: network %s (n=%d m=%d), building epoch 1...\n", netName, g.N(), g.M())
	t0 := time.Now()
	mgr := serve.NewManager(g, serve.Options{
		QueueSize:       4096,
		PublishDirty:    128,
		PublishInterval: 50 * time.Millisecond,
	})
	defer mgr.Close()
	fmt.Fprintf(out, "mixed: epoch 1 published in %v\n", time.Since(t0))

	if seed == 0 {
		seed = 0x7B
	}
	rng := gen.NewRNG(seed)
	var queries [][]int
	for _, q := range gen.QueriesFromGroundTruth(rng, nw.GroundTruth(), 64, 2, 4) {
		queries = append(queries, q.Q)
	}
	for len(queries) < 64 { // no (or few) ground-truth communities: random
		queries = append(queries, gen.RandomQuery(g, rng, 2))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Updater: delete random live edges at the target rate, re-inserting
	// parked ones so the graph hovers near its original density. Each wake
	// enqueues the full deficit (elapsed*rate - sent) rather than one op per
	// tick, so missed ticks under CPU contention do not silently lower the
	// offered rate; Apply's backpressure bounds the burst.
	var updatesEnqueued atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		urng := gen.NewRNG(seed ^ 0xDEAD)
		keys := g.EdgeKeys()
		var parked []int
		iv := time.Second / time.Duration(rate)
		if iv <= 0 {
			iv = time.Nanosecond
		}
		tick := time.NewTicker(iv)
		defer tick.Stop()
		t0 := time.Now()
		sent := int64(0)
		for !stop.Load() {
			<-tick.C
			target := int64(time.Since(t0).Seconds() * float64(rate))
			for ; sent < target && !stop.Load(); sent++ {
				var up serve.Update
				if len(parked) > 512 || (len(parked) > 0 && urng.Intn(2) == 0) {
					i := parked[0]
					parked = parked[1:]
					u, v := keys[i].Endpoints()
					up = serve.Update{Op: serve.OpAdd, U: u, V: v}
				} else {
					i := urng.Intn(len(keys))
					u, v := keys[i].Endpoints()
					up = serve.Update{Op: serve.OpRemove, U: u, V: v}
					parked = append(parked, i)
				}
				if err := mgr.Apply(up); err != nil {
					return
				}
				updatesEnqueued.Add(1)
			}
		}
	}()

	// Snapshot-age watermark, sampled by a poller.
	var maxAgeUS atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			st := mgr.Stats()
			if age := st.SnapshotAge.Microseconds(); age > maxAgeUS.Load() {
				maxAgeUS.Store(age)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Query workers: LCTC (the paper's serving algorithm, same as the
	// read-only -throughput mode) through the unified serve-layer entry
	// point — acquire snapshot, Search, release — recording every latency.
	lats := make([][]int64, workers)
	var noComm atomic.Int64
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]int64, 0, 4096)
			for i := w; !stop.Load(); i++ {
				req := core.Request{Q: queries[i%len(queries)]}
				q0 := time.Now()
				_, err := mgr.Query(ctx, req)
				buf = append(buf, time.Since(q0).Microseconds())
				if err != nil {
					noComm.Add(1)
				}
			}
			lats[w] = buf
		}(w)
	}

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	st := mgr.Stats()

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no queries completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 { return all[int(p*float64(len(all)-1))] }

	res := mixedResult{
		Network:         netName,
		N:               g.N(),
		M:               g.M(),
		Workers:         workers,
		DurationS:       elapsed.Seconds(),
		UpdateRate:      rate,
		UpdatesEnqueued: updatesEnqueued.Load(),
		Queries:         int64(len(all)),
		NoCommunity:     noComm.Load(),
		QPS:             float64(len(all)) / elapsed.Seconds(),
		P50US:           pct(0.50),
		P90US:           pct(0.90),
		P99US:           pct(0.99),
		MaxUS:           all[len(all)-1],
		Epochs:          st.Epoch,
		FullRebuilds:    st.FullRebuilds,
		MaxSnapAgeMS:    float64(maxAgeUS.Load()) / 1000,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		GoVersion:       runtime.Version(),
	}
	fmt.Fprintf(out, "mixed: %d workers + 1 updater, %v: %d queries (%.1f q/s, %d no-community), %d updates enqueued\n",
		workers, elapsed.Round(time.Millisecond), res.Queries, res.QPS, res.NoCommunity, res.UpdatesEnqueued)
	fmt.Fprintf(out, "mixed: query latency p50=%dus p90=%dus p99=%dus max=%dus\n",
		res.P50US, res.P90US, res.P99US, res.MaxUS)
	fmt.Fprintf(out, "mixed: %d epochs published (%d full rebuilds), max snapshot age %.1fms\n",
		res.Epochs, res.FullRebuilds, res.MaxSnapAgeMS)
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			PR          int         `json:"pr"`
			Title       string      `json:"title"`
			Description string      `json:"description"`
			Reproduce   string      `json:"how_to_reproduce"`
			Result      mixedResult `json:"mixed_load"`
		}{
			PR:          3,
			Title:       "Live serving: epoch-snapshot index manager under mixed read/write load",
			Description: "Query latency with concurrent streaming edge updates; queries acquire immutable snapshots lock-free and never block on the writer.",
			Reproduce:   fmt.Sprintf("go run ./cmd/ctcbench -mixed %d -mixed-dur %s -mixed-net %s -mixed-rate %d -bench-out BENCH_pr3.json", workers, dur, netName, rate),
			Result:      res,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "mixed: wrote %s\n", benchOut)
	}
	return nil
}
