package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

// mixedResult is the JSON artifact of the mixed read/write stress
// (BENCH_pr3.json records one run per tracked configuration;
// BENCH_pr6.json records one per durability configuration).
type mixedResult struct {
	Network    string `json:"network"`
	Durability string `json:"durability"` // none | wal-nosync | wal-fsync
	// Shards is the partitioned-tier width; absent (1) = single manager.
	// In sharded runs an update to a cut edge applies on both endpoint
	// homes, so updates_applied can exceed updates_enqueued.
	Shards          int     `json:"shards,omitempty"`
	N               int     `json:"n"`
	M               int     `json:"m"`
	Workers         int     `json:"workers"`
	DurationS       float64 `json:"duration_s"`
	UpdateRate      int     `json:"update_rate_target_per_s"`
	UpdatesEnqueued int64   `json:"updates_enqueued"`
	UpdatesApplied  int64   `json:"updates_applied"`
	Queries         int64   `json:"queries"`
	NoCommunity     int64   `json:"no_community"`
	QPS             float64 `json:"qps"`
	P50US           int64   `json:"query_p50_us"`
	P90US           int64   `json:"query_p90_us"`
	P99US           int64   `json:"query_p99_us"`
	MaxUS           int64   `json:"query_max_us"`
	Epochs          int64   `json:"epochs_published"`
	FullRebuilds    int64   `json:"full_rebuilds"`
	MaxSnapAgeMS    float64 `json:"max_snapshot_age_ms"`
	WALAppends      int64   `json:"wal_appends,omitempty"`
	WALSyncs        int64   `json:"wal_syncs,omitempty"`
	WALBytes        int64   `json:"wal_bytes,omitempty"`
	WALLastFsyncUS  int64   `json:"wal_last_fsync_us,omitempty"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	GoVersion       string  `json:"go_version"`
}

// mixedBackend is the serving plane one stress run drives: a single
// serve.Manager, or the sharded tier's scatter-gather router.
type mixedBackend interface {
	Query(ctx context.Context, req core.Request) (*core.Result, error)
	Apply(up serve.Update) error
	Stats() serve.Stats
	Close()
}

// newMixedBackend builds the serving plane for one configuration: a single
// manager (shards <= 1) or a shard.Router over the same graph, each either
// plain in-memory ("none") or durable with the WAL directory under a temp
// dir — "wal-nosync" appends without fsync (group-commit bookkeeping
// only), "wal-fsync" is the full durability path (per shard, in sharded
// runs). cleanup removes the WAL directory after Close.
func newMixedBackend(durability string, shards int, g *graph.Graph, ixBase func() (*trussindex.Index, error), opts serve.Options) (b mixedBackend, cleanup func(), err error) {
	walDir := ""
	cleanup = func() {}
	switch durability {
	case "", "none":
	case "wal-nosync", "wal-fsync":
		walDir, err = os.MkdirTemp("", "ctcbench-wal-*")
		if err != nil {
			return nil, nil, err
		}
		cleanup = func() { os.RemoveAll(walDir) }
	default:
		return nil, nil, fmt.Errorf("unknown durability mode %q", durability)
	}
	walOpts := wal.Options{NoSync: durability == "wal-nosync"}

	if shards > 1 {
		r, err := shard.New(g, shard.Config{
			Shards: shards,
			Seed:   9,
			Serve:  opts,
			WALDir: walDir,
			WAL:    walOpts,
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return r, cleanup, nil
	}
	if walDir == "" {
		ix, err := ixBase()
		if err != nil {
			return nil, nil, err
		}
		return serve.NewManagerFromIndex(ix, opts), cleanup, nil
	}
	m, _, err := serve.OpenDurable(walDir, ixBase, walOpts, opts)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return m, cleanup, nil
}

// runMixedOnce drives the serving scenario end to end: one serve.Manager
// ingesting a sustained stream of edge deletions and re-insertions while
// `workers` goroutines run LCTC queries against whatever snapshot they
// acquire — queries never block on the writer (the acquire path is an
// atomic load plus a refcount CAS). Per-query latencies are recorded and
// reported as percentiles.
func runMixedOnce(workers int, dur time.Duration, netName, durability string, rate, shards int, seed uint64, out io.Writer) (mixedResult, error) {
	var res mixedResult
	if rate <= 0 {
		return res, fmt.Errorf("-mixed-rate must be positive, got %d", rate)
	}
	nw, err := gen.NetworkByName(netName)
	if err != nil {
		return res, err
	}
	g := nw.Graph()
	fmt.Fprintf(out, "mixed[%s]: network %s (n=%d m=%d, shards=%d), building epoch 1...\n", durability, netName, g.N(), g.M(), shards)
	t0 := time.Now()
	mgr, cleanup, err := newMixedBackend(durability, shards, g, func() (*trussindex.Index, error) {
		return trussindex.BuildFromDecomposition(g, truss.Decompose(g)), nil
	}, serve.Options{
		QueueSize:       4096,
		PublishDirty:    128,
		PublishInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer cleanup()
	defer mgr.Close()
	fmt.Fprintf(out, "mixed[%s]: epoch 1 published in %v\n", durability, time.Since(t0))

	if seed == 0 {
		seed = 0x7B
	}
	rng := gen.NewRNG(seed)
	var queries [][]int
	for _, q := range gen.QueriesFromGroundTruth(rng, nw.GroundTruth(), 64, 2, 4) {
		queries = append(queries, q.Q)
	}
	for len(queries) < 64 { // no (or few) ground-truth communities: random
		queries = append(queries, gen.RandomQuery(g, rng, 2))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Updater: delete random live edges at the target rate, re-inserting
	// parked ones so the graph hovers near its original density. Each wake
	// enqueues the full deficit (elapsed*rate - sent) rather than one op per
	// tick, so missed ticks under CPU contention do not silently lower the
	// offered rate; Apply's backpressure bounds the burst — and with a WAL,
	// that backpressure now includes the fsync cost of each group commit,
	// which is exactly the overhead this mode measures.
	var updatesEnqueued atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		urng := gen.NewRNG(seed ^ 0xDEAD)
		keys := g.EdgeKeys()
		var parked []int
		iv := time.Second / time.Duration(rate)
		if iv <= 0 {
			iv = time.Nanosecond
		}
		tick := time.NewTicker(iv)
		defer tick.Stop()
		t0 := time.Now()
		sent := int64(0)
		for !stop.Load() {
			<-tick.C
			target := int64(time.Since(t0).Seconds() * float64(rate))
			for ; sent < target && !stop.Load(); sent++ {
				var up serve.Update
				if len(parked) > 512 || (len(parked) > 0 && urng.Intn(2) == 0) {
					i := parked[0]
					parked = parked[1:]
					u, v := keys[i].Endpoints()
					up = serve.Update{Op: serve.OpAdd, U: u, V: v}
				} else {
					i := urng.Intn(len(keys))
					u, v := keys[i].Endpoints()
					up = serve.Update{Op: serve.OpRemove, U: u, V: v}
					parked = append(parked, i)
				}
				if err := mgr.Apply(up); err != nil {
					return
				}
				updatesEnqueued.Add(1)
			}
		}
	}()

	// Snapshot-age watermark, sampled by a poller.
	var maxAgeUS atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			st := mgr.Stats()
			if age := st.SnapshotAge.Microseconds(); age > maxAgeUS.Load() {
				maxAgeUS.Store(age)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Query workers: LCTC (the paper's serving algorithm, same as the
	// read-only -throughput mode) through the unified serve-layer entry
	// point — acquire snapshot, Search, release — recording every latency.
	lats := make([][]int64, workers)
	var noComm atomic.Int64
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]int64, 0, 4096)
			for i := w; !stop.Load(); i++ {
				req := core.Request{Q: queries[i%len(queries)]}
				q0 := time.Now()
				_, err := mgr.Query(ctx, req)
				buf = append(buf, time.Since(q0).Microseconds())
				if err != nil {
					noComm.Add(1)
				}
			}
			lats[w] = buf
		}(w)
	}

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	st := mgr.Stats()
	if st.Degraded {
		return res, fmt.Errorf("manager degraded during the run: %s", st.WALLastError)
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return res, fmt.Errorf("no queries completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 { return all[int(p*float64(len(all)-1))] }

	durName := durability
	if durName == "" {
		durName = "none"
	}
	resShards := 0
	if shards > 1 {
		resShards = shards
	}
	res = mixedResult{
		Network:         netName,
		Durability:      durName,
		Shards:          resShards,
		N:               g.N(),
		M:               g.M(),
		Workers:         workers,
		DurationS:       elapsed.Seconds(),
		UpdateRate:      rate,
		UpdatesEnqueued: updatesEnqueued.Load(),
		UpdatesApplied:  st.Adds + st.Removes,
		Queries:         int64(len(all)),
		NoCommunity:     noComm.Load(),
		QPS:             float64(len(all)) / elapsed.Seconds(),
		P50US:           pct(0.50),
		P90US:           pct(0.90),
		P99US:           pct(0.99),
		MaxUS:           all[len(all)-1],
		Epochs:          st.Epoch,
		FullRebuilds:    st.FullRebuilds,
		MaxSnapAgeMS:    float64(maxAgeUS.Load()) / 1000,
		WALAppends:      st.WALAppends,
		WALSyncs:        st.WALSyncs,
		WALBytes:        st.WALBytes,
		WALLastFsyncUS:  st.WALLastFsyncUS,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		GoVersion:       runtime.Version(),
	}
	fmt.Fprintf(out, "mixed[%s]: %d workers + 1 updater, %v: %d queries (%.1f q/s, %d no-community), %d updates enqueued\n",
		durName, workers, elapsed.Round(time.Millisecond), res.Queries, res.QPS, res.NoCommunity, res.UpdatesEnqueued)
	fmt.Fprintf(out, "mixed[%s]: query latency p50=%dus p90=%dus p99=%dus max=%dus\n",
		durName, res.P50US, res.P90US, res.P99US, res.MaxUS)
	fmt.Fprintf(out, "mixed[%s]: %d epochs published (%d full rebuilds), max snapshot age %.1fms\n",
		durName, res.Epochs, res.FullRebuilds, res.MaxSnapAgeMS)
	if res.WALSyncs > 0 {
		fmt.Fprintf(out, "mixed[%s]: wal %d appends, %d group commits, %d bytes\n",
			durName, res.WALAppends, res.WALSyncs, res.WALBytes)
	}
	return res, nil
}

func writeBenchArtifact(path string, v any, out io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mixed: wrote %s\n", path)
	return nil
}

// runMixed is the -mixed entry point. Without walCompare it runs the plain
// in-memory configuration (the PR-3 artifact shape; with -shards > 1 the
// sharded tier's PR-10 shape, comparing the single-manager baseline against
// the scatter-gather router on identical load). With walCompare it runs the
// same stress three times — no WAL, WAL without fsync, WAL with fsync — and
// records all three in one artifact, so the fsync cost of the durability
// path is measured against the append cost and the baseline on identical
// load.
func runMixed(workers int, dur time.Duration, netName string, rate, shards int, seed uint64, benchOut string, walCompare bool, out io.Writer) error {
	if walCompare && shards > 1 {
		return fmt.Errorf("-wal and -shards are separate comparisons; run them one at a time")
	}
	if !walCompare && shards > 1 {
		baseline, err := runMixedOnce(workers, dur, netName, "none", rate, 1, seed, out)
		if err != nil {
			return err
		}
		res, err := runMixedOnce(workers, dur, netName, "none", rate, shards, seed, out)
		if err != nil {
			return err
		}
		if baseline.QPS > 0 {
			fmt.Fprintf(out, "mixed: sharding overhead (%d shards vs 1): qps %.1f%%, query p50 %+d us, p99 %+d us\n",
				shards, 100*res.QPS/baseline.QPS, res.P50US-baseline.P50US, res.P99US-baseline.P99US)
		}
		if benchOut == "" {
			return nil
		}
		return writeBenchArtifact(benchOut, struct {
			PR          int           `json:"pr"`
			Title       string        `json:"title"`
			Description string        `json:"description"`
			Reproduce   string        `json:"how_to_reproduce"`
			Caveat      string        `json:"caveat"`
			Results     []mixedResult `json:"sharding_configs"`
		}{
			PR:          10,
			Title:       "Sharded serving tier: partitioned managers behind a scatter-gather router",
			Description: "The mixed read/write stress against a single manager and against the sharded tier on identical load: queries scatter to the shards owning the query vertices, gather the exact connected component across shard snapshots, and recompute the k-truss of the union; updates split to the endpoint home shards. The latency delta bounds the scatter-gather merge cost in one process.",
			Reproduce:   fmt.Sprintf("go run ./cmd/ctcbench -mixed %d -mixed-dur %s -mixed-net %s -mixed-rate %d -shards %d -bench-out BENCH_pr10.json", workers, dur, netName, rate, shards),
			Caveat:      "Recorded on a small shared CI runner (often 1 vCPU): in-process sharding cannot parallelize there, so absolute numbers are noisy and the router's merge overhead is an upper bound; read the two configurations relative to each other.",
			Results:     []mixedResult{baseline, res},
		}, out)
	}
	if !walCompare {
		res, err := runMixedOnce(workers, dur, netName, "none", rate, 1, seed, out)
		if err != nil {
			return err
		}
		if benchOut == "" {
			return nil
		}
		return writeBenchArtifact(benchOut, struct {
			PR          int         `json:"pr"`
			Title       string      `json:"title"`
			Description string      `json:"description"`
			Reproduce   string      `json:"how_to_reproduce"`
			Result      mixedResult `json:"mixed_load"`
		}{
			PR:          3,
			Title:       "Live serving: epoch-snapshot index manager under mixed read/write load",
			Description: "Query latency with concurrent streaming edge updates; queries acquire immutable snapshots lock-free and never block on the writer.",
			Reproduce:   fmt.Sprintf("go run ./cmd/ctcbench -mixed %d -mixed-dur %s -mixed-net %s -mixed-rate %d -bench-out BENCH_pr3.json", workers, dur, netName, rate),
			Result:      res,
		}, out)
	}

	var results []mixedResult
	for _, durability := range []string{"none", "wal-nosync", "wal-fsync"} {
		res, err := runMixedOnce(workers, dur, netName, durability, rate, 1, seed, out)
		if err != nil {
			return fmt.Errorf("durability %s: %w", durability, err)
		}
		results = append(results, res)
	}
	baseline, fsync := results[0], results[2]
	if baseline.UpdatesApplied > 0 {
		fmt.Fprintf(out, "mixed: durability overhead (fsync vs none): applied-update throughput %.1f%%, query p50 %+d us, p99 %+d us\n",
			100*float64(fsync.UpdatesApplied)/float64(baseline.UpdatesApplied),
			fsync.P50US-baseline.P50US, fsync.P99US-baseline.P99US)
	}
	if benchOut == "" {
		return nil
	}
	return writeBenchArtifact(benchOut, struct {
		PR          int           `json:"pr"`
		Title       string        `json:"title"`
		Description string        `json:"description"`
		Reproduce   string        `json:"how_to_reproduce"`
		Caveat      string        `json:"caveat"`
		Results     []mixedResult `json:"durability_configs"`
	}{
		PR:          6,
		Title:       "Durable serving: write-ahead log overhead under mixed read/write load",
		Description: "The same mixed stress in three durability configurations: no WAL, WAL appends without fsync, and full group-commit fsync. Updates are only acknowledged after their batch is durable in the fsync configuration, so the applied-update throughput delta and query-latency percentiles bound the cost of crash safety.",
		Reproduce:   fmt.Sprintf("go run ./cmd/ctcbench -mixed %d -mixed-dur %s -mixed-net %s -mixed-rate %d -wal -bench-out BENCH_pr6.json", workers, dur, netName, rate),
		Caveat:      "Recorded on a small shared CI runner (often 1 vCPU): absolute numbers are noisy and fsync latency reflects the runner's storage, not production hardware; read the three configurations relative to each other.",
		Results:     results,
	}, out)
}
