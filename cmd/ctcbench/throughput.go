package main

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trussindex"
)

// runThroughput drives `workers` goroutines of LCTC queries against one
// shared truss index for `dur`, the many-simultaneous-users serving
// scenario. Each worker cycles through ground-truth-derived queries; the
// pooled query workspaces mean the steady state allocates almost nothing,
// so this doubles as a soak test for the concurrency contract.
func runThroughput(workers int, dur time.Duration, netName string, seed uint64, out io.Writer) error {
	nw, err := gen.NetworkByName(netName)
	if err != nil {
		return err
	}
	g := nw.Graph()
	fmt.Fprintf(out, "throughput: network %s (n=%d m=%d), building index...\n", netName, g.N(), g.M())
	t0 := time.Now()
	ix := trussindex.Build(g)
	fmt.Fprintf(out, "throughput: index built in %v\n", time.Since(t0))
	s := core.NewSearcher(ix)

	if seed == 0 {
		seed = 0x7B
	}
	rng := gen.NewRNG(seed)
	gtq := gen.QueriesFromGroundTruth(rng, nw.GroundTruth(), 64, 2, 4)
	if len(gtq) == 0 {
		return fmt.Errorf("network %s has no usable ground-truth queries", netName)
	}
	queries := make([][]int, len(gtq))
	for i, q := range gtq {
		queries[i] = q.Q
	}

	var done atomic.Bool
	counts := make([]int64, workers)
	failures := make([]int64, workers)
	var wg sync.WaitGroup
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !done.Load(); i++ {
				req := core.Request{Q: queries[i%len(queries)]}
				if _, err := s.Search(ctx, req); err != nil {
					failures[w]++
				}
				counts[w]++
			}
		}(w)
	}
	time.Sleep(dur)
	done.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var total, failed int64
	for w := 0; w < workers; w++ {
		total += counts[w]
		failed += failures[w]
	}
	qps := float64(total) / elapsed.Seconds()
	fmt.Fprintf(out, "throughput: %d workers, %v elapsed: %d queries (%d failed), %.1f q/s aggregate, %.1f q/s per worker\n",
		workers, elapsed.Round(time.Millisecond), total, failed, qps, qps/float64(workers))
	return nil
}
