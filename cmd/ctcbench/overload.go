package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/steiner"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// The overload-injection harness: drives the serve.Manager's query plane
// past capacity on purpose and asserts the robustness invariants of the
// admission layer hold. Phases:
//
//  1. baseline — closed loop at the concurrency limit, no contention:
//     measures unloaded p50/p99 and sustainable QPS, and calibrates the
//     cost estimator;
//  2. burst — open loop at -overload-factor × sustainable QPS from N
//     tenants (t0 offered at double weight) with per-request deadlines of
//     2× unloaded p99, while an updater keeps publishing epochs: admitted
//     latency stays bounded by the deadline (shedding is what makes that
//     true), every shed request gets a typed ErrOverloaded, and no tenant
//     is starved below 1/(2N) of admitted capacity;
//  3. storm — 10k concurrent tight-deadline requests against a saturated
//     gate: mass rejection must be cheap and leak-free;
//  4. cache — a primed request is re-issued while the gate is saturated:
//     the epoch-keyed cache answers it without consuming capacity.
//
// After the phases drain, the workspace-leak invariant is checked from
// /stats: queries_admitted == queries_executed (a shed request that
// consumed a snapshot or a pooled workspace would break the equality),
// inflight and queue depth back to zero, one live snapshot. Any violation
// makes the run exit nonzero, so CI can gate on it.

type overloadBaseline struct {
	Workers int     `json:"workers"`
	Queries int64   `json:"queries"`
	QPS     float64 `json:"qps"`
	P50US   int64   `json:"p50_us"`
	P99US   int64   `json:"p99_us"`
}

type overloadTenant struct {
	Offered        int64 `json:"offered"`
	OK             int64 `json:"ok"`
	Shed           int64 `json:"shed_typed"`
	Deadline       int64 `json:"deadline_or_canceled"`
	NoCommunity    int64 `json:"no_community"`
	Other          int64 `json:"other_errors"`
	AdmittedServer int64 `json:"admitted_server"`
	RejectedServer int64 `json:"rejected_server"`
}

type overloadBurst struct {
	DurationS        float64                   `json:"duration_s"`
	Factor           float64                   `json:"factor"`
	OfferedQPSTarget float64                   `json:"offered_qps_target"`
	DeadlineUS       int64                     `json:"request_deadline_us"`
	Offered          int64                     `json:"offered"`
	OK               int64                     `json:"ok"`
	Shed             int64                     `json:"shed_typed"`
	Deadline         int64                     `json:"deadline_or_canceled"`
	NoCommunity      int64                     `json:"no_community"`
	Other            int64                     `json:"other_errors"`
	AdmittedP50US    int64                     `json:"admitted_p50_us"`
	AdmittedP99US    int64                     `json:"admitted_p99_us"`
	P99BoundUS       int64                     `json:"admitted_p99_bound_us"`
	MaxRetryAfterUS  int64                     `json:"max_retry_after_us"`
	FairShareFloor   float64                   `json:"fair_share_floor"`
	Tenants          map[string]overloadTenant `json:"tenants"`
}

type overloadStorm struct {
	Requests           int   `json:"requests"`
	OK                 int64 `json:"ok"`
	Shed               int64 `json:"shed_typed"`
	Deadline           int64 `json:"deadline_or_canceled"`
	NoCommunity        int64 `json:"no_community"`
	Other              int64 `json:"other_errors"`
	ShedDeadlineServer int64 `json:"shed_deadline_server"`
	ShedQueueServer    int64 `json:"shed_queue_full_server"`
}

type overloadCache struct {
	Hit          bool  `json:"hit_under_saturation"`
	HitLatencyUS int64 `json:"hit_latency_us"`
	Hits         int64 `json:"cache_hits_total"`
	Misses       int64 `json:"cache_misses_total"`
}

type overloadFinal struct {
	Admitted      int64 `json:"queries_admitted"`
	Executed      int64 `json:"queries_executed"`
	Inflight      int   `json:"query_inflight"`
	QueueDepth    int   `json:"query_queue_depth"`
	LiveSnapshots int64 `json:"live_snapshots"`
	Epochs        int64 `json:"epochs_published"`
}

type overloadResult struct {
	Network     string           `json:"network"`
	N           int              `json:"n"`
	M           int              `json:"m"`
	MaxInflight int              `json:"max_inflight"`
	AdmitQueue  int              `json:"admit_queue"`
	Baseline    overloadBaseline `json:"baseline"`
	Burst       overloadBurst    `json:"burst"`
	Storm       overloadStorm    `json:"storm"`
	Cache       overloadCache    `json:"cache"`
	Final       overloadFinal    `json:"final"`
	Violations  []string         `json:"violations"`
	Pass        bool             `json:"pass"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	GoVersion   string           `json:"go_version"`
}

// outcomeCounters classifies query outcomes from the client's point of
// view; "deadline" covers both a queued request whose context fired and an
// admitted query terminated mid-peel — the client cannot tell them apart,
// which is exactly why shed requests must carry a *typed* error instead.
type outcomeCounters struct {
	offered, ok, shed, deadline, noComm, other atomic.Int64
}

func (o *outcomeCounters) record(err error) {
	switch {
	case err == nil:
		o.ok.Add(1)
	case errors.Is(err, serve.ErrOverloaded):
		o.shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		o.deadline.Add(1)
	case errors.Is(err, trussindex.ErrNoCommunity), errors.Is(err, truss.ErrNoCommunity),
		errors.Is(err, steiner.ErrDisconnected):
		o.noComm.Add(1)
	default:
		o.other.Add(1)
	}
}

// latSink collects per-request latencies concurrently and reports
// percentiles over the sorted set.
type latSink struct {
	mu sync.Mutex
	us []int64
}

func (s *latSink) add(d time.Duration) {
	s.mu.Lock()
	s.us = append(s.us, d.Microseconds())
	s.mu.Unlock()
}

func (s *latSink) sorted() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]int64(nil), s.us...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pctUS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// runOverload is the -overload entry point: build the manager, run the four
// phases, check the invariants, optionally write the artifact, and return
// an error (nonzero exit) if any invariant was violated.
func runOverload(tenants int, dur time.Duration, netName string, factor float64, seed uint64, benchOut string, out io.Writer) error {
	if tenants < 2 {
		tenants = 4
	}
	if factor < 1 {
		factor = 4
	}
	nw, err := gen.NetworkByName(netName)
	if err != nil {
		return err
	}
	g := nw.Graph()
	limit := 2 * runtime.GOMAXPROCS(0)
	const admitQueue = 256
	fmt.Fprintf(out, "overload: network %s (n=%d m=%d), limit=%d queue=%d, building epoch 1...\n",
		netName, g.N(), g.M(), limit, admitQueue)
	mgr := serve.NewManagerFromIndex(
		trussindex.BuildFromDecomposition(g, truss.Decompose(g)),
		serve.Options{
			QueueSize:       4096,
			PublishDirty:    128,
			PublishInterval: 50 * time.Millisecond,
			Admission: admit.Config{
				MaxConcurrent: limit,
				QueueSize:     admitQueue,
			},
		})
	defer mgr.Close()

	if seed == 0 {
		seed = 0x7B
	}
	rng := gen.NewRNG(seed)
	var queries [][]int
	for _, q := range gen.QueriesFromGroundTruth(rng, nw.GroundTruth(), 64, 2, 4) {
		queries = append(queries, q.Q)
	}
	for len(queries) < 64 {
		queries = append(queries, gen.RandomQuery(g, rng, 2))
	}
	// mkReq cache-busts by rotating Eta through distinct values: every
	// request gets a distinct canonical cache key, so the load phases
	// measure real executions, not cache hits (the cache gets its own
	// dedicated phase).
	mkReq := func(i int64, tenant string) core.Request {
		return core.Request{Q: queries[int(i)%len(queries)], Eta: 1 + int(i%997), Tenant: tenant}
	}

	res := overloadResult{
		Network:     netName,
		N:           g.N(),
		M:           g.M(),
		MaxInflight: limit,
		AdmitQueue:  admitQueue,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	bg := context.Background()

	// Phase 1: unloaded baseline — closed loop at exactly the concurrency
	// limit, so the gate never queues and never sheds. Measures the
	// sustainable rate and the unloaded latency distribution, and every
	// completion calibrates the estimator's ns-per-unit.
	var (
		baseLats  latSink
		baseStop  atomic.Bool
		baseWG    sync.WaitGroup
		baseCount atomic.Int64
	)
	b0 := time.Now()
	for w := 0; w < limit; w++ {
		baseWG.Add(1)
		go func(w int) {
			defer baseWG.Done()
			for i := int64(w); !baseStop.Load(); i += int64(limit) {
				q0 := time.Now()
				_, err := mgr.Query(bg, mkReq(i, "base"))
				if err == nil || errors.Is(err, trussindex.ErrNoCommunity) ||
					errors.Is(err, truss.ErrNoCommunity) || errors.Is(err, steiner.ErrDisconnected) {
					baseLats.add(time.Since(q0))
					baseCount.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(dur)
	baseStop.Store(true)
	baseWG.Wait()
	baseElapsed := time.Since(b0)
	bl := baseLats.sorted()
	if len(bl) == 0 {
		return fmt.Errorf("overload: baseline completed no queries")
	}
	res.Baseline = overloadBaseline{
		Workers: limit,
		Queries: baseCount.Load(),
		QPS:     float64(baseCount.Load()) / baseElapsed.Seconds(),
		P50US:   pctUS(bl, 0.50),
		P99US:   pctUS(bl, 0.99),
	}
	fmt.Fprintf(out, "overload: baseline %d queries in %v (%.0f q/s), p50=%dus p99=%dus\n",
		res.Baseline.Queries, baseElapsed.Round(time.Millisecond), res.Baseline.QPS,
		res.Baseline.P50US, res.Baseline.P99US)

	// Phase 2: open-loop burst at factor × the sustainable rate, N tenants
	// with t0 offered at double weight, per-request deadline tied to the
	// unloaded p99 — so bounded admitted latency is enforced by the
	// deadline-aware gate (requests that could not meet it are shed), not
	// by hoping the backlog stays short.
	deadline := 2 * time.Duration(res.Baseline.P99US) * time.Microsecond
	if deadline < 5*time.Millisecond {
		deadline = 5 * time.Millisecond // floor out 1-vCPU scheduling noise
	}
	offered := factor * res.Baseline.QPS
	if offered > 20000 {
		offered = 20000 // cap harness overhead; still far past capacity
	}
	var (
		burstWG, reqWG sync.WaitGroup
		burstStop      atomic.Bool
		burstLats      latSink
		maxRetryAfter  atomic.Int64
		shedConcrete   atomic.Int64 // sheds carrying a concrete *OverloadError
		tenantOut      = make([]outcomeCounters, tenants)
	)
	totalWeight := float64(tenants + 1) // t0 counts twice

	// Updater: keeps epochs publishing during the burst (cache entries from
	// the burst are invalidated under it; the writer is genuinely busy).
	updStop := make(chan struct{})
	burstWG.Add(1)
	go func() {
		defer burstWG.Done()
		urng := gen.NewRNG(seed ^ 0xDEAD)
		keys := g.EdgeKeys()
		var parked []int
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-updStop:
				return
			case <-tick.C:
				if len(parked) > 0 {
					i := parked[0]
					parked = parked[1:]
					u, v := keys[i].Endpoints()
					_ = mgr.Apply(serve.Update{Op: serve.OpAdd, U: u, V: v})
				} else {
					i := urng.Intn(len(keys))
					u, v := keys[i].Endpoints()
					_ = mgr.Apply(serve.Update{Op: serve.OpRemove, U: u, V: v})
					parked = append(parked, i)
				}
			}
		}
	}()

	fmt.Fprintf(out, "overload: burst %.0f q/s offered (%.1fx) across %d tenants, deadline %v\n",
		offered, factor, tenants, deadline)
	burst0 := time.Now()
	for t := 0; t < tenants; t++ {
		weight := 1.0
		if t == 0 {
			weight = 2.0 // the hot tenant
		}
		rate := offered * weight / totalWeight
		burstWG.Add(1)
		go func(t int, rate float64) {
			defer burstWG.Done()
			name := fmt.Sprintf("t%d", t)
			oc := &tenantOut[t]
			iv := time.Duration(float64(time.Second) / rate)
			if iv < 100*time.Microsecond {
				iv = 100 * time.Microsecond
			}
			tick := time.NewTicker(iv)
			defer tick.Stop()
			t0 := time.Now()
			var sent int64
			for !burstStop.Load() {
				<-tick.C
				target := int64(time.Since(t0).Seconds() * rate)
				for ; sent < target && !burstStop.Load(); sent++ {
					oc.offered.Add(1)
					reqWG.Add(1)
					go func(i int64) {
						defer reqWG.Done()
						ctx, cancel := context.WithTimeout(bg, deadline)
						defer cancel()
						q0 := time.Now()
						_, err := mgr.Query(ctx, mkReq(i*int64(tenants)+int64(t), name))
						lat := time.Since(q0)
						oc.record(err)
						if err == nil {
							burstLats.add(lat)
						}
						var oe *admit.OverloadError
						if errors.As(err, &oe) {
							shedConcrete.Add(1)
							if ra := oe.RetryAfter.Microseconds(); ra > maxRetryAfter.Load() {
								maxRetryAfter.Store(ra)
							}
						}
					}(sent)
				}
			}
		}(t, rate)
	}
	time.Sleep(dur)
	burstStop.Store(true)
	close(updStop)
	burstWG.Wait()
	reqWG.Wait()
	burstElapsed := time.Since(burst0)
	if err := mgr.Flush(); err != nil {
		return fmt.Errorf("overload: flush after burst: %w", err)
	}

	stB := mgr.Stats()
	res.Burst = overloadBurst{
		DurationS:        burstElapsed.Seconds(),
		Factor:           factor,
		OfferedQPSTarget: offered,
		DeadlineUS:       deadline.Microseconds(),
		MaxRetryAfterUS:  maxRetryAfter.Load(),
		FairShareFloor:   1 / float64(2*tenants),
		Tenants:          make(map[string]overloadTenant, tenants),
	}
	var burstAdmittedServer int64
	for t := 0; t < tenants; t++ {
		name := fmt.Sprintf("t%d", t)
		oc := &tenantOut[t]
		tc := stB.Tenants[name]
		res.Burst.Tenants[name] = overloadTenant{
			Offered:        oc.offered.Load(),
			OK:             oc.ok.Load(),
			Shed:           oc.shed.Load(),
			Deadline:       oc.deadline.Load(),
			NoCommunity:    oc.noComm.Load(),
			Other:          oc.other.Load(),
			AdmittedServer: tc.Admitted,
			RejectedServer: tc.Rejected,
		}
		res.Burst.Offered += oc.offered.Load()
		res.Burst.OK += oc.ok.Load()
		res.Burst.Shed += oc.shed.Load()
		res.Burst.Deadline += oc.deadline.Load()
		res.Burst.NoCommunity += oc.noComm.Load()
		res.Burst.Other += oc.other.Load()
		burstAdmittedServer += tc.Admitted
	}
	bls := burstLats.sorted()
	res.Burst.AdmittedP50US = pctUS(bls, 0.50)
	res.Burst.AdmittedP99US = pctUS(bls, 0.99)
	// The bound: an admitted completion finished inside its deadline, plus
	// one unloaded service time of grace — a query that crosses its deadline
	// mid-peel only notices at the next cancellation check, so it can
	// complete up to roughly one query runtime late (plus 1-vCPU scheduling
	// noise, floored at 10ms).
	grace := time.Duration(res.Baseline.P99US) * time.Microsecond
	if grace < 10*time.Millisecond {
		grace = 10 * time.Millisecond
	}
	res.Burst.P99BoundUS = (deadline + grace).Microseconds()
	fmt.Fprintf(out, "overload: burst offered=%d ok=%d shed=%d deadline=%d no-comm=%d other=%d; admitted p50=%dus p99=%dus (bound %dus)\n",
		res.Burst.Offered, res.Burst.OK, res.Burst.Shed, res.Burst.Deadline,
		res.Burst.NoCommunity, res.Burst.Other, res.Burst.AdmittedP50US,
		res.Burst.AdmittedP99US, res.Burst.P99BoundUS)

	// Burst invariants.
	if res.Burst.OK == 0 {
		violate("burst: no admitted request completed")
	} else if res.Burst.AdmittedP99US > res.Burst.P99BoundUS {
		violate("burst: admitted p99 %dus exceeds bound %dus", res.Burst.AdmittedP99US, res.Burst.P99BoundUS)
	}
	if res.Burst.Shed == 0 {
		violate("burst: offered %.0f q/s (%.1fx sustainable) shed nothing — gate not engaging", offered, factor)
	}
	if res.Burst.Other > 0 {
		violate("burst: %d requests failed outside the typed error taxonomy", res.Burst.Other)
	}
	if got := shedConcrete.Load(); got != res.Burst.Shed {
		violate("burst: %d/%d shed requests lacked the concrete *OverloadError (Retry-After hint)", res.Burst.Shed-got, res.Burst.Shed)
	}
	if burstAdmittedServer > 0 {
		floor := int64(res.Burst.FairShareFloor * float64(burstAdmittedServer))
		for name, tc := range res.Burst.Tenants {
			if tc.AdmittedServer < floor {
				violate("burst: tenant %s admitted %d < fair-share floor %d (1/%d of %d)",
					name, tc.AdmittedServer, floor, 2*tenants, burstAdmittedServer)
			}
		}
	}

	// Phase 3: rejection storm — saturate the gate with blocker tenants,
	// then throw 10k concurrent tight-deadline requests at it. Mass
	// rejection must be cheap (typed errors, not timeouts held open) and
	// must not leak: none of the rejected requests may touch a snapshot
	// refcount or a pooled workspace (checked at the end via
	// queries_admitted == queries_executed).
	const stormN = 10000
	blkCtx, blkCancel := context.WithCancel(bg)
	var blkWG sync.WaitGroup
	for w := 0; w < limit; w++ {
		blkWG.Add(1)
		go func(w int) {
			defer blkWG.Done()
			for i := int64(w); blkCtx.Err() == nil; i += int64(limit) {
				_, _ = mgr.Query(blkCtx, mkReq(i+1_000_000, "blk"))
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let the blockers occupy the slots
	preStorm := mgr.Stats()
	var stormOut outcomeCounters
	stormBudgets := []time.Duration{200 * time.Microsecond, 500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}
	var stormWG sync.WaitGroup
	s0 := time.Now()
	for i := 0; i < stormN; i++ {
		stormWG.Add(1)
		go func(i int) {
			defer stormWG.Done()
			ctx, cancel := context.WithTimeout(bg, stormBudgets[i%len(stormBudgets)])
			defer cancel()
			_, err := mgr.Query(ctx, mkReq(int64(i)+2_000_000, "storm"))
			stormOut.record(err)
		}(i)
	}
	stormWG.Wait()
	stormElapsed := time.Since(s0)
	blkCancel()
	blkWG.Wait()
	stS := mgr.Stats()
	res.Storm = overloadStorm{
		Requests:           stormN,
		OK:                 stormOut.ok.Load(),
		Shed:               stormOut.shed.Load(),
		Deadline:           stormOut.deadline.Load(),
		NoCommunity:        stormOut.noComm.Load(),
		Other:              stormOut.other.Load(),
		ShedDeadlineServer: stS.ShedDeadline - preStorm.ShedDeadline,
		ShedQueueServer:    stS.ShedQueueFull - preStorm.ShedQueueFull,
	}
	fmt.Fprintf(out, "overload: storm %d requests in %v: shed=%d (server: %d deadline + %d queue-full), ok=%d deadline=%d no-comm=%d other=%d\n",
		stormN, stormElapsed.Round(time.Millisecond), res.Storm.Shed,
		res.Storm.ShedDeadlineServer, res.Storm.ShedQueueServer,
		res.Storm.OK, res.Storm.Deadline, res.Storm.NoCommunity, res.Storm.Other)
	if res.Storm.Shed < stormN/2 {
		violate("storm: only %d/%d requests shed with typed errors", res.Storm.Shed, stormN)
	}
	if res.Storm.Other > 0 {
		violate("storm: %d requests failed outside the typed error taxonomy", res.Storm.Other)
	}

	// Phase 4: cache hits under saturation. Prime an entry at the (now
	// stable — the updater is stopped and flushed) current epoch, saturate
	// the gate again, and re-issue the primed request: it must be served
	// from the cache, without waiting on the gate, well inside a deadline
	// that a queued execution could not meet.
	var prime core.Request
	for i := range queries {
		prime = core.Request{Q: queries[i], Eta: 777, Tenant: "cache"}
		if _, err := mgr.Query(bg, prime); err == nil {
			break
		}
		prime.Q = nil
	}
	if prime.Q == nil {
		violate("cache: no query in the pool succeeds; cannot prime")
	} else {
		blkCtx2, blkCancel2 := context.WithCancel(bg)
		var blkWG2 sync.WaitGroup
		for w := 0; w < limit; w++ {
			blkWG2.Add(1)
			go func(w int) {
				defer blkWG2.Done()
				for i := int64(w); blkCtx2.Err() == nil; i += int64(limit) {
					_, _ = mgr.Query(blkCtx2, mkReq(i+3_000_000, "blk"))
				}
			}(w)
		}
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithTimeout(bg, 250*time.Millisecond)
		q0 := time.Now()
		r, err := mgr.Query(ctx, prime)
		lat := time.Since(q0)
		cancel()
		blkCancel2()
		blkWG2.Wait()
		switch {
		case err != nil:
			violate("cache: primed request failed under saturation: %v", err)
		case !r.Stats.CacheHit:
			violate("cache: primed request was re-executed, not served from cache")
		case lat > 100*time.Millisecond:
			violate("cache: hit took %v under saturation", lat)
		default:
			res.Cache.Hit = true
			res.Cache.HitLatencyUS = lat.Microseconds()
		}
	}

	// Drain and check the terminal invariants.
	deadlineAt := time.Now().Add(10 * time.Second)
	var st serve.Stats
	for {
		st = mgr.Stats()
		if (st.QueryInflight == 0 && st.QueryQueueDepth == 0) || time.Now().After(deadlineAt) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.Cache.Hits = st.CacheHits
	res.Cache.Misses = st.CacheMisses
	res.Final = overloadFinal{
		Admitted:      st.QueriesAdmitted,
		Executed:      st.QueriesExecuted,
		Inflight:      st.QueryInflight,
		QueueDepth:    st.QueryQueueDepth,
		LiveSnapshots: st.LiveSnapshots,
		Epochs:        st.Epoch,
	}
	if st.QueriesAdmitted != st.QueriesExecuted {
		violate("leak: queries_admitted=%d != queries_executed=%d — a shed or canceled request consumed capacity",
			st.QueriesAdmitted, st.QueriesExecuted)
	}
	if st.QueryInflight != 0 || st.QueryQueueDepth != 0 {
		violate("leak: gate did not drain (inflight=%d queue=%d)", st.QueryInflight, st.QueryQueueDepth)
	}
	if st.LiveSnapshots != 1 {
		violate("leak: %d live snapshots after drain, want 1", st.LiveSnapshots)
	}

	res.Pass = len(res.Violations) == 0
	if res.Pass {
		fmt.Fprintf(out, "overload: PASS — admitted==executed (%d), gate drained, 1 live snapshot, cache hit %dus under saturation\n",
			res.Final.Admitted, res.Cache.HitLatencyUS)
	} else {
		for _, v := range res.Violations {
			fmt.Fprintf(out, "overload: VIOLATION: %s\n", v)
		}
	}
	if benchOut != "" {
		artifact := struct {
			PR          int            `json:"pr"`
			Title       string         `json:"title"`
			Description string         `json:"description"`
			Reproduce   string         `json:"how_to_reproduce"`
			Caveat      string         `json:"caveat"`
			Result      overloadResult `json:"overload"`
		}{
			PR:          7,
			Title:       "Overload-safe query plane: admission control, deadline-aware shedding, per-tenant fairness, epoch-keyed result cache",
			Description: "Baseline calibration, an open-loop multi-tenant burst past sustainable capacity, a 10k-request rejection storm against a saturated gate, and a cache-hit check under saturation. Invariants: admitted p99 bounded by the per-request deadline (2x unloaded p99, floored at 5ms), every shed request gets a typed ErrOverloaded with a Retry-After hint, no tenant starved below 1/(2N) of admitted capacity, queries_admitted == queries_executed after drain (rejections consume no snapshot reference or workspace), and cache hits are served while the gate is saturated.",
			Reproduce:   fmt.Sprintf("go run ./cmd/ctcbench -overload %d -overload-dur %s -overload-net %s -overload-factor %g -bench-out BENCH_pr7.json", tenants, dur, netName, factor),
			Caveat:      "Recorded on a small shared CI runner (often 1 vCPU): absolute latencies are noisy, so the p99 bound carries one unloaded service time of cancellation-polling grace (min 10ms) and the deadline is floored at 5ms; read the shed/admitted structure, not the absolute microseconds.",
			Result:      res,
		}
		if err := writeBenchArtifact(benchOut, artifact, out); err != nil {
			return err
		}
	}
	if !res.Pass {
		return fmt.Errorf("overload: %d invariant violation(s)", len(res.Violations))
	}
	return nil
}
