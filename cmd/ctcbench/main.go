// Command ctcbench regenerates the paper's tables and figures on the
// synthetic network analogues and prints them as text tables.
//
// Usage:
//
//	ctcbench -exp all
//	ctcbench -exp t2,t3,fig5,fig12 -queries 20 -seed 7
//	ctcbench -throughput 8 -throughput-dur 5s
//	ctcbench -mixed 8 -mixed-dur 10s -mixed-rate 500 -bench-out BENCH_pr3.json
//
// Experiment IDs: t2, t3, fig5, fig6, fig7, fig8, fig9, fig10, fig11,
// fig12, fig13, fig14, fig15, fig16, ablation, ext.
//
// -throughput N skips the experiments and instead drives N concurrent
// worker goroutines of LCTC queries against one shared truss index — the
// read-only serving scenario — reporting aggregate and per-worker QPS.
//
// -mixed N drives the live-serving scenario instead: N query workers
// against a serve.Manager while one updater streams edge deletions and
// re-insertions at -mixed-rate updates/second; reports query latency
// percentiles under sustained update load and, with -bench-out, records
// them as a JSON artifact. Adding -wal runs the same stress three times —
// no WAL, WAL without fsync, WAL with group-commit fsync — recording the
// durability overhead (applied-update throughput and query p50/p99 deltas)
// in one artifact (see BENCH_pr6.json).
//
// -decomp par|serial selects the cold-build truss decomposition for every
// index built by the run: the level-synchronous parallel peel (default,
// engaging above truss.ParallelThreshold edges) or the serial bucket-queue
// peel, for before/after comparisons (see BENCH_pr4.json).
//
// -overload N runs the overload-injection harness with N tenants: a
// baseline calibration, an open-loop burst at -overload-factor times the
// sustainable rate, a 10k-request rejection storm, and a cache-hit check
// under a saturated admission gate. The run exits nonzero if any
// robustness invariant is violated (admitted p99 past its bound, a shed
// request without a typed error, a tenant starved below its fair share, or
// a rejected request that consumed a snapshot/workspace), so CI gates on
// it (see BENCH_pr7.json).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/truss"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment IDs (or 'all')")
		queries = flag.Int("queries", 8, "queries averaged per data point")
		seed    = flag.Uint64("seed", 0, "query sampling seed (0 = default)")
		basicTO = flag.Duration("basic-timeout", 2*time.Second, "per-run budget for Basic before reporting Inf")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		csvDir  = flag.String("csv", "", "also write each artifact as CSV into this directory")
		tpWork  = flag.Int("throughput", 0, "run the concurrent-throughput stress with this many workers instead of experiments")
		tpDur   = flag.Duration("throughput-dur", 3*time.Second, "duration of the -throughput stress")
		tpNet   = flag.String("throughput-net", "dblp", "network analogue the -throughput stress queries")
		mxWork  = flag.Int("mixed", 0, "run the mixed read/write serving stress with this many query workers instead of experiments")
		mxDur   = flag.Duration("mixed-dur", 5*time.Second, "duration of the -mixed stress")
		mxNet   = flag.String("mixed-net", "dblp", "network analogue the -mixed stress serves")
		mxRate  = flag.Int("mixed-rate", 500, "target updates/second for the -mixed stress")
		mxWAL   = flag.Bool("wal", false, "with -mixed, compare durability configurations (no WAL vs WAL without fsync vs WAL with group-commit fsync)")
		mxShard = flag.Int("shards", 1, "with -mixed, compare a single manager against a sharded tier of N partitioned managers behind the scatter-gather router")
		ovTen   = flag.Int("overload", 0, "run the overload-injection harness with this many tenants instead of experiments (exits nonzero on an invariant violation)")
		ovDur   = flag.Duration("overload-dur", 3*time.Second, "duration of each timed -overload phase (baseline, burst)")
		ovNet   = flag.String("overload-net", "dblp", "network analogue the -overload harness serves")
		ovFac   = flag.Float64("overload-factor", 4, "offered burst rate as a multiple of the measured sustainable QPS")
		mxOut   = flag.String("bench-out", "", "write the -mixed or -overload result as a JSON benchmark artifact")
		decomp  = flag.String("decomp", "par", "cold-build truss decomposition: par (level-synchronous parallel above truss.ParallelThreshold) or serial (bucket-queue peel)")
	)
	flag.Parse()
	switch strings.ToLower(*decomp) {
	case "par", "parallel":
		// Default: DecomposeParallel engages above truss.ParallelThreshold.
	case "serial":
		truss.ParallelThreshold = math.MaxInt // every cold build takes the serial peel
	default:
		fmt.Fprintf(os.Stderr, "ctcbench: unknown -decomp %q (want par or serial)\n", *decomp)
		os.Exit(1)
	}
	if *ovTen > 0 {
		if err := runOverload(*ovTen, *ovDur, *ovNet, *ovFac, *seed, *mxOut, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ctcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *mxWork > 0 {
		if err := runMixed(*mxWork, *mxDur, *mxNet, *mxRate, *mxShard, *seed, *mxOut, *mxWAL, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ctcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *tpWork > 0 {
		if err := runThroughput(*tpWork, *tpDur, *tpNet, *seed, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ctcbench:", err)
			os.Exit(1)
		}
		return
	}
	cfg := exp.Config{
		QueriesPerPoint: *queries,
		Seed:            *seed,
		BasicTimeout:    *basicTO,
		Quiet:           *quiet,
		Progress:        os.Stderr,
	}
	if err := run(*expList, cfg, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "ctcbench:", err)
		os.Exit(1)
	}
}

func run(expList string, cfg Config, csvDir string) error {
	wanted := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(expList), ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]
	want := func(id string) bool { return all || wanted[id] }
	out := os.Stdout
	ran := 0

	dblp, _ := gen.NetworkByName("dblp")
	facebook, _ := gen.NetworkByName("facebook")

	saveTable := func(t *exp.Table) error {
		t.Render(out)
		if csvDir != "" {
			return exp.SaveTableCSV(csvDir, t)
		}
		return nil
	}
	saveFigs := func(figs []*exp.Figure) error {
		for _, f := range figs {
			f.Render(out)
		}
		if csvDir != "" {
			return exp.SaveFiguresCSV(csvDir, figs)
		}
		return nil
	}
	if want("t2") {
		if err := saveTable(exp.Table2(cfg)); err != nil {
			return err
		}
		ran++
	}
	if want("t3") {
		if err := saveTable(exp.Table3(cfg)); err != nil {
			return err
		}
		ran++
	}
	type figRun struct {
		id  string
		fn  func() []*exp.Figure
		net *gen.Network
	}
	runs := []figRun{
		{"fig5", func() []*exp.Figure { return exp.RunQuerySize(dblp, "Fig5", cfg) }, dblp},
		{"fig6", func() []*exp.Figure { return exp.RunQuerySize(facebook, "Fig6", cfg) }, facebook},
		{"fig7", func() []*exp.Figure { return exp.RunDegreeRank(dblp, "Fig7", cfg) }, dblp},
		{"fig8", func() []*exp.Figure { return exp.RunDegreeRank(facebook, "Fig8", cfg) }, facebook},
		{"fig9", func() []*exp.Figure { return exp.RunInterDistance(dblp, "Fig9", cfg) }, dblp},
		{"fig10", func() []*exp.Figure { return exp.RunInterDistance(facebook, "Fig10", cfg) }, facebook},
		{"fig12", func() []*exp.Figure { return exp.RunGroundTruth(cfg, nil) }, nil},
		{"fig13", func() []*exp.Figure { return exp.RunDiamApprox(facebook, cfg) }, facebook},
		{"fig14", func() []*exp.Figure { return []*exp.Figure{exp.RunVaryK(facebook, cfg)} }, facebook},
		{"fig15", func() []*exp.Figure { return exp.RunVaryEta(dblp, cfg) }, dblp},
		{"fig16", func() []*exp.Figure { return exp.RunVaryGamma(dblp, cfg) }, dblp},
		{"ablation", func() []*exp.Figure {
			return []*exp.Figure{exp.RunAblationSteiner(facebook, cfg), exp.RunAblationBulkRule(facebook, cfg)}
		}, facebook},
	}
	for _, r := range runs {
		if !want(r.id) {
			continue
		}
		if err := saveFigs(r.fn()); err != nil {
			return err
		}
		ran++
	}
	if want("ext") {
		if err := saveTable(exp.ExtensionTable(cfg)); err != nil {
			return err
		}
		ran++
	}
	if want("fig11") {
		res, err := exp.CaseStudy(1)
		if err != nil {
			return err
		}
		if err := saveTable(res.Table()); err != nil {
			return err
		}
		fmt.Fprintf(out, "  query authors: %s\n", strings.Join(res.QueryNames, ", "))
		fmt.Fprintf(out, "  LCTC community: %s\n\n", strings.Join(res.MemberNames, ", "))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q", expList)
	}
	return nil
}

// Config aliases the exp configuration for the flag wiring above.
type Config = exp.Config
