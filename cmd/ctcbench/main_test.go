package main

import (
	"io"
	"testing"
	"time"

	"repro/internal/exp"
)

func fastCfg() Config {
	return exp.Config{QueriesPerPoint: 1, Seed: 3, BasicTimeout: time.Second, Quiet: true}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonesuch", fastCfg(), ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunThroughputUnknownNetwork(t *testing.T) {
	if err := runThroughput(1, time.Millisecond, "nonesuch", 0, io.Discard); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestRunCaseStudyOnly(t *testing.T) {
	// fig11 is the only experiment cheap enough for a unit test (the others
	// generate the large shared networks; they are covered by the bench
	// suite and internal/exp tests).
	if err := run("fig11", fastCfg(), t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
