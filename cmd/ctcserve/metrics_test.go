package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

// telemetryManager builds a durable manager (WAL in a temp dir) with the
// full telemetry plane wired: registry, tracer, discard logger. It mirrors
// what run() assembles, minus the listeners.
func telemetryManager(t *testing.T, slow time.Duration) (*serve.Manager, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 200, NumCommunities: 10, MinSize: 8, MaxSize: 24,
		Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 150, Seed: 0x5E17E,
	})
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	tracer := telemetry.NewTracer(reg, telemetry.TracerOptions{SlowThreshold: slow, AlgoLabels: core.AlgoNames()})
	opts := serve.Options{
		PublishDirty:    4,
		PublishInterval: 10 * time.Millisecond,
		Metrics:         reg,
		Tracer:          tracer,
		Logger:          discardLogger(),
	}
	mgr, _, err := serve.OpenDurable(t.TempDir(),
		func() (*trussindex.Index, error) { return trussindex.Build(g), nil },
		wal.Options{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	return mgr, reg, tracer
}

// scrape fetches /metrics and parses it, failing the test on any
// exposition-format violation the parser can detect.
func scrape(t *testing.T, c *http.Client, url string) map[string]*telemetry.ParsedFamily {
	t.Helper()
	resp, err := c.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return fams
}

// checkHistogramFamily validates the exposition invariants of one
// histogram family: per label-set, le values strictly ascend and end at
// +Inf, bucket counts are cumulative, the +Inf bucket equals _count, and a
// _sum sample exists. (A copy of the telemetry package's internal test
// helper — it is unexported there on purpose.)
func checkHistogramFamily(t *testing.T, fam *telemetry.ParsedFamily, name string) {
	t.Helper()
	type series struct {
		les    []float64
		counts []float64
		count  float64
		sum    bool
	}
	groups := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		if groups[k] == nil {
			groups[k] = &series{}
		}
		return groups[k]
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case name + "_bucket":
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				t.Fatalf("%s: bad le %q", name, s.Labels["le"])
			}
			g := get(s.Labels)
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
		case name + "_sum":
			get(s.Labels).sum = true
		case name + "_count":
			get(s.Labels).count = s.Value
		}
	}
	if len(groups) == 0 {
		t.Fatalf("%s: no histogram series found", name)
	}
	for k, g := range groups {
		if len(g.les) == 0 {
			t.Fatalf("%s{%s}: no buckets", name, k)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				t.Errorf("%s{%s}: le not ascending at %d: %v", name, k, i, g.les)
			}
			if g.counts[i] < g.counts[i-1] {
				t.Errorf("%s{%s}: bucket counts not cumulative at %d: %v", name, k, i, g.counts)
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], +1) {
			t.Errorf("%s{%s}: last bucket le=%v, want +Inf", name, k, g.les[last])
		}
		if g.counts[last] != g.count {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", name, k, g.counts[last], g.count)
		}
		if !g.sum {
			t.Errorf("%s{%s}: missing _sum", name, k)
		}
	}
}

// TestMetricsExpositionEndToEnd drives the full stack over real HTTP —
// queries across all four algorithms, a cache hit, updates through the WAL,
// a flush — then scrapes /metrics twice and validates the exposition:
// every family carries HELP and TYPE, every required family from the issue
// is present, counters are monotone across scrapes, and histograms are
// internally consistent.
func TestMetricsExpositionEndToEnd(t *testing.T) {
	mgr, reg, tracer := telemetryManager(t, time.Hour)
	ts := httptest.NewServer(newServerWith(mgr, reg, tracer))
	defer ts.Close()
	c := ts.Client()

	for _, algo := range []string{"lctc", "basic", "bd", "truss"} {
		var out queryResponse
		code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{5}, Algo: algo, Tenant: "scraper"}, &out)
		if code != http.StatusOK && code != http.StatusNotFound {
			t.Fatalf("query algo=%s: status %d", algo, code)
		}
	}
	// Repeat an identical query: the second run should land in the epoch
	// result cache and count as a hit.
	for i := 0; i < 2; i++ {
		postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{5}, Algo: "lctc", Tenant: "scraper"}, nil)
	}
	// Updates through the WAL (fsync on the commit path), then a flush so a
	// publish definitely happened before the first scrape.
	if code := postJSON(t, c, ts.URL+"/update", map[string]any{
		"edges": []map[string]any{
			{"op": "add", "u": 0, "v": 199},
			{"op": "add", "u": 1, "v": 198},
			{"op": "remove", "u": 0, "v": 199},
			{"op": "add", "u": 2, "v": 197},
		},
	}, nil); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}

	first := scrape(t, c, ts.URL)

	// Required coverage per the issue: query latency per algo, admission,
	// cache hit ratio, WAL fsync latency, epoch age, workspace pool.
	required := []string{
		"ctc_query_duration_seconds",
		"ctc_query_phase_duration_seconds",
		"ctc_queries_total",
		"ctc_admission_admitted_total",
		"ctc_admission_queue_depth",
		"ctc_cache_hits_total",
		"ctc_cache_misses_total",
		"ctc_cache_hit_ratio",
		"ctc_wal_fsync_duration_seconds",
		"ctc_wal_appends_total",
		"ctc_epoch",
		"ctc_epoch_age_seconds",
		"ctc_publishes_total",
		"ctc_publish_duration_seconds",
		"ctc_update_queue_depth",
		"ctc_workspace_acquires_total",
		"ctc_build_info",
	}
	for _, name := range required {
		fam := first[name]
		if fam == nil {
			t.Errorf("required family %s missing from /metrics", name)
			continue
		}
		if fam.Help == "" {
			t.Errorf("%s: missing # HELP", name)
		}
		if fam.Type == "" {
			t.Errorf("%s: missing # TYPE", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Spot-check values: queries ran and were admitted, the repeat query
	// hit the cache, the WAL fsynced at least once, a publish happened.
	sumFamily := func(fams map[string]*telemetry.ParsedFamily, name, suffix string) float64 {
		total := 0.0
		for _, s := range fams[name].Samples {
			if s.Name == name+suffix {
				total += s.Value
			}
		}
		return total
	}
	if v := sumFamily(first, "ctc_query_duration_seconds", "_count"); v < 4 {
		t.Errorf("ctc_query_duration_seconds observations = %v, want >= 4", v)
	}
	if v := sumFamily(first, "ctc_admission_admitted_total", ""); v < 4 {
		t.Errorf("ctc_admission_admitted_total = %v, want >= 4", v)
	}
	if v := sumFamily(first, "ctc_cache_hits_total", ""); v < 1 {
		t.Errorf("ctc_cache_hits_total = %v, want >= 1", v)
	}
	if v := sumFamily(first, "ctc_wal_fsync_duration_seconds", "_count"); v < 1 {
		t.Errorf("ctc_wal_fsync_duration_seconds observations = %v, want >= 1", v)
	}
	if v := sumFamily(first, "ctc_publishes_total", ""); v < 1 {
		t.Errorf("ctc_publishes_total = %v, want >= 1", v)
	}

	// Per-algo labels on the query latency histogram.
	algosSeen := map[string]bool{}
	for _, s := range first["ctc_query_duration_seconds"].Samples {
		if a := s.Labels["algo"]; a != "" {
			algosSeen[a] = true
		}
	}
	for _, want := range []string{"LCTC", "Basic", "BD", "Truss"} {
		if !algosSeen[want] {
			t.Errorf("ctc_query_duration_seconds missing algo=%q series (saw %v)", want, algosSeen)
		}
	}

	// Histogram internal consistency on every histogram family exposed.
	for name, fam := range first {
		if fam.Type == "histogram" {
			checkHistogramFamily(t, fam, name)
		}
	}

	// More traffic, then a second scrape: counters must be monotone.
	for i := 0; i < 3; i++ {
		postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{7}, Algo: "basic"}, nil)
	}
	second := scrape(t, c, ts.URL)
	for name, f1 := range first {
		if f1.Type != "counter" {
			continue
		}
		f2 := second[name]
		if f2 == nil {
			t.Errorf("counter family %s disappeared on second scrape", name)
			continue
		}
		v1 := map[string]float64{}
		for _, s := range f1.Samples {
			v1[labelKey(s)] = s.Value
		}
		for _, s := range f2.Samples {
			if prev, ok := v1[labelKey(s)]; ok && s.Value < prev {
				t.Errorf("counter %s%s went backwards: %v -> %v", name, labelKey(s), prev, s.Value)
			}
		}
	}
}

func labelKey(s telemetry.ParsedSample) string {
	parts := make([]string, 0, len(s.Labels))
	for k, v := range s.Labels {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// TestMetricsConcurrentScrape runs scrapers against live queries and
// updates (so publishes race the scrapes); under -race this is the data
// soundness check for the whole telemetry plane.
func TestMetricsConcurrentScrape(t *testing.T) {
	mgr, reg, tracer := telemetryManager(t, time.Hour)
	ts := httptest.NewServer(newServerWith(mgr, reg, tracer))
	defer ts.Close()
	c := ts.Client()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Get(ts.URL + "/metrics")
				if err != nil {
					return
				}
				if _, err := telemetry.ParseText(resp.Body); err != nil {
					t.Errorf("scrape during load: %v", err)
				}
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(queryRequest{Q: []int{(seed*31 + n) % 200}, Algo: "lctc"})
				resp, err := c.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			u, v := n%100, 100+n%99
			body := fmt.Sprintf(`{"op":"add","u":%d,"v":%d}`, u, v)
			resp, err := c.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Final scrape must still be well-formed.
	scrape(t, c, ts.URL)
}

// TestSlowQueryLogEndToEnd is the issue's acceptance check: a deliberately
// slow query (the clique-chain fixture peels one vertex per round) must
// land in /debug/slowlog with its full phase breakdown.
func TestSlowQueryLogEndToEnd(t *testing.T) {
	g, q := slowChainGraph()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(reg, telemetry.TracerOptions{SlowThreshold: time.Millisecond})
	mgr := serve.NewManager(g, serve.Options{
		Admission: admit.Config{CacheEntries: -1},
		Metrics:   reg,
		Tracer:    tracer,
		Logger:    discardLogger(),
	})
	t.Cleanup(mgr.Close)
	ts := httptest.NewServer(newServerWith(mgr, reg, tracer))
	defer ts.Close()
	c := ts.Client()

	var out queryResponse
	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: q, Algo: "basic", K: 2, Tenant: "slowpoke"}, &out); code != http.StatusOK {
		t.Fatalf("slow query: status %d", code)
	}

	resp, err := c.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var log struct {
		ThresholdMS float64 `json:"threshold_ms"`
		TotalSlow   int64   `json:"total_slow"`
		Entries     []struct {
			Time        string `json:"time"`
			Algo        string `json:"algo"`
			Tenant      string `json:"tenant"`
			Outcome     string `json:"outcome"`
			SeedUS      int64  `json:"seed_us"`
			ExpandUS    int64  `json:"expand_us"`
			PeelUS      int64  `json:"peel_us"`
			TotalUS     int64  `json:"total_us"`
			PeelRounds  int    `json:"peel_rounds"`
			EdgesPeeled int    `json:"edges_peeled"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		t.Fatal(err)
	}
	if log.ThresholdMS != 1 {
		t.Errorf("threshold_ms = %v, want 1", log.ThresholdMS)
	}
	if log.TotalSlow < 1 || len(log.Entries) < 1 {
		t.Fatalf("slowlog empty: total_slow=%d entries=%d", log.TotalSlow, len(log.Entries))
	}
	e := log.Entries[0]
	if e.Algo != "Basic" {
		t.Errorf("entry algo = %q, want Basic", e.Algo)
	}
	if e.Tenant != "slowpoke" {
		t.Errorf("entry tenant = %q, want slowpoke", e.Tenant)
	}
	if e.Outcome != "ok" {
		t.Errorf("entry outcome = %q, want ok", e.Outcome)
	}
	if e.PeelUS <= 0 || e.PeelRounds <= 0 || e.EdgesPeeled <= 0 {
		t.Errorf("phase breakdown missing: peel_us=%d rounds=%d edges=%d", e.PeelUS, e.PeelRounds, e.EdgesPeeled)
	}
	if e.TotalUS < e.SeedUS+e.ExpandUS+e.PeelUS {
		t.Errorf("total_us %d < seed+expand+peel %d", e.TotalUS, e.SeedUS+e.ExpandUS+e.PeelUS)
	}
	if _, err := time.Parse(time.RFC3339Nano, e.Time); err != nil {
		t.Errorf("entry time %q not RFC3339: %v", e.Time, err)
	}
	// The slow query also ticks the counter family.
	fams := scrape(t, c, ts.URL)
	slowTotal := 0.0
	for _, s := range fams["ctc_slow_queries_total"].Samples {
		slowTotal += s.Value
	}
	if slowTotal < 1 {
		t.Errorf("ctc_slow_queries_total = %v, want >= 1", slowTotal)
	}
}

// TestBuildIdentityOnWire pins the PR 8 additions to /stats and /healthz:
// uptime, Go toolchain version, and the build-info block, so a scrape of a
// running instance identifies the exact binary.
func TestBuildIdentityOnWire(t *testing.T) {
	mgr, reg, tracer := telemetryManager(t, time.Hour)
	ts := httptest.NewServer(newServerWith(mgr, reg, tracer))
	defer ts.Close()

	var health struct {
		Status    string  `json:"status"`
		UptimeS   float64 `json:"uptime_s"`
		GoVersion string  `json:"go_version"`
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.GoVersion == "" || !strings.HasPrefix(health.GoVersion, "go") {
		t.Errorf("healthz go_version = %q, want goX.Y", health.GoVersion)
	}
	if health.UptimeS < 0 {
		t.Errorf("healthz uptime_s = %v, want >= 0", health.UptimeS)
	}

	var stats struct {
		UptimeS float64 `json:"uptime_s"`
		Build   struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Build.GoVersion != health.GoVersion {
		t.Errorf("stats build.go_version = %q, healthz go_version = %q — want identical",
			stats.Build.GoVersion, health.GoVersion)
	}
}

// TestDebugMuxPprof smoke-tests the -debug-addr mux: the pprof index and a
// profile endpoint respond over real HTTP.
func TestDebugMuxPprof(t *testing.T) {
	ts := httptest.NewServer(debugMux())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/goroutine?debug=1"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		if path == "/debug/pprof/" && !strings.Contains(string(body), "goroutine") {
			t.Errorf("pprof index missing profile listing")
		}
	}
}
