// Command ctcserve is the live closest-truss-community query server: it
// keeps a truss index of an evolving graph behind an epoch-snapshot index
// manager and serves lock-free queries while streaming edge updates are
// ingested and batched in the background.
//
// Usage:
//
//	ctcserve -net dblp -addr :8080
//	ctcserve -load index.ctc -addr :8080 -save index.ctc
//
// Endpoints:
//
//	POST /query   {"q":[1,2],"algo":"lctc|basic|bulk|truss","k":0}
//	POST /update  {"op":"add","u":1,"v":2}  or  {"edges":[...],"flush":true}
//	GET  /stats   epoch, dirty count, snapshot age, queue depth, counters
//	GET  /healthz liveness plus current epoch
//
// With -save, the final snapshot is persisted (versioned trussindex format,
// written atomically: temp file + fsync + rename) on clean shutdown
// (SIGINT/SIGTERM) and can be reloaded with -load, skipping the startup
// decomposition.
//
// With -wal DIR, the server is durable: every update batch is appended to a
// write-ahead log and fsynced before it is applied or acknowledged, the
// index is checkpointed into the log directory every -checkpoint-every
// epochs, and on startup the server recovers the pre-crash state from the
// newest valid checkpoint plus log replay (torn tails from a crash are
// truncated, never replayed). If the log itself fails at runtime (disk
// full, I/O error) the server degrades to read-only: queries keep serving
// the last published epoch, /update returns 503 with code "degraded" and a
// Retry-After hint, and /healthz reports {"status":"degraded"} with 503.
//
// Every query passes the overload-protection layer: concurrent execution
// is bounded to -max-inflight slots, a bounded deadline-aware admission
// queue (-admit-queue) drains round-robin across tenants (the "tenant"
// field or X-Tenant header), and repeated requests are answered from an
// epoch-keyed result cache (-cache-entries) that snapshot publishes
// invalidate by construction. A request shed by admission gets 429 with
// code "overloaded" and a Retry-After hint instead of queueing into a
// timeout; /healthz reports {"status":"overloaded"} (still 200 — shedding
// is healthy) while the gate is saturated.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		netName   = flag.String("net", "dblp", "network analogue to serve (ignored with -load)")
		loadPath  = flag.String("load", "", "load a serialized truss index instead of generating a network")
		savePath  = flag.String("save", "", "persist the final snapshot here on shutdown")
		dirty     = flag.Int("publish-dirty", 64, "publish a snapshot after this many applied updates")
		interval  = flag.Duration("publish-interval", 200*time.Millisecond, "publish deadline for partial batches")
		queue     = flag.Int("queue", 1024, "bounded update-queue size")
		walDir    = flag.String("wal", "", "durable mode: write-ahead log directory (fsync before ack, crash recovery on start)")
		ckptEvery = flag.Int("checkpoint-every", 32, "with -wal, checkpoint the index every N published epochs")
		inflight  = flag.Int("max-inflight", 0, "concurrent query execution slots (0 = 2x GOMAXPROCS)")
		admitQ    = flag.Int("admit-queue", 0, "bounded admission queue size; arrivals past it get 429 (0 = default 256)")
		cacheN    = flag.Int("cache-entries", 0, "epoch-keyed result cache entries (0 = default 1024, negative = disabled)")
	)
	flag.Parse()
	if err := run(*addr, *netName, *loadPath, *savePath, *walDir, serve.Options{
		QueueSize:       *queue,
		PublishDirty:    *dirty,
		PublishInterval: *interval,
		CheckpointEvery: *ckptEvery,
		Admission: admit.Config{
			MaxConcurrent: *inflight,
			QueueSize:     *admitQ,
			CacheEntries:  *cacheN,
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctcserve:", err)
		os.Exit(1)
	}
}

// baseIndex builds the starting index: a deserialized snapshot with -load,
// otherwise a full decomposition of the generated network.
func baseIndex(netName, loadPath string) (*trussindex.Index, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		ix, err := trussindex.ReadFrom(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", loadPath, err)
		}
		fmt.Printf("ctcserve: loaded index %s (n=%d m=%d maxTruss=%d)\n",
			loadPath, ix.Graph().N(), ix.Graph().M(), ix.MaxTruss())
		return ix, nil
	}
	nw, err := gen.NetworkByName(netName)
	if err != nil {
		return nil, err
	}
	g := nw.Graph()
	fmt.Printf("ctcserve: network %s (n=%d m=%d), decomposing...\n", netName, g.N(), g.M())
	t0 := time.Now()
	ix := trussindex.BuildFromDecomposition(g, truss.Decompose(g))
	fmt.Printf("ctcserve: decomposed in %v\n", time.Since(t0))
	return ix, nil
}

func run(addr, netName, loadPath, savePath, walDir string, opts serve.Options) error {
	var mgr *serve.Manager
	if walDir != "" {
		m, recovered, err := serve.OpenDurable(walDir,
			func() (*trussindex.Index, error) { return baseIndex(netName, loadPath) },
			wal.Options{}, opts)
		if err != nil {
			return fmt.Errorf("opening wal %s: %w", walDir, err)
		}
		mgr = m
		if recovered {
			st := mgr.Stats()
			fmt.Printf("ctcserve: recovered from %s (epoch=%d n=%d m=%d, checkpoint seq %d)\n",
				walDir, st.Epoch, st.Vertices, st.Edges, st.WALCheckpointSeq)
		} else {
			fmt.Printf("ctcserve: initialized wal %s\n", walDir)
		}
	} else {
		ix, err := baseIndex(netName, loadPath)
		if err != nil {
			return err
		}
		mgr = serve.NewManagerFromIndex(ix, opts)
	}
	defer mgr.Close()

	srv := &http.Server{Addr: addr, Handler: newServer(mgr)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("ctcserve: listening on %s\n", addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("ctcserve: %v, shutting down\n", sig)
		// Drain in-flight requests (bounded) before persisting the snapshot.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
		cancel()
	}
	if savePath != "" {
		if err := saveSnapshot(mgr, savePath); err != nil {
			return err
		}
	}
	return nil
}

// saveSnapshot flushes pending updates and persists the resulting epoch
// atomically: a failure at any point (including mid-write) leaves a
// previously saved index at path untouched and readable.
func saveSnapshot(mgr *serve.Manager, path string) error {
	_ = mgr.Flush()
	snap := mgr.Acquire()
	defer snap.Release()
	var n int64
	err := writeFileAtomic(path, func(f *os.File) error {
		var werr error
		n, werr = snap.Index().WriteTo(f)
		return werr
	})
	if err != nil {
		return fmt.Errorf("saving %s: %w", path, err)
	}
	fmt.Printf("ctcserve: saved epoch %d to %s (%d bytes)\n", snap.Epoch(), path, n)
	return nil
}
