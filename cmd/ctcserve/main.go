// Command ctcserve is the live closest-truss-community query server: it
// keeps a truss index of an evolving graph behind an epoch-snapshot index
// manager and serves lock-free queries while streaming edge updates are
// ingested and batched in the background.
//
// Usage:
//
//	ctcserve -net dblp -addr :8080
//	ctcserve -load index.ctc -addr :8080 -save index.ctc
//
// Endpoints:
//
//	POST /query          {"q":[1,2],"algo":"lctc|basic|bulk|truss|dtruss|prob|mdc|qdc","k":0}
//	POST /update         {"op":"add","u":1,"v":2}  or  {"edges":[...],"flush":true}
//	GET  /stats          epoch, dirty count, snapshot age, queue depth, counters
//	GET  /healthz        liveness plus current epoch and build identity
//	GET  /metrics        Prometheus text exposition (the telemetry plane)
//	GET  /debug/slowlog  ring buffer of queries slower than -slow-query
//
// With -save, the final snapshot is persisted (versioned trussindex format,
// written atomically: temp file + fsync + rename) on clean shutdown
// (SIGINT/SIGTERM) and can be reloaded with -load, skipping the startup
// decomposition.
//
// With -wal DIR, the server is durable: every update batch is appended to a
// write-ahead log and fsynced before it is applied or acknowledged, the
// index is checkpointed into the log directory every -checkpoint-every
// epochs, and on startup the server recovers the pre-crash state from the
// newest valid checkpoint plus log replay (torn tails from a crash are
// truncated, never replayed). If the log itself fails at runtime (disk
// full, I/O error) the server degrades to read-only: queries keep serving
// the last published epoch, /update returns 503 with code "degraded" and a
// Retry-After hint, and /healthz reports {"status":"degraded"} with 503.
//
// Every query passes the overload-protection layer: concurrent execution
// is bounded to -max-inflight slots, a bounded deadline-aware admission
// queue (-admit-queue) drains round-robin across tenants (the "tenant"
// field or X-Tenant header), and repeated requests are answered from an
// epoch-keyed result cache (-cache-entries) that snapshot publishes
// invalidate by construction. A request shed by admission gets 429 with
// code "overloaded" and a Retry-After hint instead of queueing into a
// timeout; /healthz reports {"status":"overloaded"} (still 200 — shedding
// is healthy) while the gate is saturated.
//
// With -shards N (N > 1), the server becomes a sharded tier in one
// process: the edge set is vertex-cut across N serve.Managers (hash of the
// vertex ID by default; -shard-mode community co-locates ground-truth
// communities), each with its own writer loop, admission gate and — with
// -wal — its own log directory (shard-0000/, shard-0001/, ...). Queries
// scatter to the shards owning the query vertices, gather the exact
// connected component across shard snapshots, and recompute the k-truss of
// the union locally; responses carry the per-shard epoch vector in
// stats.shard_epochs. /stats gains a per-shard "shards" block, /healthz
// reports degraded if ANY shard is degraded, and /metrics grows
// ctc_shard_*{shard="i"} families plus router merge-phase histograms.
// -save is single-manager only and is rejected with -shards.
//
// Observability: /metrics exposes the full telemetry plane (query latency
// per algorithm and tenant, phase breakdowns, admission and cache counters,
// WAL fsync latency, epoch age, workspace-pool stats) in Prometheus text
// format; queries slower than -slow-query land in the /debug/slowlog ring
// with their phase breakdown; writer-loop events (publishes, checkpoints,
// fsync stalls, degraded transitions, admission sheds) are logged via
// log/slog at -log-level. With -debug-addr, a second listener serves
// net/http/pprof (CPU/heap/goroutine profiling), kept off the public
// address on purpose.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		netName   = flag.String("net", "dblp", "network analogue to serve (ignored with -load)")
		loadPath  = flag.String("load", "", "load a serialized truss index instead of generating a network")
		savePath  = flag.String("save", "", "persist the final snapshot here on shutdown")
		dirty     = flag.Int("publish-dirty", 64, "publish a snapshot after this many applied updates")
		interval  = flag.Duration("publish-interval", 200*time.Millisecond, "publish deadline for partial batches")
		queue     = flag.Int("queue", 1024, "bounded update-queue size")
		walDir    = flag.String("wal", "", "durable mode: write-ahead log directory (fsync before ack, crash recovery on start)")
		ckptEvery = flag.Int("checkpoint-every", 32, "with -wal, checkpoint the index every N published epochs")
		inflight  = flag.Int("max-inflight", 0, "concurrent query execution slots (0 = 2x GOMAXPROCS)")
		admitQ    = flag.Int("admit-queue", 0, "bounded admission queue size; arrivals past it get 429 (0 = default 256)")
		cacheN    = flag.Int("cache-entries", 0, "epoch-keyed result cache entries (0 = default 1024, negative = disabled)")
		slowQ     = flag.Duration("slow-query", 250*time.Millisecond, "queries at least this slow enter /debug/slowlog (negative = disabled)")
		slowN     = flag.Int("slowlog", 128, "slow-query ring-buffer entries")
		debugAddr = flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = no pprof)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		shards    = flag.Int("shards", 1, "serve a sharded tier of N partitioned managers behind a scatter-gather router")
		shardMode = flag.String("shard-mode", "hash", "vertex-to-shard assignment: hash, or community (ground-truth co-location; needs -net)")
		shardSeed = flag.Uint64("shard-seed", 1, "seed of the deterministic vertex-to-shard hash")
	)
	flag.Parse()
	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctcserve:", err)
		os.Exit(2)
	}
	if err := run(runConfig{
		addr:      *addr,
		netName:   *netName,
		loadPath:  *loadPath,
		savePath:  *savePath,
		walDir:    *walDir,
		debugAddr: *debugAddr,
		slowQuery: *slowQ,
		slowlogN:  *slowN,
		shards:    *shards,
		shardMode: *shardMode,
		shardSeed: *shardSeed,
		logger:    logger,
		opts: serve.Options{
			QueueSize:       *queue,
			PublishDirty:    *dirty,
			PublishInterval: *interval,
			CheckpointEvery: *ckptEvery,
			Admission: admit.Config{
				MaxConcurrent: *inflight,
				QueueSize:     *admitQ,
				CacheEntries:  *cacheN,
			},
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctcserve:", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: structured key=value text on stderr.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// runConfig is everything run needs; main translates flags into it.
type runConfig struct {
	addr      string
	netName   string
	loadPath  string
	savePath  string
	walDir    string
	debugAddr string
	slowQuery time.Duration
	slowlogN  int
	shards    int
	shardMode string
	shardSeed uint64
	logger    *slog.Logger
	opts      serve.Options
}

// baseIndex builds the starting index: a deserialized snapshot with -load,
// otherwise a full decomposition of the generated network.
func baseIndex(netName, loadPath string, logger *slog.Logger) (*trussindex.Index, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		ix, err := trussindex.ReadFrom(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", loadPath, err)
		}
		logger.Info("loaded index", "path", loadPath,
			"n", ix.Graph().N(), "m", ix.Graph().M(), "max_truss", ix.MaxTruss())
		return ix, nil
	}
	nw, err := gen.NetworkByName(netName)
	if err != nil {
		return nil, err
	}
	g := nw.Graph()
	logger.Info("decomposing network", "net", netName, "n", g.N(), "m", g.M())
	t0 := time.Now()
	ix := trussindex.BuildFromDecomposition(g, truss.Decompose(g))
	logger.Info("decomposed", "duration", time.Since(t0))
	return ix, nil
}

func run(cfg runConfig) error {
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	start := time.Now()

	// The telemetry plane: one registry for the whole process, the query
	// tracer, uptime and build identity. The manager registers its families
	// into the same registry at construction.
	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg)
	reg.NewGaugeFunc("ctc_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(start).Seconds() })
	tracer := telemetry.NewTracer(reg, telemetry.TracerOptions{
		SlowThreshold:  cfg.slowQuery,
		SlowLogEntries: cfg.slowlogN,
		AlgoLabels:     core.AlgoNames(),
	})
	cfg.opts.Metrics = reg
	cfg.opts.Tracer = tracer
	cfg.opts.Logger = logger

	// The startup banner: one structured line carrying every knob an
	// operator needs to correlate a log archive with a configuration.
	b := telemetry.Build()
	logger.Info("ctcserve starting",
		"addr", cfg.addr, "net", cfg.netName, "load", cfg.loadPath,
		"wal", cfg.walDir, "durable", cfg.walDir != "",
		"publish_dirty", cfg.opts.PublishDirty, "publish_interval", cfg.opts.PublishInterval,
		"update_queue", cfg.opts.QueueSize, "checkpoint_every", cfg.opts.CheckpointEvery,
		"max_inflight", cfg.opts.Admission.MaxConcurrent,
		"admit_queue", cfg.opts.Admission.QueueSize,
		"cache_entries", cfg.opts.Admission.CacheEntries,
		"slow_query", cfg.slowQuery, "debug_addr", cfg.debugAddr,
		"shards", cfg.shards, "shard_mode", cfg.shardMode,
		"go_version", b.GoVersion, "revision", b.Revision)

	var back backend
	var mgr *serve.Manager
	if cfg.shards > 1 {
		if cfg.savePath != "" {
			return fmt.Errorf("-save is single-manager only; with -shards use -wal for per-shard durability")
		}
		router, err := openRouter(cfg, reg, tracer, logger)
		if err != nil {
			return err
		}
		defer router.Close()
		st := router.Stats()
		logger.Info("sharded tier up", "shards", router.Shards(),
			"n", st.Vertices, "edges_materialized", st.Edges)
		back = router
	} else if cfg.walDir != "" {
		m, recovered, err := serve.OpenDurable(cfg.walDir,
			func() (*trussindex.Index, error) { return baseIndex(cfg.netName, cfg.loadPath, logger) },
			wal.Options{}, cfg.opts)
		if err != nil {
			return fmt.Errorf("opening wal %s: %w", cfg.walDir, err)
		}
		mgr = m
		defer mgr.Close()
		back = mgr
		if recovered {
			st := mgr.Stats()
			logger.Info("recovered from write-ahead log", "dir", cfg.walDir,
				"epoch", st.Epoch, "n", st.Vertices, "m", st.Edges,
				"checkpoint_seq", st.WALCheckpointSeq)
		} else {
			logger.Info("initialized write-ahead log", "dir", cfg.walDir)
		}
	} else {
		ix, err := baseIndex(cfg.netName, cfg.loadPath, logger)
		if err != nil {
			return err
		}
		mgr = serve.NewManagerFromIndex(ix, cfg.opts)
		defer mgr.Close()
		back = mgr
	}

	srv := &http.Server{Addr: cfg.addr, Handler: newServerWith(back, reg, tracer)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", cfg.addr)

	if cfg.debugAddr != "" {
		dsrv := &http.Server{Addr: cfg.debugAddr, Handler: debugMux()}
		go func() {
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Warn("debug listener failed", "addr", cfg.debugAddr, "err", err)
			}
		}()
		defer dsrv.Close()
		logger.Info("pprof listening", "addr", cfg.debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		// Drain in-flight requests (bounded) before persisting the snapshot.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
		cancel()
	}
	if cfg.savePath != "" && mgr != nil {
		if err := saveSnapshot(mgr, cfg.savePath, logger); err != nil {
			return err
		}
	}
	return nil
}

// openRouter builds the sharded tier: the base graph (generated network, or
// a loaded index's graph), partitioned across cfg.shards managers behind
// the scatter-gather router. Each shard decomposes its own subgraph, so
// there is no full-graph decomposition on this path; with -wal every shard
// logs into its own subdirectory. Per-shard managers get no registry of
// their own — the router exposes the ctc_shard_*{shard} families instead.
func openRouter(cfg runConfig, reg *telemetry.Registry, tracer *telemetry.Tracer, logger *slog.Logger) (*shard.Router, error) {
	var g *graph.Graph
	var comms [][]int
	if cfg.loadPath != "" {
		ix, err := baseIndex("", cfg.loadPath, logger)
		if err != nil {
			return nil, err
		}
		g = ix.Graph()
	} else {
		nw, err := gen.NetworkByName(cfg.netName)
		if err != nil {
			return nil, err
		}
		g = nw.Graph()
		comms = nw.GroundTruth()
	}
	scfg := shard.Config{
		Shards:  cfg.shards,
		Seed:    cfg.shardSeed,
		Serve:   cfg.opts,
		WALDir:  cfg.walDir,
		Metrics: reg,
		Tracer:  tracer,
		Logger:  logger,
	}
	// One registry serves one metrics owner: the router owns observability,
	// so the per-shard managers must not register their own families (and
	// shard.New rejects a non-nil per-shard registry outright).
	scfg.Serve.Metrics, scfg.Serve.Tracer, scfg.Serve.Logger = nil, nil, nil
	switch cfg.shardMode {
	case "", "hash":
	case "community":
		if comms == nil {
			return nil, fmt.Errorf("-shard-mode community needs a -net with ground-truth communities (got net=%q load=%q)",
				cfg.netName, cfg.loadPath)
		}
		scfg.Communities = comms
	default:
		return nil, fmt.Errorf("bad -shard-mode %q (want hash or community)", cfg.shardMode)
	}
	return shard.New(g, scfg)
}

// debugMux serves net/http/pprof on its own mux, for the -debug-addr
// listener only: profiling endpoints expose internals (and the CPU profile
// stalls the world a little), so they never mount on the public address.
func debugMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// saveSnapshot flushes pending updates and persists the resulting epoch
// atomically: a failure at any point (including mid-write) leaves a
// previously saved index at path untouched and readable.
func saveSnapshot(mgr *serve.Manager, path string, logger *slog.Logger) error {
	_ = mgr.Flush()
	snap := mgr.Acquire()
	defer snap.Release()
	var n int64
	err := writeFileAtomic(path, func(f *os.File) error {
		var werr error
		n, werr = snap.Index().WriteTo(f)
		return werr
	})
	if err != nil {
		return fmt.Errorf("saving %s: %w", path, err)
	}
	logger.Info("saved snapshot", "epoch", snap.Epoch(), "path", path, "bytes", n)
	return nil
}
