// Command ctcserve is the live closest-truss-community query server: it
// keeps a truss index of an evolving graph behind an epoch-snapshot index
// manager and serves lock-free queries while streaming edge updates are
// ingested and batched in the background.
//
// Usage:
//
//	ctcserve -net dblp -addr :8080
//	ctcserve -load index.ctc -addr :8080 -save index.ctc
//
// Endpoints:
//
//	POST /query   {"q":[1,2],"algo":"lctc|basic|bulk|truss","k":0}
//	POST /update  {"op":"add","u":1,"v":2}  or  {"edges":[...],"flush":true}
//	GET  /stats   epoch, dirty count, snapshot age, queue depth, counters
//	GET  /healthz liveness plus current epoch
//
// With -save, the final snapshot is persisted (versioned trussindex format)
// on clean shutdown (SIGINT/SIGTERM) and can be reloaded with -load,
// skipping the startup decomposition.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/trussindex"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		netName  = flag.String("net", "dblp", "network analogue to serve (ignored with -load)")
		loadPath = flag.String("load", "", "load a serialized truss index instead of generating a network")
		savePath = flag.String("save", "", "persist the final snapshot here on shutdown")
		dirty    = flag.Int("publish-dirty", 64, "publish a snapshot after this many applied updates")
		interval = flag.Duration("publish-interval", 200*time.Millisecond, "publish deadline for partial batches")
		queue    = flag.Int("queue", 1024, "bounded update-queue size")
	)
	flag.Parse()
	if err := run(*addr, *netName, *loadPath, *savePath, serve.Options{
		QueueSize:       *queue,
		PublishDirty:    *dirty,
		PublishInterval: *interval,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ctcserve:", err)
		os.Exit(1)
	}
}

func run(addr, netName, loadPath, savePath string, opts serve.Options) error {
	var mgr *serve.Manager
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		ix, err := trussindex.ReadFrom(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", loadPath, err)
		}
		fmt.Printf("ctcserve: loaded index %s (n=%d m=%d maxTruss=%d)\n",
			loadPath, ix.Graph().N(), ix.Graph().M(), ix.MaxTruss())
		mgr = serve.NewManagerFromIndex(ix, opts)
	} else {
		nw, err := gen.NetworkByName(netName)
		if err != nil {
			return err
		}
		g := nw.Graph()
		fmt.Printf("ctcserve: network %s (n=%d m=%d), decomposing...\n", netName, g.N(), g.M())
		t0 := time.Now()
		mgr = serve.NewManager(g, opts)
		fmt.Printf("ctcserve: epoch 1 published in %v\n", time.Since(t0))
	}
	defer mgr.Close()

	srv := &http.Server{Addr: addr, Handler: newServer(mgr)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("ctcserve: listening on %s\n", addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("ctcserve: %v, shutting down\n", sig)
		// Drain in-flight requests (bounded) before persisting the snapshot.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
		cancel()
	}
	if savePath != "" {
		if err := saveSnapshot(mgr, savePath); err != nil {
			return err
		}
	}
	return nil
}

// saveSnapshot flushes pending updates and persists the resulting epoch.
func saveSnapshot(mgr *serve.Manager, path string) error {
	_ = mgr.Flush()
	snap := mgr.Acquire()
	defer snap.Release()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := snap.Index().WriteTo(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("saving %s: %w", path, err)
	}
	fmt.Printf("ctcserve: saved epoch %d to %s (%d bytes)\n", snap.Epoch(), path, n)
	return nil
}
