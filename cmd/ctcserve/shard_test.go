package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

func testRouter(t *testing.T, shards int) *shard.Router {
	t.Helper()
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 200, NumCommunities: 10, MinSize: 8, MaxSize: 24,
		Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 150, Seed: 0x5E17E,
	})
	r, err := shard.New(g, shard.Config{
		Shards: shards,
		Seed:   9,
		Serve: serve.Options{
			PublishDirty:    16,
			PublishInterval: 20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestShardedServerSmoke drives the sharded tier over real HTTP: health,
// stats, a clique inserted through the router-side update splitter, queried
// back by scatter-gather (with the per-shard epoch vector on the wire),
// then removed again.
func TestShardedServerSmoke(t *testing.T) {
	router := testRouter(t, 4)
	ts := httptest.NewServer(newServer(router))
	defer ts.Close()
	c := ts.Client()

	resp, err := c.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hz.Status != "ok" {
		t.Fatalf("/healthz status %d %q", resp.StatusCode, hz.Status)
	}
	if hz.Shards != 4 {
		t.Fatalf("/healthz shards = %d, want 4", hz.Shards)
	}

	var st0 statsResponse
	resp, err = c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st0); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	base := st0.Vertices

	// A fresh clique on new vertex IDs, spread across shards by the hash.
	var edges []updateOp
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, updateOp{Op: "add", U: base + i, V: base + j})
		}
	}
	var ur updateResponse
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{Edges: edges, Flush: true}, &ur); code != 200 {
		t.Fatalf("/update status %d", code)
	}
	if ur.Enqueued != len(edges) || !ur.Flushed {
		t.Fatalf("update response %+v", ur)
	}

	for _, algo := range []string{"truss", "basic", "bulk", "lctc"} {
		var qr queryResponse
		if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{base, base + 4}, Algo: algo}, &qr); code != 200 {
			t.Fatalf("/query %s status %d", algo, code)
		}
		if qr.K != 5 || qr.N != 5 {
			t.Fatalf("%s on fresh clique: k=%d n=%d, want 5/5", algo, qr.K, qr.N)
		}
		if len(qr.Stats.ShardEpochs) != 4 {
			t.Fatalf("%s: shard_epochs has %d entries, want 4", algo, len(qr.Stats.ShardEpochs))
		}
		var max int64
		for _, e := range qr.Stats.ShardEpochs {
			if e > max {
				max = e
			}
		}
		if qr.Epoch != max {
			t.Fatalf("%s: epoch %d != max(shard_epochs) %d", algo, qr.Epoch, max)
		}
	}

	var dels []updateOp
	for _, e := range edges {
		dels = append(dels, updateOp{Op: "remove", U: e.U, V: e.V})
	}
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{Edges: dels, Flush: true}, &ur); code != 200 {
		t.Fatalf("/update status %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{base, base + 4}}, nil); code != 404 {
		t.Fatalf("query after delete: status %d, want 404", code)
	}
	// S6 surface: a vertex no shard has ever seen is a 400, not a 404.
	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{base + 10_000}}, nil); code != 400 {
		t.Fatalf("out-of-range query: status %d, want 400", code)
	}
}

// TestShardedStatsJSONShape pins the /stats wire contract in sharded mode
// (satellite S3): the aggregate fields stay where single-manager clients
// expect them, and the "shards" block carries one entry per shard with the
// documented keys. Decoding into a raw map keeps the test honest about the
// actual JSON, not the Go structs.
func TestShardedStatsJSONShape(t *testing.T) {
	router := testRouter(t, 2)
	ts := httptest.NewServer(newServer(router))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"epoch", "n", "m", "degraded", "uptime_s", "build"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/stats missing aggregate key %q", key)
		}
	}
	shardsAny, ok := raw["shards"]
	if !ok {
		t.Fatal(`/stats missing "shards" block in sharded mode`)
	}
	shards, ok := shardsAny.([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf(`"shards" = %v, want a 2-entry array`, shardsAny)
	}
	sumEdges := 0.0
	for i, sa := range shards {
		s, ok := sa.(map[string]any)
		if !ok {
			t.Fatalf("shards[%d] is %T, want an object", i, sa)
		}
		for _, key := range []string{"shard", "epoch", "n", "m", "queue_len",
			"query_queue_depth", "dirty", "degraded", "overloaded", "wal_enabled"} {
			if _, ok := s[key]; !ok {
				t.Errorf("shards[%d] missing key %q", i, key)
			}
		}
		if got := s["shard"].(float64); got != float64(i) {
			t.Errorf("shards[%d].shard = %v", i, got)
		}
		sumEdges += s["m"].(float64)
	}
	// The aggregate edge count is the sum of the per-shard counts (cut
	// edges counted once per holding shard — documented in shard.Stats).
	if agg := raw["m"].(float64); agg != sumEdges {
		t.Errorf("aggregate m = %v, sum of shards = %v", agg, sumEdges)
	}

	// Single-manager /stats must NOT grow a shards block: omitempty keeps
	// the old wire shape byte-compatible.
	mgr := testManager(t)
	ts1 := httptest.NewServer(newServer(mgr))
	defer ts1.Close()
	resp1, err := ts1.Client().Get(ts1.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp1.Body.Close()
	var raw1 map[string]any
	if err := json.NewDecoder(resp1.Body).Decode(&raw1); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw1["shards"]; ok {
		t.Error(`single-manager /stats grew a "shards" key`)
	}
}

// TestShardedMetricsEndpoint: the per-shard families and router phase
// histograms reach the HTTP exposition.
func TestShardedMetricsEndpoint(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 120, NumCommunities: 6, MinSize: 8, MaxSize: 20,
		PIntra: 0.5, BackgroundEdges: 80, Seed: 3,
	})
	reg := telemetry.NewRegistry()
	router, err := shard.New(g, shard.Config{Shards: 2, Seed: 9, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	ts := httptest.NewServer(newServerWith(router, reg, nil))
	defer ts.Close()
	c := ts.Client()

	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{0, 1}}, nil); code != 200 && code != 404 {
		t.Fatalf("/query status %d", code)
	}
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ctc_shards", "ctc_shard_epoch",
		"ctc_router_phase_duration_seconds", "ctc_router_queries_total"} {
		if fams[name] == nil {
			t.Errorf("/metrics missing family %q", name)
		}
	}
	if f := fams["ctc_shard_epoch"]; f != nil && len(f.Samples) != 2 {
		t.Errorf("ctc_shard_epoch has %d samples, want 2", len(f.Samples))
	}
}
