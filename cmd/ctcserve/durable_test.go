package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

// TestMain doubles as the kill -9 smoke's server process: when the helper
// env vars are set, the test binary runs the real ctcserve entry point
// (blocking until killed) instead of the test suite.
func TestMain(m *testing.M) {
	if addr := os.Getenv("CTCSERVE_HELPER_ADDR"); addr != "" {
		err := run(runConfig{
			addr:     addr,
			loadPath: os.Getenv("CTCSERVE_HELPER_LOAD"),
			walDir:   os.Getenv("CTCSERVE_HELPER_WAL"),
			opts: serve.Options{
				PublishDirty:    8,
				PublishInterval: 50 * time.Millisecond,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctcserve helper:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func buildIndexFile(t *testing.T, g *graph.Graph, path string) *trussindex.Index {
	t.Helper()
	ix := trussindex.BuildFromDecomposition(g, truss.Decompose(g))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestWriteFileAtomicKeepsPrevious pins the -save crash-safety contract: a
// payload that fails halfway through its writes must leave the previously
// saved index untouched and loadable, with no temp litter.
func TestWriteFileAtomicKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.ctc")
	g := gen.ErdosRenyi(30, 0.2, 0xA70)
	want := buildIndexFile(t, g, path)

	err := writeFileAtomic(path, func(f *os.File) error {
		if _, werr := f.Write([]byte("half a snapshot that will never be com")); werr != nil {
			return werr
		}
		return errors.New("simulated mid-write failure")
	})
	if err == nil {
		t.Fatal("failing payload did not surface an error")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ix, err := trussindex.ReadFrom(f)
	if err != nil {
		t.Fatalf("previous index unreadable after failed save: %v", err)
	}
	if ix.Graph().M() != want.Graph().M() || ix.MaxTruss() != want.MaxTruss() {
		t.Fatal("previous index content changed")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp litter left behind: %v", names)
	}
}

func durableTestServer(t *testing.T, fs *wal.MemFS) (*serve.Manager, *httptest.Server) {
	t.Helper()
	g := gen.ErdosRenyi(40, 0.18, 0xD1E)
	base := func() (*trussindex.Index, error) {
		return trussindex.BuildFromDecomposition(g, truss.Decompose(g)), nil
	}
	m, _, err := serve.OpenDurable("wal", base, wal.Options{FS: fs}, serve.Options{
		PublishDirty:    8,
		PublishInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ts := httptest.NewServer(newServer(m))
	t.Cleanup(ts.Close)
	return m, ts
}

// TestStatsJSONShape pins the wire shape of the durability observability
// fields: operators' dashboards key on these exact names.
func TestStatsJSONShape(t *testing.T) {
	_, ts := durableTestServer(t, wal.NewMemFS())
	c := ts.Client()
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{
		updateOp: updateOp{Op: "add", U: 1, V: 2}, Flush: true,
	}, nil); code != 200 {
		t.Fatalf("/update status %d", code)
	}
	resp, err := c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"epoch", "n", "m", "degraded",
		"wal_enabled", "wal_last_seq", "wal_durable_seq", "wal_checkpoint_seq",
		"wal_segments", "wal_bytes", "wal_appends", "wal_syncs",
		"wal_last_fsync_us", "wal_dropped_updates",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/stats missing %q", key)
		}
	}
	if raw["wal_enabled"] != true {
		t.Fatal("wal_enabled false on a durable server")
	}
	if raw["degraded"] != false {
		t.Fatal("healthy server reports degraded")
	}
	if n, _ := raw["wal_durable_seq"].(float64); n < 2 {
		t.Fatalf("wal_durable_seq %v after a flushed update", raw["wal_durable_seq"])
	}
}

// TestServerDegradedSurface drives a WAL failure through the full HTTP
// surface: /update turns into a typed 503 ("degraded", not a generic
// error), /healthz goes unhealthy with the WAL error, and /query keeps
// serving the last published epoch.
func TestServerDegradedSurface(t *testing.T) {
	fs := wal.NewMemFS()
	_, ts := durableTestServer(t, fs)
	c := ts.Client()

	// Healthy first.
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{
		updateOp: updateOp{Op: "add", U: 1, V: 2}, Flush: true,
	}, nil); code != 200 {
		t.Fatalf("healthy /update status %d", code)
	}

	// Disk dies.
	fs.Fail = func(op, name string) error {
		if op == "write" || op == "sync" {
			return fmt.Errorf("%w: disk full", wal.ErrInjected)
		}
		return nil
	}
	body, _ := json.Marshal(updateRequest{updateOp: updateOp{Op: "add", U: 3, V: 4}, Flush: true})
	resp, err := c.Post(ts.URL+"/update", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	if derr := json.NewDecoder(resp.Body).Decode(&e); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || e["code"] != "degraded" {
		t.Fatalf("/update during WAL failure: status %d code %q, want 503 degraded", resp.StatusCode, e["code"])
	}
	// Subsequent updates are rejected up front.
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{
		updateOp: updateOp{Op: "add", U: 5, V: 6},
	}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/update while degraded: status %d, want 503", code)
	}

	resp, err = c.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while degraded: status %d, want 503", resp.StatusCode)
	}

	// Reads stay up.
	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{1, 2}, Algo: "truss"}, nil); code != 200 && code != 404 {
		t.Fatalf("/query while degraded: status %d", code)
	}
	resp, err = c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if derr := json.NewDecoder(resp.Body).Decode(&raw); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if raw["degraded"] != true || raw["wal_last_error"] == "" {
		t.Fatalf("degraded stats not surfaced: degraded=%v wal_last_error=%v", raw["degraded"], raw["wal_last_error"])
	}
}

// TestKillNineRecovery is the real-process crash smoke: a ctcserve child
// (this test binary re-exec'd through TestMain) serves with -wal, takes
// flushed updates over HTTP, and is killed with SIGKILL — no shutdown path
// runs. A restarted child on the same directory must recover, and its
// truss-community answers must match a differential oracle computed from
// scratch on the expected post-update graph.
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	loadPath := filepath.Join(dir, "base.ctc")
	g := gen.ErdosRenyi(60, 0.12, 0x9E11)
	buildIndexFile(t, g, loadPath)

	// The expected final graph: base + a fresh 6-clique + two base-range
	// edges, minus one pre-existing edge.
	cliqueBase := g.N()
	var ups []updateOp
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			ups = append(ups, updateOp{Op: "add", U: cliqueBase + i, V: cliqueBase + j})
		}
	}
	ups = append(ups, updateOp{Op: "add", U: 0, V: 1}, updateOp{Op: "add", U: 0, V: 2})
	delU, delV := g.EdgeEndpoints(0)
	ups = append(ups, updateOp{Op: "remove", U: delU, V: delV})

	model := map[graph.EdgeKey]bool{}
	for _, k := range g.EdgeKeys() {
		model[k] = true
	}
	for _, op := range ups {
		if op.Op == "add" {
			model[graph.Key(op.U, op.V)] = true
		} else {
			delete(model, graph.Key(op.U, op.V))
		}
	}
	b := graph.NewBuilder(cliqueBase+6, len(model))
	b.EnsureVertex(cliqueBase + 5)
	for k := range model {
		u, v := k.Endpoints()
		b.AddEdge(u, v)
	}
	oracleG := b.Build()
	oracleIx := trussindex.BuildFromDecomposition(oracleG, truss.Decompose(oracleG))

	addr := freeAddr(t)
	start := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"CTCSERVE_HELPER_ADDR="+addr,
			"CTCSERVE_HELPER_LOAD="+loadPath,
			"CTCSERVE_HELPER_WAL="+walDir,
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitHealthy := func(cmd *exec.Cmd) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					return
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		_ = cmd.Process.Kill()
		t.Fatal("server did not become healthy")
	}

	cmd := start()
	waitHealthy(cmd)
	c := &http.Client{Timeout: 10 * time.Second}
	// Two flushed batches: both acknowledged, hence both must be durable.
	half := len(ups) / 2
	for _, batch := range [][]updateOp{ups[:half], ups[half:]} {
		var ur updateResponse
		if code := postJSON(t, c, "http://"+addr+"/update", updateRequest{Edges: batch, Flush: true}, &ur); code != 200 {
			t.Fatalf("/update status %d", code)
		}
	}

	// SIGKILL: no Close, no final save — the WAL is all that survives.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cmd2 := start()
	defer func() {
		_ = cmd2.Process.Kill()
		_, _ = cmd2.Process.Wait()
	}()
	waitHealthy(cmd2)

	var st statsResponse
	resp, err := c.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Edges != oracleG.M() {
		t.Fatalf("recovered server has m=%d, oracle %d", st.Edges, oracleG.M())
	}
	if !st.WALEnabled {
		t.Fatal("recovered server reports wal disabled")
	}

	// Differential queries: the recovered community answers must match a
	// from-scratch decomposition of the expected graph.
	queries := [][]int{{cliqueBase, cliqueBase + 5}, {0, 1}, {delU, delV}}
	for _, q := range queries {
		wantG0, wantK, wantErr := oracleIx.FindG0(q)
		var qr queryResponse
		code := postJSON(t, c, "http://"+addr+"/query", queryRequest{Q: q, Algo: "truss"}, &qr)
		if wantErr != nil {
			if code != http.StatusNotFound {
				t.Fatalf("query %v: status %d, oracle says no community", q, code)
			}
			continue
		}
		if code != 200 {
			t.Fatalf("query %v: status %d", q, code)
		}
		if qr.K != wantK {
			t.Fatalf("query %v: k=%d, oracle %d", q, qr.K, wantK)
		}
		want := append([]int(nil), wantG0.Vertices()...)
		got := append([]int(nil), qr.Vertices...)
		sort.Ints(want)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("query %v: %d vertices, oracle %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %v: vertex sets differ at %d: %d vs %d", q, i, got[i], want[i])
			}
		}
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
