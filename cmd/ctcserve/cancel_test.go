package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/graph"
	"repro/internal/serve"
)

// slowChainGraph builds a long clique chain plus a star: with algo=basic
// and k=2 the starting graph is the whole network and the peel removes one
// vertex per round, so a query is slow enough to cancel (or hold an
// admission slot) mid-flight. The returned query spans the chain.
func slowChainGraph() (*graph.Graph, []int) {
	const count, size, leaves = 220, 8, 1500
	var edges [][2]int
	base := 0
	for c := 0; c < count; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{base + i, base + j})
			}
		}
		base += size - 1
	}
	n := base + 1
	for l := 0; l < leaves; l++ {
		edges = append(edges, [2]int{0, n + l})
	}
	return graph.FromEdges(n+leaves, edges), []int{1, (size-1)*count - 1}
}

func cancelTestManager(t *testing.T) (*serve.Manager, []int) {
	t.Helper()
	g, q := slowChainGraph()
	// The result cache is disabled: these tests repeat one slow query to
	// observe it cancelling mid-peel, and a cache hit would answer the
	// repeat instantly instead of running it.
	m := serve.NewManager(g, serve.Options{Admission: admit.Config{CacheEntries: -1}})
	t.Cleanup(m.Close)
	return m, q
}

// TestQueryCancelOnClientDisconnect is the serving-layer cancellation
// contract: the /query handler runs the search on r.Context(), which the
// net/http server cancels when the client goes away — so an abandoned
// query stops peeling instead of running to completion. The test drives
// the handler with an explicitly cancelled request context (exactly the
// signal a dropped connection produces), asserts the structured 499
// "canceled" response arrives well before the query's natural runtime, and
// that the deadline flavor maps to 504.
func TestQueryCancelOnClientDisconnect(t *testing.T) {
	mgr, q := cancelTestManager(t)
	h := newServer(mgr)
	body, _ := json.Marshal(queryRequest{Q: q, Algo: "basic", K: 2})

	do := func(ctx context.Context) (int, map[string]string, time.Duration) {
		req := httptest.NewRequest("POST", "/query", bytes.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rec, req)
		elapsed := time.Since(t0)
		var errBody map[string]string
		if rec.Code != http.StatusOK {
			_ = json.Unmarshal(rec.Body.Bytes(), &errBody)
		}
		return rec.Code, errBody, elapsed
	}

	// Baseline: the query completes and is slow enough to observe aborting.
	code, _, full := do(context.Background())
	if code != http.StatusOK {
		t.Fatalf("baseline query status %d", code)
	}
	if full < 20*time.Millisecond {
		t.Skipf("baseline query only took %v; too fast to observe cancellation", full)
	}

	// Client disconnect: the server cancels r.Context() → 499 "canceled".
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(full/10, cancel)
	defer timer.Stop()
	defer cancel()
	code, errBody, elapsed := do(ctx)
	if code != statusClientClosedRequest {
		t.Fatalf("disconnected query status %d, want %d (body %v)", code, statusClientClosedRequest, errBody)
	}
	if errBody["code"] != "canceled" {
		t.Fatalf("disconnected query error code %q, want \"canceled\"", errBody["code"])
	}
	if elapsed > full {
		t.Fatalf("disconnected query held the handler %v, longer than a full query (%v)", elapsed, full)
	}

	// Per-request deadline: 504 "deadline_exceeded".
	dctx, dcancel := context.WithTimeout(context.Background(), full/10)
	defer dcancel()
	code, errBody, elapsed = do(dctx)
	if code != http.StatusGatewayTimeout || errBody["code"] != "deadline_exceeded" {
		t.Fatalf("deadline query status %d code %q, want 504 \"deadline_exceeded\"", code, errBody["code"])
	}
	if elapsed > full {
		t.Fatalf("deadline query held the handler %v, longer than a full query (%v)", elapsed, full)
	}

	// The abandoned queries released their snapshot references: the server
	// still answers both /query and /healthz.
	if code, _, _ = do(context.Background()); code != http.StatusOK {
		t.Fatalf("post-cancel query status %d", code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-cancel healthz status %d", rec.Code)
	}
}

// TestQueryCancelOverRealHTTP exercises the same contract end to end over a
// real TCP connection: the client drops mid-query and the server must keep
// serving (the in-flight peel was shed, its snapshot reference released).
func TestQueryCancelOverRealHTTP(t *testing.T) {
	mgr, q := cancelTestManager(t)
	ts := httptest.NewServer(newServer(mgr))
	defer ts.Close()
	body, _ := json.Marshal(queryRequest{Q: q, Algo: "basic", K: 2})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	if resp, err := ts.Client().Do(req); err == nil {
		// The query may legitimately finish before the cancel fires on a
		// fast machine; that is not a failure of the contract.
		resp.Body.Close()
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want a context cancellation", err)
	}

	// The server is still healthy and answers a quick query afterwards.
	quick, _ := json.Marshal(queryRequest{Q: q[:1], Algo: "truss"})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", bytes.NewReader(quick))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect query status %d", resp.StatusCode)
	}
}
