package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/steiner"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// server wires the serve.Manager to the HTTP API. Query handlers acquire a
// snapshot reference, run against that epoch's immutable index, and release;
// they never touch the writer, so query latency is independent of update
// load.
type server struct {
	mgr   *serve.Manager
	start time.Time
}

func newServer(mgr *serve.Manager) http.Handler {
	s := &server{mgr: mgr, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

type queryRequest struct {
	// Q holds the query vertex IDs.
	Q []int `json:"q"`
	// Algo selects the search algorithm: "lctc" (default), "basic", "bulk",
	// or "truss" (G0 without free-rider removal).
	Algo string `json:"algo"`
	// K, when > 0, requests a fixed-trussness community instead of the
	// maximum (the paper's Exp-5 variant).
	K int32 `json:"k"`
}

type queryResponse struct {
	Algo      string  `json:"algo"`
	Epoch     int64   `json:"epoch"`
	K         int32   `json:"k"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	QueryDist int     `json:"query_dist"`
	Density   float64 `json:"density"`
	Vertices  []int   `json:"vertices,omitempty"`
	ElapsedUS int64   `json:"elapsed_us"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Q) == 0 {
		httpError(w, http.StatusBadRequest, "empty query vertex set")
		return
	}
	snap := s.mgr.Acquire()
	defer snap.Release()
	sr := core.NewSearcher(snap.Index())
	opt := &core.Options{FixedK: req.K}
	t0 := time.Now()
	var c *core.Community
	var err error
	switch req.Algo {
	case "", "lctc":
		c, err = sr.LCTC(req.Q, opt)
	case "basic":
		c, err = sr.Basic(req.Q, opt)
	case "bulk":
		c, err = sr.BulkDelete(req.Q, opt)
	case "truss":
		c, err = sr.TrussOnly(req.Q, opt)
	default:
		httpError(w, http.StatusBadRequest, "unknown algo %q (want lctc, basic, bulk or truss)", req.Algo)
		return
	}
	elapsed := time.Since(t0)
	if err != nil {
		// All three "no such community" shapes map to 404: the index's
		// sentinel, the truss package's (LCTC extraction), and a Steiner
		// seed that cannot connect the terminals.
		if errors.Is(err, trussindex.ErrNoCommunity) ||
			errors.Is(err, truss.ErrNoCommunity) ||
			errors.Is(err, steiner.ErrDisconnected) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	writeJSON(w, queryResponse{
		Algo:      c.Algorithm,
		Epoch:     snap.Epoch(),
		K:         c.K,
		N:         c.N(),
		M:         c.M(),
		QueryDist: c.QueryDist(),
		Density:   c.Density(),
		Vertices:  c.Vertices(),
		ElapsedUS: elapsed.Microseconds(),
	})
}

type updateOp struct {
	// Op is "add" or "remove".
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

type updateRequest struct {
	// Either a single inline op...
	updateOp
	// ...or a batch.
	Edges []updateOp `json:"edges"`
	// Flush forces the batch to be applied and published before the
	// response is written (the response epoch then reflects it).
	Flush bool `json:"flush"`
}

type updateResponse struct {
	Enqueued int   `json:"enqueued"`
	Epoch    int64 `json:"epoch"`
	Flushed  bool  `json:"flushed"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ops := req.Edges
	if req.Op != "" {
		ops = append([]updateOp{req.updateOp}, ops...)
	}
	if len(ops) == 0 {
		httpError(w, http.StatusBadRequest, "no update ops")
		return
	}
	// Validate the whole batch before enqueueing anything, so a 400 never
	// leaves a partially applied batch behind.
	ups := make([]serve.Update, 0, len(ops))
	for _, op := range ops {
		switch op.Op {
		case "add":
			ups = append(ups, serve.Update{Op: serve.OpAdd, U: op.U, V: op.V})
		case "remove":
			ups = append(ups, serve.Update{Op: serve.OpRemove, U: op.U, V: op.V})
		default:
			httpError(w, http.StatusBadRequest, "unknown op %q (want add or remove)", op.Op)
			return
		}
	}
	enqueued := 0
	for _, up := range ups {
		if err := s.mgr.Apply(up); err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		enqueued++
	}
	if req.Flush {
		if err := s.mgr.Flush(); err != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	writeJSON(w, updateResponse{
		Enqueued: enqueued,
		Epoch:    s.mgr.Stats().Epoch,
		Flushed:  req.Flush,
	})
}

type statsResponse struct {
	serve.Stats
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
	UptimeS       float64 `json:"uptime_s"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.Stats()
	writeJSON(w, statsResponse{
		Stats:         st,
		SnapshotAgeMS: float64(st.SnapshotAge.Microseconds()) / 1000,
		UptimeS:       time.Since(s.start).Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.mgr.Acquire()
	defer snap.Release()
	fmt.Fprintf(w, "ok epoch=%d\n", snap.Epoch())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
