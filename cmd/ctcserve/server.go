package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/admit"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/directed"
	"repro/internal/prob"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/steiner"
	"repro/internal/telemetry"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// backend is the query/update plane the HTTP API serves: a single
// *serve.Manager, or the sharded tier's *shard.Router (N partitioned
// managers behind scatter-gather). Both satisfy it without adapters.
type backend interface {
	Query(ctx context.Context, req core.Request) (*core.Result, error)
	Apply(up serve.Update) error
	Flush() error
	Stats() serve.Stats
}

// server wires the backend to the HTTP API. Query handlers run against an
// immutable epoch snapshot (one per shard in sharded mode); they never
// touch the writer loops, so query latency is independent of update load.
type server struct {
	b backend
	// router is non-nil in sharded mode and adds the per-shard /stats
	// block and the shards count on /healthz.
	router *shard.Router
	start  time.Time
}

// newServer builds the API without the telemetry endpoints (tests and
// embedders that wire no registry).
func newServer(b backend) http.Handler {
	return newServerWith(b, nil, nil)
}

// newServerWith builds the full API: the query/update/stats plane plus,
// when wired, GET /metrics (Prometheus text exposition of reg) and
// GET /debug/slowlog (the tracer's slow-query ring). pprof is NOT mounted
// here — it lives on the separate -debug-addr listener.
func newServerWith(b backend, reg *telemetry.Registry, tracer *telemetry.Tracer) http.Handler {
	s := &server{b: b, start: time.Now()}
	if r, ok := b.(*shard.Router); ok {
		s.router = r
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	if tracer != nil {
		mux.Handle("GET /debug/slowlog", tracer.SlowLogHandler())
	}
	return mux
}

type queryRequest struct {
	// Q holds the query vertex IDs.
	Q []int `json:"q"`
	// Algo selects the search algorithm: "lctc" (default), "basic",
	// "bd"/"bulk", "truss" (G0 without free-rider removal), "dtruss"
	// (directed D-truss), "prob" (probabilistic (k,γ)-truss), "mdc", or
	// "qdc" (the two non-truss baselines).
	Algo string `json:"algo"`
	// K, when > 0, requests a fixed-trussness community instead of the
	// maximum (the paper's Exp-5 variant).
	K int32 `json:"k"`
	// Eta overrides LCTC's expansion budget η (0 = default 1000).
	Eta int `json:"eta"`
	// Gamma overrides the truss-distance penalty γ (0 = default 3; only
	// meaningful with distance "truss").
	Gamma float64 `json:"gamma"`
	// Distance selects LCTC's seed metric: "truss" (default) or "hop".
	Distance string `json:"distance"`
	// Direction selects D-truss edge orientation: "both" (default),
	// "lowhigh", "highlow", or "hash"; only meaningful with algo "dtruss".
	Direction string `json:"direction"`
	// MinProb overrides the (k,γ)-truss probability threshold γ in (0,1]
	// (0 = default 0.5); only meaningful with algo "prob".
	MinProb float64 `json:"min_prob"`
	// Tenant identifies the caller for admission fairness and per-tenant
	// /stats accounting; the X-Tenant header is the fallback when empty.
	Tenant string `json:"tenant"`
	// TimeoutMS, when > 0, bounds the query with a server-side deadline.
	// Admission control sheds the request up front (429) if its estimated
	// start time already overruns the deadline; a query that overruns it
	// mid-execution is cancelled (504).
	TimeoutMS int `json:"timeout_ms"`
}

// queryStats mirrors core.QueryStats on the wire (microsecond timings).
type queryStats struct {
	SeedUS           int64  `json:"seed_us"`
	ExpandUS         int64  `json:"expand_us"`
	PeelUS           int64  `json:"peel_us"`
	SeedEdges        int    `json:"seed_edges"`
	PeelRounds       int    `json:"peel_rounds"`
	EdgesPeeled      int    `json:"edges_peeled"`
	WorkspaceReused  bool   `json:"workspace_reused"`
	QueueWaitUS      int64  `json:"queue_wait_us"`
	TotalWithQueueUS int64  `json:"total_with_queue_us"`
	CacheHit         bool   `json:"cache_hit"`
	Tenant           string `json:"tenant,omitempty"`
	// ShardEpochs is the per-shard epoch vector of the sharded tier: entry
	// i is the epoch of shard i's snapshot this answer was computed
	// against. Absent in single-manager mode.
	ShardEpochs []int64 `json:"shard_epochs,omitempty"`
}

type queryResponse struct {
	Algo      string     `json:"algo"`
	Epoch     int64      `json:"epoch"`
	K         int32      `json:"k"`
	N         int        `json:"n"`
	M         int        `json:"m"`
	QueryDist int        `json:"query_dist"`
	Density   float64    `json:"density"`
	Vertices  []int      `json:"vertices,omitempty"`
	ElapsedUS int64      `json:"elapsed_us"`
	Stats     queryStats `json:"stats"`
}

// statusClientClosedRequest is nginx's non-standard 499 ("client closed
// request"): the query was cancelled because the HTTP client disconnected,
// so no one will read the response — the code exists for access logs.
const statusClientClosedRequest = 499

// toRequest decodes the wire shape into a validated core.Request. The
// decoding here is pure translation; all domain validation (vertex ranges,
// parameter domains) happens once inside Search.
func (qr *queryRequest) toRequest() (core.Request, error) {
	algo, err := core.ParseAlgo(qr.Algo)
	if err != nil {
		return core.Request{}, err
	}
	dir, err := core.ParseDirection(qr.Direction)
	if err != nil {
		return core.Request{}, err
	}
	req := core.Request{Q: qr.Q, Algo: algo, K: qr.K, Eta: qr.Eta, Gamma: qr.Gamma,
		Direction: dir, MinProb: qr.MinProb, Tenant: qr.Tenant}
	switch qr.Distance {
	case "", "truss":
		req.DistanceMode = core.DistTrussPenalty
	case "hop":
		req.DistanceMode = core.DistHop
	default:
		return core.Request{}, fmt.Errorf("%w: unknown distance %q (want truss or hop)", core.ErrBadParam, qr.Distance)
	}
	return req, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr queryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		httpErrorCode(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	req, err := qr.toRequest()
	if err != nil {
		httpErrorCode(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Tenant")
	}
	// r.Context() is cancelled when the client disconnects, so an abandoned
	// query stops peeling mid-round instead of running to completion; a
	// timeout_ms budget additionally arms admission's deadline-aware shed.
	ctx := r.Context()
	if qr.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(qr.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := s.b.Query(ctx, req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	st := res.Stats
	writeJSON(w, queryResponse{
		Algo:      res.Algorithm,
		Epoch:     st.Epoch,
		K:         res.K,
		N:         res.N(),
		M:         res.M(),
		QueryDist: res.QueryDist(),
		Density:   res.Density(),
		Vertices:  res.Vertices(),
		ElapsedUS: st.Total.Microseconds(),
		Stats: queryStats{
			SeedUS:           st.Seed.Microseconds(),
			ExpandUS:         st.Expand.Microseconds(),
			PeelUS:           st.Peel.Microseconds(),
			SeedEdges:        st.SeedEdges,
			PeelRounds:       st.PeelRounds,
			EdgesPeeled:      st.EdgesPeeled,
			WorkspaceReused:  st.WorkspaceReused,
			QueueWaitUS:      st.QueueWait.Microseconds(),
			TotalWithQueueUS: st.TotalWithQueue().Microseconds(),
			CacheHit:         st.CacheHit,
			Tenant:           st.Tenant,
			ShardEpochs:      st.ShardEpochs,
		},
	})
}

// writeQueryError maps a Search error onto a status code and a stable
// machine-readable error code (errors.Is on the typed sentinels — no
// string matching). The taxonomy, in precedence order: shed → 429 with
// Retry-After, bad request → 400, no community → 404, client gone → 499,
// deadline blown mid-query → 504, everything else → 422.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		// Load shed before any work ran. Retry-After comes from the gate's
		// backlog estimate (rounded up, at least a second) so well-behaved
		// clients spread their retries past the burst.
		var oe *admit.OverloadError
		retry := time.Second
		if errors.As(err, &oe) && oe.RetryAfter > retry {
			retry = oe.RetryAfter
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfterSeconds(retry))))
		httpErrorCode(w, http.StatusTooManyRequests, "overloaded", "%v", err)
	case errors.Is(err, core.ErrEmptyQuery) || errors.Is(err, core.ErrVertexOutOfRange) ||
		errors.Is(err, core.ErrBadParam):
		httpErrorCode(w, http.StatusBadRequest, "bad_request", "%v", err)
	case errors.Is(err, trussindex.ErrNoCommunity) || errors.Is(err, truss.ErrNoCommunity) ||
		errors.Is(err, steiner.ErrDisconnected) ||
		errors.Is(err, directed.ErrNoCommunity) || errors.Is(err, prob.ErrNoCommunity) ||
		errors.Is(err, baseline.ErrNoCommunity):
		// Every "no such community" shape maps to 404: the index's
		// sentinel, the truss package's (LCTC extraction), a Steiner seed
		// that cannot connect the terminals, and the per-model sentinels
		// of D-truss, probabilistic truss, and the MDC/QDC baselines.
		httpErrorCode(w, http.StatusNotFound, "no_community", "%v", err)
	case errors.Is(err, context.Canceled):
		httpErrorCode(w, statusClientClosedRequest, "canceled", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		httpErrorCode(w, http.StatusGatewayTimeout, "deadline_exceeded", "%v", err)
	default:
		httpErrorCode(w, http.StatusUnprocessableEntity, "internal", "%v", err)
	}
}

// retryAfterSeconds rounds a backoff hint up to whole seconds, minimum 1
// (Retry-After is integral seconds on the wire).
func retryAfterSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

type updateOp struct {
	// Op is "add" or "remove".
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

type updateRequest struct {
	// Either a single inline op...
	updateOp
	// ...or a batch.
	Edges []updateOp `json:"edges"`
	// Flush forces the batch to be applied and published before the
	// response is written (the response epoch then reflects it).
	Flush bool `json:"flush"`
}

type updateResponse struct {
	Enqueued int   `json:"enqueued"`
	Epoch    int64 `json:"epoch"`
	Flushed  bool  `json:"flushed"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErrorCode(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	ops := req.Edges
	if req.Op != "" {
		ops = append([]updateOp{req.updateOp}, ops...)
	}
	if len(ops) == 0 {
		httpErrorCode(w, http.StatusBadRequest, "bad_request", "no update ops")
		return
	}
	// Validate the whole batch before enqueueing anything, so a 400 never
	// leaves a partially applied batch behind.
	ups := make([]serve.Update, 0, len(ops))
	for _, op := range ops {
		switch op.Op {
		case "add":
			ups = append(ups, serve.Update{Op: serve.OpAdd, U: op.U, V: op.V})
		case "remove":
			ups = append(ups, serve.Update{Op: serve.OpRemove, U: op.U, V: op.V})
		default:
			httpErrorCode(w, http.StatusBadRequest, "bad_request", "unknown op %q (want add or remove)", op.Op)
			return
		}
	}
	enqueued := 0
	for _, up := range ups {
		if err := s.b.Apply(up); err != nil {
			writeUpdateError(w, err)
			return
		}
		enqueued++
	}
	if req.Flush {
		if err := s.b.Flush(); err != nil {
			writeUpdateError(w, err)
			return
		}
	}
	writeJSON(w, updateResponse{
		Enqueued: enqueued,
		Epoch:    s.b.Stats().Epoch,
		Flushed:  req.Flush,
	})
}

type statsResponse struct {
	serve.Stats
	SnapshotAgeMS float64 `json:"snapshot_age_ms"`
	UptimeS       float64 `json:"uptime_s"`
	// Build identifies the binary: Go toolchain version, and the VCS
	// revision/dirty flag when the build stamped them.
	Build telemetry.BuildInfo `json:"build"`
	// Shards breaks the aggregate down per shard in sharded mode: the
	// embedded Stats are then tier-wide aggregates (max epoch, summed
	// counters, any-of flags). Absent in single-manager mode.
	Shards []shard.ShardStat `json:"shards,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.b.Stats()
	resp := statsResponse{
		Stats:         st,
		SnapshotAgeMS: float64(st.SnapshotAge.Microseconds()) / 1000,
		UptimeS:       time.Since(s.start).Seconds(),
		Build:         telemetry.Build(),
	}
	if s.router != nil {
		resp.Shards = s.router.ShardStats()
	}
	writeJSON(w, resp)
}

// degradedRetryAfterS is the Retry-After hint on degraded (read-only)
// responses: recovery needs an operator restart, so the backoff is long —
// a client retrying sooner can only collect more 503s.
const degradedRetryAfterS = 30

// writeUpdateError maps an update-path failure onto a status code and a
// stable machine-readable code: "degraded" when a WAL failure has made the
// server read-only (the client must not retry against this process — the
// Retry-After hint covers a failover, not a local recovery), "unavailable"
// for shutdown.
func writeUpdateError(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrDegraded) {
		w.Header().Set("Retry-After", strconv.Itoa(degradedRetryAfterS))
		httpErrorCode(w, http.StatusServiceUnavailable, "degraded", "%v", err)
		return
	}
	httpErrorCode(w, http.StatusServiceUnavailable, "unavailable", "%v", err)
}

// healthzResponse distinguishes the two unhealthy-ish states an
// orchestrator must treat differently: "degraded" (read-only after a WAL
// failure — fail the instance over, 503) and "overloaded" (shedding load
// but fully functional — do NOT restart it, that only loses the warm
// cache; 200). In sharded mode the flags aggregate any-of across shards:
// one degraded shard makes the tier degraded, because scatter-gather
// answers computed without it would silently miss community members.
type healthzResponse struct {
	Status     string  `json:"status"` // ok | degraded | overloaded
	Epoch      int64   `json:"epoch"`
	Degraded   bool    `json:"degraded"`
	Overloaded bool    `json:"overloaded"`
	WALError   string  `json:"wal_error,omitempty"`
	QueueDepth int     `json:"query_queue_depth"`
	Shards     int     `json:"shards,omitempty"`
	UptimeS    float64 `json:"uptime_s"`
	GoVersion  string  `json:"go_version"`
	Revision   string  `json:"revision,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.b.Stats()
	b := telemetry.Build()
	hr := healthzResponse{
		Status:     "ok",
		Epoch:      st.Epoch,
		Degraded:   st.Degraded,
		Overloaded: st.Overloaded,
		WALError:   st.WALLastError,
		QueueDepth: st.QueryQueueDepth,
		UptimeS:    time.Since(s.start).Seconds(),
		GoVersion:  b.GoVersion,
		Revision:   b.Revision,
	}
	if s.router != nil {
		hr.Shards = s.router.Shards()
	}
	switch {
	case hr.Degraded:
		hr.Status = "degraded"
		w.Header().Set("Retry-After", strconv.Itoa(degradedRetryAfterS))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	case hr.Overloaded:
		hr.Status = "overloaded"
		w.Header().Set("Content-Type", "application/json")
	default:
		w.Header().Set("Content-Type", "application/json")
	}
	_ = json.NewEncoder(w).Encode(hr)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// httpErrorCode writes a structured JSON error: a human-readable message
// plus a stable machine-readable code clients can switch on (bad_request,
// no_community, overloaded, canceled, deadline_exceeded, degraded,
// unavailable, internal).
func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  code,
	})
}
