package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trussindex"
)

// TestHTTPErrorTaxonomy is the errors.Is → status-code table for the wire
// layer: every failure mode maps to a distinct status and stable code, and
// the backoff-carrying responses (429 overloaded, 503 degraded) set
// Retry-After.
func TestHTTPErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name       string
		write      func(w http.ResponseWriter)
		status     int
		code       string
		retryAfter string // "" = header must be absent
	}{
		{"overloaded", func(w http.ResponseWriter) {
			writeQueryError(w, &admit.OverloadError{Reason: "deadline", RetryAfter: 3 * time.Second})
		}, http.StatusTooManyRequests, "overloaded", "3"},
		{"overloaded sub-second hint rounds up", func(w http.ResponseWriter) {
			writeQueryError(w, &admit.OverloadError{Reason: "queue full", RetryAfter: 10 * time.Millisecond})
		}, http.StatusTooManyRequests, "overloaded", "1"},
		{"canceled", func(w http.ResponseWriter) {
			writeQueryError(w, fmt.Errorf("search: %w", context.Canceled))
		}, statusClientClosedRequest, "canceled", ""},
		{"deadline", func(w http.ResponseWriter) {
			writeQueryError(w, fmt.Errorf("search: %w", context.DeadlineExceeded))
		}, http.StatusGatewayTimeout, "deadline_exceeded", ""},
		{"no community", func(w http.ResponseWriter) {
			writeQueryError(w, trussindex.ErrNoCommunity)
		}, http.StatusNotFound, "no_community", ""},
		{"bad request", func(w http.ResponseWriter) {
			writeQueryError(w, fmt.Errorf("%w: k", core.ErrBadParam))
		}, http.StatusBadRequest, "bad_request", ""},
		{"internal", func(w http.ResponseWriter) {
			writeQueryError(w, fmt.Errorf("boom"))
		}, http.StatusUnprocessableEntity, "internal", ""},
		{"degraded update", func(w http.ResponseWriter) {
			writeUpdateError(w, serve.ErrDegraded)
		}, http.StatusServiceUnavailable, "degraded", "30"},
		{"closed update", func(w http.ResponseWriter) {
			writeUpdateError(w, serve.ErrClosed)
		}, http.StatusServiceUnavailable, "unavailable", ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		tc.write(rec)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.status)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Errorf("%s: non-JSON body %q", tc.name, rec.Body.String())
			continue
		}
		if body["code"] != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, body["code"], tc.code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Errorf("%s: Retry-After %q, want %q", tc.name, got, tc.retryAfter)
		}
	}
}

// TestServerOverloadSurface drives the full 429 path over the handler: with
// the single execution slot held by a slow query and an enormous seeded
// cost estimate, a deadline-carrying request is shed as a typed 429 with
// Retry-After (never a 504), /healthz flips to {"status":"overloaded"} but
// stays 200 (shedding is healthy — an orchestrator must not restart the
// instance), and the shed request leaves no trace in the execution
// counters.
func TestServerOverloadSurface(t *testing.T) {
	g, q := slowChainGraph()
	mgr := serve.NewManager(g, serve.Options{Admission: admit.Config{
		MaxConcurrent: 1, QueueSize: 4, CacheEntries: -1, InitialCostNS: 1 << 40,
	}})
	t.Cleanup(mgr.Close)
	h := newServer(mgr)

	// Healthy before any load.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var hz healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || rec.Code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("idle healthz: %d %q (%v)", rec.Code, rec.Body.String(), err)
	}

	// Hold the only slot with the slow query.
	holdCtx, holdCancel := context.WithCancel(context.Background())
	slow, _ := json.Marshal(queryRequest{Q: q, Algo: "basic", K: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest("POST", "/query", bytes.NewReader(slow)).WithContext(holdCtx)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().QueryInflight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	// A deadline-carrying request against the saturated gate: typed 429.
	body, _ := json.Marshal(queryRequest{Q: q, TimeoutMS: 50, Tenant: "late"})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/query", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request status %d (%s), want 429", rec.Code, rec.Body.String())
	}
	var errBody map[string]string
	_ = json.Unmarshal(rec.Body.Bytes(), &errBody)
	if errBody["code"] != "overloaded" {
		t.Fatalf("shed request code %q, want \"overloaded\"", errBody["code"])
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// /healthz reports overloaded, still 200.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if rec.Code != http.StatusOK || hz.Status != "overloaded" || !hz.Overloaded || hz.Degraded {
		t.Fatalf("overloaded healthz: %d %+v", rec.Code, hz)
	}

	// The shed request consumed nothing; per-tenant rejection is visible.
	st := mgr.Stats()
	if st.QueriesAdmitted != st.QueriesExecuted {
		t.Fatalf("admitted=%d executed=%d — the shed request consumed capacity",
			st.QueriesAdmitted, st.QueriesExecuted)
	}
	if st.Tenants["late"].Rejected != 1 {
		t.Fatalf("tenant accounting: %+v", st.Tenants)
	}

	holdCancel()
	wg.Wait()
}

// TestQueryTenantAndCacheOnWire: the tenant rides in via header or body,
// and a repeated request reports cache_hit on the wire.
func TestQueryTenantAndCacheOnWire(t *testing.T) {
	g, q := slowChainGraph()
	mgr := serve.NewManager(g, serve.Options{})
	t.Cleanup(mgr.Close)
	h := newServer(mgr)

	do := func(withHeader bool) queryResponse {
		t.Helper()
		body, _ := json.Marshal(queryRequest{Q: q[:1], Algo: "truss"})
		req := httptest.NewRequest("POST", "/query", bytes.NewReader(body))
		if withHeader {
			req.Header.Set("X-Tenant", "hdr-tenant")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
		}
		var qr queryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}
	first := do(true)
	if first.Stats.CacheHit || first.Stats.Tenant != "hdr-tenant" {
		t.Fatalf("first response stats: %+v", first.Stats)
	}
	second := do(false)
	if !second.Stats.CacheHit {
		t.Fatalf("repeat not served from cache: %+v", second.Stats)
	}
}
