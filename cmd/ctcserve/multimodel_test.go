package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestMultiModelHTTPSmoke drives every ported model end to end over real
// HTTP: POST /query with the new algo spellings and model parameters, then
// scrape /metrics and check the per-algo latency series exist for all of
// them (pre-registered at tracer construction via AlgoLabels, so even a
// model that has answered nothing exports its series).
func TestMultiModelHTTPSmoke(t *testing.T) {
	mgr, reg, tracer := telemetryManager(t, time.Hour)
	ts := httptest.NewServer(newServerWith(mgr, reg, tracer))
	defer ts.Close()
	c := ts.Client()

	cases := []queryRequest{
		{Q: []int{5, 9}, Algo: "dtruss"},
		{Q: []int{5, 9}, Algo: "dtruss", Direction: "lowhigh"},
		{Q: []int{5, 9}, Algo: "dtruss", Direction: "hash"},
		{Q: []int{5, 9}, Algo: "prob"},
		{Q: []int{5, 9}, Algo: "prob", MinProb: 0.7},
		{Q: []int{5, 9}, Algo: "mdc"},
		{Q: []int{5, 9}, Algo: "qdc"},
	}
	answered := 0
	for _, qr := range cases {
		var out queryResponse
		code := postJSON(t, c, ts.URL+"/query", qr, &out)
		if code != http.StatusOK && code != http.StatusNotFound {
			t.Fatalf("query %+v: status %d", qr, code)
		}
		if code != http.StatusOK {
			continue
		}
		answered++
		want, err := core.ParseAlgo(qr.Algo)
		if err != nil {
			t.Fatal(err)
		}
		if out.Algo != want.String() {
			t.Fatalf("query %+v: algo %q, want %q", qr, out.Algo, want.String())
		}
		if out.N == 0 || out.Epoch == 0 {
			t.Fatalf("query %+v: degenerate response %+v", qr, out)
		}
	}
	if answered == 0 {
		t.Fatal("no model produced a community on the smoke graph")
	}

	// Invalid model parameters are 400s with the bad_request taxonomy, not
	// 422 internals.
	for _, qr := range []queryRequest{
		{Q: []int{5}, Algo: "dtruss", Direction: "sideways"},
		{Q: []int{5}, Algo: "prob", MinProb: 1.5},
		{Q: []int{5}, Algo: "prob", MinProb: -0.1},
	} {
		if code := postJSON(t, c, ts.URL+"/query", qr, nil); code != http.StatusBadRequest {
			t.Fatalf("query %+v: status %d, want 400", qr, code)
		}
	}

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, name := range core.AlgoNames() {
		series := `ctc_query_duration_seconds_count{algo="` + name + `"}`
		if !strings.Contains(exposition, series) {
			t.Errorf("/metrics missing pre-registered series %s", series)
		}
	}
}
