package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/trussindex"
)

// discardLogger returns a logger that drops everything; tests exercising
// code paths that log don't want the noise on stderr.
func discardLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

func testManager(t *testing.T) *serve.Manager {
	t.Helper()
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 200, NumCommunities: 10, MinSize: 8, MaxSize: 24,
		Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 150, Seed: 0x5E17E,
	})
	m := serve.NewManager(g, serve.Options{
		PublishDirty:    16,
		PublishInterval: 20 * time.Millisecond,
	})
	t.Cleanup(m.Close)
	return m
}

func postJSON(t *testing.T, client *http.Client, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServerSmoke is the CI smoke: start the server over real HTTP, run a
// query, stream updates, and assert the answers change and the /stats epoch
// advances.
func TestServerSmoke(t *testing.T) {
	mgr := testManager(t)
	ts := httptest.NewServer(newServer(mgr))
	defer ts.Close()
	c := ts.Client()

	// Health and initial stats.
	resp, err := c.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var st0 statsResponse
	resp, err = c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st0); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st0.Epoch < 1 {
		t.Fatalf("initial epoch %d", st0.Epoch)
	}

	// A fresh clique on new vertex IDs, flushed so the next query sees it.
	base := st0.Vertices
	var edges []updateOp
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, updateOp{Op: "add", U: base + i, V: base + j})
		}
	}
	var ur updateResponse
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{Edges: edges, Flush: true}, &ur); code != 200 {
		t.Fatalf("/update status %d", code)
	}
	if ur.Enqueued != len(edges) || !ur.Flushed {
		t.Fatalf("update response %+v", ur)
	}
	if ur.Epoch <= st0.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", st0.Epoch, ur.Epoch)
	}

	// Query the clique across algorithms.
	for _, algo := range []string{"truss", "basic", "bulk", "lctc"} {
		var qr queryResponse
		if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{base, base + 4}, Algo: algo}, &qr); code != 200 {
			t.Fatalf("/query %s status %d", algo, code)
		}
		if qr.K != 5 || qr.N != 5 {
			t.Fatalf("%s on fresh clique: k=%d n=%d, want 5/5", algo, qr.K, qr.N)
		}
		if qr.Epoch < ur.Epoch {
			t.Fatalf("%s answered from epoch %d, update published %d", algo, qr.Epoch, ur.Epoch)
		}
	}

	// Delete the clique again; the same query must now 404.
	var dels []updateOp
	for _, e := range edges {
		dels = append(dels, updateOp{Op: "remove", U: e.U, V: e.V})
	}
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{Edges: dels, Flush: true}, &ur); code != 200 {
		t.Fatalf("/update status %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{base, base + 4}}, nil); code != http.StatusNotFound {
		t.Fatalf("query after delete: status %d, want 404", code)
	}

	// Stats reflect the applied stream.
	var st1 statsResponse
	resp, err = c.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st1.Epoch <= st0.Epoch {
		t.Fatalf("stats epoch did not advance: %d -> %d", st0.Epoch, st1.Epoch)
	}
	if st1.Adds != int64(len(edges)) || st1.Removes != int64(len(dels)) {
		t.Fatalf("stats adds=%d removes=%d, want %d/%d", st1.Adds, st1.Removes, len(edges), len(dels))
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	mgr := testManager(t)
	ts := httptest.NewServer(newServer(mgr))
	defer ts.Close()
	c := ts.Client()

	if code := postJSON(t, c, ts.URL+"/query", queryRequest{}, nil); code != 400 {
		t.Fatalf("empty query: %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/query", queryRequest{Q: []int{0, 1}, Algo: "nope"}, nil); code != 400 {
		t.Fatalf("bad algo: %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{}, nil); code != 400 {
		t.Fatalf("empty update: %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/update", updateRequest{updateOp: updateOp{Op: "frob", U: 0, V: 1}}, nil); code != 400 {
		t.Fatalf("bad op: %d", code)
	}
	resp, err := c.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("truncated body: %d", resp.StatusCode)
	}
}

// TestSaveLoadRoundTrip persists a snapshot through saveSnapshot and
// resumes a manager from it, exercising the versioned format end to end.
func TestSaveLoadRoundTrip(t *testing.T) {
	mgr := testManager(t)
	path := filepath.Join(t.TempDir(), "index.ctc")
	if err := saveSnapshot(mgr, path, discardLogger()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ix, err := trussindex.ReadFrom(f)
	if err != nil {
		t.Fatal(err)
	}
	orig := mgr.Acquire()
	defer orig.Release()
	if ix.Graph().M() != orig.Graph().M() || ix.MaxTruss() != orig.Index().MaxTruss() {
		t.Fatal("persisted snapshot does not match")
	}
	m2 := serve.NewManagerFromIndex(ix, serve.Options{})
	defer m2.Close()
	if got := m2.Stats().Edges; got != orig.Graph().M() {
		t.Fatalf("resumed manager has %d edges, want %d", got, orig.Graph().M())
	}
}
