package main

import (
	"os"
	"path/filepath"
)

// writeFileAtomic writes a file through the standard crash-safe protocol:
// the payload goes to a temp file in the same directory, the temp file is
// fsynced, renamed over path, and the directory is fsynced so the rename
// itself is durable. A failure at any step — including the payload callback
// failing halfway through its writes — removes the temp file and leaves any
// previous content of path untouched; path never holds a torn file.
func writeFileAtomic(path string, payload func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	err = payload(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
