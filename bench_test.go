package repro

// One benchmark per table and figure of the paper's evaluation (Section 6),
// plus ablations. Each benchmark regenerates the artifact through the
// internal/exp drivers and prints the rows/series once, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. EXPERIMENTS.md records the outputs next
// to the paper's numbers.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/gen"
)

// benchCfg keeps the full suite in the minutes range; raise QueriesPerPoint
// (or run cmd/ctcbench -queries 100) for tighter averages.
var benchCfg = exp.Config{
	QueriesPerPoint: 4,
	Seed:            0xBE7C,
	BasicTimeout:    1500 * time.Millisecond,
	Quiet:           true,
}

var printOnce sync.Map

// printFigures renders the artifact the first time its benchmark runs.
func printFigures(id string, figs []*exp.Figure) {
	if _, loaded := printOnce.LoadOrStore(id, true); loaded {
		return
	}
	for _, f := range figs {
		f.Render(os.Stdout)
	}
}

func printTable(id string, t *exp.Table) {
	if _, loaded := printOnce.LoadOrStore(id, true); loaded {
		return
	}
	t.Render(os.Stdout)
}

func network(b *testing.B, name string) *gen.Network {
	b.Helper()
	nw, err := gen.NetworkByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

func BenchmarkTable2Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("t2", exp.Table2(benchCfg))
	}
}

func BenchmarkTable3Index(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("t3", exp.Table3(benchCfg))
	}
}

func BenchmarkFig5QuerySizeDBLP(b *testing.B) {
	nw := network(b, "dblp")
	for i := 0; i < b.N; i++ {
		printFigures("f5", exp.RunQuerySize(nw, "Fig5", benchCfg))
	}
}

func BenchmarkFig6QuerySizeFacebook(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("f6", exp.RunQuerySize(nw, "Fig6", benchCfg))
	}
}

func BenchmarkFig7DegreeRankDBLP(b *testing.B) {
	nw := network(b, "dblp")
	for i := 0; i < b.N; i++ {
		printFigures("f7", exp.RunDegreeRank(nw, "Fig7", benchCfg))
	}
}

func BenchmarkFig8DegreeRankFacebook(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("f8", exp.RunDegreeRank(nw, "Fig8", benchCfg))
	}
}

func BenchmarkFig9InterDistDBLP(b *testing.B) {
	nw := network(b, "dblp")
	for i := 0; i < b.N; i++ {
		printFigures("f9", exp.RunInterDistance(nw, "Fig9", benchCfg))
	}
}

func BenchmarkFig10InterDistFacebook(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("f10", exp.RunInterDistance(nw, "Fig10", benchCfg))
	}
}

func BenchmarkFig11CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.CaseStudy(1)
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printOnce.LoadOrStore("f11", true); !loaded {
			res.Table().Render(os.Stdout)
			fmt.Fprintf(os.Stdout, "  community: %v\n\n", res.MemberNames)
		}
	}
}

func BenchmarkFig12GroundTruth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printFigures("f12", exp.RunGroundTruth(benchCfg, nil))
	}
}

func BenchmarkFig13DiamTruss(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("f13", exp.RunDiamApprox(nw, benchCfg))
	}
}

func BenchmarkFig14VaryK(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("f14", []*exp.Figure{exp.RunVaryK(nw, benchCfg)})
	}
}

func BenchmarkFig15VaryEta(b *testing.B) {
	nw := network(b, "dblp")
	for i := 0; i < b.N; i++ {
		printFigures("f15", exp.RunVaryEta(nw, benchCfg))
	}
}

func BenchmarkFig16VaryGamma(b *testing.B) {
	nw := network(b, "dblp")
	for i := 0; i < b.N; i++ {
		printFigures("f16", exp.RunVaryGamma(nw, benchCfg))
	}
}

func BenchmarkAblationSteiner(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("abl-steiner", []*exp.Figure{exp.RunAblationSteiner(nw, benchCfg)})
	}
}

func BenchmarkAblationBulkRule(b *testing.B) {
	nw := network(b, "facebook")
	for i := 0; i < b.N; i++ {
		printFigures("abl-bulk", []*exp.Figure{exp.RunAblationBulkRule(nw, benchCfg)})
	}
}

// Micro-benchmarks for the primitive operations the complexity analysis of
// Section 4 talks about: index construction (Remark 1), FindG0 (Remark 2),
// and single queries per algorithm.

func BenchmarkMicroIndexBuildFacebook(b *testing.B) {
	g := network(b, "facebook").Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Open(g)
		_ = c.MaxTrussness()
	}
}

func BenchmarkMicroQueryLCTCDBLP(b *testing.B) {
	nw := network(b, "dblp")
	s := exp.SearcherFor(nw)
	rng := gen.NewRNG(1)
	q, err := gen.QueryByDegreeRank(nw.Graph(), rng, 0, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LCTC(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroQueryBDDBLP(b *testing.B) {
	nw := network(b, "dblp")
	s := exp.SearcherFor(nw)
	rng := gen.NewRNG(1)
	q, err := gen.QueryByDegreeRank(nw.Graph(), rng, 0, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.BulkDelete(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFindG0DBLP(b *testing.B) {
	nw := network(b, "dblp")
	ix := exp.IndexFor(nw)
	rng := gen.NewRNG(1)
	q, err := gen.QueryByDegreeRank(nw.Graph(), rng, 0, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.FindG0(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMaintenanceTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("ext", exp.ExtensionTable(benchCfg))
	}
}
