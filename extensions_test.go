package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestTCPFacade(t *testing.T) {
	c := Open(figure1())
	// The paper's §1 query: TCP must fail, CTC must succeed.
	if _, err := c.TCP([]int{6, 2, 8}); err == nil {
		t.Fatal("TCP should fail on {v4,q3,p1}")
	}
	com, err := c.TCP([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if com.K < 4 {
		t.Fatalf("TCP k = %d", com.K)
	}
}

func TestDynamicFacade(t *testing.T) {
	g := figure1()
	dy := OpenDynamic(g)
	if !dy.InsertEdge(11, 6) || !dy.InsertEdge(11, 7) {
		t.Fatal("inserts failed")
	}
	if dy.EdgeTruss(11, 2) != 4 {
		t.Fatalf("τ(t,q3) = %d after inserts, want 4", dy.EdgeTruss(11, 2))
	}
	client := FreezeDynamic(dy)
	com, err := client.LCTC([]int{11, 2}, &Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if com.K != 4 {
		t.Fatalf("post-update community k = %d, want 4", com.K)
	}
}

func TestProbFacade(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	pg, err := NewProbGraph(g, map[EdgeKey]float64{Key(0, 1): 0.9})
	if err != nil {
		t.Fatal(err)
	}
	com, err := ProbSearch(pg, []int{0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if com.K < 3 || len(com.Vertices) != 4 {
		t.Fatalf("prob community: k=%d |V|=%d", com.K, len(com.Vertices))
	}
	if _, err := NewProbGraph(g, map[EdgeKey]float64{Key(0, 1): 2}); err == nil {
		t.Fatal("bad probability accepted")
	}
}

func TestDirectedFacade(t *testing.T) {
	b := NewDiBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	com, err := DirectedSearch(b.Build(), []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if com.Kc != 1 || len(com.Vertices) != 3 {
		t.Fatalf("directed community: kc=%d |V|=%d", com.Kc, len(com.Vertices))
	}
}

func TestWriteDOTFacade(t *testing.T) {
	c := Open(figure1())
	com, err := c.LCTC([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, com.Subgraph(), map[int]string{0: "gold"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `graph "community"`) || !strings.Contains(out, "gold") {
		t.Fatalf("DOT output:\n%s", out)
	}
}
