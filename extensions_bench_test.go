package repro

// Benchmarks for the §8 future-work extensions and supporting machinery:
// dynamic truss maintenance vs full rebuild, probabilistic decomposition,
// directed community search, and the parallel diameter sweep.

import (
	"testing"

	"repro/internal/directed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prob"
	"repro/internal/truss"
)

func benchGraph() *graph.Graph {
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 2000, NumCommunities: 80, MinSize: 10, MaxSize: 30,
		Overlap: 0.3, PIntra: 0.4, BackgroundEdges: 2000,
		PlantedClique: 12, Seed: 0xBE,
	})
	return g
}

func BenchmarkExtDynamicChurn(b *testing.B) {
	// 100 alternating edge deletions/insertions maintained incrementally.
	g := benchGraph()
	edges := g.EdgeKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dy := truss.NewDynamic(g)
		for j := 0; j < 100; j++ {
			u, v := edges[j*37%len(edges)].Endpoints()
			dy.DeleteEdge(u, v)
			dy.InsertEdge(u, v)
		}
	}
}

func BenchmarkExtFullRebuildChurn(b *testing.B) {
	// The same 100 updates handled by full recomputation (the alternative
	// the dynamic index is measured against).
	g := benchGraph()
	edges := g.EdgeKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu := graph.NewMutable(g, nil)
		for j := 0; j < 10; j++ { // 10 of 100: full rebuilds are ~10x slower
			u, v := edges[j*37%len(edges)].Endpoints()
			mu.DeleteEdge(u, v)
			_ = truss.DecomposeMutable(mu)
			mu.AddEdge(u, v)
			_ = truss.DecomposeMutable(mu)
		}
	}
}

func BenchmarkExtProbDecompose(b *testing.B) {
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 300, NumCommunities: 15, MinSize: 8, MaxSize: 20,
		Overlap: 0.2, PIntra: 0.5, BackgroundEdges: 200, Seed: 0xF0,
	})
	probs := map[graph.EdgeKey]float64{}
	rng := gen.NewRNG(1)
	g.ForEachEdge(func(u, v int) {
		probs[graph.Key(u, v)] = 0.5 + 0.5*rng.Float64()
	})
	pg, err := prob.NewGraph(g, probs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Decompose(pg, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDirectedSearch(b *testing.B) {
	rng := gen.NewRNG(7)
	db := directed.NewDiBuilder(300)
	// Mutual-follow clusters plus random arcs.
	for c := 0; c < 20; c++ {
		base := c * 15
		for i := 0; i < 15; i++ {
			for j := 0; j < 15; j++ {
				if i != j && rng.Float64() < 0.4 {
					db.AddArc(base+i, base+j)
				}
			}
		}
	}
	for i := 0; i < 600; i++ {
		db.AddArc(rng.Intn(300), rng.Intn(300))
	}
	dg := db.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := directed.Search(dg, []int{0, 1}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroDiameterParallel(b *testing.B) {
	g := benchGraph()
	mu := graph.NewMutable(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.DiameterParallel(mu, 0)
	}
}

func BenchmarkMicroDiameterSequential(b *testing.B) {
	g := benchGraph()
	mu := graph.NewMutable(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Diameter(mu)
	}
}
