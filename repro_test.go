package repro

import (
	"bytes"
	"strings"
	"testing"
)

// figure1 is the paper's running example graph.
// q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7 p1=8 p2=9 p3=10 t=11.
func figure1() *Graph {
	return FromEdges(12, [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	})
}

func TestPublicAPIEndToEnd(t *testing.T) {
	c := Open(figure1())
	if c.MaxTrussness() != 4 {
		t.Fatalf("τ̄(∅) = %d, want 4", c.MaxTrussness())
	}
	if c.VertexTrussness(1) != 4 || c.VertexTrussness(11) != 2 {
		t.Fatal("vertex trussness wrong")
	}
	q := []int{0, 1, 2}
	for _, search := range []struct {
		name string
		run  func([]int, *Options) (*Community, error)
	}{
		{"Basic", c.Basic}, {"BulkDelete", c.BulkDelete}, {"LCTC", c.LCTC}, {"TrussOnly", c.TrussOnly},
	} {
		com, err := search.run(q, &Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", search.name, err)
		}
		if com.K != 4 {
			t.Fatalf("%s: k = %d, want 4", search.name, com.K)
		}
		for _, v := range q {
			if !com.Contains(v) {
				t.Fatalf("%s: query vertex %d missing", search.name, v)
			}
		}
	}
	// The approximation algorithms drop the free riders; TrussOnly keeps them.
	basic, _ := c.Basic(q, nil)
	trussOnly, _ := c.TrussOnly(q, nil)
	if basic.N() >= trussOnly.N() {
		t.Fatalf("Basic (%d) should be smaller than TrussOnly (%d)", basic.N(), trussOnly.N())
	}
}

func TestPublicBaselines(t *testing.T) {
	c := Open(figure1())
	if r, err := c.MDC([]int{0, 1}, nil); err != nil || r.N() == 0 {
		t.Fatalf("MDC: %v", err)
	}
	if r, err := c.QDC([]int{0, 1}, nil); err != nil || r.N() == 0 {
		t.Fatalf("QDC: %v", err)
	}
}

func TestIndexRoundTripThroughClient(t *testing.T) {
	c := Open(figure1())
	var buf bytes.Buffer
	if _, err := c.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	com, err := c2.LCTC([]int{0, 1, 2}, &Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if com.K != 4 {
		t.Fatalf("restored client: k = %d", com.K)
	}
}

func TestEdgeListRoundTripPublic(t *testing.T) {
	g := figure1()
	var buf bytes.Buffer
	if err := SaveEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatal("round trip changed the graph")
	}
	if _, err := LoadEdgeList(strings.NewReader("bogus line")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGenerateNetworkPublic(t *testing.T) {
	g, truth, err := GenerateNetwork("facebook")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty network")
	}
	if truth != nil {
		t.Fatal("facebook must have no ground truth")
	}
	if _, _, err := GenerateNetwork("nonesuch"); err == nil {
		t.Fatal("unknown network accepted")
	}
}

func TestF1Public(t *testing.T) {
	if F1([]int{1, 2}, []int{1, 2}) != 1 {
		t.Fatal("F1 facade broken")
	}
}

func TestBuilderPublic(t *testing.T) {
	b := NewBuilder(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("builder facade: N=%d M=%d", g.N(), g.M())
	}
}
