package directed

// This file is the dense CSR port of the D-truss community search: the
// serving plane's undirected CSR graph is oriented into a directed view by
// a deterministic Orientation (a pure function of each edge's endpoints, so
// every epoch, replica, and the map-based oracle agree), arcs get dense IDs
// by flattening the view's out-lists, and the peel runs over flat liveness
// and support arrays — no maps anywhere on the query path. The map-based
// Search above is retained as the differential oracle; both must produce
// identical communities (internal/directed csr_test.go enforces it).

import (
	"time"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// Orientation selects how an undirected edge {u, v} becomes arcs of the
// directed view. Values mirror core.DirectionMode one-to-one.
type Orientation uint8

const (
	// OrientBoth materializes u→v and v→u.
	OrientBoth Orientation = iota
	// OrientLowHigh orients min(u,v)→max(u,v) — a DAG (kc always 0).
	OrientLowHigh
	// OrientHighLow orients max(u,v)→min(u,v).
	OrientHighLow
	// OrientHash orients by a deterministic endpoint-pair hash.
	OrientHash
)

// orientHashForward reports whether the {u, v} edge is oriented
// min→max under OrientHash (splitmix64 over the canonical edge key).
func orientHashForward(u, v int) bool {
	x := uint64(graph.Key(u, v)) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return x&1 == 0
}

// FromCSR derives the directed view of an undirected CSR graph under the
// given orientation.
func FromCSR(g *graph.Graph, mode Orientation) *DiGraph {
	b := NewDiBuilder(g.N())
	g.ForEachEdge(func(u, v int) {
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		switch mode {
		case OrientLowHigh:
			b.AddArc(lo, hi)
		case OrientHighLow:
			b.AddArc(hi, lo)
		case OrientHash:
			if orientHashForward(lo, hi) {
				b.AddArc(lo, hi)
			} else {
				b.AddArc(hi, lo)
			}
		default: // OrientBoth
			b.AddArc(lo, hi)
			b.AddArc(hi, lo)
		}
	})
	return b.Build()
}

// denseDi is the flat peeling structure of the CSR port. Arc a of vertex u
// is out[u][a-off[u]]; inArc mirrors the in-lists with arc IDs so
// predecessor scans stay O(indeg) without lookups.
type denseDi struct {
	g     *DiGraph
	off   []int32   // off[u]..off[u+1] = arc IDs of g.Out(u)
	inArc [][]int32 // inArc[v][j] = arc ID of the j-th in-arc of v
	alive []bool
	live  int

	// mark/markEpoch dedupe the flow-support candidate scan without a map.
	mark      []int32
	markEpoch int32

	victims []int32
}

func newDenseDi(g *DiGraph) *denseDi {
	n := g.N()
	d := &denseDi{
		g:     g,
		off:   make([]int32, n+1),
		inArc: make([][]int32, n),
		alive: make([]bool, g.M()),
		mark:  make([]int32, n),
	}
	for u := 0; u < n; u++ {
		d.off[u+1] = d.off[u] + int32(len(g.Out(u)))
	}
	for v := 0; v < n; v++ {
		in := g.In(v)
		if len(in) == 0 {
			continue
		}
		d.inArc[v] = make([]int32, len(in))
		for j, u := range in {
			d.inArc[v][j] = d.rawArcID(u, int32(v))
		}
	}
	d.reset()
	return d
}

// rawArcID binary-searches u's sorted out-list for v, ignoring liveness.
func (d *denseDi) rawArcID(u, v int32) int32 {
	nb := d.g.Out(int(u))
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nb) && nb[lo] == v {
		return d.off[u] + int32(lo)
	}
	return -1
}

// reset revives every arc.
func (d *denseDi) reset() {
	for i := range d.alive {
		d.alive[i] = true
	}
	d.live = len(d.alive)
}

// load installs a saved liveness snapshot.
func (d *denseDi) load(snapshot []bool) {
	copy(d.alive, snapshot)
	d.live = 0
	for _, a := range d.alive {
		if a {
			d.live++
		}
	}
}

func (d *denseDi) has(u, v int32) bool {
	id := d.rawArcID(u, v)
	return id >= 0 && d.alive[id]
}

// arcEnds recovers (u, v) of an arc ID by locating its out-list owner.
func (d *denseDi) arcEnds(id int32) (int32, int32) {
	// Binary search the offset array for the owning vertex.
	lo, hi := 0, len(d.off)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if d.off[mid] <= id {
			lo = mid
		} else {
			hi = mid
		}
	}
	u := int32(lo)
	return u, d.g.Out(lo)[id-d.off[u]]
}

// cycleSupport counts live w with v→w and w→u (cycle triangles of u→v).
func (d *denseDi) cycleSupport(u, v int32) int {
	c := 0
	base := d.off[v]
	for i, w := range d.g.Out(int(v)) {
		if d.alive[base+int32(i)] && d.has(w, u) {
			c++
		}
	}
	return c
}

// flowSupport counts the non-pure-cycle triangles of u→v, mirroring the
// oracle's flowSupportExact: candidates are the live out/in neighbors of u,
// each triangle counted once.
func (d *denseDi) flowSupport(u, v int32) int {
	d.markEpoch++
	c := 0
	check := func(w int32) {
		if w == v || d.mark[w] == d.markEpoch {
			return
		}
		d.mark[w] = d.markEpoch
		if !d.has(v, w) && !d.has(w, v) {
			return
		}
		pureCycle := d.has(v, w) && d.has(w, u) && !d.has(w, v) && !d.has(u, w)
		if !pureCycle {
			c++
		}
	}
	base := d.off[u]
	for i, w := range d.g.Out(int(u)) {
		if d.alive[base+int32(i)] {
			check(w)
		}
	}
	for j, w := range d.g.In(int(u)) {
		if d.alive[d.inArc[u][j]] {
			check(w)
		}
	}
	return c
}

// peel removes arcs below the (kc, kf) support levels until a fixed point,
// the round-based cascade of the oracle's MaxDTruss. cancel is polled once
// per round.
func (d *denseDi) peel(kc, kf int, cancel func() error) error {
	for {
		if cancel != nil {
			if err := cancel(); err != nil {
				return err
			}
		}
		d.victims = d.victims[:0]
		for u := 0; u < d.g.N(); u++ {
			base := d.off[u]
			for i, w := range d.g.Out(u) {
				id := base + int32(i)
				if !d.alive[id] {
					continue
				}
				if d.cycleSupport(int32(u), w) < kc || d.flowSupport(int32(u), w) < kf {
					d.victims = append(d.victims, id)
				}
			}
		}
		if len(d.victims) == 0 {
			return nil
		}
		for _, id := range d.victims {
			if d.alive[id] {
				d.alive[id] = false
				d.live--
			}
		}
	}
}

// maxKc returns the largest cycle support of any arc in the full view (the
// oracle's maxPossibleKc).
func (d *denseDi) maxKc() int {
	max := 0
	for u := 0; u < d.g.N(); u++ {
		base := d.off[u]
		for i, w := range d.g.Out(u) {
			if !d.alive[base+int32(i)] {
				continue
			}
			if c := d.cycleSupport(int32(u), w); c > max {
				max = c
			}
		}
	}
	return max
}

// footprint rebuilds mu (an empty shell of the undirected base) with the
// undirected footprint of the live arcs, using the precomputed arc→edge-ID
// map.
func (d *denseDi) footprint(mu *graph.Mutable, arcEdge []int32) {
	for id, a := range d.alive {
		if a {
			mu.AddEdgeByID(arcEdge[id])
		}
	}
}

// Stats reports the execution shape of one CSR search (consumed by
// core.QueryStats).
type Stats struct {
	// SeedEdges counts undirected footprint edges of the starting D-truss.
	SeedEdges int
	// PeelRounds counts diameter-reduction iterations.
	PeelRounds int
	// EdgesPeeled counts arcs removed between the seed and the answer.
	EdgesPeeled int
	// Seed is the time to orient the graph and find the starting D-truss;
	// Peel the greedy diameter-reduction time.
	Seed, Peel time.Duration
}

// CSRCommunity is the dense-port answer. Sub is freshly allocated and never
// aliases pooled workspace scratch.
type CSRCommunity struct {
	// Kc and Kf are the cycle/flow support levels of the community.
	Kc, Kf int
	// Arcs counts community arcs.
	Arcs int
	// Sub is the undirected footprint subgraph (an overlay of the base CSR).
	Sub *graph.Mutable
	// QueryDist is the query distance in the footprint.
	QueryDist int
}

// SearchCSR is the dense-port twin of Search, running against the serving
// plane's CSR graph and pooled workspace: orient g, find the largest kc
// (with flow level kf) whose D-truss footprint connects q, then greedily
// delete the furthest vertex and re-peel, keeping the intermediate state
// with the smallest query distance. Cancellation is polled through ws once
// per peel round and reduction iteration.
func SearchCSR(g *graph.Graph, q []int, kf int, mode Orientation, ws *trussindex.Workspace) (*CSRCommunity, *Stats, error) {
	if len(q) == 0 {
		return nil, nil, ErrNoCommunity
	}
	tSeed := time.Now()
	dg := FromCSR(g, mode)
	d := newDenseDi(dg)
	// arcEdge maps every arc to its undirected base edge ID.
	arcEdge := make([]int32, dg.M())
	for u := 0; u < dg.N(); u++ {
		base := d.off[u]
		for i, w := range dg.Out(u) {
			arcEdge[base+int32(i)] = g.EdgeID(u, int(w))
		}
	}
	st := &Stats{}

	// Largest kc admitting a footprint that connects q.
	kc := -1
	for try := d.maxKc(); try >= 0; try-- {
		d.reset()
		if err := d.peel(try, kf, ws.Canceled); err != nil {
			return nil, nil, err
		}
		mu := ws.Shell()
		d.footprint(mu, arcEdge)
		if connectedOn(mu, q, ws) {
			kc = try
			break
		}
	}
	if kc < 0 {
		return nil, nil, ErrNoCommunity
	}

	// Restrict to the Q-component of the footprint.
	mu := ws.Shell()
	d.footprint(mu, arcEdge)
	comp := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = comp
	for id, a := range d.alive {
		if !a {
			continue
		}
		u, w := d.arcEnds(int32(id))
		if !ws.StampA.Marked(u) || !ws.StampA.Marked(w) {
			d.alive[id] = false
			d.live--
		}
	}
	st.SeedEdges = footprintEdges(d, arcEdge, ws)
	st.Seed = time.Since(tSeed)
	seedArcs := d.live
	tPeel := time.Now()

	cur := append([]bool(nil), d.alive...)
	best := append([]bool(nil), d.alive...)
	bestQD := queryDistCSR(d, arcEdge, q, ws)

	// Greedy diameter reduction: delete the furthest non-query vertex, then
	// re-peel the (kc, kf) property within the remaining arcs.
	isQ := ws.StampB
	isQ.Next()
	for _, v := range q {
		isQ.Set(int32(v))
	}
	for iter := 0; iter < g.N(); iter++ {
		if err := ws.Canceled(); err != nil {
			return nil, nil, err
		}
		muCur := ws.Shell()
		d.load(cur)
		d.footprint(muCur, arcEdge)
		qd := graph.QueryDistances(muCur, q)
		pick, pickD := -1, int32(0)
		for v := 0; v < g.N(); v++ {
			if !muCur.Present(v) || isQ.Marked(int32(v)) {
				continue
			}
			dv := qd[v]
			if dv == graph.Unreachable {
				dv = 1 << 30
			}
			if dv > pickD {
				pick, pickD = v, dv
			}
		}
		if pick < 0 || pickD == 0 {
			break
		}
		st.PeelRounds++
		// Remove every arc touching pick, then restore the D-truss property.
		for id, a := range d.alive {
			if !a {
				continue
			}
			u, w := d.arcEnds(int32(id))
			if int(u) == pick || int(w) == pick {
				d.alive[id] = false
				d.live--
			}
		}
		if err := d.peel(kc, kf, ws.Canceled); err != nil {
			return nil, nil, err
		}
		muNext := ws.Shell()
		d.footprint(muNext, arcEdge)
		if !connectedOn(muNext, q, ws) {
			break
		}
		copy(cur, d.alive)
		if qdist := queryDistCSR(d, arcEdge, q, ws); qdist >= 0 && qdist < bestQD {
			copy(best, d.alive)
			bestQD = qdist
		}
	}

	// Materialize the Q-component of the best state into a fresh overlay.
	d.load(best)
	muBest := ws.Shell()
	d.footprint(muBest, arcEdge)
	comp = graph.BFSMarked(muBest, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = comp
	sub := graph.NewMutableShell(g)
	arcs := 0
	for id, a := range d.alive {
		if !a {
			continue
		}
		u, w := d.arcEnds(int32(id))
		if ws.StampA.Marked(u) && ws.StampA.Marked(w) {
			arcs++
			sub.AddEdgeByID(arcEdge[id])
		}
	}
	st.EdgesPeeled = seedArcs - arcs
	st.Peel = time.Since(tPeel)
	return &CSRCommunity{Kc: kc, Kf: kf, Arcs: arcs, Sub: sub, QueryDist: bestQD}, st, nil
}

// footprintEdges counts distinct undirected edges of the live arcs.
func footprintEdges(d *denseDi, arcEdge []int32, ws *trussindex.Workspace) int {
	mu := ws.Shell()
	d.footprint(mu, arcEdge)
	return mu.M()
}

// queryDistCSR is the oracle's queryDistOf on the live arc set: the query
// distance of the footprint, or -1 when some query vertex is unreachable.
func queryDistCSR(d *denseDi, arcEdge []int32, q []int, ws *trussindex.Workspace) int {
	mu := ws.Shell()
	d.footprint(mu, arcEdge)
	qd, ok := graph.GraphQueryDistance(mu, q)
	if !ok {
		return -1
	}
	return int(qd)
}

// connectedOn reports whether all of q is present and mutually reachable in
// mu, on stamped workspace scratch.
func connectedOn(mu *graph.Mutable, q []int, ws *trussindex.Workspace) bool {
	for _, v := range q {
		if !mu.Present(v) {
			return false
		}
	}
	if len(q) <= 1 {
		return true
	}
	reach := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = reach
	for _, v := range q[1:] {
		if !ws.StampA.Marked(int32(v)) {
			return false
		}
	}
	return true
}
