package directed

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

func undirRandom(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func acquireWS(g *graph.Graph) *trussindex.Workspace {
	return trussindex.Build(g).AcquireWorkspace()
}

func TestFromCSROrientations(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	both := FromCSR(g, OrientBoth)
	if both.M() != 2*g.M() {
		t.Fatalf("both: M = %d, want %d", both.M(), 2*g.M())
	}
	lh := FromCSR(g, OrientLowHigh)
	if lh.M() != g.M() || !lh.HasArc(0, 1) || lh.HasArc(1, 0) {
		t.Fatal("lowhigh orientation wrong")
	}
	hl := FromCSR(g, OrientHighLow)
	if hl.M() != g.M() || !hl.HasArc(1, 0) || hl.HasArc(0, 1) {
		t.Fatal("highlow orientation wrong")
	}
	h := FromCSR(g, OrientHash)
	if h.M() != g.M() {
		t.Fatalf("hash: M = %d, want %d", h.M(), g.M())
	}
	// Hash orientation is a pure function of the endpoints: rebuilt graphs
	// agree arc for arc.
	h2 := FromCSR(g, OrientHash)
	for u := 0; u < g.N(); u++ {
		if !reflect.DeepEqual(h.Out(u), h2.Out(u)) {
			t.Fatalf("hash orientation unstable at vertex %d", u)
		}
	}
}

// TestSearchCSRMatchesOracle is the differential harness: the dense CSR
// port must produce byte-identical answers to the retained map-based oracle
// on every orientation, including agreeing on which queries have no
// community.
func TestSearchCSRMatchesOracle(t *testing.T) {
	modes := []Orientation{OrientBoth, OrientLowHigh, OrientHighLow, OrientHash}
	for seed := int64(0); seed < 8; seed++ {
		g := undirRandom(seed, 28, 0.18)
		ws := acquireWS(g)
		rng := rand.New(rand.NewSource(seed + 100))
		for _, mode := range modes {
			dg := FromCSR(g, mode)
			for _, kf := range []int{1, 2} {
				q := []int{rng.Intn(g.N()), rng.Intn(g.N())}
				want, wantErr := Search(dg, q, kf)
				got, _, gotErr := SearchCSR(g, q, kf, mode, ws)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d mode %d kf %d q %v: oracle err %v, port err %v",
						seed, mode, kf, q, wantErr, gotErr)
				}
				if wantErr != nil {
					if !errors.Is(gotErr, ErrNoCommunity) {
						t.Fatalf("seed %d mode %d: port error %v, want ErrNoCommunity", seed, mode, gotErr)
					}
					continue
				}
				if got.Kc != want.Kc || got.Kf != want.Kf {
					t.Fatalf("seed %d mode %d q %v: (kc,kf) = (%d,%d), want (%d,%d)",
						seed, mode, q, got.Kc, got.Kf, want.Kc, want.Kf)
				}
				if got.Arcs != len(want.Arcs) {
					t.Fatalf("seed %d mode %d q %v: arcs = %d, want %d", seed, mode, q, got.Arcs, len(want.Arcs))
				}
				if !reflect.DeepEqual(got.Sub.Vertices(), want.Vertices) {
					t.Fatalf("seed %d mode %d q %v: vertices = %v, want %v",
						seed, mode, q, got.Sub.Vertices(), want.Vertices)
				}
				if got.QueryDist != want.QueryDist {
					t.Fatalf("seed %d mode %d q %v: query dist = %d, want %d",
						seed, mode, q, got.QueryDist, want.QueryDist)
				}
				if um := underlying(g.N(), want.Arcs); got.Sub.M() != um.M() {
					t.Fatalf("seed %d mode %d q %v: footprint edges = %d, want %d",
						seed, mode, q, got.Sub.M(), um.M())
				}
			}
		}
		ws.Release()
	}
}

func TestSearchCSRErrors(t *testing.T) {
	g := undirRandom(1, 12, 0.3)
	ws := acquireWS(g)
	defer ws.Release()
	if _, _, err := SearchCSR(g, nil, 1, OrientBoth, ws); err == nil {
		t.Fatal("empty query accepted")
	}
	// An absurd flow requirement has no community.
	if _, _, err := SearchCSR(g, []int{0}, 50, OrientBoth, ws); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("err = %v, want ErrNoCommunity", err)
	}
}

func TestSearchCSRCancellation(t *testing.T) {
	g := undirRandom(2, 40, 0.25)
	ws := acquireWS(g)
	defer ws.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws.SetContext(ctx)
	defer ws.SetContext(context.Background())
	if _, _, err := SearchCSR(g, []int{0, 1}, 1, OrientBoth, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
