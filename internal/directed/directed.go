// Package directed extends truss-based community search to directed
// graphs, the second §8 future-work direction of the paper. It follows the
// D-truss model from the follow-up literature (Liu et al., VLDB 2020):
// a directed triangle is either a cycle (u→v→w→u) or a flow (acyclic
// orientation), and a (kc, kf)-D-truss is a subgraph in which every edge
// participates in at least kc cycle triangles and kf flow triangles. The
// community search mirrors the paper's CTC recipe: maximize the D-truss
// levels containing Q, then greedily shrink the query distance.
package directed

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// DiGraph is an immutable simple directed graph (no self-loops, at most
// one edge per ordered pair).
type DiGraph struct {
	out [][]int32
	in  [][]int32
	m   int
}

// DiBuilder accumulates arcs into a DiGraph.
type DiBuilder struct {
	arcs [][2]int32
	n    int
}

// NewDiBuilder returns a builder with a vertex-count hint.
func NewDiBuilder(n int) *DiBuilder { return &DiBuilder{n: n} }

// AddArc records the directed edge u→v (self-loops ignored).
func (b *DiBuilder) AddArc(u, v int) {
	if u == v || u < 0 || v < 0 {
		return
	}
	if u+1 > b.n {
		b.n = u + 1
	}
	if v+1 > b.n {
		b.n = v + 1
	}
	b.arcs = append(b.arcs, [2]int32{int32(u), int32(v)})
}

// Build produces the immutable DiGraph, deduplicating arcs.
func (b *DiBuilder) Build() *DiGraph {
	sort.Slice(b.arcs, func(i, j int) bool {
		if b.arcs[i][0] != b.arcs[j][0] {
			return b.arcs[i][0] < b.arcs[j][0]
		}
		return b.arcs[i][1] < b.arcs[j][1]
	})
	g := &DiGraph{out: make([][]int32, b.n), in: make([][]int32, b.n)}
	var prev [2]int32 = [2]int32{-1, -1}
	for _, a := range b.arcs {
		if a == prev {
			continue
		}
		prev = a
		g.out[a[0]] = append(g.out[a[0]], a[1])
		g.in[a[1]] = append(g.in[a[1]], a[0])
		g.m++
	}
	for v := range g.in {
		sort.Slice(g.in[v], func(i, j int) bool { return g.in[v][i] < g.in[v][j] })
	}
	return g
}

// N returns the vertex count; M the arc count.
func (g *DiGraph) N() int { return len(g.out) }

// M returns the number of arcs.
func (g *DiGraph) M() int { return g.m }

// HasArc reports whether u→v exists.
func (g *DiGraph) HasArc(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.out) {
		return false
	}
	nb := g.out[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Out and In return the sorted successor/predecessor lists.
func (g *DiGraph) Out(v int) []int32 { return g.out[v] }

// In returns the sorted predecessor list of v.
func (g *DiGraph) In(v int) []int32 { return g.in[v] }

// Arc identifies a directed edge.
type Arc struct{ From, To int32 }

// arcSet is a mutable directed edge set built from a DiGraph for peeling.
type arcSet struct {
	out []map[int32]struct{}
	in  []map[int32]struct{}
	m   int
}

func newArcSet(g *DiGraph) *arcSet {
	s := &arcSet{out: make([]map[int32]struct{}, g.N()), in: make([]map[int32]struct{}, g.N())}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			if s.out[u] == nil {
				s.out[u] = map[int32]struct{}{}
			}
			if s.in[v] == nil {
				s.in[int(v)] = map[int32]struct{}{}
			}
			s.out[u][v] = struct{}{}
			s.in[v][int32(u)] = struct{}{}
			s.m++
		}
	}
	return s
}

func (s *arcSet) has(u, v int32) bool {
	if s.out[u] == nil {
		return false
	}
	_, ok := s.out[u][v]
	return ok
}

func (s *arcSet) delete(u, v int32) bool {
	if !s.has(u, v) {
		return false
	}
	delete(s.out[u], v)
	delete(s.in[v], u)
	s.m--
	return true
}

// cycleSupport counts w with v→w and w→u (cycle triangles of u→v).
func (s *arcSet) cycleSupport(u, v int32) int {
	c := 0
	for w := range s.out[v] {
		if s.has(w, u) {
			c++
		}
	}
	return c
}

// flowSupportExact counts third vertices w where arcs connect w to both u
// and v (in any direction) and the triangle formed with u→v is not the
// cycle u→v, v→w, w→u considered alone. Each triangle counts once.
func (s *arcSet) flowSupportExact(u, v int32) int {
	c := 0
	cands := map[int32]bool{}
	for w := range s.out[u] {
		cands[w] = true
	}
	for w := range s.in[u] {
		cands[w] = true
	}
	for w := range cands {
		if w == v {
			continue
		}
		uw := s.has(u, w) || s.has(w, u)
		vw := s.has(v, w) || s.has(w, v)
		if !uw || !vw {
			continue
		}
		// Triangle exists; it is a *flow* wing unless the only arcs are
		// exactly the cycle v→w, w→u (no u→w, no w→v reversals).
		pureCycle := s.has(v, w) && s.has(w, u) && !s.has(w, v) && !s.has(u, w)
		if !pureCycle {
			c++
		}
	}
	return c
}

// MaxDTruss peels g down to its maximal (kc, kf)-D-truss: the largest
// subgraph in which every arc has cycle support >= kc and flow support
// >= kf. Returns the surviving arcs.
func MaxDTruss(g *DiGraph, kc, kf int) []Arc {
	s := newArcSet(g)
	for {
		var victims []Arc
		for u := 0; u < g.N(); u++ {
			for w := range s.out[u] {
				if s.cycleSupport(int32(u), w) < kc || s.flowSupportExact(int32(u), w) < kf {
					victims = append(victims, Arc{int32(u), w})
				}
			}
		}
		if len(victims) == 0 {
			break
		}
		for _, a := range victims {
			s.delete(a.From, a.To)
		}
	}
	var out []Arc
	for u := 0; u < g.N(); u++ {
		for w := range s.out[u] {
			out = append(out, Arc{int32(u), w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ErrNoCommunity is returned when no D-truss community covers Q.
var ErrNoCommunity = errors.New("directed: no D-truss community contains the query vertices")

// Community is a directed closest-truss community.
type Community struct {
	// Kc and Kf are the cycle/flow support levels.
	Kc, Kf int
	// Vertices is the sorted member set; Arcs the community arcs.
	Vertices []int
	Arcs     []Arc
	// QueryDist is the query distance in the underlying undirected graph.
	QueryDist int
}

// underlying builds the undirected footprint of an arc set.
func underlying(n int, arcs []Arc) *graph.Mutable {
	keys := make([]graph.EdgeKey, 0, len(arcs))
	for _, a := range arcs {
		if a.From != a.To {
			keys = append(keys, graph.Key(int(a.From), int(a.To)))
		}
	}
	return graph.NewMutableFromEdges(n, keys)
}

// Search finds a closest D-truss community: the maximal (kc, kf)-D-truss
// is computed for the largest kc (with the given kf) whose underlying
// undirected footprint connects Q; then vertices far from Q are greedily
// removed while the D-truss property is maintained, and the intermediate
// state with the smallest query distance is returned.
func Search(g *DiGraph, q []int, kf int) (*Community, error) {
	if len(q) == 0 {
		return nil, errors.New("directed: empty query")
	}
	for _, v := range q {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("directed: query vertex %d out of range", v)
		}
	}
	// Find the largest kc admitting a connected community.
	var arcs []Arc
	kc := -1
	for try := maxPossibleKc(g); try >= 0; try-- {
		cand := MaxDTruss(g, try, kf)
		mu := underlying(g.N(), cand)
		if graph.Connected(mu, q) {
			arcs, kc = cand, try
			break
		}
	}
	if kc < 0 {
		return nil, ErrNoCommunity
	}
	// Restrict to the Q-component.
	mu := underlying(g.N(), arcs)
	comp := graph.Component(mu, q[0])
	inComp := map[int]bool{}
	for _, v := range comp {
		inComp[v] = true
	}
	arcs = filterArcs(arcs, inComp)
	// Greedy diameter reduction on the underlying graph, re-peeling the
	// D-truss property after each removal.
	best := arcs
	bestQD := queryDistOf(g.N(), arcs, q)
	cur := arcs
	for iter := 0; iter < g.N(); iter++ {
		mu := underlying(g.N(), cur)
		qd := graph.QueryDistances(mu, q)
		pick, pickD := -1, int32(0)
		isQ := map[int]bool{}
		for _, v := range q {
			isQ[v] = true
		}
		for v := 0; v < g.N(); v++ {
			if !mu.Present(v) || isQ[v] {
				continue
			}
			d := qd[v]
			if d == graph.Unreachable {
				d = 1 << 30
			}
			if d > pickD {
				pick, pickD = v, d
			}
		}
		if pick < 0 || pickD == 0 {
			break
		}
		next := repeelWithout(g, cur, pick, kc, kf)
		muNext := underlying(g.N(), next)
		if !graph.Connected(muNext, q) {
			break
		}
		cur = next
		if d := queryDistOf(g.N(), cur, q); d >= 0 && d < bestQD {
			best, bestQD = cur, d
		}
	}
	muBest := underlying(g.N(), best)
	comp = graph.Component(muBest, q[0])
	inComp = map[int]bool{}
	for _, v := range comp {
		inComp[v] = true
	}
	best = filterArcs(best, inComp)
	return &Community{
		Kc: kc, Kf: kf,
		Vertices:  comp,
		Arcs:      best,
		QueryDist: bestQD,
	}, nil
}

func maxPossibleKc(g *DiGraph) int {
	max := 0
	s := newArcSet(g)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			if c := s.cycleSupport(int32(u), v); c > max {
				max = c
			}
		}
	}
	return max
}

func filterArcs(arcs []Arc, keep map[int]bool) []Arc {
	out := arcs[:0:0]
	for _, a := range arcs {
		if keep[int(a.From)] && keep[int(a.To)] {
			out = append(out, a)
		}
	}
	return out
}

func queryDistOf(n int, arcs []Arc, q []int) int {
	mu := underlying(n, arcs)
	d, ok := graph.GraphQueryDistance(mu, q)
	if !ok {
		return -1
	}
	return int(d)
}

// repeelWithout removes all arcs touching the vertex and re-peels the
// (kc,kf) property within the remaining arc set.
func repeelWithout(g *DiGraph, arcs []Arc, vertex, kc, kf int) []Arc {
	b := NewDiBuilder(g.N())
	for _, a := range arcs {
		if int(a.From) != vertex && int(a.To) != vertex {
			b.AddArc(int(a.From), int(a.To))
		}
	}
	return MaxDTruss(b.Build(), kc, kf)
}
