package directed

import (
	"errors"
	"math/rand"
	"testing"
)

// cycleTriangle builds u→v→w→u.
func cycleGraph() *DiGraph {
	b := NewDiBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	return b.Build()
}

func TestDiBuilderDedup(t *testing.T) {
	b := NewDiBuilder(0)
	b.AddArc(0, 1)
	b.AddArc(0, 1)
	b.AddArc(1, 0) // opposite direction is a distinct arc
	b.AddArc(2, 2) // self-loop dropped
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) || g.HasArc(2, 2) {
		t.Fatal("arc presence wrong")
	}
	if g.HasArc(-1, 0) || g.HasArc(0, 99) {
		t.Fatal("out-of-range arcs reported")
	}
}

func TestCycleAndFlowSupport(t *testing.T) {
	// Pure cycle triangle: each arc has cycle support 1, flow support 0.
	s := newArcSet(cycleGraph())
	if c := s.cycleSupport(0, 1); c != 1 {
		t.Fatalf("cycle support = %d, want 1", c)
	}
	if f := s.flowSupportExact(0, 1); f != 0 {
		t.Fatalf("flow support = %d, want 0", f)
	}
	// Flow triangle u→v, u→w, w→v: arc u→v has flow support 1, cycle 0.
	b := NewDiBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(0, 2)
	b.AddArc(2, 1)
	s2 := newArcSet(b.Build())
	if c := s2.cycleSupport(0, 1); c != 0 {
		t.Fatalf("flow triangle: cycle support = %d", c)
	}
	if f := s2.flowSupportExact(0, 1); f != 1 {
		t.Fatalf("flow triangle: flow support = %d, want 1", f)
	}
}

// bidirClique builds a k-vertex graph with arcs in both directions.
func bidirClique(k int) *DiGraph {
	b := NewDiBuilder(k)
	for u := 0; u < k; u++ {
		for v := 0; v < k; v++ {
			if u != v {
				b.AddArc(u, v)
			}
		}
	}
	return b.Build()
}

func TestMaxDTrussBidirClique(t *testing.T) {
	// In a bidirectional K4, every arc u→v has cycle support 2 (each third
	// vertex gives v→w→u... w: v→w ∧ w→u both exist) and flow support 2.
	g := bidirClique(4)
	if arcs := MaxDTruss(g, 2, 2); len(arcs) != 12 {
		t.Fatalf("(2,2)-D-truss of bidir K4 kept %d arcs, want all 12", len(arcs))
	}
	if arcs := MaxDTruss(g, 3, 0); len(arcs) != 0 {
		t.Fatalf("(3,0)-D-truss should be empty, got %d arcs", len(arcs))
	}
}

func TestMaxDTrussPropertyHolds(t *testing.T) {
	// Whatever survives must satisfy the thresholds (checked on random
	// digraphs), and peeling must be idempotent.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewDiBuilder(15)
		for i := 0; i < 90; i++ {
			b.AddArc(rng.Intn(15), rng.Intn(15))
		}
		g := b.Build()
		for _, th := range [][2]int{{1, 0}, {0, 2}, {1, 1}, {2, 1}} {
			arcs := MaxDTruss(g, th[0], th[1])
			// Rebuild and verify every arc meets the thresholds.
			b2 := NewDiBuilder(15)
			for _, a := range arcs {
				b2.AddArc(int(a.From), int(a.To))
			}
			sub := b2.Build()
			s := newArcSet(sub)
			for u := 0; u < sub.N(); u++ {
				for _, v := range sub.Out(u) {
					if s.cycleSupport(int32(u), v) < th[0] {
						t.Fatalf("seed %d th=%v: arc %d→%d cycle support too low", seed, th, u, v)
					}
					if s.flowSupportExact(int32(u), v) < th[1] {
						t.Fatalf("seed %d th=%v: arc %d→%d flow support too low", seed, th, u, v)
					}
				}
			}
			// Idempotence.
			again := MaxDTruss(sub, th[0], th[1])
			if len(again) != len(arcs) {
				t.Fatalf("seed %d th=%v: peel not idempotent (%d vs %d)", seed, th, len(again), len(arcs))
			}
		}
	}
}

func TestSearchDirectedCommunity(t *testing.T) {
	// Two bidirectional K4s sharing no vertices, joined by a weak one-way
	// path; query inside one clique must return that clique only.
	b := NewDiBuilder(9)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				b.AddArc(u, v)
				b.AddArc(u+4, v+4)
			}
		}
	}
	b.AddArc(3, 8)
	b.AddArc(8, 4)
	g := b.Build()
	c, err := Search(g, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kc < 2 {
		t.Fatalf("kc = %d, want >= 2", c.Kc)
	}
	if len(c.Vertices) != 4 {
		t.Fatalf("community has %d vertices, want the 4-clique: %v", len(c.Vertices), c.Vertices)
	}
	for _, v := range c.Vertices {
		if v >= 4 {
			t.Fatalf("community leaked into the other clique: %v", c.Vertices)
		}
	}
	if c.QueryDist != 1 {
		t.Fatalf("query distance = %d, want 1", c.QueryDist)
	}
}

func TestSearchRemovesFarVertices(t *testing.T) {
	// One bidirectional K5 with a bidirectional "tail" pair attached via
	// two vertices: the tail survives the D-truss at kc=1 if it forms
	// cycles, but is farther from the query; Search should drop it when
	// that lowers the query distance. Construct: K5 (0..4) + vertices 5,6
	// where {4,5,6} is a bidirectional triangle.
	b := NewDiBuilder(7)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				b.AddArc(u, v)
			}
		}
	}
	for _, pair := range [][2]int{{4, 5}, {5, 4}, {4, 6}, {6, 4}, {5, 6}, {6, 5}} {
		b.AddArc(pair[0], pair[1])
	}
	g := b.Build()
	c, err := Search(g, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Vertices {
		if v >= 5 {
			t.Fatalf("far tail vertex %d kept: %v", v, c.Vertices)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	g := cycleGraph()
	if _, err := Search(g, nil, 0); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := Search(g, []int{-1}, 0); err == nil {
		t.Fatal("bad vertex accepted")
	}
	// Disconnected query across two isolated cycles.
	b := NewDiBuilder(6)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	b.AddArc(3, 4)
	b.AddArc(4, 5)
	b.AddArc(5, 3)
	if _, err := Search(b.Build(), []int{0, 3}, 0); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("err = %v", err)
	}
}

func TestSearchPureCycle(t *testing.T) {
	// A single 3-cycle is its own (1,0)-D-truss community.
	c, err := Search(cycleGraph(), []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kc != 1 || len(c.Vertices) != 3 {
		t.Fatalf("kc=%d |V|=%d, want 1 and 3", c.Kc, len(c.Vertices))
	}
}
