package admit

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func req(q ...int) core.Request { return core.Request{Q: q} }

func TestCacheHitMissAndEpochKeying(t *testing.T) {
	c := NewCache(8)
	r := &core.Result{}
	if _, _, ok := c.Get(1, req(1, 2)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, req(1, 2), r, nil)
	got, err, ok := c.Get(1, req(1, 2))
	if !ok || err != nil || got != r {
		t.Fatalf("want hit with stored result, got ok=%v err=%v", ok, err)
	}
	// Same request under a different epoch is a different key: a snapshot
	// publish invalidates by construction.
	if _, _, ok := c.Get(2, req(1, 2)); ok {
		t.Fatal("epoch 2 hit an epoch-1 entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	cases := []struct {
		name string
		a, b core.Request
		same bool
	}{
		{"sorted+dedup query set", core.Request{Q: []int{2, 1, 1}}, core.Request{Q: []int{1, 2}}, true},
		{"default eta folded", core.Request{Q: []int{1}, Eta: 0}, core.Request{Q: []int{1}, Eta: 1000}, true},
		{"distinct eta distinct", core.Request{Q: []int{1}, Eta: 5}, core.Request{Q: []int{1}, Eta: 6}, false},
		{"eta ignored off-LCTC", core.Request{Q: []int{1}, Algo: core.AlgoBasic, Eta: 5},
			core.Request{Q: []int{1}, Algo: core.AlgoBasic, Eta: 700}, true},
		{"default gamma folded", core.Request{Q: []int{1}, Gamma: 0}, core.Request{Q: []int{1}, Gamma: 3}, true},
		{"gamma ignored with hop distance", core.Request{Q: []int{1}, DistanceMode: core.DistHop, Gamma: 2},
			core.Request{Q: []int{1}, DistanceMode: core.DistHop, Gamma: 7}, true},
		{"different k distinct", core.Request{Q: []int{1}, K: 3}, core.Request{Q: []int{1}, K: 4}, false},
		{"different algo distinct", core.Request{Q: []int{1}}, core.Request{Q: []int{1}, Algo: core.AlgoBasic}, false},
		{"tenant not part of identity", core.Request{Q: []int{1}, Tenant: "a"},
			core.Request{Q: []int{1}, Tenant: "b"}, true},
		{"direction distinct for dtruss",
			core.Request{Q: []int{1}, Algo: core.AlgoDTruss},
			core.Request{Q: []int{1}, Algo: core.AlgoDTruss, Direction: core.DirLowHigh}, false},
		{"direction ignored off-dtruss",
			core.Request{Q: []int{1}, Algo: core.AlgoBasic},
			core.Request{Q: []int{1}, Algo: core.AlgoBasic, Direction: core.DirHash}, true},
		{"default minprob folded",
			core.Request{Q: []int{1}, Algo: core.AlgoProbTruss},
			core.Request{Q: []int{1}, Algo: core.AlgoProbTruss, MinProb: core.DefaultMinProb}, true},
		{"distinct minprob distinct",
			core.Request{Q: []int{1}, Algo: core.AlgoProbTruss, MinProb: 0.5},
			core.Request{Q: []int{1}, Algo: core.AlgoProbTruss, MinProb: 0.9}, false},
		{"minprob ignored off-probtruss",
			core.Request{Q: []int{1}, Algo: core.AlgoLCTC},
			core.Request{Q: []int{1}, Algo: core.AlgoLCTC, MinProb: 0.9}, true},
		{"k ignored for baselines",
			core.Request{Q: []int{1}, Algo: core.AlgoMDC},
			core.Request{Q: []int{1}, Algo: core.AlgoMDC, K: 5}, true},
		{"k distinct for qdc vs mdc",
			core.Request{Q: []int{1}, Algo: core.AlgoQDC},
			core.Request{Q: []int{1}, Algo: core.AlgoMDC}, false},
	}
	for _, tc := range cases {
		if got := Key(7, tc.a) == Key(7, tc.b); got != tc.same {
			t.Errorf("%s: keys equal=%v, want %v (%q vs %q)", tc.name, got, tc.same, Key(7, tc.a), Key(7, tc.b))
		}
	}
	if Key(1, req(1)) == Key(2, req(1)) {
		t.Error("epoch not part of the key")
	}
}

func TestCacheLRUBound(t *testing.T) {
	c := NewCache(2)
	c.Put(1, req(1), &core.Result{}, nil)
	c.Put(1, req(2), &core.Result{}, nil)
	c.Get(1, req(1)) // touch 1 so 2 is the LRU victim
	c.Put(1, req(3), &core.Result{}, nil)
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}
	if _, _, ok := c.Get(1, req(2)); ok {
		t.Fatal("LRU victim still present")
	}
	if _, _, ok := c.Get(1, req(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, _, ok := c.Get(1, req(3)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	c := NewCache(4)
	sentinel := errors.New("no community")
	c.Put(1, req(9), nil, sentinel)
	res, err, ok := c.Get(1, req(9))
	if !ok || res != nil || !errors.Is(err, sentinel) {
		t.Fatalf("want cached failure, got ok=%v res=%v err=%v", ok, res, err)
	}
}

func TestCacheVerifyBypass(t *testing.T) {
	c := NewCache(4)
	vr := core.Request{Q: []int{1}, Verify: true}
	c.Put(1, vr, &core.Result{}, nil)
	if _, _, ok := c.Get(1, vr); ok {
		t.Fatal("verify request served from cache")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("verify Put stored an entry: %+v", st)
	}
}

func TestCacheSweep(t *testing.T) {
	c := NewCache(8)
	c.Put(1, req(1), &core.Result{}, nil)
	c.Put(1, req(2), &core.Result{}, nil)
	c.Put(2, req(1), &core.Result{}, nil)
	c.Sweep(2)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries after sweep %d, want 1", st.Entries)
	}
	if _, _, ok := c.Get(2, req(1)); !ok {
		t.Fatal("current-epoch entry swept")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put(1, req(1), &core.Result{}, nil)
	if _, _, ok := c.Get(1, req(1)); ok {
		t.Fatal("disabled cache produced a hit")
	}
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("disabled cache stats %+v", st)
	}
}
