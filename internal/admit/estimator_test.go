package admit

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

func estIndex(t *testing.T) *trussindex.Index {
	t.Helper()
	// Two triangles sharing an edge plus a pendant: enough structure for
	// nonzero degrees and thresholds.
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	return trussindex.BuildFromDecomposition(g, truss.Decompose(g))
}

func TestEstimatorUnitsRankAlgorithms(t *testing.T) {
	ix := estIndex(t)
	q := []int{1, 2}
	truss := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoTrussOnly})
	lctc := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoLCTC})
	bd := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoBulkDelete})
	basic := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoBasic})
	if !(basic > bd && bd > truss) {
		t.Fatalf("peel factors not ranked: basic=%d bd=%d truss=%d", basic, bd, truss)
	}
	if lctc <= truss {
		t.Fatalf("LCTC should carry its eta budget: lctc=%d truss=%d", lctc, truss)
	}
	// Higher-degree query sets cost more.
	lo := NewEstimator(0).Units(ix, core.Request{Q: []int{4}})
	hi := NewEstimator(0).Units(ix, core.Request{Q: []int{1, 2, 3}})
	if hi <= lo {
		t.Fatalf("degree sum not reflected: hi=%d lo=%d", hi, lo)
	}
	// The whole-graph models price in the edge count: the probabilistic
	// decomposition is the most expensive per edge, QDC the cheapest of
	// the global three, and all sit above the local TrussOnly seed.
	dt := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoDTruss})
	pt := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoProbTruss})
	qdc := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoQDC})
	mdc := NewEstimator(0).Units(ix, core.Request{Q: q, Algo: core.AlgoMDC})
	if !(pt > dt && dt > qdc && qdc > truss) {
		t.Fatalf("model costs not ranked: prob=%d dtruss=%d qdc=%d truss=%d", pt, dt, qdc, truss)
	}
	if mdc <= truss {
		t.Fatalf("MDC should price in its ball peel: mdc=%d truss=%d", mdc, truss)
	}
}

// TestEstimatorUnvalidatedInput: the estimator runs before validation (the
// serve layer estimates against an unref'd snapshot), so out-of-range
// vertices must contribute nothing instead of panicking.
func TestEstimatorUnvalidatedInput(t *testing.T) {
	ix := estIndex(t)
	e := NewEstimator(0)
	in := e.Units(ix, core.Request{Q: []int{1}})
	out := e.Units(ix, core.Request{Q: []int{1, -5, 99999}})
	if in != out {
		t.Fatalf("out-of-range vertices changed the estimate: %d vs %d", in, out)
	}
}

func TestEstimatorCalibration(t *testing.T) {
	e := NewEstimator(0)
	if e.CostNS() != defaultCostNS {
		t.Fatalf("seed %d, want %d", e.CostNS(), defaultCostNS)
	}
	// Feed a consistent 1000ns-per-unit workload; the EWMA (step 1/8) must
	// converge near it and Duration must scale with it.
	for i := 0; i < 100; i++ {
		e.Observe(1000, time.Millisecond)
	}
	if got := e.CostNS(); got < 900 || got > 1100 {
		t.Fatalf("calibrated ns/unit %d, want ~1000", got)
	}
	if d := e.Duration(2000); d < 1800*time.Microsecond || d > 2200*time.Microsecond {
		t.Fatalf("Duration(2000) = %v, want ~2ms", d)
	}
	// Garbage observations are ignored.
	before := e.CostNS()
	e.Observe(0, time.Second)
	e.Observe(100, -time.Second)
	if e.CostNS() != before {
		t.Fatal("degenerate observations moved the scale")
	}
}
