package admit

import (
	"container/list"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Cache is the epoch-keyed result cache: (epoch, canonical Request) →
// Result. Correctness is free because an epoch *is* the identity of an
// index state — two requests with the same canonical key against the same
// epoch must produce the same answer, and a snapshot publish invalidates
// by construction (new epoch, new keys; Sweep promptly drops the stale
// generation). Entries are bounded by an LRU list; deterministic
// no-community failures are cached too (negative caching), since under
// repeat-heavy traffic they are as hot as hits.
//
// Cached *core.Result values are shared between callers: the serve layer
// returns a shallow copy with restamped per-query stats, and Community is
// immutable by contract (Vertices/Subgraph are documented read-only).
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key   string
	epoch int64
	res   *core.Result
	err   error // non-nil for a cached deterministic failure
}

// NewCache builds a cache bounded to max entries; max <= 0 disables the
// cache (every Get misses, Put is a no-op).
func NewCache(max int) *Cache {
	c := &Cache{max: max}
	if max > 0 {
		c.ll = list.New()
		c.entries = make(map[string]*list.Element, max)
	}
	return c
}

// Key canonicalizes a request under an epoch: the query vertex set is
// sorted and deduplicated, parameters are folded to their effective values
// (so {Eta: 0} and {Eta: 1000} share an entry), and the whole tuple is
// encoded into one string key.
func Key(epoch int64, req core.Request) string {
	q := append([]int(nil), req.Q...)
	sort.Ints(q)
	buf := make([]byte, 0, 64)
	buf = strconv.AppendInt(buf, epoch, 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(req.Algo), 10)
	buf = append(buf, '|')
	k := req.K
	if req.Algo == core.AlgoMDC || req.Algo == core.AlgoQDC {
		k = 0 // the baselines ignore K entirely
	}
	buf = strconv.AppendInt(buf, int64(k), 10)
	buf = append(buf, '|')
	eta := req.Eta
	if eta <= 0 {
		eta = 1000
	}
	if req.Algo != core.AlgoLCTC {
		eta = 0 // only LCTC reads it; don't fragment the other algorithms
	}
	buf = strconv.AppendInt(buf, int64(eta), 10)
	buf = append(buf, '|')
	gamma := req.Gamma
	if req.DistanceMode == core.DistHop {
		gamma = 0
	} else if gamma == 0 {
		gamma = 3
	}
	if req.Algo != core.AlgoLCTC {
		gamma = 0
	}
	buf = strconv.AppendUint(buf, math.Float64bits(gamma), 16)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(req.DistanceMode), 10)
	buf = append(buf, '|')
	dir := req.Direction
	if req.Algo != core.AlgoDTruss {
		dir = 0 // only DTruss orients; don't fragment the other algorithms
	}
	buf = strconv.AppendInt(buf, int64(dir), 10)
	buf = append(buf, '|')
	minProb := req.MinProb
	if minProb == 0 {
		minProb = core.DefaultMinProb
	}
	if req.Algo != core.AlgoProbTruss {
		minProb = 0 // only ProbTruss reads it
	}
	buf = strconv.AppendUint(buf, math.Float64bits(minProb), 16)
	last := -1
	for _, v := range q {
		if v == last {
			continue // dedup: {1,1,2} and {1,2} are the same query set
		}
		last = v
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return string(buf)
}

// cacheable reports whether a request may use the cache at all. Verify
// requests bypass it: they exist to re-run the checker, not to be served
// from memory.
func cacheable(req core.Request) bool { return !req.Verify }

// Get looks up the canonical request under epoch. ok reports a hit; on a
// hit exactly one of res and err is non-nil (a cached deterministic
// failure returns its error).
func (c *Cache) Get(epoch int64, req core.Request) (res *core.Result, err error, ok bool) {
	if c.max <= 0 || !cacheable(req) {
		return nil, nil, false
	}
	key := Key(epoch, req)
	c.mu.Lock()
	el, hit := c.entries[key]
	if hit {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		res, err = e.res, e.err
	}
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
		return res, err, true
	}
	c.misses.Add(1)
	return nil, nil, false
}

// Put stores a completed answer (or a deterministic failure) under the
// epoch it was computed at, evicting the least-recently-used entry past
// the bound.
func (c *Cache) Put(epoch int64, req core.Request, res *core.Result, err error) {
	if c.max <= 0 || !cacheable(req) {
		return
	}
	key := Key(epoch, req)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.res, e.err = res, err
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, res: res, err: err})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Sweep drops every entry older than the given epoch. The publisher calls
// it on each epoch handoff: stale keys can never hit again (the epoch is
// part of the key), so this only frees their memory promptly instead of
// waiting for LRU churn.
func (c *Cache) Sweep(epoch int64) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if e := el.Value.(*cacheEntry); e.epoch < epoch {
			c.ll.Remove(el)
			delete(c.entries, e.key)
		}
	}
}

// CacheStats is the cache's /stats slice.
type CacheStats struct {
	Hits    int64 `json:"cache_hits"`
	Misses  int64 `json:"cache_misses"`
	Entries int   `json:"cache_entries"`
}

// Stats snapshots the hit/miss counters and current size.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	if c.max > 0 {
		c.mu.Lock()
		st.Entries = c.ll.Len()
		c.mu.Unlock()
	}
	return st
}
