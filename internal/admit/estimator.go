package admit

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trussindex"
)

// defaultCostNS is the starting ns-per-unit before any query has been
// observed: deliberately small so an uncalibrated gate over-admits rather
// than over-sheds (the first few queries calibrate it).
const defaultCostNS = 50

// Estimator is the statistics-free greedy cost model of the admission
// layer. It assigns each request abstract cost units from structure the
// index already has — query-vertex degrees, the trussness-level count, the
// algorithm's peel behavior — and converts units to wall time through a
// single scale factor calibrated online (EWMA over observed query cost).
// No histograms, no per-query-class statistics: like a greedy planner, it
// only needs to rank requests and produce a usable start-time estimate,
// not predict latency exactly.
type Estimator struct {
	// nsPerUnit is the EWMA-calibrated wall-nanoseconds per cost unit.
	nsPerUnit atomic.Int64

	// Cumulative calibration-error accounting: for every observed query,
	// predictedNS adds the estimate the admission decision was priced at
	// (units × the scale in force at completion), actualNS the measured
	// execution time, and absErrNS the absolute difference. The ratio
	// absErrNS/actualNS is the estimator's observable relative error.
	predictedNS atomic.Int64
	actualNS    atomic.Int64
	absErrNS    atomic.Int64
	observed    atomic.Int64
}

// NewEstimator builds an estimator seeded with initialNS nanoseconds per
// cost unit (0 = default).
func NewEstimator(initialNS int64) *Estimator {
	e := &Estimator{}
	if initialNS <= 0 {
		initialNS = defaultCostNS
	}
	e.nsPerUnit.Store(initialNS)
	return e
}

// Units estimates the abstract cost of req against ix. The drivers, in the
// spirit of a statistics-free greedy planner:
//
//   - Σ degree(q): FindG0 / the Steiner seed consume the query vertices'
//     trussness-sorted arc runs, so their degrees bound the seed frontier.
//   - the distinct-trussness level count: FindG0 descends levels until the
//     query connects, so a deep threshold ladder multiplies seed work.
//   - the algorithm's peel factor: Basic re-peels one vertex per round
//     (quadratic-ish), BulkDelete batches rounds, LCTC peels only its
//     η-bounded expansion, TrussOnly never peels.
//
// Out-of-range query vertices contribute nothing; validation rejects such
// requests separately, and the estimator must never panic on unvalidated
// input.
func (e *Estimator) Units(ix *trussindex.Index, req core.Request) int64 {
	g := ix.Graph()
	n := g.N()
	var degSum int64
	for _, v := range req.Q {
		if v >= 0 && v < n {
			degSum += int64(g.Degree(v))
		}
	}
	levels := int64(len(ix.ThresholdsShared()))
	if levels == 0 {
		levels = 1
	}
	// Seed cost: the level descent touches the query arcs once per level in
	// the worst case; damp the multiplier so typical early-exit queries are
	// not wildly over-estimated.
	units := int64(64) + degSum + degSum*levels/4
	switch req.Algo {
	case core.AlgoBasic:
		units += 32 * degSum
	case core.AlgoBulkDelete:
		units += 4 * degSum
	case core.AlgoLCTC:
		eta := int64(req.Eta)
		if eta <= 0 {
			eta = 1000 // core's default expansion budget
		}
		units += eta
	case core.AlgoDTruss:
		// Orients and peels the whole graph per query (cycle+flow support
		// per arc, kc descent).
		units += 8 * int64(g.M())
	case core.AlgoProbTruss:
		// Full (k,γ)-truss decomposition with a Poisson-binomial DP per
		// edge per level: the most expensive model per edge.
		units += 16 * int64(g.M())
	case core.AlgoMDC:
		// Works inside the distance-2 ball around Q; degree sum bounds the
		// ball frontier, and the bucket peel revisits it a few times.
		units += 16 * degSum
	case core.AlgoQDC:
		// Proximity iteration sweeps the whole component a fixed number of
		// times; the heap peel is near-linear in edges.
		units += 2 * int64(g.M())
	}
	return units
}

// Duration converts cost units into an estimated wall-clock duration using
// the calibrated scale.
func (e *Estimator) Duration(units int64) time.Duration {
	return time.Duration(units * e.nsPerUnit.Load())
}

// Observe feeds one completed query back into the calibration: actual is
// the measured execution time (excluding queue wait) of a query estimated
// at units. The scale moves by 1/8 of the error per observation — quick to
// converge after a workload shift, too damped for one outlier to swing
// admission decisions. Lost updates under concurrent Observe calls are
// acceptable: this is a heuristic scale, not an invariant.
func (e *Estimator) Observe(units int64, actual time.Duration) {
	if units <= 0 || actual <= 0 {
		return
	}
	sample := actual.Nanoseconds() / units
	if sample < 1 {
		sample = 1
	}
	old := e.nsPerUnit.Load()
	e.nsPerUnit.Store(old + (sample-old)/8)

	predicted := units * old
	errNS := predicted - actual.Nanoseconds()
	if errNS < 0 {
		errNS = -errNS
	}
	e.predictedNS.Add(predicted)
	e.actualNS.Add(actual.Nanoseconds())
	e.absErrNS.Add(errNS)
	e.observed.Add(1)
}

// ErrorStats returns the cumulative calibration-error counters: total
// predicted and actual nanoseconds, total absolute error, and the number of
// observations. All monotone, safe for scrape-time func metrics.
func (e *Estimator) ErrorStats() (predictedNS, actualNS, absErrNS, observations int64) {
	return e.predictedNS.Load(), e.actualNS.Load(), e.absErrNS.Load(), e.observed.Load()
}

// CostNS returns the current calibrated ns-per-unit scale (a /stats gauge).
func (e *Estimator) CostNS() int64 { return e.nsPerUnit.Load() }
