package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAcquireFastPath(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, QueueSize: 4})
	r1, err := c.Acquire(context.Background(), "a", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background(), "b", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Counters(); got.Inflight != 2 || got.Admitted != 2 {
		t.Fatalf("counters after two admits: %+v", got)
	}
	r1()
	r1() // double release must be a no-op (sync.Once)
	r2()
	if got := c.Counters(); got.Inflight != 0 {
		t.Fatalf("inflight %d after release, want 0", got.Inflight)
	}
	if c.Overloaded() {
		t.Fatal("gate reports overloaded with no queue and no sheds")
	}
}

// TestFastPathIgnoresDeadline: a request admitted immediately starts now,
// so even an expensive estimate against a near deadline must not shed it.
func TestFastPathIgnoresDeadline(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueSize: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	release, err := c.Acquire(ctx, "a", time.Hour)
	if err != nil {
		t.Fatalf("fast path shed an immediately startable request: %v", err)
	}
	release()
}

func TestDeadlineShed(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueSize: 16})
	hold, err := c.Acquire(context.Background(), "hog", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	// Backlog is 1s at limit 1, so the estimated start is ~1s out; a 10ms
	// deadline cannot be met and the request must shed immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = c.Acquire(ctx, "late", time.Millisecond)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverloadError, got %T", err)
	}
	if oe.Reason != "deadline" || oe.RetryAfter <= 0 {
		t.Fatalf("unexpected shed detail: %+v", oe)
	}
	st := c.Counters()
	if st.ShedDeadline != 1 || st.Tenants["late"].Rejected != 1 {
		t.Fatalf("shed not counted: %+v", st)
	}
	if !c.Overloaded() {
		t.Fatal("gate not overloaded right after a shed")
	}
}

func TestQueueFullShed(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueSize: 1})
	hold, err := c.Acquire(context.Background(), "hog", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		release, err := c.Acquire(context.Background(), "waiter", time.Millisecond)
		if err != nil {
			t.Errorf("queued waiter: %v", err)
		} else {
			release()
		}
		close(queued)
	}()
	waitFor(t, "queue depth 1", func() bool { return c.Counters().QueueDepth == 1 })
	_, err = c.Acquire(context.Background(), "spill", time.Millisecond)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue full" {
		t.Fatalf("want queue-full *OverloadError, got %v", err)
	}
	hold()
	<-queued
	if st := c.Counters(); st.ShedQueueFull != 1 || st.Admitted != 2 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestCancelInQueueFreesSlot(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueSize: 8})
	hold, err := c.Acquire(context.Background(), "hog", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "gone", time.Millisecond)
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return c.Counters().QueueDepth == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	st := c.Counters()
	if st.QueueDepth != 0 || st.CanceledInQueue != 1 || st.Tenants["gone"].Canceled != 1 {
		t.Fatalf("counters after cancel: %+v", st)
	}
	hold()
	// The slot is reusable: a fresh request admits on the fast path.
	release, err := c.Acquire(context.Background(), "next", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	release()
}

// TestRoundRobinFairness pins the drain order: with tenants A (4 waiters),
// B (1), C (1) queued in that arrival order behind a held slot, grants
// rotate A, B, C before A gets a second turn.
func TestRoundRobinFairness(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueSize: 16})
	hold, err := c.Acquire(context.Background(), "hog", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		depth := c.Counters().QueueDepth
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := c.Acquire(context.Background(), tenant, time.Millisecond)
			if err != nil {
				t.Errorf("tenant %s: %v", tenant, err)
				return
			}
			order <- tenant
			release() // releasing grants the next waiter, keeping the order strict
		}()
		waitFor(t, "waiter enqueued", func() bool { return c.Counters().QueueDepth == depth+1 })
	}
	for _, tenant := range []string{"A", "A", "A", "A", "B", "C"} {
		enqueue(tenant)
	}
	hold()
	wg.Wait()
	close(order)
	var got []string
	for tenant := range order {
		got = append(got, tenant)
	}
	want := []string{"A", "B", "C", "A", "A", "A"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want %v", got, want)
	}
}

func TestDisabled(t *testing.T) {
	c := NewController(Config{Disabled: true, MaxConcurrent: 1})
	var releases []func()
	for i := 0; i < 10; i++ {
		release, err := c.Acquire(context.Background(), "x", time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, release)
	}
	for _, r := range releases {
		r()
	}
	if st := c.Counters(); st.Admitted != 0 || st.Inflight != 0 {
		t.Fatalf("disabled gate should count nothing: %+v", st)
	}
	if c.Overloaded() {
		t.Fatal("disabled gate reports overloaded")
	}
}

// TestAdmittedMatchesClientSuccesses hammers the gate from many goroutines
// with aggressive deadlines under churn (run with -race): at the end, the
// Admitted counter must equal the number of Acquire calls that returned
// success — including the grant/cancel race, which must be reclassified as
// canceled, never counted as admitted — and the gate must drain to zero.
func TestAdmittedMatchesClientSuccesses(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, QueueSize: 8})
	var succeeded, shed, canceled atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(1+i%5)*100*time.Microsecond)
				release, err := c.Acquire(ctx, fmt.Sprintf("t%d", w%3), 50*time.Microsecond)
				switch {
				case err == nil:
					succeeded.Add(1)
					time.Sleep(20 * time.Microsecond)
					release()
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					canceled.Add(1)
				default:
					t.Errorf("unexpected error %v", err)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	st := c.Counters()
	if st.Admitted != succeeded.Load() {
		t.Fatalf("admitted=%d but %d Acquire calls succeeded (shed=%d canceled=%d): the grant/cancel race leaks admissions",
			st.Admitted, succeeded.Load(), shed.Load(), canceled.Load())
	}
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("gate did not drain: %+v", st)
	}
	var tenantAdmitted int64
	for _, tc := range st.Tenants {
		tenantAdmitted += tc.Admitted
	}
	if tenantAdmitted != st.Admitted {
		t.Fatalf("per-tenant admitted sums to %d, total says %d", tenantAdmitted, st.Admitted)
	}
}
