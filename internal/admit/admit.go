// Package admit is the overload-protection layer of the query plane:
// admission control, deadline-aware queueing with per-tenant round-robin
// fairness, a statistics-free greedy cost estimator, and an epoch-keyed
// result cache.
//
// The problem it solves is congestion collapse: without it, a burst of
// queries piles goroutines onto the workspace pool, every query misses its
// deadline together, and the server degrades for everyone. The controller
// bounds concurrent query execution to a GOMAXPROCS-scaled slot count,
// queues a bounded backlog behind it, and sheds everything else *before*
// the peel starts — a shed request costs one mutex acquisition and returns
// a typed ErrOverloaded the client can back off on, never a timeout.
//
// Shedding is deadline-aware: each request carries a greedy cost estimate
// (see Estimator), and a request whose estimated start time already
// overruns its context deadline is rejected immediately instead of
// occupying a queue slot it can only waste. Queued requests whose context
// fires are removed and their slot freed, so abandoned clients never hold
// capacity.
//
// Fairness is per tenant: waiters queue under their Request.Tenant and
// slots drain round-robin across tenants, so one hot tenant saturating the
// queue cannot starve the rest — every tenant with waiters gets every
// T-th slot.
package admit

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the typed load-shedding error: the request was rejected
// by admission control before any work ran. Match with errors.Is; the
// concrete *OverloadError carries a Retry-After hint.
var ErrOverloaded = errors.New("admit: overloaded, request shed")

// OverloadError is the concrete shed error: why the request was rejected
// and how long the client should back off. errors.Is(err, ErrOverloaded)
// matches it.
type OverloadError struct {
	// Reason distinguishes the shed paths: "deadline" (estimated start time
	// overruns the request deadline) or "queue full".
	Reason string
	// RetryAfter estimates when capacity frees up (the current backlog
	// drained at full concurrency) — the HTTP layer rounds it up into a
	// Retry-After header.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("admit: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match every OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Config tunes the overload-protection layer. The zero value enables it
// with defaults sized for the host.
type Config struct {
	// Disabled bypasses admission control and caching entirely (every
	// Acquire admits immediately). For tools and tests that drive the
	// manager without an overload story.
	Disabled bool
	// MaxConcurrent bounds queries executing simultaneously. Default
	// 2×GOMAXPROCS: queries are CPU-bound, so more in flight only adds
	// scheduler pressure and memory for pooled workspaces, not throughput.
	MaxConcurrent int
	// QueueSize bounds the admission queue across all tenants; a request
	// arriving to a full queue is shed with ErrOverloaded. Default 256.
	QueueSize int
	// CacheEntries bounds the epoch-keyed result cache. 0 selects the
	// default 1024; negative disables caching.
	CacheEntries int
	// InitialCostNS seeds the estimator's ns-per-cost-unit before any query
	// has calibrated it (see Estimator.Observe). 0 selects the default.
	InitialCostNS int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.InitialCostNS <= 0 {
		c.InitialCostNS = defaultCostNS
	}
	return c
}

// TenantCounters is the per-tenant slice of the admission counters,
// surfaced in /stats so fairness is observable.
type TenantCounters struct {
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled_in_queue"`
}

// Counters is a point-in-time view of the controller.
type Counters struct {
	Admitted            int64                     `json:"queries_admitted"`
	ShedDeadline        int64                     `json:"queries_shed_deadline"`
	ShedQueueFull       int64                     `json:"queries_shed_queue_full"`
	CanceledInQueue     int64                     `json:"queries_canceled_in_queue"`
	QueueDepth          int                       `json:"query_queue_depth"`
	Inflight            int                       `json:"query_inflight"`
	EstimatedStartDelay time.Duration             `json:"-"`
	Tenants             map[string]TenantCounters `json:"-"`
}

// waiter is one queued admission request.
type waiter struct {
	est     time.Duration
	ready   chan struct{}
	granted bool // slot handed over while the waiter may be cancelling
}

// tenantQ is one tenant's FIFO of waiters plus its counters.
type tenantQ struct {
	name     string
	waiters  []*waiter
	counters TenantCounters
}

// Controller is the admission gate. One instance guards one manager's query
// path; all methods are safe for concurrent use.
type Controller struct {
	mu       sync.Mutex
	disabled bool
	limit    int
	queueCap int

	inflight int
	queued   int
	// backlog sums the cost estimates of everything admitted-but-running
	// plus everything queued: backlog/limit is the greedy estimate of when
	// a newly arriving request could start.
	backlog time.Duration

	tenants map[string]*tenantQ
	// ring holds the tenants that currently have waiters; slots drain
	// round-robin over it (rr is the next index to serve).
	ring []*tenantQ
	rr   int

	admitted      int64
	shedDeadline  int64
	shedQueueFull int64
	canceled      int64

	// lastShedNano feeds Overloaded(): the gate reports overload while the
	// queue is non-empty or a shed happened within the last second.
	lastShedNano atomic.Int64
}

// NewController builds a gate from cfg (zero value = defaults).
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		disabled: cfg.Disabled,
		limit:    cfg.MaxConcurrent,
		queueCap: cfg.QueueSize,
		tenants:  make(map[string]*tenantQ),
	}
}

// Deadliner is the subset of context.Context admission needs. Using the
// small interface keeps the hot path free of context-package internals and
// makes the controller trivially testable.
type Deadliner interface {
	Deadline() (time.Time, bool)
	Done() <-chan struct{}
	Err() error
}

// Acquire admits one request of estimated duration est for the given
// tenant, blocking in the fair queue while the gate is at capacity. On
// success it returns a release function that MUST be called exactly once
// when the request finishes. On overload it returns an *OverloadError
// (errors.Is ErrOverloaded); if ctx fires while queued, the queue slot is
// freed and ctx.Err() returned.
func (c *Controller) Acquire(ctx Deadliner, tenant string, est time.Duration) (release func(), err error) {
	if c.disabled {
		return func() {}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	tq := c.tenant(tenant)
	// Fast path: a free slot and nobody waiting ahead — admit immediately.
	// The deadline check is skipped here on purpose: the request starts
	// *now*, so its estimated start time cannot overrun any deadline.
	if c.inflight < c.limit && c.queued == 0 {
		c.inflight++
		c.backlog += est
		c.admitted++
		tq.counters.Admitted++
		c.mu.Unlock()
		return c.releaseOnce(est), nil
	}
	// At capacity. Estimate when this request could start: the whole
	// backlog drained at full concurrency. Requests that would start after
	// their deadline are shed now — queueing them only converts a cheap 429
	// into an expensive timeout.
	startDelay := c.backlog / time.Duration(c.limit)
	if dl, ok := ctx.Deadline(); ok && time.Now().Add(startDelay+est).After(dl) {
		c.shedDeadline++
		tq.counters.Rejected++
		c.mu.Unlock()
		c.lastShedNano.Store(time.Now().UnixNano())
		return nil, &OverloadError{Reason: "deadline", RetryAfter: startDelay}
	}
	if c.queued >= c.queueCap {
		c.shedQueueFull++
		tq.counters.Rejected++
		c.mu.Unlock()
		c.lastShedNano.Store(time.Now().UnixNano())
		return nil, &OverloadError{Reason: "queue full", RetryAfter: startDelay}
	}
	w := &waiter{est: est, ready: make(chan struct{})}
	if len(tq.waiters) == 0 {
		c.ring = append(c.ring, tq)
	}
	tq.waiters = append(tq.waiters, w)
	c.queued++
	c.backlog += est
	c.mu.Unlock()

	select {
	case <-w.ready:
		return c.releaseOnce(est), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: reclassify as canceled (the
			// request never runs) so Admitted keeps matching executed queries
			// exactly, then hand the slot onward through the normal release
			// path.
			c.admitted--
			tq.counters.Admitted--
			c.canceled++
			tq.counters.Canceled++
			c.mu.Unlock()
			c.release(est)
			return nil, ctx.Err()
		}
		c.removeWaiter(tq, w)
		c.canceled++
		tq.counters.Canceled++
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// releaseOnce wraps release in a sync.Once so a double call cannot corrupt
// the slot accounting.
func (c *Controller) releaseOnce(est time.Duration) func() {
	var once sync.Once
	return func() { once.Do(func() { c.release(est) }) }
}

func (c *Controller) release(est time.Duration) {
	c.mu.Lock()
	c.inflight--
	c.backlog -= est
	c.grantLocked()
	c.mu.Unlock()
}

// grantLocked hands free slots to queued waiters, one tenant at a time in
// round-robin order. Caller holds c.mu.
func (c *Controller) grantLocked() {
	for c.inflight < c.limit && c.queued > 0 {
		if c.rr >= len(c.ring) {
			c.rr = 0
		}
		tq := c.ring[c.rr]
		w := tq.waiters[0]
		tq.waiters = tq.waiters[1:]
		if len(tq.waiters) == 0 {
			c.ring = append(c.ring[:c.rr], c.ring[c.rr+1:]...)
			// rr now points at the next tenant already; no advance.
		} else {
			c.rr++
		}
		c.queued--
		c.inflight++
		c.admitted++
		tq.counters.Admitted++
		w.granted = true
		close(w.ready)
	}
}

// removeWaiter unlinks a cancelled waiter from its tenant queue. Caller
// holds c.mu.
func (c *Controller) removeWaiter(tq *tenantQ, w *waiter) {
	for i, x := range tq.waiters {
		if x == w {
			tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
			c.queued--
			c.backlog -= w.est
			break
		}
	}
	if len(tq.waiters) == 0 {
		for i, x := range c.ring {
			if x == tq {
				c.ring = append(c.ring[:i], c.ring[i+1:]...)
				if c.rr > i {
					c.rr--
				}
				break
			}
		}
	}
}

func (c *Controller) tenant(name string) *tenantQ {
	tq := c.tenants[name]
	if tq == nil {
		tq = &tenantQ{name: name}
		c.tenants[name] = tq
	}
	return tq
}

// Overloaded reports whether the gate is currently shedding or saturated:
// the queue is non-empty, or a request was shed within the last second.
// /healthz uses it to distinguish "overloaded" (shedding, still healthy)
// from "degraded" (read-only after a WAL failure).
func (c *Controller) Overloaded() bool {
	if c.disabled {
		return false
	}
	if time.Now().UnixNano()-c.lastShedNano.Load() < int64(time.Second) {
		return true
	}
	c.mu.Lock()
	q := c.queued
	c.mu.Unlock()
	return q > 0
}

// QuickCounters returns the scalar admission counters without building the
// per-tenant map — cheap enough to call several times per metrics scrape.
func (c *Controller) QuickCounters() (admitted, shedDeadline, shedQueueFull, canceled int64, queueDepth, inflight int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitted, c.shedDeadline, c.shedQueueFull, c.canceled, c.queued, c.inflight
}

// Counters snapshots the admission statistics, including the per-tenant
// slices.
func (c *Controller) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Counters{
		Admitted:        c.admitted,
		ShedDeadline:    c.shedDeadline,
		ShedQueueFull:   c.shedQueueFull,
		CanceledInQueue: c.canceled,
		QueueDepth:      c.queued,
		Inflight:        c.inflight,
	}
	if c.limit > 0 {
		out.EstimatedStartDelay = c.backlog / time.Duration(c.limit)
	}
	if len(c.tenants) > 0 {
		out.Tenants = make(map[string]TenantCounters, len(c.tenants))
		for name, tq := range c.tenants {
			out.Tenants[name] = tq.counters
		}
	}
	return out
}
