package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestOverlap(t *testing.T) {
	if Overlap([]int{1, 2, 3}, []int{2, 3, 4}) != 2 {
		t.Fatal("overlap wrong")
	}
	if Overlap(nil, []int{1}) != 0 || Overlap([]int{1}, nil) != 0 {
		t.Fatal("empty overlap wrong")
	}
	// Duplicates in b must not double count.
	if Overlap([]int{1, 2}, []int{1, 1, 1}) != 1 {
		t.Fatal("duplicate counting broken")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	det := []int{1, 2, 3, 4}
	truth := []int{3, 4, 5, 6, 7, 8}
	if p := Precision(det, truth); p != 0.5 {
		t.Fatalf("precision %f", p)
	}
	if r := Recall(det, truth); math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("recall %f", r)
	}
	want := 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0/3)
	if f := F1(det, truth); math.Abs(f-want) > 1e-12 {
		t.Fatalf("f1 %f, want %f", f, want)
	}
	if F1(nil, truth) != 0 || F1(det, nil) != 0 {
		t.Fatal("degenerate F1 should be 0")
	}
	if F1(truth, truth) != 1 {
		t.Fatal("perfect match must be 1")
	}
}

func TestF1Bounds(t *testing.T) {
	f := func(a, b []uint8) bool {
		det := make([]int, len(a))
		for i, x := range a {
			det[i] = int(x % 32)
		}
		truth := make([]int, len(b))
		for i, x := range b {
			truth[i] = int(x % 32)
		}
		v := F1(det, truth)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBestF1(t *testing.T) {
	truths := [][]int{{1, 2, 3}, {4, 5, 6}, {1, 2, 3, 4}}
	f, idx := BestF1([]int{1, 2, 3}, truths)
	if idx != 0 || f != 1 {
		t.Fatalf("best = %f at %d", f, idx)
	}
	f, idx = BestF1([]int{9, 10}, truths)
	if f != 0 || idx != -1 {
		t.Fatalf("no-match best = %f at %d", f, idx)
	}
	if f, idx := BestF1([]int{1}, nil); f != 0 || idx != -1 {
		t.Fatal("empty truths")
	}
}

func TestKeptPercent(t *testing.T) {
	if KeptPercent(14, 73) < 19 || KeptPercent(14, 73) > 20 {
		t.Fatalf("case-study percentage = %f, want ~19.2", KeptPercent(14, 73))
	}
	if KeptPercent(5, 0) != 0 {
		t.Fatal("division by zero")
	}
	if KeptPercent(10, 10) != 100 {
		t.Fatal("identity percentage")
	}
}

func TestDiameterBounds(t *testing.T) {
	// Path 0-1-2-3-4 with Q={0}: query distance 4, so LB=4, UB=8.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	mu := graph.NewMutable(g, nil)
	lb, ub := DiameterBounds(mu, []int{0})
	if lb != 4 || ub != 8 {
		t.Fatalf("bounds = %d, %d", lb, ub)
	}
	// Lemma 2 sanity: actual diameter within [lb, ub].
	d, _ := graph.Diameter(mu)
	if d < lb || d > ub {
		t.Fatalf("diameter %d outside [%d, %d]", d, lb, ub)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty aggregates")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Fatal("median sorted the caller's slice")
	}
}
