// Package quality implements the evaluation measures of Section 6:
// precision/recall/F1 against ground-truth communities, kept-node
// percentage (free-rider elimination), edge density, and the Lemma-2
// diameter bounds used in Exp-4.
package quality

import (
	"sort"

	"repro/internal/graph"
)

// Overlap returns |A ∩ B| for two vertex sets.
func Overlap(a, b []int) int {
	in := make(map[int]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	c := 0
	seen := make(map[int]bool, len(b))
	for _, v := range b {
		if in[v] && !seen[v] {
			seen[v] = true
			c++
		}
	}
	return c
}

// Precision returns |C ∩ Ĉ| / |C| for detected community C and truth Ĉ.
func Precision(detected, truth []int) float64 {
	if len(detected) == 0 {
		return 0
	}
	return float64(Overlap(detected, truth)) / float64(len(detected))
}

// Recall returns |C ∩ Ĉ| / |Ĉ|.
func Recall(detected, truth []int) float64 {
	if len(truth) == 0 {
		return 0
	}
	return float64(Overlap(detected, truth)) / float64(len(truth))
}

// F1 returns the harmonic mean of precision and recall (Exp-3's score).
func F1(detected, truth []int) float64 {
	p, r := Precision(detected, truth), Recall(detected, truth)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BestF1 returns the maximum F1 of the detected community against any of
// the candidate ground-truth communities, with the index of the best match
// (-1 when there are none).
func BestF1(detected []int, truths [][]int) (float64, int) {
	best, idx := 0.0, -1
	for i, truth := range truths {
		if f := F1(detected, truth); f > best {
			best, idx = f, i
		}
	}
	return best, idx
}

// KeptPercent returns 100·|V(R)|/|V(G0)|, the Figures 5-10 "percentage"
// metric: the fraction of the raw k-truss G0 kept by a free-rider-removing
// method (lower = more free riders removed).
func KeptPercent(resultN, g0N int) float64 {
	if g0N == 0 {
		return 0
	}
	return 100 * float64(resultN) / float64(g0N)
}

// DiameterBounds returns Exp-4's empirical bounds for a detected community
// R with query set Q: LB-OPT = dist_R(R,Q) (no feasible subgraph can have
// smaller... the optimal diameter is at least the minimum query distance)
// and UB-OPT = 2·dist_R(R,Q) (Lemma 2).
func DiameterBounds(sub *graph.Mutable, q []int) (lb, ub int) {
	qd, _ := graph.GraphQueryDistance(sub, q)
	return int(qd), 2 * int(qd)
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
