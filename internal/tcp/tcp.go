// Package tcp implements the triangle-connected k-truss community model of
// Huang et al. (SIGMOD 2014) — reference [17] of the paper — which this
// paper's CTC model is motivated against: TCP requires every pair of edges
// in a community to be connected through a chain of triangles, a constraint
// strictly stronger than connectivity that can make multi-vertex queries
// unanswerable (the paper's §1 example: Q = {v4, q3, p1} has no TCP
// community at any k, but does have a CTC).
package tcp

import (
	"errors"
	"sort"

	"repro/internal/graph"
	"repro/internal/truss"
)

// Community is one triangle-connected k-truss community.
type Community struct {
	// K is the trussness level of the community.
	K int32
	// Vertices is the sorted vertex set.
	Vertices []int
	// Edges is the community's edge set (every pair triangle-connected).
	Edges []graph.EdgeKey
}

// ErrNoCommunity is returned when no triangle-connected community covers
// the query.
var ErrNoCommunity = errors.New("tcp: no triangle-connected k-truss community contains the query")

// edgeDSU is union-find over edge indices.
type edgeDSU struct {
	parent []int32
}

func newEdgeDSU(n int) *edgeDSU {
	d := &edgeDSU{parent: make([]int32, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *edgeDSU) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *edgeDSU) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[rb] = ra
	}
}

// classesAtLevel partitions the edges of trussness >= k into
// triangle-connected equivalence classes.
func classesAtLevel(g *graph.Graph, d *truss.Decomposition, k int32) (map[graph.EdgeKey]int, [][]graph.EdgeKey) {
	edges := d.EdgesAtLeast(k) // already in ascending key order
	idx := make(map[graph.EdgeKey]int, len(edges))
	for i, e := range edges {
		idx[e] = i
	}
	mu := graph.NewMutableFromEdges(g.N(), edges)
	dsu := newEdgeDSU(len(edges))
	for i, e := range edges {
		u, v := e.Endpoints()
		mu.CommonNeighbors(u, v, func(w int) {
			// Triangle u-v-w within the level-k subgraph: union all three.
			if j, ok := idx[graph.Key(u, w)]; ok {
				if l, ok2 := idx[graph.Key(v, w)]; ok2 {
					dsu.union(int32(i), int32(j))
					dsu.union(int32(i), int32(l))
				}
			}
		})
	}
	groups := map[int32][]graph.EdgeKey{}
	for i, e := range edges {
		r := dsu.find(int32(i))
		groups[r] = append(groups[r], e)
	}
	out := make([][]graph.EdgeKey, 0, len(groups))
	for _, es := range groups {
		out = append(out, es)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	classOf := make(map[graph.EdgeKey]int, len(edges))
	for ci, es := range out {
		for _, e := range es {
			classOf[e] = ci
		}
	}
	return classOf, out
}

func communityFromEdges(k int32, es []graph.EdgeKey) *Community {
	vs := map[int]bool{}
	for _, e := range es {
		u, v := e.Endpoints()
		vs[u] = true
		vs[v] = true
	}
	verts := make([]int, 0, len(vs))
	for v := range vs {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	edges := append([]graph.EdgeKey(nil), es...)
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return &Community{K: k, Vertices: verts, Edges: edges}
}

// Communities returns every triangle-connected k-truss community containing
// the single query vertex q at level k (the [17] primitive: one community
// per triangle-connected class holding an edge incident to q). The result
// may be empty.
func Communities(g *graph.Graph, d *truss.Decomposition, q int, k int32) []*Community {
	classOf, groups := classesAtLevel(g, d, k)
	seen := map[int]bool{}
	var out []*Community
	if q < 0 || q >= g.N() {
		return nil
	}
	for _, w := range g.Neighbors(q) {
		e := graph.Key(q, int(w))
		if ci, ok := classOf[e]; ok && !seen[ci] {
			seen[ci] = true
			out = append(out, communityFromEdges(k, groups[ci]))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Edges[0] < out[j].Edges[0] })
	return out
}

// SearchMulti extends the model to a query set, per the paper's §1
// discussion: a valid answer is a triangle-connected class at level k that
// contains an incident edge of every query vertex. Returns ErrNoCommunity
// when the constraint is unsatisfiable at this k.
func SearchMulti(g *graph.Graph, d *truss.Decomposition, q []int, k int32) (*Community, error) {
	if len(q) == 0 {
		return nil, errors.New("tcp: empty query")
	}
	classOf, groups := classesAtLevel(g, d, k)
	// For each query vertex, the set of classes touching it.
	candidate := map[int]int{} // class -> how many query vertices it covers
	for _, qv := range q {
		if qv < 0 || qv >= g.N() {
			return nil, ErrNoCommunity
		}
		mine := map[int]bool{}
		for _, w := range g.Neighbors(qv) {
			if ci, ok := classOf[graph.Key(qv, int(w))]; ok {
				mine[ci] = true
			}
		}
		for ci := range mine {
			candidate[ci]++
		}
	}
	best := -1
	for ci, cover := range candidate {
		if cover == len(dedupe(q)) && (best < 0 || ci < best) {
			best = ci
		}
	}
	if best < 0 {
		return nil, ErrNoCommunity
	}
	return communityFromEdges(k, groups[best]), nil
}

// MaxSearchMulti finds the largest k admitting a triangle-connected
// community covering all of q, mirroring the CTC's "largest k" condition.
func MaxSearchMulti(g *graph.Graph, d *truss.Decomposition, q []int) (*Community, error) {
	hi := d.QueryUpperBound(q)
	for k := hi; k >= 3; k-- { // triangle connectivity needs k >= 3 to be meaningful
		if c, err := SearchMulti(g, d, q, k); err == nil {
			return c, nil
		}
	}
	return nil, ErrNoCommunity
}

func dedupe(q []int) []int {
	seen := map[int]bool{}
	out := q[:0:0]
	for _, v := range q {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
