package tcp

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/truss"
)

// paperGraph is Figure 1(a); q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7
// p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	return graph.FromEdges(12, [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	})
}

func TestPaperSection1Claim(t *testing.T) {
	// §1: "for query nodes Q = {v4, q3, p1} the k-truss community model
	// cannot find a qualified community for any k, since the edges (v4,q3)
	// and (q3,p1) are not triangle connected in any k-truss."
	g := paperGraph()
	d := truss.Decompose(g)
	q := []int{6, 2, 8} // v4, q3, p1
	if _, err := MaxSearchMulti(g, d, q); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("TCP should fail on the paper's Q, got err=%v", err)
	}
	// ...while the CTC machinery succeeds (the paper's motivation).
	if _, k, err := truss.MaxConnectedKTruss(g, d, q); err != nil || k != 4 {
		t.Fatalf("CTC should find a 4-truss: k=%d err=%v", k, err)
	}
}

func TestOverlappingCommunitiesOfQ3(t *testing.T) {
	// q3 belongs to two triangle-connected 4-truss classes: the v-block
	// (through its clique with v3,v4,v5) and the p-block clique.
	g := paperGraph()
	d := truss.Decompose(g)
	comms := Communities(g, d, 2, 4)
	if len(comms) != 2 {
		t.Fatalf("%d communities for q3 at k=4, want 2 (overlapping)", len(comms))
	}
	// One of them must be exactly the p-clique {q3,p1,p2,p3}.
	foundP := false
	for _, c := range comms {
		if len(c.Vertices) == 4 && c.Vertices[0] == 2 && c.Vertices[1] == 8 {
			foundP = true
		}
	}
	if !foundP {
		t.Fatalf("p-clique community missing: %+v", comms)
	}
}

func TestTriangleConnectivityStrongerThanConnectivity(t *testing.T) {
	// The whole grey region is a connected 4-truss, but TCP splits it into
	// classes; the CTC answer (q1..v5) spans two classes joined only
	// through shared vertices, not triangles... verify that the TCP class
	// containing edge (q1,q2) does not reach the p-block.
	g := paperGraph()
	d := truss.Decompose(g)
	comms := Communities(g, d, 0, 4) // q1's communities
	if len(comms) == 0 {
		t.Fatal("q1 has no 4-truss TCP community")
	}
	for _, c := range comms {
		for _, v := range c.Vertices {
			if v >= 8 && v <= 10 {
				t.Fatalf("q1's triangle-connected class reached free rider %d", v)
			}
		}
	}
}

func TestSearchMultiSuccess(t *testing.T) {
	// Q = {q1, q2}: both in the left clique's triangle-connected class.
	g := paperGraph()
	d := truss.Decompose(g)
	c, err := SearchMulti(g, d, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 4 {
		t.Fatalf("k = %d", c.K)
	}
	has := map[int]bool{}
	for _, v := range c.Vertices {
		has[v] = true
	}
	if !has[0] || !has[1] {
		t.Fatal("query vertices missing")
	}
}

func TestSearchMultiErrors(t *testing.T) {
	g := paperGraph()
	d := truss.Decompose(g)
	if _, err := SearchMulti(g, d, nil, 4); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := SearchMulti(g, d, []int{-1}, 4); !errors.Is(err, ErrNoCommunity) {
		t.Fatal("bad vertex accepted")
	}
	if _, err := SearchMulti(g, d, []int{0, 1}, 9); !errors.Is(err, ErrNoCommunity) {
		t.Fatal("impossible k accepted")
	}
}

func TestCommunitiesAreValidKTrusses(t *testing.T) {
	// Every TCP community must itself be a connected k-truss (its edge set
	// is a union of triangle-connected edges at level k).
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(20, 0)
		b.EnsureVertex(19)
		for u := 0; u < 20; u++ {
			for v := u + 1; v < 20; v++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.Build()
		d := truss.Decompose(g)
		for k := int32(3); k <= d.MaxTruss; k++ {
			for q := 0; q < 20; q += 5 {
				for _, c := range Communities(g, d, q, k) {
					mu := graph.NewMutableFromEdges(g.N(), c.Edges)
					if !graph.IsConnected(mu) {
						t.Fatalf("seed %d k=%d: TCP community disconnected", seed, k)
					}
					if !truss.IsKTruss(mu, k) {
						t.Fatalf("seed %d k=%d: TCP community is not a %d-truss (τ=%d)",
							seed, k, k, truss.SubgraphTrussness(mu))
					}
				}
			}
		}
	}
}

func TestDedupe(t *testing.T) {
	if got := dedupe([]int{1, 1, 2, 1, 3}); len(got) != 3 {
		t.Fatalf("dedupe = %v", got)
	}
}
