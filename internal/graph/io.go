package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxVertexID bounds vertex IDs accepted by ReadEdgeList. The graph uses a
// dense ID space (memory proportional to the largest ID, not the edge
// count), so inputs with sparse huge IDs must be remapped before loading;
// rejecting them here turns a multi-gigabyte allocation into an error.
const MaxVertexID = 1<<22 - 1

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Vertex IDs must be integers
// in [0, MaxVertexID]; the graph spans 0..maxID.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0, 1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two vertex IDs, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex ID", lineNo)
		}
		if u > MaxVertexID || v > MaxVertexID {
			return nil, fmt.Errorf("graph: line %d: vertex ID exceeds MaxVertexID (%d); remap sparse IDs first", lineNo, MaxVertexID)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as "u v" lines with u < v, preceded by a
// comment header.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected graph: %d vertices, %d edges\n", g.N(), g.M()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int) {
		if writeErr != nil {
			return
		}
		_, writeErr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// Stats summarizes a graph the way Table 2 of the paper does (|V|, |E|,
// dmax), leaving τ̄(∅) to the truss package.
type Stats struct {
	N         int
	M         int
	MaxDegree int
	AvgDegree float64
	Triangles int64
	GCC       float64 // global clustering coefficient
}

// ComputeStats gathers the Table-2 style statistics for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{N: g.N(), M: g.M(), MaxDegree: g.MaxDegree()}
	if s.N > 0 {
		s.AvgDegree = 2 * float64(s.M) / float64(s.N)
	}
	s.Triangles = TriangleCount(g)
	s.GCC = GlobalClusteringCoefficient(g)
	return s
}

// ApproxBytes estimates the in-memory size of the CSR representation, used
// for the "Graph Size" column of Table 3: 8 bytes per directed arc (neighbor
// + edge ID), 4 per vertex offset and 8 per edge-key entry.
func (g *Graph) ApproxBytes() int64 {
	return int64(len(g.nbr))*8 + int64(len(g.off))*4 + int64(len(g.edges))*8
}
