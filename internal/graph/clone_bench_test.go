package graph_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

var cloneBenchGraph *graph.Graph

func cloneBench50k(b *testing.B) *graph.Graph {
	b.Helper()
	if cloneBenchGraph == nil {
		cloneBenchGraph, _ = gen.CommunityGraph(gen.CommunityParams{
			N: 9000, NumCommunities: 550, MinSize: 5, MaxSize: 32,
			Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 4500,
			Hubs: 5, HubDegree: 110, PlantedClique: 22, Seed: 0x50C1,
		})
	}
	return cloneBenchGraph
}

func BenchmarkMutableClone(b *testing.B) {
	mu := graph.NewMutable(cloneBench50k(b), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := mu.Clone()
		if cp.M() != mu.M() {
			b.Fatal("clone mismatch")
		}
	}
}

func BenchmarkMutableDeleteRebuild(b *testing.B) {
	// Clone + cascade of edge deletions: the steady-state shape of the
	// peeling loops.
	g := cloneBench50k(b)
	mu := graph.NewMutable(g, nil)
	keys := mu.EdgeKeys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := mu.Clone()
		for _, k := range keys[:len(keys)/4] {
			u, v := k.Endpoints()
			cp.DeleteEdge(u, v)
		}
	}
}
