package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls Graphviz export.
type DOTOptions struct {
	// Name is the graph name (default "G").
	Name string
	// Highlight maps vertices to a fill color, e.g. query vertices to
	// "gold" and community members to "lightblue".
	Highlight map[int]string
	// Label maps vertices to display labels (default: the vertex ID).
	Label map[int]string
}

// WriteDOT renders the present vertices and edges of g in Graphviz DOT
// format, so discovered communities can be inspected visually
// (dot -Tpng out.dot > out.png).
func WriteDOT(w io.Writer, g Adjacency, opt *DOTOptions) error {
	name := "G"
	var highlight map[int]string
	var label map[int]string
	if opt != nil {
		if opt.Name != "" {
			name = opt.Name
		}
		highlight = opt.Highlight
		label = opt.Label
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n  node [shape=circle fontsize=10];\n", name)
	for v := 0; v < g.NumIDs(); v++ {
		if !g.Present(v) {
			continue
		}
		attrs := ""
		if l, ok := label[v]; ok {
			attrs = fmt.Sprintf(" label=%q", l)
		}
		if c, ok := highlight[v]; ok {
			attrs += fmt.Sprintf(" style=filled fillcolor=%q", c)
		}
		fmt.Fprintf(bw, "  %d [%s];\n", v, attrs)
	}
	for v := 0; v < g.NumIDs(); v++ {
		if !g.Present(v) {
			continue
		}
		var err error
		g.ForEachNeighbor(v, func(u int) {
			if u > v && err == nil {
				_, err = fmt.Fprintf(bw, "  %d -- %d;\n", v, u)
			}
		})
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
