package graph

import (
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n, n-1)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	dist := Distances(g, 0)
	for v := 0; v < 6; v++ {
		if dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	dist := Distances(g, 0)
	if dist[1] != 1 || dist[2] != Unreachable || dist[4] != Unreachable {
		t.Fatalf("dist = %v", dist)
	}
}

func TestBFSAbsentSource(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	mu.DeleteVertex(0)
	dist := Distances(mu, 0)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatal("BFS from absent source should reach nothing")
		}
	}
}

func TestQueryDistancesPaperExample(t *testing.T) {
	// Paper §2: for Q={q2,q3}, dist(v2,Q)=2 (dist to q3 is 2, to q2 is 1).
	g := paperGraph()
	qd := QueryDistances(g, []int{1, 2}) // q2=1, q3=2
	if qd[4] != 2 {                      // v2=4
		t.Fatalf("dist(v2,Q) = %d, want 2", qd[4])
	}
}

func TestGraphQueryDistancePaperExample(t *testing.T) {
	// Paper §2: the grey 4-truss H (everything except t) with Q={q2,q3} has
	// query distance 3.
	g := paperGraph()
	vertices := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // all but t=11
	sub := Induced(g, vertices)
	mu := NewMutable(sub, vertices)
	d, all := GraphQueryDistance(mu, []int{1, 2})
	if !all {
		t.Fatal("grey region should be connected")
	}
	if d != 3 {
		t.Fatalf("dist(H,Q) = %d, want 3", d)
	}
}

func TestConnected(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if !Connected(g, []int{0, 2}) {
		t.Fatal("0 and 2 are connected")
	}
	if Connected(g, []int{0, 3}) {
		t.Fatal("0 and 3 are not connected")
	}
	if !Connected(g, []int{}) || !Connected(g, []int{5}) {
		t.Fatal("empty / singleton query must be connected")
	}
	mu := NewMutable(g, nil)
	mu.DeleteVertex(1)
	if Connected(mu, []int{0, 2}) {
		t.Fatal("deleting the bridge vertex must disconnect")
	}
	if Connected(mu, []int{1}) {
		t.Fatal("absent vertex cannot be connected")
	}
}

func TestComponent(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comp := Component(g, 1)
	if len(comp) != 3 || comp[0] != 0 || comp[2] != 2 {
		t.Fatalf("component = %v", comp)
	}
	if ComponentCount(g) != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", ComponentCount(g))
	}
	if IsConnected(g) {
		t.Fatal("graph is not connected")
	}
	if !IsConnected(pathGraph(4)) {
		t.Fatal("path is connected")
	}
}

func TestQueryDistanceMonotoneUnderDeletion(t *testing.T) {
	// Lemma 3 / Fact 1 of the paper: dist(v,Q) is non-decreasing as the graph
	// shrinks. Property-checked on random graphs.
	f := func(seed int64, delRaw uint8) bool {
		g := randomGraph(seed, 20, 0.3)
		mu := NewMutable(g, nil)
		q := []int{0}
		if !mu.Present(0) {
			return true
		}
		before := QueryDistances(mu, q)
		del := int(delRaw)%19 + 1 // never the query vertex
		mu.DeleteVertex(del)
		after := QueryDistances(mu, q)
		for v := 0; v < 20; v++ {
			if v == del || !mu.Present(v) {
				continue
			}
			if before[v] == Unreachable {
				continue
			}
			if after[v] != Unreachable && after[v] < before[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterPaperExample(t *testing.T) {
	// Paper §2: diam(H) = 4 for the grey region.
	g := paperGraph()
	grey := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sub := Induced(g, grey)
	mu := NewMutable(sub, grey)
	d, ok := Diameter(mu)
	if !ok || d != 4 {
		t.Fatalf("diam = %d (ok=%v), want 4", d, ok)
	}
	// Figure 1(b): without p1,p2,p3 the diameter is 3.
	ctc := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sub2 := Induced(g, ctc)
	mu2 := NewMutable(sub2, ctc)
	d2, ok2 := Diameter(mu2)
	if !ok2 || d2 != 3 {
		t.Fatalf("CTC diam = %d (ok=%v), want 3", d2, ok2)
	}
}

func TestDiameterBoundsLemma2(t *testing.T) {
	// Lemma 2: dist(G,Q) <= diam(G) <= 2 dist(G,Q) for Q ⊆ connected G.
	f := func(seed int64, qRaw uint8) bool {
		g := randomGraph(seed, 16, 0.35)
		if !IsConnected(g) {
			return true
		}
		q := []int{int(qRaw) % 16}
		d, _ := Diameter(g)
		qd, _ := GraphQueryDistance(g, q)
		return int(qd) <= d && d <= 2*int(qd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterLowerBound(t *testing.T) {
	g := pathGraph(9)
	if lb := DiameterLowerBound(g); lb != 8 {
		t.Fatalf("double sweep on path = %d, want 8", lb)
	}
	f := func(seed int64) bool {
		g := randomGraph(seed, 18, 0.25)
		d, _ := Diameter(g)
		return DiameterLowerBound(g) <= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(5)
	if e, all := Eccentricity(g, 0); e != 4 || !all {
		t.Fatalf("ecc(0) = %d,%v", e, all)
	}
	if e, all := Eccentricity(g, 2); e != 2 || !all {
		t.Fatalf("ecc(2) = %d,%v", e, all)
	}
}
