package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the parser never panics and that anything it
// accepts round-trips through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n3 4\n4 3\n")
	f.Add("0 0\n")
	f.Add("a b\n")
	f.Add("-1 5\n")
	f.Add("1 2 3 4\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.M() != g.M() {
			t.Fatalf("round trip lost edges: %d vs %d", back.M(), g.M())
		}
		// Structural invariants.
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.M() {
			t.Fatalf("handshake violated: %d vs 2*%d", sum, g.M())
		}
	})
}

// FuzzBuilder checks that arbitrary edge insertions produce a consistent
// simple graph.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 5, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder(0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			b.AddEdge(int(data[i]), int(data[i+1]))
		}
		g := b.Build()
		for v := 0; v < g.N(); v++ {
			prev := int32(-1)
			for _, w := range g.Neighbors(v) {
				if w == int32(v) {
					t.Fatal("self-loop survived")
				}
				if w <= prev {
					t.Fatal("neighbors unsorted or duplicated")
				}
				prev = w
				if !g.HasEdge(int(w), v) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
	})
}
