package graph

// Diameter returns the exact diameter of the present vertices: the maximum
// finite shortest-path length. If the graph is disconnected the diameter of
// the largest eccentricity over reachable pairs is still returned along with
// ok=false. An empty or single-vertex graph has diameter 0.
func Diameter(g Adjacency) (diam int, ok bool) {
	n := g.NumIDs()
	dist := make([]int32, n)
	var queue []int32
	present := 0
	ok = true
	for v := 0; v < n; v++ {
		if !g.Present(v) {
			continue
		}
		present++
		queue = BFS(g, v, dist, queue)
		reached := 0
		for u := 0; u < n; u++ {
			if !g.Present(u) {
				continue
			}
			if dist[u] == Unreachable {
				ok = false
				continue
			}
			reached++
			if int(dist[u]) > diam {
				diam = int(dist[u])
			}
		}
		_ = reached
	}
	if present == 0 {
		return 0, true
	}
	return diam, ok
}

// Eccentricity returns the eccentricity of v among present vertices reachable
// from it, and whether all present vertices were reachable.
func Eccentricity(g Adjacency, v int) (int, bool) {
	dist := Distances(g, v)
	ecc := 0
	all := true
	for u := 0; u < g.NumIDs(); u++ {
		if !g.Present(u) {
			continue
		}
		if dist[u] == Unreachable {
			all = false
			continue
		}
		if int(dist[u]) > ecc {
			ecc = int(dist[u])
		}
	}
	return ecc, all
}

// DiameterLowerBound returns a fast double-sweep lower bound on the diameter:
// run BFS from an arbitrary vertex, then BFS from the farthest vertex found.
// Exact on trees, a lower bound in general.
func DiameterLowerBound(g Adjacency) int {
	n := g.NumIDs()
	src := -1
	for v := 0; v < n; v++ {
		if g.Present(v) {
			src = v
			break
		}
	}
	if src < 0 {
		return 0
	}
	dist := Distances(g, src)
	far, fd := src, int32(0)
	for v, d := range dist {
		if d != Unreachable && d > fd {
			far, fd = v, d
		}
	}
	dist = Distances(g, far)
	best := int32(0)
	for _, d := range dist {
		if d != Unreachable && d > best {
			best = d
		}
	}
	return int(best)
}
