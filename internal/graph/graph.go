// Package graph provides the undirected simple-graph substrate used by the
// closest-truss-community algorithms: an immutable base graph with sorted
// CSR adjacency and dense edge IDs, a mutable overlay supporting destructive
// vertex/edge deletion, breadth-first traversals, triangle/support
// computation, exact diameters, induced subgraphs and edge-list I/O.
//
// Vertices are dense integers in [0, N). Edges are undirected and unweighted;
// self-loops and parallel edges are rejected at construction time. Every edge
// additionally carries a dense edge ID in [0, M), assigned in ascending
// (min, max) endpoint order, so per-edge quantities (supports, trussness,
// deletion stamps) live in flat []int32 arrays instead of hash maps — the
// layout the hot decomposition and peeling loops are written against.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph in CSR form with sorted
// adjacency and dense edge IDs. The zero value is an empty graph. Build
// instances with a Builder.
type Graph struct {
	// off[v]..off[v+1] bounds v's slice of nbr/aeid.
	off []int32
	// nbr holds the concatenated, per-vertex-sorted neighbor lists (2M arcs).
	nbr []int32
	// aeid[i] is the edge ID of the arc stored at nbr[i].
	aeid []int32
	// edges[e] packs the endpoints of edge e; ascending, so edge IDs
	// enumerate edges in (min, max) lexicographic order.
	edges []EdgeKey
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// NeighborEdgeIDs returns the edge IDs parallel to Neighbors(v):
// NeighborEdgeIDs(v)[i] is the ID of edge (v, Neighbors(v)[i]). Shared; do
// not modify.
func (g *Graph) NeighborEdgeIDs(v int) []int32 { return g.aeid[g.off[v]:g.off[v+1]] }

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool { return g.EdgeID(u, v) >= 0 }

// EdgeID returns the dense edge ID of (u, v), or -1 if the edge does not
// exist (including out-of-range or equal endpoints). It binary-searches the
// shorter of the two adjacency lists.
func (g *Graph) EdgeID(u, v int) int32 {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v {
		return -1
	}
	// Search the shorter list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	lo, hi := g.off[u], g.off[u+1]
	nb := g.nbr[lo:hi]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	if i < len(nb) && nb[i] == int32(v) {
		return g.aeid[lo+int32(i)]
	}
	return -1
}

// EdgeEndpoints returns the endpoints of edge e with u < v.
func (g *Graph) EdgeEndpoints(e int32) (u, v int) { return g.edges[e].Endpoints() }

// EdgeKeyOf returns the packed key of edge e.
func (g *Graph) EdgeKeyOf(e int32) EdgeKey { return g.edges[e] }

// ForEachEdge calls fn once per edge with u < v, in edge-ID (ascending key)
// order.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for _, k := range g.edges {
		u, v := k.Endpoints()
		fn(u, v)
	}
}

// EdgeKeys returns all edges as packed keys, in ascending order. The slice
// is a copy and may be modified.
func (g *Graph) EdgeKeys() []EdgeKey {
	return append([]EdgeKey(nil), g.edges...)
}

// ForEachCommonNeighborEdge calls fn(w, euw, evw) for every common neighbor
// w of u and v, where euw and evw are the edge IDs of (u,w) and (v,w). It
// merge-intersects the two sorted adjacency lists in O(deg(u)+deg(v)).
func (g *Graph) ForEachCommonNeighborEdge(u, v int, fn func(w, euw, evw int32)) {
	ou, ov := g.off[u], g.off[v]
	au, av := g.nbr[ou:g.off[u+1]], g.nbr[ov:g.off[v+1]]
	i, j := 0, 0
	for i < len(au) && j < len(av) {
		switch {
		case au[i] < av[j]:
			i++
		case au[i] > av[j]:
			j++
		default:
			fn(au[i], g.aeid[ou+int32(i)], g.aeid[ov+int32(j)])
			i++
			j++
		}
	}
}

// NumIDs implements Adjacency.
func (g *Graph) NumIDs() int { return g.N() }

// Present implements Adjacency; every vertex of an immutable graph is present.
func (g *Graph) Present(v int) bool { return v >= 0 && v < g.N() }

// ForEachNeighbor implements Adjacency.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	for _, w := range g.Neighbors(v) {
		fn(int(w))
	}
}

// EdgeKey packs an undirected edge into a single comparable value with the
// smaller endpoint in the high 32 bits, so keys sort lexicographically by
// (min, max).
type EdgeKey uint64

// Key returns the EdgeKey for the undirected edge (u, v).
func Key(u, v int) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey(uint64(uint32(u))<<32 | uint64(uint32(v)))
}

// Endpoints returns the two endpoints of the key with u < v.
func (k EdgeKey) Endpoints() (u, v int) {
	return int(uint32(k >> 32)), int(uint32(k))
}

// String renders the key as "(u,v)".
func (k EdgeKey) String() string {
	u, v := k.Endpoints()
	return fmt.Sprintf("(%d,%d)", u, v)
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// are merged; self-loops are rejected.
type Builder struct {
	keys []EdgeKey
	n    int
}

// NewBuilder returns a Builder with capacity hints for n vertices and m edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{keys: make([]EdgeKey, 0, m), n: n}
}

// EnsureVertex grows the vertex ID space to include v (useful for declaring
// isolated vertices).
func (b *Builder) EnsureVertex(v int) {
	if v+1 > b.n {
		b.n = v + 1
	}
}

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
func (b *Builder) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 {
		return
	}
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	b.keys = append(b.keys, Key(u, v))
}

// Build produces the immutable Graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	sort.Slice(b.keys, func(i, j int) bool { return b.keys[i] < b.keys[j] })
	deg := make([]int32, b.n)
	m := 0
	var prev EdgeKey = ^EdgeKey(0)
	for _, k := range b.keys {
		if k == prev {
			continue
		}
		prev = k
		u, v := k.Endpoints()
		deg[u]++
		deg[v]++
		m++
	}
	g := &Graph{
		off:   make([]int32, b.n+1),
		nbr:   make([]int32, 2*m),
		aeid:  make([]int32, 2*m),
		edges: make([]EdgeKey, 0, m),
	}
	for v := 0; v < b.n; v++ {
		g.off[v+1] = g.off[v] + deg[v]
	}
	// cur[v] is the next free slot of v's adjacency range. Iterating the
	// sorted unique keys appends each vertex's neighbors in ascending order
	// (first the smaller endpoints a < v of edges (a,v), then the larger
	// endpoints of edges (v,b)), so no per-vertex sort is needed.
	cur := make([]int32, b.n)
	copy(cur, g.off[:b.n])
	prev = ^EdgeKey(0)
	for _, k := range b.keys {
		if k == prev {
			continue
		}
		prev = k
		e := int32(len(g.edges))
		g.edges = append(g.edges, k)
		u, v := k.Endpoints()
		g.nbr[cur[u]], g.aeid[cur[u]] = int32(v), e
		cur[u]++
		g.nbr[cur[v]], g.aeid[cur[v]] = int32(u), e
		cur[v]++
	}
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n, len(edges))
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Adjacency is the traversal interface shared by Graph and Mutable so that
// BFS, diameter and connectivity routines work on both.
type Adjacency interface {
	// NumIDs returns the size of the vertex ID space (IDs are < NumIDs).
	NumIDs() int
	// Present reports whether vertex v currently belongs to the graph.
	Present(v int) bool
	// ForEachNeighbor calls fn for every present neighbor of v.
	ForEachNeighbor(v int, fn func(u int))
}
