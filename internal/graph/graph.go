// Package graph provides the undirected simple-graph substrate used by the
// closest-truss-community algorithms: an immutable base graph with sorted
// adjacency, a mutable overlay supporting destructive vertex/edge deletion,
// breadth-first traversals, triangle/support computation, exact diameters,
// induced subgraphs and edge-list I/O.
//
// Vertices are dense integers in [0, N). Edges are undirected and unweighted;
// self-loops and parallel edges are rejected at construction time.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph with sorted adjacency lists.
// The zero value is an empty graph. Build instances with a Builder.
type Graph struct {
	adj [][]int32
	m   int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) || u == v {
		return false
	}
	// Search the shorter list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// ForEachEdge calls fn once per edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u, nb := range g.adj {
		for _, w := range nb {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// EdgeKeys returns all edges as packed keys, in ascending order.
func (g *Graph) EdgeKeys() []EdgeKey {
	keys := make([]EdgeKey, 0, g.m)
	g.ForEachEdge(func(u, v int) { keys = append(keys, Key(u, v)) })
	return keys
}

// NumIDs implements Adjacency.
func (g *Graph) NumIDs() int { return len(g.adj) }

// Present implements Adjacency; every vertex of an immutable graph is present.
func (g *Graph) Present(v int) bool { return v >= 0 && v < len(g.adj) }

// ForEachNeighbor implements Adjacency.
func (g *Graph) ForEachNeighbor(v int, fn func(u int)) {
	for _, w := range g.adj[v] {
		fn(int(w))
	}
}

// EdgeKey packs an undirected edge into a single comparable value with the
// smaller endpoint in the high 32 bits, so keys sort lexicographically by
// (min, max).
type EdgeKey uint64

// Key returns the EdgeKey for the undirected edge (u, v).
func Key(u, v int) EdgeKey {
	if u > v {
		u, v = v, u
	}
	return EdgeKey(uint64(uint32(u))<<32 | uint64(uint32(v)))
}

// Endpoints returns the two endpoints of the key with u < v.
func (k EdgeKey) Endpoints() (u, v int) {
	return int(uint32(k >> 32)), int(uint32(k))
}

// String renders the key as "(u,v)".
func (k EdgeKey) String() string {
	u, v := k.Endpoints()
	return fmt.Sprintf("(%d,%d)", u, v)
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// are merged; self-loops are rejected.
type Builder struct {
	keys []EdgeKey
	n    int
}

// NewBuilder returns a Builder with capacity hints for n vertices and m edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{keys: make([]EdgeKey, 0, m), n: n}
}

// EnsureVertex grows the vertex ID space to include v (useful for declaring
// isolated vertices).
func (b *Builder) EnsureVertex(v int) {
	if v+1 > b.n {
		b.n = v + 1
	}
}

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
func (b *Builder) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 {
		return
	}
	b.EnsureVertex(u)
	b.EnsureVertex(v)
	b.keys = append(b.keys, Key(u, v))
}

// Build produces the immutable Graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	sort.Slice(b.keys, func(i, j int) bool { return b.keys[i] < b.keys[j] })
	deg := make([]int32, b.n)
	m := 0
	var prev EdgeKey = ^EdgeKey(0)
	for _, k := range b.keys {
		if k == prev {
			continue
		}
		prev = k
		u, v := k.Endpoints()
		deg[u]++
		deg[v]++
		m++
	}
	adj := make([][]int32, b.n)
	for v := range adj {
		adj[v] = make([]int32, 0, deg[v])
	}
	prev = ^EdgeKey(0)
	for _, k := range b.keys {
		if k == prev {
			continue
		}
		prev = k
		u, v := k.Endpoints()
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	}
	for v := range adj {
		nb := adj[v]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return &Graph{adj: adj, m: m}
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n, len(edges))
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Adjacency is the traversal interface shared by Graph and Mutable so that
// BFS, diameter and connectivity routines work on both.
type Adjacency interface {
	// NumIDs returns the size of the vertex ID space (IDs are < NumIDs).
	NumIDs() int
	// Present reports whether vertex v currently belongs to the graph.
	Present(v int) bool
	// ForEachNeighbor calls fn for every present neighbor of v.
	ForEachNeighbor(v int, fn func(u int))
}
