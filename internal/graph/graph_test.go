package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// paperGraph builds the example graph of Figure 1(a) in the paper.
// Vertex IDs: q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7 p1=8 p2=9 p3=10 t=11.
func paperGraph() *Graph {
	const (
		q1 = 0
		q2 = 1
		q3 = 2
		v1 = 3
		v2 = 4
		v3 = 5
		v4 = 6
		v5 = 7
		p1 = 8
		p2 = 9
		p3 = 10
		t  = 11
	)
	edges := [][2]int{
		// 4-clique q1,q2,v1,v2
		{q1, q2}, {q1, v1}, {q1, v2}, {q2, v1}, {q2, v2}, {v1, v2},
		// 4-clique q3,v3,v4,v5
		{v3, v4}, {v3, v5}, {v4, v5}, {q3, v3}, {q3, v4}, {q3, v5},
		// connectors keeping the grey region a 4-truss with sup(q2,v2)=3
		{q2, v5}, {v2, v5}, {q2, v4}, {q2, v3}, {v1, v5},
		// 4-clique q3,p1,p2,p3 (the free riders)
		{q3, p1}, {q3, p2}, {q3, p3}, {p1, p2}, {p1, p3}, {p2, p3},
		// pendant path through t
		{q1, t}, {t, q3},
	}
	return FromEdges(12, edges)
}

func TestBuilderDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self-loop dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edge present")
	}
}

func TestBuilderEmpty(t *testing.T) {
	g := NewBuilder(0, 0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if d, ok := Diameter(g); d != 0 || !ok {
		t.Fatalf("empty diameter = %d,%v", d, ok)
	}
}

func TestEnsureVertexIsolated(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddEdge(0, 1)
	b.EnsureVertex(5)
	g := b.Build()
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	if g.Degree(5) != 0 {
		t.Fatalf("degree(5) = %d", g.Degree(5))
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(a, b uint16) bool {
		u, v := int(a), int(b)
		if u == v {
			return true
		}
		k := Key(u, v)
		x, y := k.Endpoints()
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		return x == lo && y == hi && Key(v, u) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeKeyOrdering(t *testing.T) {
	if Key(0, 5) >= Key(1, 2) {
		t.Fatal("keys must order by min endpoint first")
	}
	if Key(1, 2) >= Key(1, 3) {
		t.Fatal("keys must order by max endpoint second")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := paperGraph()
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
			t.Fatalf("neighbors of %d not sorted: %v", v, nb)
		}
	}
}

func TestForEachEdgeCountsOnce(t *testing.T) {
	g := paperGraph()
	count := 0
	g.ForEachEdge(func(u, v int) {
		if u >= v {
			t.Fatalf("ForEachEdge gave u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != g.M() {
		t.Fatalf("edge callback count = %d, want %d", count, g.M())
	}
	if len(g.EdgeKeys()) != g.M() {
		t.Fatal("EdgeKeys length mismatch")
	}
}

func TestDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 0.2)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a G(n,p) graph deterministically from seed.
func randomGraph(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestHasEdgeMatchesNeighbors(t *testing.T) {
	g := randomGraph(42, 40, 0.15)
	for u := 0; u < g.N(); u++ {
		inNb := map[int]bool{}
		for _, w := range g.Neighbors(u) {
			inNb[int(w)] = true
		}
		for v := 0; v < g.N(); v++ {
			if g.HasEdge(u, v) != inNb[v] {
				t.Fatalf("HasEdge(%d,%d) = %v disagrees with adjacency", u, v, g.HasEdge(u, v))
			}
		}
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := paperGraph()
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) || g.HasEdge(3, 3) {
		t.Fatal("out-of-range or loop edge reported present")
	}
}

func TestFromEdgesIgnoresNegative(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {-1, 2}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}
