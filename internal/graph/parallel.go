package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DiameterParallel computes the exact diameter like Diameter but fans the
// per-source BFS sweeps out over GOMAXPROCS workers. Worth it once the
// subgraph has more than a few hundred vertices (the all-pairs sweep is the
// dominant cost when reporting diameters of large communities, e.g. the
// Truss baseline's G0).
func DiameterParallel(g Adjacency, workers int) (diam int, ok bool) {
	n := g.NumIDs()
	var sources []int32
	for v := 0; v < n; v++ {
		if g.Present(v) {
			sources = append(sources, int32(v))
		}
	}
	if len(sources) == 0 {
		return 0, true
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	var next int64 = -1
	var maxDiam int64
	var disconnected int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist := make([]int32, n)
			var queue []int32
			local := int64(0)
			discLocal := false
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(sources)) {
					break
				}
				queue = BFS(g, int(sources[i]), dist, queue)
				for _, v := range sources {
					d := dist[v]
					if d == Unreachable {
						discLocal = true
						continue
					}
					if int64(d) > local {
						local = int64(d)
					}
				}
			}
			for {
				cur := atomic.LoadInt64(&maxDiam)
				if local <= cur || atomic.CompareAndSwapInt64(&maxDiam, cur, local) {
					break
				}
			}
			if discLocal {
				atomic.StoreInt32(&disconnected, 1)
			}
		}()
	}
	wg.Wait()
	return int(maxDiam), disconnected == 0
}
