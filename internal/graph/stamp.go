package graph

import "math"

// Stamp is an epoch-versioned visit mark over a fixed ID space. A slot i is
// "marked" iff Mark[i] equals the current epoch, so clearing all marks is an
// epoch bump instead of an O(n) array fill. Pair it with a parallel value
// array to get a resettable map: the value at i is valid iff i is marked.
//
// The zero epoch is reserved (freshly allocated Mark arrays read as
// unmarked), and Next handles int32 wrap-around by re-zeroing the array —
// once every ~2 billion resets.
type Stamp struct {
	// Mark holds the epoch at which each slot was last marked. Callers test
	// and set entries directly against the epoch returned by Next.
	Mark []int32
	cur  int32
}

// NewStamp returns a Stamp over n slots, all unmarked.
func NewStamp(n int) *Stamp { return &Stamp{Mark: make([]int32, n)} }

// Len returns the size of the stamped ID space.
func (s *Stamp) Len() int { return len(s.Mark) }

// Next starts a new epoch (unmarking every slot in O(1)) and returns it.
func (s *Stamp) Next() int32 {
	s.cur++
	if s.cur == math.MaxInt32 {
		for i := range s.Mark {
			s.Mark[i] = 0
		}
		s.cur = 1
	}
	return s.cur
}

// Cur returns the current epoch. Slots are marked iff Mark[i] == Cur().
func (s *Stamp) Cur() int32 { return s.cur }

// Marked reports whether slot i is marked in the current epoch.
func (s *Stamp) Marked(i int32) bool { return s.Mark[i] == s.cur }

// Set marks slot i in the current epoch.
func (s *Stamp) Set(i int32) { s.Mark[i] = s.cur }

// Visit marks slot i and reports whether it was unmarked before — a
// test-and-set for BFS-style "first time seen" checks.
func (s *Stamp) Visit(i int32) bool {
	if s.Mark[i] == s.cur {
		return false
	}
	s.Mark[i] = s.cur
	return true
}

// BFSMarked computes hop distances from src like BFS, but with stamped
// visitation: on return, dist[v] is valid iff st.Marked(v), and the returned
// queue holds exactly the reached vertices in visit order. Unlike BFS it
// never writes (or reads) the entries of unreached vertices, so the cost is
// proportional to the traversed subgraph, not the ID space. A new stamp
// epoch is started on entry.
func BFSMarked(g Adjacency, src int, dist []int32, st *Stamp, queue []int32) []int32 {
	if mu, ok := g.(*Mutable); ok && mu.OverlayPure() {
		// The overlay fast path iterates the base CSR directly: no
		// per-vertex interface call, and no visit closure escaping to the
		// heap once per BFS — the hot peeling loops run thousands of these.
		return bfsMarkedOverlay(mu, src, dist, st, queue)
	}
	return bfsMarkedGeneric(g, src, dist, st, queue)
}

// bfsMarkedGeneric must stay out of BFSMarked's body: its visit closure
// heap-boxes the captured queue at function entry, which would tax the fast
// path too.
func bfsMarkedGeneric(g Adjacency, src int, dist []int32, st *Stamp, queue []int32) []int32 {
	st.Next()
	queue = queue[:0]
	if !g.Present(src) {
		return queue
	}
	st.Set(int32(src))
	dist[src] = 0
	queue = append(queue, int32(src))
	var dv int32
	visit := func(u int) {
		if st.Visit(int32(u)) {
			dist[u] = dv + 1
			queue = append(queue, int32(u))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		dv = dist[v]
		g.ForEachNeighbor(v, visit)
	}
	return queue
}

func bfsMarkedOverlay(mu *Mutable, src int, dist []int32, st *Stamp, queue []int32) []int32 {
	st.Next()
	queue = queue[:0]
	if !mu.Present(src) {
		return queue
	}
	st.Set(int32(src))
	dist[src] = 0
	queue = append(queue, int32(src))
	g := mu.base
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		dv := dist[v]
		lo, hi := g.off[v], g.off[v+1]
		for i := lo; i < hi; i++ {
			if !mu.alive.Get(g.aeid[i]) {
				continue
			}
			u := g.nbr[i]
			if st.Visit(u) {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return queue
}
