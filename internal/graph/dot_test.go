package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, &DOTOptions{
		Name:      "demo",
		Highlight: map[int]string{0: "gold"},
		Label:     map[int]string{0: "query"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "demo" {`,
		`0 [ label="query" style=filled fillcolor="gold"];`,
		"0 -- 1;",
		"2 -- 3;",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Each edge appears once.
	if strings.Count(out, "--") != 4 {
		t.Fatalf("expected 4 edges, output:\n%s", out)
	}
}

func TestWriteDOTMutableSkipsAbsent(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	mu := NewMutable(g, nil)
	mu.DeleteVertex(3)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, mu, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "3") {
		t.Fatalf("deleted vertex leaked into DOT:\n%s", buf.String())
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "G" {`) {
		t.Fatal("default name missing")
	}
}
