package graph

import (
	"testing"
)

// modelMutable is a trivially-correct map-backed mirror of Mutable used as
// the fuzzing oracle for the edge-bitset overlay.
type modelMutable struct {
	edges   map[EdgeKey]bool
	present map[int]bool
}

func (mm *modelMutable) addEdge(u, v int) bool {
	k := Key(u, v)
	if u == v || mm.edges[k] {
		return false
	}
	mm.edges[k] = true
	mm.present[u] = true
	mm.present[v] = true
	return true
}

func (mm *modelMutable) deleteEdge(u, v int) bool {
	k := Key(u, v)
	if !mm.edges[k] {
		return false
	}
	delete(mm.edges, k)
	return true
}

func (mm *modelMutable) deleteVertex(v int) {
	if !mm.present[v] {
		return
	}
	delete(mm.present, v)
	for k := range mm.edges {
		a, b := k.Endpoints()
		if a == v || b == v {
			delete(mm.edges, k)
		}
	}
}

func (mm *modelMutable) degree(v int) int {
	d := 0
	for k := range mm.edges {
		a, b := k.Endpoints()
		if a == v || b == v {
			d++
		}
	}
	return d
}

// checkMutableAgainstModel verifies every structural invariant of the
// overlay against the oracle.
func checkMutableAgainstModel(t *testing.T, mu *Mutable, mm *modelMutable) {
	t.Helper()
	if mu.M() != len(mm.edges) {
		t.Fatalf("M = %d, model has %d", mu.M(), len(mm.edges))
	}
	if mu.N() != len(mm.present) {
		t.Fatalf("N = %d, model has %d", mu.N(), len(mm.present))
	}
	sum := 0
	for v := 0; v < mu.NumIDs(); v++ {
		if mu.Present(v) != mm.present[v] {
			t.Fatalf("Present(%d) = %v, model says %v", v, mu.Present(v), mm.present[v])
		}
		if mu.Degree(v) != mm.degree(v) {
			t.Fatalf("Degree(%d) = %d, model says %d", v, mu.Degree(v), mm.degree(v))
		}
		sum += mu.Degree(v)
	}
	if sum != 2*mu.M() {
		t.Fatalf("handshake violated: Σdeg = %d, 2M = %d", sum, 2*mu.M())
	}
	keys := mu.EdgeKeys()
	if len(keys) != len(mm.edges) {
		t.Fatalf("EdgeKeys has %d entries, model %d", len(keys), len(mm.edges))
	}
	prev := EdgeKey(0)
	for i, k := range keys {
		if i > 0 && k <= prev {
			t.Fatalf("EdgeKeys unsorted at %d: %s after %s", i, k, prev)
		}
		prev = k
		u, v := k.Endpoints()
		if !mm.edges[k] {
			t.Fatalf("edge %s reported but not in model", k)
		}
		if !mu.HasEdge(u, v) || !mu.HasEdge(v, u) {
			t.Fatalf("HasEdge(%s) asymmetric or false", k)
		}
		// CommonNeighbors must agree with a direct double-HasEdge probe.
		want := 0
		for w := 0; w < mu.NumIDs(); w++ {
			if w != u && w != v && mm.edges[Key(u, w)] && mm.edges[Key(v, w)] {
				want++
			}
		}
		if got := mu.CountCommonNeighbors(u, v); got != want {
			t.Fatalf("support%s = %d, model says %d", k, got, want)
		}
	}
	// Freeze must reproduce the edge set exactly.
	fz := mu.Freeze()
	if fz.M() != mu.M() {
		t.Fatalf("freeze M = %d, want %d", fz.M(), mu.M())
	}
	fz.ForEachEdge(func(u, v int) {
		if !mm.edges[Key(u, v)] {
			t.Fatalf("frozen edge (%d,%d) not in model", u, v)
		}
	})
}

// FuzzMutableOverlay drives random operation sequences against both the
// edge-bitset Mutable and the map oracle. Ops are decoded from the fuzz
// input: each triple (op, u, v) adds an edge, deletes an edge, deletes a
// vertex, or clones (continuing on the clone). Edges with u, v < 16 hit the
// base graph; larger endpoints exercise the overflow path.
func FuzzMutableOverlay(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 2, 3, 1, 1, 2})
	f.Add([]byte{0, 0, 17, 1, 0, 17, 2, 5, 0})
	f.Add([]byte{0, 1, 2, 3, 0, 0, 0, 20, 21, 2, 20, 0})
	f.Add([]byte{0, 3, 4, 0, 4, 5, 0, 3, 5, 1, 3, 4, 2, 4, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 24
		base := randomGraph(7, 16, 0.3)
		// Widen the ID space past the base graph so foreign edges exist.
		b := NewBuilder(n, base.M())
		b.EnsureVertex(n - 1)
		base.ForEachEdge(b.AddEdge)
		g := b.Build()

		mu := NewMutable(g, nil)
		mm := &modelMutable{edges: map[EdgeKey]bool{}, present: map[int]bool{}}
		for v := 0; v < g.N(); v++ {
			mm.present[v] = true
		}
		g.ForEachEdge(func(u, v int) { mm.edges[Key(u, v)] = true })

		for i := 0; i+2 < len(data); i += 3 {
			op, u, v := data[i]%4, int(data[i+1])%n, int(data[i+2])%n
			switch op {
			case 0:
				if mu.AddEdge(u, v) != mm.addEdge(u, v) {
					t.Fatalf("AddEdge(%d,%d) disagreed with model", u, v)
				}
			case 1:
				if mu.DeleteEdge(u, v) != mm.deleteEdge(u, v) {
					t.Fatalf("DeleteEdge(%d,%d) disagreed with model", u, v)
				}
			case 2:
				mu.DeleteVertex(u)
				mm.deleteVertex(u)
			case 3:
				mu = mu.Clone()
			}
		}
		checkMutableAgainstModel(t, mu, mm)
	})
}

// FuzzMutableShellRevive checks the AddEdgeByID/DeleteEdgeByID bitset paths
// used by FindG0 and the peeling keep-reconstruction.
func FuzzMutableShellRevive(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{9, 9, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := randomGraph(11, 20, 0.3)
		if g.M() == 0 {
			t.Skip("degenerate graph")
		}
		mu := NewMutableShell(g)
		mm := &modelMutable{edges: map[EdgeKey]bool{}, present: map[int]bool{}}
		for i, op := range data {
			e := int32(int(op) % g.M())
			u, v := g.EdgeEndpoints(e)
			if i%3 == 2 {
				if mu.DeleteEdgeByID(e) != mm.deleteEdge(u, v) {
					t.Fatalf("DeleteEdgeByID(%d) disagreed with model", e)
				}
			} else {
				if mu.AddEdgeByID(e) != mm.addEdge(u, v) {
					t.Fatalf("AddEdgeByID(%d) disagreed with model", e)
				}
			}
		}
		// DeleteEdgeByID keeps endpoints present (matching DeleteEdge), so
		// mirror presence before the full check.
		for v := range mm.present {
			if !mu.Present(v) {
				t.Fatalf("vertex %d lost presence", v)
			}
		}
		mm.present = map[int]bool{}
		for v := 0; v < mu.NumIDs(); v++ {
			if mu.Present(v) {
				mm.present[v] = true
			}
		}
		checkMutableAgainstModel(t, mu, mm)
	})
}
