package graph

import (
	"testing"
	"testing/quick"
)

func TestDiameterParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40, 0.1)
		d1, ok1 := Diameter(g)
		d2, ok2 := DiameterParallel(g, 4)
		return d1 == d2 && ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterParallelOnMutable(t *testing.T) {
	g := randomGraph(3, 50, 0.08)
	mu := NewMutable(g, nil)
	mu.DeleteVertex(0)
	mu.DeleteVertex(7)
	d1, ok1 := Diameter(mu)
	d2, ok2 := DiameterParallel(mu, 3)
	if d1 != d2 || ok1 != ok2 {
		t.Fatalf("parallel (%d,%v) vs sequential (%d,%v)", d2, ok2, d1, ok1)
	}
}

func TestDiameterParallelEdgeCases(t *testing.T) {
	if d, ok := DiameterParallel(NewBuilder(0, 0).Build(), 2); d != 0 || !ok {
		t.Fatalf("empty: %d %v", d, ok)
	}
	// Single vertex.
	b := NewBuilder(1, 0)
	b.EnsureVertex(0)
	if d, ok := DiameterParallel(b.Build(), 8); d != 0 || !ok {
		t.Fatalf("singleton: %d %v", d, ok)
	}
	// More workers than sources.
	if d, ok := DiameterParallel(pathGraph(3), 64); d != 2 || !ok {
		t.Fatalf("tiny path: %d %v", d, ok)
	}
	// Disconnected must report ok=false.
	g := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if _, ok := DiameterParallel(g, 2); ok {
		t.Fatal("disconnected graph reported connected")
	}
}
