package graph

import "sort"

// Mutable is a destructively editable subgraph of a base Graph. It shares the
// base graph's vertex ID space; vertices outside the subgraph are simply not
// present. Deletion of vertices and edges is O(degree), and the common
// neighborhood of an edge can be enumerated efficiently, which is what the
// k-truss maintenance cascade (Algorithm 3 of the paper) needs.
type Mutable struct {
	adj     []map[int32]struct{}
	present []bool
	n, m    int
}

// NewMutable builds a Mutable containing the induced subgraph of g on the
// given vertices. If vertices is nil, the whole graph is included.
func NewMutable(g *Graph, vertices []int) *Mutable {
	mu := &Mutable{
		adj:     make([]map[int32]struct{}, g.N()),
		present: make([]bool, g.N()),
	}
	if vertices == nil {
		for v := 0; v < g.N(); v++ {
			mu.present[v] = true
			mu.n++
		}
	} else {
		for _, v := range vertices {
			if !mu.present[v] {
				mu.present[v] = true
				mu.n++
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !mu.present[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if mu.present[w] {
				if mu.adj[v] == nil {
					mu.adj[v] = make(map[int32]struct{}, g.Degree(v))
				}
				mu.adj[v][w] = struct{}{}
				if int(w) > v {
					mu.m++
				}
			}
		}
	}
	return mu
}

// NewMutableFromEdges builds a Mutable over an ID space of size n containing
// exactly the given edges (and their endpoints).
func NewMutableFromEdges(n int, edges []EdgeKey) *Mutable {
	mu := &Mutable{
		adj:     make([]map[int32]struct{}, n),
		present: make([]bool, n),
	}
	for _, k := range edges {
		u, v := k.Endpoints()
		mu.AddEdge(u, v)
	}
	return mu
}

// Clone returns a deep copy.
func (mu *Mutable) Clone() *Mutable {
	cp := &Mutable{
		adj:     make([]map[int32]struct{}, len(mu.adj)),
		present: make([]bool, len(mu.present)),
		n:       mu.n,
		m:       mu.m,
	}
	copy(cp.present, mu.present)
	for v, set := range mu.adj {
		if set == nil {
			continue
		}
		ns := make(map[int32]struct{}, len(set))
		for w := range set {
			ns[w] = struct{}{}
		}
		cp.adj[v] = ns
	}
	return cp
}

// NumIDs implements Adjacency.
func (mu *Mutable) NumIDs() int { return len(mu.present) }

// Present implements Adjacency.
func (mu *Mutable) Present(v int) bool {
	return v >= 0 && v < len(mu.present) && mu.present[v]
}

// ForEachNeighbor implements Adjacency.
func (mu *Mutable) ForEachNeighbor(v int, fn func(u int)) {
	for w := range mu.adj[v] {
		fn(int(w))
	}
}

// N returns the number of present vertices.
func (mu *Mutable) N() int { return mu.n }

// M returns the number of edges.
func (mu *Mutable) M() int { return mu.m }

// Degree returns the degree of v (0 if absent).
func (mu *Mutable) Degree(v int) int { return len(mu.adj[v]) }

// HasEdge reports whether edge (u, v) exists.
func (mu *Mutable) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(mu.adj) || mu.adj[u] == nil {
		return false
	}
	_, ok := mu.adj[u][int32(v)]
	return ok
}

// AddEdge inserts the edge (u, v), adding endpoints as needed. Self-loops are
// ignored. Reports whether the edge was newly added.
func (mu *Mutable) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	if mu.HasEdge(u, v) {
		return false
	}
	mu.addVertex(u)
	mu.addVertex(v)
	if mu.adj[u] == nil {
		mu.adj[u] = make(map[int32]struct{}, 4)
	}
	if mu.adj[v] == nil {
		mu.adj[v] = make(map[int32]struct{}, 4)
	}
	mu.adj[u][int32(v)] = struct{}{}
	mu.adj[v][int32(u)] = struct{}{}
	mu.m++
	return true
}

// EnsureVertex makes v present, isolated if it has no edges yet.
func (mu *Mutable) EnsureVertex(v int) {
	if v >= 0 && v < len(mu.present) {
		mu.addVertex(v)
	}
}

func (mu *Mutable) addVertex(v int) {
	if !mu.present[v] {
		mu.present[v] = true
		mu.n++
	}
}

// DeleteEdge removes the edge (u, v) if present. Endpoints remain present
// even if isolated. Reports whether an edge was removed.
func (mu *Mutable) DeleteEdge(u, v int) bool {
	if !mu.HasEdge(u, v) {
		return false
	}
	delete(mu.adj[u], int32(v))
	delete(mu.adj[v], int32(u))
	mu.m--
	return true
}

// DeleteVertex removes v and all its incident edges.
func (mu *Mutable) DeleteVertex(v int) {
	if v < 0 || v >= len(mu.present) || !mu.present[v] {
		return
	}
	for w := range mu.adj[v] {
		delete(mu.adj[w], int32(v))
		mu.m--
	}
	mu.adj[v] = nil
	mu.present[v] = false
	mu.n--
}

// RemoveIsolated deletes every present vertex of degree zero that is not in
// keep, and returns how many were removed.
func (mu *Mutable) RemoveIsolated(keep map[int]bool) int {
	removed := 0
	for v := range mu.present {
		if mu.present[v] && len(mu.adj[v]) == 0 && !keep[v] {
			mu.present[v] = false
			mu.n--
			removed++
		}
	}
	return removed
}

// Vertices returns the sorted list of present vertices.
func (mu *Mutable) Vertices() []int {
	vs := make([]int, 0, mu.n)
	for v, p := range mu.present {
		if p {
			vs = append(vs, v)
		}
	}
	return vs
}

// EdgeKeys returns all edges as packed keys in ascending order.
func (mu *Mutable) EdgeKeys() []EdgeKey {
	keys := make([]EdgeKey, 0, mu.m)
	for v, set := range mu.adj {
		for w := range set {
			if int(w) > v {
				keys = append(keys, Key(v, int(w)))
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CommonNeighbors calls fn for every vertex w adjacent to both u and v. It
// iterates the smaller adjacency set.
func (mu *Mutable) CommonNeighbors(u, v int, fn func(w int)) {
	a, b := mu.adj[u], mu.adj[v]
	if a == nil || b == nil {
		return
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	for w := range a {
		if _, ok := b[w]; ok {
			fn(int(w))
		}
	}
}

// CountCommonNeighbors returns |N(u) ∩ N(v)|, i.e. the support of (u, v).
func (mu *Mutable) CountCommonNeighbors(u, v int) int {
	c := 0
	mu.CommonNeighbors(u, v, func(int) { c++ })
	return c
}

// Freeze converts the current state into an immutable Graph over the same
// vertex ID space.
func (mu *Mutable) Freeze() *Graph {
	b := NewBuilder(len(mu.present), mu.m)
	b.EnsureVertex(len(mu.present) - 1)
	for v, set := range mu.adj {
		for w := range set {
			if int(w) > v {
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.Build()
}
