package graph

import (
	"math/bits"
	"sort"
)

// Mutable is a destructively editable subgraph of a base Graph. It shares
// the base graph's vertex ID space and CSR adjacency: the edge set is
// tracked as an edge-alive bitset over the base's dense edge IDs, so
// Clone, DeleteEdge and the k-truss maintenance cascade (Algorithm 3 of the
// paper) are allocation-free on the steady state and per-edge quantities can
// live in flat arrays indexed by base edge ID.
//
// Edges outside the base graph can still be added (AddEdge falls back to a
// small per-vertex overflow list). A Mutable without overflow edges is
// "overlay-pure"; the hot peeling paths (MutableEdgeSupports, MaintainKTruss)
// require purity and panic otherwise — every subgraph they are fed is built
// from base edges only.
type Mutable struct {
	base    *Graph
	alive   Bitset  // bit e set iff base edge e is present
	deg     []int32 // live degree (base + overflow)
	present []bool
	n       int // number of present vertices
	aliveM  int // live base edges
	// overflow adjacency for edges outside the base graph; nil until first
	// foreign AddEdge. Unsorted, both directions mirrored.
	extra  [][]int32
	extraM int
	// Touched-state tracking for resettable shells (NewResettableShell):
	// touchedWords lists the alive-bitset words that have held a set bit
	// since the last reset (deduped via wordSeen, which is indexed by word),
	// and touchedVerts lists every vertex that became present. ResetShell
	// restores the empty state in O(touched) instead of O(n + m).
	tracked      bool
	touchedWords []int32
	wordSeen     Bitset
	touchedVerts []int32
}

func newOverlay(g *Graph) *Mutable {
	return &Mutable{
		base:    g,
		alive:   NewBitset(g.M()),
		deg:     make([]int32, g.N()),
		present: make([]bool, g.N()),
	}
}

// NewMutable builds a Mutable containing the induced subgraph of g on the
// given vertices. If vertices is nil, the whole graph is included.
func NewMutable(g *Graph, vertices []int) *Mutable {
	mu := newOverlay(g)
	if vertices == nil {
		for v := 0; v < g.N(); v++ {
			mu.present[v] = true
		}
		mu.n = g.N()
		mu.alive.SetAll(g.M())
		mu.aliveM = g.M()
		for v := 0; v < g.N(); v++ {
			mu.deg[v] = int32(g.Degree(v))
		}
		return mu
	}
	for _, v := range vertices {
		if v >= 0 && v < g.N() && !mu.present[v] {
			mu.present[v] = true
			mu.n++
		}
	}
	for e := int32(0); e < int32(g.M()); e++ {
		u, v := g.EdgeEndpoints(e)
		if mu.present[u] && mu.present[v] {
			mu.alive.Set(e)
			mu.aliveM++
			mu.deg[u]++
			mu.deg[v]++
		}
	}
	return mu
}

// NewMutableShell returns an empty Mutable over the ID and edge-ID space of
// g: no vertices present, no edges alive. AddEdge on an edge of g revives
// its bit in O(log deg); use this (rather than NewMutableFromEdges) when
// assembling a subgraph out of base-graph edges, e.g. in FindG0.
func NewMutableShell(g *Graph) *Mutable { return newOverlay(g) }

// NewResettableShell returns an empty shell like NewMutableShell that
// additionally tracks which bitset words and vertices it touches, so
// ResetShell can restore the empty state in time proportional to the
// touched subgraph. This is the storage behind pooled query workspaces: one
// resettable shell serves an unbounded stream of queries without
// reallocating or scanning O(n + m) between them.
func NewResettableShell(g *Graph) *Mutable {
	mu := newOverlay(g)
	mu.tracked = true
	mu.wordSeen = NewBitset(len(mu.alive))
	return mu
}

// ResetShell empties a resettable shell (no vertices present, no edges
// alive) in O(touched). Panics if the Mutable was not created with
// NewResettableShell.
func (mu *Mutable) ResetShell() {
	if !mu.tracked {
		panic("graph: ResetShell requires a Mutable from NewResettableShell")
	}
	for _, wi := range mu.touchedWords {
		mu.alive[wi] = 0
		mu.wordSeen.Clear(wi)
	}
	mu.touchedWords = mu.touchedWords[:0]
	for _, v := range mu.touchedVerts {
		mu.present[v] = false
		mu.deg[v] = 0
		if mu.extra != nil {
			mu.extra[v] = mu.extra[v][:0]
		}
	}
	mu.touchedVerts = mu.touchedVerts[:0]
	mu.n = 0
	mu.aliveM = 0
	mu.extraM = 0
}

// ForEachTouchedLiveEdge calls fn(e, u, v) with u < v for every live base
// edge of a resettable shell, visiting only the bitset words the shell has
// touched since its last reset — O(touched), not O(m). Within a word edges
// come in ascending ID order; across words the order follows touch order.
func (mu *Mutable) ForEachTouchedLiveEdge(fn func(e int32, u, v int)) {
	if !mu.tracked {
		panic("graph: ForEachTouchedLiveEdge requires a Mutable from NewResettableShell")
	}
	for _, wi := range mu.touchedWords {
		word := mu.alive[wi]
		for word != 0 {
			t := bits.TrailingZeros64(word)
			word &^= 1 << uint(t)
			e := wi<<6 + int32(t)
			u, v := mu.base.EdgeEndpoints(e)
			fn(e, u, v)
		}
	}
}

// NewMutableFromEdges builds a Mutable over an ID space of size n containing
// exactly the given edges (and their endpoints). The edges become the
// Mutable's base graph.
func NewMutableFromEdges(n int, edges []EdgeKey) *Mutable {
	b := NewBuilder(n, len(edges))
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	for _, k := range edges {
		u, v := k.Endpoints()
		b.AddEdge(u, v)
	}
	mu := newOverlay(b.Build())
	g := mu.base
	mu.alive.SetAll(g.M())
	mu.aliveM = g.M()
	for v := 0; v < g.N(); v++ {
		d := int32(g.Degree(v))
		mu.deg[v] = d
		if d > 0 {
			mu.present[v] = true
			mu.n++
		}
	}
	return mu
}

// Base returns the immutable base graph whose edge-ID space indexes this
// Mutable's per-edge arrays.
func (mu *Mutable) Base() *Graph { return mu.base }

// OverlayPure reports whether every edge of the Mutable is a base-graph edge
// (no overflow), i.e. whether dense edge-ID arrays fully describe it.
func (mu *Mutable) OverlayPure() bool { return mu.extraM == 0 }

func (mu *Mutable) requirePure(op string) {
	if mu.extraM > 0 {
		panic("graph: " + op + " requires an overlay-pure Mutable (no edges outside the base graph)")
	}
}

// Clone returns a deep copy. The immutable base graph is shared; a clone of
// a resettable shell is a plain (untracked) Mutable.
func (mu *Mutable) Clone() *Mutable {
	cp := &Mutable{
		base:    mu.base,
		alive:   mu.alive.Clone(),
		deg:     append([]int32(nil), mu.deg...),
		present: append([]bool(nil), mu.present...),
		n:       mu.n,
		aliveM:  mu.aliveM,
		extraM:  mu.extraM,
	}
	if mu.extra != nil {
		cp.extra = make([][]int32, len(mu.extra))
		for v, nb := range mu.extra {
			if len(nb) > 0 {
				cp.extra[v] = append([]int32(nil), nb...)
			}
		}
	}
	return cp
}

// CloneInto copies mu's full state into dst, reusing dst's storage — the
// pooled-workspace alternative to Clone for the peeling loops. Both
// Mutables must wrap the same base graph, be overlay-pure, and dst must be
// untracked (its touched lists could not survive a wholesale overwrite).
func (mu *Mutable) CloneInto(dst *Mutable) {
	if dst.base != mu.base {
		panic("graph: CloneInto requires Mutables over the same base graph")
	}
	if dst.tracked {
		panic("graph: CloneInto target must not be a resettable shell")
	}
	mu.requirePure("CloneInto")
	dst.requirePure("CloneInto")
	copy(dst.alive, mu.alive)
	copy(dst.deg, mu.deg)
	copy(dst.present, mu.present)
	dst.n = mu.n
	dst.aliveM = mu.aliveM
}

// NumIDs implements Adjacency.
func (mu *Mutable) NumIDs() int { return len(mu.present) }

// Present implements Adjacency.
func (mu *Mutable) Present(v int) bool {
	return v >= 0 && v < len(mu.present) && mu.present[v]
}

// ForEachNeighbor implements Adjacency.
func (mu *Mutable) ForEachNeighbor(v int, fn func(u int)) {
	nb := mu.base.Neighbors(v)
	ids := mu.base.NeighborEdgeIDs(v)
	for i, w := range nb {
		if mu.alive.Get(ids[i]) {
			fn(int(w))
		}
	}
	if mu.extra != nil {
		for _, w := range mu.extra[v] {
			fn(int(w))
		}
	}
}

// ForEachIncidentEdge calls fn(e, w) for every live base edge (v, w), with e
// the base edge ID. Requires overlay purity.
func (mu *Mutable) ForEachIncidentEdge(v int, fn func(e int32, w int)) {
	mu.requirePure("ForEachIncidentEdge")
	nb := mu.base.Neighbors(v)
	ids := mu.base.NeighborEdgeIDs(v)
	for i, w := range nb {
		if mu.alive.Get(ids[i]) {
			fn(ids[i], int(w))
		}
	}
}

// ForEachLiveEdge calls fn(e, u, v) with u < v for every live base edge, in
// ascending edge-ID order. Overflow edges are not visited; use EdgeKeys for
// the full edge set.
func (mu *Mutable) ForEachLiveEdge(fn func(e int32, u, v int)) {
	mu.alive.ForEach(func(e int32) {
		u, v := mu.base.EdgeEndpoints(e)
		fn(e, u, v)
	})
}

// EdgeAlive reports whether base edge e is present.
func (mu *Mutable) EdgeAlive(e int32) bool { return mu.alive.Get(e) }

// N returns the number of present vertices.
func (mu *Mutable) N() int { return mu.n }

// M returns the number of edges.
func (mu *Mutable) M() int { return mu.aliveM + mu.extraM }

// Degree returns the degree of v (0 if absent).
func (mu *Mutable) Degree(v int) int { return int(mu.deg[v]) }

func (mu *Mutable) extraIndex(u, v int) int {
	if mu.extra == nil {
		return -1
	}
	for i, w := range mu.extra[u] {
		if int(w) == v {
			return i
		}
	}
	return -1
}

// HasEdge reports whether edge (u, v) exists.
func (mu *Mutable) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(mu.present) || v >= len(mu.present) {
		return false
	}
	if e := mu.base.EdgeID(u, v); e >= 0 {
		return mu.alive.Get(e)
	}
	return mu.extraIndex(u, v) >= 0
}

// AddEdge inserts the edge (u, v), adding endpoints as needed. Self-loops
// and out-of-range endpoints are ignored. Reports whether the edge was newly
// added.
func (mu *Mutable) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(mu.present) || v >= len(mu.present) {
		return false
	}
	if e := mu.base.EdgeID(u, v); e >= 0 {
		return mu.AddEdgeByID(e)
	}
	if mu.extraIndex(u, v) >= 0 {
		return false
	}
	if mu.extra == nil {
		mu.extra = make([][]int32, len(mu.present))
	}
	mu.extra[u] = append(mu.extra[u], int32(v))
	mu.extra[v] = append(mu.extra[v], int32(u))
	mu.extraM++
	mu.addVertex(u)
	mu.addVertex(v)
	mu.deg[u]++
	mu.deg[v]++
	return true
}

// AddEdgeByID revives base edge e (a no-op if already alive), marking its
// endpoints present. Reports whether the edge was newly added.
func (mu *Mutable) AddEdgeByID(e int32) bool {
	if mu.alive.Get(e) {
		return false
	}
	if mu.tracked {
		if wi := e >> 6; !mu.wordSeen.Get(wi) {
			mu.wordSeen.Set(wi)
			mu.touchedWords = append(mu.touchedWords, wi)
		}
	}
	mu.alive.Set(e)
	mu.aliveM++
	u, v := mu.base.EdgeEndpoints(e)
	mu.addVertex(u)
	mu.addVertex(v)
	mu.deg[u]++
	mu.deg[v]++
	return true
}

// EnsureVertex makes v present, isolated if it has no edges yet.
func (mu *Mutable) EnsureVertex(v int) {
	if v >= 0 && v < len(mu.present) {
		mu.addVertex(v)
	}
}

func (mu *Mutable) addVertex(v int) {
	if !mu.present[v] {
		mu.present[v] = true
		mu.n++
		if mu.tracked {
			mu.touchedVerts = append(mu.touchedVerts, int32(v))
		}
	}
}

// TouchedVertices returns the vertices a resettable shell has made present
// since its last reset, in touch order. Vertices deleted again remain
// listed (check Present); the slice is shared and valid until the next
// mutation or reset.
func (mu *Mutable) TouchedVertices() []int32 {
	if !mu.tracked {
		panic("graph: TouchedVertices requires a Mutable from NewResettableShell")
	}
	return mu.touchedVerts
}

// DeleteEdge removes the edge (u, v) if present. Endpoints remain present
// even if isolated. Reports whether an edge was removed.
func (mu *Mutable) DeleteEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(mu.present) || v >= len(mu.present) {
		return false
	}
	if e := mu.base.EdgeID(u, v); e >= 0 {
		return mu.DeleteEdgeByID(e)
	}
	i := mu.extraIndex(u, v)
	if i < 0 {
		return false
	}
	mu.removeExtraAt(u, i)
	mu.removeExtraAt(v, mu.extraIndex(v, u))
	mu.extraM--
	mu.deg[u]--
	mu.deg[v]--
	return true
}

// DeleteEdgeByID kills base edge e. Reports whether it was alive.
func (mu *Mutable) DeleteEdgeByID(e int32) bool {
	if !mu.alive.Get(e) {
		return false
	}
	mu.alive.Clear(e)
	mu.aliveM--
	u, v := mu.base.EdgeEndpoints(e)
	mu.deg[u]--
	mu.deg[v]--
	return true
}

func (mu *Mutable) removeExtraAt(v, i int) {
	nb := mu.extra[v]
	nb[i] = nb[len(nb)-1]
	mu.extra[v] = nb[:len(nb)-1]
}

// DeleteVertex removes v and all its incident edges.
func (mu *Mutable) DeleteVertex(v int) {
	if v < 0 || v >= len(mu.present) || !mu.present[v] {
		return
	}
	nb := mu.base.Neighbors(v)
	ids := mu.base.NeighborEdgeIDs(v)
	for i, w := range nb {
		if mu.alive.Get(ids[i]) {
			mu.alive.Clear(ids[i])
			mu.aliveM--
			mu.deg[w]--
		}
	}
	if mu.extra != nil {
		for _, w := range mu.extra[v] {
			mu.removeExtraAt(int(w), mu.extraIndex(int(w), v))
			mu.extraM--
			mu.deg[w]--
		}
		mu.extra[v] = nil
	}
	mu.deg[v] = 0
	mu.present[v] = false
	mu.n--
}

// RemoveIsolated deletes every present vertex of degree zero that is not in
// keep, and returns how many were removed.
func (mu *Mutable) RemoveIsolated(keep map[int]bool) int {
	removed := 0
	for v := range mu.present {
		if mu.present[v] && mu.deg[v] == 0 && !keep[v] {
			mu.present[v] = false
			mu.n--
			removed++
		}
	}
	return removed
}

// Vertices returns the sorted list of present vertices.
func (mu *Mutable) Vertices() []int {
	vs := make([]int, 0, mu.n)
	for v, p := range mu.present {
		if p {
			vs = append(vs, v)
		}
	}
	return vs
}

// EdgeKeys returns all edges as packed keys in ascending order.
func (mu *Mutable) EdgeKeys() []EdgeKey {
	keys := make([]EdgeKey, 0, mu.M())
	mu.alive.ForEach(func(e int32) { keys = append(keys, mu.base.EdgeKeyOf(e)) })
	if mu.extraM > 0 {
		for v, nb := range mu.extra {
			for _, w := range nb {
				if int(w) > v {
					keys = append(keys, Key(v, int(w)))
				}
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	return keys
}

// CommonNeighbors calls fn for every vertex w adjacent to both u and v. On
// an overlay-pure Mutable it merge-intersects the base's sorted adjacency
// lists; with overflow edges it falls back to probing from the
// smaller-degree endpoint.
func (mu *Mutable) CommonNeighbors(u, v int, fn func(w int)) {
	if u < 0 || v < 0 || u >= len(mu.present) || v >= len(mu.present) {
		return
	}
	if mu.extraM == 0 {
		mu.commonNeighborsMerged(u, v, func(w, _, _ int32) { fn(int(w)) })
		return
	}
	if mu.deg[u] > mu.deg[v] {
		u, v = v, u
	}
	mu.ForEachNeighbor(u, func(w int) {
		if w != v && mu.HasEdge(v, w) {
			fn(w)
		}
	})
}

// CommonNeighborsEdges calls fn(w, euw, evw) for every live triangle through
// the live or dead base edge (u, v), with euw/evw the base edge IDs of the
// wings. Requires overlay purity.
func (mu *Mutable) CommonNeighborsEdges(u, v int, fn func(w, euw, evw int32)) {
	mu.requirePure("CommonNeighborsEdges")
	mu.commonNeighborsMerged(u, v, fn)
}

// commonNeighborsMerged is Graph.ForEachCommonNeighborEdge specialized with
// the alive check inlined; the duplication is deliberate — this is the
// hottest loop in the peeling paths and an extra closure hop per
// intersection hit is measurable. Keep the twin in graph.go in sync.
func (mu *Mutable) commonNeighborsMerged(u, v int, fn func(w, euw, evw int32)) {
	g := mu.base
	ou, ov := g.off[u], g.off[v]
	au, av := g.nbr[ou:g.off[u+1]], g.nbr[ov:g.off[v+1]]
	i, j := 0, 0
	for i < len(au) && j < len(av) {
		switch {
		case au[i] < av[j]:
			i++
		case au[i] > av[j]:
			j++
		default:
			euw, evw := g.aeid[ou+int32(i)], g.aeid[ov+int32(j)]
			if mu.alive.Get(euw) && mu.alive.Get(evw) {
				fn(au[i], euw, evw)
			}
			i++
			j++
		}
	}
}

// CountCommonNeighbors returns |N(u) ∩ N(v)|, i.e. the support of (u, v).
func (mu *Mutable) CountCommonNeighbors(u, v int) int {
	c := 0
	mu.CommonNeighbors(u, v, func(int) { c++ })
	return c
}

// Freeze converts the current state into an immutable Graph over the same
// vertex ID space.
func (mu *Mutable) Freeze() *Graph {
	b := NewBuilder(len(mu.present), mu.M())
	b.EnsureVertex(len(mu.present) - 1)
	mu.alive.ForEach(func(e int32) {
		u, v := mu.base.EdgeEndpoints(e)
		b.AddEdge(u, v)
	})
	if mu.extraM > 0 {
		for v, nb := range mu.extra {
			for _, w := range nb {
				if int(w) > v {
					b.AddEdge(v, int(w))
				}
			}
		}
	}
	return b.Build()
}
