package graph

import (
	"testing"
	"testing/quick"
)

func completeGraph(n int) *Graph {
	b := NewBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestEdgeSupportsClique(t *testing.T) {
	g := completeGraph(5)
	sup := EdgeSupports(g)
	if len(sup) != 10 {
		t.Fatalf("support entries = %d, want 10", len(sup))
	}
	for e, s := range sup {
		if s != 3 {
			t.Fatalf("sup%s = %d, want 3 in K5", g.EdgeKeyOf(int32(e)), s)
		}
	}
}

func TestEdgeSupportPaperExample(t *testing.T) {
	// Paper §2: sup(e(q2,v2)) = 3 (triangles with q1, v1, v5).
	g := paperGraph()
	sup := EdgeSupports(g)
	if got := sup[g.EdgeID(1, 4)]; got != 3 {
		t.Fatalf("sup(q2,v2) = %d, want 3", got)
	}
	// Pendant path edges (q1,t) and (t,q3) are in no triangle.
	if sup[g.EdgeID(0, 11)] != 0 || sup[g.EdgeID(2, 11)] != 0 {
		t.Fatal("pendant edges should have support 0")
	}
}

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int64
	}{
		{completeGraph(4), 4},
		{completeGraph(5), 10},
		{completeGraph(6), 20},
		{pathGraph(10), 0},
		{FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}), 1},
	}
	for i, c := range cases {
		if got := TriangleCount(c.g); got != c.want {
			t.Fatalf("case %d: triangles = %d, want %d", i, got, c.want)
		}
	}
}

func TestSupportSumIsThreeTriangles(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 0.3)
		var sum int64
		for _, s := range EdgeSupports(g) {
			sum += int64(s)
		}
		return sum == 3*TriangleCount(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMutableSupportsMatchImmutable(t *testing.T) {
	// A full overlay shares the base's edge-ID space, so the dense support
	// arrays must match entry for entry.
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 0.3)
		want := EdgeSupports(g)
		got := MutableEdgeSupports(NewMutable(g, nil))
		if len(got) != len(want) {
			return false
		}
		for e, s := range want {
			if got[e] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSupportsParallelMatchesSequential(t *testing.T) {
	// Force the parallel path by exceeding the small-graph threshold.
	g := randomGraph(11, 260, 0.55)
	if g.M() < parallelSupportThreshold {
		t.Fatalf("test graph too small to exercise parallel path: m=%d", g.M())
	}
	seq := EdgeSupports(g)
	par := EdgeSupportsParallel(g)
	for e := range seq {
		if seq[e] != par[e] {
			t.Fatalf("edge %d: parallel sup %d, sequential %d", e, par[e], seq[e])
		}
	}
}

func TestClusteringCoefficient(t *testing.T) {
	if gcc := GlobalClusteringCoefficient(completeGraph(6)); gcc < 0.999 || gcc > 1.001 {
		t.Fatalf("clique GCC = %f, want 1", gcc)
	}
	if gcc := GlobalClusteringCoefficient(pathGraph(10)); gcc != 0 {
		t.Fatalf("path GCC = %f, want 0", gcc)
	}
}

func TestDegeneracyOrder(t *testing.T) {
	g := completeGraph(6)
	order, d := DegeneracyOrder(g)
	if d != 5 {
		t.Fatalf("K6 degeneracy = %d, want 5", d)
	}
	if len(order) != 6 {
		t.Fatalf("order length = %d", len(order))
	}
	if _, d := DegeneracyOrder(pathGraph(10)); d != 1 {
		t.Fatalf("path degeneracy = %d, want 1", d)
	}
	// A clique with a pendant vertex still has degeneracy n-1? No: pendant
	// vertex peels at degree 1, then the clique at degree n-2... K5 + pendant:
	b := NewBuilder(6, 0)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(4, 5)
	if _, d := DegeneracyOrder(b.Build()); d != 4 {
		t.Fatalf("K5+pendant degeneracy = %d, want 4", d)
	}
}

func TestCoreNumbers(t *testing.T) {
	// K5 with a pendant: clique vertices have core 4, pendant core 1.
	b := NewBuilder(6, 0)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(4, 5)
	core := CoreNumbers(b.Build())
	for v := 0; v < 5; v++ {
		if core[v] != 4 {
			t.Fatalf("core[%d] = %d, want 4", v, core[v])
		}
	}
	if core[5] != 1 {
		t.Fatalf("core[pendant] = %d, want 1", core[5])
	}
}

func TestSortedVertexByDegree(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	order := SortedVertexByDegree(g)
	if order[0] != 0 {
		t.Fatalf("highest degree vertex = %d, want 0", order[0])
	}
	if order[3] != 3 {
		t.Fatalf("lowest degree vertex = %d, want 3", order[3])
	}
	// Stable tie-break by ID: vertices 1 and 2 both have degree 2.
	if order[1] != 1 || order[2] != 2 {
		t.Fatalf("tie-break broken: %v", order)
	}
}
