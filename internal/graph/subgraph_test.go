package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestInduced(t *testing.T) {
	g := paperGraph()
	sub := Induced(g, []int{0, 1, 3, 4}) // the q1,q2,v1,v2 clique
	if sub.M() != 6 {
		t.Fatalf("induced M = %d, want 6", sub.M())
	}
	if sub.N() != g.N() {
		t.Fatal("Induced must preserve the ID space")
	}
	if sub.Degree(5) != 0 {
		t.Fatal("non-selected vertex should be isolated")
	}
	// Tolerates junk input.
	if Induced(g, []int{-5, 400, 0, 0}).M() != 0 {
		t.Fatal("junk vertices should contribute no edges")
	}
}

func TestInducedCompact(t *testing.T) {
	g := paperGraph()
	sub, ids := InducedCompact(g, []int{4, 0, 1, 3, 0})
	if sub.N() != 4 || sub.M() != 6 {
		t.Fatalf("compact N=%d M=%d, want 4 6", sub.N(), sub.M())
	}
	if len(ids) != 4 || ids[0] != 0 || ids[3] != 4 {
		t.Fatalf("id mapping = %v", ids)
	}
}

func TestInducedMutable(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	sub := InducedMutable(mu, []int{0, 1, 3, 4})
	if sub.N() != 4 || sub.M() != 6 {
		t.Fatalf("N=%d M=%d, want 4 6", sub.N(), sub.M())
	}
	// Vertices absent from the parent must not appear.
	mu.DeleteVertex(3)
	sub2 := InducedMutable(mu, []int{0, 1, 3, 4})
	if sub2.Present(3) || sub2.N() != 3 {
		t.Fatal("deleted parent vertex resurrected")
	}
}

func TestEdgesWithinAndDensity(t *testing.T) {
	g := paperGraph()
	clique := []int{0, 1, 3, 4}
	if got := EdgesWithin(g, clique); got != 6 {
		t.Fatalf("EdgesWithin = %d, want 6", got)
	}
	if d := Density(g, clique); d != 1.0 {
		t.Fatalf("clique density = %f, want 1", d)
	}
	if d := Density(g, []int{0}); d != 0 {
		t.Fatal("singleton density must be 0")
	}
	if d := Density(g, nil); d != 0 {
		t.Fatal("empty density must be 0")
	}
}

func TestReadWriteEdgeList(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d, want %d %d", back.N(), back.M(), g.N(), g.M())
	}
	g.ForEachEdge(func(u, v int) {
		if !back.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost in round trip", u, v)
		}
	})
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# header\n% other comment\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n", "9999999999 1\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := completeGraph(5)
	s := ComputeStats(g)
	if s.N != 5 || s.M != 10 || s.MaxDegree != 4 || s.Triangles != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 4 {
		t.Fatalf("avg degree = %f, want 4", s.AvgDegree)
	}
	if g.ApproxBytes() <= 0 {
		t.Fatal("ApproxBytes must be positive")
	}
}
