package graph

import "math/bits"

// Bitset is a fixed-capacity bit vector used for per-edge liveness flags in
// the mutable overlay and the decomposition/peeling loops.
type Bitset []uint64

// NewBitset returns a Bitset able to hold n bits, all clear.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Get reports bit i.
func (b Bitset) Get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitset) Clear(i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }

// SetAll sets the first n bits.
func (b Bitset) SetAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if n&63 != 0 && len(b) > 0 {
		b[len(b)-1] = (1 << (uint(n) & 63)) - 1
	}
}

// Clone returns a copy.
func (b Bitset) Clone() Bitset { return append(Bitset(nil), b...) }

// ForEach calls fn for every set bit, in ascending order.
func (b Bitset) ForEach(fn func(i int32)) {
	for wi, word := range b {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			word &^= 1 << uint(t)
			fn(int32(wi<<6 + t))
		}
	}
}
