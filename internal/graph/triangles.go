package graph

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// EdgeSupports computes sup(e) = number of triangles containing e, for every
// edge of the immutable graph, by intersecting the sorted adjacency lists of
// each edge's endpoints. The result is indexed by dense edge ID.
func EdgeSupports(g *Graph) []int32 {
	sup := make([]int32, g.M())
	supportRange(g, sup, 0, g.N())
	return sup
}

// supportRange fills sup[e] for every edge (u, v) with u in [lo, hi) and
// u < v. Each edge is owned by its smaller endpoint, so disjoint vertex
// ranges write disjoint entries.
func supportRange(g *Graph, sup []int32, lo, hi int) {
	for u := lo; u < hi; u++ {
		nb := g.Neighbors(u)
		ids := g.NeighborEdgeIDs(u)
		for i, w := range nb {
			if int(w) > u {
				sup[ids[i]] = int32(countCommonSorted(nb, g.Neighbors(int(w))))
			}
		}
	}
}

// parallelSupportThreshold is the edge count below which the goroutine
// fan-out of EdgeSupportsParallel costs more than it saves.
const parallelSupportThreshold = 1 << 14

// EdgeSupportsParallel computes EdgeSupports with the per-vertex work
// sharded over GOMAXPROCS goroutines (work-stealing over vertex blocks, like
// DiameterParallel). Used by truss.Decompose for the initial counting pass.
func EdgeSupportsParallel(g *Graph) []int32 {
	if g.M() < parallelSupportThreshold {
		return EdgeSupports(g)
	}
	sup := make([]int32, g.M())
	workers := runtime.GOMAXPROCS(0)
	const block = 256
	nblocks := (g.N() + block - 1) / block
	if workers > nblocks {
		workers = nblocks
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := int(atomic.AddInt64(&next, 1))
				if bi >= nblocks {
					return
				}
				lo := bi * block
				hi := lo + block
				if hi > g.N() {
					hi = g.N()
				}
				supportRange(g, sup, lo, hi)
			}
		}()
	}
	wg.Wait()
	return sup
}

func countCommonSorted(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// TriangleCount returns the total number of triangles in g. Each triangle is
// counted once.
func TriangleCount(g *Graph) int64 {
	var total int64
	g.ForEachEdge(func(u, v int) {
		total += int64(countCommonSorted(g.Neighbors(u), g.Neighbors(v)))
	})
	return total / 3
}

// MutableEdgeSupports computes per-edge supports for the current state of an
// overlay-pure Mutable subgraph. The result is indexed by the base graph's
// edge IDs; entries of dead edges are zero.
func MutableEdgeSupports(mu *Mutable) []int32 {
	return MutableEdgeSupportsInto(mu, make([]int32, mu.base.M()))
}

// MutableEdgeSupportsInto is MutableEdgeSupports writing into a caller
// (typically workspace-pooled) buffer of length >= mu.Base().M(). Only the
// entries of live edges are written; entries of dead edges keep whatever
// stale values the buffer held, which the maintenance cascade never reads.
func MutableEdgeSupportsInto(mu *Mutable, sup []int32) []int32 {
	mu.requirePure("MutableEdgeSupports")
	sup = sup[:mu.base.M()]
	mu.ForEachLiveEdge(func(e int32, u, v int) {
		c := int32(0)
		mu.commonNeighborsMerged(u, v, func(_, _, _ int32) { c++ })
		sup[e] = c
	})
	return sup
}

// GlobalClusteringCoefficient returns 3*triangles / open+closed wedges,
// a standard cohesion statistic used when validating that the synthetic
// networks are triangle-rich like the paper's.
func GlobalClusteringCoefficient(g *Graph) float64 {
	var wedges int64
	for v := 0; v < g.N(); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}

// DegeneracyOrder returns a vertex ordering by iterative minimum-degree
// removal and the graph's degeneracy (max min-degree seen). The degeneracy
// upper-bounds the arboricity referenced in the paper's complexity analysis.
func DegeneracyOrder(g *Graph) (order []int, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue keyed by current degree.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := int(buckets[cur][len(buckets[cur])-1])
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	return order, degeneracy
}

// CoreNumbers returns the k-core number of each vertex (the largest k such
// that the vertex belongs to a subgraph of minimum degree k). A connected
// k-truss is always contained in a (k-1)-core, a containment the tests check.
func CoreNumbers(g *Graph) []int {
	order, _ := DegeneracyOrder(g)
	n := g.N()
	core := make([]int, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	removed := make([]bool, n)
	maxCore := 0
	for _, v := range order {
		if deg[v] > maxCore {
			maxCore = deg[v]
		}
		core[v] = maxCore
		removed[v] = true
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return core
}

// SortedVertexByDegree returns vertex IDs sorted by descending degree
// (ties by ascending ID), as used for the paper's degree-rank query buckets.
func SortedVertexByDegree(g *Graph) []int {
	vs := make([]int, g.N())
	for i := range vs {
		vs[i] = i
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := g.Degree(vs[i]), g.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	return vs
}
