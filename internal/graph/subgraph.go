package graph

import "sort"

// Induced returns the induced subgraph of g on the given vertex set, keeping
// the original vertex IDs (the result has the same ID space as g, with
// non-selected vertices isolated). Degenerate input is tolerated: duplicate
// and out-of-range vertices are ignored.
func Induced(g *Graph, vertices []int) *Graph {
	in := make([]bool, g.N())
	for _, v := range vertices {
		if v >= 0 && v < g.N() {
			in[v] = true
		}
	}
	b := NewBuilder(g.N(), 0)
	if g.N() > 0 {
		b.EnsureVertex(g.N() - 1)
	}
	g.ForEachEdge(func(u, v int) {
		if in[u] && in[v] {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}

// InducedCompact returns the induced subgraph with vertices renumbered to
// 0..k-1 plus the mapping newID -> oldID.
func InducedCompact(g *Graph, vertices []int) (*Graph, []int) {
	uniq := make([]int, 0, len(vertices))
	seen := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		if v >= 0 && v < g.N() && !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	sort.Ints(uniq)
	newID := make(map[int]int, len(uniq))
	for i, v := range uniq {
		newID[v] = i
	}
	b := NewBuilder(len(uniq), 0)
	if len(uniq) > 0 {
		b.EnsureVertex(len(uniq) - 1)
	}
	g.ForEachEdge(func(u, v int) {
		iu, ok1 := newID[u]
		iv, ok2 := newID[v]
		if ok1 && ok2 {
			b.AddEdge(iu, iv)
		}
	})
	return b.Build(), uniq
}

// InducedMutable returns a Mutable holding the induced subgraph of mu on the
// given vertices. The result shares mu's base graph (and edge-ID space).
func InducedMutable(mu *Mutable, vertices []int) *Mutable {
	out := newOverlay(mu.base)
	in := make([]bool, len(mu.present))
	for _, v := range vertices {
		if v < 0 || v >= len(in) || !mu.Present(v) {
			continue
		}
		in[v] = true
		if !out.present[v] {
			out.present[v] = true
			out.n++
		}
	}
	mu.alive.ForEach(func(e int32) {
		u, v := mu.base.EdgeEndpoints(e)
		if in[u] && in[v] {
			out.alive.Set(e)
			out.aliveM++
			out.deg[u]++
			out.deg[v]++
		}
	})
	if mu.extraM > 0 {
		for v, nb := range mu.extra {
			if !in[v] {
				continue
			}
			for _, w := range nb {
				if int(w) > v && in[w] {
					out.AddEdge(v, int(w))
				}
			}
		}
	}
	return out
}

// EdgesWithin returns the number of edges of g with both endpoints in the
// given set.
func EdgesWithin(g *Graph, vertices []int) int {
	in := make([]bool, g.N())
	for _, v := range vertices {
		if v >= 0 && v < g.N() {
			in[v] = true
		}
	}
	count := 0
	for _, v := range vertices {
		if v < 0 || v >= g.N() {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if int(w) > v && in[w] {
				count++
			}
		}
	}
	return count
}

// Density returns the edge density 2m / (n(n-1)) of a vertex set in g,
// the statistic reported in the paper's Figures 5-10.
func Density(g *Graph, vertices []int) float64 {
	n := len(vertices)
	if n < 2 {
		return 0
	}
	m := EdgesWithin(g, vertices)
	return 2 * float64(m) / (float64(n) * float64(n-1))
}
