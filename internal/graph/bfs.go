package graph

// Unreachable is the distance value reported for vertices that cannot be
// reached from the BFS source(s).
const Unreachable int32 = -1

// BFS computes hop distances from src into dist, which must have length
// g.NumIDs(). Entries for unreachable or absent vertices are set to
// Unreachable. The scratch queue is reused if non-nil and returned.
func BFS(g Adjacency, src int, dist []int32, queue []int32) []int32 {
	for i := range dist {
		dist[i] = Unreachable
	}
	if !g.Present(src) {
		return queue
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	// The visit closure is hoisted out of the loop (dv mutated, not
	// recaptured) so the interface call allocates once per BFS, not once per
	// dequeued vertex.
	var dv int32
	visit := func(u int) {
		if dist[u] == Unreachable {
			dist[u] = dv + 1
			queue = append(queue, int32(u))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		dv = dist[v]
		g.ForEachNeighbor(v, visit)
	}
	return queue
}

// Distances returns the hop distances from src to every vertex.
func Distances(g Adjacency, src int) []int32 {
	dist := make([]int32, g.NumIDs())
	BFS(g, src, dist, nil)
	return dist
}

// QueryDistances returns, for each vertex v, the query distance
// dist(v, Q) = max over q in Q of dist(v, q), per Definition 3 of the paper.
// Vertices unreachable from any query node get Unreachable.
func QueryDistances(g Adjacency, q []int) []int32 {
	n := g.NumIDs()
	out := make([]int32, n)
	for i := range out {
		out[i] = 0
	}
	dist := make([]int32, n)
	var queue []int32
	for _, src := range q {
		queue = BFS(g, src, dist, queue)
		for v := 0; v < n; v++ {
			if out[v] == Unreachable {
				continue
			}
			if dist[v] == Unreachable {
				out[v] = Unreachable
			} else if dist[v] > out[v] {
				out[v] = dist[v]
			}
		}
	}
	if len(q) == 0 {
		for v := 0; v < n; v++ {
			if !g.Present(v) {
				out[v] = Unreachable
			}
		}
	}
	return out
}

// GraphQueryDistance returns dist(G, Q) = max over present v of dist(v, Q),
// and whether every present vertex can reach all of Q. With disconnected
// vertices present the bool is false and the max ranges over reachable ones.
func GraphQueryDistance(g Adjacency, q []int) (int32, bool) {
	qd := QueryDistances(g, q)
	max := int32(0)
	all := true
	for v := 0; v < g.NumIDs(); v++ {
		if !g.Present(v) {
			continue
		}
		switch {
		case qd[v] == Unreachable:
			all = false
		case qd[v] > max:
			max = qd[v]
		}
	}
	return max, all
}

// Connected reports whether all vertices of q are present and mutually
// reachable. An empty q is trivially connected.
func Connected(g Adjacency, q []int) bool {
	if len(q) == 0 {
		return true
	}
	for _, v := range q {
		if !g.Present(v) {
			return false
		}
	}
	if len(q) == 1 {
		return true
	}
	dist := Distances(g, q[0])
	for _, v := range q[1:] {
		if dist[v] == Unreachable {
			return false
		}
	}
	return true
}

// Component returns the sorted vertices of the connected component
// containing src, or nil if src is absent.
func Component(g Adjacency, src int) []int {
	if !g.Present(src) {
		return nil
	}
	dist := Distances(g, src)
	comp := make([]int, 0)
	for v, d := range dist {
		if d != Unreachable {
			comp = append(comp, v)
		}
	}
	return comp
}

// ComponentCount returns the number of connected components among present
// vertices.
func ComponentCount(g Adjacency) int {
	n := g.NumIDs()
	seen := make([]bool, n)
	var queue []int32
	visit := func(u int) {
		if !seen[u] {
			seen[u] = true
			queue = append(queue, int32(u))
		}
	}
	count := 0
	for s := 0; s < n; s++ {
		if !g.Present(s) || seen[s] {
			continue
		}
		count++
		queue = queue[:0]
		queue = append(queue, int32(s))
		seen[s] = true
		for head := 0; head < len(queue); head++ {
			g.ForEachNeighbor(int(queue[head]), visit)
		}
	}
	return count
}

// IsConnected reports whether the present vertices form a single connected
// component. The empty graph counts as connected.
func IsConnected(g Adjacency) bool { return ComponentCount(g) <= 1 }
