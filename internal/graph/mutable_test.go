package graph

import (
	"testing"
	"testing/quick"
)

func TestMutableMirrorsGraph(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	if mu.N() != g.N() || mu.M() != g.M() {
		t.Fatalf("mutable N=%d M=%d, want %d %d", mu.N(), mu.M(), g.N(), g.M())
	}
	g.ForEachEdge(func(u, v int) {
		if !mu.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) missing from mutable", u, v)
		}
	})
}

func TestMutableInducedSubset(t *testing.T) {
	g := paperGraph()
	// The 4-clique q1,q2,v1,v2 → 6 edges.
	mu := NewMutable(g, []int{0, 1, 3, 4})
	if mu.N() != 4 || mu.M() != 6 {
		t.Fatalf("induced clique: N=%d M=%d, want 4, 6", mu.N(), mu.M())
	}
}

func TestMutableDeleteVertexCascade(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	deg := mu.Degree(2) // q3 has many neighbors
	mu.DeleteVertex(2)
	if mu.Present(2) {
		t.Fatal("vertex still present after deletion")
	}
	if mu.M() != g.M()-deg {
		t.Fatalf("M = %d after deleting deg-%d vertex, want %d", mu.M(), deg, g.M()-deg)
	}
	// Neighbors must not reference the deleted vertex.
	for v := 0; v < mu.NumIDs(); v++ {
		mu.ForEachNeighbor(v, func(u int) {
			if u == 2 {
				t.Fatalf("dangling edge to deleted vertex from %d", v)
			}
		})
	}
	// Deleting again is a no-op.
	before := mu.M()
	mu.DeleteVertex(2)
	if mu.M() != before {
		t.Fatal("double deletion changed edge count")
	}
}

func TestMutableDeleteEdge(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	if !mu.DeleteEdge(0, 1) {
		t.Fatal("DeleteEdge returned false for existing edge")
	}
	if mu.HasEdge(0, 1) || mu.HasEdge(1, 0) {
		t.Fatal("edge still present")
	}
	if mu.DeleteEdge(0, 1) {
		t.Fatal("DeleteEdge returned true for absent edge")
	}
	if mu.M() != g.M()-1 {
		t.Fatalf("M = %d, want %d", mu.M(), g.M()-1)
	}
}

func TestMutableAddEdge(t *testing.T) {
	mu := NewMutableFromEdges(5, nil)
	if mu.AddEdge(3, 3) {
		t.Fatal("self-loop accepted")
	}
	if !mu.AddEdge(1, 3) || mu.AddEdge(1, 3) {
		t.Fatal("AddEdge idempotence broken")
	}
	if mu.N() != 2 || mu.M() != 1 {
		t.Fatalf("N=%d M=%d, want 2 1", mu.N(), mu.M())
	}
}

func TestMutableCloneIndependent(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	cp := mu.Clone()
	cp.DeleteVertex(0)
	if !mu.Present(0) {
		t.Fatal("clone deletion leaked into original")
	}
	if cp.N() != mu.N()-1 {
		t.Fatalf("clone N=%d, want %d", cp.N(), mu.N()-1)
	}
}

func TestMutableRemoveIsolated(t *testing.T) {
	mu := NewMutableFromEdges(4, []EdgeKey{Key(0, 1)})
	mu.AddEdge(2, 3)
	mu.DeleteEdge(2, 3)
	removed := mu.RemoveIsolated(map[int]bool{2: true})
	if removed != 1 {
		t.Fatalf("removed %d isolated, want 1 (vertex 3)", removed)
	}
	if !mu.Present(2) || mu.Present(3) {
		t.Fatal("keep-set not honored")
	}
}

func TestMutableCommonNeighbors(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	// Edge (q2=1, v2=4) is contained in triangles with q1=0, v1=3, v5=7.
	got := map[int]bool{}
	mu.CommonNeighbors(1, 4, func(w int) { got[w] = true })
	want := map[int]bool{0: true, 3: true, 7: true}
	if len(got) != len(want) {
		t.Fatalf("common neighbors = %v, want %v", got, want)
	}
	for w := range want {
		if !got[w] {
			t.Fatalf("missing common neighbor %d", w)
		}
	}
	if mu.CountCommonNeighbors(1, 4) != 3 {
		t.Fatalf("support = %d, want 3", mu.CountCommonNeighbors(1, 4))
	}
}

func TestMutableFreezeRoundTrip(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, nil)
	mu.DeleteVertex(11) // drop t
	fz := mu.Freeze()
	if fz.M() != mu.M() {
		t.Fatalf("freeze M=%d, want %d", fz.M(), mu.M())
	}
	fz.ForEachEdge(func(u, v int) {
		if !mu.HasEdge(u, v) {
			t.Fatalf("frozen edge (%d,%d) not in mutable", u, v)
		}
	})
}

func TestMutableVerticesSorted(t *testing.T) {
	g := paperGraph()
	mu := NewMutable(g, []int{5, 1, 9})
	vs := mu.Vertices()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 5 || vs[2] != 9 {
		t.Fatalf("vertices = %v", vs)
	}
}

func TestMutableEdgeInvariant(t *testing.T) {
	// Property: after arbitrary deletions, handshake invariant holds.
	f := func(seed int64, dels []uint8) bool {
		g := randomGraph(seed, 24, 0.25)
		mu := NewMutable(g, nil)
		for _, d := range dels {
			v := int(d) % 24
			if mu.Present(v) {
				mu.DeleteVertex(v)
			}
		}
		sum := 0
		for v := 0; v < mu.NumIDs(); v++ {
			sum += mu.Degree(v)
		}
		return sum == 2*mu.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
