package gen

import (
	"fmt"

	"repro/internal/graph"
)

// CollabNetwork is the Figure-11 case-study stand-in: a named collaboration
// network with four well-known "query authors" embedded in a dense core
// (the database community) that shares a deep truss with looser satellite
// groups, mimicking the DBLP graph where the maximal truss G0 for the four
// query authors carries 73 nodes but the closest community has only 14.
type CollabNetwork struct {
	G *graph.Graph
	// Names maps vertex IDs to author names (synthetic beyond the core).
	Names []string
	// QueryAuthors are the IDs of the four paper query authors.
	QueryAuthors []int
}

// coreAuthors are the members of the paper's Figure 11(b) community.
var coreAuthors = []string{
	"Alon Y. Halevy", "Michael J. Franklin", "Jeffrey D. Ullman", "Jennifer Widom",
	"Michael J. Carey", "Michael Stonebraker", "Philip A. Bernstein",
	"H. Garcia-Molina", "Joseph M. Hellerstein", "Gerhard Weikum",
	"David Maier", "David J. DeWitt", "Laura M. Haas", "Rakesh Agrawal",
}

// Collaboration builds the case-study network deterministically (seed only
// affects the background noise):
//
//   - a 13-author clique (the core community) plus "Jeffrey D. Ullman"
//     joined to exactly 6 of them, which pins the query trussness at 7
//     (his edges live in a K7, so τ(Ullman) = 7 < the clique's 13);
//   - ten 8-author satellite cliques, each bridged through 6 members to two
//     adjacent core authors outside Ullman's neighborhood — the bridge
//     union forms a K8, so every satellite joins the same connected
//     7-truss, at query distance 3 from Ullman;
//   - random low-degree background authors that never reach trussness 7.
//
// Hence G0 for the four query authors is the whole 94-node 7-truss, while
// the closest community is the 14-author core — the paper's Figure 11 shape.
func Collaboration(seed uint64) *CollabNetwork {
	rng := NewRNG(seed)
	const (
		coreN    = 14 // core authors; index 2 is Ullman
		ullman   = 2
		nSat     = 10
		satSize  = 8
		nBridged = 6
		extraN   = 120
	)
	n := coreN + nSat*satSize + extraN
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	names := make([]string, n)
	copy(names, coreAuthors)
	for v := coreN; v < n; v++ {
		names[v] = fmt.Sprintf("Author %03d", v)
	}
	// Core: K13 on everyone but Ullman.
	for i := 0; i < coreN; i++ {
		for j := i + 1; j < coreN; j++ {
			if i != ullman && j != ullman {
				b.AddEdge(i, j)
			}
		}
	}
	// Ullman collaborates with exactly six core authors.
	for _, c := range []int{0, 1, 3, 4, 5, 6} {
		b.AddEdge(ullman, c)
	}
	// Satellites: K8 groups bridged through two core authors from
	// {7..13} (outside Ullman's neighborhood, so satellite members sit at
	// distance 3 from him).
	bridgeTargets := []int{7, 8, 9, 10, 11, 12, 13}
	for s := 0; s < nSat; s++ {
		base := coreN + s*satSize
		for i := 0; i < satSize; i++ {
			for j := i + 1; j < satSize; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		c1 := bridgeTargets[s%len(bridgeTargets)]
		c2 := bridgeTargets[(s+1)%len(bridgeTargets)]
		for i := 0; i < nBridged; i++ {
			b.AddEdge(base+i, c1)
			b.AddEdge(base+i, c2)
		}
	}
	// Background authors with sparse random collaborations.
	for v := coreN + nSat*satSize; v < n; v++ {
		deg := 1 + rng.Intn(3)
		for i := 0; i < deg; i++ {
			b.AddEdge(v, rng.Intn(v))
		}
	}
	g := Connect(b.Build(), seed^0xBEEF)
	return &CollabNetwork{
		G:            g,
		Names:        names,
		QueryAuthors: []int{0, 1, 2, 3},
	}
}

// NameOf returns the author name of vertex v.
func (cn *CollabNetwork) NameOf(v int) string {
	if v < 0 || v >= len(cn.Names) {
		return fmt.Sprintf("Unknown %d", v)
	}
	return cn.Names[v]
}
