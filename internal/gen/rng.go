// Package gen synthesizes the network workloads of the paper's evaluation:
// standard random-graph models, planted overlapping-community graphs with
// ground truth, scaled-down analogues of the six SNAP networks in Table 2,
// a named collaboration network for the Figure 11 case study, and the three
// query generators (query size, degree rank, inter-distance).
//
// Everything is driven by an explicit splitmix64 seed so that experiments
// and benchmarks are reproducible bit-for-bit across platforms and Go
// versions (math/rand's stream is not guaranteed stable).
package gen

// RNG is a small, fast, deterministic random number generator (splitmix64).
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Sample returns k distinct values from [0, n) (k <= n), in random order.
func (r *RNG) Sample(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// Floyd's algorithm for small k, permutation for large k.
	if k*4 < n {
		chosen := make(map[int]bool, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := r.Intn(j + 1)
			if chosen[t] {
				t = j
			}
			chosen[t] = true
			out = append(out, t)
		}
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	return r.Perm(n)[:k]
}
