package gen

import (
	"repro/internal/graph"
)

// ErdosRenyi generates G(n, p) with the given seed.
func ErdosRenyi(n int, p float64, seed uint64) *graph.Graph {
	rng := NewRNG(seed)
	b := graph.NewBuilder(n, int(p*float64(n)*float64(n-1)/2))
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to m existing vertices chosen proportionally to degree. Produces
// the heavy-tailed degree distributions typical of the paper's networks.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	rng := NewRNG(seed)
	b := graph.NewBuilder(n, n*m)
	// Repeated-endpoint list: sampling uniformly from it is degree-biased.
	targets := make([]int32, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	for u := 0; u < start; u++ {
		for v := u + 1; v < start; v++ {
			b.AddEdge(u, v)
			targets = append(targets, int32(u), int32(v))
		}
	}
	for v := start; v < n; v++ {
		chosen := make(map[int32]bool, m)
		for len(chosen) < m && len(chosen) < v {
			t := targets[rng.Intn(len(targets))]
			chosen[t] = true
		}
		for t := range chosen {
			b.AddEdge(v, int(t))
			targets = append(targets, int32(v), t)
		}
	}
	return b.Build()
}

// WattsStrogatz generates a small-world ring lattice with k neighbors per
// side and rewiring probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	rng := NewRNG(seed)
	b := graph.NewBuilder(n, n*k)
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if rng.Float64() < beta {
				u = rng.Intn(n)
				for u == v {
					u = rng.Intn(n)
				}
			}
			b.AddEdge(v, u)
		}
	}
	return b.Build()
}

// Clique adds a complete subgraph on the given vertices to the builder.
func addClique(b *graph.Builder, vs []int) {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			b.AddEdge(vs[i], vs[j])
		}
	}
}

// Connect links the connected components of an edge set by chaining one
// representative of each component, returning the extra edges appended. It
// operates on an already-built graph and returns a rebuilt connected one.
func Connect(g *graph.Graph, seed uint64) *graph.Graph {
	if g.N() == 0 || graph.IsConnected(g) {
		return g
	}
	rng := NewRNG(seed)
	b := graph.NewBuilder(g.N(), g.M()+8)
	b.EnsureVertex(g.N() - 1)
	g.ForEachEdge(func(u, v int) { b.AddEdge(u, v) })
	seen := make([]bool, g.N())
	var reps []int
	for v := 0; v < g.N(); v++ {
		if seen[v] {
			continue
		}
		comp := graph.Component(g, v)
		for _, c := range comp {
			seen[c] = true
		}
		reps = append(reps, comp[rng.Intn(len(comp))])
	}
	for i := 1; i < len(reps); i++ {
		b.AddEdge(reps[i-1], reps[i])
	}
	return b.Build()
}
