package gen

import (
	"sort"

	"repro/internal/graph"
)

// CommunityParams configures the planted overlapping-community generator,
// the stand-in for the SNAP networks with ground-truth communities (see
// DESIGN.md §3 for the substitution rationale).
type CommunityParams struct {
	// N is the number of vertices.
	N int
	// NumCommunities is how many ground-truth communities to plant.
	NumCommunities int
	// MinSize and MaxSize bound community sizes (sizes are drawn with a
	// quadratic skew toward MinSize, giving a heavy-ish tail).
	MinSize, MaxSize int
	// Overlap is the expected number of communities a member vertex joins
	// beyond its first (0 = disjoint-ish, 2+ = heavily overlapping like
	// Orkut).
	Overlap float64
	// PIntra is the probability of an edge between two members of the same
	// community. High values produce triangle-rich, high-trussness cores.
	PIntra float64
	// BackgroundEdges is the number of uniformly random extra edges (noise
	// between communities).
	BackgroundEdges int
	// Hubs plants this many high-degree vertices, each wired to HubDegree
	// random vertices (models dmax outliers like Youtube's 28,754).
	Hubs, HubDegree int
	// PlantedClique, when > 0, plants one clique of this size to pin the
	// graph's maximum trussness τ̄(∅) near PlantedClique.
	PlantedClique int
	// Seed drives all randomness.
	Seed uint64
}

// CommunityGraph generates the graph and its ground-truth communities
// (each a sorted vertex list). The graph is connected.
func CommunityGraph(p CommunityParams) (*graph.Graph, [][]int) {
	rng := NewRNG(p.Seed)
	if p.MinSize < 3 {
		p.MinSize = 3
	}
	if p.MaxSize < p.MinSize {
		p.MaxSize = p.MinSize
	}
	b := graph.NewBuilder(p.N, p.N*8)
	if p.N > 0 {
		b.EnsureVertex(p.N - 1)
	}
	// Membership assignment: walk the vertex pool in random order, handing
	// out contiguous runs so most vertices get one home community; then add
	// overlap memberships uniformly.
	perm := rng.Perm(p.N)
	cursor := 0
	comms := make([][]int, 0, p.NumCommunities)
	for c := 0; c < p.NumCommunities; c++ {
		u := rng.Float64()
		size := p.MinSize + int(float64(p.MaxSize-p.MinSize)*u*u)
		members := make([]int, 0, size)
		for len(members) < size {
			members = append(members, perm[cursor%p.N])
			cursor++
		}
		comms = append(comms, members)
	}
	// Overlap: extra memberships.
	if p.Overlap > 0 {
		extra := int(p.Overlap * float64(p.N))
		for i := 0; i < extra; i++ {
			c := rng.Intn(len(comms))
			comms[c] = append(comms[c], rng.Intn(p.N))
		}
	}
	// Intra-community edges.
	for _, members := range comms {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if members[i] != members[j] && rng.Float64() < p.PIntra {
					b.AddEdge(members[i], members[j])
				}
			}
		}
	}
	// Background noise.
	for i := 0; i < p.BackgroundEdges; i++ {
		u, v := rng.Intn(p.N), rng.Intn(p.N)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	// Hubs.
	for h := 0; h < p.Hubs; h++ {
		hub := rng.Intn(p.N)
		for i := 0; i < p.HubDegree; i++ {
			v := rng.Intn(p.N)
			if v != hub {
				b.AddEdge(hub, v)
			}
		}
	}
	// Planted clique pinning τ̄(∅).
	if p.PlantedClique > 2 {
		addClique(b, rng.Sample(p.N, p.PlantedClique))
	}
	g := Connect(b.Build(), p.Seed^0xC0FFEE)
	// Canonicalize ground truth: dedupe and sort each community.
	for i, members := range comms {
		seen := make(map[int]bool, len(members))
		uniq := members[:0]
		for _, v := range members {
			if !seen[v] {
				seen[v] = true
				uniq = append(uniq, v)
			}
		}
		sort.Ints(uniq)
		comms[i] = uniq
	}
	return g, comms
}
