package gen

import (
	"errors"

	"repro/internal/graph"
)

// GroundTruthQuery is a query sampled from one ground-truth community,
// paired with that community for F1 scoring.
type GroundTruthQuery struct {
	Q         []int
	Community []int
}

// QueriesFromGroundTruth samples count queries, each of a size drawn
// uniformly from [minSize, maxSize], from random ground-truth communities
// that are large enough. Mirrors Exp-3's "query nodes that appear in a
// unique ground-truth community".
func QueriesFromGroundTruth(rng *RNG, comms [][]int, count, minSize, maxSize int) []GroundTruthQuery {
	eligible := make([][]int, 0, len(comms))
	for _, c := range comms {
		if len(c) >= minSize {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	out := make([]GroundTruthQuery, 0, count)
	for i := 0; i < count; i++ {
		c := eligible[rng.Intn(len(eligible))]
		size := minSize
		if maxSize > minSize {
			size += rng.Intn(maxSize - minSize + 1)
		}
		if size > len(c) {
			size = len(c)
		}
		idx := rng.Sample(len(c), size)
		q := make([]int, size)
		for j, t := range idx {
			q[j] = c[t]
		}
		out = append(out, GroundTruthQuery{Q: q, Community: c})
	}
	return out
}

// QueryByDegreeRank samples a query of the given size from degree-rank
// bucket b of nbuckets (b=0 is the top-degree bucket), per Exp-1's degree
// rank parameter Qd.
func QueryByDegreeRank(g *graph.Graph, rng *RNG, b, nbuckets, size int) ([]int, error) {
	if b < 0 || b >= nbuckets {
		return nil, errors.New("gen: bucket out of range")
	}
	order := graph.SortedVertexByDegree(g)
	per := len(order) / nbuckets
	if per == 0 {
		return nil, errors.New("gen: graph too small for bucketing")
	}
	lo := b * per
	hi := lo + per
	if b == nbuckets-1 {
		hi = len(order)
	}
	if hi-lo < size {
		return nil, errors.New("gen: bucket smaller than query size")
	}
	idx := rng.Sample(hi-lo, size)
	q := make([]int, size)
	for i, t := range idx {
		q[i] = order[lo+t]
	}
	return q, nil
}

// QueryByInterDistance samples a query of the given size whose vertices are
// pairwise within distance l, with at least one pair at exactly distance l
// when size > 1 (Exp-1's inter-distance parameter). It retries up to
// maxTries starting vertices before giving up.
func QueryByInterDistance(g *graph.Graph, rng *RNG, l, size, maxTries int) ([]int, error) {
	if size <= 0 {
		return nil, errors.New("gen: non-positive query size")
	}
	if size == 1 {
		return []int{rng.Intn(g.N())}, nil
	}
	for try := 0; try < maxTries; try++ {
		v0 := rng.Intn(g.N())
		dist0 := graph.Distances(g, v0)
		// Candidates at exactly distance l from v0 (anchoring the max).
		var exact []int
		for v, d := range dist0 {
			if int(d) == l {
				exact = append(exact, v)
			}
		}
		if len(exact) == 0 {
			continue
		}
		v1 := exact[rng.Intn(len(exact))]
		q := []int{v0, v1}
		dists := [][]int32{dist0, graph.Distances(g, v1)}
		// Grow with vertices within l of everything chosen so far.
		for len(q) < size {
			var cands []int
			for v := 0; v < g.N(); v++ {
				ok := v != q[0]
				for i := range q {
					if v == q[i] {
						ok = false
						break
					}
					d := dists[i][v]
					if d == graph.Unreachable || int(d) > l {
						ok = false
						break
					}
				}
				if ok {
					cands = append(cands, v)
				}
			}
			if len(cands) == 0 {
				break
			}
			next := cands[rng.Intn(len(cands))]
			q = append(q, next)
			dists = append(dists, graph.Distances(g, next))
		}
		if len(q) == size {
			return q, nil
		}
	}
	return nil, errors.New("gen: could not satisfy inter-distance constraint")
}

// RandomQuery samples size distinct vertices uniformly.
func RandomQuery(g *graph.Graph, rng *RNG, size int) []int {
	return rng.Sample(g.N(), size)
}
