package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/truss"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed, different stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	rng.Intn(0)
}

func TestRNGPermAndSample(t *testing.T) {
	rng := NewRNG(9)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in permutation")
		}
		seen[v] = true
	}
	s := rng.Sample(100, 10)
	if len(s) != 10 {
		t.Fatalf("sample size %d", len(s))
	}
	uniq := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 || uniq[v] {
			t.Fatalf("bad sample %v", s)
		}
		uniq[v] = true
	}
	if got := rng.Sample(5, 10); len(got) != 5 {
		t.Fatalf("oversized sample should clamp, got %d", len(got))
	}
	if rng.Sample(5, 0) != nil {
		t.Fatal("zero sample should be nil")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 0.1, 1)
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// Expectation ~495; allow wide tolerance.
	if g.M() < 300 || g.M() > 700 {
		t.Fatalf("M = %d, outside plausible band for p=0.1", g.M())
	}
	// Determinism.
	g2 := ErdosRenyi(100, 0.1, 1)
	if g2.M() != g.M() {
		t.Fatal("same seed must reproduce the same graph")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph must be connected")
	}
	// Preferential attachment must produce a hub noticeably above average.
	if g.MaxDegree() < 3*int(2*float64(g.M())/float64(g.N())) {
		t.Fatalf("max degree %d lacks a hub", g.MaxDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, 3)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	avg := 2 * float64(g.M()) / float64(g.N())
	if avg < 5 || avg > 7 {
		t.Fatalf("avg degree %f, want ~6", avg)
	}
}

func TestConnectLinksComponents(t *testing.T) {
	b := graph.NewBuilder(6, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	g := Connect(b.Build(), 1)
	if !graph.IsConnected(g) {
		t.Fatal("Connect left the graph disconnected")
	}
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5 (3 original + 2 links)", g.M())
	}
}

func TestCommunityGraph(t *testing.T) {
	g, comms := CommunityGraph(CommunityParams{
		N: 1000, NumCommunities: 50, MinSize: 8, MaxSize: 30,
		Overlap: 0.3, PIntra: 0.4, BackgroundEdges: 500,
		PlantedClique: 12, Seed: 77,
	})
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	if !graph.IsConnected(g) {
		t.Fatal("community graph must be connected")
	}
	if len(comms) != 50 {
		t.Fatalf("%d communities", len(comms))
	}
	for i, c := range comms {
		if len(c) < 3 {
			t.Fatalf("community %d too small: %d", i, len(c))
		}
		seen := map[int]bool{}
		for _, v := range c {
			if v < 0 || v >= 1000 || seen[v] {
				t.Fatalf("community %d has bad/duplicate member %d", i, v)
			}
			seen[v] = true
		}
	}
	// The planted clique should pin τ̄(∅) near 12.
	d := truss.Decompose(g)
	if d.MaxTruss < 10 {
		t.Fatalf("τ̄(∅) = %d, want >= 10 with a planted 12-clique", d.MaxTruss)
	}
	// Communities should be denser than the graph at large.
	c := comms[0]
	if graph.Density(g, c) < 0.2 {
		t.Fatalf("community density %.3f suspiciously low", graph.Density(g, c))
	}
}

func TestNetworksRegistry(t *testing.T) {
	nws := SharedNetworks()
	if len(nws) != 6 {
		t.Fatalf("%d networks, want 6", len(nws))
	}
	names := map[string]bool{}
	for _, nw := range nws {
		names[nw.Name] = true
	}
	for _, want := range []string{"facebook", "amazon", "dblp", "youtube", "livejournal", "orkut"} {
		if !names[want] {
			t.Fatalf("missing network %q", want)
		}
	}
	fb, err := NetworkByName("facebook")
	if err != nil {
		t.Fatal(err)
	}
	if fb.GroundTruth() != nil {
		t.Fatal("facebook must not have ground truth (per Table 2)")
	}
	am, _ := NetworkByName("amazon")
	if am.GroundTruth() == nil {
		t.Fatal("amazon must have ground truth")
	}
	if _, err := NetworkByName("nope"); err == nil {
		t.Fatal("unknown network accepted")
	}
	// Caching: same pointer twice.
	if fb.Graph() != fb.Graph() {
		t.Fatal("network graph not cached")
	}
}

func TestSmallNetworksAreConnectedAndTriangleRich(t *testing.T) {
	if testing.Short() {
		t.Skip("generation is seconds-long")
	}
	for _, name := range []string{"facebook", "amazon"} {
		nw, _ := NetworkByName(name)
		g := nw.Graph()
		if !graph.IsConnected(g) {
			t.Fatalf("%s disconnected", name)
		}
		if graph.GlobalClusteringCoefficient(g) < 0.05 {
			t.Fatalf("%s not triangle-rich (GCC=%.3f)", name, graph.GlobalClusteringCoefficient(g))
		}
	}
}

func TestQueriesFromGroundTruth(t *testing.T) {
	rng := NewRNG(5)
	comms := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}, {10, 11, 12, 13, 14}, {20, 21}}
	qs := QueriesFromGroundTruth(rng, comms, 50, 2, 4)
	if len(qs) != 50 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, gq := range qs {
		if len(gq.Q) < 2 || len(gq.Q) > 4 {
			t.Fatalf("query size %d", len(gq.Q))
		}
		inComm := map[int]bool{}
		for _, v := range gq.Community {
			inComm[v] = true
		}
		for _, v := range gq.Q {
			if !inComm[v] {
				t.Fatalf("query vertex %d outside its community", v)
			}
		}
		if len(gq.Community) < 2 {
			t.Fatal("undersized community used")
		}
	}
	if QueriesFromGroundTruth(rng, [][]int{{1}}, 5, 2, 4) != nil {
		t.Fatal("no eligible communities should give nil")
	}
}

func TestQueryByDegreeRank(t *testing.T) {
	g := BarabasiAlbert(500, 3, 4)
	rng := NewRNG(6)
	order := graph.SortedVertexByDegree(g)
	topSet := map[int]bool{}
	for _, v := range order[:100] {
		topSet[v] = true
	}
	q, err := QueryByDegreeRank(g, rng, 0, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range q {
		if !topSet[v] {
			t.Fatalf("vertex %d not in the top-degree bucket", v)
		}
	}
	if _, err := QueryByDegreeRank(g, rng, 7, 5, 3); err == nil {
		t.Fatal("bad bucket accepted")
	}
}

func TestQueryByInterDistance(t *testing.T) {
	g := BarabasiAlbert(300, 2, 8)
	rng := NewRNG(11)
	for _, l := range []int{1, 2, 3} {
		q, err := QueryByInterDistance(g, rng, l, 3, 200)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if len(q) != 3 {
			t.Fatalf("l=%d: size %d", l, len(q))
		}
		maxPair := 0
		for i := range q {
			dist := graph.Distances(g, q[i])
			for j := range q {
				if i != j {
					if dist[q[j]] == graph.Unreachable {
						t.Fatalf("l=%d: unreachable pair", l)
					}
					if int(dist[q[j]]) > maxPair {
						maxPair = int(dist[q[j]])
					}
				}
			}
		}
		if maxPair > l {
			t.Fatalf("l=%d: pairwise distance %d exceeds bound", l, maxPair)
		}
		if maxPair != l {
			t.Fatalf("l=%d: max pairwise distance %d, want exactly l", l, maxPair)
		}
	}
	if q, _ := QueryByInterDistance(g, rng, 2, 1, 10); len(q) != 1 {
		t.Fatal("size-1 query")
	}
}

func TestCollaboration(t *testing.T) {
	cn := Collaboration(1)
	if !graph.IsConnected(cn.G) {
		t.Fatal("collaboration network disconnected")
	}
	if len(cn.QueryAuthors) != 4 {
		t.Fatalf("%d query authors", len(cn.QueryAuthors))
	}
	if cn.NameOf(0) != "Alon Y. Halevy" || cn.NameOf(2) != "Jeffrey D. Ullman" {
		t.Fatalf("core names wrong: %q, %q", cn.NameOf(0), cn.NameOf(2))
	}
	if cn.NameOf(-1) == "" || cn.NameOf(10_000) == "" {
		t.Fatal("NameOf must not return empty for out-of-range")
	}
	// The core must live in a deep truss.
	d := truss.Decompose(cn.G)
	for _, qa := range cn.QueryAuthors {
		if d.VertexTruss[qa] < 6 {
			t.Fatalf("query author %d trussness %d, want >= 6", qa, d.VertexTruss[qa])
		}
	}
}
