package gen

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Network is one of the six scaled-down analogues of the paper's Table 2
// datasets, built lazily and cached (generation plus truss decomposition of
// the larger ones costs seconds).
type Network struct {
	// Name matches the paper's dataset name.
	Name string
	// HasGroundTruth mirrors the paper: all networks except Facebook carry
	// ground-truth communities.
	HasGroundTruth bool

	params CommunityParams

	once   sync.Once
	g      *graph.Graph
	truth  [][]int
	genErr error
}

// Graph returns the generated network graph.
func (nw *Network) Graph() *graph.Graph {
	nw.build()
	return nw.g
}

// GroundTruth returns the planted communities, or nil for Facebook.
func (nw *Network) GroundTruth() [][]int {
	nw.build()
	if !nw.HasGroundTruth {
		return nil
	}
	return nw.truth
}

func (nw *Network) build() {
	nw.once.Do(func() {
		nw.g, nw.truth = CommunityGraph(nw.params)
	})
}

// Networks returns the six analogues in the paper's Table 2 order:
// Facebook, Amazon, DBLP, Youtube, LiveJournal, Orkut. Scales are reduced
// ~100-1000x (see DESIGN.md §3) while preserving the relative ordering of
// density, dmax character and τ̄(∅) across datasets.
func Networks() []*Network {
	return []*Network{
		{
			// Facebook: tiny, very dense, huge clustering, τ̄(∅) high.
			Name: "facebook",
			params: CommunityParams{
				N: 2000, NumCommunities: 60, MinSize: 15, MaxSize: 70,
				Overlap: 0.4, PIntra: 0.45, BackgroundEdges: 1500,
				Hubs: 4, HubDegree: 300, PlantedClique: 24, Seed: 0xFB01,
			},
		},
		{
			// Amazon: sparse co-purchase graph, small communities, τ̄(∅)=7.
			Name: "amazon", HasGroundTruth: true,
			params: CommunityParams{
				N: 12000, NumCommunities: 1400, MinSize: 4, MaxSize: 14,
				Overlap: 0.15, PIntra: 0.55, BackgroundEdges: 4000,
				PlantedClique: 7, Seed: 0xA201,
			},
		},
		{
			// DBLP: co-authorship, mid-size communities, very high τ̄(∅)
			// (large author cliques from many-author papers).
			Name: "dblp", HasGroundTruth: true,
			params: CommunityParams{
				N: 10000, NumCommunities: 700, MinSize: 5, MaxSize: 40,
				Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 5000,
				Hubs: 6, HubDegree: 120, PlantedClique: 28, Seed: 0xDB01,
			},
		},
		{
			// Youtube: sparse, weak communities, extreme hub degrees,
			// low τ̄(∅).
			Name: "youtube", HasGroundTruth: true,
			params: CommunityParams{
				N: 15000, NumCommunities: 900, MinSize: 4, MaxSize: 24,
				Overlap: 0.2, PIntra: 0.22, BackgroundEdges: 12000,
				Hubs: 10, HubDegree: 600, PlantedClique: 11, Seed: 0x0401,
			},
		},
		{
			// LiveJournal: large, denser communities, highest τ̄(∅).
			Name: "livejournal", HasGroundTruth: true,
			params: CommunityParams{
				N: 18000, NumCommunities: 900, MinSize: 8, MaxSize: 50,
				Overlap: 0.5, PIntra: 0.45, BackgroundEdges: 15000,
				Hubs: 8, HubDegree: 400, PlantedClique: 34, Seed: 0x1201,
			},
		},
		{
			// Orkut: densest, heavy membership overlap (the paper notes
			// its ground-truth communities overlap so much that F1 drops
			// for every method).
			Name: "orkut", HasGroundTruth: true,
			params: CommunityParams{
				N: 16000, NumCommunities: 700, MinSize: 10, MaxSize: 60,
				Overlap: 1.6, PIntra: 0.32, BackgroundEdges: 30000,
				Hubs: 10, HubDegree: 500, PlantedClique: 19, Seed: 0x0601,
			},
		},
	}
}

// Custom wraps a prebuilt graph as a Network, for tests and user-supplied
// edge lists. truth may be nil.
func Custom(name string, g *graph.Graph, truth [][]int) *Network {
	nw := &Network{Name: name, HasGroundTruth: truth != nil}
	nw.g = g
	nw.truth = truth
	nw.once.Do(func() {}) // mark as built
	return nw
}

var (
	networksOnce sync.Once
	networksAll  []*Network
)

// SharedNetworks returns a process-wide cached instance of the six networks
// so repeated experiments do not regenerate them.
func SharedNetworks() []*Network {
	networksOnce.Do(func() { networksAll = Networks() })
	return networksAll
}

// NetworkByName finds a shared network by its lowercase name.
func NetworkByName(name string) (*Network, error) {
	for _, nw := range SharedNetworks() {
		if nw.Name == name {
			return nw, nil
		}
	}
	return nil, fmt.Errorf("gen: unknown network %q", name)
}
