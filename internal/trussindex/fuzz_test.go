package trussindex

import (
	"bytes"
	"testing"
)

// FuzzReadFrom checks that arbitrary bytes never panic the deserializer and
// that valid serializations round-trip.
func FuzzReadFrom(f *testing.F) {
	// Seed with a genuine serialization and mutations of it.
	ix := Build(paperGraph())
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 10 {
		trunc := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(trunc)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)-1] ^= 0xFF
		f.Add(flipped)
	}
	f.Add([]byte("CTCIDX1\n"))
	f.Add([]byte("CTCIDX2\n"))
	f.Add([]byte("CTCIDX9\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must be internally consistent enough to answer
		// lookups without panicking.
		g := ix.Graph()
		for v := 0; v < g.N() && v < 50; v++ {
			_ = ix.VertexTruss(v)
			for _, w := range g.Neighbors(v) {
				_ = ix.EdgeTruss(v, int(w))
			}
		}
	})
}
