package trussindex

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/truss"
)

// paperGraph is Figure 1(a); see internal/truss tests for the derivation.
// q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7 p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	return graph.FromEdges(12, edges)
}

// figure4Graph is the paper's Figure 4 example for Algorithm 2:
// q1=0 q2=1 v1=2 v2=3 v3=4 v4=5 t1=6 t2=7. Two 4-truss blocks joined only
// by the trussness-2 edge (t1,t2).
func figure4Graph() *graph.Graph {
	edges := [][2]int{
		// left 4-truss: q1 with v1, v2, t1 — 4-clique
		{0, 2}, {0, 3}, {0, 6}, {2, 3}, {2, 6}, {3, 6},
		// right 4-truss: q2 with v3, v4, t2 — 4-clique
		{1, 4}, {1, 5}, {1, 7}, {4, 5}, {4, 7}, {5, 7},
		// the weak bridge
		{6, 7},
	}
	return graph.FromEdges(8, edges)
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestIndexLookups(t *testing.T) {
	g := paperGraph()
	ix := Build(g)
	if ix.MaxTruss() != 4 {
		t.Fatalf("τ̄(∅) = %d, want 4", ix.MaxTruss())
	}
	if ix.EdgeTruss(1, 4) != 4 { // τ(q2,v2) = 4
		t.Fatalf("τ(q2,v2) = %d, want 4", ix.EdgeTruss(1, 4))
	}
	if ix.EdgeTruss(0, 11) != 2 {
		t.Fatalf("τ(q1,t) = %d, want 2", ix.EdgeTruss(0, 11))
	}
	if ix.EdgeTruss(0, 5) != 0 {
		t.Fatal("absent edge should report trussness 0")
	}
	if ix.VertexTruss(1) != 4 || ix.VertexTruss(11) != 2 {
		t.Fatalf("vertex trussness: τ(q2)=%d τ(t)=%d", ix.VertexTruss(1), ix.VertexTruss(11))
	}
	if ix.VertexTruss(-1) != 0 || ix.VertexTruss(99) != 0 {
		t.Fatal("out-of-range vertex trussness should be 0")
	}
}

func TestIndexAdjacencySortedByTruss(t *testing.T) {
	g := paperGraph()
	ix := Build(g)
	for v := 0; v < g.N(); v++ {
		lo, hi := ix.arcRange(v)
		ts := ix.nbrTruss[lo:hi]
		nb := ix.nbr[lo:hi]
		for i := 1; i < len(ts); i++ {
			if ts[i] > ts[i-1] {
				t.Fatalf("vertex %d adjacency not sorted by descending trussness: %v", v, ts)
			}
			if ts[i] == ts[i-1] && nb[i] <= nb[i-1] {
				t.Fatalf("vertex %d: equal-trussness neighbors not ascending: %v / %v", v, nb, ts)
			}
		}
		if len(ts) > 0 && ts[0] != ix.VertexTruss(v) {
			t.Fatalf("vertex %d: first edge τ=%d != vertex τ=%d", v, ts[0], ix.VertexTruss(v))
		}
		// The arc metadata must agree with the graph: nbrEID[i] really is
		// the edge (v, nbr[i]) and nbrTruss matches the dense table.
		for i := range nb {
			e := ix.nbrEID[lo+int32(i)]
			if g.EdgeID(v, int(nb[i])) != e {
				t.Fatalf("vertex %d arc %d: eid %d != EdgeID(%d,%d)", v, i, e, v, nb[i])
			}
			if ix.edgeTruss[e] != ts[i] {
				t.Fatalf("vertex %d arc %d: τ %d != edgeTruss[%d]=%d", v, i, ts[i], e, ix.edgeTruss[e])
			}
		}
	}
}

func TestFindG0PaperFigure1(t *testing.T) {
	g := paperGraph()
	ix := Build(g)
	mu, k, err := ix.FindG0([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	if mu.N() != 11 || mu.Present(11) {
		t.Fatalf("G0: N=%d, t present=%v; want 11 nodes without t", mu.N(), mu.Present(11))
	}
	if err := truss.VerifyCommunity(mu, 4, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestFindG0PaperFigure4(t *testing.T) {
	// Example 6: for Q = {q1, q2} the algorithm descends from level 4 to
	// level 2 and returns the whole graph (both 4-trusses plus the bridge).
	g := figure4Graph()
	ix := Build(g)
	if ix.EdgeTruss(6, 7) != 2 {
		t.Fatalf("τ(t1,t2) = %d, want 2", ix.EdgeTruss(6, 7))
	}
	mu, k, err := ix.FindG0([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if mu.N() != 8 || mu.M() != 13 {
		t.Fatalf("G0 = %d nodes %d edges, want the whole graph (8, 13)", mu.N(), mu.M())
	}
}

func TestFindG0SingleQuery(t *testing.T) {
	g := paperGraph()
	ix := Build(g)
	// Q = {q3}: q3 sits in 4-trusses; G0 must be a connected 4-truss.
	mu, k, err := ix.FindG0([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	if err := truss.VerifyCommunity(mu, 4, []int{2}); err != nil {
		t.Fatal(err)
	}
}

func TestFindG0Errors(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	ix := Build(g)
	if _, _, err := ix.FindG0([]int{0, 2}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("disconnected query: err = %v", err)
	}
	if _, _, err := ix.FindG0(nil); err == nil {
		t.Fatal("empty query must fail")
	}
	if _, _, err := ix.FindG0([]int{99}); err == nil {
		t.Fatal("out-of-range query must fail")
	}
	if _, _, err := ix.FindG0([]int{4}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("isolated query vertex: err = %v", err)
	}
}

func TestFindG0MatchesReference(t *testing.T) {
	// FindG0 must agree with the index-free binary search over
	// truss.ConnectedKTruss on both k and the vertex set.
	for seed := int64(0); seed < 15; seed++ {
		g := randomGraph(seed, 30, 0.25)
		d := truss.Decompose(g)
		ix := BuildFromDecomposition(g, d)
		rng := rand.New(rand.NewSource(seed + 1000))
		for trial := 0; trial < 8; trial++ {
			q := []int{rng.Intn(30), rng.Intn(30)}
			want, wantK, wantErr := truss.MaxConnectedKTruss(g, d, q)
			got, gotK, gotErr := ix.FindG0(q)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d q=%v: err mismatch: %v vs %v", seed, q, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if wantK != gotK {
				t.Fatalf("seed %d q=%v: k=%d, want %d", seed, q, gotK, wantK)
			}
			if got.N() != want.N() || got.M() != want.M() {
				t.Fatalf("seed %d q=%v: G0 %d/%d nodes %d/%d edges", seed, q,
					got.N(), want.N(), got.M(), want.M())
			}
			for _, v := range want.Vertices() {
				if !got.Present(v) {
					t.Fatalf("seed %d q=%v: vertex %d missing", seed, q, v)
				}
			}
		}
	}
}

func TestFindKTruss(t *testing.T) {
	g := paperGraph()
	ix := Build(g)
	// Fixed k=2 for Q={q1,q2,q3} spans the entire graph (t included).
	mu, err := ix.FindKTruss([]int{0, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mu.N() != 12 {
		t.Fatalf("2-truss N = %d, want 12", mu.N())
	}
	// Fixed k=4 matches FindG0's answer.
	mu4, err := ix.FindKTruss([]int{0, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mu4.N() != 11 {
		t.Fatalf("4-truss N = %d, want 11", mu4.N())
	}
	// k=5 exceeds every vertex trussness.
	if _, err := ix.FindKTruss([]int{0, 1, 2}, 5); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("k=5: err = %v", err)
	}
	// Query split across 4-truss components at k=4.
	if _, err := ix.FindKTruss([]int{0, 11}, 4); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("split query: err = %v", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := randomGraph(5, 40, 0.2)
	ix := Build(g)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxTruss() != ix.MaxTruss() {
		t.Fatalf("maxTruss = %d, want %d", back.MaxTruss(), ix.MaxTruss())
	}
	if back.Graph().N() != g.N() || back.Graph().M() != g.M() {
		t.Fatal("graph shape lost in round trip")
	}
	g.ForEachEdge(func(u, v int) {
		if back.EdgeTruss(u, v) != ix.EdgeTruss(u, v) {
			t.Fatalf("τ(%d,%d) = %d, want %d", u, v, back.EdgeTruss(u, v), ix.EdgeTruss(u, v))
		}
	})
	// The restored index must answer queries identically.
	q := []int{0, 1}
	m1, k1, e1 := ix.FindG0(q)
	m2, k2, e2 := back.FindG0(q)
	if (e1 == nil) != (e2 == nil) {
		t.Fatalf("FindG0 err mismatch: %v vs %v", e1, e2)
	}
	if e1 == nil && (k1 != k2 || m1.N() != m2.N() || m1.M() != m2.M()) {
		t.Fatal("FindG0 answers differ after round trip")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestApproxBytesPositive(t *testing.T) {
	ix := Build(paperGraph())
	if ix.ApproxBytes() <= ix.Graph().ApproxBytes()/2 {
		t.Fatalf("index bytes %d suspiciously small vs graph %d",
			ix.ApproxBytes(), ix.Graph().ApproxBytes())
	}
}
