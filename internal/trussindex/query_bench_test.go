package trussindex

import (
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The query benchmarks run on the same generated 59k-edge workload as the
// decomposition/peeling benchmarks (BENCH_pr1.json), so the BENCH_pr*.json
// trajectory stays comparable across PRs.
var (
	queryBenchIx *Index
	queryBenchG  *graph.Graph
	queryBenchQ  []int
)

func queryBenchSetup(b *testing.B) (*Index, []int) {
	b.Helper()
	if queryBenchIx == nil {
		g, truth := gen.CommunityGraph(gen.CommunityParams{
			N: 9000, NumCommunities: 550, MinSize: 5, MaxSize: 32,
			Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 4500,
			Hubs: 5, HubDegree: 110, PlantedClique: 22, Seed: 0x50C1,
		})
		best := truth[0]
		for _, c := range truth {
			if len(c) > len(best) {
				best = c
			}
		}
		queryBenchG = g
		queryBenchIx = Build(g)
		queryBenchQ = []int{best[0], best[len(best)/2], best[len(best)-1]}
	}
	return queryBenchIx, queryBenchQ
}

func BenchmarkBuildIndex(b *testing.B) {
	ix, _ := queryBenchSetup(b)
	g, d := ix.Graph(), ix.Decomposition()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromDecomposition(g, d)
	}
}

// BenchmarkBuildIndexSortSlice measures the seed's per-vertex
// sort.Slice-with-closures build strategy (reimplemented here as the
// reference) against the counting-sort build above.
func BenchmarkBuildIndexSortSlice(b *testing.B) {
	ix, _ := queryBenchSetup(b)
	g, d := ix.Graph(), ix.Decomposition()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nbrOut := make([][]int32, g.N())
		tsOut := make([][]int32, g.N())
		for v := 0; v < g.N(); v++ {
			src := g.Neighbors(v)
			srcIDs := g.NeighborEdgeIDs(v)
			nb := make([]int32, len(src))
			copy(nb, src)
			ts := make([]int32, len(nb))
			for i := range nb {
				ts[i] = d.Truss[srcIDs[i]]
			}
			idx := make([]int, len(nb))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, c int) bool {
				ia, ic := idx[a], idx[c]
				if ts[ia] != ts[ic] {
					return ts[ia] > ts[ic]
				}
				return nb[ia] < nb[ic]
			})
			sortedNb := make([]int32, len(nb))
			sortedTs := make([]int32, len(nb))
			for i, j := range idx {
				sortedNb[i] = nb[j]
				sortedTs[i] = ts[j]
			}
			nbrOut[v] = sortedNb
			tsOut[v] = sortedTs
		}
		benchSink = nbrOut
		benchSink2 = tsOut
	}
}

var benchSink, benchSink2 [][]int32

func BenchmarkFindG0(b *testing.B) {
	ix, q := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu, _, err := ix.FindG0(q)
		if err != nil {
			b.Fatal(err)
		}
		if mu.N() == 0 {
			b.Fatal("empty G0")
		}
	}
}

func BenchmarkFindKTruss(b *testing.B) {
	ix, q := queryBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu, err := ix.FindKTruss(q, 4)
		if err != nil {
			b.Fatal(err)
		}
		if mu.N() == 0 {
			b.Fatal("empty k-truss")
		}
	}
}
