package trussindex

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func put(buf *bytes.Buffer, x uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	buf.Write(b[:n])
}

// expectCorrupt asserts that decoding fails with the typed ErrCorrupt
// sentinel (never a panic, never success).
func expectCorrupt(t *testing.T, raw []byte, what string) {
	t.Helper()
	ix, err := ReadFrom(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("%s: accepted (n=%d)", what, ix.Graph().N())
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: error %v does not wrap ErrCorrupt", what, err)
	}
}

func TestReadFromRejectsCorruptHeaders(t *testing.T) {
	// Huge n.
	var b1 bytes.Buffer
	b1.WriteString(formatV2)
	put(&b1, 1<<63)
	put(&b1, 3)
	expectCorrupt(t, b1.Bytes(), "huge n")
	// maxTruss > n.
	var b2 bytes.Buffer
	b2.WriteString(formatV2)
	put(&b2, 4)
	put(&b2, 1<<31)
	expectCorrupt(t, b2.Bytes(), "huge maxTruss")
	// m impossible for n.
	var b3 bytes.Buffer
	b3.WriteString(formatV2)
	put(&b3, 4) // n
	put(&b3, 2) // maxTruss
	put(&b3, 7) // m > 4*3/2
	expectCorrupt(t, b3.Bytes(), "impossible edge count")
	// n=0 with a huge m: must be rejected, not wrap negative and skip the
	// consistency check.
	var b3b bytes.Buffer
	b3b.WriteString(formatV2)
	put(&b3b, 0)     // n
	put(&b3b, 0)     // maxTruss
	put(&b3b, 1<<63) // m
	expectCorrupt(t, b3b.Bytes(), "n=0 with nonzero m")
	// Declared m disagreeing with the adjacency.
	var b4 bytes.Buffer
	b4.WriteString(formatV2)
	put(&b4, 2) // n
	put(&b4, 2) // maxTruss
	put(&b4, 0) // m: claims empty, adjacency below has one edge
	put(&b4, 1) // deg(0)
	put(&b4, 1) // neighbor 1
	put(&b4, 2) // truss 2
	put(&b4, 1) // deg(1)
	put(&b4, 0) // neighbor 0
	put(&b4, 2) // truss 2
	expectCorrupt(t, b4.Bytes(), "edge-count mismatch")
	// Asymmetric adjacency: vertex 1 lists 0, vertex 0 lists nothing.
	var b5 bytes.Buffer
	b5.WriteString(formatV2)
	put(&b5, 2) // n
	put(&b5, 2) // maxTruss
	put(&b5, 1) // m
	put(&b5, 0) // deg(0)
	put(&b5, 1) // deg(1)
	put(&b5, 0) // neighbor 0
	put(&b5, 2) // truss 2
	expectCorrupt(t, b5.Bytes(), "asymmetric adjacency")
	// Degree exceeding the vertex count: must fail fast, not drain the input.
	var b6 bytes.Buffer
	b6.WriteString(formatV2)
	put(&b6, 2)     // n
	put(&b6, 2)     // maxTruss
	put(&b6, 1)     // m
	put(&b6, 1<<40) // deg(0)
	expectCorrupt(t, b6.Bytes(), "absurd degree")
}

// TestReadFromVersions pins the version dispatch: v1 payloads (no edge
// count, no trailer) and v2 payloads (no trailer) stay readable, unknown
// versions are rejected with a version error rather than a generic bad-magic
// one, and non-CTCIDX input is bad magic.
func TestReadFromVersions(t *testing.T) {
	// A valid two-triangle serialization: 4 vertices, edges (0,1) (0,2)
	// (1,2) (1,3) (2,3), all trussness 3.
	ix := Build(paperGraph())
	var v3 bytes.Buffer
	if _, err := ix.WriteTo(&v3); err != nil {
		t.Fatal(err)
	}
	raw := v3.Bytes()
	if string(raw[:len(formatV3)]) != formatV3 {
		t.Fatalf("WriteTo emitted header %q", raw[:len(formatV3)])
	}
	// Strip the CRC trailer; what remains after the header is the shared
	// varint payload of v2/v3.
	payload := raw[len(formatV3) : len(raw)-4]

	// v2 = v2 header + payload.
	var v2 bytes.Buffer
	v2.WriteString(formatV2)
	v2.Write(payload)
	back, err := ReadFrom(&v2)
	if err != nil {
		t.Fatalf("v2 payload rejected: %v", err)
	}
	if back.Graph().M() != ix.Graph().M() || back.MaxTruss() != ix.MaxTruss() {
		t.Fatal("v2 round-trip mismatch")
	}

	// v1 = v1 header + payload minus the m varint.
	br := bytes.NewReader(payload)
	n, _ := binary.ReadUvarint(br)
	mt, _ := binary.ReadUvarint(br)
	m, _ := binary.ReadUvarint(br)
	var v1 bytes.Buffer
	v1.WriteString(formatV1)
	put(&v1, n)
	put(&v1, mt)
	v1.Write(payload[len(payload)-br.Len():])
	if int(m) != ix.Graph().M() {
		t.Fatalf("decoded m=%d, index has %d", m, ix.Graph().M())
	}
	back, err = ReadFrom(&v1)
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if back.Graph().M() != ix.Graph().M() || back.MaxTruss() != ix.MaxTruss() {
		t.Fatal("v1 round-trip mismatch")
	}

	// Unknown future version: clear version error, and NOT ErrCorrupt (the
	// file may be fine — this reader is just too old for it).
	var future bytes.Buffer
	future.WriteString("CTCIDX9\n")
	put(&future, 0)
	put(&future, 0)
	_, err = ReadFrom(&future)
	if err == nil || !strings.Contains(err.Error(), "unsupported index format version") {
		t.Fatalf("future version error = %v, want unsupported-version", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsupported version wrongly classified as corrupt: %v", err)
	}

	// Garbage: bad magic.
	_, err = ReadFrom(strings.NewReader("NOTANIDX........"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("garbage error = %v, want bad magic", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic should wrap ErrCorrupt, got %v", err)
	}
}

// TestReadFromTruncatedCorpus is the torn-file corpus: a valid v3 snapshot
// truncated at every possible byte offset must produce a clean ErrCorrupt,
// never a panic and never a successful decode. This is exactly the family
// of inputs a crash mid-checkpoint leaves behind.
func TestReadFromTruncatedCorpus(t *testing.T) {
	ix := Build(paperGraph())
	var full bytes.Buffer
	if _, err := ix.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	if _, err := ReadFrom(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine v3 snapshot rejected: %v", err)
	}
	for cut := 0; cut < len(raw); cut++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d/%d panicked: %v", cut, len(raw), r)
				}
			}()
			expectCorrupt(t, raw[:cut], "truncation")
		}()
	}
}

// TestReadFromBitFlipCorpus flips every byte of a valid v3 snapshot in turn.
// The CRC trailer guarantees no flip is silently accepted: any decode that
// does not fail structurally must fail the checksum. (Without the trailer, a
// flip inside a trussness varint would round-trip undetected.)
func TestReadFromBitFlipCorpus(t *testing.T) {
	ix := Build(paperGraph())
	var full bytes.Buffer
	if _, err := ix.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	mut := make([]byte, len(raw))
	for pos := 0; pos < len(raw); pos++ {
		copy(mut, raw)
		mut[pos] ^= 0x01
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("bit flip at %d panicked: %v", pos, r)
				}
			}()
			_, err := ReadFrom(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip at byte %d accepted silently", pos)
			}
		}()
	}
}
