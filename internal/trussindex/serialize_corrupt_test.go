package trussindex

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func put(buf *bytes.Buffer, x uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	buf.Write(b[:n])
}

func TestReadFromRejectsCorruptHeaders(t *testing.T) {
	// Huge n.
	var b1 bytes.Buffer
	b1.WriteString(formatV2)
	put(&b1, 1<<63)
	put(&b1, 3)
	if _, err := ReadFrom(&b1); err == nil {
		t.Fatal("huge n accepted")
	}
	// maxTruss > n.
	var b2 bytes.Buffer
	b2.WriteString(formatV2)
	put(&b2, 4)
	put(&b2, 1<<31)
	if _, err := ReadFrom(&b2); err == nil {
		t.Fatal("huge maxTruss accepted")
	}
	// m impossible for n.
	var b3 bytes.Buffer
	b3.WriteString(formatV2)
	put(&b3, 4) // n
	put(&b3, 2) // maxTruss
	put(&b3, 7) // m > 4*3/2
	if _, err := ReadFrom(&b3); err == nil {
		t.Fatal("impossible edge count accepted")
	}
	// n=0 with a huge m: must be rejected, not wrap negative and skip the
	// consistency check.
	var b3b bytes.Buffer
	b3b.WriteString(formatV2)
	put(&b3b, 0)     // n
	put(&b3b, 0)     // maxTruss
	put(&b3b, 1<<63) // m
	if _, err := ReadFrom(&b3b); err == nil {
		t.Fatal("n=0 with nonzero edge count accepted")
	}
	// Declared m disagreeing with the adjacency.
	var b4 bytes.Buffer
	b4.WriteString(formatV2)
	put(&b4, 2) // n
	put(&b4, 2) // maxTruss
	put(&b4, 0) // m: claims empty, adjacency below has one edge
	put(&b4, 1) // deg(0)
	put(&b4, 1) // neighbor 1
	put(&b4, 2) // truss 2
	put(&b4, 1) // deg(1)
	put(&b4, 0) // neighbor 0
	put(&b4, 2) // truss 2
	if _, err := ReadFrom(&b4); err == nil {
		t.Fatal("edge-count mismatch accepted")
	}
	// Asymmetric adjacency: vertex 1 lists 0, vertex 0 lists nothing.
	var b5 bytes.Buffer
	b5.WriteString(formatV2)
	put(&b5, 2) // n
	put(&b5, 2) // maxTruss
	put(&b5, 1) // m
	put(&b5, 0) // deg(0)
	put(&b5, 1) // deg(1)
	put(&b5, 0) // neighbor 0
	put(&b5, 2) // truss 2
	if _, err := ReadFrom(&b5); err == nil {
		t.Fatal("asymmetric adjacency accepted")
	}
}

// TestReadFromVersions pins the version dispatch: v1 payloads (no edge
// count) stay readable, unknown versions are rejected with a version error
// rather than a generic bad-magic one, and non-CTCIDX input is bad magic.
func TestReadFromVersions(t *testing.T) {
	// A valid two-triangle v1 serialization: 4 vertices, edges (0,1) (0,2)
	// (1,2) (1,3) (2,3), all trussness 3.
	ix := Build(paperGraph())
	var v2 bytes.Buffer
	if _, err := ix.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 bytes as v1: swap the header and drop the m varint.
	raw := v2.Bytes()
	if string(raw[:len(formatV2)]) != formatV2 {
		t.Fatalf("WriteTo emitted header %q", raw[:len(formatV2)])
	}
	rest := raw[len(formatV2):]
	// Skip n and maxTruss, then drop the m varint that follows.
	br := bytes.NewReader(rest)
	n, _ := binary.ReadUvarint(br)
	mt, _ := binary.ReadUvarint(br)
	m, _ := binary.ReadUvarint(br)
	var v1 bytes.Buffer
	v1.WriteString(formatV1)
	put(&v1, n)
	put(&v1, mt)
	v1.Write(rest[len(rest)-br.Len():])
	if int(m) != ix.Graph().M() {
		t.Fatalf("decoded m=%d, index has %d", m, ix.Graph().M())
	}
	back, err := ReadFrom(&v1)
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if back.Graph().M() != ix.Graph().M() || back.MaxTruss() != ix.MaxTruss() {
		t.Fatal("v1 round-trip mismatch")
	}

	// Unknown future version: clear version error.
	var future bytes.Buffer
	future.WriteString("CTCIDX9\n")
	put(&future, 0)
	put(&future, 0)
	_, err = ReadFrom(&future)
	if err == nil || !strings.Contains(err.Error(), "unsupported index format version") {
		t.Fatalf("future version error = %v, want unsupported-version", err)
	}

	// Garbage: bad magic.
	_, err = ReadFrom(strings.NewReader("NOTANIDX........"))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("garbage error = %v, want bad magic", err)
	}
}
