package trussindex

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func put(buf *bytes.Buffer, x uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	buf.Write(b[:n])
}

func TestReadFromRejectsCorruptHeaders(t *testing.T) {
	// Huge n.
	var b1 bytes.Buffer
	b1.WriteString(magic)
	put(&b1, 1<<63)
	put(&b1, 3)
	if _, err := ReadFrom(&b1); err == nil {
		t.Fatal("huge n accepted")
	}
	// maxTruss > n.
	var b2 bytes.Buffer
	b2.WriteString(magic)
	put(&b2, 4)
	put(&b2, 1<<31)
	if _, err := ReadFrom(&b2); err == nil {
		t.Fatal("huge maxTruss accepted")
	}
	// Asymmetric adjacency: vertex 1 lists 0, vertex 0 lists nothing.
	var b3 bytes.Buffer
	b3.WriteString(magic)
	put(&b3, 2) // n
	put(&b3, 2) // maxTruss
	put(&b3, 0) // deg(0)
	put(&b3, 1) // deg(1)
	put(&b3, 0) // neighbor 0
	put(&b3, 2) // truss 2
	if _, err := ReadFrom(&b3); err == nil {
		t.Fatal("asymmetric adjacency accepted")
	}
}
