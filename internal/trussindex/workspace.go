package trussindex

import (
	"context"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/truss"
)

// Process-global workspace-pool counters. Package-level (not per-Index) so
// they stay monotone across epoch publishes, which retire and rebuild the
// index — a requirement for exposing them as Prometheus counters.
var (
	poolAcquires atomic.Int64 // AcquireWorkspace calls
	poolFresh    atomic.Int64 // acquires that missed the pool and allocated
	poolReleases atomic.Int64 // Release calls
)

// ReadPoolStats returns the cumulative workspace-pool counters: total
// acquires, pool misses that allocated a fresh workspace, and releases.
func ReadPoolStats() (acquires, fresh, releases int64) {
	return poolAcquires.Load(), poolFresh.Load(), poolReleases.Load()
}

// Workspace is the pooled per-query scratch of an Index: epoch-stamped
// visit marks and value arrays, a stamped union-find, reusable BFS queues
// and level buckets, resettable shell overlays of the indexed graph, and
// the dense per-edge buffers of the peeling loops. All resets are
// O(touched) — an epoch bump for the stamps, touched-word clearing for the
// shells — so steady-state queries neither allocate nor scan O(n + m).
//
// Ownership rules:
//   - A Workspace belongs to the Index that created it and must only be
//     passed to that index's methods (and to core/steiner helpers running a
//     query against it).
//   - A Workspace serves one query at a time; concurrent queries each
//     acquire their own (AcquireWorkspace is cheap after warm-up).
//   - Query results never alias workspace storage: anything returned to the
//     caller is freshly allocated, so releasing the workspace — or issuing
//     the next query — cannot corrupt earlier results.
//   - Release returns the workspace to the pool; using it afterwards is a
//     data race.
type Workspace struct {
	ix *Index

	// ctx is the cancellation hook of the query currently running on this
	// workspace (nil when the query is not cancellable). Deep query loops
	// poll Canceled() at peel-round/BFS-level granularity instead of
	// threading a context through every helper signature.
	ctx context.Context

	// reused records whether this workspace came warm from the pool (true)
	// or was freshly allocated by this acquire (false); surfaced in
	// per-query stats.
	reused bool

	// StampA/StampB/StampC are independent vertex-indexed stamps. Query code
	// pairs them with ValA/ValB/ValC: the value at v is meaningful iff the
	// paired stamp marks v in its current epoch. Three suffice because no
	// query path needs more than three simultaneous vertex maps (e.g.
	// greedyPeel: BFS distances + query membership + live-list positions).
	StampA, StampB, StampC *graph.Stamp
	ValA, ValB, ValC       []int32

	// QueueA/QueueB are reusable vertex queues (BFS frontiers, victim
	// lists). Code that grows them must store the grown slice back.
	QueueA, QueueB []int32

	// Victims and Hist are the peeling loop's per-iteration victim list and
	// per-level query-distance history.
	Victims []int
	Hist    []int32

	// SumDist backs the §5.2 peeling tie-break (Σ_q dist(v, q)).
	SumDist []int64

	// Sup is the dense per-edge support buffer of the peeling loops and
	// EdgeVal the per-edge deletion-stamp buffer, both indexed by base edge
	// IDs and paired with EdgeStamp.
	EdgeStamp *graph.Stamp
	EdgeVal   []int32
	Sup       []int32

	// Maintain is the reusable scratch of the k-truss maintenance cascade.
	Maintain truss.MaintainScratch

	// dsu is the stamped union-find of FindG0.
	dsu stampedDSU

	// levels holds FindG0's per-trussness schedule buckets.
	levels [][]int32

	// shells are resettable edge-bitset overlays of the indexed graph,
	// handed out round-robin by Shell().
	shells   [2]*graph.Mutable
	shellCur int

	// cloneBuf backs CloneFor: a plain overlay of the indexed graph reused
	// as the destructive working copy of the peeling loops.
	cloneBuf *graph.Mutable

	// countBuf backs CountBuf.
	countBuf []int32
}

// AcquireWorkspace returns a workspace for this index, creating one if the
// pool is empty. Pair it with Release.
func (ix *Index) AcquireWorkspace() *Workspace {
	poolAcquires.Add(1)
	if ws, ok := ix.pool.Get().(*Workspace); ok {
		ws.reused = true
		return ws
	}
	poolFresh.Add(1)
	n := ix.g.N()
	return &Workspace{
		ix:     ix,
		StampA: graph.NewStamp(n),
		StampB: graph.NewStamp(n),
		StampC: graph.NewStamp(n),
		ValA:   make([]int32, n),
		ValB:   make([]int32, n),
		ValC:   make([]int32, n),
	}
}

// Release returns the workspace to its index's pool, dropping the query
// context so a pooled workspace never pins a caller's context alive.
func (ws *Workspace) Release() {
	poolReleases.Add(1)
	ws.ctx = nil
	ws.ix.pool.Put(ws)
}

// SetContext installs the cancellation context for the query about to run.
// A context that can never be cancelled (context.Background and friends,
// whose Done channel is nil) is stored as nil so Canceled stays a single
// nil check on the uncancellable fast path.
func (ws *Workspace) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		ws.ctx = nil
		return
	}
	ws.ctx = ctx
}

// Canceled returns the installed context's error (context.Canceled or
// context.DeadlineExceeded) once it fires, nil otherwise. Query loops call
// this every peel round / BFS level / cancelCheckInterval vertices — often
// enough for prompt cancellation, rarely enough to stay off the per-edge
// hot path.
func (ws *Workspace) Canceled() error {
	if ws.ctx == nil {
		return nil
	}
	return ws.ctx.Err()
}

// Reused reports whether this workspace came warm from the pool at its last
// acquire (false = this query paid the one-time allocation cost).
func (ws *Workspace) Reused() bool { return ws.reused }

// cancelCheckInterval is the vertex-processing stride between Canceled()
// polls inside BFS-style loops: large enough that the poll (one atomic load
// behind ctx.Err) vanishes against the per-vertex work, small enough that
// cancellation latency stays sub-millisecond on any graph.
const cancelCheckInterval = 1 << 12

// Index returns the owning index.
func (ws *Workspace) Index() *Index { return ws.ix }

// SumDist64 returns the pooled n-sized int64 buffer, allocating it on first
// use.
func (ws *Workspace) SumDist64() []int64 {
	if ws.SumDist == nil {
		ws.SumDist = make([]int64, ws.ix.g.N())
	}
	return ws.SumDist
}

// EdgeScratch returns the pooled per-edge stamp, value and support buffers
// (each sized to the index's edge count), allocating them on first use.
func (ws *Workspace) EdgeScratch() (*graph.Stamp, []int32, []int32) {
	if ws.EdgeStamp == nil {
		m := ws.ix.g.M()
		ws.EdgeStamp = graph.NewStamp(m)
		ws.EdgeVal = make([]int32, m)
		ws.Sup = make([]int32, m)
	}
	return ws.EdgeStamp, ws.EdgeVal, ws.Sup
}

// Shell returns an empty resettable edge-bitset overlay of the indexed
// graph. Two shells are kept and handed out alternately, matching the worst
// simultaneous need of the query paths (e.g. greedyPeel's reconstruction
// overlay while FindG0's accumulator is still parked); a third concurrent
// request would reset the oldest shell, so callers must not hold more than
// two at once.
func (ws *Workspace) Shell() *graph.Mutable {
	i := ws.shellCur & 1
	ws.shellCur++
	if ws.shells[i] == nil {
		ws.shells[i] = graph.NewResettableShell(ws.ix.g)
		return ws.shells[i]
	}
	sh := ws.shells[i]
	sh.ResetShell()
	return sh
}

// ShellFor returns an empty resettable overlay shell of the given base
// graph: the pooled shell when base is the indexed graph, or a fresh one
// otherwise (LCTC peels subgraphs of a per-query frozen expansion, whose
// overlays cannot outlive the query).
func (ws *Workspace) ShellFor(base *graph.Graph) *graph.Mutable {
	if base == ws.ix.g {
		return ws.Shell()
	}
	return graph.NewResettableShell(base)
}

// CloneFor returns a destructive working copy of mu: into the pooled clone
// buffer when mu wraps the indexed graph, or a fresh Clone otherwise.
func (ws *Workspace) CloneFor(mu *graph.Mutable) *graph.Mutable {
	if mu.Base() != ws.ix.g {
		return mu.Clone()
	}
	if ws.cloneBuf == nil {
		ws.cloneBuf = graph.NewMutableShell(ws.ix.g)
	}
	mu.CloneInto(ws.cloneBuf)
	return ws.cloneBuf
}

// CountBuf returns a zeroed int32 buffer of the given length, reused
// across queries (counting-sort buckets and similar small scratch).
func (ws *Workspace) CountBuf(n int) []int32 {
	if cap(ws.countBuf) < n {
		ws.countBuf = make([]int32, n)
		return ws.countBuf
	}
	buf := ws.countBuf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// levelQueues returns the per-level schedule buckets for levels [0, k],
// each truncated to empty. Buckets above k may hold stale leftovers from an
// earlier query that descended past its stopping level; they are truncated
// lazily the next time a larger k needs them.
func (ws *Workspace) levelQueues(k int32) [][]int32 {
	if int(k)+1 > len(ws.levels) {
		grown := make([][]int32, k+1)
		copy(grown, ws.levels)
		ws.levels = grown
	}
	for l := int32(0); l <= k; l++ {
		if ws.levels[l] != nil {
			ws.levels[l] = ws.levels[l][:0]
		}
	}
	return ws.levels[:k+1]
}

// dsuReset returns the stamped union-find, all singletons.
func (ws *Workspace) dsuReset() *stampedDSU {
	d := &ws.dsu
	if d.stamp == nil {
		n := ws.ix.g.N()
		d.stamp = graph.NewStamp(n)
		d.parent = make([]int32, n)
		d.rank = make([]int8, n)
	}
	d.stamp.Next()
	return d
}

// stampedDSU is a union-find over vertex IDs whose "all singletons" reset
// is an epoch bump: a vertex not marked in the current epoch is implicitly
// its own root with rank zero.
type stampedDSU struct {
	stamp  *graph.Stamp
	parent []int32
	rank   []int8
}

func (d *stampedDSU) ensure(x int32) {
	if d.stamp.Visit(x) {
		d.parent[x] = x
		d.rank[x] = 0
	}
}

func (d *stampedDSU) find(x int32) int32 {
	d.ensure(x)
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *stampedDSU) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

func (d *stampedDSU) sameSet(q []int) bool {
	if len(q) == 0 {
		return true
	}
	r := d.find(int32(q[0]))
	for _, v := range q[1:] {
		if d.find(int32(v)) != r {
			return false
		}
	}
	return true
}
