// Package trussindex implements the compact truss index of Section 4.3 of
// the paper and the FindG0 procedure (Algorithm 2) that retrieves the
// maximal connected k-truss containing a query with the largest k in
// O(|E(G0)|) time.
//
// The index stores, per vertex, the neighbor list sorted by descending edge
// trussness (with a parallel trussness array standing in for the paper's
// "level marks"), the vertex trussness, and an edge→trussness hash table.
package trussindex

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/truss"
)

// ErrNoCommunity is returned when the query vertices are not all contained
// in any single connected k-truss for k >= 2.
var ErrNoCommunity = errors.New("trussindex: no connected k-truss contains the query vertices")

// Index is the simple truss index: adjacency sorted by edge trussness plus
// vertex trussness and a dense edge-trussness array indexed by the graph's
// edge IDs.
type Index struct {
	g *graph.Graph
	// nbr[v] lists v's neighbors sorted by descending τ(v,u), ties by
	// ascending neighbor ID; nbrTruss[v][i] = τ(v, nbr[v][i]).
	nbr      [][]int32
	nbrTruss [][]int32
	// vertexTruss[v] = τ(v); maxTruss = τ̄(∅).
	vertexTruss []int32
	maxTruss    int32
	// edgeTruss[e] = τ of the edge with ID e in g.
	edgeTruss []int32
}

// Build constructs the index for g, running a truss decomposition first.
func Build(g *graph.Graph) *Index {
	return BuildFromDecomposition(g, truss.Decompose(g))
}

// BuildFromDecomposition constructs the index from a precomputed
// decomposition of g.
func BuildFromDecomposition(g *graph.Graph, d *truss.Decomposition) *Index {
	ix := &Index{
		g:           g,
		nbr:         make([][]int32, g.N()),
		nbrTruss:    make([][]int32, g.N()),
		vertexTruss: d.VertexTruss,
		maxTruss:    d.MaxTruss,
	}
	if d.G == g {
		ix.edgeTruss = d.Truss
	} else {
		// d describes a structurally identical graph with its own edge-ID
		// space (e.g. a Dynamic snapshot); remap through packed keys.
		ix.edgeTruss = make([]int32, g.M())
		for e := int32(0); e < int32(g.M()); e++ {
			ix.edgeTruss[e] = d.EdgeTrussKey(g.EdgeKeyOf(e))
		}
	}
	for v := 0; v < g.N(); v++ {
		src := g.Neighbors(v)
		srcIDs := g.NeighborEdgeIDs(v)
		nb := make([]int32, len(src))
		copy(nb, src)
		ts := make([]int32, len(nb))
		for i := range nb {
			ts[i] = ix.edgeTruss[srcIDs[i]]
		}
		idx := make([]int, len(nb))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			ia, ib := idx[a], idx[b]
			if ts[ia] != ts[ib] {
				return ts[ia] > ts[ib]
			}
			return nb[ia] < nb[ib]
		})
		sortedNb := make([]int32, len(nb))
		sortedTs := make([]int32, len(nb))
		for i, j := range idx {
			sortedNb[i] = nb[j]
			sortedTs[i] = ts[j]
		}
		ix.nbr[v] = sortedNb
		ix.nbrTruss[v] = sortedTs
	}
	return ix
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// MaxTruss returns τ̄(∅), the maximum edge trussness in the graph.
func (ix *Index) MaxTruss() int32 { return ix.maxTruss }

// VertexTruss returns τ(v), or 0 for an isolated or out-of-range vertex.
func (ix *Index) VertexTruss(v int) int32 {
	if v < 0 || v >= len(ix.vertexTruss) {
		return 0
	}
	return ix.vertexTruss[v]
}

// EdgeTruss returns τ(u,v), or 0 if the edge does not exist.
func (ix *Index) EdgeTruss(u, v int) int32 {
	e := ix.g.EdgeID(u, v)
	if e < 0 {
		return 0
	}
	return ix.edgeTruss[e]
}

// EdgeTrussTable materializes the edge→trussness table as a map keyed by
// packed edge keys — a compatibility adapter over the dense array; O(m) per
// call.
func (ix *Index) EdgeTrussTable() map[graph.EdgeKey]int32 {
	out := make(map[graph.EdgeKey]int32, len(ix.edgeTruss))
	for e, t := range ix.edgeTruss {
		out[ix.g.EdgeKeyOf(int32(e))] = t
	}
	return out
}

// Decomposition reconstitutes a truss.Decomposition view of the index. The
// dense arrays are shared, not copied.
func (ix *Index) Decomposition() *truss.Decomposition {
	return &truss.Decomposition{
		G:           ix.g,
		Truss:       ix.edgeTruss,
		VertexTruss: ix.vertexTruss,
		MaxTruss:    ix.maxTruss,
	}
}

// ForEachNeighborAtLeast calls fn for every neighbor u of v with
// τ(v,u) >= k. Thanks to the trussness-sorted adjacency this touches only
// the qualifying prefix.
func (ix *Index) ForEachNeighborAtLeast(v int, k int32, fn func(u int)) {
	if v < 0 || v >= len(ix.nbr) {
		return
	}
	nb, ts := ix.nbr[v], ix.nbrTruss[v]
	for i := 0; i < len(nb) && ts[i] >= k; i++ {
		fn(int(nb[i]))
	}
}

// Thresholds returns the distinct edge trussness values present in the
// graph, in descending order. One pass over the dense trussness array into a
// presence table — no per-call hashing or sorting.
func (ix *Index) Thresholds() []int32 {
	if ix.maxTruss == 0 {
		return nil
	}
	seen := make([]bool, ix.maxTruss+1)
	for _, t := range ix.edgeTruss {
		if t >= 0 && t <= ix.maxTruss {
			seen[t] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for t := ix.maxTruss; t >= 2; t-- {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}

// dsu is a union-find over vertex IDs used to check query connectivity
// incrementally while FindG0 inserts edges.
type dsu struct {
	parent []int32
	rank   []int8
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *dsu) find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int32) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

func (d *dsu) sameSet(q []int) bool {
	if len(q) == 0 {
		return true
	}
	r := d.find(int32(q[0]))
	for _, v := range q[1:] {
		if d.find(int32(v)) != r {
			return false
		}
	}
	return true
}

// FindG0 implements Algorithm 2: starting from the Lemma-1 level
// k = min_q τ(q), it inserts edges in decreasing order of trussness,
// expanding BFS-style from the query vertices, and stops at the first level
// where the query vertices become connected. It returns the connected
// component containing Q of the accumulated k-truss, together with k.
func (ix *Index) FindG0(q []int) (*graph.Mutable, int32, error) {
	if len(q) == 0 {
		return nil, 0, errors.New("trussindex: empty query")
	}
	for _, v := range q {
		if v < 0 || v >= ix.g.N() {
			return nil, 0, fmt.Errorf("trussindex: query vertex %d out of range", v)
		}
		if ix.vertexTruss[v] == 0 {
			return nil, 0, fmt.Errorf("%w: vertex %d has no edges", ErrNoCommunity, v)
		}
	}
	k := ix.vertexTruss[q[0]]
	for _, v := range q[1:] {
		if t := ix.vertexTruss[v]; t < k {
			k = t
		}
	}
	n := ix.g.N()
	// g0 is assembled purely out of base-graph edges, so it is an edge-
	// bitset overlay of the indexed graph: AddEdge revives bits, no hashing.
	g0 := graph.NewMutableShell(ix.g)
	for _, v := range q {
		g0.EnsureVertex(v)
	}
	uf := newDSU(n)
	// pos[v]: how many of v's trussness-sorted edges have been inserted.
	pos := make([]int32, n)
	// levels[l] holds vertices scheduled for processing at level l;
	// scheduledAt[v] dedups scheduling (levels strictly decrease per vertex).
	levels := make([][]int32, k+1)
	scheduledAt := make([]int32, n)
	for i := range scheduledAt {
		scheduledAt[i] = -1
	}
	schedule := func(v int, l int32) {
		if l < 2 || scheduledAt[v] == l {
			return
		}
		scheduledAt[v] = l
		levels[l] = append(levels[l], int32(v))
	}
	for _, v := range q {
		schedule(v, k)
	}
	for ; k >= 2; k-- {
		// BFS within the level: processing a vertex may append newly
		// discovered vertices to the same level's queue.
		queue := levels[k]
		levels[k] = nil
		for head := 0; head < len(queue); head++ {
			v := int(queue[head])
			nb, ts := ix.nbr[v], ix.nbrTruss[v]
			for pos[v] < int32(len(nb)) && ts[pos[v]] >= k {
				u := int(nb[pos[v]])
				pos[v]++
				if g0.AddEdge(v, u) {
					uf.union(int32(v), int32(u))
				}
				if scheduledAt[u] != k {
					scheduledAt[u] = k
					queue = append(queue, int32(u))
				}
			}
			// Line 12-13: remember the next level at which v has edges.
			if pos[v] < int32(len(nb)) {
				schedule(v, ts[pos[v]])
			}
		}
		if uf.sameSet(q) {
			comp := graph.Component(g0, q[0])
			return graph.InducedMutable(g0, comp), k, nil
		}
	}
	return nil, 0, ErrNoCommunity
}

// FindKTruss returns the connected component containing Q of the maximal
// k-truss for the given fixed k (used by the Exp-5 fixed-trussness variant),
// or ErrNoCommunity if Q is not contained in one.
func (ix *Index) FindKTruss(q []int, k int32) (*graph.Mutable, error) {
	if len(q) == 0 {
		return nil, errors.New("trussindex: empty query")
	}
	for _, v := range q {
		if v < 0 || v >= ix.g.N() || ix.vertexTruss[v] < k {
			return nil, fmt.Errorf("%w (k=%d)", ErrNoCommunity, k)
		}
	}
	// BFS from q[0] using only edges with trussness >= k.
	n := ix.g.N()
	seen := make([]bool, n)
	seen[q[0]] = true
	queue := []int32{int32(q[0])}
	mu := graph.NewMutableShell(ix.g)
	mu.EnsureVertex(q[0])
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		nb, ts := ix.nbr[v], ix.nbrTruss[v]
		for i := 0; i < len(nb) && ts[i] >= k; i++ {
			u := int(nb[i])
			mu.AddEdge(v, u)
			if !seen[u] {
				seen[u] = true
				queue = append(queue, int32(u))
			}
		}
	}
	for _, v := range q[1:] {
		if !seen[v] {
			return nil, fmt.Errorf("%w (k=%d)", ErrNoCommunity, k)
		}
	}
	return mu, nil
}
