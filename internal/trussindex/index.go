// Package trussindex implements the compact truss index of Section 4.3 of
// the paper and the FindG0 procedure (Algorithm 2) that retrieves the
// maximal connected k-truss containing a query with the largest k in
// O(|E(G0)|) time.
//
// The index is a true CSR structure: one flat arc array per attribute
// (neighbor, trussness, base edge ID) with a shared offset table, each
// vertex's run sorted by descending edge trussness (the paper's "level
// marks"), plus the vertex trussness and a dense edge→trussness array
// indexed by the base graph's edge IDs.
package trussindex

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/truss"
)

// ErrNoCommunity is returned when the query vertices are not all contained
// in any single connected k-truss for k >= 2.
var ErrNoCommunity = errors.New("trussindex: no connected k-truss contains the query vertices")

// Index is the simple truss index: trussness-sorted CSR adjacency plus
// vertex trussness and a dense edge-trussness array indexed by the graph's
// edge IDs. An Index is immutable after construction and safe for
// concurrent queries; per-query scratch lives in pooled Workspaces.
type Index struct {
	g *graph.Graph
	// off[v]..off[v+1] bounds v's run in the flat arc arrays below. The runs
	// coincide with the base graph's CSR runs (same degrees), but each run is
	// re-sorted by descending τ(v,u), ties by ascending neighbor ID.
	off []int32
	// nbr[i] is the neighbor of the arc at i; nbrTruss[i] = τ of that edge;
	// nbrEID[i] = the base graph's dense edge ID of that edge.
	nbr      []int32
	nbrTruss []int32
	nbrEID   []int32
	// vertexTruss[v] = τ(v); maxTruss = τ̄(∅).
	vertexTruss []int32
	maxTruss    int32
	// edgeTruss[e] = τ of the edge with ID e in g.
	edgeTruss []int32
	// thresholds caches the distinct trussness values, descending.
	thresholds []int32

	pool sync.Pool // *Workspace
}

// Build constructs the index for g, running a truss decomposition first.
// The decomposition is the level-synchronous parallel peel for graphs above
// truss.ParallelThreshold edges (falling back to the serial bucket queue
// below it), so cold index builds scale with GOMAXPROCS.
func Build(g *graph.Graph) *Index {
	return BuildFromDecomposition(g, truss.DecomposeParallel(g))
}

// BuildFromDecomposition constructs the index from a precomputed
// decomposition of g.
func BuildFromDecomposition(g *graph.Graph, d *truss.Decomposition) *Index {
	ix := &Index{
		g:           g,
		vertexTruss: d.VertexTruss,
		maxTruss:    d.MaxTruss,
	}
	if d.G == g {
		ix.edgeTruss = d.Truss
	} else {
		// d describes a structurally identical graph with its own edge-ID
		// space (e.g. a Dynamic snapshot). Both graphs assign edge IDs in
		// ascending (min, max) key order, so when the edge sets match the ID
		// spaces coincide and one dense pass suffices; per-edge key lookups
		// are only the fallback for a foreign decomposition whose edge set
		// diverged.
		ix.edgeTruss = make([]int32, g.M())
		identical := d.G.M() == g.M()
		if identical {
			for e := int32(0); e < int32(g.M()); e++ {
				if g.EdgeKeyOf(e) != d.G.EdgeKeyOf(e) {
					identical = false
					break
				}
			}
		}
		if identical {
			copy(ix.edgeTruss, d.Truss)
		} else {
			for e := int32(0); e < int32(g.M()); e++ {
				ix.edgeTruss[e] = d.EdgeTrussKey(g.EdgeKeyOf(e))
			}
		}
	}
	ix.buildArcs()
	ix.thresholds = ix.computeThresholds()
	return ix
}

// buildArcs fills off/nbr/nbrTruss/nbrEID from the base CSR and edgeTruss: a
// per-vertex counting sort by trussness (descending, ties ascending neighbor
// — the base runs are already neighbor-sorted and the sort is stable), O(m)
// overall instead of the comparison sort's O(m log Δ). Vertex blocks are
// sharded over goroutines for large graphs, like graph.EdgeSupportsParallel.
func (ix *Index) buildArcs() {
	g := ix.g
	n := g.N()
	ix.off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ix.off[v+1] = ix.off[v] + int32(g.Degree(v))
	}
	arcs := int(ix.off[n])
	ix.nbr = make([]int32, arcs)
	ix.nbrTruss = make([]int32, arcs)
	ix.nbrEID = make([]int32, arcs)
	if arcs == 0 {
		return
	}
	if arcs < parallelBuildThreshold {
		ix.buildArcRange(0, n, make([]int32, ix.maxTruss+1))
		return
	}
	workers := runtime.GOMAXPROCS(0)
	const block = 256
	nblocks := (n + block - 1) / block
	if workers > nblocks {
		workers = nblocks
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cnt := make([]int32, ix.maxTruss+1)
			for {
				bi := int(atomic.AddInt64(&next, 1))
				if bi >= nblocks {
					return
				}
				lo := bi * block
				hi := lo + block
				if hi > n {
					hi = n
				}
				ix.buildArcRange(lo, hi, cnt)
			}
		}()
	}
	wg.Wait()
}

// parallelBuildThreshold is the arc count below which the goroutine fan-out
// of buildArcs costs more than it saves.
const parallelBuildThreshold = 1 << 15

// buildArcRange counting-sorts the arc runs of vertices [lo, hi). cnt is a
// scratch array of length maxTruss+1; only entries the vertex's trussness
// range touches are used and re-zeroed, so a worker reuses one allocation.
func (ix *Index) buildArcRange(lo, hi int, cnt []int32) {
	g := ix.g
	for v := lo; v < hi; v++ {
		nbrs := g.Neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		eids := g.NeighborEdgeIDs(v)
		mn, mx := int32(len(cnt)), int32(0)
		for _, e := range eids {
			t := ix.edgeTruss[e]
			cnt[t]++
			if t < mn {
				mn = t
			}
			if t > mx {
				mx = t
			}
		}
		// Turn counts into bucket start positions, highest trussness first.
		s := ix.off[v]
		for t := mx; t >= mn; t-- {
			c := cnt[t]
			cnt[t] = s
			s += c
		}
		for i, u := range nbrs {
			e := eids[i]
			t := ix.edgeTruss[e]
			d := cnt[t]
			cnt[t]++
			ix.nbr[d] = u
			ix.nbrTruss[d] = t
			ix.nbrEID[d] = e
		}
		for t := mx; t >= mn; t-- {
			cnt[t] = 0
		}
	}
}

// arcRange returns the bounds of v's run in the flat arc arrays.
func (ix *Index) arcRange(v int) (lo, hi int32) { return ix.off[v], ix.off[v+1] }

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// MaxTruss returns τ̄(∅), the maximum edge trussness in the graph.
func (ix *Index) MaxTruss() int32 { return ix.maxTruss }

// VertexTruss returns τ(v), or 0 for an isolated or out-of-range vertex.
func (ix *Index) VertexTruss(v int) int32 {
	if v < 0 || v >= len(ix.vertexTruss) {
		return 0
	}
	return ix.vertexTruss[v]
}

// EdgeTruss returns τ(u,v), or 0 if the edge does not exist.
func (ix *Index) EdgeTruss(u, v int) int32 {
	e := ix.g.EdgeID(u, v)
	if e < 0 {
		return 0
	}
	return ix.edgeTruss[e]
}

// EdgeTrussByID returns τ of the edge with dense ID e in the indexed graph.
func (ix *Index) EdgeTrussByID(e int32) int32 { return ix.edgeTruss[e] }

// Decomposition reconstitutes a truss.Decomposition view of the index. The
// dense arrays are shared, not copied.
func (ix *Index) Decomposition() *truss.Decomposition {
	return &truss.Decomposition{
		G:           ix.g,
		Truss:       ix.edgeTruss,
		VertexTruss: ix.vertexTruss,
		MaxTruss:    ix.maxTruss,
	}
}

// NeighborsAtLeast returns the prefix of v's trussness-sorted adjacency with
// τ(v,u) >= k, as parallel neighbor and base-edge-ID slices. The slices are
// shared with the index and must not be modified. The prefix boundary is
// found by binary search on the descending trussness run.
func (ix *Index) NeighborsAtLeast(v int, k int32) (nbrs, eids []int32) {
	if v < 0 || v+1 >= len(ix.off) {
		return nil, nil
	}
	lo, hi := ix.off[v], ix.off[v+1]
	ts := ix.nbrTruss[lo:hi]
	end := sort.Search(len(ts), func(i int) bool { return ts[i] < k })
	return ix.nbr[lo : lo+int32(end)], ix.nbrEID[lo : lo+int32(end)]
}

// ForEachNeighborAtLeast calls fn for every neighbor u of v with
// τ(v,u) >= k. Thanks to the trussness-sorted adjacency this touches only
// the qualifying prefix.
func (ix *Index) ForEachNeighborAtLeast(v int, k int32, fn func(u int)) {
	if v < 0 || v+1 >= len(ix.off) {
		return
	}
	lo, hi := ix.off[v], ix.off[v+1]
	for i := lo; i < hi && ix.nbrTruss[i] >= k; i++ {
		fn(int(ix.nbr[i]))
	}
}

// Thresholds returns the distinct edge trussness values present in the
// graph, in descending order. The slice is a fresh copy.
func (ix *Index) Thresholds() []int32 {
	return append([]int32(nil), ix.thresholds...)
}

// ThresholdsShared returns the cached distinct trussness values, descending.
// The slice is shared with the index and must not be modified; it exists so
// per-query metric construction does not allocate.
func (ix *Index) ThresholdsShared() []int32 { return ix.thresholds }

func (ix *Index) computeThresholds() []int32 {
	if ix.maxTruss == 0 {
		return nil
	}
	seen := make([]bool, ix.maxTruss+1)
	for _, t := range ix.edgeTruss {
		if t >= 0 && t <= ix.maxTruss {
			seen[t] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for t := ix.maxTruss; t >= 2; t-- {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}

// FindG0 implements Algorithm 2: starting from the Lemma-1 level
// k = min_q τ(q), it inserts edges in decreasing order of trussness,
// expanding BFS-style from the query vertices, and stops at the first level
// where the query vertices become connected. It returns the connected
// component containing Q of the accumulated k-truss, together with k.
//
// The returned Mutable is freshly allocated and owned by the caller; all
// intermediate scratch comes from the index's workspace pool, so the steady
// state allocates only the result.
func (ix *Index) FindG0(q []int) (*graph.Mutable, int32, error) {
	ws := ix.AcquireWorkspace()
	defer ws.Release()
	return ix.FindG0W(q, ws)
}

// FindG0W is FindG0 running on an explicit workspace (which must belong to
// this index).
func (ix *Index) FindG0W(q []int, ws *Workspace) (*graph.Mutable, int32, error) {
	if len(q) == 0 {
		return nil, 0, errors.New("trussindex: empty query")
	}
	for _, v := range q {
		if v < 0 || v >= ix.g.N() {
			return nil, 0, fmt.Errorf("trussindex: query vertex %d out of range", v)
		}
		if ix.vertexTruss[v] == 0 {
			return nil, 0, fmt.Errorf("%w: vertex %d has no edges", ErrNoCommunity, v)
		}
	}
	k := ix.vertexTruss[q[0]]
	for _, v := range q[1:] {
		if t := ix.vertexTruss[v]; t < k {
			k = t
		}
	}
	// g0 is assembled purely out of base-graph edges, so it is an edge-bitset
	// overlay of the indexed graph: AddEdgeByID revives bits, no hashing. The
	// shell is pooled and reset by touched-word tracking on Release.
	g0 := ws.Shell()
	uf := ws.dsuReset()
	// pos[v]: how many of v's trussness-sorted arcs have been consumed.
	pos, posStamp := ws.ValA, ws.StampA.Next()
	// scheduledAt[v] dedups level scheduling (levels strictly decrease per
	// vertex); levels[l] holds vertices scheduled for processing at level l.
	scheduledAt, schedStamp := ws.ValB, ws.StampB.Next()
	levels := ws.levelQueues(k)
	schedule := func(v int, l int32) {
		if l < 2 || (ws.StampB.Mark[v] == schedStamp && scheduledAt[v] == l) {
			return
		}
		ws.StampB.Mark[v] = schedStamp
		scheduledAt[v] = l
		levels[l] = append(levels[l], int32(v))
	}
	for _, v := range q {
		schedule(v, k)
	}
	for ; k >= 2; k-- {
		// BFS within the level: processing a vertex may append newly
		// discovered vertices to the same level's queue. Cancellation is
		// polled once per level and every cancelCheckInterval vertices
		// within it, so a cancelled query stops mid-level without paying a
		// per-edge check.
		queue := levels[k]
		for head := 0; head < len(queue); head++ {
			if head&(cancelCheckInterval-1) == 0 {
				if err := ws.Canceled(); err != nil {
					levels[k] = queue[:0]
					return nil, 0, err
				}
			}
			v := int(queue[head])
			lo, hi := ix.arcRange(v)
			p := lo
			if ws.StampA.Mark[v] == posStamp {
				p = pos[v]
			}
			for p < hi && ix.nbrTruss[p] >= k {
				u := int(ix.nbr[p])
				e := ix.nbrEID[p]
				p++
				if g0.AddEdgeByID(e) {
					uf.union(int32(v), int32(u))
				}
				if !(ws.StampB.Mark[u] == schedStamp && scheduledAt[u] == k) {
					ws.StampB.Mark[u] = schedStamp
					scheduledAt[u] = k
					queue = append(queue, int32(u))
				}
			}
			ws.StampA.Mark[v] = posStamp
			pos[v] = p
			// Line 12-13: remember the next level at which v has edges.
			if p < hi {
				schedule(v, ix.nbrTruss[p])
			}
		}
		levels[k] = queue[:0] // keep the grown capacity for future queries
		if uf.sameSet(q) {
			return ix.extractComponent(g0, uf, q), k, nil
		}
	}
	return nil, 0, ErrNoCommunity
}

// extractComponent builds the caller-owned result: the connected component
// of q[0] in the accumulated overlay g0. The DSU already knows the
// components (it was union-ed exactly on g0's edges), so the component test
// is a find() per touched edge — no BFS, no O(n) scan.
func (ix *Index) extractComponent(g0 *graph.Mutable, uf *stampedDSU, q []int) *graph.Mutable {
	out := graph.NewMutableShell(ix.g)
	root := uf.find(int32(q[0]))
	g0.ForEachTouchedLiveEdge(func(e int32, u, _ int) {
		if uf.find(int32(u)) == root {
			out.AddEdgeByID(e)
		}
	})
	for _, v := range q {
		out.EnsureVertex(v)
	}
	return out
}

// FindKTruss returns the connected component containing Q of the maximal
// k-truss for the given fixed k (used by the Exp-5 fixed-trussness variant),
// or ErrNoCommunity if Q is not contained in one.
func (ix *Index) FindKTruss(q []int, k int32) (*graph.Mutable, error) {
	ws := ix.AcquireWorkspace()
	defer ws.Release()
	return ix.FindKTrussW(q, k, ws)
}

// FindKTrussW is FindKTruss running on an explicit workspace. The BFS runs
// in two phases: a connectivity phase that stops as soon as every query
// vertex has been reached (so an unsatisfiable query fails after exploring
// only q[0]'s component, without building any subgraph), then a completion
// phase that finishes the component and materializes each undirected edge
// exactly once by its base edge ID.
//
// Trussness is only defined for k >= 2 (every edge of a graph is in a
// 2-truss); requests below that are clamped to k = 2, so k <= 1 behaves
// exactly like k = 2 — in particular a query on an isolated vertex fails
// with ErrNoCommunity for every k instead of "succeeding" with an edgeless
// community at k <= τ(v) = 0.
func (ix *Index) FindKTrussW(q []int, k int32, ws *Workspace) (*graph.Mutable, error) {
	if len(q) == 0 {
		return nil, errors.New("trussindex: empty query")
	}
	if k < 2 {
		k = 2
	}
	for _, v := range q {
		if v < 0 || v >= ix.g.N() || ix.vertexTruss[v] < k {
			return nil, fmt.Errorf("%w (k=%d)", ErrNoCommunity, k)
		}
	}
	// qmark marks distinct query vertices; remaining counts those not yet
	// reached by the BFS (q may hold duplicates).
	qmark := ws.StampB.Next()
	remaining := 0
	for _, v := range q {
		if ws.StampB.Mark[v] != qmark {
			ws.StampB.Mark[v] = qmark
			remaining++
		}
	}
	seen := ws.StampA.Next()
	mark := ws.StampA.Mark
	mark[q[0]] = seen
	remaining--
	queue := ws.QueueA[:0]
	queue = append(queue, int32(q[0]))
	head := 0
	// Phase 1: connectivity. Stop as soon as every query vertex is reached;
	// if the queue drains first, Q spans multiple k-truss components and we
	// fail having built nothing.
	for head < len(queue) && remaining > 0 {
		if head&(cancelCheckInterval-1) == 0 {
			if err := ws.Canceled(); err != nil {
				ws.QueueA = queue
				return nil, err
			}
		}
		v := int(queue[head])
		head++
		nbrs, _ := ix.NeighborsAtLeast(v, k)
		for _, u := range nbrs {
			if mark[u] != seen {
				mark[u] = seen
				if ws.StampB.Mark[u] == qmark {
					remaining--
				}
				queue = append(queue, u)
			}
		}
	}
	if remaining > 0 {
		ws.QueueA = queue
		return nil, fmt.Errorf("%w (k=%d)", ErrNoCommunity, k)
	}
	// Phase 2: complete the component (the result must be the whole
	// q-component of the maximal k-truss, not just enough to connect Q).
	for ; head < len(queue); head++ {
		if head&(cancelCheckInterval-1) == 0 {
			if err := ws.Canceled(); err != nil {
				ws.QueueA = queue
				return nil, err
			}
		}
		v := int(queue[head])
		nbrs, _ := ix.NeighborsAtLeast(v, k)
		for _, u := range nbrs {
			if mark[u] != seen {
				mark[u] = seen
				queue = append(queue, u)
			}
		}
	}
	ws.QueueA = queue
	// Phase 3: materialize. Every component vertex is in queue; inserting
	// arcs only from their smaller endpoint adds each edge once.
	mu := graph.NewMutableShell(ix.g)
	for _, vq := range queue {
		v := int(vq)
		nbrs, eids := ix.NeighborsAtLeast(v, k)
		for i, u := range nbrs {
			if int(u) > v {
				mu.AddEdgeByID(eids[i])
			}
		}
	}
	mu.EnsureVertex(q[0])
	return mu, nil
}
