package trussindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/graph"
)

// Serialization format. The 8-byte header is "CTCIDX" + an ASCII format
// version digit + '\n', so a snapshot file identifies both the format and
// its revision; readers accept every version they know how to decode and
// reject unknown ones with a clear error (the ctcserve persistence path
// relies on this to load snapshots across releases).
//
// Version 3 (current), little-endian varints after the header:
//
//	n (uvarint), maxTruss (uvarint), m (uvarint)
//	per vertex v: deg (uvarint), then deg pairs (neighbor uvarint, τ uvarint)
//	trailer: CRC-32C (Castagnoli, 4 bytes LE) of header + payload
//
// The adjacency is stored in index order (descending trussness), so decoding
// rebuilds the exact index without re-sorting. Vertex trussness is implied
// by the first pair. The trailer lets a reader distinguish a complete
// snapshot from a torn or bit-flipped one even when the truncation happens
// to fall on a varint boundary — the WAL checkpoint recovery path depends on
// this to reject a checkpoint file the crash interrupted. Version 2 is
// identical minus the trailer; version 1 additionally lacks the m field.
// Both remain readable.

const (
	magicPrefix = "CTCIDX"
	// formatV1 is the legacy header without the edge-count field.
	formatV1 = magicPrefix + "1\n"
	// formatV2 is the legacy header without the CRC trailer.
	formatV2 = magicPrefix + "2\n"
	// formatV3 is the current header.
	formatV3 = magicPrefix + "3\n"
)

// castagnoli is the CRC-32C table shared by the serializer and the WAL.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every ReadFrom error caused by malformed,
// truncated, or bit-flipped input (as opposed to an unsupported-but-valid
// future format version). Callers switch with errors.Is to distinguish "this
// file is damaged" from I/O plumbing failures.
var ErrCorrupt = errors.New("trussindex: corrupt or truncated index")

// corruptError carries a specific diagnosis while matching ErrCorrupt.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return e.msg }
func (e *corruptError) Unwrap() error { return ErrCorrupt }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: "trussindex: " + fmt.Sprintf(format, args...)}
}

// WriteTo serializes the index in the current format version. It returns
// the number of bytes written, which is the "Index Size" figure reported in
// Table 3.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	crc := crc32.New(castagnoli)
	cw := &countingWriter{w: io.MultiWriter(bw, crc)}
	if _, err := cw.Write([]byte(formatV3)); err != nil {
		return cw.n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := cw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(ix.g.N())); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(ix.maxTruss)); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(ix.g.M())); err != nil {
		return cw.n, err
	}
	for v := 0; v < ix.g.N(); v++ {
		lo, hi := ix.arcRange(v)
		if err := putUvarint(uint64(hi - lo)); err != nil {
			return cw.n, err
		}
		for i := lo; i < hi; i++ {
			if err := putUvarint(uint64(ix.nbr[i])); err != nil {
				return cw.n, err
			}
			if err := putUvarint(uint64(ix.nbrTruss[i])); err != nil {
				return cw.n, err
			}
		}
	}
	// Trailer: CRC of everything above, excluded from its own computation.
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	return cw.n, bw.Flush()
}

// crcByteReader feeds every byte it delivers into a running CRC, so the
// decoder can verify the v3 trailer without buffering the payload. It
// implements io.ByteReader for binary.ReadUvarint.
type crcByteReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (cr *crcByteReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc.Write([]byte{b})
	}
	return b, err
}

func (cr *crcByteReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// ReadFrom deserializes an index previously written with WriteTo, accepting
// any known format version. Malformed input of any shape — truncated mid-
// varint, impossible counts, asymmetric adjacency, a CRC mismatch — yields
// an error wrapping ErrCorrupt, never a panic.
func ReadFrom(r io.Reader) (*Index, error) {
	cr := &crcByteReader{r: bufio.NewReader(r), crc: crc32.New(castagnoli)}
	head := make([]byte, len(formatV3))
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	var version int
	switch string(head) {
	case formatV1:
		version = 1
	case formatV2:
		version = 2
	case formatV3:
		version = 3
	default:
		if string(head[:len(magicPrefix)]) == magicPrefix && head[len(head)-1] == '\n' {
			return nil, fmt.Errorf("trussindex: unsupported index format version %q (supported: 1, 2, 3)", head[len(magicPrefix):len(head)-1])
		}
		return nil, corruptf("bad magic %q", head)
	}
	n64, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptf("reading n: %v", err)
	}
	if n64 > graph.MaxVertexID+1 {
		return nil, corruptf("vertex count %d exceeds MaxVertexID", n64)
	}
	maxTruss, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptf("reading maxTruss: %v", err)
	}
	// τ̄ is bounded by the largest clique, hence by n; anything bigger is a
	// corrupt header (and would make Thresholds allocate absurdly).
	if maxTruss > n64 {
		return nil, corruptf("max trussness %d exceeds vertex count %d", maxTruss, n64)
	}
	declaredM := int64(-1)
	if version >= 2 {
		m64, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptf("reading m: %v", err)
		}
		// Each vertex has fewer neighbors than there are vertices. n64 is
		// already bounded by MaxVertexID+1, so the product cannot overflow,
		// and an n=0 file must declare m=0 (the unsigned n64-1 would wrap).
		var maxM uint64
		if n64 > 0 {
			maxM = n64 * (n64 - 1) / 2
		}
		if m64 > maxM {
			return nil, corruptf("edge count %d impossible for %d vertices", m64, n64)
		}
		declaredM = int64(m64)
	}
	n := int(n64)
	ix := &Index{
		off:         make([]int32, n+1),
		vertexTruss: make([]int32, n),
		maxTruss:    int32(maxTruss),
	}
	b := graph.NewBuilder(n, 0)
	if n > 0 {
		b.EnsureVertex(n - 1)
	}
	for v := 0; v < n; v++ {
		deg, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptf("vertex %d degree: %v", v, err)
		}
		if deg > n64 {
			return nil, corruptf("vertex %d degree %d exceeds vertex count", v, deg)
		}
		// The flat arrays grow by append: deg comes from untrusted input, so
		// never trust it as a preallocation size.
		for i := 0; i < int(deg); i++ {
			u, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, corruptf("vertex %d neighbor: %v", v, err)
			}
			t, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, corruptf("vertex %d truss: %v", v, err)
			}
			if u >= n64 || int(u) == v {
				return nil, corruptf("vertex %d: bad neighbor %d", v, u)
			}
			if t > maxTruss {
				return nil, corruptf("vertex %d: trussness %d exceeds declared max %d", v, t, maxTruss)
			}
			ix.nbr = append(ix.nbr, int32(u))
			ix.nbrTruss = append(ix.nbrTruss, int32(t))
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
		ix.off[v+1] = int32(len(ix.nbr))
		if deg > 0 {
			ix.vertexTruss[v] = ix.nbrTruss[ix.off[v]]
		}
	}
	if version >= 3 {
		// The payload CRC is computed before the trailer bytes are read, so
		// the trailer never hashes itself.
		sum := cr.crc.Sum32()
		var tr [4]byte
		if _, err := io.ReadFull(cr.r, tr[:]); err != nil {
			return nil, corruptf("reading CRC trailer: %v", err)
		}
		if got := binary.LittleEndian.Uint32(tr[:]); got != sum {
			return nil, corruptf("CRC mismatch: trailer %08x, payload %08x", got, sum)
		}
	}
	// A complete snapshot ends exactly here: trailing bytes mean the header
	// lied about the shape (e.g. a bit flip turned a v3 file into "v2" and
	// left its trailer dangling) — reject rather than silently ignore them.
	if _, err := cr.r.ReadByte(); err != io.EOF {
		return nil, corruptf("trailing garbage after index payload")
	}
	ix.g = b.Build()
	if declaredM >= 0 && int64(ix.g.M()) != declaredM {
		return nil, corruptf("header declares %d edges, adjacency holds %d", declaredM, ix.g.M())
	}
	// Scatter the per-arc trussness into the dense edge-ID array and record
	// each arc's edge ID. The graph was built from the u > v arcs only, so a
	// u < v arc without a matching edge means the input's adjacency was
	// asymmetric — reject it rather than hand query paths an index whose
	// lists disagree with its graph.
	ix.edgeTruss = make([]int32, ix.g.M())
	ix.nbrEID = make([]int32, len(ix.nbr))
	for v := 0; v < n; v++ {
		for i := ix.off[v]; i < ix.off[v+1]; i++ {
			u := int(ix.nbr[i])
			e := ix.g.EdgeID(v, u)
			if e < 0 {
				return nil, corruptf("asymmetric adjacency: %d lists %d but not vice versa", v, u)
			}
			ix.nbrEID[i] = e
			if u > v {
				ix.edgeTruss[e] = ix.nbrTruss[i]
			}
		}
	}
	ix.thresholds = ix.computeThresholds()
	return ix, nil
}

// ApproxBytes estimates the in-memory index footprint: 12 bytes per
// directed arc (neighbor + trussness + edge ID), 4 per vertex for the
// offset table and 4 for the vertex trussness, plus 4 per edge for the
// dense trussness array (which replaced the seed's ~16-byte/edge hash
// table). This is the basis of the Table 3 comparison against
// Graph.ApproxBytes.
func (ix *Index) ApproxBytes() int64 {
	var b int64
	b += int64(len(ix.nbr)) * 12
	b += int64(len(ix.off)) * 4
	b += int64(len(ix.vertexTruss)) * 4
	b += int64(len(ix.edgeTruss)) * 4
	return b
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
