package trussindex

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// TestFindKTrussLowKClamped pins the k < 2 contract: trussness is undefined
// below 2, so k = 1, 0 and negative k must behave exactly like k = 2 rather
// than silently comparing against τ(v) = 0 and "finding" edgeless
// communities on isolated vertices.
func TestFindKTrussLowKClamped(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	ix := Build(g)
	want, err := ix.FindKTruss([]int{0}, 2)
	if err != nil {
		t.Fatalf("k=2: %v", err)
	}
	for _, k := range []int32{1, 0, -3} {
		mu, err := ix.FindKTruss([]int{0}, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if mu.M() != want.M() || mu.N() != want.N() {
			t.Fatalf("k=%d: got n=%d m=%d, want the k=2 community n=%d m=%d",
				k, mu.N(), mu.M(), want.N(), want.M())
		}
	}
	// Vertex 5 is isolated: no k may succeed, including the clamped ones.
	for _, k := range []int32{-1, 0, 1, 2, 3} {
		if _, err := ix.FindKTruss([]int{5}, k); !errors.Is(err, ErrNoCommunity) {
			t.Fatalf("isolated vertex, k=%d: err = %v, want ErrNoCommunity", k, err)
		}
	}
}

// TestEmptyGraphIndex exercises every query entry point over an index built
// from a graph with no vertices and no edges.
func TestEmptyGraphIndex(t *testing.T) {
	ix := Build(graph.NewBuilder(0, 0).Build())
	if ix.MaxTruss() != 0 {
		t.Fatalf("empty graph max truss = %d", ix.MaxTruss())
	}
	if ths := ix.Thresholds(); len(ths) != 0 {
		t.Fatalf("empty graph thresholds = %v", ths)
	}
	if _, _, err := ix.FindG0([]int{0}); err == nil {
		t.Fatal("FindG0 on empty graph accepted an out-of-range query")
	}
	if _, err := ix.FindKTruss([]int{0}, 2); !errors.Is(err, ErrNoCommunity) {
		t.Fatal("FindKTruss on empty graph must fail with ErrNoCommunity")
	}
	if _, err := ix.FindKTruss(nil, 3); err == nil {
		t.Fatal("empty query accepted")
	}
	if ix.VertexTruss(0) != 0 || ix.EdgeTruss(0, 1) != 0 {
		t.Fatal("lookups on empty graph must return 0")
	}
}

// TestFindKTrussFailureBuildsNothing pins the failure path's allocation
// contract: a query spanning two components at level k must return before
// materializing any subgraph, and must not disturb workspace reuse for the
// next (successful) query.
func TestFindKTrussFailureBuildsNothing(t *testing.T) {
	// Two disjoint triangles.
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	ix := Build(g)
	ws := ix.AcquireWorkspace()
	defer ws.Release()
	if mu, err := ix.FindKTrussW([]int{0, 3}, 3, ws); err == nil || mu != nil {
		t.Fatalf("cross-component query: mu=%v err=%v, want nil + error", mu, err)
	}
	mu, err := ix.FindKTrussW([]int{0, 2}, 3, ws)
	if err != nil || mu.M() != 3 {
		t.Fatalf("follow-up query on reused workspace: mu=%v err=%v", mu, err)
	}
}
