package baseline

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// QDCOptions configures the query-biased densest subgraph search.
type QDCOptions struct {
	// Alpha is the random-walk restart probability (default 0.2).
	Alpha float64
	// Iterations bounds the proximity power iteration (default 25).
	Iterations int
}

func (o *QDCOptions) alpha() float64 {
	if o == nil || o.Alpha <= 0 || o.Alpha >= 1 {
		return 0.2
	}
	return o.Alpha
}

func (o *QDCOptions) iterations() int {
	if o == nil || o.Iterations <= 0 {
		return 25
	}
	return o.Iterations
}

// proximity computes random-walk-with-restart scores from the query set:
// p ← α·e_Q + (1−α)·W p, with W the column-normalized adjacency. Vertices
// near Q get high proximity.
func proximity(g *graph.Graph, q []int, alpha float64, iters int) []float64 {
	n := g.N()
	p := make([]float64, n)
	next := make([]float64, n)
	restart := make([]float64, n)
	for _, v := range q {
		restart[v] = 1 / float64(len(q))
	}
	copy(p, restart)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = alpha * restart[i]
		}
		for v := 0; v < n; v++ {
			if p[v] == 0 || g.Degree(v) == 0 {
				continue
			}
			share := (1 - alpha) * p[v] / float64(g.Degree(v))
			for _, u := range g.Neighbors(v) {
				next[u] += share
			}
		}
		p, next = next, p
	}
	return p
}

// qdcHeap is a lazy min-heap of (vertex, key) entries; stale entries are
// skipped at pop time.
type qdcHeap struct {
	vs   []int32
	keys []float64
}

func (h *qdcHeap) Len() int           { return len(h.vs) }
func (h *qdcHeap) Less(i, j int) bool { return h.keys[i] < h.keys[j] }
func (h *qdcHeap) Swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
}
func (h *qdcHeap) Push(x interface{}) { panic("use pushEntry") }
func (h *qdcHeap) Pop() interface{}   { panic("use popEntry") }
func (h *qdcHeap) pushEntry(v int32, key float64) {
	h.vs = append(h.vs, v)
	h.keys = append(h.keys, key)
	heap.Fix(h, h.Len()-1)
}
func (h *qdcHeap) popEntry() (int32, float64) {
	v, k := h.vs[0], h.keys[0]
	last := h.Len() - 1
	h.Swap(0, last)
	h.vs = h.vs[:last]
	h.keys = h.keys[:last]
	if last > 0 {
		heap.Fix(h, 0)
	}
	return v, k
}

// QDC finds a connected subgraph containing q that (approximately)
// maximizes the query-biased density |E(S)| / Σ_{v∈S} w(v), where
// w(v) = 1/π(v) penalizes vertices with low random-walk proximity to the
// query (Wu et al. 2015). The greedy peels the vertex with the smallest
// deg(v)·π(v) — low degree and far from the query first — using a lazy
// min-heap, then returns the Q-component of the best-scoring feasible
// snapshot.
func QDC(g *graph.Graph, q []int, opt *QDCOptions) (*Result, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("baseline: QDC: empty query")
	}
	for _, v := range q {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("baseline: QDC: query vertex %d out of range", v)
		}
	}
	if !graph.Connected(g, q) {
		return nil, fmt.Errorf("%w (query disconnected)", ErrNoCommunity)
	}
	pi := proximity(g, q, opt.alpha(), opt.iterations())
	comp := graph.Component(g, q[0])
	isQuery := make(map[int]bool, len(q))
	for _, v := range q {
		isQuery[v] = true
	}
	const tiny = 1e-12
	weight := func(v int) float64 {
		p := pi[v]
		if p < tiny {
			p = tiny
		}
		return 1 / p
	}
	n := g.N()
	inComp := make([]bool, n)
	deg := make([]int, n)
	sumW := 0.0
	edges := 0
	for _, v := range comp {
		inComp[v] = true
		sumW += weight(v)
	}
	for _, v := range comp {
		for _, w := range g.Neighbors(v) {
			if inComp[w] {
				deg[v]++
				if int(w) > v {
					edges++
				}
			}
		}
	}
	h := &qdcHeap{}
	for _, v := range comp {
		if !isQuery[v] {
			h.pushEntry(int32(v), float64(deg[v])*pi[v])
		}
	}
	removed := make([]bool, n)
	removalStep := make(map[int]int, len(comp))
	type snap struct {
		step  int
		score float64
	}
	snaps := []snap{{step: 0, score: float64(edges) / sumW}}
	step := 0
	for h.Len() > 0 {
		v32, key := h.popEntry()
		v := int(v32)
		if removed[v] || key != float64(deg[v])*pi[v] {
			continue // stale
		}
		removed[v] = true
		removalStep[v] = step
		sumW -= weight(v)
		edges -= deg[v]
		for _, w := range g.Neighbors(v) {
			wv := int(w)
			if inComp[wv] && !removed[wv] {
				deg[wv]--
				if !isQuery[wv] {
					h.pushEntry(w, float64(deg[wv])*pi[wv])
				}
			}
		}
		step++
		if sumW > 0 {
			snaps = append(snaps, snap{step: step, score: float64(edges) / sumW})
		}
	}
	// Evaluate snapshots best-score first until one is feasible (query
	// vertices connected); step 0 (the whole component) always is.
	order := make([]int, len(snaps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return snaps[order[a]].score > snaps[order[b]].score })
	// Cap the number of reconstructions; snapshot 0 (always feasible) is
	// forced onto the candidate list as the final fallback.
	const maxTries = 30
	if len(order) > maxTries {
		order = append(order[:maxTries:maxTries], 0)
	}
	compMu := graph.NewMutable(g, comp)
	for _, oi := range order {
		st := snaps[oi].step
		keep := make([]int, 0, len(comp))
		for _, v := range comp {
			if s, ok := removalStep[v]; !ok || s >= st {
				keep = append(keep, v)
			}
		}
		mu := graph.InducedMutable(compMu, keep)
		if !graph.Connected(mu, q) {
			continue
		}
		qComp := graph.Component(mu, q[0])
		mu = graph.InducedMutable(mu, qComp)
		// Score the actual Q-component.
		w := 0.0
		for _, v := range mu.Vertices() {
			w += weight(v)
		}
		score := 0.0
		if w > 0 {
			score = float64(mu.M()) / w
		}
		return newResult("QDC", mu, score), nil
	}
	return nil, ErrNoCommunity
}
