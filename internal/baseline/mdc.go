package baseline

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// MDCOptions configures the Cocktail Party search.
type MDCOptions struct {
	// DistBound is the maximum allowed query distance of any community
	// vertex (the model's fixed distance constraint; paper default 2).
	DistBound int32
	// SizeBound caps the community size; 0 means unbounded. The greedy
	// prefers the best min-degree snapshot that satisfies the bound.
	SizeBound int
}

func (o *MDCOptions) distBound() int32 {
	if o == nil || o.DistBound <= 0 {
		return 2
	}
	return o.DistBound
}

func (o *MDCOptions) sizeBound() int {
	if o == nil {
		return 0
	}
	return o.SizeBound
}

// MDC finds a connected subgraph containing q maximizing the minimum
// degree, restricted to vertices within the distance bound of the query
// (Sozio & Gionis 2010, "Cocktail Party").
//
// Implementation: bucket-queue greedy peeling of the minimum-degree
// non-query vertex (O(m + n) for the whole peel), recording the removal
// order; then snapshots at the peel steps where the running minimum degree
// reached a new maximum are re-evaluated for feasibility (Q connected,
// size bound), best first.
func MDC(g *graph.Graph, q []int, opt *MDCOptions) (*Result, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("baseline: MDC: empty query")
	}
	for _, v := range q {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("baseline: MDC: query vertex %d out of range", v)
		}
	}
	ball := ballAround(g, q, opt.distBound())
	sub := graph.Induced(g, ball)
	if !graph.Connected(sub, q) {
		return nil, fmt.Errorf("%w (distance bound %d)", ErrNoCommunity, opt.distBound())
	}
	isQuery := make(map[int]bool, len(q))
	for _, v := range q {
		isQuery[v] = true
	}
	inBall := make([]bool, g.N())
	for _, v := range ball {
		inBall[v] = true
	}
	// Bucket-queue peel on the induced ball.
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for _, v := range ball {
		deg[v] = sub.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for _, v := range ball {
		if !isQuery[v] {
			buckets[deg[v]] = append(buckets[deg[v]], int32(v))
		}
	}
	removed := make([]bool, n)
	removalStep := make(map[int]int, len(ball))
	// minDegAt[t] = min degree of the remaining graph before step t.
	var minDegAt []int
	cur := 0
	step := 0
	nonQuery := len(ball) - len(q)
	for peeled := 0; peeled < nonQuery; peeled++ {
		// Pop the min-degree non-query vertex (lazy entries).
		if cur > maxDeg {
			break
		}
		var pick = -1
		for cur <= maxDeg {
			b := buckets[cur]
			if len(b) == 0 {
				cur++
				continue
			}
			v := int(b[len(b)-1])
			buckets[cur] = b[:len(b)-1]
			if removed[v] || deg[v] != cur {
				continue
			}
			pick = v
			break
		}
		if pick < 0 {
			break
		}
		// Global min degree before this removal: the picked vertex is the
		// min among non-query vertices; fold in the query degrees.
		mind := deg[pick]
		for _, qv := range q {
			if !removed[qv] && deg[qv] < mind {
				mind = deg[qv]
			}
		}
		minDegAt = append(minDegAt, mind)
		removed[pick] = true
		removalStep[pick] = step
		for _, w := range g.Neighbors(pick) {
			wv := int(w)
			if inBall[wv] && !removed[wv] {
				deg[wv]--
				if !isQuery[wv] {
					buckets[deg[wv]] = append(buckets[deg[wv]], w)
				}
				if deg[wv] < cur {
					cur = deg[wv]
				}
			}
		}
		step++
	}
	// Candidate steps: those where the running min degree set a new max.
	// With a size bound, also the latest step at each distinct min degree
	// (later steps mean smaller snapshots).
	type cand struct{ step, minDeg int }
	var cands []cand
	best := -1
	for t, md := range minDegAt {
		if md > best {
			best = md
			cands = append(cands, cand{step: t, minDeg: md})
		}
	}
	if opt.sizeBound() > 0 {
		last := map[int]int{}
		for t, md := range minDegAt {
			last[md] = t
		}
		for md, t := range last {
			cands = append(cands, cand{step: t, minDeg: md})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].minDeg != cands[j].minDeg {
				return cands[i].minDeg < cands[j].minDeg
			}
			return cands[i].step < cands[j].step
		})
	}
	// Evaluate candidates from the highest min degree down; prefer ones
	// meeting the size bound, falling back to the best feasible otherwise.
	bound := opt.sizeBound()
	ballMu := graph.NewMutable(sub, ball)
	var fallback *Result
	for i := len(cands) - 1; i >= 0; i-- {
		c := cands[i]
		keep := make([]int, 0, len(ball))
		for _, v := range ball {
			if s, ok := removalStep[v]; !ok || s >= c.step {
				keep = append(keep, v)
			}
		}
		mu := graph.InducedMutable(ballMu, keep)
		if !graph.Connected(mu, q) {
			continue
		}
		comp := graph.Component(mu, q[0])
		mu = graph.InducedMutable(mu, comp)
		if bound > 0 && mu.N() > bound {
			// Over the size bound: remember the smallest feasible snapshot
			// as the fallback — the fixed-size model truncates rather than
			// relaxing (the rigidity the paper's Exp-3 exposes).
			if fallback == nil || mu.N() < fallback.N() {
				fallback = newResult("MDC", mu, float64(minDegreeOf(mu)))
			}
			continue
		}
		return newResult("MDC", mu, float64(minDegreeOf(mu))), nil
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, ErrNoCommunity
}

func minDegreeOf(mu *graph.Mutable) int {
	min := -1
	for _, v := range mu.Vertices() {
		if d := mu.Degree(v); min < 0 || d < min {
			min = d
		}
	}
	if min < 0 {
		return 0
	}
	return min
}
