package baseline

// This file holds the dense CSR ports of the two baselines: map-free twins
// of MDC and QDC (dense removal-step/membership arrays instead of maps, no
// induced-graph rebuild for the peel) that take the serving plane's pooled
// workspace for cooperative cancellation. The map-based MDC/QDC above are
// retained as differential oracles; both sides must produce identical
// Results (csr_test.go enforces it), which pins every tie-break: bucket
// pops come from the slice tail, heap entries are lazy, and candidate
// evaluation replays the oracle's exact Connected/Component/InducedMutable
// sequence.

import (
	"container/heap"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// Stats reports the execution shape of one baseline search.
type Stats struct {
	// Candidates counts the peel candidates considered (ball for MDC,
	// Q-component for QDC).
	Candidates int
	// PeelSteps counts vertices removed by the greedy peel.
	PeelSteps int
	// Snapshots counts snapshot reconstructions evaluated.
	Snapshots int
	// Seed is the candidate-set setup time (distance ball for MDC, proximity
	// iteration for QDC); Peel the greedy peel plus snapshot evaluation.
	Seed, Peel time.Duration
}

// cancelStride is how many peel steps run between cancellation polls.
const cancelStride = 1024

// MDCW is the dense-port twin of MDC, running on flat arrays with
// cancellation polled through ws. Results are identical to MDC's.
func MDCW(g *graph.Graph, q []int, opt *MDCOptions, ws *trussindex.Workspace) (*Result, *Stats, error) {
	if len(q) == 0 {
		return nil, nil, ErrNoCommunity
	}
	tSeed := time.Now()
	n := g.N()
	isQuery := make([]bool, n)
	for _, v := range q {
		isQuery[v] = true
	}
	// Distance ball around Q (query vertices always included).
	qd := graph.QueryDistances(g, q)
	bound := opt.distBound()
	ball := make([]int, 0)
	inBall := make([]bool, n)
	for v, d := range qd {
		if isQuery[v] || (d != graph.Unreachable && d <= bound) {
			ball = append(ball, v)
			inBall[v] = true
		}
	}
	st := &Stats{Candidates: len(ball)}
	// Q must be connected within the ball (single-vertex queries are
	// trivially connected, matching graph.Connected on the induced graph).
	if len(q) > 1 {
		reach := graph.BFSMarked(ballAdj{g, inBall}, q[0], ws.ValA, ws.StampA, ws.QueueA)
		ws.QueueA = reach
		for _, v := range q[1:] {
			if !ws.StampA.Marked(int32(v)) {
				return nil, nil, ErrNoCommunity
			}
		}
	}
	st.Seed = time.Since(tSeed)
	tPeel := time.Now()
	defer func() { st.Peel = time.Since(tPeel) }()
	// Bucket-queue peel of the min-degree non-query vertex on ball-induced
	// degrees, identical to the oracle's (pops from the bucket tail, lazy
	// stale entries).
	deg := make([]int, n)
	maxDeg := 0
	for _, v := range ball {
		d := 0
		for _, w := range g.Neighbors(v) {
			if inBall[w] {
				d++
			}
		}
		deg[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for _, v := range ball {
		if !isQuery[v] {
			buckets[deg[v]] = append(buckets[deg[v]], int32(v))
		}
	}
	removed := make([]bool, n)
	removalStep := make([]int, n)
	for i := range removalStep {
		removalStep[i] = -1
	}
	var minDegAt []int
	cur := 0
	step := 0
	nonQuery := len(ball) - len(q)
	for peeled := 0; peeled < nonQuery; peeled++ {
		if peeled%cancelStride == 0 {
			if err := ws.Canceled(); err != nil {
				return nil, nil, err
			}
		}
		if cur > maxDeg {
			break
		}
		var pick = -1
		for cur <= maxDeg {
			b := buckets[cur]
			if len(b) == 0 {
				cur++
				continue
			}
			v := int(b[len(b)-1])
			buckets[cur] = b[:len(b)-1]
			if removed[v] || deg[v] != cur {
				continue
			}
			pick = v
			break
		}
		if pick < 0 {
			break
		}
		mind := deg[pick]
		for _, qv := range q {
			if !removed[qv] && deg[qv] < mind {
				mind = deg[qv]
			}
		}
		minDegAt = append(minDegAt, mind)
		removed[pick] = true
		removalStep[pick] = step
		for _, w := range g.Neighbors(pick) {
			wv := int(w)
			if inBall[wv] && !removed[wv] {
				deg[wv]--
				if !isQuery[wv] {
					buckets[deg[wv]] = append(buckets[deg[wv]], w)
				}
				if deg[wv] < cur {
					cur = deg[wv]
				}
			}
		}
		step++
	}
	st.PeelSteps = step
	// Candidate steps: new-max min degrees, plus (under a size bound) the
	// latest step at each distinct min degree, ordered by (minDeg, step).
	type cand struct{ step, minDeg int }
	var cands []cand
	bestMD := -1
	for t, md := range minDegAt {
		if md > bestMD {
			bestMD = md
			cands = append(cands, cand{step: t, minDeg: md})
		}
	}
	if opt.sizeBound() > 0 {
		lastAt := make([]int, maxDeg+1)
		for i := range lastAt {
			lastAt[i] = -1
		}
		for t, md := range minDegAt {
			lastAt[md] = t
		}
		for md, t := range lastAt {
			if t >= 0 {
				cands = append(cands, cand{step: t, minDeg: md})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].minDeg != cands[j].minDeg {
				return cands[i].minDeg < cands[j].minDeg
			}
			return cands[i].step < cands[j].step
		})
	}
	sizeBound := opt.sizeBound()
	ballMu := graph.NewMutable(g, ball)
	var fallback *Result
	for i := len(cands) - 1; i >= 0; i-- {
		if err := ws.Canceled(); err != nil {
			return nil, nil, err
		}
		st.Snapshots++
		c := cands[i]
		keep := make([]int, 0, len(ball))
		for _, v := range ball {
			if s := removalStep[v]; s < 0 || s >= c.step {
				keep = append(keep, v)
			}
		}
		mu := graph.InducedMutable(ballMu, keep)
		if !graph.Connected(mu, q) {
			continue
		}
		comp := graph.Component(mu, q[0])
		mu = graph.InducedMutable(mu, comp)
		if sizeBound > 0 && mu.N() > sizeBound {
			if fallback == nil || mu.N() < fallback.N() {
				fallback = newResult("MDC", mu, float64(minDegreeOf(mu)))
			}
			continue
		}
		return newResult("MDC", mu, float64(minDegreeOf(mu))), st, nil
	}
	if fallback != nil {
		return fallback, st, nil
	}
	return nil, nil, ErrNoCommunity
}

// ballAdj is the ball-restricted adjacency view used for the feasibility
// BFS: the induced subgraph on inBall without materializing it.
type ballAdj struct {
	g  *graph.Graph
	in []bool
}

func (b ballAdj) NumIDs() int        { return b.g.N() }
func (b ballAdj) Present(v int) bool { return v >= 0 && v < len(b.in) && b.in[v] }
func (b ballAdj) ForEachNeighbor(v int, fn func(u int)) {
	for _, w := range b.g.Neighbors(v) {
		if b.in[w] {
			fn(int(w))
		}
	}
}

// QDCW is the dense-port twin of QDC: identical proximity iteration, lazy
// min-heap peel and snapshot scoring, with flat membership/removal arrays
// and cancellation polled through ws. Results are identical to QDC's.
func QDCW(g *graph.Graph, q []int, opt *QDCOptions, ws *trussindex.Workspace) (*Result, *Stats, error) {
	if len(q) == 0 {
		return nil, nil, ErrNoCommunity
	}
	tSeed := time.Now()
	if !graph.Connected(g, q) {
		return nil, nil, ErrNoCommunity
	}
	pi := proximity(g, q, opt.alpha(), opt.iterations())
	comp := graph.Component(g, q[0])
	st := &Stats{Candidates: len(comp), Seed: time.Since(tSeed)}
	tPeel := time.Now()
	defer func() { st.Peel = time.Since(tPeel) }()
	n := g.N()
	isQuery := make([]bool, n)
	for _, v := range q {
		isQuery[v] = true
	}
	const tiny = 1e-12
	weight := func(v int) float64 {
		p := pi[v]
		if p < tiny {
			p = tiny
		}
		return 1 / p
	}
	inComp := make([]bool, n)
	deg := make([]int, n)
	sumW := 0.0
	edges := 0
	for _, v := range comp {
		inComp[v] = true
		sumW += weight(v)
	}
	for _, v := range comp {
		for _, w := range g.Neighbors(v) {
			if inComp[w] {
				deg[v]++
				if int(w) > v {
					edges++
				}
			}
		}
	}
	h := &qdcHeap{}
	for _, v := range comp {
		if !isQuery[v] {
			h.pushEntry(int32(v), float64(deg[v])*pi[v])
		}
	}
	removed := make([]bool, n)
	removalStep := make([]int, n)
	for i := range removalStep {
		removalStep[i] = -1
	}
	type snap struct {
		step  int
		score float64
	}
	snaps := []snap{{step: 0, score: float64(edges) / sumW}}
	step := 0
	pops := 0
	for h.Len() > 0 {
		if pops%cancelStride == 0 {
			if err := ws.Canceled(); err != nil {
				return nil, nil, err
			}
		}
		pops++
		v32, key := h.popEntry()
		v := int(v32)
		if removed[v] || key != float64(deg[v])*pi[v] {
			continue // stale
		}
		removed[v] = true
		removalStep[v] = step
		sumW -= weight(v)
		edges -= deg[v]
		for _, w := range g.Neighbors(v) {
			wv := int(w)
			if inComp[wv] && !removed[wv] {
				deg[wv]--
				if !isQuery[wv] {
					h.pushEntry(w, float64(deg[wv])*pi[wv])
				}
			}
		}
		step++
		if sumW > 0 {
			snaps = append(snaps, snap{step: step, score: float64(edges) / sumW})
		}
	}
	st.PeelSteps = step
	order := make([]int, len(snaps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return snaps[order[a]].score > snaps[order[b]].score })
	const maxTries = 30
	if len(order) > maxTries {
		order = append(order[:maxTries:maxTries], 0)
	}
	compMu := graph.NewMutable(g, comp)
	for _, oi := range order {
		if err := ws.Canceled(); err != nil {
			return nil, nil, err
		}
		st.Snapshots++
		sp := snaps[oi].step
		keep := make([]int, 0, len(comp))
		for _, v := range comp {
			if s := removalStep[v]; s < 0 || s >= sp {
				keep = append(keep, v)
			}
		}
		mu := graph.InducedMutable(compMu, keep)
		if !graph.Connected(mu, q) {
			continue
		}
		qComp := graph.Component(mu, q[0])
		mu = graph.InducedMutable(mu, qComp)
		w := 0.0
		for _, v := range mu.Vertices() {
			w += weight(v)
		}
		score := 0.0
		if w > 0 {
			score = float64(mu.M()) / w
		}
		return newResult("QDC", mu, score), st, nil
	}
	return nil, nil, ErrNoCommunity
}

// ensure the heap interface stays satisfied if the oracle file changes.
var _ heap.Interface = (*qdcHeap)(nil)
