package baseline

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

func acquireWS(g *graph.Graph) *trussindex.Workspace {
	return trussindex.Build(g).AcquireWorkspace()
}

// sameResult asserts the dense port reproduced the oracle answer exactly:
// same member set, edge count, and objective score (bit-for-bit — both
// sides run identical float operation sequences).
func sameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Fatalf("%s: algorithm %q, want %q", tag, got.Algorithm, want.Algorithm)
	}
	if !reflect.DeepEqual(got.Vertices, want.Vertices) {
		t.Fatalf("%s: vertices %v, want %v", tag, got.Vertices, want.Vertices)
	}
	if got.EdgeCount != want.EdgeCount {
		t.Fatalf("%s: edges %d, want %d", tag, got.EdgeCount, want.EdgeCount)
	}
	if math.Float64bits(got.Score) != math.Float64bits(want.Score) {
		t.Fatalf("%s: score %v, want %v", tag, got.Score, want.Score)
	}
}

// TestMDCWMatchesOracle and TestQDCWMatchesOracle are the differential
// harnesses: the dense ports must be indistinguishable from the retained
// map-based oracles on the paper graph and a sweep of random graphs,
// including agreeing on infeasible queries.
func TestMDCWMatchesOracle(t *testing.T) {
	opts := []*MDCOptions{nil, {DistBound: 1}, {SizeBound: 6}, {DistBound: 3, SizeBound: 4}}
	run := func(t *testing.T, g *graph.Graph, q []int, ws *trussindex.Workspace, tag string) {
		t.Helper()
		for i, opt := range opts {
			want, wantErr := MDC(g, q, opt)
			got, _, gotErr := MDCW(g, q, opt, ws)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s opt %d q %v: oracle err %v, port err %v", tag, i, q, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNoCommunity) {
					t.Fatalf("%s opt %d: port error %v, want ErrNoCommunity", tag, i, gotErr)
				}
				continue
			}
			sameResult(t, tag, got, want)
		}
	}
	pg := paperGraph()
	ws := acquireWS(pg)
	run(t, pg, []int{0, 1}, ws, "paper")
	run(t, pg, []int{2}, ws, "paper-single")
	ws.Release()
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 40, 0.15)
		ws := acquireWS(g)
		rng := rand.New(rand.NewSource(seed + 300))
		run(t, g, []int{rng.Intn(40), rng.Intn(40)}, ws, "random")
		ws.Release()
	}
}

func TestQDCWMatchesOracle(t *testing.T) {
	opts := []*QDCOptions{nil, {Alpha: 0.5}, {Iterations: 5}}
	run := func(t *testing.T, g *graph.Graph, q []int, ws *trussindex.Workspace, tag string) {
		t.Helper()
		for i, opt := range opts {
			want, wantErr := QDC(g, q, opt)
			got, _, gotErr := QDCW(g, q, opt, ws)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s opt %d q %v: oracle err %v, port err %v", tag, i, q, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNoCommunity) {
					t.Fatalf("%s opt %d: port error %v, want ErrNoCommunity", tag, i, gotErr)
				}
				continue
			}
			sameResult(t, tag, got, want)
		}
	}
	pg := paperGraph()
	ws := acquireWS(pg)
	run(t, pg, []int{0, 1}, ws, "paper")
	run(t, pg, []int{2}, ws, "paper-single")
	ws.Release()
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 40, 0.15)
		ws := acquireWS(g)
		rng := rand.New(rand.NewSource(seed + 400))
		run(t, g, []int{rng.Intn(40), rng.Intn(40)}, ws, "random")
		ws.Release()
	}
}

func TestBaselineCSRCancellation(t *testing.T) {
	g := randomGraph(7, 60, 0.2)
	ws := acquireWS(g)
	defer ws.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws.SetContext(ctx)
	defer ws.SetContext(context.Background())
	if _, _, err := MDCW(g, []int{0, 1}, nil, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("MDCW err = %v, want context.Canceled", err)
	}
	if _, _, err := QDCW(g, []int{0, 1}, nil, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("QDCW err = %v, want context.Canceled", err)
	}
}

func TestBaselineCSREmptyQuery(t *testing.T) {
	g := paperGraph()
	ws := acquireWS(g)
	defer ws.Release()
	if _, _, err := MDCW(g, nil, nil, ws); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("MDCW err = %v, want ErrNoCommunity", err)
	}
	if _, _, err := QDCW(g, nil, nil, ws); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("QDCW err = %v, want ErrNoCommunity", err)
	}
}
