// Package baseline implements the two state-of-the-art community-search
// competitors the paper evaluates against in Exp-3 (Figure 12):
//
//   - MDC, the minimum-degree community model of Sozio & Gionis's "Cocktail
//     Party" (KDD 2010): maximize the minimum degree of a connected subgraph
//     containing Q under a query-distance constraint.
//   - QDC, the query-biased densest connected subgraph of Wu et al. (PVLDB
//     2015): maximize edge mass normalized by query-biased node weights,
//     where weights derive from random-walk proximity to the query.
//
// Both are reimplemented from their papers' descriptions (no public code);
// see DESIGN.md §3.
package baseline

import (
	"errors"
	"sort"

	"repro/internal/graph"
)

// Result is a community found by a baseline method.
type Result struct {
	// Algorithm is "MDC" or "QDC".
	Algorithm string
	// Vertices is the sorted community vertex set.
	Vertices []int
	// EdgeCount is the number of edges in the community subgraph.
	EdgeCount int
	// Score is the method's own objective value (min degree for MDC,
	// query-biased density for QDC).
	Score float64

	sub *graph.Mutable
}

// ErrNoCommunity is returned when the query cannot be covered.
var ErrNoCommunity = errors.New("baseline: no community contains the query vertices")

// N returns the number of vertices.
func (r *Result) N() int { return len(r.Vertices) }

// M returns the number of edges.
func (r *Result) M() int { return r.EdgeCount }

// Density returns 2m/(n(n-1)).
func (r *Result) Density() float64 {
	n := len(r.Vertices)
	if n < 2 {
		return 0
	}
	return 2 * float64(r.EdgeCount) / (float64(n) * float64(n-1))
}

// Subgraph returns the community subgraph (treat as read-only).
func (r *Result) Subgraph() *graph.Mutable { return r.sub }

func newResult(algo string, sub *graph.Mutable, score float64) *Result {
	return &Result{
		Algorithm: algo,
		Vertices:  sub.Vertices(),
		EdgeCount: sub.M(),
		Score:     score,
		sub:       sub,
	}
}

// ballAround returns the set of vertices whose query distance to q is at
// most bound (the Cocktail Party distance constraint). Query vertices are
// always included: a community must contain Q even when the queries are
// farther than bound from each other.
func ballAround(g *graph.Graph, q []int, bound int32) []int {
	qd := graph.QueryDistances(g, q)
	forced := make(map[int]bool, len(q))
	for _, v := range q {
		forced[v] = true
	}
	out := make([]int, 0)
	for v, d := range qd {
		if forced[v] || (d != graph.Unreachable && d <= bound) {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
