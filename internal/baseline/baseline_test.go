package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// paperGraph is Figure 1(a); q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7
// p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	return graph.FromEdges(12, edges)
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestMDCBasic(t *testing.T) {
	g := paperGraph()
	r, err := MDC(g, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "MDC" {
		t.Fatalf("algorithm %q", r.Algorithm)
	}
	// Must contain the query, be connected, and have min degree >= 2
	// (the q1,q2,v1,v2 clique guarantees at least 3 is available).
	sub := r.Subgraph()
	for _, v := range []int{0, 1} {
		if !sub.Present(v) {
			t.Fatalf("query vertex %d missing", v)
		}
	}
	if !graph.IsConnected(sub) {
		t.Fatal("MDC result disconnected")
	}
	if r.Score < 3 {
		t.Fatalf("min degree %f, expected >= 3 (clique available)", r.Score)
	}
	minDeg := 1 << 30
	for _, v := range r.Vertices {
		if d := sub.Degree(v); d < minDeg {
			minDeg = d
		}
	}
	if float64(minDeg) != r.Score {
		t.Fatalf("reported score %f != actual min degree %d", r.Score, minDeg)
	}
}

func TestMDCDistanceConstraint(t *testing.T) {
	g := paperGraph()
	// With bound 1, only neighbors of both q1 and q3 qualify; q1 and q3 are
	// at distance 2 (via t), so the ball around {q1,q3} at bound 1 contains
	// only t... and q1,q3 themselves; the only connector is t.
	r, err := MDC(g, []int{0, 2}, &MDCOptions{DistBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.N() > 3 {
		t.Fatalf("bound-1 community has %d nodes, want <= 3", r.N())
	}
	for _, v := range r.Vertices {
		if v != 0 && v != 2 && v != 11 {
			t.Fatalf("vertex %d outside the distance-1 ball", v)
		}
	}
}

func TestMDCSizeBound(t *testing.T) {
	g := paperGraph()
	small, err := MDC(g, []int{2}, &MDCOptions{DistBound: 2, SizeBound: 5})
	if err != nil {
		t.Fatal(err)
	}
	if small.N() > 5 {
		// The size bound is best-effort: it is honored when some snapshot
		// satisfies it, which one must here (peeling reaches {q3}+few).
		t.Fatalf("size bound ignored: %d nodes", small.N())
	}
}

func TestMDCErrors(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	if _, err := MDC(g, []int{0, 2}, nil); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := MDC(g, nil, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := MDC(g, []int{-1}, nil); err == nil {
		t.Fatal("bad vertex accepted")
	}
	// Far-apart query with tight distance bound.
	path := graph.FromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}})
	if _, err := MDC(path, []int{0, 7}, &MDCOptions{DistBound: 2}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("distance-infeasible query: err = %v", err)
	}
}

func TestQDCBasic(t *testing.T) {
	g := paperGraph()
	r, err := QDC(g, []int{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := r.Subgraph()
	if !sub.Present(0) || !sub.Present(1) {
		t.Fatal("query vertices missing")
	}
	if !graph.IsConnected(sub) {
		t.Fatal("QDC result disconnected")
	}
	if r.Score <= 0 {
		t.Fatalf("score %f", r.Score)
	}
	// Query bias: the far free riders p1..p3 should not all survive for a
	// query concentrated on the left clique.
	kept := 0
	for _, v := range []int{8, 9, 10} {
		if sub.Present(v) {
			kept++
		}
	}
	if kept == 3 {
		t.Fatal("QDC kept all far free riders; query bias ineffective")
	}
}

func TestQDCProximityConcentration(t *testing.T) {
	g := paperGraph()
	pi := proximity(g, []int{0}, 0.2, 30)
	// Proximity must be highest at the query and decay with distance.
	if pi[0] <= pi[4] {
		t.Fatal("π(q1) must exceed π(v2)")
	}
	if pi[4] <= pi[8] {
		t.Fatalf("π(v2)=%g should exceed π(p1)=%g (p1 is farther)", pi[4], pi[8])
	}
	total := 0.0
	for _, p := range pi {
		total += p
	}
	if total <= 0 || total > 1.5 {
		t.Fatalf("proximity mass %f implausible", total)
	}
}

func TestQDCErrors(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	if _, err := QDC(g, []int{0, 2}, nil); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := QDC(g, nil, nil); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := QDC(g, []int{77}, nil); err == nil {
		t.Fatal("bad vertex accepted")
	}
}

func TestBaselinesOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 40, 0.15)
		rng := rand.New(rand.NewSource(seed))
		q := []int{rng.Intn(40), rng.Intn(40)}
		for _, run := range []func() (*Result, error){
			func() (*Result, error) { return MDC(g, q, nil) },
			func() (*Result, error) { return QDC(g, q, nil) },
		} {
			r, err := run()
			if err != nil {
				continue // infeasible query is fine
			}
			sub := r.Subgraph()
			for _, v := range q {
				if !sub.Present(v) {
					t.Fatalf("seed %d: %s dropped query vertex %d", seed, r.Algorithm, v)
				}
			}
			if !graph.IsConnected(sub) {
				t.Fatalf("seed %d: %s disconnected", seed, r.Algorithm)
			}
			if r.N() != sub.N() || r.M() != sub.M() {
				t.Fatalf("seed %d: %s bookkeeping mismatch", seed, r.Algorithm)
			}
			if d := r.Density(); d < 0 || d > 1 {
				t.Fatalf("seed %d: %s density %f", seed, r.Algorithm, d)
			}
		}
	}
}
