package prob

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/truss"
)

func uniformProbs(g *graph.Graph, p float64) map[graph.EdgeKey]float64 {
	m := make(map[graph.EdgeKey]float64, g.M())
	g.ForEachEdge(func(u, v int) { m[graph.Key(u, v)] = p })
	return m
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestSupTailProbExact(t *testing.T) {
	// Against direct enumeration for small cases.
	cases := []struct {
		tri []float64
		s   int
	}{
		{[]float64{0.5, 0.5}, 1},
		{[]float64{0.5, 0.5}, 2},
		{[]float64{0.9, 0.1, 0.3}, 2},
		{[]float64{0.25}, 1},
		{nil, 0},
		{nil, 1},
	}
	for _, c := range cases {
		want := bruteTail(c.tri, c.s)
		got := supTailProb(c.tri, c.s)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("tail(%v, %d) = %v, want %v", c.tri, c.s, got, want)
		}
	}
}

func bruteTail(tri []float64, s int) float64 {
	n := len(tri)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		cnt := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p *= tri[i]
				cnt++
			} else {
				p *= 1 - tri[i]
			}
		}
		if cnt >= s {
			total += p
		}
	}
	return total
}

func TestCertainGraphMatchesDeterministic(t *testing.T) {
	// With all probabilities 1 and any γ <= 1, the (k,γ)-decomposition must
	// equal the deterministic truss decomposition.
	rng := rand.New(rand.NewSource(4))
	b := graph.NewBuilder(18, 0)
	b.EnsureVertex(17)
	for u := 0; u < 18; u++ {
		for v := u + 1; v < 18; v++ {
			if rng.Float64() < 0.3 {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.Build()
	pg, err := NewGraph(g, uniformProbs(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Decompose(pg, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	dd := truss.Decompose(g)
	for e, k := range dd.EdgeTrussMap() {
		if pd.EdgeTruss[e] != k {
			t.Fatalf("certain graph: τ%s = %d, deterministic says %d", e, pd.EdgeTruss[e], k)
		}
	}
	if pd.MaxTruss != dd.MaxTruss {
		t.Fatalf("max truss %d vs %d", pd.MaxTruss, dd.MaxTruss)
	}
}

func TestDecomposeMonotoneInGamma(t *testing.T) {
	// Raising γ can only lower probabilistic trussness.
	g := completeGraph(6)
	pg, _ := NewGraph(g, uniformProbs(g, 0.8))
	lo, _ := Decompose(pg, 0.3)
	hi, _ := Decompose(pg, 0.95)
	for e := range lo.EdgeTruss {
		if hi.EdgeTruss[e] > lo.EdgeTruss[e] {
			t.Fatalf("τ at γ=0.95 (%d) exceeds τ at γ=0.3 (%d) for %s",
				hi.EdgeTruss[e], lo.EdgeTruss[e], e)
		}
	}
}

func TestDecomposeAgainstPossibleWorlds(t *testing.T) {
	// Exact check on a tiny graph: enumerate every possible world and
	// verify the (k,γ)-membership probability of the *final* maximal
	// (k,γ)-truss H: every edge of H must satisfy
	// Pr[e ∧ sup_H(e) >= k-2] >= γ, computed by brute force over worlds
	// restricted to H.
	g := completeGraph(5) // 10 edges, 2^10 worlds
	probs := uniformProbs(g, 0.7)
	pg, _ := NewGraph(g, probs)
	gamma := 0.5
	d, err := Decompose(pg, gamma)
	if err != nil {
		t.Fatal(err)
	}
	for k := int32(3); k <= d.MaxTruss; k++ {
		hEdges := d.EdgesAtLeast(k)
		if len(hEdges) == 0 {
			continue
		}
		mu := graph.NewMutableFromEdges(g.N(), hEdges)
		for _, e := range hEdges {
			got := pg.edgeEta(mu, e, k)
			want := bruteEta(pg, hEdges, e, k)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("k=%d edge %s: DP eta %v, brute force %v", k, e, got, want)
			}
			if got < gamma-1e-12 {
				t.Fatalf("k=%d edge %s: survival %v < γ in the final truss", k, e, got)
			}
		}
	}
}

// bruteEta computes Pr[e exists ∧ sup(e) >= k-2] over all worlds of the
// subgraph given by edges.
func bruteEta(pg *Graph, edges []graph.EdgeKey, e graph.EdgeKey, k int32) float64 {
	n := len(edges)
	idx := -1
	for i, f := range edges {
		if f == e {
			idx = i
		}
	}
	eu, ev := e.Endpoints()
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<idx) == 0 {
			continue // e absent
		}
		p := 1.0
		mu := graph.NewMutableFromEdges(pg.g.N(), nil)
		for i, f := range edges {
			u, v := f.Endpoints()
			pe := pg.p[f]
			if mask&(1<<i) != 0 {
				p *= pe
				mu.AddEdge(u, v)
			} else {
				p *= 1 - pe
			}
		}
		if int32(mu.CountCommonNeighbors(eu, ev)) >= k-2 {
			total += p
		}
	}
	return total
}

func TestNewGraphValidation(t *testing.T) {
	g := completeGraph(3)
	if _, err := NewGraph(g, map[graph.EdgeKey]float64{graph.Key(0, 1): 0}); err == nil {
		t.Fatal("zero probability accepted")
	}
	if _, err := NewGraph(g, map[graph.EdgeKey]float64{graph.Key(0, 1): 1.5}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	pg, err := NewGraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Prob(0, 1) != 1 {
		t.Fatal("missing probabilities must default to 1")
	}
	if pg.Prob(0, 99) != 0 {
		t.Fatal("absent edge must have probability 0")
	}
	if _, err := Decompose(pg, 0); err == nil {
		t.Fatal("γ=0 accepted")
	}
}

func TestSearchFindsReliableCommunity(t *testing.T) {
	// Two 5-cliques sharing query vertex... rather: a reliable clique and a
	// flaky clique, both containing q=0. The flaky one has low edge
	// probabilities, so at high γ the community must be the reliable one.
	b := graph.NewBuilder(9, 0)
	reliable := []int{0, 1, 2, 3, 4}
	flaky := []int{0, 5, 6, 7, 8}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(reliable[i], reliable[j])
			b.AddEdge(flaky[i], flaky[j])
		}
	}
	g := b.Build()
	probs := map[graph.EdgeKey]float64{}
	g.ForEachEdge(func(u, v int) {
		inFlaky := (u == 0 || u >= 5) && (v == 0 || v >= 5)
		if inFlaky {
			probs[graph.Key(u, v)] = 0.4
		} else {
			probs[graph.Key(u, v)] = 0.95
		}
	})
	pg, err := NewGraph(g, probs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Search(pg, []int{0}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if c.K < 4 {
		t.Fatalf("k = %d, want >= 4 (reliable clique survives)", c.K)
	}
	for _, v := range c.Vertices {
		if v >= 5 {
			t.Fatalf("flaky vertex %d in high-confidence community", v)
		}
	}
	// At a permissive γ the flaky clique qualifies too and the trussness
	// can only be >= the strict one.
	cLo, err := Search(pg, []int{0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cLo.K < c.K {
		t.Fatalf("looser γ lowered k: %d < %d", cLo.K, c.K)
	}
}

func TestSearchErrors(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	pg, _ := NewGraph(g, nil)
	if _, err := Search(pg, []int{0, 2}, 0.5); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Search(pg, nil, 0.5); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := Search(pg, []int{0}, -1); err == nil {
		t.Fatal("bad gamma accepted")
	}
}

func TestSearchCommunityAccessors(t *testing.T) {
	g := completeGraph(5)
	pg, _ := NewGraph(g, uniformProbs(g, 0.9))
	c, err := Search(pg, []int{0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gamma != 0.5 || c.EdgeCount == 0 || len(c.Vertices) == 0 {
		t.Fatalf("community: %+v", c)
	}
	if c.Diameter() != 1 {
		t.Fatalf("clique diameter = %d", c.Diameter())
	}
	if c.Subgraph() == nil || c.QueryDist != 1 {
		t.Fatalf("accessors: %+v", c)
	}
}
