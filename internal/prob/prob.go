// Package prob extends the closest-truss-community machinery to
// probabilistic (uncertain) graphs — the first direction the paper's §8
// names as future work ("how k-truss generalizes to probabilistic graphs",
// realized by the same authors in ICDE 2016). Each edge e carries an
// independent existence probability p(e); a subgraph H is a (k,γ)-truss if
// every edge satisfies
//
//	Pr[ e exists ∧ sup_H(e) >= k-2 ]  >=  γ,
//
// where the support distribution is Poisson-binomial over the triangles of
// e (triangle u-v-w survives for edge (u,v) with probability
// p(u,w)·p(v,w)). The package provides (k,γ)-truss decomposition by
// peeling and a probabilistic closest-truss-community search built on the
// same greedy framework as the deterministic algorithms.
package prob

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Graph is an undirected simple graph with independent edge probabilities.
type Graph struct {
	g *graph.Graph
	p map[graph.EdgeKey]float64
}

// NewGraph wraps a deterministic graph with edge probabilities. Every edge
// of g must have a probability in (0, 1]; missing entries default to 1.
func NewGraph(g *graph.Graph, p map[graph.EdgeKey]float64) (*Graph, error) {
	pg := &Graph{g: g, p: make(map[graph.EdgeKey]float64, g.M())}
	var err error
	g.ForEachEdge(func(u, v int) {
		if err != nil {
			return
		}
		k := graph.Key(u, v)
		prob, ok := p[k]
		if !ok {
			prob = 1
		}
		if prob <= 0 || prob > 1 {
			err = fmt.Errorf("prob: edge %s has probability %v outside (0,1]", k, prob)
			return
		}
		pg.p[k] = prob
	})
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// Base returns the underlying deterministic graph.
func (pg *Graph) Base() *graph.Graph { return pg.g }

// Prob returns p(u,v), or 0 if the edge does not exist.
func (pg *Graph) Prob(u, v int) float64 { return pg.p[graph.Key(u, v)] }

// supTailProb returns Pr[X >= s] for a Poisson-binomial variable X with
// the given success probabilities, via the standard O(n·s) DP on the
// partial distribution (truncated at s successes, which is all we need).
func supTailProb(tri []float64, s int) float64 {
	if s <= 0 {
		return 1
	}
	if s > len(tri) {
		return 0
	}
	// dist[j] = Pr[j successes so far], for j < s; tail accumulates Pr[>=s].
	dist := make([]float64, s)
	dist[0] = 1
	tail := 0.0
	for _, t := range tri {
		// Probability mass moving from j=s-1 to s leaves the window.
		tail += dist[s-1] * t
		for j := s - 1; j >= 1; j-- {
			dist[j] = dist[j]*(1-t) + dist[j-1]*t
		}
		dist[0] *= 1 - t
	}
	return tail
}

// edgeEta returns Pr[e exists ∧ sup(e) >= k-2] in the current mutable
// subgraph mu, using pg's probabilities.
func (pg *Graph) edgeEta(mu *graph.Mutable, e graph.EdgeKey, k int32) float64 {
	u, v := e.Endpoints()
	var tri []float64
	mu.CommonNeighbors(u, v, func(w int) {
		tri = append(tri, pg.p[graph.Key(u, w)]*pg.p[graph.Key(v, w)])
	})
	return pg.p[e] * supTailProb(tri, int(k-2))
}

// Decomposition maps each edge to its probabilistic trussness at level γ:
// the largest k such that the edge survives in the maximal (k,γ)-truss.
type Decomposition struct {
	Gamma     float64
	EdgeTruss map[graph.EdgeKey]int32
	MaxTruss  int32
}

// Decompose computes the (k,γ)-truss decomposition by iterated peeling:
// for k = 2, 3, ..., repeatedly remove edges whose survival probability at
// level k falls below γ; edges removed during round k have probabilistic
// trussness k.
func Decompose(pg *Graph, gamma float64) (*Decomposition, error) {
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("prob: gamma %v outside (0,1]", gamma)
	}
	d := &Decomposition{Gamma: gamma, EdgeTruss: make(map[graph.EdgeKey]int32, pg.g.M())}
	mu := graph.NewMutable(pg.g, nil)
	k := int32(2)
	for mu.M() > 0 {
		// Remove all edges failing level k, cascading.
		for {
			var victims []graph.EdgeKey
			for _, e := range mu.EdgeKeys() {
				if pg.edgeEta(mu, e, k) < gamma {
					victims = append(victims, e)
				}
			}
			if len(victims) == 0 {
				break
			}
			for _, e := range victims {
				u, v := e.Endpoints()
				if mu.HasEdge(u, v) {
					// τ_γ(e) = k-1: e survived level k-1 but not k. At
					// k=2 an edge can fail only by p(e) < γ; call that 1.
					d.EdgeTruss[e] = k - 1
					mu.DeleteEdge(u, v)
				}
			}
		}
		if mu.M() > 0 {
			if k > d.MaxTruss {
				d.MaxTruss = k
			}
			// Survivors of level k are at least k; continue upward.
			for _, e := range mu.EdgeKeys() {
				d.EdgeTruss[e] = k
			}
		}
		k++
	}
	return d, nil
}

// EdgesAtLeast returns edges with probabilistic trussness >= k.
func (d *Decomposition) EdgesAtLeast(k int32) []graph.EdgeKey {
	var out []graph.EdgeKey
	for e, t := range d.EdgeTruss {
		if t >= k {
			out = append(out, e)
		}
	}
	return out
}

// ErrNoCommunity is returned when no connected (k,γ)-truss covers Q.
var ErrNoCommunity = errors.New("prob: no connected (k,γ)-truss contains the query vertices")

// Community is a probabilistic closest truss community.
type Community struct {
	// K is the probabilistic trussness and Gamma the confidence level.
	K     int32
	Gamma float64
	// Vertices is the sorted member set.
	Vertices []int
	// EdgeCount counts community edges.
	EdgeCount int
	// QueryDist is the graph query distance within the community.
	QueryDist int

	sub *graph.Mutable
}

// Subgraph exposes the community subgraph (read-only).
func (c *Community) Subgraph() *graph.Mutable { return c.sub }

// Diameter computes the exact community diameter.
func (c *Community) Diameter() int {
	d, _ := graph.Diameter(c.sub)
	return d
}

// Search finds a connected (k,γ)-truss containing q with the largest k
// and then greedily minimizes the query distance exactly as Algorithm 1
// does deterministically: repeatedly delete the furthest vertex and restore
// the (k,γ)-truss property, returning the best intermediate graph.
func Search(pg *Graph, q []int, gamma float64) (*Community, error) {
	if len(q) == 0 {
		return nil, errors.New("prob: empty query")
	}
	d, err := Decompose(pg, gamma)
	if err != nil {
		return nil, err
	}
	// Largest k whose (k,γ)-truss connects q.
	var g0 *graph.Mutable
	var k int32
	for k = d.MaxTruss; k >= 2; k-- {
		mu := graph.NewMutableFromEdges(pg.g.N(), d.EdgesAtLeast(k))
		if graph.Connected(mu, q) {
			comp := graph.Component(mu, q[0])
			g0 = graph.InducedMutable(mu, comp)
			break
		}
	}
	if g0 == nil {
		return nil, ErrNoCommunity
	}
	best := g0.Clone()
	bestQD, _ := graph.GraphQueryDistance(best, q)
	work := g0
	isQuery := make(map[int]bool, len(q))
	for _, v := range q {
		isQuery[v] = true
	}
	for {
		qd := graph.QueryDistances(work, q)
		// Furthest vertex, preferring non-query.
		pick, pickD := -1, int32(-1)
		for v := 0; v < work.NumIDs(); v++ {
			if !work.Present(v) {
				continue
			}
			dv := qd[v]
			if dv == graph.Unreachable {
				dv = 1 << 30
			}
			if dv > pickD || (dv == pickD && pick >= 0 && isQuery[pick] && !isQuery[v]) {
				pick, pickD = v, dv
			}
		}
		if pick < 0 || pickD == 0 {
			break
		}
		work.DeleteVertex(pick)
		maintainProbTruss(pg, work, k, gamma)
		if !graph.Connected(work, q) {
			break
		}
		if cur, ok := graph.GraphQueryDistance(work, q); ok && cur < bestQD {
			best = work.Clone()
			bestQD = cur
		}
	}
	comp := graph.Component(best, q[0])
	best = graph.InducedMutable(best, comp)
	return &Community{
		K:         k,
		Gamma:     gamma,
		Vertices:  best.Vertices(),
		EdgeCount: best.M(),
		QueryDist: int(bestQD),
		sub:       best,
	}, nil
}

// maintainProbTruss restores the (k,γ)-truss property after deletions by
// cascading removal of edges whose survival probability fell below γ.
func maintainProbTruss(pg *Graph, mu *graph.Mutable, k int32, gamma float64) {
	for {
		var victims []graph.EdgeKey
		for _, e := range mu.EdgeKeys() {
			if pg.edgeEta(mu, e, k) < gamma {
				victims = append(victims, e)
			}
		}
		if len(victims) == 0 {
			return
		}
		for _, e := range victims {
			u, v := e.Endpoints()
			mu.DeleteEdge(u, v)
		}
		mu.RemoveIsolated(nil)
	}
}
