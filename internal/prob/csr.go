package prob

// This file is the dense CSR port of the probabilistic (k,γ)-truss
// machinery: edge probabilities live in a flat edge-ID-indexed []float64
// instead of an EdgeKey map, trussness in a flat []int32, the survival-
// probability DP runs on reusable scratch, and the peeling states are
// pooled workspace shells. The map-based Decompose/Search above are
// retained as differential oracles; both must produce identical
// decompositions and communities (csr_test.go enforces it). Identity is
// exact down to float bits: both sides enumerate the triangle neighbors of
// an edge in ascending-w merged order, so the Poisson-binomial DP performs
// the same operations in the same order.

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// SyntheticProb returns the deterministic synthetic existence probability
// of edge {u, v}: a splitmix64 hash of the canonical edge key mapped into
// [0.5, 1.0). It depends only on the endpoints, so every epoch, replica and
// oracle assigns the same probability to the same edge — the serving plane
// uses it when the ingest path carries no probabilities of its own.
func SyntheticProb(u, v int) float64 {
	x := uint64(graph.Key(u, v)) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return 0.5 + float64(x>>11)/(1<<53)/2
}

// SyntheticProbs returns the dense edge-ID-indexed synthetic probability
// vector of g.
func SyntheticProbs(g *graph.Graph) []float64 {
	p := make([]float64, g.M())
	for e := int32(0); e < int32(g.M()); e++ {
		u, v := g.EdgeEndpoints(e)
		p[e] = SyntheticProb(u, v)
	}
	return p
}

// ProbMap converts a dense probability vector to the EdgeKey map form the
// map-based oracle consumes (differential-test plumbing).
func ProbMap(g *graph.Graph, probs []float64) map[graph.EdgeKey]float64 {
	m := make(map[graph.EdgeKey]float64, g.M())
	for e := int32(0); e < int32(g.M()); e++ {
		u, v := g.EdgeEndpoints(e)
		m[graph.Key(u, v)] = probs[e]
	}
	return m
}

// etaScratch is the reusable buffer set of the survival-probability DP.
type etaScratch struct {
	tri  []float64 // per-triangle survival probabilities of one edge
	dist []float64 // truncated Poisson-binomial partial distribution
}

// supTailProbInto is supTailProb on caller-owned scratch: identical
// operation sequence, no allocation.
func supTailProbInto(tri []float64, s int, sc *etaScratch) float64 {
	if s <= 0 {
		return 1
	}
	if s > len(tri) {
		return 0
	}
	if cap(sc.dist) < s {
		sc.dist = make([]float64, s)
	}
	dist := sc.dist[:s]
	dist[0] = 1
	for i := 1; i < s; i++ {
		dist[i] = 0
	}
	tail := 0.0
	for _, t := range tri {
		tail += dist[s-1] * t
		for j := s - 1; j >= 1; j-- {
			dist[j] = dist[j]*(1-t) + dist[j-1]*t
		}
		dist[0] *= 1 - t
	}
	return tail
}

// etaOf is edgeEta on dense storage: Pr[e exists ∧ sup(e) >= k-2] in mu.
// mu must be overlay-pure so the triangle enumeration is the ascending-w
// merge the oracle's CommonNeighbors performs.
func etaOf(mu *graph.Mutable, probs []float64, e int32, u, v int, k int32, sc *etaScratch) float64 {
	tri := sc.tri[:0]
	mu.CommonNeighborsEdges(u, v, func(_, euw, evw int32) {
		tri = append(tri, probs[euw]*probs[evw])
	})
	sc.tri = tri
	return probs[e] * supTailProbInto(tri, int(k-2), sc)
}

// forEachAliveEdge visits every live edge of a pure overlay once, as
// (edge ID, endpoints u < w).
func forEachAliveEdge(mu *graph.Mutable, fn func(e int32, u, v int)) {
	for u := 0; u < mu.NumIDs(); u++ {
		if !mu.Present(u) {
			continue
		}
		mu.ForEachIncidentEdge(u, func(e int32, w int) {
			if w > u {
				fn(e, u, w)
			}
		})
	}
}

// DenseDecomposition is the flat-array twin of Decomposition: Truss[e] is
// the probabilistic trussness of base edge e at level Gamma.
type DenseDecomposition struct {
	Gamma    float64
	Truss    []int32
	MaxTruss int32
}

// EdgeIDsAtLeast appends the base edge IDs with trussness >= k to dst.
func (d *DenseDecomposition) EdgeIDsAtLeast(k int32, dst []int32) []int32 {
	for e, t := range d.Truss {
		if t >= k {
			dst = append(dst, int32(e))
		}
	}
	return dst
}

// DecomposeCSR is the dense twin of Decompose: iterated peeling on a pooled
// workspace shell with flat probability/trussness arrays, polling
// cancellation once per cascade round. The Truss values are identical to
// the oracle's EdgeTruss map.
func DecomposeCSR(g *graph.Graph, probs []float64, gamma float64, ws *trussindex.Workspace) (*DenseDecomposition, error) {
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("prob: gamma %v outside (0,1]", gamma)
	}
	if len(probs) != g.M() {
		return nil, fmt.Errorf("prob: %d probabilities for %d edges", len(probs), g.M())
	}
	d := &DenseDecomposition{Gamma: gamma, Truss: make([]int32, g.M())}
	mu := ws.Shell()
	for e := int32(0); e < int32(g.M()); e++ {
		mu.AddEdgeByID(e)
	}
	sc := &etaScratch{}
	k := int32(2)
	for mu.M() > 0 {
		for {
			if err := ws.Canceled(); err != nil {
				return nil, err
			}
			ws.Victims = ws.Victims[:0]
			forEachAliveEdge(mu, func(e int32, u, v int) {
				if etaOf(mu, probs, e, u, v, k, sc) < gamma {
					ws.Victims = append(ws.Victims, int(e))
				}
			})
			if len(ws.Victims) == 0 {
				break
			}
			for _, e := range ws.Victims {
				if mu.DeleteEdgeByID(int32(e)) {
					// τ_γ(e) = k-1: survived level k-1, failed level k.
					d.Truss[e] = k - 1
				}
			}
		}
		if mu.M() > 0 {
			if k > d.MaxTruss {
				d.MaxTruss = k
			}
			forEachAliveEdge(mu, func(e int32, _, _ int) { d.Truss[e] = k })
		}
		k++
	}
	return d, nil
}

// maintainCSR restores the (k,γ)-truss property after deletions, the dense
// twin of maintainProbTruss: cascade removal of edges whose survival
// probability fell below γ, dropping isolated vertices each round.
func maintainCSR(mu *graph.Mutable, probs []float64, k int32, gamma float64, sc *etaScratch, ws *trussindex.Workspace) error {
	for {
		if err := ws.Canceled(); err != nil {
			return err
		}
		ws.Victims = ws.Victims[:0]
		forEachAliveEdge(mu, func(e int32, u, v int) {
			if etaOf(mu, probs, e, u, v, k, sc) < gamma {
				ws.Victims = append(ws.Victims, int(e))
			}
		})
		if len(ws.Victims) == 0 {
			return nil
		}
		for _, e := range ws.Victims {
			mu.DeleteEdgeByID(int32(e))
		}
		mu.RemoveIsolated(nil)
	}
}

// Stats reports the execution shape of one CSR search.
type Stats struct {
	// MaxTruss is the decomposition's largest probabilistic trussness.
	MaxTruss int32
	// SeedEdges counts edges of the starting (k,γ)-truss component.
	SeedEdges int
	// PeelRounds counts diameter-reduction iterations.
	PeelRounds int
	// EdgesPeeled counts edges removed between the seed and the answer.
	EdgesPeeled int
	// Seed is the decomposition-plus-seed-selection time; Peel the greedy
	// diameter-reduction time.
	Seed, Peel time.Duration
}

// CSRCommunity is the dense-port answer; Sub is freshly allocated and never
// aliases pooled workspace scratch.
type CSRCommunity struct {
	// K is the probabilistic trussness and Gamma the confidence level.
	K     int32
	Gamma float64
	// Sub is the community subgraph (an overlay of the base CSR graph).
	Sub *graph.Mutable
	// QueryDist is the graph query distance within the community.
	QueryDist int
}

// SearchCSR is the dense-port twin of Search: decompose at level gamma,
// seed with the highest-k connected (k,γ)-truss containing q (kCap > 0
// additionally caps the starting k), then greedily delete the furthest
// vertex and restore the truss property, keeping the best intermediate
// state. Cancellation is polled through ws once per peel round.
func SearchCSR(g *graph.Graph, probs []float64, q []int, gamma float64, kCap int32, ws *trussindex.Workspace) (*CSRCommunity, *Stats, error) {
	if len(q) == 0 {
		return nil, nil, ErrNoCommunity
	}
	tSeed := time.Now()
	d, err := DecomposeCSR(g, probs, gamma, ws)
	if err != nil {
		return nil, nil, err
	}
	st := &Stats{MaxTruss: d.MaxTruss}

	// Largest (capped) k whose (k,γ)-truss connects q, then its Q-component.
	start := d.MaxTruss
	if kCap >= 2 && kCap < start {
		start = kCap
	}
	var work *graph.Mutable
	var k int32
	for k = start; k >= 2; k-- {
		mu := ws.Shell()
		for e, t := range d.Truss {
			if t >= k {
				mu.AddEdgeByID(int32(e))
			}
		}
		if !connectedOn(mu, q, ws) {
			continue
		}
		comp := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
		ws.QueueA = comp
		work = ws.Shell()
		for e, t := range d.Truss {
			if t < k {
				continue
			}
			u, v := g.EdgeEndpoints(int32(e))
			if ws.StampA.Marked(int32(u)) && ws.StampA.Marked(int32(v)) {
				work.AddEdgeByID(int32(e))
			}
		}
		break
	}
	if work == nil {
		return nil, nil, ErrNoCommunity
	}
	st.SeedEdges = work.M()
	st.Seed = time.Since(tSeed)
	tPeel := time.Now()

	best := work.Clone()
	bestQD, _ := graph.GraphQueryDistance(best, q)
	isQ := ws.StampB
	isQ.Next()
	for _, v := range q {
		isQ.Set(int32(v))
	}
	sc := &etaScratch{}
	for {
		if err := ws.Canceled(); err != nil {
			return nil, nil, err
		}
		qd := graph.QueryDistances(work, q)
		// Furthest vertex, preferring non-query on ties.
		pick, pickD := -1, int32(-1)
		for v := 0; v < work.NumIDs(); v++ {
			if !work.Present(v) {
				continue
			}
			dv := qd[v]
			if dv == graph.Unreachable {
				dv = 1 << 30
			}
			if dv > pickD || (dv == pickD && pick >= 0 && isQ.Marked(int32(pick)) && !isQ.Marked(int32(v))) {
				pick, pickD = v, dv
			}
		}
		if pick < 0 || pickD == 0 {
			break
		}
		st.PeelRounds++
		work.DeleteVertex(pick)
		if err := maintainCSR(work, probs, k, gamma, sc, ws); err != nil {
			return nil, nil, err
		}
		if !connectedOn(work, q, ws) {
			break
		}
		if cur, ok := graph.GraphQueryDistance(work, q); ok && cur < bestQD {
			best = work.Clone()
			bestQD = cur
		}
	}
	comp := graph.Component(best, q[0])
	sub := graph.InducedMutable(best, comp)
	st.EdgesPeeled = st.SeedEdges - sub.M()
	st.Peel = time.Since(tPeel)
	return &CSRCommunity{K: k, Gamma: gamma, Sub: sub, QueryDist: int(bestQD)}, st, nil
}

// connectedOn reports whether all of q is present and mutually reachable in
// mu, on stamped workspace scratch (the allocation-free twin of
// graph.Connected).
func connectedOn(mu *graph.Mutable, q []int, ws *trussindex.Workspace) bool {
	for _, v := range q {
		if !mu.Present(v) {
			return false
		}
	}
	if len(q) <= 1 {
		return true
	}
	reach := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = reach
	for _, v := range q[1:] {
		if !ws.StampA.Marked(int32(v)) {
			return false
		}
	}
	return true
}
