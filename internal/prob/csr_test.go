package prob

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

func undirRandom(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func acquireWS(g *graph.Graph) *trussindex.Workspace {
	return trussindex.Build(g).AcquireWorkspace()
}

func TestSyntheticProbsStable(t *testing.T) {
	g := undirRandom(3, 20, 0.3)
	a, b := SyntheticProbs(g), SyntheticProbs(g)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("synthetic probabilities are not a pure function of the edges")
	}
	for e, p := range a {
		if p < 0.5 || p >= 1 {
			t.Fatalf("edge %d: prob %f outside [0.5, 1)", e, p)
		}
	}
}

// TestDecomposeCSRMatchesOracle checks the dense decomposition against the
// map-based oracle edge by edge: identical trussness for every edge at
// several confidence levels. The Poisson-binomial DP runs over identical
// ascending-neighbor orders on both sides, so the float comparisons — and
// therefore the peel — agree exactly, not just approximately.
func TestDecomposeCSRMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := undirRandom(seed, 26, 0.22)
		probs := SyntheticProbs(g)
		pg, err := NewGraph(g, ProbMap(g, probs))
		if err != nil {
			t.Fatal(err)
		}
		ws := acquireWS(g)
		for _, gamma := range []float64{0.3, 0.5, 0.8} {
			want, err := Decompose(pg, gamma)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecomposeCSR(g, probs, gamma, ws)
			if err != nil {
				t.Fatal(err)
			}
			if got.MaxTruss != want.MaxTruss {
				t.Fatalf("seed %d γ=%.1f: max truss %d, want %d", seed, gamma, got.MaxTruss, want.MaxTruss)
			}
			for e := int32(0); e < int32(g.M()); e++ {
				if got.Truss[e] != want.EdgeTruss[g.EdgeKeyOf(e)] {
					u, v := g.EdgeEndpoints(e)
					t.Fatalf("seed %d γ=%.1f: edge (%d,%d) truss %d, want %d",
						seed, gamma, u, v, got.Truss[e], want.EdgeTruss[g.EdgeKeyOf(e)])
				}
			}
		}
		ws.Release()
	}
}

// TestSearchCSRMatchesOracle is the differential harness for the full
// search: seed level, community membership, edge count, and query distance
// all byte-identical to the retained oracle.
func TestSearchCSRMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := undirRandom(seed, 26, 0.22)
		probs := SyntheticProbs(g)
		pg, err := NewGraph(g, ProbMap(g, probs))
		if err != nil {
			t.Fatal(err)
		}
		ws := acquireWS(g)
		rng := rand.New(rand.NewSource(seed + 200))
		for _, gamma := range []float64{0.3, 0.6} {
			q := []int{rng.Intn(g.N()), rng.Intn(g.N())}
			want, wantErr := Search(pg, q, gamma)
			got, _, gotErr := SearchCSR(g, probs, q, gamma, 0, ws)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d γ=%.1f q %v: oracle err %v, port err %v", seed, gamma, q, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNoCommunity) {
					t.Fatalf("seed %d: port error %v, want ErrNoCommunity", seed, gotErr)
				}
				continue
			}
			if got.K != want.K || got.Gamma != want.Gamma {
				t.Fatalf("seed %d γ=%.1f q %v: (k,γ) = (%d,%v), want (%d,%v)",
					seed, gamma, q, got.K, got.Gamma, want.K, want.Gamma)
			}
			if !reflect.DeepEqual(got.Sub.Vertices(), want.Vertices) {
				t.Fatalf("seed %d γ=%.1f q %v: vertices = %v, want %v",
					seed, gamma, q, got.Sub.Vertices(), want.Vertices)
			}
			if got.Sub.M() != want.EdgeCount {
				t.Fatalf("seed %d γ=%.1f q %v: edges = %d, want %d", seed, gamma, q, got.Sub.M(), want.EdgeCount)
			}
			if got.QueryDist != want.QueryDist {
				t.Fatalf("seed %d γ=%.1f q %v: query dist = %d, want %d", seed, gamma, q, got.QueryDist, want.QueryDist)
			}
		}
		ws.Release()
	}
}

func TestSearchCSRKCap(t *testing.T) {
	g := undirRandom(4, 26, 0.3)
	probs := SyntheticProbs(g)
	ws := acquireWS(g)
	defer ws.Release()
	free, _, err := SearchCSR(g, probs, []int{0, 1}, 0.3, 0, ws)
	if err != nil {
		t.Skip("query has no community on this seed")
	}
	capped, _, err := SearchCSR(g, probs, []int{0, 1}, 0.3, 2, ws)
	if err != nil {
		t.Fatalf("capped search failed: %v", err)
	}
	if capped.K > 2 {
		t.Fatalf("kCap=2 produced k=%d", capped.K)
	}
	if free.K < capped.K {
		t.Fatalf("uncapped k %d below capped k %d", free.K, capped.K)
	}
}

func TestDecomposeCSRValidation(t *testing.T) {
	g := undirRandom(5, 10, 0.4)
	probs := SyntheticProbs(g)
	ws := acquireWS(g)
	defer ws.Release()
	if _, err := DecomposeCSR(g, probs, 0, ws); err == nil {
		t.Fatal("γ=0 accepted")
	}
	if _, err := DecomposeCSR(g, probs, 1.5, ws); err == nil {
		t.Fatal("γ>1 accepted")
	}
	if _, err := DecomposeCSR(g, probs[:1], 0.5, ws); err == nil {
		t.Fatal("short prob vector accepted")
	}
}

func TestSearchCSRCancellation(t *testing.T) {
	g := undirRandom(6, 40, 0.3)
	probs := SyntheticProbs(g)
	ws := acquireWS(g)
	defer ws.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws.SetContext(ctx)
	defer ws.SetContext(context.Background())
	if _, _, err := SearchCSR(g, probs, []int{0, 1}, 0.5, 0, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
