// Package core implements the paper's closest-truss-community search
// algorithms: the 2-approximate greedy Basic (Algorithm 1), the faster
// (2+ε)-approximate BulkDelete (Algorithm 4), and the local-exploration
// heuristic LCTC (Algorithm 5), plus the Truss baseline that returns G0
// without free-rider removal.
package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Community is the result of a community search: a connected k-truss
// subgraph containing the query vertices.
type Community struct {
	// Algorithm names the producing algorithm ("Basic", "BD", "LCTC", ...).
	Algorithm string
	// K is the trussness of the community.
	K int32
	// Query holds the query vertices.
	Query []int

	vertices  []int
	edgeCount int
	queryDist int
	sub       *graph.Mutable
	diameter  int
	diamDone  bool
}

// initCommunity fills a caller-allocated Community in place (Result embeds
// one by value, so the whole query answer is a single allocation).
func initCommunity(c *Community, algo string, sub *graph.Mutable, k int32, q []int) {
	*c = Community{
		Algorithm: algo,
		K:         k,
		Query:     append([]int(nil), q...),
		vertices:  sub.Vertices(),
		edgeCount: sub.M(),
		sub:       sub,
		queryDist: -1,
	}
	if qd, ok := graph.GraphQueryDistance(sub, q); ok {
		c.queryDist = int(qd)
	}
}

// N returns the number of vertices in the community.
func (c *Community) N() int { return len(c.vertices) }

// M returns the number of edges in the community.
func (c *Community) M() int { return c.edgeCount }

// Vertices returns the sorted community vertex set (shared; do not modify).
func (c *Community) Vertices() []int { return c.vertices }

// Contains reports whether v belongs to the community.
func (c *Community) Contains(v int) bool {
	i := sort.SearchInts(c.vertices, v)
	return i < len(c.vertices) && c.vertices[i] == v
}

// Subgraph exposes the community subgraph. Treat it as read-only.
func (c *Community) Subgraph() *graph.Mutable { return c.sub }

// QueryDist returns dist(H, Q), the graph query distance (Definition 3),
// or -1 if some community vertex cannot reach every query vertex.
func (c *Community) QueryDist() int { return c.queryDist }

// Density returns the edge density 2m/(n(n-1)).
func (c *Community) Density() float64 {
	n := len(c.vertices)
	if n < 2 {
		return 0
	}
	return 2 * float64(c.edgeCount) / (float64(n) * float64(n-1))
}

// parallelDiameterThreshold is the community size beyond which the exact
// all-pairs BFS sweep is fanned out over multiple goroutines.
const parallelDiameterThreshold = 512

// Diameter returns the exact diameter of the community subgraph, computed
// lazily (all-pairs BFS, parallel for large communities) and cached.
func (c *Community) Diameter() int {
	if !c.diamDone {
		if len(c.vertices) > parallelDiameterThreshold {
			c.diameter, _ = graph.DiameterParallel(c.sub, 0)
		} else {
			c.diameter, _ = graph.Diameter(c.sub)
		}
		c.diamDone = true
	}
	return c.diameter
}

// String summarizes the community.
func (c *Community) String() string {
	return fmt.Sprintf("%s: %d-truss community, %d nodes, %d edges, query dist %d, density %.3f",
		c.Algorithm, c.K, c.N(), c.M(), c.queryDist, c.Density())
}
