package core

import (
	"context"
	"testing"
)

// BenchmarkSearchDispatch measures the unified entry point against the
// legacy per-algorithm wrappers on the shared 59k-edge workload, proving
// the Search(ctx, Request) dispatch layer adds zero allocations and no
// measurable time over the pre-redesign direct calls (the wrappers decode
// Options and route through the identical pipeline, so Wrapper/* here is
// the old entry-point cost shape; compare against BENCH_pr2.json's
// BenchmarkLCTC/BenchmarkBasic for the pre-redesign absolute numbers).
func BenchmarkSearchDispatch(b *testing.B) {
	s, q := searchBenchSetup(b)
	ctx := context.Background()
	run := func(name string, fn func() (int, error)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := fn()
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("empty community")
				}
			}
		})
	}
	run("Search/LCTC", func() (int, error) {
		res, err := s.Search(ctx, Request{Q: q})
		if err != nil {
			return 0, err
		}
		return res.N(), nil
	})
	run("Wrapper/LCTC", func() (int, error) {
		c, err := s.LCTC(q, nil)
		if err != nil {
			return 0, err
		}
		return c.N(), nil
	})
	run("Search/Basic", func() (int, error) {
		res, err := s.Search(ctx, Request{Q: q, Algo: AlgoBasic})
		if err != nil {
			return 0, err
		}
		return res.N(), nil
	})
	run("Wrapper/Basic", func() (int, error) {
		c, err := s.Basic(q, nil)
		if err != nil {
			return 0, err
		}
		return c.N(), nil
	})
	run("Search/TrussOnly", func() (int, error) {
		res, err := s.Search(ctx, Request{Q: q, Algo: AlgoTrussOnly})
		if err != nil {
			return 0, err
		}
		return res.N(), nil
	})
}

// TestSearchDispatchZeroAllocOverhead pins the acceptance criterion
// numerically: the unified entry point allocates exactly as much as the
// legacy wrapper path for the same algorithm (the wrapper IS a Search call
// plus Options decoding, so equality means the dispatch layer itself —
// validation, stats, Result packing — contributes zero allocations; the
// Result's stats ride inside the single allocation that used to hold the
// bare Community).
func TestSearchDispatchZeroAllocOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement on the large shared workload")
	}
	g := requestTestSearcher(t) // warm small index for a pure dispatch probe
	ctx := context.Background()
	q := []int{0, 1}
	for _, tc := range []struct {
		name string
		req  Request
		leg  func() error
	}{
		{"TrussOnly", Request{Q: q, Algo: AlgoTrussOnly}, func() error { _, err := g.TrussOnly(q, nil); return err }},
		{"LCTC", Request{Q: q}, func() error { _, err := g.LCTC(q, nil); return err }},
	} {
		// Warm the workspace pool so neither path pays first-use costs.
		if _, err := g.Search(ctx, tc.req); err != nil {
			t.Fatal(err)
		}
		searchAllocs := testing.AllocsPerRun(200, func() {
			if _, err := g.Search(ctx, tc.req); err != nil {
				t.Fatal(err)
			}
		})
		legacyAllocs := testing.AllocsPerRun(200, func() {
			if err := tc.leg(); err != nil {
				t.Fatal(err)
			}
		})
		if searchAllocs > legacyAllocs {
			t.Errorf("%s: Search allocates %.1f/op vs %.1f/op for the legacy wrapper — dispatch added allocations",
				tc.name, searchAllocs, legacyAllocs)
		}
		t.Logf("%s: Search %.1f allocs/op, legacy wrapper %.1f allocs/op", tc.name, searchAllocs, legacyAllocs)
	}
}
