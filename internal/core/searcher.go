package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/steiner"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// Options tunes the search algorithms. The zero value requests the paper's
// defaults (maximum trussness, η=1000, γ=3).
type Options struct {
	// FixedK, when > 0, searches for a community of the given trussness
	// instead of the maximum (the Exp-5 variant). For LCTC it caps the
	// expansion level at min(FixedK, Steiner-tree trussness).
	FixedK int32
	// Eta is LCTC's node-budget threshold η for the local expansion
	// (default 1000).
	Eta int
	// Gamma is the truss-distance penalty γ (default 3). Gamma = -1 selects
	// plain hop distance (γ=0); 0 means "default".
	Gamma float64
	// Verify re-checks the output against the CTC conditions (connected
	// k-truss containing Q) and fails loudly on violation. Meant for tests.
	Verify bool
	// Timeout, when positive, bounds the peeling phase; exceeding it
	// returns ErrTimeout (the experiments report such runs as "Inf").
	Timeout time.Duration
}

func (o *Options) deadline() time.Time {
	if o == nil || o.Timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(o.Timeout)
}

func (o *Options) eta() int {
	if o == nil || o.Eta <= 0 {
		return 1000
	}
	return o.Eta
}

func (o *Options) gamma() float64 {
	if o == nil || o.Gamma == 0 {
		return 3
	}
	if o.Gamma < 0 {
		return 0
	}
	return o.Gamma
}

func (o *Options) fixedK() int32 {
	if o == nil {
		return 0
	}
	return o.FixedK
}

func (o *Options) verify() bool { return o != nil && o.Verify }

// Searcher runs closest-truss-community searches against a truss index.
type Searcher struct {
	ix *trussindex.Index
}

// NewSearcher wraps a prebuilt truss index.
func NewSearcher(ix *trussindex.Index) *Searcher { return &Searcher{ix: ix} }

// Index returns the underlying truss index.
func (s *Searcher) Index() *trussindex.Index { return s.ix }

// findG0 resolves the starting graph: the maximal connected k-truss with
// the largest k (or the fixed k requested).
func (s *Searcher) findG0(q []int, opt *Options) (*graph.Mutable, int32, error) {
	if k := opt.fixedK(); k > 0 {
		mu, err := s.ix.FindKTruss(q, k)
		return mu, k, err
	}
	return s.ix.FindG0(q)
}

// TrussOnly implements the "Truss" baseline: it returns G0 itself, the
// maximal connected k-truss containing Q with the largest k, with no
// free-rider elimination (Algorithm 2 output).
func (s *Searcher) TrussOnly(q []int, opt *Options) (*Community, error) {
	g0, k, err := s.findG0(q, opt)
	if err != nil {
		return nil, err
	}
	return s.finish("Truss", g0, k, q, opt)
}

// Basic implements Algorithm 1: find G0, then repeatedly delete the single
// vertex furthest from Q, maintaining the k-truss property, and return the
// intermediate graph with minimum query distance. 2-approximation on the
// diameter (Theorem 3).
func (s *Searcher) Basic(q []int, opt *Options) (*Community, error) {
	g0, k, err := s.findG0(q, opt)
	if err != nil {
		return nil, err
	}
	best, err := greedyPeel(g0, k, q, peelSingle, opt.deadline())
	if err != nil {
		return nil, fmt.Errorf("core: Basic: %w", err)
	}
	return s.finish("Basic", best, k, q, opt)
}

// BulkDelete implements Algorithm 4: like Basic but deleting the whole set
// L = {u : dist(u,Q) >= d-1} per iteration, terminating in O(n'/k)
// iterations (Lemma 6) with a (2+ε)-approximation (Theorem 6).
func (s *Searcher) BulkDelete(q []int, opt *Options) (*Community, error) {
	g0, k, err := s.findG0(q, opt)
	if err != nil {
		return nil, err
	}
	best, err := greedyPeel(g0, k, q, peelBulk, opt.deadline())
	if err != nil {
		return nil, fmt.Errorf("core: BulkDelete: %w", err)
	}
	return s.finish("BD", best, k, q, opt)
}

// LCTC implements Algorithm 5: seed a Steiner tree over Q under truss
// distance, locally expand it to at most η vertices through edges of
// trussness >= kt, extract the best connected k-truss containing Q from the
// expansion, and shrink it with the exact-distance bulk rule
// L' = {u : dist(u,Q) >= d}.
func (s *Searcher) LCTC(q []int, opt *Options) (*Community, error) {
	tree, err := steiner.Build(s.ix, q, opt.gamma())
	if err != nil {
		return nil, fmt.Errorf("core: LCTC Steiner seed: %w", err)
	}
	kt := tree.MinTruss
	if fk := opt.fixedK(); fk > 0 && fk < kt {
		kt = fk
	}
	if kt < 2 {
		kt = 2
	}
	gt := s.expand(tree.Vertices, kt, opt.eta())
	// Truss-decompose the expansion and find the largest k <= kt such that
	// a connected k-truss containing Q survives inside Gt.
	dec := truss.DecomposeMutable(gt)
	ht, k, err := bestKTrussWithin(dec, q, kt)
	if err != nil {
		return nil, fmt.Errorf("core: LCTC extraction: %w", err)
	}
	best, err := greedyPeel(ht, k, q, peelBulkExact, opt.deadline())
	if err != nil {
		return nil, fmt.Errorf("core: LCTC: %w", err)
	}
	return s.finish("LCTC", best, k, q, opt)
}

// expand grows the vertex set from the Steiner tree through edges of
// trussness >= kt, BFS order, stopping once the budget is reached, and
// returns the induced subgraph on the collected vertices restricted to
// edges of trussness >= kt.
func (s *Searcher) expand(seed []int, kt int32, eta int) *graph.Mutable {
	n := s.ix.Graph().N()
	in := make([]bool, n)
	var frontier []int32
	count := 0
	for _, v := range seed {
		if !in[v] {
			in[v] = true
			count++
			frontier = append(frontier, int32(v))
		}
	}
	for head := 0; head < len(frontier) && count < eta; head++ {
		v := int(frontier[head])
		s.ix.ForEachNeighborAtLeast(v, kt, func(u int) {
			if !in[u] && count < eta {
				in[u] = true
				count++
				frontier = append(frontier, int32(u))
			}
		})
	}
	// The expansion contains only indexed-graph edges, so build it as an
	// edge-bitset overlay of the base graph.
	gt := graph.NewMutableShell(s.ix.Graph())
	for v := 0; v < n; v++ {
		if !in[v] {
			continue
		}
		gt.EnsureVertex(v)
		s.ix.ForEachNeighborAtLeast(v, kt, func(u int) {
			if u > v && in[u] {
				gt.AddEdge(v, u)
			}
		})
	}
	return gt
}

// bestKTrussWithin finds the maximum k <= cap such that the subgraph of the
// decomposed expansion restricted to edges of local trussness >= k connects
// q, and returns the q-component of that subgraph.
func bestKTrussWithin(dec *truss.Decomposition, q []int, capK int32) (*graph.Mutable, int32, error) {
	hi := dec.QueryUpperBound(q)
	if hi > capK {
		hi = capK
	}
	for k := hi; k >= 2; k-- {
		mu := dec.MutableAtLeast(k)
		if !graph.Connected(mu, q) {
			continue
		}
		comp := graph.Component(mu, q[0])
		return graph.InducedMutable(mu, comp), k, nil
	}
	return nil, 0, truss.ErrNoCommunity
}

func (s *Searcher) finish(algo string, sub *graph.Mutable, k int32, q []int, opt *Options) (*Community, error) {
	c := newCommunity(algo, sub, k, q)
	if opt.verify() {
		if err := truss.VerifyCommunity(sub, k, q); err != nil {
			return nil, fmt.Errorf("core: %s produced an invalid community: %w", algo, err)
		}
	}
	return c, nil
}
