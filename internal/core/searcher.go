package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/steiner"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// Options is the legacy per-call tuning struct, kept for the compatibility
// wrappers (Basic, BulkDelete, LCTC, TrussOnly). New code should build a
// Request and call Search; the sentinel encodings below exist only here and
// are decoded once, in request():
//
//	Options.FixedK <= 0      → Request.K = 0 (maximize)
//	Options.Eta <= 0         → Request.Eta = 0 (default 1000)
//	Options.Gamma = -1 (< 0) → Request.DistanceMode = DistHop
//	Options.Gamma = 0        → Request.Gamma = 0 (default 3)
//	Options.Timeout > 0      → context.WithTimeout around Search
type Options struct {
	// FixedK, when > 0, searches for a community of the given trussness
	// instead of the maximum (the Exp-5 variant). For LCTC it caps the
	// expansion level at min(FixedK, Steiner-tree trussness).
	FixedK int32
	// Eta is LCTC's node-budget threshold η for the local expansion
	// (default 1000).
	Eta int
	// Gamma is the truss-distance penalty γ (default 3). Gamma = -1 selects
	// plain hop distance (γ=0); 0 means "default".
	Gamma float64
	// Verify re-checks the output against the CTC conditions (connected
	// k-truss containing Q) and fails loudly on violation. Meant for tests.
	Verify bool
	// Timeout, when positive, bounds the search; exceeding it returns an
	// error matching both ErrTimeout and context.DeadlineExceeded (the
	// experiments report such runs as "Inf").
	Timeout time.Duration
}

// request decodes the legacy sentinels into a validated-shape Request.
func (o *Options) request(algo Algo, q []int) Request {
	req := Request{Q: q, Algo: algo}
	if o == nil {
		return req
	}
	if o.FixedK > 0 {
		req.K = o.FixedK
	}
	if o.Eta > 0 {
		req.Eta = o.Eta
	}
	switch {
	case o.Gamma < 0:
		req.DistanceMode = DistHop
	case o.Gamma > 0:
		req.Gamma = o.Gamma
	}
	req.Verify = o.Verify
	return req
}

// Searcher runs closest-truss-community searches against a truss index.
// A Searcher is stateless apart from the shared immutable index: every
// query checks a workspace out of the index's pool for its scratch, so one
// Searcher safely serves any number of concurrent queries.
type Searcher struct {
	ix *trussindex.Index

	// probs caches the synthetic edge-probability vector for AlgoProbTruss
	// (see models.go); built lazily on the first probabilistic query.
	probs probStore
}

// NewSearcher wraps a prebuilt truss index.
func NewSearcher(ix *trussindex.Index) *Searcher { return &Searcher{ix: ix} }

// Index returns the underlying truss index.
func (s *Searcher) Index() *trussindex.Index { return s.ix }

// legacy adapts one Options-style call onto Search: decode the sentinels,
// bound the context when a Timeout was set, and translate a deadline hit
// back into the historical ErrTimeout (the returned error matches both).
func (s *Searcher) legacy(algo Algo, q []int, opt *Options) (*Community, error) {
	ctx := context.Background()
	if opt != nil && opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	res, err := s.Search(ctx, opt.request(algo, q))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %w", ErrTimeout, err)
		}
		return nil, err
	}
	return &res.Community, nil
}

// TrussOnly is the legacy entry point for AlgoTrussOnly: it returns G0, the
// maximal connected k-truss containing Q with the largest k, with no
// free-rider elimination (Algorithm 2 output). One-line wrapper over Search.
func (s *Searcher) TrussOnly(q []int, opt *Options) (*Community, error) {
	return s.legacy(AlgoTrussOnly, q, opt)
}

// Basic is the legacy entry point for AlgoBasic (Algorithm 1): find G0,
// then repeatedly delete the single vertex furthest from Q, maintaining the
// k-truss property, and return the intermediate graph with minimum query
// distance. 2-approximation on the diameter (Theorem 3). One-line wrapper
// over Search.
func (s *Searcher) Basic(q []int, opt *Options) (*Community, error) {
	return s.legacy(AlgoBasic, q, opt)
}

// BulkDelete is the legacy entry point for AlgoBulkDelete (Algorithm 4):
// like Basic but deleting the whole set L = {u : dist(u,Q) >= d-1} per
// iteration, terminating in O(n'/k) iterations (Lemma 6) with a (2+ε)-
// approximation (Theorem 6). One-line wrapper over Search.
func (s *Searcher) BulkDelete(q []int, opt *Options) (*Community, error) {
	return s.legacy(AlgoBulkDelete, q, opt)
}

// LCTC is the legacy entry point for AlgoLCTC (Algorithm 5): seed a Steiner
// tree over Q under truss distance, locally expand it to at most η vertices
// through edges of trussness >= kt, extract the best connected k-truss
// containing Q from the expansion, and shrink it with the exact-distance
// bulk rule L' = {u : dist(u,Q) >= d}. One-line wrapper over Search.
func (s *Searcher) LCTC(q []int, opt *Options) (*Community, error) {
	return s.legacy(AlgoLCTC, q, opt)
}

// findG0 resolves the starting graph: the maximal connected k-truss with
// the largest k (or the fixed k requested). A fixed k below 2 is clamped to
// 2 to mirror FindKTrussW's contract — the clamp must happen here too so the
// downstream maintenance cascade enforces support >= k-2 = 0 (not a vacuous
// negative bound) and the reported Community.K matches the subgraph.
func (s *Searcher) findG0(q []int, fixedK int32, ws *trussindex.Workspace) (*graph.Mutable, int32, error) {
	if k := fixedK; k > 0 {
		if k < 2 {
			k = 2
		}
		mu, err := s.ix.FindKTrussW(q, k, ws)
		return mu, k, err
	}
	return s.ix.FindG0W(q, ws)
}

// searchGlobal runs the three G0-seeded algorithms (TrussOnly, Basic,
// BulkDelete): resolve the starting k-truss, then peel under the
// algorithm's victim rule (TrussOnly skips the peel). Fills res in place.
func (s *Searcher) searchGlobal(req Request, ws *trussindex.Workspace, res *Result) error {
	st := &res.Stats
	t0 := time.Now()
	g0, k, err := s.findG0(req.Q, req.K, ws)
	st.Seed = time.Since(t0)
	if err != nil {
		return err
	}
	st.SeedEdges = g0.M()
	sub := g0
	if req.Algo != AlgoTrussOnly {
		rule := peelSingle
		if req.Algo == AlgoBulkDelete {
			rule = peelBulk
		}
		tp := time.Now()
		sub, err = greedyPeel(g0, k, req.Q, rule, ws, st)
		st.Peel = time.Since(tp)
		if err != nil {
			return fmt.Errorf("core: %s: %w", req.Algo, err)
		}
	}
	initCommunity(&res.Community, req.Algo.String(), sub, k, req.Q)
	return nil
}

// searchLCTC runs Algorithm 5 (see LCTC). Fills res in place; the Seed
// timing covers the Steiner build, Expand the local expansion plus k-truss
// extraction, Peel the free-rider shrink.
func (s *Searcher) searchLCTC(req Request, ws *trussindex.Workspace, res *Result) error {
	st := &res.Stats
	t0 := time.Now()
	tree, err := steiner.BuildW(s.ix, req.Q, req.gamma(), ws)
	st.Seed = time.Since(t0)
	if err != nil {
		return fmt.Errorf("core: LCTC Steiner seed: %w", err)
	}
	kt := tree.MinTruss
	if fk := req.K; fk > 0 && fk < kt {
		kt = fk
	}
	if kt < 2 {
		kt = 2
	}
	te := time.Now()
	gt, err := s.expand(tree.Vertices, kt, req.eta(), ws)
	if err != nil {
		st.Expand = time.Since(te)
		return fmt.Errorf("core: LCTC expansion: %w", err)
	}
	// Truss-decompose the expansion (cancellable: with a client-supplied η
	// the expansion can span the whole graph, so the peel polls the same
	// workspace hook as every other phase) and find the largest k <= kt
	// such that a connected k-truss containing Q survives inside Gt.
	dec, err := truss.DecomposeMutableCancelable(gt, ws.Canceled)
	if err != nil {
		st.Expand = time.Since(te)
		return fmt.Errorf("core: LCTC expansion: %w", err)
	}
	ht, k, err := bestKTrussWithin(dec, req.Q, kt, ws)
	st.Expand = time.Since(te)
	if err != nil {
		return fmt.Errorf("core: LCTC extraction: %w", err)
	}
	st.SeedEdges = ht.M()
	tp := time.Now()
	best, err := greedyPeel(ht, k, req.Q, peelBulkExact, ws, st)
	st.Peel = time.Since(tp)
	if err != nil {
		return fmt.Errorf("core: LCTC: %w", err)
	}
	initCommunity(&res.Community, AlgoLCTC.String(), best, k, req.Q)
	return nil
}

// expand grows the vertex set from the Steiner tree through edges of
// trussness >= kt, BFS order, stopping once the budget is reached, and
// returns the induced subgraph on the collected vertices restricted to
// edges of trussness >= kt — as a workspace shell, valid until the shell is
// next requested. The workspace cancel hook is polled every
// cancel-check-interval frontier vertices.
func (s *Searcher) expand(seed []int, kt int32, eta int, ws *trussindex.Workspace) (*graph.Mutable, error) {
	in := ws.StampA
	in.Next()
	frontier := ws.QueueA[:0]
	count := 0
	for _, v := range seed {
		if in.Visit(int32(v)) {
			count++
			frontier = append(frontier, int32(v))
		}
	}
	for head := 0; head < len(frontier) && count < eta; head++ {
		if head&(cancelStride-1) == 0 {
			if err := ws.Canceled(); err != nil {
				ws.QueueA = frontier
				return nil, err
			}
		}
		v := int(frontier[head])
		nbrs, _ := s.ix.NeighborsAtLeast(v, kt)
		for _, u := range nbrs {
			if count >= eta {
				break
			}
			if in.Visit(u) {
				count++
				frontier = append(frontier, u)
			}
		}
	}
	ws.QueueA = frontier
	// The expansion contains only indexed-graph edges, so build it as an
	// edge-bitset overlay of the base graph, each edge inserted once from
	// its smaller endpoint.
	gt := ws.Shell()
	for i, vq := range frontier {
		if i&(cancelStride-1) == 0 {
			if err := ws.Canceled(); err != nil {
				return nil, err
			}
		}
		v := int(vq)
		gt.EnsureVertex(v)
		nbrs, eids := s.ix.NeighborsAtLeast(v, kt)
		for i, u := range nbrs {
			if int(u) > v && in.Marked(u) {
				gt.AddEdgeByID(eids[i])
			}
		}
	}
	return gt, nil
}

// bestKTrussWithin finds the maximum k <= cap such that the subgraph of the
// decomposed expansion restricted to edges of local trussness >= k connects
// q, and returns the q-component of that subgraph (freshly allocated). The
// candidate subgraphs are built incrementally: edges enter a resettable
// overlay in descending trussness order, so scanning k from the Lemma-1
// bound downward inserts each edge at most once. Cancellation is polled
// once per candidate level.
func bestKTrussWithin(dec *truss.Decomposition, q []int, capK int32, ws *trussindex.Workspace) (*graph.Mutable, int32, error) {
	hi := dec.QueryUpperBound(q)
	if hi > capK {
		hi = capK
	}
	if hi < 2 {
		return nil, 0, truss.ErrNoCommunity
	}
	m := dec.G.M()
	// Counting sort of edge IDs by descending trussness.
	cnt := ws.CountBuf(int(dec.MaxTruss) + 2)
	for _, t := range dec.Truss {
		cnt[t]++
	}
	for t := dec.MaxTruss - 1; t >= 0; t-- {
		cnt[t] += cnt[t+1]
	}
	order := ws.QueueB
	if cap(order) < m {
		order = make([]int32, m)
	}
	order = order[:m]
	for e := int32(0); e < int32(m); e++ {
		t := dec.Truss[e]
		cnt[t]--
		order[cnt[t]] = e
	}
	ws.QueueB = order
	mu := ws.ShellFor(dec.G)
	pos := 0
	for k := hi; k >= 2; k-- {
		if err := ws.Canceled(); err != nil {
			return nil, 0, err
		}
		for pos < m && dec.Truss[order[pos]] >= k {
			mu.AddEdgeByID(order[pos])
			pos++
		}
		if !connectedOn(mu, q, ws) {
			continue
		}
		comp := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
		ws.QueueA = comp
		ht := graph.NewMutableShell(dec.G)
		for _, vq := range comp {
			v := int(vq)
			mu.ForEachIncidentEdge(v, func(e int32, w int) {
				if w > v {
					ht.AddEdgeByID(e)
				}
			})
		}
		for _, v := range q {
			ht.EnsureVertex(v)
		}
		return ht, k, nil
	}
	return nil, 0, truss.ErrNoCommunity
}

// connectedOn reports whether all of q is present and mutually reachable in
// mu, using stamped BFS scratch.
func connectedOn(mu *graph.Mutable, q []int, ws *trussindex.Workspace) bool {
	for _, v := range q {
		if !mu.Present(v) {
			return false
		}
	}
	if len(q) <= 1 {
		return true
	}
	reach := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = reach
	for _, v := range q[1:] {
		if !ws.StampA.Marked(int32(v)) {
			return false
		}
	}
	return true
}

// verifyResult re-checks a finished result (Request.Verify): the CTC
// conditions for the undirected truss algorithms, or Q-membership plus
// connectivity for the ported models, whose "k" is not an undirected
// trussness (cycle support for DTruss, probabilistic trussness for
// ProbTruss, minimum degree for MDC, nothing for QDC).
func verifyResult(res *Result) error {
	c := &res.Community
	switch res.Stats.Algo {
	case AlgoDTruss, AlgoProbTruss, AlgoMDC, AlgoQDC:
		for _, v := range c.Query {
			if !c.sub.Present(v) {
				return fmt.Errorf("core: %s dropped query vertex %d", c.Algorithm, v)
			}
		}
		if !graph.Connected(c.sub, c.Query) {
			return fmt.Errorf("core: %s produced a disconnected community", c.Algorithm)
		}
		return nil
	}
	if err := truss.VerifyCommunity(c.sub, c.K, c.Query); err != nil {
		return fmt.Errorf("core: %s produced an invalid community: %w", c.Algorithm, err)
	}
	return nil
}
