package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/steiner"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// Options tunes the search algorithms. The zero value requests the paper's
// defaults (maximum trussness, η=1000, γ=3).
type Options struct {
	// FixedK, when > 0, searches for a community of the given trussness
	// instead of the maximum (the Exp-5 variant). For LCTC it caps the
	// expansion level at min(FixedK, Steiner-tree trussness).
	FixedK int32
	// Eta is LCTC's node-budget threshold η for the local expansion
	// (default 1000).
	Eta int
	// Gamma is the truss-distance penalty γ (default 3). Gamma = -1 selects
	// plain hop distance (γ=0); 0 means "default".
	Gamma float64
	// Verify re-checks the output against the CTC conditions (connected
	// k-truss containing Q) and fails loudly on violation. Meant for tests.
	Verify bool
	// Timeout, when positive, bounds the peeling phase; exceeding it
	// returns ErrTimeout (the experiments report such runs as "Inf").
	Timeout time.Duration
}

func (o *Options) deadline() time.Time {
	if o == nil || o.Timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(o.Timeout)
}

func (o *Options) eta() int {
	if o == nil || o.Eta <= 0 {
		return 1000
	}
	return o.Eta
}

func (o *Options) gamma() float64 {
	if o == nil || o.Gamma == 0 {
		return 3
	}
	if o.Gamma < 0 {
		return 0
	}
	return o.Gamma
}

func (o *Options) fixedK() int32 {
	if o == nil {
		return 0
	}
	return o.FixedK
}

func (o *Options) verify() bool { return o != nil && o.Verify }

// Searcher runs closest-truss-community searches against a truss index.
// A Searcher is stateless apart from the shared immutable index: every
// query checks a workspace out of the index's pool for its scratch, so one
// Searcher safely serves any number of concurrent queries.
type Searcher struct {
	ix *trussindex.Index
}

// NewSearcher wraps a prebuilt truss index.
func NewSearcher(ix *trussindex.Index) *Searcher { return &Searcher{ix: ix} }

// Index returns the underlying truss index.
func (s *Searcher) Index() *trussindex.Index { return s.ix }

// findG0 resolves the starting graph: the maximal connected k-truss with
// the largest k (or the fixed k requested). A fixed k below 2 is clamped to
// 2 to mirror FindKTrussW's contract — the clamp must happen here too so the
// downstream maintenance cascade enforces support >= k-2 = 0 (not a vacuous
// negative bound) and the reported Community.K matches the subgraph.
func (s *Searcher) findG0(q []int, opt *Options, ws *trussindex.Workspace) (*graph.Mutable, int32, error) {
	if k := opt.fixedK(); k > 0 {
		if k < 2 {
			k = 2
		}
		mu, err := s.ix.FindKTrussW(q, k, ws)
		return mu, k, err
	}
	return s.ix.FindG0W(q, ws)
}

// TrussOnly implements the "Truss" baseline: it returns G0 itself, the
// maximal connected k-truss containing Q with the largest k, with no
// free-rider elimination (Algorithm 2 output).
func (s *Searcher) TrussOnly(q []int, opt *Options) (*Community, error) {
	ws := s.ix.AcquireWorkspace()
	defer ws.Release()
	g0, k, err := s.findG0(q, opt, ws)
	if err != nil {
		return nil, err
	}
	return s.finish("Truss", g0, k, q, opt)
}

// Basic implements Algorithm 1: find G0, then repeatedly delete the single
// vertex furthest from Q, maintaining the k-truss property, and return the
// intermediate graph with minimum query distance. 2-approximation on the
// diameter (Theorem 3).
func (s *Searcher) Basic(q []int, opt *Options) (*Community, error) {
	ws := s.ix.AcquireWorkspace()
	defer ws.Release()
	g0, k, err := s.findG0(q, opt, ws)
	if err != nil {
		return nil, err
	}
	best, err := greedyPeel(g0, k, q, peelSingle, opt.deadline(), ws)
	if err != nil {
		return nil, fmt.Errorf("core: Basic: %w", err)
	}
	return s.finish("Basic", best, k, q, opt)
}

// BulkDelete implements Algorithm 4: like Basic but deleting the whole set
// L = {u : dist(u,Q) >= d-1} per iteration, terminating in O(n'/k)
// iterations (Lemma 6) with a (2+ε)-approximation (Theorem 6).
func (s *Searcher) BulkDelete(q []int, opt *Options) (*Community, error) {
	ws := s.ix.AcquireWorkspace()
	defer ws.Release()
	g0, k, err := s.findG0(q, opt, ws)
	if err != nil {
		return nil, err
	}
	best, err := greedyPeel(g0, k, q, peelBulk, opt.deadline(), ws)
	if err != nil {
		return nil, fmt.Errorf("core: BulkDelete: %w", err)
	}
	return s.finish("BD", best, k, q, opt)
}

// LCTC implements Algorithm 5: seed a Steiner tree over Q under truss
// distance, locally expand it to at most η vertices through edges of
// trussness >= kt, extract the best connected k-truss containing Q from the
// expansion, and shrink it with the exact-distance bulk rule
// L' = {u : dist(u,Q) >= d}.
func (s *Searcher) LCTC(q []int, opt *Options) (*Community, error) {
	ws := s.ix.AcquireWorkspace()
	defer ws.Release()
	tree, err := steiner.BuildW(s.ix, q, opt.gamma(), ws)
	if err != nil {
		return nil, fmt.Errorf("core: LCTC Steiner seed: %w", err)
	}
	kt := tree.MinTruss
	if fk := opt.fixedK(); fk > 0 && fk < kt {
		kt = fk
	}
	if kt < 2 {
		kt = 2
	}
	gt := s.expand(tree.Vertices, kt, opt.eta(), ws)
	// Truss-decompose the expansion and find the largest k <= kt such that
	// a connected k-truss containing Q survives inside Gt.
	dec := truss.DecomposeMutable(gt)
	ht, k, err := bestKTrussWithin(dec, q, kt, ws)
	if err != nil {
		return nil, fmt.Errorf("core: LCTC extraction: %w", err)
	}
	best, err := greedyPeel(ht, k, q, peelBulkExact, opt.deadline(), ws)
	if err != nil {
		return nil, fmt.Errorf("core: LCTC: %w", err)
	}
	return s.finish("LCTC", best, k, q, opt)
}

// expand grows the vertex set from the Steiner tree through edges of
// trussness >= kt, BFS order, stopping once the budget is reached, and
// returns the induced subgraph on the collected vertices restricted to
// edges of trussness >= kt — as a workspace shell, valid until the shell is
// next requested.
func (s *Searcher) expand(seed []int, kt int32, eta int, ws *trussindex.Workspace) *graph.Mutable {
	in := ws.StampA
	in.Next()
	frontier := ws.QueueA[:0]
	count := 0
	for _, v := range seed {
		if in.Visit(int32(v)) {
			count++
			frontier = append(frontier, int32(v))
		}
	}
	for head := 0; head < len(frontier) && count < eta; head++ {
		v := int(frontier[head])
		nbrs, _ := s.ix.NeighborsAtLeast(v, kt)
		for _, u := range nbrs {
			if count >= eta {
				break
			}
			if in.Visit(u) {
				count++
				frontier = append(frontier, u)
			}
		}
	}
	ws.QueueA = frontier
	// The expansion contains only indexed-graph edges, so build it as an
	// edge-bitset overlay of the base graph, each edge inserted once from
	// its smaller endpoint.
	gt := ws.Shell()
	for _, vq := range frontier {
		v := int(vq)
		gt.EnsureVertex(v)
		nbrs, eids := s.ix.NeighborsAtLeast(v, kt)
		for i, u := range nbrs {
			if int(u) > v && in.Marked(u) {
				gt.AddEdgeByID(eids[i])
			}
		}
	}
	return gt
}

// bestKTrussWithin finds the maximum k <= cap such that the subgraph of the
// decomposed expansion restricted to edges of local trussness >= k connects
// q, and returns the q-component of that subgraph (freshly allocated). The
// candidate subgraphs are built incrementally: edges enter a resettable
// overlay in descending trussness order, so scanning k from the Lemma-1
// bound downward inserts each edge at most once.
func bestKTrussWithin(dec *truss.Decomposition, q []int, capK int32, ws *trussindex.Workspace) (*graph.Mutable, int32, error) {
	hi := dec.QueryUpperBound(q)
	if hi > capK {
		hi = capK
	}
	if hi < 2 {
		return nil, 0, truss.ErrNoCommunity
	}
	m := dec.G.M()
	// Counting sort of edge IDs by descending trussness.
	cnt := ws.CountBuf(int(dec.MaxTruss) + 2)
	for _, t := range dec.Truss {
		cnt[t]++
	}
	for t := dec.MaxTruss - 1; t >= 0; t-- {
		cnt[t] += cnt[t+1]
	}
	order := ws.QueueB
	if cap(order) < m {
		order = make([]int32, m)
	}
	order = order[:m]
	for e := int32(0); e < int32(m); e++ {
		t := dec.Truss[e]
		cnt[t]--
		order[cnt[t]] = e
	}
	ws.QueueB = order
	mu := ws.ShellFor(dec.G)
	pos := 0
	for k := hi; k >= 2; k-- {
		for pos < m && dec.Truss[order[pos]] >= k {
			mu.AddEdgeByID(order[pos])
			pos++
		}
		if !connectedOn(mu, q, ws) {
			continue
		}
		comp := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
		ws.QueueA = comp
		ht := graph.NewMutableShell(dec.G)
		for _, vq := range comp {
			v := int(vq)
			mu.ForEachIncidentEdge(v, func(e int32, w int) {
				if w > v {
					ht.AddEdgeByID(e)
				}
			})
		}
		for _, v := range q {
			ht.EnsureVertex(v)
		}
		return ht, k, nil
	}
	return nil, 0, truss.ErrNoCommunity
}

// connectedOn reports whether all of q is present and mutually reachable in
// mu, using stamped BFS scratch.
func connectedOn(mu *graph.Mutable, q []int, ws *trussindex.Workspace) bool {
	for _, v := range q {
		if !mu.Present(v) {
			return false
		}
	}
	if len(q) <= 1 {
		return true
	}
	reach := graph.BFSMarked(mu, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = reach
	for _, v := range q[1:] {
		if !ws.StampA.Marked(int32(v)) {
			return false
		}
	}
	return true
}

func (s *Searcher) finish(algo string, sub *graph.Mutable, k int32, q []int, opt *Options) (*Community, error) {
	c := newCommunity(algo, sub, k, q)
	if opt.verify() {
		if err := truss.VerifyCommunity(sub, k, q); err != nil {
			return nil, fmt.Errorf("core: %s produced an invalid community: %w", algo, err)
		}
	}
	return c, nil
}
