package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// starCliqueChain builds the pathological cancellation graph: a chain of
// `count` K_size cliques, consecutive cliques sharing one vertex, with a
// `leaves`-edge star glued to the chain's first vertex. The chain makes the
// peel long (thousands of rounds for Basic, one furthest vertex at a time,
// each round a BFS per query vertex) and the star makes the k=2 starting
// graph wide, so every pipeline phase has real work to cancel out of.
func starCliqueChain(count, size, leaves int) *graph.Graph {
	var edges [][2]int
	n := 0
	base := 0
	for c := 0; c < count; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{base + i, base + j})
			}
		}
		base += size - 1 // share the last vertex with the next clique
	}
	n = base + 1
	for l := 0; l < leaves; l++ {
		edges = append(edges, [2]int{0, n + l})
	}
	return graph.FromEdges(n+leaves, edges)
}

// chainEndpoints returns query vertices at the two far ends of the chain.
func chainEndpoints(count, size int) []int {
	return []int{1, (size-1)*count - 1}
}

// countingCtx is a context.Context whose Err flips to context.Canceled
// after the budget-th poll: a deterministic probe that lets tests cancel a
// query at exactly the N-th cancellation checkpoint, whichever pipeline
// phase that checkpoint lives in.
type countingCtx struct {
	budget int
	polls  int
	done   chan struct{}
}

func newCountingCtx(budget int) *countingCtx {
	return &countingCtx{budget: budget, done: make(chan struct{})}
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return c.done }
func (c *countingCtx) Value(any) any               { return nil }
func (c *countingCtx) Err() error {
	c.polls++
	if c.polls > c.budget {
		return context.Canceled
	}
	return nil
}

// TestCancelAtEveryCheckpoint drives each algorithm with a context that
// cancels at the N-th checkpoint for every N up to well past the query's
// total checkpoint count. Every cancelled run must surface
// context.Canceled; every run whose budget outlived the checkpoints must
// return the exact reference answer — and after the whole sweep (dozens of
// queries abandoned at arbitrary phases on the same pooled workspaces) a
// clean run must still match, proving abandonment leaks no workspace state
// and loses no pooled workspace.
func TestCancelAtEveryCheckpoint(t *testing.T) {
	g := starCliqueChain(30, 6, 50)
	ix := trussindex.Build(g)
	s := NewSearcher(ix)
	q := chainEndpoints(30, 6)

	for _, tc := range []struct {
		name string
		req  Request
	}{
		// K=2 pulls the star into the starting graph (everything is a
		// 2-truss), maximizing peel work for the two global algorithms.
		{"Basic", Request{Q: q, Algo: AlgoBasic, K: 2}},
		{"BulkDelete", Request{Q: q, Algo: AlgoBulkDelete, K: 2}},
		{"TrussOnly", Request{Q: q, Algo: AlgoTrussOnly}},
		// A huge Eta sends LCTC's expansion across the whole chain.
		{"LCTC", Request{Q: q, Eta: 1 << 20}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := s.Search(context.Background(), tc.req)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			sawCancel := 0
			completedAt := -1
			for n := 0; n < 5000; n++ {
				cc := newCountingCtx(n)
				res, err := s.Search(cc, tc.req)
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("budget %d: err = %v, want context.Canceled", n, err)
					}
					if res != nil {
						t.Fatalf("budget %d: result alongside cancellation", n)
					}
					sawCancel++
					continue
				}
				if res.N() != ref.N() || res.M() != ref.M() || res.K != ref.K {
					t.Fatalf("budget %d: (n=%d m=%d k=%d) diverged from reference (n=%d m=%d k=%d)",
						n, res.N(), res.M(), res.K, ref.N(), ref.M(), ref.K)
				}
				completedAt = n
				break // budget outlived every checkpoint; larger budgets are identical
			}
			if sawCancel == 0 {
				t.Fatalf("no budget produced a cancellation — checkpoints not wired in?")
			}
			if completedAt < 0 {
				t.Fatalf("query still cancelled at budget 5000 — checkpoint density looks runaway")
			}
			t.Logf("%s: %d checkpoints before completion", tc.name, completedAt)

			// Pool sanity: a clean rerun after all the abandoned queries.
			res, err := s.Search(context.Background(), tc.req)
			if err != nil || res.N() != ref.N() || res.M() != ref.M() || res.K != ref.K {
				t.Fatalf("post-sweep rerun diverged: %v (n=%d m=%d k=%d)", err, res.N(), res.M(), res.K)
			}
		})
	}
}

// TestCancelMidQueryPrompt cancels in-flight searches with real contexts
// under wall-clock pressure (run under -race in CI): a goroutine-cancelled
// context mid-peel and a deadline context mid-pipeline must both return
// their context error well before the query's natural completion time.
func TestCancelMidQueryPrompt(t *testing.T) {
	g := starCliqueChain(300, 8, 2000)
	ix := trussindex.Build(g)
	s := NewSearcher(ix)
	q := chainEndpoints(300, 8)
	req := Request{Q: q, Algo: AlgoBasic, K: 2} // slowest variant: one vertex per round

	t0 := time.Now()
	ref, err := s.Search(context.Background(), req)
	full := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if full < 20*time.Millisecond {
		t.Skipf("full query only took %v; too fast to observe cancellation", full)
	}

	// Deadline mid-pipeline → context.DeadlineExceeded.
	dctx, cancel := context.WithTimeout(context.Background(), full/10)
	defer cancel()
	t0 = time.Now()
	_, err = s.Search(dctx, req)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > full {
		t.Fatalf("deadline run took %v, longer than the uncancelled query (%v)", elapsed, full)
	}

	// Concurrent cancel mid-peel → context.Canceled, promptly.
	cctx, cancel2 := context.WithCancel(context.Background())
	timer := time.AfterFunc(full/10, cancel2)
	defer timer.Stop()
	defer cancel2()
	t0 = time.Now()
	_, err = s.Search(cctx, req)
	elapsed = time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if elapsed > full {
		t.Fatalf("cancelled run took %v, longer than the uncancelled query (%v)", elapsed, full)
	}

	// The index still answers correctly after both abandonments.
	res, err := s.Search(context.Background(), req)
	if err != nil || res.N() != ref.N() || res.K != ref.K {
		t.Fatalf("post-cancel rerun diverged: %v", err)
	}
}

// TestCancelMidExpand pins the LCTC expansion checkpoint specifically: a
// budget that survives the Steiner seed but dies inside expand must come
// back as context.Canceled, not as a mangled community.
func TestCancelMidExpand(t *testing.T) {
	g := starCliqueChain(40, 6, 10)
	ix := trussindex.Build(g)
	s := NewSearcher(ix)
	q := chainEndpoints(40, 6)
	req := Request{Q: q, Eta: 1 << 20}

	// Find the checkpoint range of each phase by probing: the first budget
	// that completes tells us the total; anything below must cancel.
	refRes, err := s.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	total := -1
	for n := 0; n < 5000; n++ {
		if _, err := s.Search(newCountingCtx(n), req); err == nil {
			total = n
			break
		}
	}
	if total < 3 {
		t.Fatalf("LCTC pipeline exposes only %d checkpoints; expected seed+expand+extract+peel", total)
	}
	// Mid-pipeline budgets (past the first Steiner checks, before the last
	// peel round) must all cancel cleanly.
	for _, n := range []int{total / 4, total / 2, 3 * total / 4} {
		if _, err := s.Search(newCountingCtx(n), req); !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d/%d: err = %v, want context.Canceled", n, total, err)
		}
	}
	res, err := s.Search(context.Background(), req)
	if err != nil || res.N() != refRes.N() || res.K != refRes.K {
		t.Fatalf("post-cancel rerun diverged: %v", err)
	}
}
