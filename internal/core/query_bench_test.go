package core

import "testing"

// searchBenchSetup reuses the peel benchmark's graph/index/query (the shared
// 59k-edge workload of BENCH_pr1.json) but returns a Searcher for the
// end-to-end query benchmarks.
var searchBenchS *Searcher

func searchBenchSetup(b *testing.B) (*Searcher, []int) {
	b.Helper()
	peelBenchSetup(b)
	if searchBenchS == nil {
		searchBenchS = NewSearcher(peelBenchIx)
	}
	return searchBenchS, peelBenchQ
}

func BenchmarkLCTC(b *testing.B) {
	s, q := searchBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := s.LCTC(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if c.N() == 0 {
			b.Fatal("empty community")
		}
	}
}

func BenchmarkBasic(b *testing.B) {
	s, q := searchBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := s.Basic(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if c.N() == 0 {
			b.Fatal("empty community")
		}
	}
}

// BenchmarkSearchThroughputParallel drives many simultaneous LCTC queries
// against one shared Index — the concurrent-serving scenario. Run with -race
// to exercise the pooled-workspace concurrency contract.
func BenchmarkSearchThroughputParallel(b *testing.B) {
	s, q := searchBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c, err := s.LCTC(q, nil)
			// b.Fatal must not run on a RunParallel worker goroutine;
			// b.Error marks the failure and we bail out of this worker.
			if err != nil {
				b.Error(err)
				return
			}
			if c.N() == 0 {
				b.Error("empty community")
				return
			}
		}
	})
}
