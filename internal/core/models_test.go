package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/directed"
	"repro/internal/graph"
	"repro/internal/prob"
	"repro/internal/trussindex"
)

// modelTestGraph is the K5-plus-pendant graph the request tests use.
func modelTestGraph() *graph.Graph {
	return graph.FromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
		{2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
}

// TestModelRequestValidation pins the parameter domains of the multi-model
// fields: Direction outside the enum and MinProb outside (0,1] (or NaN)
// are bad requests, never panics or silent clamps.
func TestModelRequestValidation(t *testing.T) {
	s := NewSearcher(trussindex.Build(modelTestGraph()))
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown direction", Request{Q: []int{0}, Algo: AlgoDTruss, Direction: directionModeEnd}},
		{"direction high bits", Request{Q: []int{0}, Algo: AlgoDTruss, Direction: DirectionMode(99)}},
		{"negative MinProb", Request{Q: []int{0}, Algo: AlgoProbTruss, MinProb: -0.5}},
		{"MinProb above 1", Request{Q: []int{0}, Algo: AlgoProbTruss, MinProb: 1.5}},
		{"NaN MinProb", Request{Q: []int{0}, Algo: AlgoProbTruss, MinProb: math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Search(ctx, tc.req); !errors.Is(err, ErrBadParam) {
				t.Fatalf("Search(%+v) err = %v, want ErrBadParam", tc.req, err)
			}
		})
	}
}

// TestParseModelSpellings pins the registry spellings of the new algorithms
// and the direction modes.
func TestParseModelSpellings(t *testing.T) {
	for spelling, want := range map[string]Algo{
		"dtruss": AlgoDTruss, "directed": AlgoDTruss,
		"prob": AlgoProbTruss, "probtruss": AlgoProbTruss,
		"mdc": AlgoMDC, "qdc": AlgoQDC,
	} {
		got, err := ParseAlgo(spelling)
		if err != nil || got != want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	for spelling, want := range map[string]DirectionMode{
		"": DirBoth, "both": DirBoth, "lowhigh": DirLowHigh,
		"highlow": DirHighLow, "hash": DirHash,
	} {
		got, err := ParseDirection(spelling)
		if err != nil || got != want {
			t.Errorf("ParseDirection(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := ParseDirection("sideways"); !errors.Is(err, ErrBadParam) {
		t.Errorf("ParseDirection(sideways) err = %v, want ErrBadParam", err)
	}
	names := AlgoNames()
	if len(names) != int(algoEnd) {
		t.Fatalf("AlgoNames lists %d algos, registry has %d", len(names), algoEnd)
	}
}

// TestModelDispatch runs every new model end to end through Search and
// checks the answer against the model package called directly — the
// dispatch layer must add admission-friendly stats and a fresh Community
// without changing the answer.
func TestModelDispatch(t *testing.T) {
	g := modelTestGraph()
	s := NewSearcher(trussindex.Build(g))
	ctx := context.Background()
	q := []int{0, 1}

	t.Run("DTruss", func(t *testing.T) {
		res, err := s.Search(ctx, Request{Q: q, Algo: AlgoDTruss, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := directed.Search(directed.FromCSR(g, directed.OrientBoth), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int(res.K) != want.Kc {
			t.Fatalf("K = %d, want kc %d", res.K, want.Kc)
		}
		if !reflect.DeepEqual(res.Vertices(), want.Vertices) {
			t.Fatalf("vertices %v, want %v", res.Vertices(), want.Vertices)
		}
		if res.Stats.Algo != AlgoDTruss || res.Stats.Total <= 0 {
			t.Fatalf("stats not filled: %+v", res.Stats)
		}
	})

	t.Run("DTrussDirections", func(t *testing.T) {
		for _, dir := range []DirectionMode{DirBoth, DirLowHigh, DirHighLow, DirHash} {
			res, err := s.Search(ctx, Request{Q: []int{0}, Algo: AlgoDTruss, Direction: dir, Verify: true})
			if err != nil {
				t.Fatalf("direction %v: %v", dir, err)
			}
			if !res.Contains(0) {
				t.Fatalf("direction %v: dropped the query vertex", dir)
			}
		}
	})

	t.Run("ProbTruss", func(t *testing.T) {
		res, err := s.Search(ctx, Request{Q: q, Algo: AlgoProbTruss, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		probs := prob.SyntheticProbs(g)
		pg, err := prob.NewGraph(g, prob.ProbMap(g, probs))
		if err != nil {
			t.Fatal(err)
		}
		want, err := prob.Search(pg, q, DefaultMinProb)
		if err != nil {
			t.Fatal(err)
		}
		if res.K != want.K {
			t.Fatalf("K = %d, want %d", res.K, want.K)
		}
		if !reflect.DeepEqual(res.Vertices(), want.Vertices) {
			t.Fatalf("vertices %v, want %v", res.Vertices(), want.Vertices)
		}
		// A stricter explicit threshold must also dispatch (MinProb is the
		// satellite-1 fix: its own field, not a reuse of Eta).
		if _, err := s.Search(ctx, Request{Q: q, Algo: AlgoProbTruss, MinProb: 0.9, Verify: true}); err != nil &&
			!errors.Is(err, prob.ErrNoCommunity) {
			t.Fatalf("MinProb=0.9: %v", err)
		}
	})

	t.Run("MDC", func(t *testing.T) {
		res, err := s.Search(ctx, Request{Q: q, Algo: AlgoMDC, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.MDC(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Vertices(), want.Vertices) {
			t.Fatalf("vertices %v, want %v", res.Vertices(), want.Vertices)
		}
		if int(res.K) != int(want.Score) {
			t.Fatalf("K = %d, want min degree %v", res.K, want.Score)
		}
	})

	t.Run("QDC", func(t *testing.T) {
		res, err := s.Search(ctx, Request{Q: q, Algo: AlgoQDC, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.QDC(g, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Vertices(), want.Vertices) {
			t.Fatalf("vertices %v, want %v", res.Vertices(), want.Vertices)
		}
		if res.K != 0 {
			t.Fatalf("K = %d, want 0 (density objective has no trussness)", res.K)
		}
	})
}

// TestModelDispatchNoCommunity checks the typed sentinels survive the
// dispatch wrapping: errors.Is must still match the model package's
// ErrNoCommunity through the core prefix.
func TestModelDispatchNoCommunity(t *testing.T) {
	// Two isolated triangles: a query spanning both has no community.
	g := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	s := NewSearcher(trussindex.Build(g))
	ctx := context.Background()
	q := []int{0, 3}
	for _, tc := range []struct {
		algo Algo
		want error
	}{
		{AlgoDTruss, directed.ErrNoCommunity},
		{AlgoProbTruss, prob.ErrNoCommunity},
		{AlgoMDC, baseline.ErrNoCommunity},
		{AlgoQDC, baseline.ErrNoCommunity},
	} {
		if _, err := s.Search(ctx, Request{Q: q, Algo: tc.algo}); !errors.Is(err, tc.want) {
			t.Fatalf("%v: err = %v, want errors.Is(..., %v)", tc.algo, err, tc.want)
		}
	}
}

// TestModelDispatchCancellation: a pre-cancelled context must surface
// context.Canceled from every new model's peel loop.
func TestModelDispatchCancellation(t *testing.T) {
	s := NewSearcher(trussindex.Build(modelTestGraph()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algo{AlgoDTruss, AlgoProbTruss, AlgoMDC, AlgoQDC} {
		if _, err := s.Search(ctx, Request{Q: []int{0, 1}, Algo: algo}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", algo, err)
		}
	}
}
