package core

// This file dispatches the non-undirected-truss models — D-truss,
// probabilistic (k,γ)-truss, and the MDC/QDC baselines — onto their dense
// CSR ports. All four run against the same indexed graph and pooled
// workspace as the truss algorithms, so they inherit admission control,
// epoch-keyed caching, cancellation, and telemetry from the serve layer
// for free.

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/directed"
	"repro/internal/prob"
	"repro/internal/trussindex"
)

// probStore lazily materializes the synthetic edge-probability vector of
// the indexed graph, shared by every AlgoProbTruss query on this Searcher.
// Probabilities are a pure function of edge endpoints (prob.SyntheticProb),
// so the vector is stable across epochs and safe to cache per snapshot.
type probStore struct {
	once  sync.Once
	probs []float64
}

func (s *Searcher) syntheticProbs() []float64 {
	s.probs.once.Do(func() {
		s.probs.probs = prob.SyntheticProbs(s.ix.Graph())
	})
	return s.probs.probs
}

// searchDirected runs AlgoDTruss: orient the serving graph under
// req.Direction, find the largest-kc (kc, kf=K)-D-truss connecting Q, and
// greedily shrink the query distance. Community.K reports the cycle level
// kc.
func (s *Searcher) searchDirected(req Request, ws *trussindex.Workspace, res *Result) error {
	com, dst, err := directed.SearchCSR(s.ix.Graph(), req.Q, int(req.K), directed.Orientation(req.Direction), ws)
	if err != nil {
		return fmt.Errorf("core: DTruss: %w", err)
	}
	st := &res.Stats
	st.Seed, st.Peel = dst.Seed, dst.Peel
	st.SeedEdges = dst.SeedEdges
	st.PeelRounds = dst.PeelRounds
	st.EdgesPeeled = dst.EdgesPeeled
	initCommunity(&res.Community, AlgoDTruss.String(), com.Sub, int32(com.Kc), req.Q)
	return nil
}

// searchProb runs AlgoProbTruss: (k,γ)-truss decomposition at γ =
// req.MinProb over the synthetic edge probabilities, seeded with the
// largest connected level (K > 0 caps it), then the greedy shrink.
func (s *Searcher) searchProb(req Request, ws *trussindex.Workspace, res *Result) error {
	com, pst, err := prob.SearchCSR(s.ix.Graph(), s.syntheticProbs(), req.Q, req.minProb(), req.K, ws)
	if err != nil {
		return fmt.Errorf("core: ProbTruss: %w", err)
	}
	st := &res.Stats
	st.Seed, st.Peel = pst.Seed, pst.Peel
	st.SeedEdges = pst.SeedEdges
	st.PeelRounds = pst.PeelRounds
	st.EdgesPeeled = pst.EdgesPeeled
	initCommunity(&res.Community, AlgoProbTruss.String(), com.Sub, com.K, req.Q)
	return nil
}

// searchMDC runs the minimum-degree-community baseline with the model's
// default distance bound. Community.K reports the achieved minimum degree.
func (s *Searcher) searchMDC(req Request, ws *trussindex.Workspace, res *Result) error {
	r, bst, err := baseline.MDCW(s.ix.Graph(), req.Q, nil, ws)
	if err != nil {
		return fmt.Errorf("core: MDC: %w", err)
	}
	fillBaseline(res, r, bst, AlgoMDC, int32(r.Score), req.Q)
	return nil
}

// searchQDC runs the query-biased densest-subgraph baseline with the
// model's default walk parameters. The density objective has no trussness,
// so Community.K is 0; Result carries the score via the subgraph itself.
func (s *Searcher) searchQDC(req Request, ws *trussindex.Workspace, res *Result) error {
	r, bst, err := baseline.QDCW(s.ix.Graph(), req.Q, nil, ws)
	if err != nil {
		return fmt.Errorf("core: QDC: %w", err)
	}
	fillBaseline(res, r, bst, AlgoQDC, 0, req.Q)
	return nil
}

func fillBaseline(res *Result, r *baseline.Result, bst *baseline.Stats, algo Algo, k int32, q []int) {
	st := &res.Stats
	st.Seed, st.Peel = bst.Seed, bst.Peel
	st.SeedEdges = r.M()
	st.PeelRounds = bst.PeelSteps
	initCommunity(&res.Community, algo.String(), r.Subgraph(), k, q)
}
