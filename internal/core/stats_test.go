package core

import (
	"context"
	"testing"
	"time"
)

// TestQueryStatsTotalInvariant pins the documented QueryStats contract:
// Total covers the whole pipeline, so Total >= Seed + Expand + Peel for
// every algorithm, QueueWait is NOT folded into Total (it belongs to the
// serving layer), and TotalWithQueue adds it back for the client view.
func TestQueryStatsTotalInvariant(t *testing.T) {
	s := paperSearcher()
	for _, algo := range []Algo{AlgoLCTC, AlgoBasic, AlgoBulkDelete, AlgoTrussOnly} {
		res, err := s.Search(context.Background(), Request{Q: []int{0, 1, 2}, Algo: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		st := res.Stats
		phases := st.Seed + st.Expand + st.Peel
		if st.Total < phases {
			t.Errorf("%v: Total %v < Seed+Expand+Peel %v", algo, st.Total, phases)
		}
		if st.QueueWait != 0 {
			t.Errorf("%v: QueueWait %v != 0 for a direct Search call", algo, st.QueueWait)
		}
		if got := st.TotalWithQueue(); got != st.Total {
			t.Errorf("%v: TotalWithQueue %v != Total %v with zero QueueWait", algo, got, st.Total)
		}
	}
}

// TestTotalWithQueue checks the arithmetic directly: queue wait stacked on
// top of execution time.
func TestTotalWithQueue(t *testing.T) {
	st := QueryStats{Total: 30 * time.Millisecond, QueueWait: 12 * time.Millisecond}
	if got, want := st.TotalWithQueue(), 42*time.Millisecond; got != want {
		t.Fatalf("TotalWithQueue = %v, want %v", got, want)
	}
}
