package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/trussindex"
)

var (
	peelBenchIx *trussindex.Index
	peelBenchG0 *graph.Mutable
	peelBenchK  int32
	peelBenchQ  []int
)

func peelBenchSetup(b *testing.B) (*graph.Mutable, int32, []int) {
	b.Helper()
	if peelBenchG0 == nil {
		g, truth := gen.CommunityGraph(gen.CommunityParams{
			N: 9000, NumCommunities: 550, MinSize: 5, MaxSize: 32,
			Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 4500,
			Hubs: 5, HubDegree: 110, PlantedClique: 22, Seed: 0x50C1,
		})
		ix := trussindex.Build(g)
		peelBenchIx = ix
		// Query: three members of the largest planted community, so G0 is a
		// substantial subgraph and the peel has real work to do.
		best := truth[0]
		for _, c := range truth {
			if len(c) > len(best) {
				best = c
			}
		}
		q := []int{best[0], best[len(best)/2], best[len(best)-1]}
		g0, k, err := ix.FindG0(q)
		if err != nil {
			b.Fatal(err)
		}
		peelBenchG0, peelBenchK, peelBenchQ = g0, k, q
	}
	return peelBenchG0, peelBenchK, peelBenchQ
}

func BenchmarkGreedyPeel(b *testing.B) {
	g0, k, q := peelBenchSetup(b)
	b.Logf("g0: n=%d m=%d k=%d", g0.N(), g0.M(), k)
	ws := peelBenchIx.AcquireWorkspace()
	defer ws.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedyPeel(g0, k, q, peelBulk, ws, &QueryStats{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyPeelExact(b *testing.B) {
	g0, k, q := peelBenchSetup(b)
	ws := peelBenchIx.AcquireWorkspace()
	defer ws.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := greedyPeel(g0, k, q, peelBulkExact, ws, &QueryStats{}); err != nil {
			b.Fatal(err)
		}
	}
}
