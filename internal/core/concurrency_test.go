package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/trussindex"
)

// TestConcurrentSearchersSharedIndex locks in the pooled-workspace
// concurrency contract: one immutable Index serves many goroutines running
// LCTC/Basic/BulkDelete/TrussOnly queries at once, each checking out its
// own workspace. Run with -race (CI does) to catch any scratch sharing.
func TestConcurrentSearchersSharedIndex(t *testing.T) {
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 1200, NumCommunities: 80, MinSize: 5, MaxSize: 24,
		Overlap: 0.3, PIntra: 0.55, BackgroundEdges: 700,
		Hubs: 3, HubDegree: 40, PlantedClique: 12, Seed: 0xC0FFEE,
	})
	ix := trussindex.Build(g)
	s := NewSearcher(ix)

	// Build a pool of queries from the planted communities, plus a few
	// cross-community (likely low-k or failing) ones.
	var queries [][]int
	for i, c := range truth {
		if len(c) < 3 || i%3 != 0 {
			continue
		}
		queries = append(queries, []int{c[0], c[len(c)/2], c[len(c)-1]})
		if i%9 == 0 && len(truth) > i+1 && len(truth[i+1]) > 0 {
			queries = append(queries, []int{c[0], truth[i+1][0]})
		}
	}
	if len(queries) < 8 {
		t.Fatalf("only %d queries generated", len(queries))
	}

	// Sequential reference answers.
	type ref struct {
		n, m int
		k    int32
		err  bool
	}
	algos := []func(q []int, opt *Options) (*Community, error){
		s.LCTC, s.Basic, s.BulkDelete, s.TrussOnly,
	}
	want := make([][]ref, len(algos))
	opt := &Options{Verify: true}
	for ai, algo := range algos {
		want[ai] = make([]ref, len(queries))
		for qi, q := range queries {
			c, err := algo(q, opt)
			if err != nil {
				want[ai][qi] = ref{err: true}
				continue
			}
			want[ai][qi] = ref{n: c.N(), m: c.M(), k: c.K}
		}
	}

	// Concurrent run: every (algo, query) pair on its own goroutine, all
	// sharing ix and s. Results must match the sequential reference
	// exactly — the searches are deterministic.
	var wg sync.WaitGroup
	errs := make(chan error, len(algos)*len(queries))
	for ai := range algos {
		for qi := range queries {
			wg.Add(1)
			go func(ai, qi int) {
				defer wg.Done()
				c, err := algos[ai](queries[qi], opt)
				w := want[ai][qi]
				if err != nil {
					if !w.err {
						errs <- err
					}
					return
				}
				if w.err {
					errs <- errors.New("concurrent run succeeded where sequential failed")
					return
				}
				if c.N() != w.n || c.M() != w.m || c.K != w.k {
					errs <- errors.New("concurrent result diverged from sequential reference")
				}
			}(ai, qi)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWorkspaceReuseDeterministic checks that a workspace reused across
// many different queries never leaks state between them: interleaving
// queries must give the same answers as fresh runs.
func TestWorkspaceReuseDeterministic(t *testing.T) {
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 600, NumCommunities: 40, MinSize: 5, MaxSize: 20,
		Overlap: 0.25, PIntra: 0.6, BackgroundEdges: 300,
		Hubs: 2, HubDegree: 30, PlantedClique: 10, Seed: 0xBEEF,
	})
	ix := trussindex.Build(g)
	s := NewSearcher(ix)
	opt := &Options{Verify: true}
	type ans struct {
		n int
		k int32
	}
	var first []ans
	for round := 0; round < 3; round++ {
		var got []ans
		for _, c := range truth {
			if len(c) < 2 {
				continue
			}
			q := []int{c[0], c[len(c)-1]}
			cm, err := s.LCTC(q, opt)
			if err != nil {
				got = append(got, ans{-1, -1})
				continue
			}
			got = append(got, ans{cm.N(), cm.K})
		}
		if round == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("round %d query %d: got %+v, want %+v (workspace state leaked)", round, i, got[i], first[i])
			}
		}
	}
}
