package core

import (
	"math/rand"
	"testing"

	"repro/internal/trussindex"
)

// Cross-algorithm invariants derived from the paper's lemmas, checked over
// random graphs and queries.

func TestInvariantBasicQueryDistanceIsMinimal(t *testing.T) {
	// Lemma 5: Basic's output minimizes the query distance over all
	// connected max-k trusses containing Q — in particular it is <= the
	// query distance of BD's and LCTC's outputs and of G0 itself.
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(seed, 30, 0.2)
		s := NewSearcher(trussindex.Build(g))
		rng := rand.New(rand.NewSource(seed * 7))
		q := []int{rng.Intn(30), rng.Intn(30)}
		basic, err := s.Basic(q, nil)
		if err != nil {
			continue
		}
		bd, err := s.BulkDelete(q, nil)
		if err != nil {
			t.Fatalf("seed %d: BD failed after Basic succeeded: %v", seed, err)
		}
		g0, err := s.TrussOnly(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if basic.QueryDist() > bd.QueryDist() {
			t.Fatalf("seed %d q=%v: Basic qd %d > BD qd %d", seed, q, basic.QueryDist(), bd.QueryDist())
		}
		if basic.QueryDist() > g0.QueryDist() {
			t.Fatalf("seed %d q=%v: Basic qd %d > G0 qd %d", seed, q, basic.QueryDist(), g0.QueryDist())
		}
	}
}

func TestInvariantBDWithinOneOfBasic(t *testing.T) {
	// Theorem 6's core step: dist_R(R,Q) <= dist_H*(H*,Q) + 1 for BD, and
	// Basic achieves the minimum, so BD's qd <= Basic's qd + 1.
	for seed := int64(50); seed < 80; seed++ {
		g := randomGraph(seed, 26, 0.25)
		s := NewSearcher(trussindex.Build(g))
		rng := rand.New(rand.NewSource(seed))
		q := []int{rng.Intn(26), rng.Intn(26)}
		basic, err := s.Basic(q, nil)
		if err != nil {
			continue
		}
		bd, err := s.BulkDelete(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bd.QueryDist() > basic.QueryDist()+1 {
			t.Fatalf("seed %d q=%v: BD qd %d > Basic qd %d + 1", seed, q, bd.QueryDist(), basic.QueryDist())
		}
	}
}

func TestInvariantDiameterWithinLemma2Bounds(t *testing.T) {
	// Lemma 2 instantiated on every algorithm's own output:
	// qd <= diam <= 2·qd.
	for seed := int64(200); seed < 220; seed++ {
		g := randomGraph(seed, 28, 0.22)
		s := NewSearcher(trussindex.Build(g))
		rng := rand.New(rand.NewSource(seed))
		q := []int{rng.Intn(28), rng.Intn(28), rng.Intn(28)}
		for _, algo := range []func([]int, *Options) (*Community, error){s.Basic, s.BulkDelete, s.LCTC} {
			c, err := algo(q, nil)
			if err != nil {
				continue
			}
			qd, diam := c.QueryDist(), c.Diameter()
			if qd < 0 {
				t.Fatalf("seed %d: negative query distance", seed)
			}
			if diam < qd || diam > 2*qd && qd > 0 {
				t.Fatalf("seed %d %s: diam %d outside [qd=%d, 2qd=%d]", seed, c.Algorithm, diam, qd, 2*qd)
			}
		}
	}
}

func TestInvariantSubsetOfG0(t *testing.T) {
	// Every algorithm's community is a subgraph of G0 (vertices and edges).
	for seed := int64(300); seed < 315; seed++ {
		g := randomGraph(seed, 30, 0.2)
		s := NewSearcher(trussindex.Build(g))
		rng := rand.New(rand.NewSource(seed))
		q := []int{rng.Intn(30), rng.Intn(30)}
		g0, err := s.TrussOnly(q, nil)
		if err != nil {
			continue
		}
		g0set := map[int]bool{}
		for _, v := range g0.Vertices() {
			g0set[v] = true
		}
		for _, algo := range []func([]int, *Options) (*Community, error){s.Basic, s.BulkDelete} {
			c, err := algo(q, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, v := range c.Vertices() {
				if !g0set[v] {
					t.Fatalf("seed %d %s: vertex %d outside G0", seed, c.Algorithm, v)
				}
			}
			sub := c.Subgraph()
			g0sub := g0.Subgraph()
			for _, e := range sub.EdgeKeys() {
				u, v := e.Endpoints()
				if !g0sub.HasEdge(u, v) {
					t.Fatalf("seed %d %s: edge %s outside G0", seed, c.Algorithm, e)
				}
			}
		}
	}
}

func TestInvariantDeterminism(t *testing.T) {
	// Same index, same query → identical results for every algorithm.
	g := randomGraph(77, 40, 0.18)
	s := NewSearcher(trussindex.Build(g))
	q := []int{3, 11, 29}
	for _, algo := range []func([]int, *Options) (*Community, error){s.Basic, s.BulkDelete, s.LCTC, s.TrussOnly} {
		a, errA := algo(q, nil)
		b, errB := algo(q, nil)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic error behavior: %v vs %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.N() != b.N() || a.M() != b.M() || a.K != b.K {
			t.Fatalf("%s nondeterministic: (%d,%d,k%d) vs (%d,%d,k%d)",
				a.Algorithm, a.N(), a.M(), a.K, b.N(), b.M(), b.K)
		}
		av, bv := a.Vertices(), b.Vertices()
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("%s vertex sets differ", a.Algorithm)
			}
		}
	}
}

func TestInvariantFixedKMonotonicity(t *testing.T) {
	// With smaller fixed k the G0 component can only grow, so TrussOnly's
	// size is monotone non-increasing in k.
	g := randomGraph(55, 35, 0.3)
	s := NewSearcher(trussindex.Build(g))
	q := []int{1, 2}
	prevN := 1 << 30
	for k := int32(2); k <= 6; k++ {
		c, err := s.TrussOnly(q, &Options{FixedK: k})
		if err != nil {
			break // no community at this k or above
		}
		if c.N() > prevN {
			t.Fatalf("k=%d: community grew from %d to %d vertices", k, prevN, c.N())
		}
		prevN = c.N()
	}
}
