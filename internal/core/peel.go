package core

import (
	"errors"
	"time"

	"repro/internal/graph"
	"repro/internal/truss"
)

// ErrTimeout is returned when a search exceeds its Options.Timeout budget
// (the experiments report such runs as "Inf", like the paper's 1-hour cap).
var ErrTimeout = errors.New("core: search exceeded its time budget")

// peelRule selects which far-from-query vertices a peeling iteration deletes.
type peelRule int

const (
	// peelSingle deletes one furthest vertex per iteration (Algorithm 1).
	peelSingle peelRule = iota
	// peelBulk deletes L = {u : dist(u,Q) >= d-1} per iteration, where d is
	// the running minimum graph query distance (Algorithm 4). Guarantees
	// >= k deletions per iteration (Lemma 6) at the cost of the ε in the
	// (2+ε) approximation.
	peelBulk
	// peelBulkExact deletes L' = {u : dist(u,Q) >= d}, i.e. only the
	// current furthest vertices, preferring those with the largest total
	// distance to the query set — the readjusted rule of §5.2 used inside
	// LCTC, which restores the 2-approximation.
	peelBulkExact
)

const infDist int32 = 1 << 30

// peelState tracks per-vertex distances of one peeling iteration.
type peelState struct {
	maxDist []int32 // dist(v, Q) with Unreachable mapped to infDist
	sumDist []int64 // Σ_q dist(v, q), for the §5.2 tie preference
	graphD  int32   // dist(G_l, Q) = max over present vertices
}

// computeDistances fills the peel state by one BFS per query vertex.
func computeDistances(mu *graph.Mutable, q []int, st *peelState, dist []int32, queue []int32) []int32 {
	n := mu.NumIDs()
	for v := 0; v < n; v++ {
		st.maxDist[v] = 0
		st.sumDist[v] = 0
	}
	for _, src := range q {
		queue = graph.BFS(mu, src, dist, queue)
		for v := 0; v < n; v++ {
			if !mu.Present(v) || st.maxDist[v] == infDist {
				continue
			}
			if dist[v] == graph.Unreachable {
				st.maxDist[v] = infDist
				continue
			}
			if dist[v] > st.maxDist[v] {
				st.maxDist[v] = dist[v]
			}
			st.sumDist[v] += int64(dist[v])
		}
	}
	st.graphD = 0
	for v := 0; v < n; v++ {
		if mu.Present(v) && st.maxDist[v] > st.graphD {
			st.graphD = st.maxDist[v]
		}
	}
	return queue
}

// queriesConnected reports whether all query vertices are present and
// mutually reachable, judged from a filled peelState (dist(q0, qi) finite
// for all i is equivalent to mutual reachability in an undirected graph).
func queriesConnected(mu *graph.Mutable, q []int, st *peelState) bool {
	for _, v := range q {
		if !mu.Present(v) {
			return false
		}
	}
	return st.maxDist[q[0]] != infDist
}

// greedyPeel runs the shared peeling framework on g0 (a connected k-truss
// containing q) and returns the intermediate graph with the smallest graph
// query distance, restricted to the component containing q. g0 is not
// modified.
func greedyPeel(g0 *graph.Mutable, k int32, q []int, rule peelRule, deadline time.Time) (*graph.Mutable, error) {
	work := g0.Clone()
	// Dense per-edge state, indexed by the base graph's edge IDs: supports
	// for the maintenance cascade and deletion stamps for the timeline.
	sup := graph.MutableEdgeSupports(work)
	isQuery := make(map[int]bool, len(q))
	for _, v := range q {
		isQuery[v] = true
	}
	n := work.NumIDs()
	st := &peelState{maxDist: make([]int32, n), sumDist: make([]int64, n)}
	dist := make([]int32, n)
	var queue []int32

	// edgeStamp[e] = iteration during whose transition the edge was removed;
	// -1 for edges never removed. e ∈ G_l iff edgeStamp[e] < 0 or >= l.
	// Edge-level stamping is essential: the truss-maintenance cascade can
	// delete an edge while both endpoints survive, so intermediate graphs
	// are not induced subgraphs.
	edgeStamp := make([]int32, g0.Base().M())
	for i := range edgeStamp {
		edgeStamp[i] = -1
	}
	var qdHist []int32
	d := infDist // running minimum for the bulk rules
	for iter := int32(0); ; iter++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		queue = computeDistances(work, q, st, dist, queue)
		// The query set is mutually connected iff every query vertex is
		// present and reaches q[0] — read off the distances just computed
		// instead of running a separate BFS.
		if !queriesConnected(work, q, st) {
			break
		}
		qdHist = append(qdHist, st.graphD)
		if st.graphD < d {
			d = st.graphD
		}
		victims := selectVictims(work, st, isQuery, rule, d)
		if len(victims) == 0 {
			break // every vertex is a query vertex at distance < d-1
		}
		_, removedEdges := truss.MaintainKTruss(work, sup, k, victims)
		if len(removedEdges) == 0 {
			break // defensive: no progress
		}
		for _, e := range removedEdges {
			edgeStamp[e] = iter
		}
	}
	if len(qdHist) == 0 {
		return nil, errors.New("core: no feasible intermediate graph")
	}
	best := int32(0)
	for l, qd := range qdHist {
		if qd < qdHist[best] {
			best = int32(l)
		}
	}
	sub := graph.NewMutableShell(g0.Base())
	g0.ForEachLiveEdge(func(e int32, _, _ int) {
		if edgeStamp[e] < 0 || edgeStamp[e] >= best {
			sub.AddEdgeByID(e)
		}
	})
	for _, v := range q {
		sub.EnsureVertex(v)
	}
	comp := graph.Component(sub, q[0])
	return graph.InducedMutable(sub, comp), nil
}

// selectVictims applies the rule to choose this iteration's deletions.
func selectVictims(mu *graph.Mutable, st *peelState, isQuery map[int]bool, rule peelRule, d int32) []int {
	n := mu.NumIDs()
	switch rule {
	case peelSingle:
		// One argmax vertex; prefer non-query vertices on ties so the walk
		// continues as long as possible, then the smallest ID for
		// determinism.
		pick := -1
		for v := 0; v < n; v++ {
			if !mu.Present(v) {
				continue
			}
			if pick < 0 {
				pick = v
				continue
			}
			dv, dp := st.maxDist[v], st.maxDist[pick]
			switch {
			case dv > dp:
				pick = v
			case dv == dp && isQuery[pick] && !isQuery[v]:
				pick = v
			}
		}
		if pick < 0 || st.maxDist[pick] == 0 {
			return nil // a single query vertex remains
		}
		return []int{pick}

	case peelBulk:
		var victims []int
		for v := 0; v < n; v++ {
			if mu.Present(v) && st.maxDist[v] >= d-1 {
				victims = append(victims, v)
			}
		}
		return victims

	case peelBulkExact:
		// L' = furthest vertices only; among them keep those with the
		// largest total distance to Q.
		var best int64 = -1
		for v := 0; v < n; v++ {
			if mu.Present(v) && st.maxDist[v] >= d && st.maxDist[v] != 0 {
				if st.sumDist[v] > best && st.maxDist[v] != infDist {
					best = st.sumDist[v]
				}
			}
		}
		var victims []int
		for v := 0; v < n; v++ {
			if !mu.Present(v) || st.maxDist[v] < d || st.maxDist[v] == 0 {
				continue
			}
			if st.maxDist[v] == infDist || st.sumDist[v] >= best {
				victims = append(victims, v)
			}
		}
		return victims
	}
	return nil
}
