package core

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// ErrTimeout is the legacy timeout sentinel: when a search bounded by
// Options.Timeout exceeds its budget, the compat wrappers return an error
// matching both ErrTimeout and context.DeadlineExceeded (the experiments
// report such runs as "Inf", like the paper's 1-hour cap). Context-first
// callers of Search get the bare context error instead.
var ErrTimeout = errors.New("core: search exceeded its time budget")

// cancelStride is the loop stride between workspace cancel-hook polls in
// the query paths that are not naturally round-structured.
const cancelStride = 1 << 12

// peelRule selects which far-from-query vertices a peeling iteration deletes.
type peelRule int

const (
	// peelSingle deletes one furthest vertex per iteration (Algorithm 1).
	peelSingle peelRule = iota
	// peelBulk deletes L = {u : dist(u,Q) >= d-1} per iteration, where d is
	// the running minimum graph query distance (Algorithm 4). Guarantees
	// >= k deletions per iteration (Lemma 6) at the cost of the ε in the
	// (2+ε) approximation.
	peelBulk
	// peelBulkExact deletes L' = {u : dist(u,Q) >= d}, i.e. only the
	// current furthest vertices, preferring those with the largest total
	// distance to the query set — the readjusted rule of §5.2 used inside
	// LCTC, which restores the 2-approximation.
	peelBulkExact
)

const infDist int32 = 1 << 30

// peelState aliases the workspace buffers one peeling query runs on. All
// per-vertex state is maintained only for the live vertices, so every
// iteration costs O(live subgraph), never O(n).
type peelState struct {
	ws *trussindex.Workspace
	// live lists the present vertices of the working graph; livePos (ValC
	// under StampC) is its inverse. Maintained incrementally as the
	// maintenance cascade deletes vertices.
	live []int32
	// maxDist (ValB) = dist(v, Q) with unreachable mapped to infDist;
	// sumDist = Σ_q dist(v, q) for the §5.2 tie preference. Both are
	// rewritten for every live vertex each iteration (write-before-read),
	// so they need no stamping.
	maxDist []int32
	sumDist []int64
	graphD  int32 // dist(G_l, Q) = max over live vertices
}

// computeDistances fills maxDist/sumDist/graphD by one stamped BFS per
// query vertex, merging over the reached sets only.
func (st *peelState) computeDistances(work *graph.Mutable, q []int) {
	ws := st.ws
	for _, vq := range st.live {
		st.maxDist[vq] = 0
		st.sumDist[vq] = 0
	}
	for _, src := range q {
		reach := graph.BFSMarked(work, src, ws.ValA, ws.StampA, ws.QueueA)
		ws.QueueA = reach
		// Unreached live vertices get infDist; reached ones accumulate.
		for _, vq := range st.live {
			if st.maxDist[vq] == infDist {
				continue
			}
			if !ws.StampA.Marked(vq) {
				st.maxDist[vq] = infDist
				continue
			}
			if d := ws.ValA[vq]; d > st.maxDist[vq] {
				st.maxDist[vq] = d
			}
			st.sumDist[vq] += int64(ws.ValA[vq])
		}
	}
	st.graphD = 0
	for _, vq := range st.live {
		if st.maxDist[vq] > st.graphD {
			st.graphD = st.maxDist[vq]
		}
	}
}

// queriesConnected reports whether all query vertices are present and
// mutually reachable, judged from the filled distances (dist(q0, qi) finite
// for all i is equivalent to mutual reachability in an undirected graph).
func (st *peelState) queriesConnected(work *graph.Mutable, q []int) bool {
	for _, v := range q {
		if !work.Present(v) {
			return false
		}
	}
	return st.maxDist[q[0]] != infDist
}

// dropLive removes v from the live list in O(1) by swapping with the tail.
func (st *peelState) dropLive(v int) {
	ws := st.ws
	p := ws.ValC[v]
	last := int32(len(st.live) - 1)
	w := st.live[last]
	st.live[p] = w
	ws.ValC[w] = p
	st.live = st.live[:last]
}

// greedyPeel runs the shared peeling framework on g0 (a connected k-truss
// containing q) and returns the intermediate graph with the smallest graph
// query distance, restricted to the component containing q. g0 is not
// modified; all scratch comes from ws, so the steady state allocates only
// the returned subgraph. The workspace cancel hook is polled once per peel
// round (each round is a handful of BFS passes over the live subgraph), so
// cancellation returns promptly without per-edge checks; rounds and removed
// edges are tallied into st.
func greedyPeel(g0 *graph.Mutable, k int32, q []int, rule peelRule, ws *trussindex.Workspace, qs *QueryStats) (*graph.Mutable, error) {
	work := ws.CloneFor(g0)
	base := work.Base()
	_, _, supBuf := ws.EdgeScratch()
	sup := graph.MutableEdgeSupportsInto(work, supBuf)

	// Query membership marks (StampB) back the peel rules' tie preferences.
	qEpoch := ws.StampB.Next()
	for _, v := range q {
		ws.StampB.Mark[v] = qEpoch
	}

	st := &peelState{ws: ws, maxDist: ws.ValB, sumDist: ws.SumDist64()}
	// The live list starts as the component of q[0] — all of g0, which is
	// connected by construction — plus any isolated query vertices.
	reach := graph.BFSMarked(work, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = reach
	st.live = append(ws.QueueB[:0], reach...)
	for _, v := range q {
		if work.Present(v) && !ws.StampA.Marked(int32(v)) {
			st.live = append(st.live, int32(v))
		}
	}
	posEpoch := ws.StampC.Next()
	for i, vq := range st.live {
		ws.StampC.Mark[vq] = posEpoch
		ws.ValC[vq] = int32(i)
	}

	// edgeStamp[e] = iteration during whose transition the edge was removed;
	// unmarked edges were never removed. e ∈ G_l iff unmarked or stamp >= l.
	// Edge-level stamping is essential: the truss-maintenance cascade can
	// delete an edge while both endpoints survive, so intermediate graphs
	// are not induced subgraphs.
	edgeStamp, edgeVal, _ := ws.EdgeScratch()
	edgeEpoch := edgeStamp.Next()

	qdHist := ws.Hist[:0]
	d := infDist // running minimum for the bulk rules
	for iter := int32(0); ; iter++ {
		if err := ws.Canceled(); err != nil {
			ws.Hist = qdHist
			ws.QueueB = st.live[:0]
			return nil, err
		}
		qs.PeelRounds++
		st.computeDistances(work, q)
		// The query set is mutually connected iff every query vertex is
		// present and reaches q[0] — read off the distances just computed
		// instead of running a separate BFS.
		if !st.queriesConnected(work, q) {
			break
		}
		qdHist = append(qdHist, st.graphD)
		if st.graphD < d {
			d = st.graphD
		}
		victims := selectVictims(st, rule, d)
		if len(victims) == 0 {
			break // every vertex is a query vertex at distance < d-1
		}
		removedVerts, removedEdges := truss.MaintainKTrussScratch(work, sup, k, victims, &ws.Maintain)
		if len(removedEdges) == 0 {
			break // defensive: no progress
		}
		qs.EdgesPeeled += len(removedEdges)
		for _, e := range removedEdges {
			edgeStamp.Mark[e] = edgeEpoch
			edgeVal[e] = iter
		}
		for _, v := range removedVerts {
			st.dropLive(v)
		}
	}
	ws.Hist = qdHist
	ws.QueueB = st.live[:0]
	if len(qdHist) == 0 {
		return nil, errors.New("core: no feasible intermediate graph")
	}
	best := int32(0)
	for l, qd := range qdHist {
		if qd < qdHist[best] {
			best = int32(l)
		}
	}
	// Reconstruct G_best from the deletion timeline, then hand back its
	// q-component as a fresh overlay the caller owns.
	sub := ws.ShellFor(base)
	g0.ForEachLiveEdge(func(e int32, _, _ int) {
		if edgeStamp.Mark[e] != edgeEpoch || edgeVal[e] >= best {
			sub.AddEdgeByID(e)
		}
	})
	for _, v := range q {
		sub.EnsureVertex(v)
	}
	comp := graph.BFSMarked(sub, q[0], ws.ValA, ws.StampA, ws.QueueA)
	ws.QueueA = comp
	out := graph.NewMutableShell(base)
	for _, vq := range comp {
		v := int(vq)
		sub.ForEachIncidentEdge(v, func(e int32, w int) {
			if w > v {
				out.AddEdgeByID(e)
			}
		})
	}
	for _, v := range q {
		out.EnsureVertex(v)
	}
	return out, nil
}

// selectVictims applies the rule to choose this iteration's deletions,
// writing into the workspace's victim buffer.
func selectVictims(st *peelState, rule peelRule, d int32) []int {
	ws := st.ws
	isQuery := func(v int32) bool { return ws.StampB.Marked(v) }
	victims := ws.Victims[:0]
	switch rule {
	case peelSingle:
		// One argmax vertex under the total order (maxDist desc, non-query
		// before query, smallest ID) — the same vertex the seed's ascending
		// ID scan picked, computed order-independently over the live list.
		pick := int32(-1)
		for _, v := range st.live {
			if pick < 0 {
				pick = v
				continue
			}
			dv, dp := st.maxDist[v], st.maxDist[pick]
			switch {
			case dv > dp:
				pick = v
			case dv == dp:
				qv, qp := isQuery(v), isQuery(pick)
				if (qp && !qv) || (qv == qp && v < pick) {
					pick = v
				}
			}
		}
		if pick < 0 || st.maxDist[pick] == 0 {
			return nil // a single query vertex remains
		}
		victims = append(victims, int(pick))
		ws.Victims = victims
		return victims

	case peelBulk:
		for _, v := range st.live {
			if st.maxDist[v] >= d-1 {
				victims = append(victims, int(v))
			}
		}
		ws.Victims = victims
		return victims

	case peelBulkExact:
		// L' = furthest vertices only; among them keep those with the
		// largest total distance to Q.
		var best int64 = -1
		for _, v := range st.live {
			if st.maxDist[v] >= d && st.maxDist[v] != 0 && st.maxDist[v] != infDist {
				if st.sumDist[v] > best {
					best = st.sumDist[v]
				}
			}
		}
		for _, v := range st.live {
			if st.maxDist[v] < d || st.maxDist[v] == 0 {
				continue
			}
			if st.maxDist[v] == infDist || st.sumDist[v] >= best {
				victims = append(victims, int(v))
			}
		}
		ws.Victims = victims
		return victims
	}
	return nil
}
