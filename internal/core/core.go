package core
