package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/trussindex"
)

// Algo selects the community-search algorithm of a Request.
type Algo uint8

const (
	// AlgoLCTC is Algorithm 5, the local-exploration heuristic seeded by a
	// truss-distance Steiner tree — the recommended default (zero value).
	AlgoLCTC Algo = iota
	// AlgoBasic is Algorithm 1, the greedy 2-approximation that deletes one
	// furthest vertex per iteration. Exact on trussness, slowest.
	AlgoBasic
	// AlgoBulkDelete is Algorithm 4, batch deletion of all far vertices per
	// iteration: a (2+ε)-approximation, much faster than Basic.
	AlgoBulkDelete
	// AlgoTrussOnly returns G0 itself — the maximal connected k-truss
	// containing Q — with no free-rider removal (Algorithm 2 / the "Truss"
	// baseline).
	AlgoTrussOnly
	// AlgoDTruss is the directed (kc, kf)-D-truss community search over the
	// orientation of the serving graph selected by Request.Direction: find
	// the largest cycle-support level kc (flow-support level kf = Request.K)
	// whose D-truss connects Q, then greedily shrink the query distance.
	AlgoDTruss
	// AlgoProbTruss is the probabilistic (k,γ)-truss community search: edges
	// carry existence probabilities (derived deterministically from their
	// endpoints) and every community edge must satisfy
	// Pr[e exists ∧ sup(e) >= k-2] >= γ, with γ = Request.MinProb.
	AlgoProbTruss
	// AlgoMDC is the minimum-degree community baseline (Sozio & Gionis's
	// Cocktail Party): maximize the minimum degree of a connected subgraph
	// containing Q within a fixed query-distance ball.
	AlgoMDC
	// AlgoQDC is the query-biased densest connected subgraph baseline (Wu et
	// al.): maximize edge mass normalized by random-walk proximity weights.
	AlgoQDC

	algoEnd // one past the last valid Algo; keep last
)

// algoInfo is the single registry every algo-keyed surface derives from: the
// display name (Community.Algorithm, the telemetry "algo" label) and the
// accepted wire/CLI spellings (first spelling canonical). Adding an Algo
// means adding one entry here — ParseAlgo, AlgoNames, and the error text of
// every frontend follow automatically and cannot drift.
var algoInfo = [algoEnd]struct {
	name      string
	spellings []string
}{
	AlgoLCTC:       {"LCTC", []string{"lctc"}},
	AlgoBasic:      {"Basic", []string{"basic"}},
	AlgoBulkDelete: {"BD", []string{"bd", "bulk", "bulkdelete"}},
	AlgoTrussOnly:  {"Truss", []string{"truss"}},
	AlgoDTruss:     {"DTruss", []string{"dtruss", "directed"}},
	AlgoProbTruss:  {"ProbTruss", []string{"prob", "probtruss"}},
	AlgoMDC:        {"MDC", []string{"mdc"}},
	AlgoQDC:        {"QDC", []string{"qdc"}},
}

// String returns the algorithm's display name, matching the historical
// Community.Algorithm labels ("LCTC", "Basic", "BD", "Truss", ...).
func (a Algo) String() string {
	if a < algoEnd {
		return algoInfo[a].name
	}
	return fmt.Sprintf("Algo(%d)", uint8(a))
}

// AlgoNames returns the display names of every valid Algo in enum order —
// the exact label set of the per-algo metric vecs, so the telemetry plane
// can pre-register all children at construction.
func AlgoNames() []string {
	names := make([]string, algoEnd)
	for a := Algo(0); a < algoEnd; a++ {
		names[a] = algoInfo[a].name
	}
	return names
}

// AlgoSpellings renders the accepted wire spellings for error/usage text
// ("lctc, basic, bd/bulk/bulkdelete, truss, ..."). Derived from the
// registry so frontend messages stay accurate as algorithms are added.
func AlgoSpellings() string {
	var b []byte
	for a := Algo(0); a < algoEnd; a++ {
		if a > 0 {
			b = append(b, ", "...)
		}
		for i, sp := range algoInfo[a].spellings {
			if i > 0 {
				b = append(b, '/')
			}
			b = append(b, sp...)
		}
	}
	return string(b)
}

// ParseAlgo maps the wire/CLI spellings onto an Algo (case-sensitive,
// lower-case; see algoInfo). The empty string selects the LCTC default.
func ParseAlgo(s string) (Algo, error) {
	if s == "" {
		return AlgoLCTC, nil
	}
	for a := Algo(0); a < algoEnd; a++ {
		for _, sp := range algoInfo[a].spellings {
			if s == sp {
				return a, nil
			}
		}
	}
	return 0, fmt.Errorf("%w: unknown algo %q (want %s)", ErrBadParam, s, AlgoSpellings())
}

// DistanceMode selects the metric LCTC's Steiner seed is built under. It
// replaces the old Options.Gamma = -1 sentinel: the mode is explicit and
// Gamma is only meaningful under DistTrussPenalty.
type DistanceMode uint8

const (
	// DistTrussPenalty is the paper's truss distance (Definition 7):
	// hops + γ·(τ̄(∅) − min edge trussness along the path), with γ taken
	// from Request.Gamma (0 = the paper's default 3). The zero value.
	DistTrussPenalty DistanceMode = iota
	// DistHop is plain hop distance (γ = 0). Request.Gamma must be 0.
	DistHop

	distanceModeEnd // one past the last valid DistanceMode; keep last
)

// String names the distance mode ("truss" or "hop").
func (m DistanceMode) String() string {
	switch m {
	case DistTrussPenalty:
		return "truss"
	case DistHop:
		return "hop"
	}
	return fmt.Sprintf("DistanceMode(%d)", uint8(m))
}

// DirectionMode selects how AlgoDTruss orients the undirected serving graph
// into its directed view. Every mode is a pure function of the edge's
// endpoints, so the view is identical across epochs, replicas, and the
// differential oracle — a requirement for the epoch-keyed result cache.
type DirectionMode uint8

const (
	// DirBoth materializes both arcs u⇄v per undirected edge (the zero
	// value): every triangle is both a cycle and a flow triangle, so the
	// model degenerates gracefully toward the undirected semantics.
	DirBoth DirectionMode = iota
	// DirLowHigh orients each edge from the lower vertex ID to the higher:
	// a DAG view (no directed cycles, kc is always 0), stressing the
	// flow-support side of the model.
	DirLowHigh
	// DirHighLow orients each edge from the higher vertex ID to the lower.
	DirHighLow
	// DirHash orients each edge by a deterministic hash of its endpoint
	// pair: a mixed view with both cycle and flow triangles.
	DirHash

	directionModeEnd // one past the last valid DirectionMode; keep last
)

// String names the direction mode ("both", "lowhigh", "highlow", "hash").
func (m DirectionMode) String() string {
	switch m {
	case DirBoth:
		return "both"
	case DirLowHigh:
		return "lowhigh"
	case DirHighLow:
		return "highlow"
	case DirHash:
		return "hash"
	}
	return fmt.Sprintf("DirectionMode(%d)", uint8(m))
}

// ParseDirection maps the wire/CLI spellings onto a DirectionMode: "both",
// "lowhigh", "highlow", "hash". The empty string selects the DirBoth
// default.
func ParseDirection(s string) (DirectionMode, error) {
	switch s {
	case "", "both":
		return DirBoth, nil
	case "lowhigh":
		return DirLowHigh, nil
	case "highlow":
		return DirHighLow, nil
	case "hash":
		return DirHash, nil
	}
	return 0, fmt.Errorf("%w: unknown direction %q (want both, lowhigh, highlow or hash)", ErrBadParam, s)
}

// Typed request-validation errors. Search validates once up front and
// returns these instead of letting a malformed query reach VertexTruss/BFS
// unchecked; match with errors.Is.
var (
	// ErrEmptyQuery: the request has no query vertices.
	ErrEmptyQuery = errors.New("core: empty query vertex set")
	// ErrVertexOutOfRange: a query vertex is negative or >= the graph's N().
	ErrVertexOutOfRange = errors.New("core: query vertex out of range")
	// ErrBadParam: a tuning parameter is out of its domain (negative K, Eta
	// or Gamma, NaN Gamma, Gamma combined with DistHop, unknown Algo or
	// DistanceMode).
	ErrBadParam = errors.New("core: bad request parameter")
)

// Request is one validated community-search query: the query vertices, the
// algorithm, and explicit tuning parameters. The zero value of every field
// selects the paper's default (LCTC, maximize k, η = 1000, truss distance
// with γ = 3, no verification); there are no sentinel encodings.
type Request struct {
	// Q holds the query vertices (must be non-empty, each in [0, N)).
	Q []int
	// Algo selects the search algorithm (default AlgoLCTC).
	Algo Algo
	// K, when > 0, requests a community of that fixed trussness instead of
	// the maximum (the Exp-5 variant; values 1..2 behave as 2, since
	// trussness is only defined from 2 up). For AlgoDTruss, K is instead the
	// flow-support level kf (the cycle level kc is maximized); for
	// AlgoProbTruss it caps the probabilistic trussness. Ignored by
	// AlgoMDC/AlgoQDC. K < 0 is ErrBadParam.
	K int32
	// Eta is LCTC's node-budget threshold η for the local expansion
	// (0 = default 1000). Ignored by the other algorithms. (The
	// edge-probability threshold of AlgoProbTruss — historically also called
	// η — is the separate MinProb field; the two share nothing but a letter.)
	Eta int
	// Gamma is the truss-distance penalty γ under DistTrussPenalty
	// (0 = default 3). Must be 0 under DistHop. Only LCTC reads it.
	Gamma float64
	// DistanceMode selects LCTC's seed metric (default DistTrussPenalty).
	DistanceMode DistanceMode
	// Direction selects AlgoDTruss's orientation of the undirected serving
	// graph (default DirBoth). Ignored by the other algorithms.
	Direction DirectionMode
	// MinProb is AlgoProbTruss's confidence threshold γ: every community
	// edge must exist with support >= k-2 with probability at least MinProb.
	// Domain (0, 1]; 0 selects the default 0.5. Values outside [0, 1] (or
	// NaN) are ErrBadParam. Ignored by the other algorithms.
	MinProb float64
	// Verify re-checks the output against the CTC conditions (connected
	// k-truss containing Q) and fails loudly on violation. Meant for tests.
	Verify bool
	// Tenant identifies the requesting tenant for admission fairness and
	// per-tenant accounting in the serve layer ("" = the anonymous tenant).
	// It does not affect the answer and is not part of the cache identity.
	Tenant string
}

// Validate checks the request against a graph with n vertices, returning a
// typed error (ErrEmptyQuery, ErrVertexOutOfRange, ErrBadParam) for the
// first violation found. Search calls this before acquiring a workspace.
func (r *Request) Validate(n int) error {
	if len(r.Q) == 0 {
		return ErrEmptyQuery
	}
	for _, v := range r.Q {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: vertex %d not in [0, %d)", ErrVertexOutOfRange, v, n)
		}
	}
	if r.Algo >= algoEnd {
		return fmt.Errorf("%w: unknown Algo(%d)", ErrBadParam, uint8(r.Algo))
	}
	if r.DistanceMode >= distanceModeEnd {
		return fmt.Errorf("%w: unknown DistanceMode(%d)", ErrBadParam, uint8(r.DistanceMode))
	}
	if r.K < 0 {
		return fmt.Errorf("%w: negative K %d", ErrBadParam, r.K)
	}
	if r.Eta < 0 {
		return fmt.Errorf("%w: negative Eta %d", ErrBadParam, r.Eta)
	}
	if r.Gamma < 0 || math.IsNaN(r.Gamma) || math.IsInf(r.Gamma, 0) {
		return fmt.Errorf("%w: Gamma %v outside [0, ∞)", ErrBadParam, r.Gamma)
	}
	if r.DistanceMode == DistHop && r.Gamma != 0 {
		return fmt.Errorf("%w: Gamma %v is meaningless under DistHop", ErrBadParam, r.Gamma)
	}
	if r.Direction >= directionModeEnd {
		return fmt.Errorf("%w: unknown DirectionMode(%d)", ErrBadParam, uint8(r.Direction))
	}
	if r.MinProb < 0 || r.MinProb > 1 || math.IsNaN(r.MinProb) {
		return fmt.Errorf("%w: MinProb %v outside (0, 1]", ErrBadParam, r.MinProb)
	}
	return nil
}

// eta returns the effective expansion budget.
func (r *Request) eta() int {
	if r.Eta <= 0 {
		return 1000
	}
	return r.Eta
}

// gamma returns the effective truss-distance penalty.
func (r *Request) gamma() float64 {
	if r.DistanceMode == DistHop {
		return 0
	}
	if r.Gamma == 0 {
		return 3
	}
	return r.Gamma
}

// DefaultMinProb is AlgoProbTruss's confidence threshold when
// Request.MinProb is zero.
const DefaultMinProb = 0.5

// minProb returns the effective (k,γ)-truss confidence threshold.
func (r *Request) minProb() float64 {
	if r.MinProb == 0 {
		return DefaultMinProb
	}
	return r.MinProb
}

// QueryStats is the per-query execution report of one Search call. Phase
// timings are wall-clock; for LCTC, Seed covers the Steiner-tree build,
// Expand the local expansion plus truss extraction, and Peel the free-rider
// shrink. For Basic/BulkDelete, Seed is the FindG0/FindKTruss lookup. For
// TrussOnly only Seed is set.
type QueryStats struct {
	// Algo echoes the request's algorithm.
	Algo Algo
	// Epoch is the serving-snapshot epoch this query ran against (0 when the
	// query ran on a standalone index outside the serve layer).
	Epoch int64
	// Seed is the time to resolve the starting structure: FindG0/FindKTruss
	// for Basic/BulkDelete/TrussOnly, the Steiner-tree build for LCTC.
	Seed time.Duration
	// Expand is LCTC's local-expansion + extraction time (0 otherwise).
	Expand time.Duration
	// Peel is the greedy free-rider-removal time (0 for TrussOnly).
	Peel time.Duration
	// Total is the end-to-end pipeline time of the query — every phase plus
	// the Verify re-check when requested. Request validation (a cheap O(|Q|)
	// scan that runs before a workspace is even acquired) is not included,
	// and neither is admission-queue wait — that is QueueWait, which is
	// stamped by the serve layer after the pipeline finishes.
	//
	// Invariant: Total >= Seed + Expand + Peel (Total is measured by one
	// outer clock around the whole pipeline, the phases by inner clocks, so
	// inter-phase glue can only add to Total, never subtract). Use
	// TotalWithQueue for the client-observed latency.
	Total time.Duration
	// SeedEdges counts the edges of the starting subgraph the peel works on
	// (G0 for Basic/BulkDelete/TrussOnly, the extracted k-truss for LCTC) —
	// the main driver of query cost.
	SeedEdges int
	// PeelRounds counts peeling iterations (distance recomputations).
	PeelRounds int
	// EdgesPeeled counts edges removed across all peel rounds.
	EdgesPeeled int
	// WorkspaceReused reports whether the query ran on a pooled workspace
	// (false = this query paid the one-time workspace allocation).
	WorkspaceReused bool
	// QueueWait is the time the query spent in the admission queue before a
	// concurrency slot was granted (0 when it ran outside the serve layer or
	// was admitted immediately).
	QueueWait time.Duration
	// CacheHit reports that the answer was served from the epoch-keyed
	// result cache; the phase timings then describe the original execution
	// that populated the entry, not this request.
	CacheHit bool
	// Tenant echoes the request's tenant ("" = anonymous).
	Tenant string
	// ShardEpochs is the per-shard epoch vector stamped by the sharded
	// serving tier (internal/shard): entry i is the epoch of shard i's
	// snapshot the answer was computed against, and Epoch is their maximum.
	// Nil outside the shard router (single-manager and standalone queries),
	// so the field costs nothing on the unsharded hot path.
	ShardEpochs []int64
}

// TotalWithQueue is the client-observed latency of the query through the
// serve layer: the pipeline time plus the admission-queue wait. Outside the
// serve layer (QueueWait == 0) it equals Total.
func (s *QueryStats) TotalWithQueue() time.Duration {
	return s.Total + s.QueueWait
}

// Result is the answer to one Search: the community itself plus the
// per-query stats. The Community is embedded by value so the whole result
// is a single allocation — the unified entry point adds no allocations over
// the pre-redesign per-algorithm calls.
type Result struct {
	Community
	// Stats reports how the query executed.
	Stats QueryStats
}

// BatchItem is one request's outcome inside SearchBatch: exactly one of
// Result and Err is non-nil.
type BatchItem struct {
	Result *Result
	Err    error
}

// Search answers one community-search request. It validates req, checks a
// pooled workspace out of the index, dispatches on req.Algo, and returns
// the community with per-query stats. Cancellation: ctx is polled at
// peel-round/BFS-level granularity throughout the pipeline (FindG0, the
// Steiner build, expansion, extraction, peeling), so cancelling the context
// or exceeding its deadline returns context.Canceled /
// context.DeadlineExceeded promptly without per-edge overhead.
//
// Search is safe for any number of concurrent callers on one Searcher.
func (s *Searcher) Search(ctx context.Context, req Request) (*Result, error) {
	if err := req.Validate(s.ix.Graph().N()); err != nil {
		return nil, err
	}
	ws := s.ix.AcquireWorkspace()
	defer ws.Release()
	return s.searchW(ctx, req, ws)
}

// SearchBatch answers the requests in order on one pooled workspace,
// amortizing workspace checkout (and its one-time warm-up allocation)
// across the batch. Each request gets its own BatchItem — an invalid or
// infeasible request fails alone without aborting the batch — except that a
// ctx cancellation fails every not-yet-run request with the context error
// and is also returned as the batch error.
func (s *Searcher) SearchBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	items := make([]BatchItem, len(reqs))
	if len(reqs) == 0 {
		return items, nil
	}
	n := s.ix.Graph().N()
	ws := s.ix.AcquireWorkspace()
	defer ws.Release()
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(reqs); j++ {
				items[j].Err = err
			}
			return items, err
		}
		if err := reqs[i].Validate(n); err != nil {
			items[i].Err = err
			continue
		}
		res, err := s.searchW(ctx, reqs[i], ws)
		items[i] = BatchItem{Result: res, Err: err}
	}
	// Cancellation during the final request's search never reaches the
	// top-of-loop check; the batch-level error must still report it.
	if err := ctx.Err(); err != nil {
		return items, err
	}
	return items, nil
}

// searchW runs one validated request on an explicit workspace. It installs
// ctx as the workspace's cancel hook for the duration of the call; the
// Result is a single allocation with all stats filled in.
func (s *Searcher) searchW(ctx context.Context, req Request, ws *trussindex.Workspace) (*Result, error) {
	ws.SetContext(ctx)
	res := &Result{}
	st := &res.Stats
	st.Algo = req.Algo
	st.WorkspaceReused = ws.Reused()
	t0 := time.Now()

	var err error
	switch req.Algo {
	case AlgoTrussOnly, AlgoBasic, AlgoBulkDelete:
		err = s.searchGlobal(req, ws, res)
	case AlgoLCTC:
		err = s.searchLCTC(req, ws, res)
	case AlgoDTruss:
		err = s.searchDirected(req, ws, res)
	case AlgoProbTruss:
		err = s.searchProb(req, ws, res)
	case AlgoMDC:
		err = s.searchMDC(req, ws, res)
	case AlgoQDC:
		err = s.searchQDC(req, ws, res)
	default: // unreachable after Validate
		err = fmt.Errorf("%w: unknown Algo(%d)", ErrBadParam, uint8(req.Algo))
	}
	if err != nil {
		return nil, err
	}
	if req.Verify {
		if err := verifyResult(res); err != nil {
			return nil, err
		}
	}
	st.Total = time.Since(t0)
	return res, nil
}
