package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// requestTestSearcher indexes a small K5-plus-pendant graph (6 vertices).
func requestTestSearcher(t *testing.T) *Searcher {
	t.Helper()
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
		{2, 3}, {2, 4}, {3, 4}, {4, 5},
	})
	return NewSearcher(trussindex.Build(g))
}

// TestRequestValidation table-tests every invalid request shape against its
// typed error. Before the unified entry point an out-of-range vertex could
// reach VertexTruss/BFS unchecked; now each shape fails Validate with a
// matchable sentinel — and never panics.
func TestRequestValidation(t *testing.T) {
	s := requestTestSearcher(t)
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"empty query", Request{}, ErrEmptyQuery},
		{"nil query with params", Request{Algo: AlgoBasic, K: 3}, ErrEmptyQuery},
		{"negative vertex", Request{Q: []int{0, -1}}, ErrVertexOutOfRange},
		{"vertex == n", Request{Q: []int{6}}, ErrVertexOutOfRange},
		{"vertex far out of range", Request{Q: []int{1 << 30}}, ErrVertexOutOfRange},
		{"unknown algo", Request{Q: []int{0}, Algo: algoEnd}, ErrBadParam},
		{"unknown algo high bits", Request{Q: []int{0}, Algo: Algo(200)}, ErrBadParam},
		{"unknown distance mode", Request{Q: []int{0}, DistanceMode: distanceModeEnd}, ErrBadParam},
		{"negative K", Request{Q: []int{0}, K: -1}, ErrBadParam},
		{"negative Eta", Request{Q: []int{0}, Eta: -7}, ErrBadParam},
		{"negative Gamma", Request{Q: []int{0}, Gamma: -1}, ErrBadParam},
		{"NaN Gamma", Request{Q: []int{0}, Gamma: math.NaN()}, ErrBadParam},
		{"Inf Gamma", Request{Q: []int{0}, Gamma: math.Inf(1)}, ErrBadParam},
		{"Gamma under DistHop", Request{Q: []int{0}, DistanceMode: DistHop, Gamma: 2}, ErrBadParam},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := s.Search(ctx, tc.req)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Search(%+v) err = %v, want errors.Is(..., %v)", tc.req, err, tc.want)
			}
			if res != nil {
				t.Fatalf("Search returned a result alongside error %v", err)
			}
		})
	}
}

// TestRequestValidShapes locks in that the zero-value-defaulted shapes all
// pass validation and produce verified communities for every algorithm.
func TestRequestValidShapes(t *testing.T) {
	s := requestTestSearcher(t)
	ctx := context.Background()
	for _, req := range []Request{
		{Q: []int{0, 1}, Verify: true},                            // LCTC defaults
		{Q: []int{0, 1}, Algo: AlgoBasic, Verify: true},           // Basic
		{Q: []int{0, 1}, Algo: AlgoBulkDelete, Verify: true},      // BulkDelete
		{Q: []int{0, 1}, Algo: AlgoTrussOnly, Verify: true},       // TrussOnly
		{Q: []int{0, 1}, K: 3, Verify: true},                      // fixed k
		{Q: []int{0, 1}, Eta: 50, Gamma: 5, Verify: true},         // tuned LCTC
		{Q: []int{0, 1}, DistanceMode: DistHop, Verify: true},     // hop metric
		{Q: []int{0, 0, 1}, Algo: AlgoBasic, Verify: true},        // duplicate vertices
		{Q: []int{0, 1}, Algo: AlgoTrussOnly, K: 1, Verify: true}, // k<2 clamps to 2
	} {
		res, err := s.Search(ctx, req)
		if err != nil {
			t.Fatalf("Search(%+v): %v", req, err)
		}
		if res.K < 2 || res.N() == 0 {
			t.Fatalf("Search(%+v): degenerate community k=%d n=%d", req, res.K, res.N())
		}
		if res.Stats.Algo != req.Algo || res.Stats.Total <= 0 {
			t.Fatalf("Search(%+v): stats not filled: %+v", req, res.Stats)
		}
	}
}

// TestParseAlgo pins the wire spellings.
func TestParseAlgo(t *testing.T) {
	for spelling, want := range map[string]Algo{
		"": AlgoLCTC, "lctc": AlgoLCTC, "basic": AlgoBasic,
		"bd": AlgoBulkDelete, "bulk": AlgoBulkDelete, "bulkdelete": AlgoBulkDelete,
		"truss": AlgoTrussOnly,
	} {
		got, err := ParseAlgo(spelling)
		if err != nil || got != want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := ParseAlgo("nope"); !errors.Is(err, ErrBadParam) {
		t.Errorf("ParseAlgo(nope) err = %v, want ErrBadParam", err)
	}
}

// TestLegacyOptionsMapping checks the documented Options→Request decoding:
// the -1 gamma sentinel becomes DistHop, non-positive FixedK/Eta become the
// explicit zero defaults, and the wrappers agree with direct Search calls.
func TestLegacyOptionsMapping(t *testing.T) {
	cases := []struct {
		opt  *Options
		want Request
	}{
		{nil, Request{}},
		{&Options{}, Request{}},
		{&Options{FixedK: -1}, Request{}},
		{&Options{FixedK: 3, Eta: 50}, Request{K: 3, Eta: 50}},
		{&Options{Gamma: -1}, Request{DistanceMode: DistHop}},
		{&Options{Gamma: 5}, Request{Gamma: 5}},
		{&Options{Eta: -3}, Request{}},
		{&Options{Verify: true}, Request{Verify: true}},
	}
	for _, tc := range cases {
		got := tc.opt.request(AlgoLCTC, nil)
		tc.want.Algo = AlgoLCTC
		if got.K != tc.want.K || got.Eta != tc.want.Eta || got.Gamma != tc.want.Gamma ||
			got.DistanceMode != tc.want.DistanceMode || got.Verify != tc.want.Verify {
			t.Errorf("(%+v).request() = %+v, want %+v", tc.opt, got, tc.want)
		}
	}

	// Wrapper answers must equal direct Search answers.
	s := requestTestSearcher(t)
	q := []int{0, 1}
	cw, err := s.LCTC(q, &Options{Gamma: -1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(context.Background(), Request{Q: q, DistanceMode: DistHop, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if cw.N() != res.N() || cw.M() != res.M() || cw.K != res.K {
		t.Fatalf("wrapper (n=%d m=%d k=%d) diverged from Search (n=%d m=%d k=%d)",
			cw.N(), cw.M(), cw.K, res.N(), res.M(), res.K)
	}
}

// TestSearchBatch checks batch semantics: one workspace across the batch,
// per-item errors that do not abort the rest, and results matching
// independent Search calls.
func TestSearchBatch(t *testing.T) {
	s := requestTestSearcher(t)
	ctx := context.Background()
	reqs := []Request{
		{Q: []int{0, 1}},                      // ok
		{Q: []int{}},                          // ErrEmptyQuery, batch continues
		{Q: []int{0, 1}, Algo: AlgoBasic},     // ok
		{Q: []int{99}},                        // ErrVertexOutOfRange, batch continues
		{Q: []int{0, 5}, Algo: AlgoTrussOnly}, // ok (pendant vertex, k=2)
	}
	items, err := s.SearchBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	if len(items) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(items), len(reqs))
	}
	if !errors.Is(items[1].Err, ErrEmptyQuery) || !errors.Is(items[3].Err, ErrVertexOutOfRange) {
		t.Fatalf("item errors = %v, %v", items[1].Err, items[3].Err)
	}
	for _, i := range []int{0, 2, 4} {
		if items[i].Err != nil || items[i].Result == nil {
			t.Fatalf("item %d failed: %v", i, items[i].Err)
		}
		solo, err := s.Search(ctx, reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := items[i].Result; got.N() != solo.N() || got.M() != solo.M() || got.K != solo.K {
			t.Fatalf("item %d (n=%d m=%d k=%d) diverged from solo Search (n=%d m=%d k=%d)",
				i, got.N(), got.M(), got.K, solo.N(), solo.M(), solo.K)
		}
	}

	// A cancelled context fails the whole remaining batch with the ctx error.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	items, err = s.SearchBatch(cctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v", err)
	}
	for i, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("item %d err = %v, want context.Canceled", i, it.Err)
		}
	}

	// Empty batch: no workspace churn, no error.
	if items, err = s.SearchBatch(ctx, nil); err != nil || len(items) != 0 {
		t.Fatalf("empty batch: %v, %d items", err, len(items))
	}
}
