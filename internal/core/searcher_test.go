package core

import (
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// paperGraph is Figure 1(a); q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7
// p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	return graph.FromEdges(12, edges)
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func paperSearcher() *Searcher {
	return NewSearcher(trussindex.Build(paperGraph()))
}

var verifyOpt = &Options{Verify: true}

func TestBasicPaperExample4(t *testing.T) {
	// Example 4: Basic on Figure 1(a) with Q={q1,q2,q3} outputs Figure 1(b):
	// the 4-truss without p1,p2,p3, query distance 3, diameter 3 (optimal).
	s := paperSearcher()
	c, err := s.Basic([]int{0, 1, 2}, verifyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 4 {
		t.Fatalf("k = %d, want 4", c.K)
	}
	if c.N() != 8 {
		t.Fatalf("|V| = %d, want 8 (Figure 1(b))", c.N())
	}
	for _, v := range []int{8, 9, 10, 11} {
		if c.Contains(v) {
			t.Fatalf("free rider %d survived Basic", v)
		}
	}
	if c.QueryDist() != 3 {
		t.Fatalf("query distance = %d, want 3", c.QueryDist())
	}
	if c.Diameter() != 3 {
		t.Fatalf("diameter = %d, want 3", c.Diameter())
	}
}

func TestBulkDeletePaperExample7(t *testing.T) {
	// Example 7: BulkDelete computes d=4, deletes L={q1,q3,p1,p2,p3} in one
	// shot, which disconnects Q, so it reports the entire 4-truss G0 with
	// diameter 4.
	s := paperSearcher()
	c, err := s.BulkDelete([]int{0, 1, 2}, verifyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 4 {
		t.Fatalf("k = %d, want 4", c.K)
	}
	if c.N() != 11 {
		t.Fatalf("|V| = %d, want 11 (all of G0)", c.N())
	}
	if c.Diameter() != 4 {
		t.Fatalf("diameter = %d, want 4", c.Diameter())
	}
}

func TestLCTCPaperQuery(t *testing.T) {
	// LCTC's L' rule removes only the furthest nodes (p1,p2,p3 at distance
	// 4), recovering the Figure 1(b) community like Basic does.
	s := paperSearcher()
	c, err := s.LCTC([]int{0, 1, 2}, verifyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 4 {
		t.Fatalf("k = %d, want 4", c.K)
	}
	if c.N() != 8 {
		t.Fatalf("|V| = %d, want 8", c.N())
	}
	if c.Diameter() != 3 {
		t.Fatalf("diameter = %d, want 3", c.Diameter())
	}
}

func TestTrussOnlyBaseline(t *testing.T) {
	s := paperSearcher()
	c, err := s.TrussOnly([]int{0, 1, 2}, verifyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 11 || c.K != 4 {
		t.Fatalf("Truss baseline: N=%d k=%d, want 11 and 4", c.N(), c.K)
	}
	if c.Diameter() != 4 {
		t.Fatalf("G0 diameter = %d, want 4", c.Diameter())
	}
}

func TestSingleQueryVertex(t *testing.T) {
	s := paperSearcher()
	for _, algo := range []func([]int, *Options) (*Community, error){s.Basic, s.BulkDelete, s.LCTC} {
		c, err := algo([]int{2}, verifyOpt)
		if err != nil {
			t.Fatal(err)
		}
		if c.K != 4 {
			t.Fatalf("%s: k = %d, want 4", c.Algorithm, c.K)
		}
		if !c.Contains(2) {
			t.Fatalf("%s: query vertex missing", c.Algorithm)
		}
		// The optimal is a diameter-1 4-clique; all algorithms should get
		// within factor 2.
		if c.Diameter() > 2 {
			t.Fatalf("%s: diameter %d > 2·OPT = 2", c.Algorithm, c.Diameter())
		}
	}
}

func TestLowTrussnessQuery(t *testing.T) {
	// Q={t, q1}: only a 2-truss connects them (via the pendant edges).
	s := paperSearcher()
	c, err := s.Basic([]int{11, 0}, verifyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 2 {
		t.Fatalf("k = %d, want 2", c.K)
	}
	if !c.Contains(11) || !c.Contains(0) {
		t.Fatal("query vertices missing")
	}
}

func TestInfeasibleQuery(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {2, 3}})
	s := NewSearcher(trussindex.Build(g))
	for _, algo := range []func([]int, *Options) (*Community, error){s.Basic, s.BulkDelete, s.LCTC, s.TrussOnly} {
		if _, err := algo([]int{0, 2}, nil); err == nil {
			t.Fatal("disconnected query must fail")
		}
	}
}

func TestFixedKVariant(t *testing.T) {
	s := paperSearcher()
	// At fixed k=2 for Q={q1,q2,q3} the 2-truss G0 includes t, allowing a
	// smaller diameter than the 4-truss answer.
	c2, err := s.Basic([]int{0, 1, 2}, &Options{FixedK: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if c2.K != 2 {
		t.Fatalf("k = %d, want 2", c2.K)
	}
	if c2.Diameter() > 3 {
		t.Fatalf("2-truss community diameter = %d, should be <= 3", c2.Diameter())
	}
	// Fixed k above the feasible maximum fails.
	if _, err := s.Basic([]int{0, 1, 2}, &Options{FixedK: 5}); err == nil {
		t.Fatal("fixed k=5 must fail")
	}
	// LCTC honors the cap too.
	c3, err := s.LCTC([]int{0, 1, 2}, &Options{FixedK: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if c3.K > 3 {
		t.Fatalf("LCTC fixed-k: k = %d, want <= 3", c3.K)
	}
	// FixedK=1 is clamped to 2 through the whole pipeline: the community
	// must be identical to the FixedK=2 run (same reported K, so the
	// maintenance cascade enforced support >= 0, not a vacuous negative
	// bound) and must pass verification as a 2-truss. FixedK <= 0 stays
	// "unset" per the Options contract and maximizes k instead.
	c1, err := s.Basic([]int{0, 1, 2}, &Options{FixedK: 1, Verify: true})
	if err != nil {
		t.Fatalf("FixedK=1: %v", err)
	}
	if c1.K != 2 || c1.N() != c2.N() || c1.M() != c2.M() {
		t.Fatalf("FixedK=1: (k=%d n=%d m=%d), want the FixedK=2 result (k=2 n=%d m=%d)",
			c1.K, c1.N(), c1.M(), c2.N(), c2.M())
	}
	cMax, err := s.Basic([]int{0, 1, 2}, &Options{FixedK: -1, Verify: true})
	if err != nil || cMax.K != 4 {
		t.Fatalf("FixedK=-1 must maximize: k=%v err=%v, want k=4", cMax.K, err)
	}
}

func TestTwoApproximationAgainstExact(t *testing.T) {
	// Theorem 3: diam(Basic) <= 2 diam(OPT) with equal trussness. Checked
	// exhaustively on random graphs small enough for the exact solver. LCTC
	// with the L' rule should obey the same bound; BD gets 2+ε with
	// ε = 2/diam(OPT).
	checked := 0
	for seed := int64(0); seed < 60 && checked < 25; seed++ {
		g := randomGraph(seed, 13, 0.35)
		rng := rand.New(rand.NewSource(seed + 500))
		q := []int{rng.Intn(13), rng.Intn(13)}
		opt, err := exact.Solve(g, q)
		if err != nil {
			continue
		}
		s := NewSearcher(trussindex.Build(g))
		basic, err := s.Basic(q, verifyOpt)
		if err != nil {
			t.Fatalf("seed %d: Basic failed where exact succeeded: %v", seed, err)
		}
		if basic.K != opt.K {
			t.Fatalf("seed %d: Basic k=%d, OPT k=%d", seed, basic.K, opt.K)
		}
		if basic.Diameter() > 2*opt.Diameter {
			t.Fatalf("seed %d q=%v: Basic diameter %d > 2·OPT %d",
				seed, q, basic.Diameter(), 2*opt.Diameter)
		}
		bd, err := s.BulkDelete(q, verifyOpt)
		if err != nil {
			t.Fatalf("seed %d: BD failed: %v", seed, err)
		}
		if bd.K != opt.K || bd.Diameter() > 2*opt.Diameter+2 {
			t.Fatalf("seed %d: BD k=%d diam=%d vs OPT k=%d diam=%d",
				seed, bd.K, bd.Diameter(), opt.K, opt.Diameter)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked; generator too sparse", checked)
	}
}

func TestQueryDistanceOptimality(t *testing.T) {
	// Lemma 5: Basic's output R has dist_R(R,Q) <= dist_H(H,Q) for every
	// connected k-truss H (max k) containing Q; in particular
	// dist_R(R,Q) <= dist of the exact optimum.
	for seed := int64(0); seed < 40; seed++ {
		g := randomGraph(seed, 12, 0.4)
		rng := rand.New(rand.NewSource(seed + 900))
		q := []int{rng.Intn(12), rng.Intn(12)}
		opt, err := exact.Solve(g, q)
		if err != nil {
			continue
		}
		s := NewSearcher(trussindex.Build(g))
		basic, err := s.Basic(q, verifyOpt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sub := graph.InducedMutable(graph.NewMutable(g, nil), opt.Vertices)
		optQD, _ := graph.GraphQueryDistance(sub, q)
		if basic.QueryDist() > int(optQD) {
			// dist_R(R,Q) must not exceed the optimum's query distance.
			t.Fatalf("seed %d q=%v: Basic qd=%d > OPT qd=%d", seed, q, basic.QueryDist(), optQD)
		}
	}
}

func TestAllAlgorithmsProduceValidCommunities(t *testing.T) {
	// Randomized validity sweep: whatever the three algorithms return must
	// be a connected k-truss containing Q, with matching trussness among
	// the two exact-k algorithms.
	for seed := int64(100); seed < 130; seed++ {
		g := randomGraph(seed, 40, 0.15)
		ix := trussindex.Build(g)
		s := NewSearcher(ix)
		rng := rand.New(rand.NewSource(seed))
		q := []int{rng.Intn(40), rng.Intn(40), rng.Intn(40)}
		basic, errB := s.Basic(q, verifyOpt)
		bd, errD := s.BulkDelete(q, verifyOpt)
		if (errB == nil) != (errD == nil) {
			t.Fatalf("seed %d: Basic err=%v, BD err=%v", seed, errB, errD)
		}
		if errB != nil {
			continue
		}
		if basic.K != bd.K {
			t.Fatalf("seed %d: Basic k=%d != BD k=%d", seed, basic.K, bd.K)
		}
		lctc, errL := s.LCTC(q, verifyOpt)
		if errL != nil {
			t.Fatalf("seed %d: LCTC failed where global methods succeeded: %v", seed, errL)
		}
		if lctc.K > basic.K {
			t.Fatalf("seed %d: LCTC k=%d exceeds the global maximum %d", seed, lctc.K, basic.K)
		}
		// Basic peels at least as much as the Truss baseline keeps.
		trussOnly, _ := s.TrussOnly(q, nil)
		if basic.N() > trussOnly.N() {
			t.Fatalf("seed %d: Basic (%d nodes) larger than G0 (%d)", seed, basic.N(), trussOnly.N())
		}
	}
}

func TestLCTCEtaBudget(t *testing.T) {
	// A small η must cap the expansion; the community can only shrink.
	g := randomGraph(11, 60, 0.12)
	s := NewSearcher(trussindex.Build(g))
	q := []int{0, 1}
	big, errBig := s.LCTC(q, &Options{Eta: 1000, Verify: true})
	small, errSmall := s.LCTC(q, &Options{Eta: 8, Verify: true})
	if errBig != nil || errSmall != nil {
		t.Skipf("query infeasible on this seed: %v / %v", errBig, errSmall)
	}
	if small.N() > 8+len(q) {
		t.Fatalf("η=8 but LCTC kept %d nodes", small.N())
	}
	if small.N() > big.N() {
		t.Fatalf("smaller η produced a larger community (%d > %d)", small.N(), big.N())
	}
}

func TestCommunityAccessors(t *testing.T) {
	s := paperSearcher()
	c, err := s.Basic([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm != "Basic" {
		t.Fatalf("algorithm = %q", c.Algorithm)
	}
	if c.Contains(99) || !c.Contains(0) {
		t.Fatal("Contains broken")
	}
	if c.Density() <= 0 || c.Density() > 1 {
		t.Fatalf("density = %f", c.Density())
	}
	if c.String() == "" {
		t.Fatal("empty String()")
	}
	if got := c.Subgraph().M(); got != c.M() {
		t.Fatalf("subgraph M=%d, community M=%d", got, c.M())
	}
	// Diameter is cached.
	d1 := c.Diameter()
	if d2 := c.Diameter(); d1 != d2 {
		t.Fatal("diameter cache broken")
	}
}

func TestDensityImprovesOverTruss(t *testing.T) {
	// The whole point of CTC: peeled communities should be at least as
	// dense as the raw G0 (they remove peripheral free riders).
	s := paperSearcher()
	q := []int{0, 1, 2}
	trussOnly, _ := s.TrussOnly(q, nil)
	basic, _ := s.Basic(q, nil)
	if basic.Density() < trussOnly.Density() {
		t.Fatalf("Basic density %.3f < Truss density %.3f", basic.Density(), trussOnly.Density())
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// Sanity-check that Verify actually exercises VerifyCommunity: a
	// community claim at k higher than real must error.
	g := paperGraph()
	mu := graph.InducedMutable(graph.NewMutable(g, nil), []int{0, 1, 3, 4})
	if err := truss.VerifyCommunity(mu, 5, []int{0}); err == nil {
		t.Fatal("bogus trussness accepted")
	}
}
