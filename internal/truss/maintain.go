package truss

import (
	"repro/internal/graph"
)

// MaintainKTruss implements Algorithm 3 of the paper. It deletes the
// vertices vd (and their incident edges) from mu, then iteratively removes
// every edge whose support in the shrinking graph drops below k-2, updating
// the dense support table sup (indexed by mu's base edge IDs) in place.
// Finally it drops vertices left isolated.
//
// mu must be overlay-pure (all edges belong to its base graph); every
// subgraph the search algorithms feed here is. The cascade is allocation-
// light: the pending set is a bitset over base edge IDs and triangle
// enumeration merge-scans the base CSR, so the steady state does no hashing.
//
// It returns the vertices removed (vd plus cascade victims) and the base
// edge IDs of every edge deleted, so callers like Algorithm 1 can stamp an
// exact deletion timeline (edge-level: an intermediate graph is not induced,
// since the cascade can drop an edge while both endpoints survive).
func MaintainKTruss(mu *graph.Mutable, sup []int32, k int32, vd []int) (removedVerts []int, removedEdges []int32) {
	base := mu.Base()
	queue := make([]int32, 0, 16)
	inQueue := graph.NewBitset(base.M())
	// Seed the removal queue with all edges incident to vd.
	for _, v := range vd {
		if !mu.Present(v) {
			continue
		}
		mu.ForEachIncidentEdge(v, func(e int32, _ int) {
			if !inQueue.Get(e) {
				inQueue.Set(e)
				queue = append(queue, e)
			}
		})
	}
	removedEdges = cascade(mu, sup, k, queue, inQueue)
	// Line 10: remove isolated vertices. Vertices of vd are isolated by now.
	removedVerts = make([]int, 0, len(vd))
	for v := 0; v < mu.NumIDs(); v++ {
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removedVerts = append(removedVerts, v)
		}
	}
	return removedVerts, removedEdges
}

// cascade drains the queue of doomed edges: removing an edge decrements the
// support of the other two edges of each triangle it participated in; any
// edge falling below k-2 joins the queue (lines 4-9 of Algorithm 3).
func cascade(mu *graph.Mutable, sup []int32, k int32, queue []int32, inQueue graph.Bitset) []int32 {
	var removed []int32
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		if !mu.EdgeAlive(e) {
			continue
		}
		u, v := mu.Base().EdgeEndpoints(e)
		mu.CommonNeighborsEdges(u, v, func(_, euw, evw int32) {
			if !inQueue.Get(euw) {
				sup[euw]--
				if sup[euw] < k-2 {
					inQueue.Set(euw)
					queue = append(queue, euw)
				}
			}
			if !inQueue.Get(evw) {
				sup[evw]--
				if sup[evw] < k-2 {
					inQueue.Set(evw)
					queue = append(queue, evw)
				}
			}
		})
		mu.DeleteEdgeByID(e)
		sup[e] = 0
		removed = append(removed, e)
	}
	return removed
}

// DropBelowSupport removes every edge of mu whose support is below k-2,
// cascading, without deleting any seed vertices. Used to restore the k-truss
// property after arbitrary edge deletions. sup must be the current dense
// support table (indexed by mu's base edge IDs) and is updated in place.
// Isolated vertices are removed; returns them.
func DropBelowSupport(mu *graph.Mutable, sup []int32, k int32) []int {
	base := mu.Base()
	queue := make([]int32, 0, 16)
	inQueue := graph.NewBitset(base.M())
	mu.ForEachLiveEdge(func(e int32, _, _ int) {
		if sup[e] < k-2 {
			inQueue.Set(e)
			queue = append(queue, e)
		}
	})
	cascade(mu, sup, k, queue, inQueue)
	removed := make([]int, 0)
	for v := 0; v < mu.NumIDs(); v++ {
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removed = append(removed, v)
		}
	}
	return removed
}
