package truss

import (
	"repro/internal/graph"
)

// MaintainKTruss implements Algorithm 3 of the paper. It deletes the
// vertices vd (and their incident edges) from mu, then iteratively removes
// every edge whose support in the shrinking graph drops below k-2, updating
// the dense support table sup (indexed by mu's base edge IDs) in place.
// Finally it drops vertices left isolated.
//
// mu must be overlay-pure (all edges belong to its base graph); every
// subgraph the search algorithms feed here is. The cascade is allocation-
// light: the pending set is a bitset over base edge IDs and triangle
// enumeration merge-scans the base CSR, so the steady state does no hashing.
//
// It returns the vertices removed (vd plus cascade victims) and the base
// edge IDs of every edge deleted, so callers like Algorithm 1 can stamp an
// exact deletion timeline (edge-level: an intermediate graph is not induced,
// since the cascade can drop an edge while both endpoints survive).
func MaintainKTruss(mu *graph.Mutable, sup []int32, k int32, vd []int) (removedVerts []int, removedEdges []int32) {
	return MaintainKTrussScratch(mu, sup, k, vd, new(MaintainScratch))
}

// MaintainScratch holds the reusable state of the maintenance cascade: the
// doomed-edge queue, its membership bitset (cleared by walking the queue, so
// reuse is O(touched)), and the result buffers. A zero MaintainScratch is
// ready to use; pooled query workspaces keep one per worker so steady-state
// peeling iterations allocate nothing.
type MaintainScratch struct {
	queue        []int32
	inQueue      graph.Bitset
	removedVerts []int
}

func (s *MaintainScratch) grow(m int) {
	if need := (m + 63) / 64; len(s.inQueue) < need {
		s.inQueue = make(graph.Bitset, need)
	}
}

// MaintainKTrussScratch is MaintainKTruss running on reusable scratch. The
// returned slices alias the scratch and are valid until its next use.
//
// Isolated-vertex detection inspects only the deletion candidates — vd and
// the endpoints of removed edges — rather than scanning every vertex, so a
// vertex that was already isolated on entry (which the search pipelines
// never produce: every subgraph they peel is an edge-connected component
// plus query vertices) is not reported.
func MaintainKTrussScratch(mu *graph.Mutable, sup []int32, k int32, vd []int, s *MaintainScratch) (removedVerts []int, removedEdges []int32) {
	if !mu.OverlayPure() {
		panic("truss: MaintainKTruss requires an overlay-pure Mutable")
	}
	base := mu.Base()
	s.grow(base.M())
	queue := s.queue[:0]
	// Seed the removal queue with all edges incident to vd, iterating the
	// base CSR directly (a closure here would be re-boxed every call — this
	// runs once per peeling iteration).
	for _, v := range vd {
		if !mu.Present(v) {
			continue
		}
		for _, e := range base.NeighborEdgeIDs(v) {
			if mu.EdgeAlive(e) && !s.inQueue.Get(e) {
				s.inQueue.Set(e)
				queue = append(queue, e)
			}
		}
	}
	removedEdges = cascade(mu, sup, k, queue, s.inQueue)
	s.queue = removedEdges // keep the grown backing array for reuse
	// Line 10: remove isolated vertices. Only vd and endpoints of removed
	// edges can have lost their last edge.
	removedVerts = s.removedVerts[:0]
	for _, v := range vd {
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removedVerts = append(removedVerts, v)
		}
	}
	for _, e := range removedEdges {
		u, v := base.EdgeEndpoints(e)
		if mu.Present(u) && mu.Degree(u) == 0 {
			mu.DeleteVertex(u)
			removedVerts = append(removedVerts, u)
		}
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removedVerts = append(removedVerts, v)
		}
	}
	s.removedVerts = removedVerts
	return removedVerts, removedEdges
}

// cascade drains the queue of doomed edges: removing an edge decrements the
// support of the other two edges of each triangle it participated in; any
// edge falling below k-2 joins the queue (lines 4-9 of Algorithm 3). It
// returns the removed edges compacted in place over the queue's storage
// (allocation-free apart from queue growth) and clears each drained edge's
// membership bit, leaving inQueue all-zero on return — safe because dead
// edges never reappear as triangle wings, so a cleared edge cannot be
// re-enqueued.
func cascade(mu *graph.Mutable, sup []int32, k int32, queue []int32, inQueue graph.Bitset) []int32 {
	w := 0
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		inQueue.Clear(e)
		if !mu.EdgeAlive(e) {
			continue
		}
		u, v := mu.Base().EdgeEndpoints(e)
		mu.CommonNeighborsEdges(u, v, func(_, euw, evw int32) {
			if !inQueue.Get(euw) {
				sup[euw]--
				if sup[euw] < k-2 {
					inQueue.Set(euw)
					queue = append(queue, euw)
				}
			}
			if !inQueue.Get(evw) {
				sup[evw]--
				if sup[evw] < k-2 {
					inQueue.Set(evw)
					queue = append(queue, evw)
				}
			}
		})
		mu.DeleteEdgeByID(e)
		sup[e] = 0
		queue[w] = e
		w++
	}
	return queue[:w]
}

// DropBelowSupport removes every edge of mu whose support is below k-2,
// cascading, without deleting any seed vertices. Used to restore the k-truss
// property after arbitrary edge deletions. sup must be the current dense
// support table (indexed by mu's base edge IDs) and is updated in place.
// Isolated vertices are removed; returns them.
func DropBelowSupport(mu *graph.Mutable, sup []int32, k int32) []int {
	base := mu.Base()
	queue := make([]int32, 0, 16)
	inQueue := graph.NewBitset(base.M())
	mu.ForEachLiveEdge(func(e int32, _, _ int) {
		if sup[e] < k-2 {
			inQueue.Set(e)
			queue = append(queue, e)
		}
	})
	cascade(mu, sup, k, queue, inQueue)
	removed := make([]int, 0)
	for v := 0; v < mu.NumIDs(); v++ {
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removed = append(removed, v)
		}
	}
	return removed
}
