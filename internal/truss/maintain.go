package truss

import (
	"repro/internal/graph"
)

// MaintainKTruss implements Algorithm 3 of the paper. It deletes the
// vertices vd (and their incident edges) from mu, then iteratively removes
// every edge whose support in the shrinking graph drops below k-2, updating
// the support table sup in place. Finally it drops vertices left isolated.
//
// It returns the vertices removed (vd plus cascade victims) and every edge
// deleted, so callers like Algorithm 1 can stamp an exact deletion timeline
// (edge-level: an intermediate graph is not induced, since the cascade can
// drop an edge while both endpoints survive).
func MaintainKTruss(mu *graph.Mutable, sup map[graph.EdgeKey]int32, k int32, vd []int) (removedVerts []int, removedEdges []graph.EdgeKey) {
	// Seed the removal queue with all edges incident to vd.
	queue := make([]graph.EdgeKey, 0, 16)
	inQueue := make(map[graph.EdgeKey]bool)
	for _, v := range vd {
		if !mu.Present(v) {
			continue
		}
		mu.ForEachNeighbor(v, func(w int) {
			e := graph.Key(v, w)
			if !inQueue[e] {
				inQueue[e] = true
				queue = append(queue, e)
			}
		})
	}
	// Cascade: removing an edge decrements the support of the other two
	// edges of each triangle it participated in; any edge falling below
	// k-2 joins the queue (lines 4-9 of Algorithm 3).
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		u, v := e.Endpoints()
		if !mu.HasEdge(u, v) {
			continue
		}
		mu.CommonNeighbors(u, v, func(w int) {
			for _, f := range [2]graph.EdgeKey{graph.Key(u, w), graph.Key(v, w)} {
				if inQueue[f] {
					continue
				}
				sup[f]--
				if sup[f] < k-2 {
					inQueue[f] = true
					queue = append(queue, f)
				}
			}
		})
		mu.DeleteEdge(u, v)
		delete(sup, e)
		removedEdges = append(removedEdges, e)
	}
	// Line 10: remove isolated vertices. Vertices of vd are isolated by now.
	removedVerts = make([]int, 0, len(vd))
	for v := 0; v < mu.NumIDs(); v++ {
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removedVerts = append(removedVerts, v)
		}
	}
	return removedVerts, removedEdges
}

// DropBelowSupport removes every edge of mu whose support is below k-2,
// cascading, without deleting any seed vertices. Used to restore the k-truss
// property after arbitrary edge deletions. sup must be the current support
// table and is updated in place. Isolated vertices are removed; returns them.
func DropBelowSupport(mu *graph.Mutable, sup map[graph.EdgeKey]int32, k int32) []int {
	queue := make([]graph.EdgeKey, 0, 16)
	inQueue := make(map[graph.EdgeKey]bool)
	for e, s := range sup {
		if s < k-2 {
			inQueue[e] = true
			queue = append(queue, e)
		}
	}
	for head := 0; head < len(queue); head++ {
		e := queue[head]
		u, v := e.Endpoints()
		if !mu.HasEdge(u, v) {
			continue
		}
		mu.CommonNeighbors(u, v, func(w int) {
			for _, f := range [2]graph.EdgeKey{graph.Key(u, w), graph.Key(v, w)} {
				if inQueue[f] {
					continue
				}
				sup[f]--
				if sup[f] < k-2 {
					inQueue[f] = true
					queue = append(queue, f)
				}
			}
		})
		mu.DeleteEdge(u, v)
		delete(sup, e)
	}
	removed := make([]int, 0)
	for v := 0; v < mu.NumIDs(); v++ {
		if mu.Present(v) && mu.Degree(v) == 0 {
			mu.DeleteVertex(v)
			removed = append(removed, v)
		}
	}
	return removed
}
