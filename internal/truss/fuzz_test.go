package truss

import (
	"slices"
	"testing"

	"repro/internal/graph"
)

// fuzzGraph decodes a byte string into an undirected simple graph: bytes are
// consumed pairwise as (u, v) over a 32-vertex ID space. Duplicates and
// self-loops are dropped by the Builder, so every input is valid.
func fuzzGraph(data []byte) *graph.Graph {
	b := graph.NewBuilder(32, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		b.AddEdge(int(data[i]&31), int(data[i+1]&31))
	}
	return b.Build()
}

// FuzzDecomposeParallel feeds random edge lists through the forced parallel
// peel at several worker counts and requires label equality with the serial
// bucket-queue peel (and, for small inputs, the public entry's fallback).
// Run with: go test -fuzz FuzzDecomposeParallel ./internal/truss/
func FuzzDecomposeParallel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{0, 1, 1, 2, 0, 2})                                     // triangle
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 0})                         // cycle
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6})                   // star
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3, 3, 4, 4, 5, 5, 3}) // K4 + tail triangle
	seed := make([]byte, 0, 2*8*7/2)
	for u := byte(0); u < 8; u++ { // K8
		for v := u + 1; v < 8; v++ {
			seed = append(seed, u, v)
		}
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		want := Decompose(g)
		for _, workers := range []int{1, 2, 4} {
			got := decomposeParallel(g, workers)
			if got.MaxTruss != want.MaxTruss || !slices.Equal(got.Truss, want.Truss) ||
				!slices.Equal(got.VertexTruss, want.VertexTruss) {
				t.Fatalf("parallel (w=%d) diverged from serial on %d-edge graph:\npar %v\nser %v",
					workers, g.M(), got.Truss, want.Truss)
			}
		}
		pub := DecomposeParallel(g)
		if !slices.Equal(pub.Truss, want.Truss) {
			t.Fatalf("public DecomposeParallel diverged on %d-edge graph", g.M())
		}
	})
}
