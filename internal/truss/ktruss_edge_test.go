package truss

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// Explicit edge-case coverage for the ktruss.go failure paths, which the
// algorithm tests only exercised implicitly on populated graphs.

func TestKTrussHelpersEmptyGraph(t *testing.T) {
	empty := graph.NewBuilder(0, 0).Build()
	d := Decompose(empty)
	if _, _, err := MaxConnectedKTruss(empty, d, []int{0}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("MaxConnectedKTruss(empty): %v, want ErrNoCommunity", err)
	}
	if _, _, err := MaxConnectedKTruss(empty, d, nil); err == nil {
		t.Fatal("MaxConnectedKTruss(empty, nil query) accepted")
	}
	if _, err := ConnectedKTruss(empty, d, 2, []int{0}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("ConnectedKTruss(empty): %v, want ErrNoCommunity", err)
	}
	mu := MaximalKTruss(empty, d, 2)
	if mu.M() != 0 {
		t.Fatalf("MaximalKTruss(empty) has %d edges", mu.M())
	}
	if k := SubgraphTrussness(mu); k != 0 {
		t.Fatalf("SubgraphTrussness(empty) = %d, want 0", k)
	}
	if !IsKTruss(mu, 5) {
		t.Fatal("the empty subgraph is vacuously a k-truss for every k")
	}
}

func TestKTrussHelpersLowK(t *testing.T) {
	// A triangle plus a pendant edge and an isolated vertex.
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	d := Decompose(g)
	// k < 2: every edge has trussness >= 2, so the maximal "k-truss" is the
	// whole graph and the connected search degenerates to components.
	for _, k := range []int32{0, 1} {
		mu, err := ConnectedKTruss(g, d, k, []int{0, 3})
		if err != nil {
			t.Fatalf("ConnectedKTruss k=%d: %v", k, err)
		}
		if mu.M() != g.M() {
			t.Fatalf("ConnectedKTruss k=%d: %d edges, want %d", k, mu.M(), g.M())
		}
	}
	// The isolated vertex 4 shares no component with vertex 0 at any k.
	if _, err := ConnectedKTruss(g, d, 2, []int{0, 4}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("isolated query vertex: %v, want ErrNoCommunity", err)
	}
	if _, _, err := MaxConnectedKTruss(g, d, []int{4}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("MaxConnectedKTruss(isolated): %v, want ErrNoCommunity", err)
	}
	// VerifyCommunity on a shell that never got its query vertex.
	shell := graph.NewMutableShell(g)
	if err := VerifyCommunity(shell, 2, []int{4}); err == nil {
		t.Fatal("VerifyCommunity accepted a community missing its query vertex")
	}
}
