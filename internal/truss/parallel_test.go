package truss

import (
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDecomposeParallelBasicShapes(t *testing.T) {
	for n := 3; n <= 9; n++ {
		d := decomposeParallel(completeGraph(n), 4)
		if d.MaxTruss != int32(n) {
			t.Fatalf("K%d: max truss %d, want %d", n, d.MaxTruss, n)
		}
		for e, k := range d.Truss {
			if k != int32(n) {
				t.Fatalf("K%d edge %d: τ = %d, want %d", n, e, k, n)
			}
		}
	}
	d := decomposeParallel(graph.NewBuilder(0, 0).Build(), 4)
	if d.MaxTruss != 0 || len(d.Truss) != 0 {
		t.Fatalf("empty graph: %+v", d)
	}
	assertSameLabels(t, "paper-fig1a", decomposeParallel(paperGraph(), 4), Decompose(paperGraph()))
}

// TestDecomposeParallelFallback pins the public entry point's gating: below
// ParallelThreshold (or at GOMAXPROCS 1) it must still produce the exact
// labels through the serial path.
func TestDecomposeParallelFallback(t *testing.T) {
	g := randomGraph(11, 30, 0.3)
	if g.M() >= ParallelThreshold {
		t.Fatalf("test graph unexpectedly above ParallelThreshold (%d edges)", g.M())
	}
	assertSameLabels(t, "fallback", DecomposeParallel(g), Decompose(g))
}

// TestDecomposeParallelRace is the -race workhorse: it pins GOMAXPROCS to at
// least 4 so the frontier workers genuinely interleave, then runs the forced
// parallel peel over triangle-rich graphs large enough for multi-block
// frontiers, cross-checking labels against the serial peel each time. Wired
// into the CI race step.
func TestDecomposeParallelRace(t *testing.T) {
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	for seed := uint64(0); seed < 3; seed++ {
		g, _ := gen.CommunityGraph(gen.CommunityParams{
			N: 1200, NumCommunities: 60, MinSize: 5, MaxSize: 28,
			Overlap: 0.35, PIntra: 0.5, BackgroundEdges: 700,
			Hubs: 3, HubDegree: 80, PlantedClique: 14, Seed: 0x4ACE + seed,
		})
		want := Decompose(g)
		for _, workers := range []int{4, 8} {
			got := decomposeParallel(g, workers)
			assertSameLabels(t, "race community", got, want)
		}
	}
}
