package truss

import (
	"slices"

	"repro/internal/graph"
)

// Incremental maintains the exact truss decomposition of a live graph under
// streaming edge updates, densely. It is the serving-path counterpart of the
// map-based Dynamic: the live graph is an edge-alive overlay of an immutable
// base graph, labels live in a flat []int32 indexed by base edge IDs, and
// both update cascades run over reusable queues and bitsets, so the steady
// state does no hashing and allocates only when a cascade outgrows its
// scratch.
//
// The algorithms are the incremental ones of Huang et al. (SIGMOD 2014),
// resting on the local characterization of trussness: the labels τ are the
// greatest pointwise fixed point of
//
//	τ(f) = max k such that f has >= k-2 triangles whose other two edges
//	       both carry labels >= k,
//
// so relaxing labels downward from any pointwise upper bound converges to
// the exact decomposition. A deletion leaves the old labels of the surviving
// edges as upper bounds and cascades only through edges that actually drop.
// An insertion can raise labels only within the same-level triangle closure
// of the new edge's triangles, each by at most one: those candidates are
// bumped, the new edge gets its support-based upper bound, and everything is
// relaxed back down — a localized re-decomposition of the affected shell.
//
// An Incremental is not safe for concurrent use; the serve.Manager confines
// one to its single writer goroutine and publishes immutable snapshots.
type Incremental struct {
	mu  *graph.Mutable
	tau []int32 // τ by base edge ID; 0 for dead edges

	// cascade scratch: the relax queue with its membership bitset, the
	// closure worklist with its membership bitset, and the sorted
	// triangle-minimum buffer of consistentLevel.
	queue     []int32
	inQueue   graph.Bitset
	closure   []int32
	inClosure graph.Bitset
	mins      []int32
}

// NewIncremental decomposes g (with the parallel level-synchronous peel on
// large graphs — this is the serving layer's cold-build and full-rebuild
// entry point) and wraps it for incremental maintenance, starting with every
// edge alive.
func NewIncremental(g *graph.Graph) *Incremental {
	d := DecomposeParallel(g)
	return ResumeIncremental(graph.NewMutable(g, nil), d.Truss)
}

// ResumeIncremental wraps an existing live state: mu must be overlay-pure
// and tau must hold the exact trussness of every live edge of mu, indexed by
// base edge IDs (entries of dead edges are ignored and overwritten). The
// caller hands over ownership of both.
func ResumeIncremental(mu *graph.Mutable, tau []int32) *Incremental {
	if !mu.OverlayPure() {
		panic("truss: ResumeIncremental requires an overlay-pure Mutable")
	}
	if len(tau) != mu.Base().M() {
		panic("truss: ResumeIncremental labels must cover the base edge-ID space")
	}
	m := mu.Base().M()
	return &Incremental{
		mu:        mu,
		tau:       tau,
		inQueue:   graph.NewBitset(m),
		inClosure: graph.NewBitset(m),
	}
}

// Graph exposes the live graph (treat as read-only).
func (inc *Incremental) Graph() *graph.Mutable { return inc.mu }

// EdgeTau returns τ of base edge e in the live graph, or 0 if e is dead.
func (inc *Incremental) EdgeTau(e int32) int32 {
	if !inc.mu.EdgeAlive(e) {
		return 0
	}
	return inc.tau[e]
}

// DeleteEdge removes (u, v), relaxing affected labels. Reports whether an
// edge was removed.
func (inc *Incremental) DeleteEdge(u, v int) bool {
	e := inc.mu.Base().EdgeID(u, v)
	if e < 0 {
		return false
	}
	return inc.DeleteEdgeByID(e)
}

// DeleteEdgeByID removes base edge e, relaxing affected labels. Reports
// whether the edge was alive.
func (inc *Incremental) DeleteEdgeByID(e int32) bool {
	if !inc.mu.EdgeAlive(e) {
		return false
	}
	u, v := inc.mu.Base().EdgeEndpoints(e)
	// The surviving wings of e's triangles lose a triangle each; their old
	// labels stay upper bounds. Seed them before the deletion hides the
	// triangles. A wing with τ > τ(e) never counted this triangle at its own
	// level (the triangle's level is capped by τ(e)), so it cannot drop —
	// skip it.
	te := inc.tau[e]
	queue := inc.queue[:0]
	inc.mu.CommonNeighborsEdges(u, v, func(_, euw, evw int32) {
		if inc.tau[euw] <= te && !inc.inQueue.Get(euw) {
			inc.inQueue.Set(euw)
			queue = append(queue, euw)
		}
		if inc.tau[evw] <= te && !inc.inQueue.Get(evw) {
			inc.inQueue.Set(evw)
			queue = append(queue, evw)
		}
	})
	inc.mu.DeleteEdgeByID(e)
	inc.tau[e] = 0
	inc.queue = queue
	inc.relaxDown()
	return true
}

// InsertEdge revives the base edge (u, v), raising affected labels. Reports
// whether the edge was newly added. Edges outside the base edge-ID space
// cannot be represented and report false; the serving layer buffers those
// and rebases.
func (inc *Incremental) InsertEdge(u, v int) bool {
	e := inc.mu.Base().EdgeID(u, v)
	if e < 0 {
		return false
	}
	return inc.InsertEdgeByID(e)
}

// InsertEdgeByID revives dead base edge e, re-decomposing the affected
// shell. Reports whether the edge was newly added.
func (inc *Incremental) InsertEdgeByID(e int32) bool {
	if e < 0 || int(e) >= inc.mu.Base().M() || inc.mu.EdgeAlive(e) {
		return false
	}
	inc.mu.AddEdgeByID(e)
	inc.tau[e] = 0 // stale label from a previous life; keeps e out of the closure
	u, v := inc.mu.Base().EdgeEndpoints(e)
	// Affected shell: the wings of e's new triangles, closed under
	// same-level triangle connectivity (a rise of f can enable a partner g
	// to rise only when τ(g) = τ(f), per the insertion theorem). Bump the
	// shell to its upper bound (+1), give e its support-based upper bound,
	// then relax everything back down.
	//
	// Prune: τ_new(e) <= support(e)+2, and an edge f can gain a counted
	// triangle only through one whose level exceeds τ(f) — every new
	// triangle contains e — so only edges with τ(f) < support(e)+2 can
	// rise. This keeps a low-support insert in a sparse region from
	// crawling the (potentially huge) same-level component. One triangle
	// enumeration collects the wings and the support; the prune filters in
	// place once ub is known.
	seeds := inc.closure[:0]
	inc.mu.CommonNeighborsEdges(u, v, func(_, euw, evw int32) {
		seeds = append(seeds, euw, evw)
	})
	ub := int32(len(seeds)/2) + 2
	kept := seeds[:0]
	for _, f := range seeds {
		if inc.tau[f] < ub {
			kept = append(kept, f)
		}
	}
	inc.closure = kept
	candidates := inc.sameLevelClosure(ub)
	queue := inc.queue[:0]
	for _, f := range candidates {
		inc.tau[f]++
		if !inc.inQueue.Get(f) {
			inc.inQueue.Set(f)
			queue = append(queue, f)
		}
	}
	inc.tau[e] = inc.consistentLevel(u, v, ub)
	if !inc.inQueue.Get(e) {
		inc.inQueue.Set(e)
		queue = append(queue, e)
	}
	inc.queue = queue
	inc.relaxDown()
	return true
}

// sameLevelClosure expands the seed edges currently stored in inc.closure
// through triangle adjacency restricted to partners with equal labels below
// ub (labels >= ub cannot rise, see InsertEdgeByID). The just-inserted edge
// carries the impossible label 0, so it can never join. The result aliases
// inc.closure and is valid until the next cascade.
func (inc *Incremental) sameLevelClosure(ub int32) []int32 {
	out := inc.closure[:0]
	for _, s := range inc.closure {
		if !inc.inClosure.Get(s) {
			inc.inClosure.Set(s)
			out = append(out, s)
		}
	}
	base := inc.mu.Base()
	for head := 0; head < len(out); head++ {
		f := out[head]
		level := inc.tau[f]
		fu, fv := base.EdgeEndpoints(f)
		inc.mu.CommonNeighborsEdges(fu, fv, func(_, e1, e2 int32) {
			if inc.tau[e1] == level && level < ub && !inc.inClosure.Get(e1) {
				inc.inClosure.Set(e1)
				out = append(out, e1)
			}
			if inc.tau[e2] == level && level < ub && !inc.inClosure.Get(e2) {
				inc.inClosure.Set(e2)
				out = append(out, e2)
			}
		})
	}
	for _, f := range out {
		inc.inClosure.Clear(f)
	}
	inc.closure = out
	return out
}

// consistentLevel returns the largest k <= cap such that the live edge
// (u, v) has at least k-2 triangles whose other two edges both carry labels
// >= k (and k >= 2).
func (inc *Incremental) consistentLevel(u, v int, cap int32) int32 {
	mins := inc.mins[:0]
	inc.mu.CommonNeighborsEdges(u, v, func(_, euw, evw int32) {
		a := inc.tau[euw]
		if b := inc.tau[evw]; b < a {
			a = b
		}
		mins = append(mins, a)
	})
	inc.mins = mins
	// Level k needs the (k-2)-largest min to be >= k. Sort ascending with
	// the allocation-free slices.Sort (this runs for every queue entry of
	// every cascade — no reflection-based sort.Slice here) and index the
	// descending rank i as mins[len-1-i].
	slices.Sort(mins)
	n := int32(len(mins))
	hi := n + 2
	if hi > cap {
		hi = cap
	}
	for k := hi; k > 2; k-- {
		if mins[n-k+2] >= k {
			return k
		}
	}
	return 2
}

// relaxDown drains inc.queue, lowering any label that violates local
// consistency and enqueueing the triangle partners that might have counted
// the dropped edge. Labels only decrease, so this terminates at the exact
// decomposition provided the starting labels are pointwise upper bounds.
func (inc *Incremental) relaxDown() {
	base := inc.mu.Base()
	queue := inc.queue
	for head := 0; head < len(queue); head++ {
		f := queue[head]
		inc.inQueue.Clear(f)
		if !inc.mu.EdgeAlive(f) {
			continue
		}
		old := inc.tau[f]
		u, v := base.EdgeEndpoints(f)
		h := inc.consistentLevel(u, v, old)
		if h >= old {
			continue
		}
		inc.tau[f] = h
		// Partners with labels in (h, old] may have counted f at their
		// level; recheck them.
		inc.mu.CommonNeighborsEdges(u, v, func(_, e1, e2 int32) {
			if t := inc.tau[e1]; t > h && t <= old && !inc.inQueue.Get(e1) {
				inc.inQueue.Set(e1)
				queue = append(queue, e1)
			}
			if t := inc.tau[e2]; t > h && t <= old && !inc.inQueue.Get(e2) {
				inc.inQueue.Set(e2)
				queue = append(queue, e2)
			}
		})
	}
	inc.queue = queue[:0]
}

// Snapshot freezes the live graph into an immutable Graph and returns its
// decomposition. The returned arrays are freshly allocated — the caller may
// hand them to a trussindex build while the Incremental keeps mutating.
// When the live graph still equals its base (nothing dead), the base is
// reused directly and only the labels are copied.
func (inc *Incremental) Snapshot() *Decomposition {
	base := inc.mu.Base()
	if inc.mu.M() == base.M() {
		d := &Decomposition{
			G:           base,
			Truss:       append([]int32(nil), inc.tau...),
			VertexTruss: make([]int32, base.N()),
		}
		d.finishVertexTruss()
		return d
	}
	g := inc.mu.Freeze()
	d := &Decomposition{
		G:           g,
		Truss:       make([]int32, g.M()),
		VertexTruss: make([]int32, g.N()),
	}
	for e := int32(0); e < int32(g.M()); e++ {
		u, v := g.EdgeEndpoints(e)
		d.Truss[e] = inc.tau[base.EdgeID(u, v)]
	}
	d.finishVertexTruss()
	return d
}
