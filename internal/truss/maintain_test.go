package truss

import (
	"testing"

	"repro/internal/graph"
)

func TestMaintainPaperExample4(t *testing.T) {
	// Example 4: on G0 (the grey 4-truss), deleting p1 forces p2, p3 out as
	// well to restore the 4-truss property, yielding Figure 1(b).
	g := paperGraph()
	d := Decompose(g)
	mu, k, err := MaxConnectedKTruss(g, d, []int{0, 1, 2})
	if err != nil || k != 4 {
		t.Fatalf("setup failed: k=%d err=%v", k, err)
	}
	sup := graph.MutableEdgeSupports(mu)
	removed, _ := MaintainKTruss(mu, sup, 4, []int{8}) // delete p1
	gotRemoved := map[int]bool{}
	for _, v := range removed {
		gotRemoved[v] = true
	}
	if !gotRemoved[8] || !gotRemoved[9] || !gotRemoved[10] {
		t.Fatalf("removed = %v, want {8,9,10} (p1,p2,p3)", removed)
	}
	if mu.N() != 8 {
		t.Fatalf("remaining N = %d, want 8", mu.N())
	}
	if err := VerifyCommunity(mu, 4, []int{0, 1, 2}); err != nil {
		t.Fatalf("result is not a valid 4-truss community: %v", err)
	}
	dm, ok := graph.Diameter(mu)
	if !ok || dm != 3 {
		t.Fatalf("diameter = %d, want 3 (Figure 1(b))", dm)
	}
}

func TestMaintainSupportsStayCorrect(t *testing.T) {
	// After maintenance, the sup table must match recomputed supports.
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(seed, 24, 0.35)
		d := Decompose(g)
		if d.MaxTruss < 4 {
			continue
		}
		mu := MaximalKTruss(g, d, 4)
		if mu.M() == 0 {
			continue
		}
		sup := graph.MutableEdgeSupports(mu)
		vs := mu.Vertices()
		MaintainKTruss(mu, sup, 4, []int{vs[0]})
		want := graph.MutableEdgeSupports(mu)
		if len(sup) != len(want) {
			t.Fatalf("seed %d: support table has %d entries, want %d", seed, len(sup), len(want))
		}
		for e, s := range want {
			if sup[e] != s {
				t.Fatalf("seed %d: sup%s = %d, want %d", seed, mu.Base().EdgeKeyOf(int32(e)), sup[e], s)
			}
		}
		if !IsKTruss(mu, 4) {
			t.Fatalf("seed %d: maintenance left a non-4-truss", seed)
		}
	}
}

func TestMaintainDeleteAbsentVertex(t *testing.T) {
	g := completeGraph(5)
	mu := graph.NewMutable(g, nil)
	sup := graph.MutableEdgeSupports(mu)
	removed, _ := MaintainKTruss(mu, sup, 5, []int{99}) // out of range is impossible here; use absent
	_ = removed
	if mu.M() != 10 {
		t.Fatal("deleting nothing must not change the graph")
	}
	mu2 := graph.NewMutable(g, nil)
	mu2.DeleteVertex(4)
	sup2 := graph.MutableEdgeSupports(mu2)
	MaintainKTruss(mu2, sup2, 5, []int{4}) // already gone
	if mu2.M() != 6 {
		t.Fatalf("M = %d, want 6 (K4 left after earlier deletion)", mu2.M())
	}
}

func TestMaintainFullCollapse(t *testing.T) {
	// Deleting any vertex of K4 at k=4 collapses everything: remaining
	// triangle edges have support 1 < k-2.
	g := completeGraph(4)
	mu := graph.NewMutable(g, nil)
	sup := graph.MutableEdgeSupports(mu)
	removed, _ := MaintainKTruss(mu, sup, 4, []int{0})
	if mu.M() != 0 || mu.N() != 0 {
		t.Fatalf("expected total collapse, got N=%d M=%d", mu.N(), mu.M())
	}
	if len(removed) != 4 {
		t.Fatalf("removed %d vertices, want 4", len(removed))
	}
	for e, s := range sup {
		if s != 0 {
			t.Fatalf("support entry %d should be zeroed after collapse, has %d", e, s)
		}
	}
}

func TestMaintainBatchDeletion(t *testing.T) {
	// Bulk deletion of several vertices at once (Algorithm 4's mode).
	g := paperGraph()
	d := Decompose(g)
	mu, _, _ := MaxConnectedKTruss(g, d, []int{0, 1, 2})
	sup := graph.MutableEdgeSupports(mu)
	MaintainKTruss(mu, sup, 4, []int{8, 9, 10}) // all of p1,p2,p3 in one batch
	if mu.N() != 8 {
		t.Fatalf("N = %d, want 8", mu.N())
	}
	if !IsKTruss(mu, 4) {
		t.Fatal("not a 4-truss after batch deletion")
	}
}

func TestDropBelowSupport(t *testing.T) {
	// K5 with one edge removed: the two non-adjacent... construct K5 and
	// delete edge (0,1); edges (0,x),(1,x) now have support 2, the rest 3.
	g := completeGraph(5)
	mu := graph.NewMutable(g, nil)
	mu.DeleteEdge(0, 1)
	sup := graph.MutableEdgeSupports(mu)
	// Require a 5-truss (support >= 3): peels everything touching 0 or 1,
	// leaving K3 on {2,3,4}? K3 edges have support 1 < 3 → total collapse.
	cp := mu.Clone()
	supCp := append([]int32(nil), sup...)
	DropBelowSupport(cp, supCp, 5)
	if cp.M() != 0 {
		t.Fatalf("5-truss of K5-minus-edge should be empty, M=%d", cp.M())
	}
	// Require a 4-truss (support >= 2): the whole K5-minus-edge qualifies.
	DropBelowSupport(mu, sup, 4)
	if mu.M() != 9 {
		t.Fatalf("4-truss should keep all 9 edges, M=%d", mu.M())
	}
}
