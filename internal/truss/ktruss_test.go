package truss

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestMaximalKTruss(t *testing.T) {
	g := paperGraph()
	d := Decompose(g)
	mu := MaximalKTruss(g, d, 4)
	// The 4-truss region is everything except t and its pendant edges:
	// 23 edges, 11 vertices.
	if mu.M() != 23 {
		t.Fatalf("4-truss edges = %d, want 23", mu.M())
	}
	if mu.Present(11) {
		t.Fatal("t must not be in the 4-truss")
	}
	if !IsKTruss(mu, 4) {
		t.Fatal("maximal 4-truss fails the k-truss predicate")
	}
	// Level 2 returns everything.
	if MaximalKTruss(g, d, 2).M() != g.M() {
		t.Fatal("2-truss should contain all edges")
	}
}

func TestConnectedKTrussQueryComponents(t *testing.T) {
	// Two disjoint 4-cliques.
	b := graph.NewBuilder(8, 0)
	for _, off := range []int{0, 4} {
		for u := 0; u < 4; u++ {
			for v := u + 1; v < 4; v++ {
				b.AddEdge(off+u, off+v)
			}
		}
	}
	b.AddEdge(3, 4) // bridge edge, trussness 2
	g := b.Build()
	d := Decompose(g)
	// Query inside one clique: fine at k=4.
	mu, err := ConnectedKTruss(g, d, 4, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mu.N() != 4 || mu.M() != 6 {
		t.Fatalf("component: N=%d M=%d, want 4 6", mu.N(), mu.M())
	}
	// Query spanning both cliques: no 4-truss connects them.
	if _, err := ConnectedKTruss(g, d, 4, []int{0, 5}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("want ErrNoCommunity, got %v", err)
	}
	// But the bridge makes them a single connected 2-truss.
	mu2, err := ConnectedKTruss(g, d, 2, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if mu2.N() != 8 {
		t.Fatalf("2-truss component N=%d, want 8", mu2.N())
	}
}

func TestMaxConnectedKTruss(t *testing.T) {
	g := paperGraph()
	d := Decompose(g)
	// Q = {q1,q2,q3}: the maximal connected 4-truss is the grey region.
	mu, k, err := MaxConnectedKTruss(g, d, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	if mu.N() != 11 || mu.Present(11) {
		t.Fatalf("G0 has %d nodes (t present: %v), want 11 without t", mu.N(), mu.Present(11))
	}
	// Q = {v4,q3,p1} (paper §1): the old triangle-connected model fails, but
	// a connected k-truss still exists here; the largest is k=4 (all three in
	// the grey 4-truss region).
	_, k2, err := MaxConnectedKTruss(g, d, []int{6, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if k2 != 4 {
		t.Fatalf("k = %d, want 4", k2)
	}
	// Query containing t only reaches k=2.
	_, k3, err := MaxConnectedKTruss(g, d, []int{11, 0})
	if err != nil {
		t.Fatal(err)
	}
	if k3 != 2 {
		t.Fatalf("k = %d, want 2", k3)
	}
}

func TestMaxConnectedKTrussNoCommunity(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	d := Decompose(g)
	if _, _, err := MaxConnectedKTruss(g, d, []int{0, 2}); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("want ErrNoCommunity, got %v", err)
	}
	if _, _, err := MaxConnectedKTruss(g, d, nil); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestSubgraphTrussness(t *testing.T) {
	g := paperGraph()
	// Triangle q2,v2,q1: each edge in exactly one triangle → τ(H)=3 (paper §2).
	tri := graph.InducedMutable(graph.NewMutable(g, nil), []int{0, 1, 4})
	if got := SubgraphTrussness(tri); got != 3 {
		t.Fatalf("triangle trussness = %d, want 3", got)
	}
	// The 4-clique induced on q1,q2,v1,v2 has trussness 4.
	cl := graph.InducedMutable(graph.NewMutable(g, nil), []int{0, 1, 3, 4})
	if got := SubgraphTrussness(cl); got != 4 {
		t.Fatalf("clique trussness = %d, want 4", got)
	}
	if SubgraphTrussness(graph.NewMutableFromEdges(3, nil)) != 0 {
		t.Fatal("edgeless trussness must be 0")
	}
}

func TestVerifyCommunity(t *testing.T) {
	g := paperGraph()
	d := Decompose(g)
	mu, _, _ := MaxConnectedKTruss(g, d, []int{0, 1, 2})
	if err := VerifyCommunity(mu, 4, []int{0, 1, 2}); err != nil {
		t.Fatalf("valid community rejected: %v", err)
	}
	if err := VerifyCommunity(mu, 5, []int{0, 1, 2}); err == nil {
		t.Fatal("5-truss claim must fail")
	}
	if err := VerifyCommunity(mu, 4, []int{11}); err == nil {
		t.Fatal("missing query vertex must fail")
	}
	disc := graph.NewMutableFromEdges(4, []graph.EdgeKey{graph.Key(0, 1), graph.Key(2, 3)})
	if err := VerifyCommunity(disc, 2, []int{0}); err == nil {
		t.Fatal("disconnected community must fail")
	}
}

func TestKEdgeConnectivityProperty(t *testing.T) {
	// §3.1: a k-truss community is (k-1)-edge-connected; removing any single
	// edge from a 4-truss must leave it connected (4-truss ⇒ 3-edge-conn).
	g := paperGraph()
	d := Decompose(g)
	mu, k, err := MaxConnectedKTruss(g, d, []int{0, 1, 2})
	if err != nil || k != 4 {
		t.Fatalf("setup: k=%d err=%v", k, err)
	}
	for _, e := range mu.EdgeKeys() {
		u, v := e.Endpoints()
		cp := mu.Clone()
		cp.DeleteEdge(u, v)
		if !graph.IsConnected(cp) {
			t.Fatalf("removing single edge %s disconnected a 4-truss", e)
		}
	}
}

func TestDiameterBoundOfKTruss(t *testing.T) {
	// §3.1: diam of a connected k-truss with n vertices <= floor((2n-2)/k).
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(seed, 24, 0.4)
		d := Decompose(g)
		for k := int32(3); k <= d.MaxTruss; k++ {
			mu := MaximalKTruss(g, d, k)
			if mu.M() == 0 {
				continue
			}
			// Check per component.
			seen := map[int]bool{}
			for _, v := range mu.Vertices() {
				if seen[v] {
					continue
				}
				comp := graph.Component(mu, v)
				for _, c := range comp {
					seen[c] = true
				}
				sub := graph.InducedMutable(mu, comp)
				diam, ok := graph.Diameter(sub)
				if !ok {
					t.Fatal("component not connected")
				}
				bound := (2*len(comp) - 2) / int(k)
				if diam > bound {
					t.Fatalf("seed %d k=%d: diam %d > bound %d (n=%d)", seed, k, diam, bound, len(comp))
				}
			}
		}
	}
}
