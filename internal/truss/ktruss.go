package truss

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrNoCommunity is returned when no connected k-truss containing the query
// vertices exists for any k >= 2.
var ErrNoCommunity = errors.New("truss: no connected k-truss contains the query vertices")

// MaximalKTruss returns a Mutable holding the maximal (not necessarily
// connected) k-truss subgraph of g: the union of all edges with trussness
// >= k. When d was computed over g itself the result is a zero-copy edge
// bitset overlay of g; otherwise the edge list is rebuilt.
func MaximalKTruss(g *graph.Graph, d *Decomposition, k int32) *graph.Mutable {
	if d.G == g || d.G.N() == g.N() {
		return d.MutableAtLeast(k)
	}
	return graph.NewMutableFromEdges(g.N(), d.EdgesAtLeast(k))
}

// ConnectedKTruss extracts the connected component of the maximal k-truss of
// g that contains all query vertices. It returns ErrNoCommunity if the query
// vertices do not share a component at level k.
func ConnectedKTruss(g *graph.Graph, d *Decomposition, k int32, q []int) (*graph.Mutable, error) {
	if len(q) == 0 {
		return nil, errors.New("truss: empty query")
	}
	mu := MaximalKTruss(g, d, k)
	if !graph.Connected(mu, q) {
		return nil, fmt.Errorf("%w (k=%d)", ErrNoCommunity, k)
	}
	comp := graph.Component(mu, q[0])
	return graph.InducedMutable(mu, comp), nil
}

// MaxConnectedKTruss finds the largest k for which a connected k-truss
// containing Q exists, and returns that subgraph together with k. This is
// the reference (index-free) implementation of FindG0 used to validate the
// truss-index version; it binary-searches down from the Lemma-1 bound.
func MaxConnectedKTruss(g *graph.Graph, d *Decomposition, q []int) (*graph.Mutable, int32, error) {
	if len(q) == 0 {
		return nil, 0, errors.New("truss: empty query")
	}
	hi := d.QueryUpperBound(q)
	for k := hi; k >= 2; k-- {
		mu, err := ConnectedKTruss(g, d, k, q)
		if err == nil {
			return mu, k, nil
		}
	}
	return nil, 0, ErrNoCommunity
}

// SubgraphTrussness returns τ(H) = 2 + min edge support of the current state
// of mu (Definition 2), or 0 if mu has no edges.
func SubgraphTrussness(mu *graph.Mutable) int32 {
	if mu.M() == 0 {
		return 0
	}
	min := int32(-1)
	for v := 0; v < mu.NumIDs(); v++ {
		if !mu.Present(v) {
			continue
		}
		mu.ForEachNeighbor(v, func(w int) {
			if w <= v {
				return
			}
			s := int32(mu.CountCommonNeighbors(v, w))
			if min < 0 || s < min {
				min = s
			}
		})
	}
	return min + 2
}

// IsKTruss reports whether every edge of mu has support >= k-2.
func IsKTruss(mu *graph.Mutable, k int32) bool {
	if mu.M() == 0 {
		return true
	}
	return SubgraphTrussness(mu) >= k
}

// VerifyCommunity checks the two CTC conditions for a candidate community:
// it must be a connected k-truss containing all of q. It returns a
// descriptive error on violation; nil means valid.
func VerifyCommunity(mu *graph.Mutable, k int32, q []int) error {
	for _, v := range q {
		if !mu.Present(v) {
			return fmt.Errorf("truss: query vertex %d missing from community", v)
		}
	}
	if !graph.IsConnected(mu) {
		return errors.New("truss: community is not connected")
	}
	if !IsKTruss(mu, k) {
		return fmt.Errorf("truss: community is not a %d-truss (trussness %d)", k, SubgraphTrussness(mu))
	}
	return nil
}
