package truss

import (
	"sort"

	"repro/internal/graph"
)

// Dynamic maintains a truss decomposition under edge insertions and
// deletions, following the incremental algorithms of Huang et al. (SIGMOD
// 2014), the same-author system whose simple truss index this paper reuses.
//
// It relies on the local characterization of trussness: the labels τ are
// the greatest pointwise fixed point of
//
//	τ(f) = max k such that f has >= k-2 triangles whose other two edges
//	       both carry labels >= k,
//
// so converging labels downward from any pointwise upper bound by
// asynchronous relaxation yields the exact decomposition. Deletions leave
// old labels as upper bounds and cascade only through edges that actually
// drop (each by at most one level). Insertions can raise labels by at most
// one, and only within the set of edges triangle-connected to the new edge
// through same-level chains; those candidates are bumped by one and then
// relaxed back down. Every update is property-tested against full
// recomputation.
type Dynamic struct {
	mu    *graph.Mutable
	truss map[graph.EdgeKey]int32
}

// NewDynamic builds a dynamic decomposition from an initial graph (a cold
// build: the parallel peel on large graphs).
func NewDynamic(g *graph.Graph) *Dynamic {
	d := DecomposeParallel(g)
	return &Dynamic{
		mu:    graph.NewMutable(g, nil),
		truss: d.EdgeTrussMap(),
	}
}

// Graph exposes the current graph (treat as read-only).
func (dy *Dynamic) Graph() *graph.Mutable { return dy.mu }

// EdgeTruss returns τ(u,v) in the current graph (0 if absent).
func (dy *Dynamic) EdgeTruss(u, v int) int32 { return dy.truss[graph.Key(u, v)] }

// Snapshot converts the current state into a Decomposition: the live graph
// is frozen (giving it a dense edge-ID space) and the tracked labels are
// scattered into the dense trussness array.
func (dy *Dynamic) Snapshot() *Decomposition {
	g := dy.mu.Freeze()
	d := &Decomposition{
		G:           g,
		Truss:       make([]int32, g.M()),
		VertexTruss: make([]int32, dy.mu.NumIDs()),
	}
	for e, k := range dy.truss {
		u, v := e.Endpoints()
		d.Truss[g.EdgeID(u, v)] = k
		if k > d.VertexTruss[u] {
			d.VertexTruss[u] = k
		}
		if k > d.VertexTruss[v] {
			d.VertexTruss[v] = k
		}
		if k > d.MaxTruss {
			d.MaxTruss = k
		}
	}
	return d
}

// consistentLevel returns the largest k <= cap such that f has at least
// k-2 triangles whose other two edges both have labels >= k (and k >= 2).
func (dy *Dynamic) consistentLevel(f graph.EdgeKey, cap int32) int32 {
	u, v := f.Endpoints()
	var mins []int32
	dy.mu.CommonNeighbors(u, v, func(w int) {
		a := dy.truss[graph.Key(u, w)]
		b := dy.truss[graph.Key(v, w)]
		if b < a {
			a = b
		}
		mins = append(mins, a)
	})
	// Sort descending; level k needs mins[k-3] >= k (1-indexed: k-2 wings).
	sort.Slice(mins, func(i, j int) bool { return mins[i] > mins[j] })
	hi := int32(len(mins)) + 2
	if hi > cap {
		hi = cap
	}
	for k := hi; k > 2; k-- {
		if mins[k-3] >= k {
			return k
		}
	}
	return 2
}

// relaxDown drains the queue, lowering any label that violates local
// consistency and enqueueing the triangle partners that might have counted
// the dropped edge. Labels only decrease, so this terminates at the exact
// decomposition provided the starting labels are pointwise upper bounds.
func (dy *Dynamic) relaxDown(queue []graph.EdgeKey) {
	inQueue := make(map[graph.EdgeKey]bool, len(queue))
	for _, e := range queue {
		inQueue[e] = true
	}
	for head := 0; head < len(queue); head++ {
		f := queue[head]
		inQueue[f] = false
		u, v := f.Endpoints()
		if !dy.mu.HasEdge(u, v) {
			continue
		}
		old := dy.truss[f]
		h := dy.consistentLevel(f, old)
		if h >= old {
			continue
		}
		dy.truss[f] = h
		// Partners with labels in (h, old] may have counted f at their
		// level; recheck them.
		dy.mu.CommonNeighbors(u, v, func(w int) {
			for _, g := range [2]graph.EdgeKey{graph.Key(u, w), graph.Key(v, w)} {
				if t := dy.truss[g]; t > h && t <= old && !inQueue[g] {
					inQueue[g] = true
					queue = append(queue, g)
				}
			}
		})
	}
}

// InsertEdge adds (u, v) and updates the trussness of all affected edges.
// Reports whether the edge was new.
func (dy *Dynamic) InsertEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= dy.mu.NumIDs() || v >= dy.mu.NumIDs() {
		return false
	}
	if !dy.mu.AddEdge(u, v) {
		return false
	}
	e := graph.Key(u, v)
	// Candidate set: edges in triangles with e, closed under same-level
	// triangle connectivity (a rise of f can enable a partner g to rise
	// only when τ(g) = τ(f), per the insertion theorem of Huang et al.).
	seeds := make([]graph.EdgeKey, 0, 8)
	dy.mu.CommonNeighbors(u, v, func(w int) {
		seeds = append(seeds, graph.Key(u, w), graph.Key(v, w))
	})
	candidates := dy.sameLevelClosure(seeds)
	// Bump candidates to their upper bounds (+1), give e its support-based
	// upper bound, then relax everything back down.
	queue := make([]graph.EdgeKey, 0, len(candidates)+1)
	for _, f := range candidates {
		dy.truss[f]++
		queue = append(queue, f)
	}
	dy.truss[e] = dy.consistentLevel(e, int32(2+dy.mu.CountCommonNeighbors(u, v)))
	queue = append(queue, e)
	dy.relaxDown(queue)
	return true
}

// sameLevelClosure expands the seed edges through triangle adjacency
// restricted to partners with equal labels.
func (dy *Dynamic) sameLevelClosure(seeds []graph.EdgeKey) []graph.EdgeKey {
	seen := make(map[graph.EdgeKey]bool, len(seeds))
	var out []graph.EdgeKey
	var queue []graph.EdgeKey
	push := func(f graph.EdgeKey) {
		if seen[f] {
			return
		}
		fu, fv := f.Endpoints()
		if !dy.mu.HasEdge(fu, fv) {
			return
		}
		seen[f] = true
		out = append(out, f)
		queue = append(queue, f)
	}
	for _, s := range seeds {
		push(s)
	}
	for head := 0; head < len(queue); head++ {
		f := queue[head]
		level := dy.truss[f]
		fu, fv := f.Endpoints()
		dy.mu.CommonNeighbors(fu, fv, func(w int) {
			for _, g := range [2]graph.EdgeKey{graph.Key(fu, w), graph.Key(fv, w)} {
				if dy.truss[g] == level {
					push(g)
				}
			}
		})
	}
	return out
}

// DeleteEdge removes (u, v) and updates the trussness of all affected
// edges. Reports whether an edge was removed.
func (dy *Dynamic) DeleteEdge(u, v int) bool {
	e := graph.Key(u, v)
	if _, ok := dy.truss[e]; !ok {
		return false
	}
	// Partners of e's triangles lose a wing; old labels stay upper bounds.
	var queue []graph.EdgeKey
	dy.mu.CommonNeighbors(u, v, func(w int) {
		queue = append(queue, graph.Key(u, w), graph.Key(v, w))
	})
	if !dy.mu.DeleteEdge(u, v) {
		return false
	}
	delete(dy.truss, e)
	dy.relaxDown(queue)
	return true
}

// DeleteVertex removes v with all incident edges, updating trussness.
func (dy *Dynamic) DeleteVertex(v int) {
	if v < 0 || v >= dy.mu.NumIDs() || !dy.mu.Present(v) {
		return
	}
	var nbrs []int
	dy.mu.ForEachNeighbor(v, func(u int) { nbrs = append(nbrs, u) })
	for _, u := range nbrs {
		dy.DeleteEdge(v, u)
	}
	dy.mu.DeleteVertex(v)
}
