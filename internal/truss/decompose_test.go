package truss

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// paperGraph reproduces Figure 1(a); see graph package tests for the layout.
// q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7 p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	return graph.FromEdges(12, edges)
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// referenceTrussness computes τ(e) for every edge by the definition:
// iteratively remove edges of minimum support; τ(e) = level when removed.
// This is an independent (slow, obviously-correct) oracle.
func referenceTrussness(g *graph.Graph) map[graph.EdgeKey]int32 {
	mu := graph.NewMutable(g, nil)
	out := make(map[graph.EdgeKey]int32, g.M())
	k := int32(2)
	for mu.M() > 0 {
		// Remove all edges with support <= k-2 until none remain.
		for {
			var victims []graph.EdgeKey
			for v := 0; v < mu.NumIDs(); v++ {
				if !mu.Present(v) {
					continue
				}
				mu.ForEachNeighbor(v, func(w int) {
					if w > v && int32(mu.CountCommonNeighbors(v, w)) <= k-2 {
						victims = append(victims, graph.Key(v, w))
					}
				})
			}
			if len(victims) == 0 {
				break
			}
			for _, e := range victims {
				u, v := e.Endpoints()
				if mu.HasEdge(u, v) {
					out[e] = k
					mu.DeleteEdge(u, v)
				}
			}
		}
		k++
	}
	return out
}

func TestDecomposeClique(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := completeGraph(n)
		d := Decompose(g)
		if d.MaxTruss != int32(n) {
			t.Fatalf("K%d max truss = %d, want %d", n, d.MaxTruss, n)
		}
		for e, k := range d.Truss {
			if k != int32(n) {
				t.Fatalf("K%d: τ%s = %d, want %d", n, g.EdgeKeyOf(int32(e)), k, n)
			}
		}
	}
}

func TestDecomposePath(t *testing.T) {
	b := graph.NewBuilder(5, 4)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	d := Decompose(g)
	if d.MaxTruss != 2 {
		t.Fatalf("path max truss = %d, want 2", d.MaxTruss)
	}
	for e, k := range d.Truss {
		if k != 2 {
			t.Fatalf("τ%s = %d, want 2", g.EdgeKeyOf(int32(e)), k)
		}
	}
}

func TestDecomposeEmpty(t *testing.T) {
	d := Decompose(graph.NewBuilder(0, 0).Build())
	if d.MaxTruss != 0 || len(d.Truss) != 0 {
		t.Fatalf("empty decomposition: %+v", d)
	}
}

func TestDecomposePaperExample(t *testing.T) {
	// Paper §2: τ(e(q2,v2)) = 4 even though sup = 3; τ(q2) = 4; τ̄(∅) = 4;
	// the pendant edges through t have trussness 2.
	g := paperGraph()
	d := Decompose(g)
	if got := d.EdgeTrussOf(1, 4); got != 4 {
		t.Fatalf("τ(q2,v2) = %d, want 4", got)
	}
	if d.VertexTruss[1] != 4 {
		t.Fatalf("τ(q2) = %d, want 4", d.VertexTruss[1])
	}
	if d.MaxTruss != 4 {
		t.Fatalf("τ̄(∅) = %d, want 4", d.MaxTruss)
	}
	if d.EdgeTrussOf(0, 11) != 2 || d.EdgeTrussOf(2, 11) != 2 {
		t.Fatal("pendant edges should have trussness 2")
	}
}

func TestDecomposeMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed, 22, 0.3)
		want := referenceTrussness(g)
		got := Decompose(g).EdgeTrussMap()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d edges decomposed, want %d", seed, len(got), len(want))
		}
		for e, k := range want {
			if got[e] != k {
				t.Fatalf("seed %d: τ%s = %d, want %d", seed, e, got[e], k)
			}
		}
	}
}

// diffDecompositions fails the test unless the array-based and reference
// decompositions agree on every edge.
func diffDecompositions(t *testing.T, context string, got, want *Decomposition) {
	t.Helper()
	if got.MaxTruss != want.MaxTruss {
		t.Fatalf("%s: max truss %d, reference says %d", context, got.MaxTruss, want.MaxTruss)
	}
	if len(got.Truss) != len(want.Truss) {
		t.Fatalf("%s: %d edges, reference has %d", context, len(got.Truss), len(want.Truss))
	}
	wantMap := want.EdgeTrussMap()
	for e, k := range got.EdgeTrussMap() {
		if wantMap[e] != k {
			t.Fatalf("%s: τ%s = %d, reference says %d", context, e, k, wantMap[e])
		}
	}
	for v := range want.VertexTruss {
		if got.VertexTruss[v] != want.VertexTruss[v] {
			t.Fatalf("%s: τ(%d) = %d, reference says %d",
				context, v, got.VertexTruss[v], want.VertexTruss[v])
		}
	}
}

// TestDecomposeDifferentialVsNaive runs the array-based Decompose against the
// retained naive (map-based, lazy-bucket) reference on ~50 seeded graphs:
// Erdős–Rényi at several densities plus planted-community networks from
// internal/gen, the triangle-rich shape the paper's datasets have.
func TestDecomposeDifferentialVsNaive(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 10; seed++ {
		for _, p := range []float64{0.08, 0.2, 0.35, 0.5} {
			g := randomGraph(seed*31+int64(p*100), 26, p)
			diffDecompositions(t, fmt.Sprintf("er seed=%d p=%.2f", seed, p),
				Decompose(g), DecomposeNaive(g))
			cases++
		}
	}
	for seed := uint64(0); seed < 10; seed++ {
		g, _ := gen.CommunityGraph(gen.CommunityParams{
			N: 300, NumCommunities: 12, MinSize: 5, MaxSize: 25,
			Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 150,
			PlantedClique: 9, Seed: 0xD1FF + seed,
		})
		diffDecompositions(t, fmt.Sprintf("community seed=%d", seed),
			Decompose(g), DecomposeNaive(g))
		cases++
	}
	if cases < 50 {
		t.Fatalf("differential coverage shrank to %d cases, want >= 50", cases)
	}
}

func TestDecomposeMutableMatchesGraph(t *testing.T) {
	g := randomGraph(7, 25, 0.25)
	mu := graph.NewMutable(g, nil)
	d1 := Decompose(g)
	d2 := DecomposeMutable(mu)
	diffDecompositions(t, "mutable vs graph", d2, d1)
	// The input mutable must be untouched.
	if mu.M() != g.M() {
		t.Fatal("DecomposeMutable modified its input")
	}
	// A genuinely shrunken overlay must decompose its live subgraph only.
	mu.DeleteVertex(0)
	d3 := DecomposeMutable(mu)
	d4 := Decompose(mu.Freeze())
	diffDecompositions(t, "shrunk overlay", d3, d4)
}

func TestTrussnessAtMostSupportPlusTwo(t *testing.T) {
	// τ(e) <= sup_G(e) + 2 always (noted in paper §2).
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 0.3)
		sup := graph.EdgeSupports(g)
		for e, k := range Decompose(g).Truss {
			if k > sup[e]+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKTrussInsideKMinusOneCore(t *testing.T) {
	// §3.1: a connected k-truss is a (k-1)-core, so τ(v) - 1 <= core(v).
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 0.35)
		d := Decompose(g)
		core := graph.CoreNumbers(g)
		for v := 0; v < g.N(); v++ {
			if d.VertexTruss[v] > 0 && int(d.VertexTruss[v])-1 > core[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyKTrussInKMinus1Truss(t *testing.T) {
	// §3.1: the maximal k-truss is contained in the maximal (k-1)-truss.
	g := randomGraph(3, 30, 0.3)
	d := Decompose(g)
	for k := d.MaxTruss; k >= 3; k-- {
		hi := d.EdgesAtLeast(k)
		lo := make(map[graph.EdgeKey]bool)
		for _, e := range d.EdgesAtLeast(k - 1) {
			lo[e] = true
		}
		for _, e := range hi {
			if !lo[e] {
				t.Fatalf("edge %s in %d-truss but not (%d-1)-truss", e, k, k)
			}
		}
	}
}

func TestQueryUpperBound(t *testing.T) {
	g := paperGraph()
	d := Decompose(g)
	if k := d.QueryUpperBound([]int{0, 1, 2}); k != 4 {
		t.Fatalf("bound = %d, want 4", k)
	}
	if k := d.QueryUpperBound([]int{11}); k != 2 { // t only touches trussness-2 edges
		t.Fatalf("bound(t) = %d, want 2", k)
	}
	if k := d.QueryUpperBound(nil); k != 4 {
		t.Fatalf("bound(∅) = τ̄(∅) = %d, want 4", k)
	}
	if k := d.QueryUpperBound([]int{-3}); k != 0 {
		t.Fatalf("bound(bad) = %d, want 0", k)
	}
}
