package truss

import (
	"errors"
	"fmt"
	"slices"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// This file is the consolidated differential harness for every truss
// decomposition path in the repository. One corpus of seeded generator
// graphs — Erdős–Rényi at several densities, preferential-attachment
// power-law, planted-community networks, and pathological hand-built shapes
// (stars, clique chains, jumps in the support spectrum) — is decomposed by:
//
//   - Decompose           (serial array bucket-queue peel, the reference)
//   - DecomposeParallel   (public entry; may take the serial fallback)
//   - decomposeParallel   (level-synchronous peel forced at 1/2/4/8 workers)
//   - DecomposeNaive      (retained seed-era map/lazy-bucket oracle)
//   - DecomposeCancelable (the poll-hooked serial peel on the LCTC
//     per-query path, with both a benign and a firing poll)
//   - Incremental          (a full insert-replay: every edge inserted one at
//     a time into an initially empty overlay, forward and reverse order)
//
// and every path must produce byte-identical labels. New decomposition
// implementations must be wired in here.

type diffCase struct {
	name string
	g    *graph.Graph
}

// starGraph is a hub with `leaves` pendant edges: zero triangles, every
// label exactly 2, one giant frontier in the first parallel round.
func starGraph(leaves int) *graph.Graph {
	b := graph.NewBuilder(leaves+1, leaves)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// cliqueChain builds `count` copies of K_size where consecutive cliques
// share an edge: the shared edges sit in 2(size-2) triangles while their
// trussness stays size, and the support spectrum has a gap the level loop
// must jump over.
func cliqueChain(count, size int) *graph.Graph {
	b := graph.NewBuilder(count*(size-2)+2, count*size*(size-1)/2)
	for c := 0; c < count; c++ {
		base := c * (size - 2)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
	}
	return b.Build()
}

// starOfCliques glues `arms` copies of K_size to one central hub vertex:
// high-trussness blobs hanging off trussness-2 spokes.
func starOfCliques(arms, size int) *graph.Graph {
	b := graph.NewBuilder(1+arms*size, arms*(size*(size-1)/2+1))
	for a := 0; a < arms; a++ {
		base := 1 + a*size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		b.AddEdge(0, base)
	}
	return b.Build()
}

// differentialCorpus is the shared table of generator seeds. Kept a function
// (not a package var) so each test gets fresh graphs and the corpus cost is
// only paid by the tests that use it.
func differentialCorpus() []diffCase {
	var cases []diffCase
	// Erdős–Rényi across the density range where trussness structure
	// appears, several seeds each.
	for seed := uint64(0); seed < 5; seed++ {
		for _, p := range []float64{0.05, 0.15, 0.3, 0.5} {
			cases = append(cases, diffCase{
				name: fmt.Sprintf("er/p%.2f/seed%d", p, seed),
				g:    gen.ErdosRenyi(40, p, 0xE120+seed),
			})
		}
	}
	// Power-law (preferential attachment): hubs give skewed frontier work.
	for seed := uint64(0); seed < 5; seed++ {
		cases = append(cases, diffCase{
			name: fmt.Sprintf("ba/seed%d", seed),
			g:    gen.BarabasiAlbert(150, 4, 0xBA00+seed),
		})
	}
	// Planted communities: the triangle-rich shape of the paper's datasets.
	for seed := uint64(0); seed < 5; seed++ {
		g, _ := gen.CommunityGraph(gen.CommunityParams{
			N: 250, NumCommunities: 10, MinSize: 5, MaxSize: 24,
			Overlap: 0.35, PIntra: 0.5, BackgroundEdges: 120,
			Hubs: 2, HubDegree: 40, PlantedClique: 9, Seed: 0xD1FF00 + seed,
		})
		cases = append(cases, diffCase{name: fmt.Sprintf("community/seed%d", seed), g: g})
	}
	// Pathological shapes.
	cases = append(cases,
		diffCase{"empty", graph.NewBuilder(0, 0).Build()},
		diffCase{"single-edge", graph.FromEdges(2, [][2]int{{0, 1}})},
		diffCase{"triangle", graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})},
		diffCase{"path", graph.FromEdges(8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}})},
		diffCase{"star200", starGraph(200)},
		diffCase{"clique-k9", cliqueChain(1, 9)},
		diffCase{"clique-chain-6xk6", cliqueChain(6, 6)},
		diffCase{"clique-chain-3xk8", cliqueChain(3, 8)},
		diffCase{"star-of-cliques", starOfCliques(5, 6)},
		diffCase{"paper-fig1a", paperGraph()},
	)
	return cases
}

// assertSameLabels requires byte-identical decompositions: same edge-ID
// space, same Truss array, same vertex trussness, same max.
func assertSameLabels(t *testing.T, context string, got, want *Decomposition) {
	t.Helper()
	if got.MaxTruss != want.MaxTruss {
		t.Fatalf("%s: MaxTruss = %d, want %d", context, got.MaxTruss, want.MaxTruss)
	}
	if !slices.Equal(got.Truss, want.Truss) {
		for e := range want.Truss {
			if got.Truss[e] != want.Truss[e] {
				t.Fatalf("%s: τ%s = %d, want %d (first of %d-edge divergence)",
					context, want.G.EdgeKeyOf(int32(e)), got.Truss[e], want.Truss[e], len(want.Truss))
			}
		}
		t.Fatalf("%s: Truss length %d, want %d", context, len(got.Truss), len(want.Truss))
	}
	if !slices.Equal(got.VertexTruss, want.VertexTruss) {
		t.Fatalf("%s: vertex trussness diverged", context)
	}
}

// insertReplay rebuilds the decomposition of g purely through the streaming
// insertion path: an Incremental over an initially edgeless overlay, one
// InsertEdgeByID per edge in the given order. The final labels must be the
// exact decomposition.
func insertReplay(t *testing.T, g *graph.Graph, order []int32) *Decomposition {
	t.Helper()
	inc := ResumeIncremental(graph.NewMutableShell(g), make([]int32, g.M()))
	for _, e := range order {
		if !inc.InsertEdgeByID(e) {
			t.Fatalf("insert replay: edge %d rejected", e)
		}
	}
	return inc.Snapshot()
}

// errPollFired is the sentinel the cancellable-decomposition differential
// check aborts with.
var errPollFired = errors.New("poll fired")

func TestDifferentialAllDecompositionPaths(t *testing.T) {
	cases := differentialCorpus()
	if len(cases) < 35 {
		t.Fatalf("differential corpus shrank to %d cases", len(cases))
	}
	for _, tc := range cases {
		want := Decompose(tc.g)
		assertSameLabels(t, tc.name+"/parallel-public", DecomposeParallel(tc.g), want)
		for _, workers := range []int{1, 2, 4, 8} {
			got := decomposeParallel(tc.g, workers)
			assertSameLabels(t, fmt.Sprintf("%s/parallel-w%d", tc.name, workers), got, want)
		}
		assertSameLabels(t, tc.name+"/naive", DecomposeNaive(tc.g), want)

		// The cancellable peel (the LCTC per-query path) with a live but
		// never-firing poll must be label-identical, and a poll that fires
		// must abandon with the poll's error and no decomposition.
		polled := 0
		cancelable, err := DecomposeCancelable(tc.g, func() error { polled++; return nil })
		if err != nil {
			t.Fatalf("%s/cancelable: %v", tc.name, err)
		}
		assertSameLabels(t, tc.name+"/cancelable", cancelable, want)
		if tc.g.M() > 0 && polled == 0 {
			t.Fatalf("%s/cancelable: poll hook never invoked", tc.name)
		}
		if tc.g.M() > 0 {
			if d, err := DecomposeCancelable(tc.g, func() error { return errPollFired }); err != errPollFired || d != nil {
				t.Fatalf("%s/cancelable: firing poll returned (%v, %v)", tc.name, d, err)
			}
		}

		m := int32(tc.g.M())
		forward := make([]int32, m)
		for e := range forward {
			forward[e] = int32(e)
		}
		assertSameLabels(t, tc.name+"/replay-fwd", insertReplay(t, tc.g, forward), want)
		reverse := make([]int32, m)
		for e := range reverse {
			reverse[e] = m - 1 - int32(e)
		}
		assertSameLabels(t, tc.name+"/replay-rev", insertReplay(t, tc.g, reverse), want)
	}
}
