package truss

import (
	"testing"

	"repro/internal/graph"
)

func TestDynamicLowAnchorInflation(t *testing.T) {
	// K6 on 0..5 plus x=6 attached to 0 and 1 only. Edge (0,1) has a
	// triangle through x whose wing edges have low trussness (3). Deleting
	// a K6 edge not touching (0,1) must drop τ(0,1) from 6 to 5 — if the
	// influence region excludes the low wings as anchors, their triangle
	// can inflate (0,1) back to 6.
	b := graph.NewBuilder(7, 0)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(0, 6)
	b.AddEdge(1, 6)
	g := b.Build()
	dy := NewDynamic(g)
	if dy.EdgeTruss(0, 1) != 6 {
		t.Fatalf("τ(0,1) = %d before", dy.EdgeTruss(0, 1))
	}
	dy.DeleteEdge(2, 3)
	checkAgainstRecompute(t, dy, "after K6 edge delete with low wings")
}

func TestDynamicLowAnchorInflationK5(t *testing.T) {
	// Sharper variant: K5 on 0..4 plus x=5 attached to 0 and 1. Deleting
	// (2,3) drops the K5 edges to τ=4; the wing edges (0,5),(1,5) have τ=3
	// and in the true peel stop supporting (0,1) at level 4 — an influence
	// region treating them as permanent anchors inflates τ(0,1) to 5.
	b := graph.NewBuilder(6, 0)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(0, 5)
	b.AddEdge(1, 5)
	g := b.Build()
	dy := NewDynamic(g)
	dy.DeleteEdge(2, 3)
	checkAgainstRecompute(t, dy, "K5 with low wings")
}
