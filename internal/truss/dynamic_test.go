package truss

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// checkAgainstRecompute verifies that the dynamic decomposition matches a
// from-scratch decomposition of the current graph.
func checkAgainstRecompute(t *testing.T, dy *Dynamic, context string) {
	t.Helper()
	want := DecomposeMutable(dy.Graph())
	got := dy.Snapshot()
	gotMap, wantMap := got.EdgeTrussMap(), want.EdgeTrussMap()
	if len(gotMap) != len(wantMap) {
		t.Fatalf("%s: %d edges tracked, recompute has %d", context, len(gotMap), len(wantMap))
	}
	for e, k := range wantMap {
		if gotMap[e] != k {
			t.Fatalf("%s: τ%s = %d, recompute says %d", context, e, gotMap[e], k)
		}
	}
	if got.MaxTruss != want.MaxTruss {
		t.Fatalf("%s: max truss %d vs %d", context, got.MaxTruss, want.MaxTruss)
	}
}

func TestDynamicInsertTriangleByTriangle(t *testing.T) {
	// Build K5 one edge at a time; every prefix must match recomputation.
	b := graph.NewBuilder(5, 0)
	b.EnsureVertex(4)
	dy := NewDynamic(b.Build())
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if !dy.InsertEdge(u, v) {
				t.Fatalf("insert (%d,%d) failed", u, v)
			}
			checkAgainstRecompute(t, dy, "building K5")
		}
	}
	if dy.EdgeTruss(0, 1) != 5 {
		t.Fatalf("final K5 trussness %d", dy.EdgeTruss(0, 1))
	}
	// Tear it down edge by edge.
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if !dy.DeleteEdge(u, v) {
				t.Fatalf("delete (%d,%d) failed", u, v)
			}
			checkAgainstRecompute(t, dy, "dismantling K5")
		}
	}
}

func TestDynamicRejectsDegenerates(t *testing.T) {
	dy := NewDynamic(completeGraph(4))
	if dy.InsertEdge(0, 0) {
		t.Fatal("self-loop accepted")
	}
	if dy.InsertEdge(0, 1) {
		t.Fatal("duplicate accepted")
	}
	if dy.InsertEdge(-1, 2) || dy.InsertEdge(0, 99) {
		t.Fatal("out-of-range accepted")
	}
	if dy.DeleteEdge(0, 99) {
		t.Fatal("absent delete accepted")
	}
	if !dy.DeleteEdge(0, 1) || dy.DeleteEdge(0, 1) {
		t.Fatal("delete idempotence broken")
	}
}

func TestDynamicDeleteVertex(t *testing.T) {
	g := paperGraph()
	dy := NewDynamic(g)
	dy.DeleteVertex(2) // q3: touches both 4-cliques and the pendant path
	checkAgainstRecompute(t, dy, "after DeleteVertex(q3)")
	if dy.Graph().Present(2) {
		t.Fatal("vertex still present")
	}
	dy.DeleteVertex(2) // no-op
	checkAgainstRecompute(t, dy, "double delete")
}

func TestDynamicRandomOperationSequences(t *testing.T) {
	// The serious test: random interleavings of insertions and deletions on
	// random graphs, each step checked against full recomputation.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 14
		g := randomGraph(seed, n, 0.25)
		dy := NewDynamic(g)
		for step := 0; step < 60; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if dy.Graph().HasEdge(u, v) {
				dy.DeleteEdge(u, v)
			} else {
				dy.InsertEdge(u, v)
			}
			checkAgainstRecompute(t, dy, "random sequence")
		}
	}
}

func TestDynamicInsertRaisesPaperGraph(t *testing.T) {
	// On Figure 1(a): inserting the chord (t, v4) creates no triangles
	// for edges (q1,t),(t,q3)... actually (t,v4) with common neighbor q3
	// (t-q3, v4-q3) forms one triangle; all three edges get trussness 3.
	g := paperGraph()
	dy := NewDynamic(g)
	if dy.EdgeTruss(2, 11) != 2 {
		t.Fatalf("τ(q3,t) = %d before insert", dy.EdgeTruss(2, 11))
	}
	dy.InsertEdge(11, 6) // (t, v4)
	checkAgainstRecompute(t, dy, "after chord insert")
	if dy.EdgeTruss(2, 11) != 3 {
		t.Fatalf("τ(q3,t) = %d after insert, want 3", dy.EdgeTruss(2, 11))
	}
	// The deep 4-truss must be untouched.
	if dy.EdgeTruss(1, 4) != 4 {
		t.Fatalf("τ(q2,v2) changed to %d", dy.EdgeTruss(1, 4))
	}
}

func TestDynamicSnapshotUsableForSearch(t *testing.T) {
	// A snapshot after updates must drive ConnectedKTruss correctly.
	g := paperGraph()
	dy := NewDynamic(g)
	// Delete one free-rider clique edge: p-block degrades below 4-truss.
	dy.DeleteEdge(8, 9) // (p1,p2)
	checkAgainstRecompute(t, dy, "after free-rider edge delete")
	snap := dy.Snapshot()
	frozen := dy.Graph().Freeze()
	mu, k, err := MaxConnectedKTruss(frozen, snap, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	if mu.Present(8) || mu.Present(9) {
		t.Fatal("degraded free riders should be out of the 4-truss")
	}
}

func TestDynamicLargeRandomChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test is slow")
	}
	// Bigger graph, checks only at the end and at a few checkpoints.
	g := randomGraph(99, 60, 0.12)
	dy := NewDynamic(g)
	rng := rand.New(rand.NewSource(99))
	for step := 1; step <= 300; step++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u == v {
			continue
		}
		if dy.Graph().HasEdge(u, v) {
			dy.DeleteEdge(u, v)
		} else {
			dy.InsertEdge(u, v)
		}
		if step%100 == 0 {
			checkAgainstRecompute(t, dy, "churn checkpoint")
		}
	}
	checkAgainstRecompute(t, dy, "after churn")
}
