package truss

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// ParallelThreshold is the edge count below which DecomposeParallel falls
// back to the serial bucket-queue peel: under it the per-round goroutine
// fan-out and barriers cost more than the parallelism saves. It is a
// variable so the ctcbench -decomp flag (and threshold-sweep benchmarks) can
// retune it; set it before any decomposition runs — it is not synchronized.
var ParallelThreshold = 1 << 14

// frontierBlock is the work-stealing granule of a peel round: workers claim
// blocks of this many frontier edges at a time. Big enough that the atomic
// cursor bump amortizes, small enough that a block of hub edges (whose
// triangle enumerations dominate) does not serialize the round.
const frontierBlock = 64

// DecomposeParallel computes the truss decomposition of g with a
// level-synchronous peel (PKT style): instead of removing one minimum-
// support edge at a time, each round removes the entire frontier of edges
// whose support has dropped to the current level, sharding the frontier over
// GOMAXPROCS goroutines that cascade support decrements through the dense
// []int32 support array with atomic adds. The initial support pass is
// graph.EdgeSupportsParallel. The result is identical to Decompose — both
// compute the unique trussness labels — and the differential/fuzz harness in
// this package cross-checks them edge for edge.
//
// Graphs below ParallelThreshold edges, and processes capped at one CPU,
// take the serial bucket-queue path instead.
func DecomposeParallel(g *graph.Graph) *Decomposition {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 || g.M() < ParallelThreshold {
		return Decompose(g)
	}
	return decomposeParallel(g, workers)
}

// decomposeParallel is the level-synchronous peel with an explicit worker
// count and no size fallback, so tests and benchmarks can force the parallel
// machinery onto arbitrarily small graphs.
//
// Invariants of the peel:
//
//   - At the start of a support level s, every unpeeled edge has support
//     > s-1; the level's first frontier is every edge with sup <= s.
//   - Within a round, frontier membership (inRound) and peeled liveness are
//     frozen; only supports change, via atomic decrements. A triangle is
//     counted once: if both partners peel this round nobody decrements, if
//     one partner is in the frontier the lower edge ID of the two frontier
//     edges owns the decrement of the survivor, otherwise the processing
//     edge decrements both partners.
//   - Supports step down by one per decrement, so an edge crossing the
//     level boundary returns exactly s from its atomic decrement exactly
//     once — that decrement appends it to the next round's frontier, giving
//     exactly-once scheduling without locks. Supports may keep dropping
//     below s afterwards; the edge is already scheduled and its label is
//     fixed by the level, so the undershoot is harmless.
//   - When a level's cascade dries up, every remaining edge has support
//     > s and the loop jumps straight to the minimum remaining support.
func decomposeParallel(g *graph.Graph, workers int) *Decomposition {
	m := g.M()
	d := &Decomposition{
		G:           g,
		Truss:       make([]int32, m),
		VertexTruss: make([]int32, g.N()),
	}
	if m == 0 {
		return d
	}
	if workers < 1 {
		workers = 1
	}
	sup := graph.EdgeSupportsParallel(g)
	peeled := graph.NewBitset(m)
	// inRound[e] == round marks e as a member of the frontier currently
	// being peeled (round ids start at 1, so the zero value never matches).
	inRound := make([]int32, m)
	// remaining compacts the unpeeled edge IDs; each level's scan partitions
	// it into the frontier and the survivors, so scan work shrinks with the
	// graph instead of staying O(m) per level.
	remaining := make([]int32, m)
	for e := range remaining {
		remaining[e] = int32(e)
	}
	curr := make([]int32, 0, frontierBlock*workers)
	next := make([][]int32, workers)
	round := int32(0)
	done := 0
	for s := int32(0); done < m; {
		curr = curr[:0]
		rest := remaining[:0]
		minSup := int32(math.MaxInt32)
		for _, e := range remaining {
			if peeled.Get(e) {
				continue // scheduled into a cascade round of an earlier level
			}
			if sup[e] <= s {
				curr = append(curr, e)
			} else {
				rest = append(rest, e)
				if sup[e] < minSup {
					minSup = sup[e]
				}
			}
		}
		remaining = rest
		if len(curr) == 0 {
			s = minSup // skip empty support levels
			continue
		}
		level := s + 2
		for len(curr) > 0 {
			round++
			for _, e := range curr {
				inRound[e] = round
			}
			peelFrontier(g, curr, sup, peeled, inRound, round, s, next, workers)
			for _, e := range curr {
				d.Truss[e] = level
				peeled.Set(e)
			}
			done += len(curr)
			curr = curr[:0]
			for w, buf := range next {
				curr = append(curr, buf...)
				next[w] = buf[:0]
			}
		}
		s++
	}
	d.finishVertexTruss()
	return d
}

// peelFrontier destroys the triangles of every frontier edge, decrementing
// surviving partners' supports. Workers steal frontierBlock-sized slices of
// the frontier through an atomic cursor and append newly crossing edges to
// their own next buffer; the WaitGroup barrier publishes the buffers and the
// support updates back to the coordinating goroutine. Small frontiers (one
// block) run inline — deep cascade tails would otherwise pay a goroutine
// fan-out per round for a handful of edges.
func peelFrontier(g *graph.Graph, curr []int32, sup []int32, peeled graph.Bitset,
	inRound []int32, round, s int32, next [][]int32, workers int) {
	nblocks := (len(curr) + frontierBlock - 1) / frontierBlock
	if workers > nblocks {
		workers = nblocks
	}
	if workers < 2 {
		next[0] = peelRange(g, curr, sup, peeled, inRound, round, s, next[0])
		return
	}
	var cursor int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := next[w]
			for {
				bi := int(atomic.AddInt64(&cursor, 1))
				if bi >= nblocks {
					break
				}
				lo := bi * frontierBlock
				hi := lo + frontierBlock
				if hi > len(curr) {
					hi = len(curr)
				}
				local = peelRange(g, curr[lo:hi], sup, peeled, inRound, round, s, local)
			}
			next[w] = local
		}(w)
	}
	wg.Wait()
}

// peelRange processes one slice of the frontier. For every triangle of a
// frontier edge whose two partner edges are still unpeeled, the surviving
// partners' supports drop by one; the decrement that lands exactly on the
// level boundary s schedules the partner for the next round.
func peelRange(g *graph.Graph, curr []int32, sup []int32, peeled graph.Bitset,
	inRound []int32, round, s int32, out []int32) []int32 {
	drop := func(f int32) {
		if atomic.AddInt32(&sup[f], -1) == s {
			out = append(out, f)
		}
	}
	for _, e := range curr {
		u, v := g.EdgeEndpoints(e)
		g.ForEachCommonNeighborEdge(u, v, func(_, e1, e2 int32) {
			if peeled.Get(e1) || peeled.Get(e2) {
				return // triangle already destroyed by an earlier round
			}
			in1 := inRound[e1] == round
			in2 := inRound[e2] == round
			switch {
			case in1 && in2:
				// The whole triangle peels this round; no survivors.
			case in1:
				// e and e1 both peel and both enumerate this triangle; the
				// smaller edge ID owns the survivor's single decrement.
				if e < e1 {
					drop(e2)
				}
			case in2:
				if e < e2 {
					drop(e1)
				}
			default:
				drop(e1)
				drop(e2)
			}
		})
	}
	return out
}
