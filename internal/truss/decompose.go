// Package truss implements the k-truss machinery the paper builds on:
// edge-support computation, truss decomposition by peeling (Wang & Cheng
// style), trussness of edges/vertices/subgraphs, maximal connected k-truss
// extraction, and the k-truss maintenance cascade of Algorithm 3.
//
// A connected k-truss (Definition 1) is a connected subgraph H in which every
// edge is contained in at least k-2 triangles of H. The trussness τ(e) of an
// edge is the largest k such that some k-truss contains e (Definition 2).
//
// All hot paths run over flat arrays indexed by the graph's dense edge IDs:
// supports and trussness are []int32, the peeling queue is the standard
// bucket array with position swaps (the same O(1) decrease-key structure
// used for core decomposition), and edge liveness is a bitset. DecomposeNaive
// retains the original map-based implementation as a differential-testing
// oracle.
package truss

import (
	"repro/internal/graph"
)

// Decomposition holds the full truss decomposition of a graph. Trussness is
// stored densely, indexed by the edge IDs of G; EdgeKey-based accessors are
// provided for callers that work with packed keys.
type Decomposition struct {
	// G is the decomposed graph, defining the edge-ID space of Truss.
	G *graph.Graph
	// Truss[e] is the trussness τ(e) >= 2 of the edge with ID e.
	Truss []int32
	// VertexTruss[v] is τ(v) = max trussness of an incident edge (0 if v has
	// no edges).
	VertexTruss []int32
	// MaxTruss is τ̄(∅), the maximum edge trussness in the graph (0 if the
	// graph has no edges).
	MaxTruss int32
}

// Decompose computes the truss decomposition of g by peeling edges in
// non-decreasing support order, cascading support decrements through the
// triangles of each removed edge. The initial support pass is parallel; the
// peel itself is the array-based bucket queue, O(m) space and
// O(Σ min(deg u, deg v)) triangle work.
func Decompose(g *graph.Graph) *Decomposition {
	d, _ := decompose(g, nil)
	return d
}

// DecomposeCancelable is Decompose with a cancellation hook: poll (may be
// nil) is called every few thousand peeled edges and a non-nil return
// abandons the peel, propagating that error with no decomposition built.
// Query paths pass the pooled workspace's Canceled method so a decomposition
// running inside a cancelled query stops promptly.
func DecomposeCancelable(g *graph.Graph, poll func() error) (*Decomposition, error) {
	return decompose(g, poll)
}

func decompose(g *graph.Graph, poll func() error) (*Decomposition, error) {
	m := g.M()
	d := &Decomposition{
		G:           g,
		Truss:       make([]int32, m),
		VertexTruss: make([]int32, g.N()),
	}
	if m == 0 {
		return d, nil
	}
	sup := graph.EdgeSupportsParallel(g)
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	// Counting-sort edge IDs by support. order holds edge IDs sorted by
	// current support; pos is its inverse; binStart[s] is the first position
	// of the bucket holding support-s edges. A support decrement moves the
	// edge to the head of its bucket and shrinks the bucket by one — O(1)
	// decrease-key with zero allocation, and no stale entries to skip.
	binStart := make([]int32, maxSup+2)
	for _, s := range sup {
		binStart[s+1]++
	}
	for s := int32(1); s <= maxSup+1; s++ {
		binStart[s] += binStart[s-1]
	}
	order := make([]int32, m)
	pos := make([]int32, m)
	next := append([]int32(nil), binStart[:maxSup+1]...)
	for e := int32(0); e < int32(m); e++ {
		p := next[sup[e]]
		next[sup[e]] = p + 1
		order[p] = e
		pos[e] = p
	}
	alive := graph.NewBitset(m)
	alive.SetAll(m)
	level := int32(2)
	for i := 0; i < m; i++ {
		if poll != nil && i&4095 == 0 {
			if err := poll(); err != nil {
				return nil, err
			}
		}
		e := order[i]
		se := sup[e]
		if se+2 > level {
			level = se + 2
		}
		d.Truss[e] = level
		alive.Clear(e)
		u, v := g.EdgeEndpoints(e)
		g.ForEachCommonNeighborEdge(u, v, func(_, euw, evw int32) {
			if !alive.Get(euw) || !alive.Get(evw) {
				return
			}
			if sup[euw] > se {
				decreaseKey(euw, sup, order, pos, binStart)
			}
			if sup[evw] > se {
				decreaseKey(evw, sup, order, pos, binStart)
			}
		})
	}
	d.finishVertexTruss()
	return d, nil
}

// decreaseKey moves edge f one support bucket down: swap it with the first
// edge of its bucket, advance the bucket boundary, decrement its support.
func decreaseKey(f int32, sup, order, pos, binStart []int32) {
	sf := sup[f]
	pf := pos[f]
	pw := binStart[sf]
	if w := order[pw]; w != f {
		order[pf], order[pw] = w, f
		pos[f], pos[w] = pw, pf
	}
	binStart[sf]++
	sup[f] = sf - 1
}

func (d *Decomposition) finishVertexTruss() {
	for e, k := range d.Truss {
		u, v := d.G.EdgeEndpoints(int32(e))
		if k > d.VertexTruss[u] {
			d.VertexTruss[u] = k
		}
		if k > d.VertexTruss[v] {
			d.VertexTruss[v] = k
		}
		if k > d.MaxTruss {
			d.MaxTruss = k
		}
	}
}

// DecomposeMutable computes the truss decomposition of the current state of
// mu. The input is not modified. When mu is its base graph in full (the
// common case for freshly wrapped graphs), the base is decomposed directly;
// otherwise the live subgraph is frozen first.
//
// This runs the serial peel on purpose: DecomposeMutable sits on the LCTC
// per-query path (the eta-bounded expansion is decomposed on every query),
// where concurrent queries each spawning a GOMAXPROCS-wide parallel peel
// would oversubscribe the scheduler. Cold builds go through
// DecomposeParallel via trussindex.Build / NewIncremental / NewDynamic.
func DecomposeMutable(mu *graph.Mutable) *Decomposition {
	d, _ := DecomposeMutableCancelable(mu, nil)
	return d
}

// DecomposeMutableCancelable is DecomposeMutable with DecomposeCancelable's
// poll hook (nil = never cancelled).
func DecomposeMutableCancelable(mu *graph.Mutable, poll func() error) (*Decomposition, error) {
	if mu.OverlayPure() && mu.M() == mu.Base().M() {
		d, err := decompose(mu.Base(), poll)
		if err != nil {
			return nil, err
		}
		if len(d.VertexTruss) < mu.NumIDs() {
			vt := make([]int32, mu.NumIDs())
			copy(vt, d.VertexTruss)
			d.VertexTruss = vt
		}
		return d, nil
	}
	return decompose(mu.Freeze(), poll)
}

// EdgeTrussOf returns τ(u,v), or 0 if the edge does not exist.
func (d *Decomposition) EdgeTrussOf(u, v int) int32 {
	if d.G == nil {
		return 0
	}
	e := d.G.EdgeID(u, v)
	if e < 0 {
		return 0
	}
	return d.Truss[e]
}

// EdgeTrussKey returns τ(e) for a packed edge key, or 0 if absent.
func (d *Decomposition) EdgeTrussKey(k graph.EdgeKey) int32 {
	u, v := k.Endpoints()
	return d.EdgeTrussOf(u, v)
}

// EdgeTrussMap materializes the edge→trussness table as a map keyed by
// packed edge keys — a compatibility adapter for callers (and reference
// implementations) that are not written against dense edge IDs. O(m).
func (d *Decomposition) EdgeTrussMap() map[graph.EdgeKey]int32 {
	out := make(map[graph.EdgeKey]int32, len(d.Truss))
	for e, k := range d.Truss {
		out[d.G.EdgeKeyOf(int32(e))] = k
	}
	return out
}

// QueryUpperBound returns the Lemma 1 upper bound on the trussness of any
// connected k-truss containing Q: min over q of τ(q). Returns 0 if Q is
// empty or some query vertex has no edges.
func (d *Decomposition) QueryUpperBound(q []int) int32 {
	if len(q) == 0 {
		return d.MaxTruss
	}
	min := int32(-1)
	for _, v := range q {
		if v < 0 || v >= len(d.VertexTruss) {
			return 0
		}
		t := d.VertexTruss[v]
		if min < 0 || t < min {
			min = t
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// EdgesAtLeast returns all edges with trussness >= k, in ascending key
// order. The output is sized exactly (count first, then fill).
func (d *Decomposition) EdgesAtLeast(k int32) []graph.EdgeKey {
	count := 0
	for _, t := range d.Truss {
		if t >= k {
			count++
		}
	}
	out := make([]graph.EdgeKey, 0, count)
	for e, t := range d.Truss {
		if t >= k {
			out = append(out, d.G.EdgeKeyOf(int32(e)))
		}
	}
	return out
}

// MutableAtLeast returns a Mutable over G containing exactly the edges with
// trussness >= k — the maximal (not necessarily connected) k-truss — without
// rebuilding adjacency: it is an edge-bitset overlay of G.
func (d *Decomposition) MutableAtLeast(k int32) *graph.Mutable {
	mu := graph.NewMutableShell(d.G)
	for e, t := range d.Truss {
		if t >= k {
			mu.AddEdgeByID(int32(e))
		}
	}
	return mu
}

// Thresholds returns the distinct edge trussness values present, descending.
func (d *Decomposition) Thresholds() []int32 {
	if d.MaxTruss == 0 {
		return nil
	}
	seen := make([]bool, d.MaxTruss+1)
	for _, t := range d.Truss {
		seen[t] = true
	}
	out := make([]int32, 0, len(seen))
	for t := d.MaxTruss; t >= 2; t-- {
		if seen[t] {
			out = append(out, t)
		}
	}
	return out
}
