// Package truss implements the k-truss machinery the paper builds on:
// edge-support computation, truss decomposition by peeling (Wang & Cheng
// style), trussness of edges/vertices/subgraphs, maximal connected k-truss
// extraction, and the k-truss maintenance cascade of Algorithm 3.
//
// A connected k-truss (Definition 1) is a connected subgraph H in which every
// edge is contained in at least k-2 triangles of H. The trussness τ(e) of an
// edge is the largest k such that some k-truss contains e (Definition 2).
package truss

import (
	"repro/internal/graph"
)

// Decomposition holds the full truss decomposition of a graph.
type Decomposition struct {
	// EdgeTruss maps every edge to its trussness τ(e) >= 2.
	EdgeTruss map[graph.EdgeKey]int32
	// VertexTruss[v] is τ(v) = max trussness of an incident edge (0 if v has
	// no edges).
	VertexTruss []int32
	// MaxTruss is τ̄(∅), the maximum edge trussness in the graph (0 if the
	// graph has no edges).
	MaxTruss int32
}

// Decompose computes the truss decomposition of g by peeling edges in
// non-decreasing support order, cascading support decrements through the
// triangles of each removed edge. Runs in O(m^1.5)-ish time at our scales.
func Decompose(g *graph.Graph) *Decomposition {
	return decompose(graph.NewMutable(g, nil), g.N())
}

// DecomposeMutable computes the truss decomposition of the current state of
// mu. The input is not modified (an internal clone is peeled).
func DecomposeMutable(mu *graph.Mutable) *Decomposition {
	return decompose(mu.Clone(), mu.NumIDs())
}

func decompose(mu *graph.Mutable, n int) *Decomposition {
	d := &Decomposition{
		EdgeTruss:   make(map[graph.EdgeKey]int32, mu.M()),
		VertexTruss: make([]int32, n),
	}
	m := mu.M()
	if m == 0 {
		return d
	}
	sup := graph.MutableEdgeSupports(mu)
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	// Bucket queue with lazy (stale) entries: an edge may sit in several
	// buckets; an entry is valid only if the edge is still present and its
	// current support matches the bucket index.
	buckets := make([][]graph.EdgeKey, maxSup+1)
	for e, s := range sup {
		buckets[s] = append(buckets[s], e)
	}
	removed := make(map[graph.EdgeKey]bool, m)
	cur := int32(0)
	level := int32(2)
	processed := 0
	for processed < m {
		// Advance to the lowest bucket holding a valid entry.
		for cur <= maxSup && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxSup {
			break // defensive; cannot happen while processed < m
		}
		b := buckets[cur]
		e := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[e] || sup[e] != cur {
			continue // stale entry
		}
		if cur+2 > level {
			level = cur + 2
		}
		d.EdgeTruss[e] = level
		removed[e] = true
		processed++
		u, v := e.Endpoints()
		mu.CommonNeighbors(u, v, func(w int) {
			for _, f := range [2]graph.EdgeKey{graph.Key(u, w), graph.Key(v, w)} {
				if removed[f] {
					continue
				}
				if sup[f] > 0 {
					sup[f]--
					buckets[sup[f]] = append(buckets[sup[f]], f)
					if sup[f] < cur {
						cur = sup[f]
					}
				}
			}
		})
		mu.DeleteEdge(u, v)
	}
	for e, k := range d.EdgeTruss {
		u, v := e.Endpoints()
		if k > d.VertexTruss[u] {
			d.VertexTruss[u] = k
		}
		if k > d.VertexTruss[v] {
			d.VertexTruss[v] = k
		}
		if k > d.MaxTruss {
			d.MaxTruss = k
		}
	}
	return d
}

// QueryUpperBound returns the Lemma 1 upper bound on the trussness of any
// connected k-truss containing Q: min over q of τ(q). Returns 0 if Q is
// empty or some query vertex has no edges.
func (d *Decomposition) QueryUpperBound(q []int) int32 {
	if len(q) == 0 {
		return d.MaxTruss
	}
	min := int32(-1)
	for _, v := range q {
		if v < 0 || v >= len(d.VertexTruss) {
			return 0
		}
		t := d.VertexTruss[v]
		if min < 0 || t < min {
			min = t
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// EdgesAtLeast returns all edges with trussness >= k.
func (d *Decomposition) EdgesAtLeast(k int32) []graph.EdgeKey {
	out := make([]graph.EdgeKey, 0)
	for e, t := range d.EdgeTruss {
		if t >= k {
			out = append(out, e)
		}
	}
	return out
}
