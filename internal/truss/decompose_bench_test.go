package truss

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// benchGraph50k is the ~50k-edge planted-community network used as the
// shared perf yardstick across PRs (see BENCH_pr1.json for the recorded
// trajectory). Kept deterministic by the fixed seed.
var benchGraph50k *graph.Graph

func bench50k(b *testing.B) *graph.Graph {
	b.Helper()
	if benchGraph50k == nil {
		benchGraph50k, _ = gen.CommunityGraph(gen.CommunityParams{
			N: 9000, NumCommunities: 550, MinSize: 5, MaxSize: 32,
			Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 4500,
			Hubs: 5, HubDegree: 110, PlantedClique: 22, Seed: 0x50C1,
		})
	}
	return benchGraph50k
}

func BenchmarkDecompose(b *testing.B) {
	g := bench50k(b)
	b.Logf("graph: n=%d m=%d", g.N(), g.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Decompose(g)
		if d.MaxTruss < 3 {
			b.Fatal("unexpected decomposition")
		}
	}
}

// BenchmarkDecomposeNaive measures the retained seed-equivalent reference
// (map supports + lazy bucket queue) on the same graph, giving the
// before/after trajectory recorded in BENCH_pr1.json.
func BenchmarkDecomposeNaive(b *testing.B) {
	g := bench50k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := DecomposeNaive(g)
		if d.MaxTruss < 3 {
			b.Fatal("unexpected decomposition")
		}
	}
}
