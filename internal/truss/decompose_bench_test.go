package truss

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// benchGraph50k is the ~50k-edge planted-community network used as the
// shared perf yardstick across PRs (see BENCH_pr1.json for the recorded
// trajectory). Kept deterministic by the fixed seed.
var benchGraph50k *graph.Graph

func bench50k(b *testing.B) *graph.Graph {
	b.Helper()
	if benchGraph50k == nil {
		benchGraph50k, _ = gen.CommunityGraph(gen.CommunityParams{
			N: 9000, NumCommunities: 550, MinSize: 5, MaxSize: 32,
			Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 4500,
			Hubs: 5, HubDegree: 110, PlantedClique: 22, Seed: 0x50C1,
		})
	}
	return benchGraph50k
}

func BenchmarkDecompose(b *testing.B) {
	g := bench50k(b)
	b.Logf("graph: n=%d m=%d", g.N(), g.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Decompose(g)
		if d.MaxTruss < 3 {
			b.Fatal("unexpected decomposition")
		}
	}
}

// BenchmarkDecomposeNaive measures the retained seed-equivalent reference
// (map supports + lazy bucket queue) on the same graph, giving the
// before/after trajectory recorded in BENCH_pr1.json.
func BenchmarkDecomposeNaive(b *testing.B) {
	g := bench50k(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := DecomposeNaive(g)
		if d.MaxTruss < 3 {
			b.Fatal("unexpected decomposition")
		}
	}
}

// benchDBLP is the dblp analogue used for the cold-build comparison in
// BENCH_pr4.json — the registry's own network, so a retune of the dblp
// parameters automatically retunes this benchmark.
func benchDBLP(b *testing.B) *graph.Graph {
	b.Helper()
	nw, err := gen.NetworkByName("dblp")
	if err != nil {
		b.Fatal(err)
	}
	return nw.Graph()
}

// BenchmarkDecomposeParallel sweeps the forced level-synchronous peel over
// worker counts on the shared 50k-edge yardstick and on the dblp-scale
// analogue. The w1 points isolate the algorithmic overhead of the
// level-synchronous formulation versus the serial bucket queue; the scaling
// across w comes from the frontier sharding (run with GOMAXPROCS >= the
// worker count to observe it — the sweep is recorded in BENCH_pr4.json).
func BenchmarkDecomposeParallel(b *testing.B) {
	for _, bg := range []struct {
		name string
		g    *graph.Graph
	}{
		{"50k", bench50k(b)},
		{"dblp", benchDBLP(b)},
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", bg.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d := decomposeParallel(bg.g, workers)
					if d.MaxTruss < 3 {
						b.Fatal("unexpected decomposition")
					}
				}
			})
		}
	}
}

// BenchmarkDecomposeSerialDBLP is the serial baseline on the same dblp-scale
// graph, for the cold-build speedup ratio recorded in BENCH_pr4.json.
func BenchmarkDecomposeSerialDBLP(b *testing.B) {
	g := benchDBLP(b)
	b.Logf("graph: n=%d m=%d", g.N(), g.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Decompose(g)
		if d.MaxTruss < 3 {
			b.Fatal("unexpected decomposition")
		}
	}
}
