package truss

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestMaintainKTrussScratchDifferential drives random vertex-deletion
// streams on 50 seeded graphs and checks after every cascade that the
// maintained subgraph equals the maximal k-truss of the original graph
// minus the stream-deleted vertices, recomputed from scratch (full
// Decompose + filter), and that the maintained dense support table matches
// a fresh support count.
func TestMaintainKTrussScratchDifferential(t *testing.T) {
	graphs := make([]*graph.Graph, 0, 50)
	for seed := uint64(1); len(graphs) < 50; seed++ {
		switch seed % 3 {
		case 0:
			graphs = append(graphs, gen.ErdosRenyi(40, 0.22, seed))
		case 1:
			graphs = append(graphs, gen.BarabasiAlbert(44, 5, seed))
		default:
			graphs = append(graphs, gen.WattsStrogatz(42, 6, 0.25, seed))
		}
	}
	for gi, g := range graphs {
		full := Decompose(g)
		k := full.MaxTruss
		if k > 4 {
			k = 4
		}
		if k < 3 {
			continue // no interesting k-truss in this draw
		}
		// Start from the maximal k-truss of g.
		mu := graph.NewMutable(g, nil)
		sup := graph.MutableEdgeSupports(mu)
		DropBelowSupport(mu, sup, k)
		mu.RemoveIsolated(nil)

		rng := gen.NewRNG(uint64(gi)*7919 + 3)
		chosen := map[int]bool{}
		scratch := new(MaintainScratch)
		for step := 0; step < 8 && mu.N() > 0; step++ {
			// Delete a random not-yet-chosen vertex (present in g).
			v := rng.Intn(g.N())
			for chosen[v] {
				v = (v + 1) % g.N()
			}
			chosen[v] = true
			MaintainKTrussScratch(mu, sup, k, []int{v}, scratch)

			// Reference: induced subgraph of g without the chosen vertices,
			// fully re-decomposed, filtered to trussness >= k.
			keep := make([]int, 0, g.N())
			for u := 0; u < g.N(); u++ {
				if !chosen[u] {
					keep = append(keep, u)
				}
			}
			refMu := graph.NewMutable(g, keep)
			refG := refMu.Freeze()
			refD := Decompose(refG)
			want := map[graph.EdgeKey]bool{}
			for e, tau := range refD.Truss {
				if tau >= k {
					want[refG.EdgeKeyOf(int32(e))] = true
				}
			}
			got := mu.EdgeKeys()
			if len(got) != len(want) {
				t.Fatalf("graph %d step %d (k=%d): cascade kept %d edges, from-scratch has %d",
					gi, step, k, len(got), len(want))
			}
			for _, key := range got {
				if !want[key] {
					t.Fatalf("graph %d step %d (k=%d): cascade kept %s, absent from scratch",
						gi, step, k, key)
				}
			}
			// Maintained supports must match a fresh count on the surviving
			// subgraph.
			fresh := graph.MutableEdgeSupports(mu)
			mu.ForEachLiveEdge(func(e int32, u, v int) {
				if sup[e] != fresh[e] {
					t.Fatalf("graph %d step %d: sup[%d] = %d, fresh count %d",
						gi, step, e, sup[e], fresh[e])
				}
			})
		}
	}
}
