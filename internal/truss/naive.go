package truss

import (
	"repro/internal/graph"
)

// DecomposeNaive is the retained reference implementation of the truss
// decomposition: the seed's map-based peel with a lazy (stale-entry) bucket
// queue over map[EdgeKey]int32 supports. It is deliberately independent of
// the array-based Decompose — different queue discipline, different support
// bookkeeping — and exists as a differential-testing oracle and as the
// seed-equivalent baseline for the decomposition benchmarks. Do not use it
// on hot paths.
func DecomposeNaive(g *graph.Graph) *Decomposition {
	mu := graph.NewMutable(g, nil)
	m := mu.M()
	truss := make(map[graph.EdgeKey]int32, m)
	if m > 0 {
		sup := make(map[graph.EdgeKey]int32, m)
		g.ForEachEdge(func(u, v int) {
			sup[graph.Key(u, v)] = int32(mu.CountCommonNeighbors(u, v))
		})
		maxSup := int32(0)
		for _, s := range sup {
			if s > maxSup {
				maxSup = s
			}
		}
		// Bucket queue with lazy (stale) entries: an edge may sit in several
		// buckets; an entry is valid only if the edge is still present and
		// its current support matches the bucket index.
		buckets := make([][]graph.EdgeKey, maxSup+1)
		for e, s := range sup {
			buckets[s] = append(buckets[s], e)
		}
		removed := make(map[graph.EdgeKey]bool, m)
		cur := int32(0)
		level := int32(2)
		processed := 0
		for processed < m {
			for cur <= maxSup && len(buckets[cur]) == 0 {
				cur++
			}
			if cur > maxSup {
				break // defensive; cannot happen while processed < m
			}
			b := buckets[cur]
			e := b[len(b)-1]
			buckets[cur] = b[:len(b)-1]
			if removed[e] || sup[e] != cur {
				continue // stale entry
			}
			if cur+2 > level {
				level = cur + 2
			}
			truss[e] = level
			removed[e] = true
			processed++
			u, v := e.Endpoints()
			mu.CommonNeighbors(u, v, func(w int) {
				for _, f := range [2]graph.EdgeKey{graph.Key(u, w), graph.Key(v, w)} {
					if removed[f] {
						continue
					}
					if sup[f] > 0 {
						sup[f]--
						buckets[sup[f]] = append(buckets[sup[f]], f)
						if sup[f] < cur {
							cur = sup[f]
						}
					}
				}
			})
			mu.DeleteEdge(u, v)
		}
	}
	d := &Decomposition{
		G:           g,
		Truss:       make([]int32, g.M()),
		VertexTruss: make([]int32, g.N()),
	}
	for e, k := range truss {
		u, v := e.Endpoints()
		d.Truss[g.EdgeID(u, v)] = k
	}
	d.finishVertexTruss()
	return d
}
