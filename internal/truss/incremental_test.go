package truss

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// checkIncremental compares the maintained labels against a from-scratch
// decomposition of the current live graph.
func checkIncremental(t *testing.T, inc *Incremental, step string) {
	t.Helper()
	d := DecomposeMutable(inc.Graph())
	base := inc.Graph().Base()
	inc.Graph().ForEachLiveEdge(func(e int32, u, v int) {
		want := d.EdgeTrussOf(u, v)
		if got := inc.EdgeTau(e); got != want {
			t.Fatalf("%s: τ(%d,%d) = %d, want %d", step, u, v, got, want)
		}
	})
	_ = base
}

func incrementalTestGraphs() []*graph.Graph {
	var gs []*graph.Graph
	for seed := uint64(1); seed <= 6; seed++ {
		gs = append(gs,
			gen.ErdosRenyi(45, 0.18, seed),
			gen.BarabasiAlbert(50, 4, seed),
			gen.WattsStrogatz(48, 6, 0.2, seed),
		)
	}
	return gs
}

func TestIncrementalDeletionStream(t *testing.T) {
	for gi, g := range incrementalTestGraphs() {
		inc := NewIncremental(g)
		rng := gen.NewRNG(uint64(gi)*977 + 11)
		live := make([]int32, g.M())
		for e := range live {
			live[e] = int32(e)
		}
		for step := 0; step < 12 && len(live) > 0; step++ {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !inc.DeleteEdgeByID(e) {
				t.Fatalf("graph %d: edge %d reported dead", gi, e)
			}
			checkIncremental(t, inc, "after delete")
		}
	}
}

func TestIncrementalMixedStream(t *testing.T) {
	for gi, g := range incrementalTestGraphs() {
		inc := NewIncremental(g)
		rng := gen.NewRNG(uint64(gi)*31337 + 7)
		var dead []int32
		for step := 0; step < 24; step++ {
			if len(dead) > 0 && rng.Intn(2) == 0 {
				// Revive a random dead edge.
				i := rng.Intn(len(dead))
				e := dead[i]
				dead[i] = dead[len(dead)-1]
				dead = dead[:len(dead)-1]
				if !inc.InsertEdgeByID(e) {
					t.Fatalf("graph %d: edge %d reported alive", gi, e)
				}
			} else {
				e := int32(rng.Intn(g.M()))
				if !inc.Graph().EdgeAlive(e) {
					continue
				}
				inc.DeleteEdgeByID(e)
				dead = append(dead, e)
			}
			checkIncremental(t, inc, "after update")
		}
	}
}

// TestIncrementalSnapshot checks both snapshot paths: the base-shared fast
// path (nothing dead) and the freeze-and-remap path, and that a snapshot is
// detached from later mutation.
func TestIncrementalSnapshot(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.25, 5)
	inc := NewIncremental(g)

	d0 := inc.Snapshot()
	if d0.G != g {
		t.Fatal("fully-alive snapshot should share the base graph")
	}
	ref := Decompose(g)
	for e := range ref.Truss {
		if d0.Truss[e] != ref.Truss[e] {
			t.Fatalf("snapshot τ[%d] = %d, want %d", e, d0.Truss[e], ref.Truss[e])
		}
	}

	inc.DeleteEdgeByID(0)
	inc.DeleteEdgeByID(7)
	d1 := inc.Snapshot()
	if d1.G == g {
		t.Fatal("partial snapshot must freeze a new graph")
	}
	if d1.G.M() != g.M()-2 {
		t.Fatalf("snapshot has %d edges, want %d", d1.G.M(), g.M()-2)
	}
	refD := Decompose(d1.G)
	for e := range refD.Truss {
		if d1.Truss[e] != refD.Truss[e] {
			t.Fatalf("snapshot τ[%d] = %d, want %d", e, d1.Truss[e], refD.Truss[e])
		}
	}
	// Mutating the incremental must not alter the taken snapshot.
	before := append([]int32(nil), d1.Truss...)
	for e := int32(10); e < 25; e++ {
		inc.DeleteEdgeByID(e)
	}
	for e := range before {
		if d1.Truss[e] != before[e] {
			t.Fatal("snapshot labels mutated by later updates")
		}
	}
}

func TestResumeIncrementalRejectsBadState(t *testing.T) {
	g := gen.ErdosRenyi(20, 0.3, 1)
	mu := graph.NewMutable(g, nil)
	// Find a non-edge of g and add it, making mu overlay-impure.
	for u := 0; u < g.N() && mu.OverlayPure(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				mu.AddEdge(u, v)
				break
			}
		}
	}
	if mu.OverlayPure() {
		t.Fatal("complete graph: cannot manufacture an overflow edge")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ResumeIncremental accepted an impure Mutable")
		}
	}()
	ResumeIncremental(mu, make([]int32, g.M()))
}
