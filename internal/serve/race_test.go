package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trussindex"
)

// TestConcurrentQueriersOneUpdater is the snapshot-isolation stress: several
// goroutines run Basic/LCTC/FindG0 against whatever epoch they acquire while
// one updater streams deletions and re-insertions and a poller hammers
// Stats. Run under -race (CI does); the assertions here are liveness and
// sanity — queries must keep succeeding against their acquired epoch and
// epochs must advance while queries are in flight.
func TestConcurrentQueriersOneUpdater(t *testing.T) {
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 400, NumCommunities: 16, MinSize: 10, MaxSize: 32,
		Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 400, Seed: 0xACE5,
	})
	m := NewManager(g, Options{
		QueueSize:       512,
		PublishDirty:    32,
		PublishInterval: 5 * time.Millisecond,
	})
	defer m.Close()

	rng := gen.NewRNG(0xD1CE)
	queries := make([][]int, 0, 16)
	for _, q := range gen.QueriesFromGroundTruth(rng, truth, 16, 2, 3) {
		queries = append(queries, q.Q)
	}
	if len(queries) == 0 {
		t.Fatal("no ground-truth queries")
	}

	const dur = 400 * time.Millisecond
	var stop atomic.Bool
	var wg sync.WaitGroup
	var queryCount, failCount atomic.Int64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i++ {
				snap := m.Acquire()
				s := core.NewSearcher(snap.Index())
				q := queries[i%len(queries)]
				var err error
				switch i % 3 {
				case 0:
					_, err = s.Basic(q, nil)
				case 1:
					_, err = s.LCTC(q, nil)
				default:
					_, _, err = snap.Index().FindG0(q)
				}
				if err != nil && !errors.Is(err, trussindex.ErrNoCommunity) {
					t.Errorf("query failed: %v", err)
				}
				if err != nil {
					failCount.Add(1)
				}
				queryCount.Add(1)
				snap.Release()
			}
		}(w)
	}

	// One updater: delete random live edges, re-add them a little later.
	wg.Add(1)
	go func() {
		defer wg.Done()
		urng := gen.NewRNG(0xBEEF)
		keys := g.EdgeKeys()
		var parked []int
		for !stop.Load() {
			if len(parked) > 64 {
				k := keys[parked[0]]
				parked = parked[1:]
				u, v := k.Endpoints()
				if err := m.Apply(Update{Op: OpAdd, U: u, V: v}); err != nil {
					return
				}
				continue
			}
			i := urng.Intn(len(keys))
			u, v := keys[i].Endpoints()
			if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); err != nil {
				return
			}
			parked = append(parked, i)
		}
	}()

	// Stats poller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = m.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	startEpoch := m.Stats().Epoch
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	st := m.Stats()
	if st.Epoch == startEpoch {
		t.Fatal("no epoch advanced under sustained updates")
	}
	if queryCount.Load() == 0 {
		t.Fatal("no queries completed")
	}
	if st.LiveSnapshots != 1 {
		t.Fatalf("snapshot leak: %d live after all readers released", st.LiveSnapshots)
	}
	t.Logf("epochs %d -> %d, %d queries (%d no-community), %d publishes (%d full)",
		startEpoch, st.Epoch, queryCount.Load(), failCount.Load(), st.Publishes, st.FullRebuilds)
}
