package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

// durableOpts disables both autonomous publish triggers (dirty threshold,
// ticker) so the only writes are the ones the test drives through
// Apply+Flush — making the filesystem operation sequence reproducible
// enough for a crash-point matrix.
func durableOpts() Options {
	return Options{
		QueueSize:       256,
		MaxBatch:        256,
		PublishDirty:    1 << 30,
		PublishInterval: time.Hour,
		CheckpointEvery: 3,
	}
}

func durableWALOpts(fs wal.FS) wal.Options {
	// Tiny segments force rotation inside the workload, so the matrix also
	// crashes inside rotation and pruning.
	return wal.Options{FS: fs, SegmentBytes: 512}
}

// durableWorkload builds a deterministic base graph plus a batched update
// stream over it (deletes, re-inserts, foreign inserts growing the vertex
// space), and the model edge set after every prefix of the flat stream.
type durableWorkload struct {
	g       *graph.Graph
	batches [][]Update
	// states[j] is the authoritative edge set after the first j updates of
	// the flattened stream.
	states []map[graph.EdgeKey]bool
}

func buildDurableWorkload() *durableWorkload {
	g := gen.ErdosRenyi(40, 0.18, 0xD00D)
	rng := gen.NewRNG(0xFEED)
	model := map[graph.EdgeKey]bool{}
	for _, k := range g.EdgeKeys() {
		model[k] = true
	}
	clone := func() map[graph.EdgeKey]bool {
		c := make(map[graph.EdgeKey]bool, len(model))
		for k := range model {
			c[k] = true
		}
		return c
	}
	w := &durableWorkload{g: g, states: []map[graph.EdgeKey]bool{clone()}}
	maxV := g.N() + 8
	for b := 0; b < 12; b++ {
		var batch []Update
		for len(batch) < 5 {
			var up Update
			switch rng.Intn(5) {
			case 0, 1: // delete an existing edge
				keys := make([]graph.EdgeKey, 0, len(model))
				for k := range model {
					keys = append(keys, k)
				}
				if len(keys) == 0 {
					continue
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				k := keys[rng.Intn(len(keys))]
				u, v := k.Endpoints()
				up = Update{Op: OpRemove, U: u, V: v}
				delete(model, k)
			case 2, 3: // insert inside the base vertex range
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u == v {
					continue
				}
				up = Update{Op: OpAdd, U: u, V: v}
				model[graph.Key(u, v)] = true
			default: // foreign insert, may grow the vertex space
				u, v := rng.Intn(maxV), rng.Intn(maxV)
				if u == v {
					continue
				}
				up = Update{Op: OpAdd, U: u, V: v}
				model[graph.Key(u, v)] = true
			}
			batch = append(batch, up)
			w.states = append(w.states, clone())
		}
		w.batches = append(w.batches, batch)
	}
	return w
}

func (w *durableWorkload) baseIndex() (*trussindex.Index, error) {
	return trussindex.BuildFromDecomposition(w.g, truss.Decompose(w.g)), nil
}

func (w *durableWorkload) totalUpdates() int { return len(w.states) - 1 }

// run drives the workload against a durable manager on fs, stopping at the
// first error (a crash or degraded manager). acked counts the updates
// covered by a successful Flush — the durability promise is about exactly
// these. The manager (possibly nil if OpenDurable itself failed) is
// returned for the caller to Close.
func (w *durableWorkload) run(t *testing.T, fs wal.FS, dir string) (acked int, m *Manager) {
	t.Helper()
	m, _, err := OpenDurable(dir, w.baseIndex, durableWALOpts(fs), durableOpts())
	if err != nil {
		return 0, nil
	}
	sent := 0
	for _, batch := range w.batches {
		for _, up := range batch {
			if err := m.Apply(up); err != nil {
				return acked, m
			}
			sent++
		}
		if err := m.Flush(); err != nil {
			return acked, m
		}
		acked = sent
	}
	return acked, m
}

// edgeSet extracts the live edge set of a snapshot's frozen graph.
func edgeSet(g *graph.Graph) map[graph.EdgeKey]bool {
	s := make(map[graph.EdgeKey]bool, g.M())
	for _, k := range g.EdgeKeys() {
		s[k] = true
	}
	return s
}

func sameEdgeSet(a, b map[graph.EdgeKey]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// verifyRecovered checks the two recovery guarantees: internal consistency
// (the recovered labels and search answers are byte-identical to a
// from-scratch decomposition of the recovered graph) and prefix durability
// (the recovered edge set equals the model after some prefix of the update
// stream no shorter than everything a Flush acknowledged — batches synced
// but never acknowledged may legitimately be included, torn suffixes must
// not).
func (w *durableWorkload) verifyRecovered(t *testing.T, tag string, m *Manager, acked int) {
	t.Helper()
	snap := m.Acquire()
	defer snap.Release()
	checkSnapshotAgainstScratch(t, snap, [][]int{{1, 2}, {5, 9}})
	got := edgeSet(snap.Graph())
	for j := acked; j <= w.totalUpdates(); j++ {
		if sameEdgeSet(got, w.states[j]) {
			return
		}
	}
	t.Fatalf("%s: recovered %d edges matching no stream prefix >= acked %d (of %d updates)",
		tag, len(got), acked, w.totalUpdates())
}

// TestOpenDurableFreshAndRestart is the no-crash baseline: a fresh
// directory initializes (writing the epoch-1 checkpoint before accepting
// updates), a clean restart recovers the exact final state by checkpoint +
// replay, and epochs keep ascending across the restart.
func TestOpenDurableFreshAndRestart(t *testing.T) {
	w := buildDurableWorkload()
	fs := wal.NewMemFS()
	acked, m := w.run(t, fs, "wal")
	if m == nil {
		t.Fatal("OpenDurable failed on a healthy filesystem")
	}
	if acked != w.totalUpdates() {
		t.Fatalf("healthy run acked %d/%d updates", acked, w.totalUpdates())
	}
	st := m.Stats()
	if !st.WALEnabled || st.Degraded {
		t.Fatalf("healthy stats: %+v", st)
	}
	if st.WALDurableSeq == 0 || st.WALAppends == 0 || st.WALSyncs == 0 {
		t.Fatalf("wal counters empty: %+v", st)
	}
	if st.WALCheckpointSeq == 0 {
		t.Fatal("no checkpoint written despite CheckpointEvery")
	}
	epochBefore := st.Epoch
	m.Close()

	m2, recovered, err := OpenDurable("wal", w.baseIndex, durableWALOpts(fs), durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !recovered {
		t.Fatal("restart did not take the recovery path")
	}
	w.verifyRecovered(t, "clean restart", m2, w.totalUpdates())
	if got := m2.Stats().Epoch; got < epochBefore {
		t.Fatalf("epoch regressed across restart: %d -> %d", epochBefore, got)
	}
	// The restarted manager must keep accepting updates.
	if err := m2.Apply(Update{Op: OpAdd, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashPointMatrix is the acceptance test for the durability protocol:
// the full workload runs once to count the filesystem operations it
// performs, then re-runs with a simulated crash injected at every single
// operation index (cycling the torn-write fraction). After each crash the
// manager must degrade rather than panic, and reopening the directory must
// recover a state whose labels and community-search answers match a
// from-scratch decomposition, and whose edge set is a stream prefix at
// least as new as every acknowledged Flush.
func TestCrashPointMatrix(t *testing.T) {
	w := buildDurableWorkload()

	probe := wal.NewMemFS()
	acked, m := w.run(t, probe, "wal")
	if m == nil || acked != w.totalUpdates() {
		t.Fatalf("probe run failed (acked %d)", acked)
	}
	m.Close()
	nops := probe.OpCount()
	if nops < 40 {
		t.Fatalf("probe run used only %d filesystem ops; matrix too thin", nops)
	}
	keeps := []float64{0, 0.5, 1}
	for i := 0; i < nops; i++ {
		i := i
		t.Run(fmt.Sprintf("crash-at-%03d", i), func(t *testing.T) {
			fs := wal.NewMemFS()
			fs.CrashAfter(i, keeps[i%len(keeps)])
			acked, m := w.run(t, fs, "wal")
			if m != nil {
				if fs.Crashed() && !m.Degraded() {
					// The crash fired mid-run; the writer must have seen it.
					// (It may also have fired during Close's final drain, in
					// which case Degraded may race; only assert when the run
					// itself was cut short.)
					if acked < w.totalUpdates() {
						t.Errorf("crash fired (acked %d/%d) but manager not degraded",
							acked, w.totalUpdates())
					}
				}
				m.Close() // must not panic or hang, degraded or not
			}
			fs.Crash() // reboot: lose everything unsynced

			m2, _, err := OpenDurable("wal", w.baseIndex, durableWALOpts(fs), durableOpts())
			if err != nil {
				t.Fatalf("recovery after crash at op %d failed: %v", i, err)
			}
			defer m2.Close()
			w.verifyRecovered(t, fmt.Sprintf("crash at op %d", i), m2, acked)
		})
	}
}

// TestDegradedMode pins the runtime-failure contract: a WAL write error
// (disk full, not a crash) flips the manager to read-only — typed
// ErrDegraded from every update entry point, the failing batch dropped
// before application, queries still served — and a restart recovers
// exactly the durable prefix.
func TestDegradedMode(t *testing.T) {
	g := gen.ErdosRenyi(30, 0.2, 0xBAD)
	base := func() (*trussindex.Index, error) {
		return trussindex.BuildFromDecomposition(g, truss.Decompose(g)), nil
	}
	fs := wal.NewMemFS()
	m, _, err := OpenDurable("wal", base, durableWALOpts(fs), durableOpts())
	if err != nil {
		t.Fatal(err)
	}

	// One healthy durable batch.
	if err := m.Apply(Update{Op: OpAdd, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	durableEdges := edgeSet(func() *graph.Graph { s := m.Acquire(); defer s.Release(); return s.Graph() }())

	// Then the disk fills up.
	boom := fmt.Errorf("%w: disk full", wal.ErrInjected)
	fs.Fail = func(op, name string) error {
		if op == "write" || op == "sync" {
			return boom
		}
		return nil
	}
	if err := m.Apply(Update{Op: OpAdd, U: 2, V: 3}); err != nil {
		t.Fatal(err) // enqueue itself still succeeds
	}
	if err := m.Flush(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Flush after WAL failure = %v, want ErrDegraded", err)
	}
	if err := m.Apply(Update{Op: OpAdd, U: 4, V: 5}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Apply while degraded = %v, want ErrDegraded", err)
	}
	if m.Offer(Update{Op: OpAdd, U: 4, V: 5}) {
		t.Fatal("Offer accepted an update while degraded")
	}
	st := m.Stats()
	if !st.Degraded || st.WALLastError == "" || st.WALDropped == 0 {
		t.Fatalf("degraded stats not surfaced: %+v", st)
	}

	// Reads stay up: the last published snapshot keeps answering.
	if _, err := m.Query(context.Background(), core.Request{Q: []int{0}}); err != nil {
		t.Fatalf("query while degraded: %v", err)
	}

	// The dropped batch must not have leaked into the served graph.
	snap := m.Acquire()
	if got := edgeSet(snap.Graph()); !sameEdgeSet(got, durableEdges) {
		t.Fatalf("degraded snapshot diverged from the durable state")
	}
	snap.Release()

	fs.Fail = nil
	m.Close()

	// Restart: exactly the durable prefix comes back, and updates work.
	m2, recovered, err := OpenDurable("wal", base, durableWALOpts(fs), durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !recovered {
		t.Fatal("expected recovery path")
	}
	snap2 := m2.Acquire()
	if got := edgeSet(snap2.Graph()); !sameEdgeSet(got, durableEdges) {
		t.Fatalf("restart after degraded run lost or invented updates")
	}
	snap2.Release()
	if m2.Degraded() {
		t.Fatal("fresh manager inherited degraded state")
	}
	if err := m2.Apply(Update{Op: OpAdd, U: 2, V: 3}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCorruptionFallback damages the newest checkpoint file on a
// real filesystem and proves recovery falls back to the previous retained
// checkpoint and still rolls fully forward through the retained segments —
// and that with every checkpoint damaged, OpenDurable refuses loudly
// instead of serving a wrong state.
func TestCheckpointCorruptionFallback(t *testing.T) {
	w := buildDurableWorkload()
	dir := filepath.Join(t.TempDir(), "wal")
	opts := durableOpts()
	opts.CheckpointEvery = 1 // checkpoint at every publish

	m, _, err := OpenDurable(dir, w.baseIndex, wal.Options{SegmentBytes: 512}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for _, batch := range w.batches {
		for _, up := range batch {
			if err := m.Apply(up); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	ckpts := listCheckpoints(t, dir)
	if len(ckpts) != 2 {
		t.Fatalf("retention should keep exactly 2 checkpoints, found %v", ckpts)
	}
	corrupt := func(name string) {
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xFF
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Newest checkpoint damaged: fall back, replay, full state.
	corrupt(ckpts[len(ckpts)-1])
	m2, recovered, err := OpenDurable(dir, w.baseIndex, wal.Options{SegmentBytes: 512}, opts)
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	if !recovered {
		t.Fatal("expected recovery path")
	}
	w.verifyRecovered(t, "fallback", m2, w.totalUpdates())
	m2.Close()

	// Every checkpoint damaged: recovery must refuse, not guess.
	for _, name := range listCheckpoints(t, dir) {
		corrupt(name)
	}
	if _, _, err := OpenDurable(dir, w.baseIndex, wal.Options{SegmentBytes: 512}, opts); err == nil {
		t.Fatal("OpenDurable served a state from all-corrupt checkpoints")
	}
}

func listCheckpoints(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "checkpoint-") && strings.HasSuffix(e.Name(), ".ctc") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}
