package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestMultiModelThroughManager drives every newly ported model — D-truss,
// probabilistic (k,γ)-truss, MDC, QDC — through Manager.Query concurrently
// while an updater streams edge churn. Run under -race (CI does): the
// models share the pooled workspaces and the epoch-keyed cache with the
// truss algorithms, so this is the aliasing/reuse stress for the ports.
func TestMultiModelThroughManager(t *testing.T) {
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 200, NumCommunities: 8, MinSize: 8, MaxSize: 24,
		Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 200, Seed: 0xBEEF,
	})
	m := NewManager(g, Options{
		QueueSize:       256,
		PublishDirty:    32,
		PublishInterval: 5 * time.Millisecond,
	})
	defer m.Close()

	rng := gen.NewRNG(0xFEED)
	queries := make([][]int, 0, 8)
	for _, q := range gen.QueriesFromGroundTruth(rng, truth, 8, 2, 2) {
		queries = append(queries, q.Q)
	}
	if len(queries) == 0 {
		t.Fatal("no ground-truth queries")
	}
	algos := []core.Algo{core.AlgoDTruss, core.AlgoProbTruss, core.AlgoMDC, core.AlgoQDC}

	const dur = 300 * time.Millisecond
	var stop atomic.Bool
	var wg sync.WaitGroup
	var ok, noCommunity atomic.Int64

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := w; !stop.Load(); i++ {
				req := core.Request{Q: queries[i%len(queries)], Algo: algos[i%len(algos)]}
				if req.Algo == core.AlgoDTruss {
					req.Direction = core.DirectionMode(i % 4)
				}
				res, err := m.Query(ctx, req)
				switch {
				case err == nil:
					if res.Stats.Algo != req.Algo {
						t.Errorf("stats algo %v, want %v", res.Stats.Algo, req.Algo)
						return
					}
					ok.Add(1)
				case cacheableErr(err):
					noCommunity.Add(1)
				default:
					t.Errorf("algo %v: %v", req.Algo, err)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		urng := gen.NewRNG(0xD00D)
		for i := 0; !stop.Load(); i++ {
			u, v := int(urng.Uint64()%200), int(urng.Uint64()%200)
			if u == v {
				continue
			}
			if i%2 == 0 {
				m.Offer(Update{Op: OpAdd, U: u, V: v})
			} else {
				m.Offer(Update{Op: OpRemove, U: u, V: v})
			}
		}
	}()

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatalf("no model query succeeded (%d no-community)", noCommunity.Load())
	}
}

// TestMultiModelCacheKeying pins the canonical-key folding for the model
// parameters: MinProb 0 and the explicit default share an entry, a
// different direction is a different key, and the baselines ignore K.
func TestMultiModelCacheKeying(t *testing.T) {
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 120, NumCommunities: 6, MinSize: 8, MaxSize: 20,
		Overlap: 0.2, PIntra: 0.6, BackgroundEdges: 100, Seed: 0xCAFE,
	})
	m := NewManager(g, Options{PublishDirty: 1 << 30, PublishInterval: time.Hour})
	defer m.Close()
	rng := gen.NewRNG(0xF00D)
	qs := gen.QueriesFromGroundTruth(rng, truth, 4, 2, 2)
	if len(qs) == 0 {
		t.Fatal("no ground-truth queries")
	}
	q := qs[0].Q
	ctx := context.Background()

	query := func(req core.Request) (bool, error) {
		res, err := m.Query(ctx, req)
		if err != nil {
			return false, err
		}
		return res.Stats.CacheHit, nil
	}
	okOrNone := func(err error) {
		t.Helper()
		if err != nil && !cacheableErr(err) {
			t.Fatal(err)
		}
	}

	// MinProb: zero folds to the default, so the three spellings share one
	// cache entry.
	if _, err := query(core.Request{Q: q, Algo: core.AlgoProbTruss}); err != nil {
		okOrNone(err)
	}
	hit, err := query(core.Request{Q: q, Algo: core.AlgoProbTruss, MinProb: core.DefaultMinProb})
	if err != nil {
		okOrNone(err)
	} else if !hit {
		t.Fatal("MinProb default not folded: explicit 0.5 missed the cache")
	}
	// A different threshold is a different answer, never served from the
	// folded entry's key.
	if hit, err := query(core.Request{Q: q, Algo: core.AlgoProbTruss, MinProb: 0.9}); err == nil && hit {
		t.Fatal("MinProb=0.9 hit the 0.5 entry")
	}

	// Direction distinguishes DTruss entries...
	if _, err := query(core.Request{Q: q, Algo: core.AlgoDTruss}); err != nil {
		okOrNone(err)
	}
	if hit, err := query(core.Request{Q: q, Algo: core.AlgoDTruss, Direction: core.DirLowHigh}); err == nil && hit {
		t.Fatal("lowhigh direction hit the both-direction entry")
	}
	// ...but is folded to zero for algorithms that never read it.
	if _, err := query(core.Request{Q: q, Algo: core.AlgoMDC}); err != nil {
		okOrNone(err)
	}
	hit, err = query(core.Request{Q: q, Algo: core.AlgoMDC, K: 7})
	if err != nil {
		okOrNone(err)
	} else if !hit {
		t.Fatal("MDC K not folded: K=7 missed the K=0 entry")
	}
}
