package serve

import (
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/truss"
	"repro/internal/trussindex"
)

// fastOpts publishes eagerly so tests see many epochs.
func fastOpts() Options {
	return Options{
		QueueSize:       256,
		MaxBatch:        32,
		PublishDirty:    24,
		PublishInterval: 20 * time.Millisecond,
	}
}

// checkSnapshotAgainstScratch compares one published snapshot against a
// from-scratch Decompose + BuildFromDecomposition on the snapshot's own
// frozen graph: every edge label, then FindG0/Basic/LCTC answers for a set
// of query vertex pairs.
func checkSnapshotAgainstScratch(t *testing.T, snap *Snapshot, queries [][]int) {
	t.Helper()
	g := snap.Graph()
	refIx := trussindex.BuildFromDecomposition(g, truss.Decompose(g))
	for e := int32(0); e < int32(g.M()); e++ {
		if got, want := snap.Index().EdgeTrussByID(e), refIx.EdgeTrussByID(e); got != want {
			u, v := g.EdgeEndpoints(e)
			t.Fatalf("epoch %d: τ(%d,%d) = %d, from-scratch %d", snap.Epoch(), u, v, got, want)
		}
	}
	liveS := core.NewSearcher(snap.Index())
	refS := core.NewSearcher(refIx)
	for _, q := range queries {
		gotG0, gotK, gotErr := snap.Index().FindG0(q)
		wantG0, wantK, wantErr := refIx.FindG0(q)
		if (gotErr == nil) != (wantErr == nil) || gotK != wantK {
			t.Fatalf("epoch %d: FindG0(%v) = (k=%d, err=%v), from-scratch (k=%d, err=%v)",
				snap.Epoch(), q, gotK, gotErr, wantK, wantErr)
		}
		if gotErr == nil && !sameVertexSet(gotG0.Vertices(), wantG0.Vertices()) {
			t.Fatalf("epoch %d: FindG0(%v) vertex sets differ", snap.Epoch(), q)
		}
		for _, algo := range []struct {
			name string
			run  func(*core.Searcher) (*core.Community, error)
		}{
			{"Basic", func(s *core.Searcher) (*core.Community, error) { return s.Basic(q, nil) }},
			{"LCTC", func(s *core.Searcher) (*core.Community, error) { return s.LCTC(q, nil) }},
		} {
			got, gotErr := algo.run(liveS)
			want, wantErr := algo.run(refS)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("epoch %d: %s(%v) err=%v, from-scratch err=%v",
					snap.Epoch(), algo.name, q, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if got.K != want.K || !sameVertexSet(got.Vertices(), want.Vertices()) {
				t.Fatalf("epoch %d: %s(%v) = k=%d n=%d, from-scratch k=%d n=%d",
					snap.Epoch(), algo.name, q, got.K, got.N(), want.K, want.N())
			}
		}
	}
}

func sameVertexSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialEpochStream is the acceptance differential: a random
// 1000-op insert/delete stream (including foreign edges that force rebases
// and vertex-space growth), checking at every published epoch that the
// snapshot's labels and FindG0/Basic/LCTC answers equal a from-scratch
// decomposition and index build on the same graph state.
func TestDifferentialEpochStream(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityParams{
		N: 150, NumCommunities: 8, MinSize: 8, MaxSize: 22,
		Overlap: 0.3, PIntra: 0.5, BackgroundEdges: 120, Seed: 0x5EED,
	})
	rng := gen.NewRNG(0xCAFE)

	// Model: the authoritative edge set, mirrored by every applied update.
	model := map[graph.EdgeKey]bool{}
	for _, k := range g.EdgeKeys() {
		model[k] = true
	}
	modelKeys := func() []graph.EdgeKey {
		keys := make([]graph.EdgeKey, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		return keys
	}

	epochsChecked := 0
	opts := fastOpts()
	opts.OnPublish = func(snap *Snapshot) {
		if snap.Epoch() == 1 {
			return
		}
		epochsChecked++
		// Queries: a few fixed pairs sampled from the seed graph's vertex
		// range — deterministic across epochs, mix of satisfiable and not.
		queries := [][]int{{1, 2}, {10, 11, 12}, {30, 55}, {80, 81}, {100, 120}}
		n := snap.Graph().N()
		valid := queries[:0]
		for _, q := range queries {
			ok := true
			for _, v := range q {
				if v >= n {
					ok = false
				}
			}
			if ok {
				valid = append(valid, q)
			}
		}
		checkSnapshotAgainstScratch(t, snap, valid)
	}
	m := NewManager(g, opts)
	defer m.Close()

	maxV := g.N() + 20 // leave headroom so the stream grows the ID space
	for op := 0; op < 1000; op++ {
		var up Update
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // delete a random existing edge
			keys := modelKeys()
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			u, v := k.Endpoints()
			up = Update{Op: OpRemove, U: u, V: v}
			delete(model, k)
		case 4, 5, 6: // re-insert or insert a random pair
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v {
				continue
			}
			up = Update{Op: OpAdd, U: u, V: v}
			model[graph.Key(u, v)] = true
		case 7, 8: // foreign insert possibly growing the vertex space
			u, v := rng.Intn(maxV), rng.Intn(maxV)
			if u == v {
				continue
			}
			up = Update{Op: OpAdd, U: u, V: v}
			model[graph.Key(u, v)] = true
		default: // remove a possibly-nonexistent pair (no-op path)
			u, v := rng.Intn(maxV), rng.Intn(maxV)
			if u == v {
				continue
			}
			up = Update{Op: OpRemove, U: u, V: v}
			delete(model, graph.Key(u, v))
		}
		if err := m.Apply(up); err != nil {
			t.Fatal(err)
		}
		if op%250 == 249 {
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	// The final snapshot must hold exactly the model's edge set.
	snap := m.Acquire()
	defer snap.Release()
	fg := snap.Graph()
	if fg.M() != len(model) {
		t.Fatalf("final snapshot has %d edges, model has %d", fg.M(), len(model))
	}
	for _, k := range fg.EdgeKeys() {
		if !model[k] {
			t.Fatalf("final snapshot contains %s, absent from model", k)
		}
	}
	if epochsChecked < 10 {
		t.Fatalf("only %d epochs were published and checked; stream should produce many", epochsChecked)
	}
	st := m.Stats()
	if st.Epoch != snap.Epoch() {
		t.Fatalf("stats epoch %d != snapshot epoch %d", st.Epoch, snap.Epoch())
	}
}

// TestSnapshotRefcountRetirement pins the RCU lifecycle: an old epoch held
// by a reader stays valid (and queryable) across later publishes, and
// retires exactly when its last reference drops.
func TestSnapshotRefcountRetirement(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.15, 3)
	m := NewManager(g, fastOpts())
	defer m.Close()

	old := m.Acquire()
	oldEpoch := old.Epoch()
	oldM := old.Graph().M()

	// Push enough deletes to force a publish.
	n := 0
	for _, k := range g.EdgeKeys() {
		u, v := k.Endpoints()
		if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); err != nil {
			t.Fatal(err)
		}
		if n++; n >= 30 {
			break
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	fresh := m.Acquire()
	if fresh.Epoch() <= oldEpoch {
		t.Fatalf("no new epoch published: %d -> %d", oldEpoch, fresh.Epoch())
	}
	if fresh.Graph().M() != oldM-30 {
		t.Fatalf("new snapshot has %d edges, want %d", fresh.Graph().M(), oldM-30)
	}
	// The held old snapshot must be untouched by the updates.
	if old.Graph().M() != oldM {
		t.Fatal("held snapshot mutated by later updates")
	}
	if _, _, err := old.Index().FindG0([]int{0, 1}); err != nil && !errors.Is(err, trussindex.ErrNoCommunity) {
		t.Fatalf("held snapshot not queryable: %v", err)
	}

	st := m.Stats()
	if st.LiveSnapshots < 2 {
		t.Fatalf("expected the held old epoch to keep >= 2 snapshots live, got %d", st.LiveSnapshots)
	}
	before := st.Retired
	old.Release()
	st = m.Stats()
	if st.Retired != before+1 {
		t.Fatalf("releasing the last reader did not retire the snapshot (retired %d -> %d)", before, st.Retired)
	}
	fresh.Release()
}

// TestRebaseGrowsVertexSpace inserts edges on vertices beyond the seed
// graph's ID range and checks they become queryable after the rebase.
func TestRebaseGrowsVertexSpace(t *testing.T) {
	g := gen.ErdosRenyi(30, 0.2, 9)
	m := NewManager(g, fastOpts())
	defer m.Close()

	// A fresh 5-clique on brand-new vertex IDs: trussness 5.
	nv := []int{g.N() + 1, g.N() + 2, g.N() + 3, g.N() + 4, g.N() + 5}
	for i := 0; i < len(nv); i++ {
		for j := i + 1; j < len(nv); j++ {
			if err := m.Apply(Update{Op: OpAdd, U: nv[i], V: nv[j]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := m.Acquire()
	defer snap.Release()
	if snap.Graph().N() < nv[len(nv)-1]+1 {
		t.Fatalf("vertex space not grown: n=%d", snap.Graph().N())
	}
	mu, k, err := snap.Index().FindG0([]int{nv[0], nv[4]})
	if err != nil {
		t.Fatal(err)
	}
	if k != 5 || mu.N() != 5 {
		t.Fatalf("clique community: k=%d n=%d, want k=5 n=5", k, mu.N())
	}
}

// TestCancelledForeignAddDoesNotInflateVertexSpace: an add on a huge vertex
// ID that is removed again before any publish must not leave the watermark
// behind — the next rebase sizes the base from the *live* pending set.
func TestCancelledForeignAddDoesNotInflateVertexSpace(t *testing.T) {
	g := gen.ErdosRenyi(30, 0.2, 13)
	m := NewManager(g, fastOpts())
	defer m.Close()

	huge := graph.MaxVertexID
	if err := m.Apply(Update{Op: OpAdd, U: 0, V: huge}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Update{Op: OpRemove, U: 0, V: huge}); err != nil {
		t.Fatal(err)
	}
	// A modest foreign add forces the rebase.
	if err := m.Apply(Update{Op: OpAdd, U: g.N(), V: 0}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	snap := m.Acquire()
	defer snap.Release()
	if snap.Graph().N() != g.N()+1 {
		t.Fatalf("snapshot n=%d, want %d (cancelled add must not grow the ID space)",
			snap.Graph().N(), g.N()+1)
	}
	if !snap.Graph().HasEdge(g.N(), 0) {
		t.Fatal("surviving foreign edge missing")
	}
}

// TestRebaseFullFallback drives a foreign batch big enough to exceed
// RebuildFraction and checks the full-rebuild path is taken and correct.
func TestRebaseFullFallback(t *testing.T) {
	g := gen.ErdosRenyi(20, 0.2, 2)
	opts := fastOpts()
	opts.RebuildFraction = 0.01
	m := NewManager(g, opts)
	defer m.Close()

	base := g.N()
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if err := m.Apply(Update{Op: OpAdd, U: base + i, V: base + j}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.FullRebuilds == 0 {
		t.Fatal("expected the oversized foreign batch to force a full rebuild")
	}
	snap := m.Acquire()
	defer snap.Release()
	checkSnapshotAgainstScratch(t, snap, [][]int{{base, base + 5}})
}

// TestIdempotentAndInvalidOps checks duplicate adds, removes of absent
// edges, and malformed endpoints.
func TestIdempotentAndInvalidOps(t *testing.T) {
	g := gen.ErdosRenyi(25, 0.2, 4)
	m := NewManager(g, fastOpts())
	defer m.Close()

	u, v := g.EdgeEndpoints(0)
	for i := 0; i < 3; i++ {
		if err := m.Apply(Update{Op: OpAdd, U: u, V: v}); err != nil { // already alive
			t.Fatal(err)
		}
	}
	if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); err != nil { // now absent
		t.Fatal(err)
	}
	if err := m.Apply(Update{Op: OpAdd, U: 3, V: 3}); err != nil { // self-loop
		t.Fatal(err)
	}
	if err := m.Apply(Update{Op: OpAdd, U: -1, V: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Adds != 0 || st.Removes != 1 {
		t.Fatalf("applied adds=%d removes=%d, want 0/1", st.Adds, st.Removes)
	}
	if st.Rejected != 2 {
		t.Fatalf("rejected=%d, want 2", st.Rejected)
	}
	snap := m.Acquire()
	defer snap.Release()
	if snap.Graph().M() != g.M()-1 {
		t.Fatalf("final m=%d, want %d", snap.Graph().M(), g.M()-1)
	}
}

// TestCloseDrainsAndRejects: updates enqueued before Close are applied and
// published; entry points after Close fail with ErrClosed but the last
// snapshot stays acquirable.
func TestCloseDrainsAndRejects(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.2, 6)
	m := NewManager(g, Options{PublishDirty: 1 << 30, PublishInterval: time.Hour})

	u, v := g.EdgeEndpoints(3)
	if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close: %v", err)
	}
	if err := m.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v", err)
	}
	snap := m.Acquire()
	defer snap.Release()
	if snap.Graph().M() != g.M()-1 {
		t.Fatalf("close did not drain: m=%d, want %d", snap.Graph().M(), g.M()-1)
	}
	if snap.Graph().HasEdge(u, v) {
		t.Fatal("drained deletion not applied")
	}
}

// TestOfferContract locks in the load-shedding entry point: success on a
// free queue, false once the bounded queue is full (no blocking), false
// after Close.
func TestOfferContract(t *testing.T) {
	g := gen.ErdosRenyi(30, 0.2, 12)
	// A parked writer: huge thresholds and a tiny queue, so Offer outcomes
	// are deterministic once the queue fills.
	m := NewManager(g, Options{
		QueueSize:       2,
		PublishDirty:    1 << 30,
		PublishInterval: time.Hour,
	})
	u, v := g.EdgeEndpoints(0)
	// Saturate the 2-slot queue faster than the writer drains it; at least
	// one Offer must shed load (report false) instead of blocking.
	sawFull := false
	for i := 0; i < 10000 && !sawFull; i++ {
		if !m.Offer(Update{Op: OpRemove, U: u, V: v}) {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("Offer never reported a full queue despite a 2-slot buffer and 10k sends")
	}
	m.Close()
	if m.Offer(Update{Op: OpAdd, U: u, V: v}) {
		t.Fatal("Offer accepted an update after Close")
	}
	if err := m.Apply(Update{Op: OpAdd, U: u, V: v}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close: %v", err)
	}
}

// TestManagerFromIndex round-trips through the serializer and resumes
// serving without a fresh decomposition.
func TestManagerFromIndex(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.15, 8)
	ix := trussindex.Build(g)
	m := NewManagerFromIndex(ix, fastOpts())
	defer m.Close()

	snap := m.Acquire()
	if snap.Index() != ix {
		t.Fatal("epoch 1 should serve the provided index")
	}
	snap.Release()

	u, v := g.EdgeEndpoints(5)
	if err := m.Apply(Update{Op: OpRemove, U: u, V: v}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	snap = m.Acquire()
	defer snap.Release()
	checkSnapshotAgainstScratch(t, snap, [][]int{{0, 1}, {10, 20}})
}
