package serve

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/trussindex"
	"repro/internal/wal"
)

// OpenDurable opens (or initializes) a durable manager over the WAL
// directory dir.
//
// Fresh directory: base() supplies the starting index (a loaded snapshot or
// a build over the initial graph); it is persisted as the epoch-1 checkpoint
// *before* the manager accepts its first update, so from the very first
// acknowledged write the directory alone is sufficient to recover.
//
// Existing directory: base is not called. Recovery loads the newest
// checkpoint whose CRC trailer verifies — a checkpoint damaged on disk is
// skipped in favor of an older one, which the log's retained segments can
// still roll forward — then replays every logged batch above the
// checkpoint's sequence number through the incremental decomposition, and
// publishes the recovered state at an epoch equal to the log's last
// sequence number. Torn tails were already truncated by wal.Open; an
// interior corruption surfaces as ErrCorruptLog here rather than being
// silently skipped.
//
// The returned manager owns the log (closed by Manager.Close). recovered
// reports whether an existing directory was recovered (false for a fresh
// initialization).
func OpenDurable(dir string, base func() (*trussindex.Index, error), walOpts wal.Options, opts Options) (m *Manager, recovered bool, err error) {
	l, err := wal.Open(dir, walOpts)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		if err != nil {
			_ = l.Close()
		}
	}()
	opts.WAL = l

	var ix *trussindex.Index
	var ckSeq uint64
	cks := l.Checkpoints() // newest first
	for _, seq := range cks {
		got, rerr := loadCheckpoint(l, seq)
		if rerr != nil {
			if errors.Is(rerr, trussindex.ErrCorrupt) {
				// Damaged on disk; an older checkpoint plus the segments it
				// kept alive can still recover.
				continue
			}
			return nil, false, rerr
		}
		ix, ckSeq = got, seq
		break
	}

	if ix == nil {
		if len(cks) > 0 || l.LastSeq() > 0 {
			return nil, false, fmt.Errorf("serve: wal dir %s has no loadable checkpoint (%d present, all corrupt)", dir, len(cks))
		}
		// Fresh directory: checkpoint the base state first, so a crash at
		// any later point recovers at least epoch 1.
		ix, err = base()
		if err != nil {
			return nil, false, fmt.Errorf("serve: building base index: %w", err)
		}
		err = l.WriteCheckpoint(1, func(w io.Writer) error {
			_, werr := ix.WriteTo(w)
			return werr
		})
		if err != nil {
			return nil, false, fmt.Errorf("serve: writing initial checkpoint: %w", err)
		}
		m = newStoppedManager(incFromIndex(ix), ix, 0, opts)
		m.start()
		return m, false, nil
	}

	// Recovery: install the checkpoint at its own epoch, roll the log
	// forward on the stopped manager (no writer goroutine yet, so
	// applyUpdate is safe here), and publish the result at the log's last
	// sequence number.
	m = newStoppedManager(incFromIndex(ix), ix, int64(ckSeq)-1, opts)
	err = l.Replay(ckSeq, func(seq uint64, batch []wal.Update) error {
		for _, u := range batch {
			m.applyUpdate(Update{Op: Op(u.Op), U: u.U, V: u.V})
		}
		return nil
	})
	if err != nil {
		return nil, false, fmt.Errorf("serve: replaying wal: %w", err)
	}
	// Publish whenever the log extends past the checkpoint — even if every
	// replayed update was an idempotent duplicate (dirty == 0), the epoch
	// must land at the log's last sequence number so the next committed
	// batch's seq (epoch+1) cannot regress below it.
	if last := l.LastSeq(); last > ckSeq {
		m.epochBase = int64(last) - 1
		m.publish()
	}
	m.start()
	return m, true, nil
}

func loadCheckpoint(l *wal.Log, seq uint64) (*trussindex.Index, error) {
	rc, err := l.OpenCheckpoint(seq)
	if err != nil {
		return nil, err
	}
	ix, err := trussindex.ReadFrom(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return ix, err
}
