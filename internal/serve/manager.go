// Package serve is the live serving subsystem: a concurrency-safe index
// manager that ingests a stream of edge insertions and deletions while
// queries keep running, HTAP-style. A single writer goroutine owns the live
// graph and applies incremental truss maintenance (the dense relax-down
// cascade for deletions, localized shell re-decomposition for insertions);
// immutable trussindex snapshots are published through an epoch/RCU-style
// atomic pointer with refcounted retirement, so the query path never takes
// a lock and never observes a half-applied batch. The publisher re-freezes
// only when the dirty-edge count crosses a threshold or a deadline fires,
// amortizing index construction over update batches. When a rebase falls
// past Options.RebuildFraction into a full re-decomposition, the rebuild
// runs truss.DecomposeParallel, so the writer stall — and with it the
// maximum snapshot staleness — is bounded by the parallel build time rather
// than a single-core peel.
package serve

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/directed"
	"repro/internal/graph"
	"repro/internal/prob"
	"repro/internal/steiner"
	"repro/internal/telemetry"
	"repro/internal/truss"
	"repro/internal/trussindex"
	"repro/internal/wal"
)

// ErrClosed is returned by update entry points after Close.
var ErrClosed = errors.New("serve: manager closed")

// ErrDegraded is returned by update entry points after a write-ahead log
// failure has switched the manager to read-only degraded mode: queries keep
// serving the last published snapshot, but no update can be made durable, so
// none is accepted. The process must be restarted (recovering from the log)
// to leave this state.
var ErrDegraded = errors.New("serve: degraded (write-ahead log failure), updates disabled")

// ErrOverloaded is returned by Query/QueryBatch when admission control
// sheds the request before any work runs: the gate is at capacity and
// either the admission queue is full or the request's estimated start time
// already overruns its context deadline. Match with errors.Is; the HTTP
// layer maps it to 429 with a Retry-After hint (see admit.OverloadError).
var ErrOverloaded = admit.ErrOverloaded

// Op selects the kind of an Update.
type Op uint8

const (
	// OpAdd inserts an undirected edge (idempotent).
	OpAdd Op = iota
	// OpRemove deletes an undirected edge (idempotent).
	OpRemove
)

// Update is one streamed edge mutation.
type Update struct {
	Op   Op
	U, V int
}

// Options tunes the manager. The zero value selects the defaults.
type Options struct {
	// QueueSize bounds the update queue; Apply blocks (backpressure) when
	// it is full. Default 1024.
	QueueSize int
	// MaxBatch caps how many queued updates the writer applies before it
	// re-checks the publish conditions. Default 256.
	MaxBatch int
	// PublishDirty publishes a new snapshot once at least this many updates
	// have been applied since the last epoch. Default 64.
	PublishDirty int
	// PublishInterval is the staleness deadline: a snapshot is published at
	// the next tick whenever any update is pending, even below
	// PublishDirty. Default 200ms.
	PublishInterval time.Duration
	// RebuildFraction: when a rebase (foreign edges forced a new base
	// graph) carries more new edges than this fraction of the edge count,
	// the publisher falls back to a full re-decomposition instead of
	// inserting them one at a time into the incremental labels.
	// Default 0.2.
	RebuildFraction float64
	// OnPublish, when set, is called synchronously by the writer goroutine
	// after each epoch handoff, with the new snapshot still referenced by
	// the manager. Meant for tests and instrumentation; it must not call
	// Flush or Close.
	OnPublish func(*Snapshot)
	// WAL, when set, makes updates durable: the writer appends each drained
	// batch to the log and fsyncs (group commit) *before* applying it, so
	// every update that reaches the index is recoverable by replay. The
	// manager takes ownership and closes the log in Close. A log failure
	// switches the manager to read-only degraded mode (see ErrDegraded);
	// the failing batch is dropped before application, never half-applied.
	// Use OpenDurable to also get crash recovery on startup.
	WAL *wal.Log
	// CheckpointEvery writes a WAL checkpoint (full index snapshot, after
	// which covered segments are pruned) every this many publishes.
	// Default 32. Ignored without WAL.
	CheckpointEvery int
	// Admission configures the overload-protection layer every Query and
	// QueryBatch routes through: GOMAXPROCS-scaled concurrency limiting,
	// a bounded deadline-aware admission queue with per-tenant round-robin
	// fairness, and the epoch-keyed result cache. The zero value enables it
	// with defaults; set Admission.Disabled to bypass the gate (the cache
	// still applies unless Admission.CacheEntries < 0).
	Admission admit.Config
	// Metrics, when set, registers the manager's metric families
	// (ctc_epoch*, ctc_admission_*, ctc_cache_*, ctc_wal_*, ...) in the
	// registry at construction. Subsystem counters are read at scrape time
	// (func metrics); latency distributions record into histograms. One
	// registry must serve at most one manager (duplicate names panic).
	Metrics *telemetry.Registry
	// Tracer, when set, receives one QueryRecord per Query (and per
	// QueryBatch item): per-algo/per-tenant latency histograms, outcome
	// counters, phase breakdowns, and the slow-query log. Nil disables
	// per-query tracing at the cost of a single pointer check.
	Tracer *telemetry.Tracer
	// Logger, when set, receives structured writer-loop events: publishes
	// (Debug), full rebuilds and checkpoints (Info), fsync stalls and
	// rate-limited admission sheds (Warn), degraded transitions (Error).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.PublishDirty <= 0 {
		o.PublishDirty = 64
	}
	if o.PublishInterval <= 0 {
		o.PublishInterval = 200 * time.Millisecond
	}
	if o.RebuildFraction <= 0 {
		o.RebuildFraction = 0.2
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 32
	}
	return o
}

// Stats is a point-in-time view of the manager, cheap enough for a /stats
// endpoint polled under load.
type Stats struct {
	Epoch         int64         `json:"epoch"`
	SnapshotAge   time.Duration `json:"snapshot_age"`
	FullRebuild   bool          `json:"snapshot_full_rebuild"`
	Vertices      int           `json:"n"`
	Edges         int           `json:"m"`
	MaxTruss      int32         `json:"max_truss"`
	Dirty         int64         `json:"dirty"`
	QueueLen      int           `json:"queue_len"`
	Publishes     int64         `json:"publishes"`
	FullRebuilds  int64         `json:"full_rebuilds"`
	LiveSnapshots int64         `json:"live_snapshots"`
	Retired       int64         `json:"retired_snapshots"`
	Adds          int64         `json:"applied_adds"`
	Removes       int64         `json:"applied_removes"`
	Rejected      int64         `json:"rejected_ops"`

	// Overload-protection observability (PR 7). QueriesExecuted counts
	// queries that actually acquired a snapshot and ran; it must always
	// equal QueriesAdmitted minus the queries still in flight — a rejected
	// request consuming a workspace would break that invariant, and the
	// overload harness fails the build on it.
	QueriesAdmitted  int64                           `json:"queries_admitted"`
	QueriesExecuted  int64                           `json:"queries_executed"`
	ShedDeadline     int64                           `json:"queries_shed_deadline"`
	ShedQueueFull    int64                           `json:"queries_shed_queue_full"`
	CanceledInQueue  int64                           `json:"queries_canceled_in_queue"`
	QueryQueueDepth  int                             `json:"query_queue_depth"`
	QueryInflight    int                             `json:"query_inflight"`
	Overloaded       bool                            `json:"overloaded"`
	EstCostNSPerUnit int64                           `json:"est_cost_ns_per_unit"`
	CacheHits        int64                           `json:"cache_hits"`
	CacheMisses      int64                           `json:"cache_misses"`
	CacheEntries     int                             `json:"cache_entries"`
	CacheHitRatio    float64                         `json:"cache_hit_ratio"`
	Tenants          map[string]admit.TenantCounters `json:"tenants,omitempty"`

	// Durability observability; zero values when no WAL is configured.
	WALEnabled       bool   `json:"wal_enabled"`
	Degraded         bool   `json:"degraded"`
	WALLastError     string `json:"wal_last_error,omitempty"`
	WALLastSeq       uint64 `json:"wal_last_seq"`
	WALDurableSeq    uint64 `json:"wal_durable_seq"`
	WALCheckpointSeq uint64 `json:"wal_checkpoint_seq"`
	WALSegments      int    `json:"wal_segments"`
	WALBytes         int64  `json:"wal_bytes"`
	WALAppends       int64  `json:"wal_appends"`
	WALSyncs         int64  `json:"wal_syncs"`
	WALLastFsyncUS   int64  `json:"wal_last_fsync_us"`
	WALDropped       int64  `json:"wal_dropped_updates"`
}

type msg struct {
	up    Update
	flush chan struct{}
}

// Manager owns the live graph and publishes query snapshots. Create with
// NewManager or NewManagerFromIndex, feed updates through Apply, read with
// Acquire/Release, and Close when done (the last snapshot stays queryable).
type Manager struct {
	opts Options
	cur  atomic.Pointer[Snapshot]

	msgs chan msg
	quit chan struct{}
	done chan struct{}

	// sendMu serializes enqueueing against Close: senders hold the read
	// side, Close takes the write side before closing quit, so an update
	// acknowledged by Apply/Offer/Flush is guaranteed to be drained by the
	// writer (never stranded in the channel). This lock is on the update
	// path only — queries go through Acquire, which stays lock-free.
	sendMu sync.RWMutex
	closed bool // guarded by sendMu

	// Writer-goroutine state: the incremental decomposition over the
	// current base graph, inserts that fall outside its edge-ID space
	// (applied at the next rebase), and the count of applied-but-
	// unpublished updates.
	inc     *truss.Incremental
	pending map[graph.EdgeKey]bool
	dirty   int
	// epochBase floors the next installed epoch: recovery sets it so the
	// post-replay publish lands at the WAL's last sequence number, keeping
	// epoch == WAL seq across restarts. Zero for a fresh manager.
	epochBase int64
	// sinceCkpt counts publishes since the last WAL checkpoint.
	sinceCkpt int

	// Counters shared with readers.
	dirtyGauge atomic.Int64
	publishes  atomic.Int64
	fulls      atomic.Int64
	adds       atomic.Int64
	removes    atomic.Int64
	rejected   atomic.Int64
	retired    atomic.Int64
	liveSnaps  atomic.Int64

	// Degraded-mode state: set by the writer on a WAL failure, read by the
	// update entry points and /stats.
	degraded   atomic.Bool
	walErr     atomic.Value // string: the failure that degraded the manager
	walDropped atomic.Int64

	// Overload-protection layer (PR 7): every Query/QueryBatch passes the
	// admission gate before it may acquire a snapshot reference or a pooled
	// workspace, consults the epoch-keyed result cache first, and feeds the
	// cost estimator's calibration on completion. execQ counts queries that
	// actually reached a snapshot — the overload harness asserts it equals
	// the gate's admitted count, proving shed requests consumed nothing.
	gate  *admit.Controller
	cache *admit.Cache
	est   *admit.Estimator
	execQ atomic.Int64

	// Telemetry plane (PR 8): all optional. tracer/logger are read-only
	// after construction; metrics holds the recording histogram handles
	// (nil-safe when Options.Metrics is unset); lastShedLog rate-limits the
	// shed warning.
	tracer      *telemetry.Tracer
	logger      *slog.Logger
	metrics     managerMetrics
	lastShedLog atomic.Int64
}

// NewManager builds the epoch-1 snapshot from g (running a full truss
// decomposition) and starts the writer goroutine.
func NewManager(g *graph.Graph, opts Options) *Manager {
	return newManager(truss.NewIncremental(g), nil, opts)
}

// NewManagerFromIndex starts from a prebuilt (e.g. deserialized) index
// without re-decomposing: the index's graph and labels seed both the
// epoch-1 snapshot and the live state.
func NewManagerFromIndex(ix *trussindex.Index, opts Options) *Manager {
	return newManager(incFromIndex(ix), ix, opts)
}

// incFromIndex resumes incremental maintenance from a deserialized index's
// graph and labels without re-decomposing.
func incFromIndex(ix *trussindex.Index) *truss.Incremental {
	d := ix.Decomposition()
	return truss.ResumeIncremental(
		graph.NewMutable(ix.Graph(), nil),
		append([]int32(nil), d.Truss...),
	)
}

func newManager(inc *truss.Incremental, ix0 *trussindex.Index, opts Options) *Manager {
	m := newStoppedManager(inc, ix0, 0, opts)
	m.start()
	return m
}

// newStoppedManager wires the writer state and installs the first epoch
// (epochBase+1): the provided index when resuming from one, otherwise a
// fresh build of inc's state. The writer goroutine is NOT started — the
// recovery path replays the WAL into the stopped manager first; call start
// when the state is ready to serve updates.
func newStoppedManager(inc *truss.Incremental, ix0 *trussindex.Index, epochBase int64, opts Options) *Manager {
	m := &Manager{
		opts:      opts.withDefaults(),
		inc:       inc,
		pending:   make(map[graph.EdgeKey]bool),
		epochBase: epochBase,
	}
	m.gate = admit.NewController(m.opts.Admission)
	cacheMax := m.opts.Admission.CacheEntries
	if cacheMax == 0 {
		cacheMax = 1024
	}
	m.cache = admit.NewCache(cacheMax)
	m.est = admit.NewEstimator(m.opts.Admission.InitialCostNS)
	m.msgs = make(chan msg, m.opts.QueueSize)
	m.quit = make(chan struct{})
	m.done = make(chan struct{})
	m.tracer = m.opts.Tracer
	m.logger = m.opts.Logger
	if m.opts.Metrics != nil {
		// Before the first publish and before WAL recovery, so the initial
		// build and replay-time fsyncs land in the histograms.
		m.registerMetrics(m.opts.Metrics)
	}
	if ix0 != nil {
		m.install(ix0, ix0.Graph(), false)
	} else {
		m.publish()
	}
	return m
}

func (m *Manager) start() { go m.run() }

// send enqueues mg unless the manager is closed. A true return guarantees
// the writer will drain the message (the close sequence waits out in-flight
// senders before stopping).
func (m *Manager) send(mg msg) bool {
	m.sendMu.RLock()
	defer m.sendMu.RUnlock()
	if m.closed {
		return false
	}
	m.msgs <- mg
	return true
}

// Apply enqueues one update, blocking while the bounded queue is full.
// Returns ErrDegraded once a WAL failure has made the manager read-only.
func (m *Manager) Apply(up Update) error {
	if m.degraded.Load() {
		return ErrDegraded
	}
	if !m.send(msg{up: up}) {
		return ErrClosed
	}
	return nil
}

// Offer enqueues one update without blocking; reports false if the queue is
// full, the manager is closed, or the manager is degraded (load-shedding
// entry point).
func (m *Manager) Offer(up Update) bool {
	if m.degraded.Load() {
		return false
	}
	m.sendMu.RLock()
	defer m.sendMu.RUnlock()
	if m.closed {
		return false
	}
	select {
	case m.msgs <- msg{up: up}:
		return true
	default:
		return false
	}
}

// Flush blocks until every update enqueued before the call has been applied
// and, if any state changed, a fresh snapshot has been published. It returns
// ErrDegraded if the manager is (or becomes) degraded, in which case updates
// enqueued before the call may have been dropped rather than applied.
func (m *Manager) Flush() error {
	ack := make(chan struct{})
	if !m.send(msg{flush: ack}) {
		return ErrClosed
	}
	<-ack
	if m.degraded.Load() {
		return ErrDegraded
	}
	return nil
}

// Degraded reports whether a WAL failure has made the manager read-only.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// Close stops the writer after draining the queue and publishing any
// remaining changes, then closes the WAL if one was configured (the manager
// owns it). The final snapshot remains acquirable; updates after Close fail
// with ErrClosed. Safe to call more than once.
func (m *Manager) Close() {
	m.sendMu.Lock()
	already := m.closed
	m.closed = true
	m.sendMu.Unlock()
	if !already {
		close(m.quit)
	}
	<-m.done
	if !already && m.opts.WAL != nil {
		_ = m.opts.WAL.Close()
	}
}

// Query answers one community search against the latest published epoch,
// routed through the overload-protection layer:
//
//  1. an already-cancelled ctx is rejected before anything else — it never
//     touches the snapshot refcount or the workspace pool;
//  2. validation and the cache lookup run against the current snapshot
//     *without* taking a reference (its graph and index are immutable, and
//     a shed request must stay refcount-free);
//  3. a cache hit under the current epoch returns immediately, bypassing
//     admission — cached answers cost no capacity, which is what keeps
//     repeat-heavy traffic served even while the gate is shedding;
//  4. otherwise the request passes the admission gate (deadline-aware,
//     per-tenant fair; ErrOverloaded when shed) before the snapshot is
//     acquired and the search runs.
//
// The snapshot's epoch is stamped into the result's stats, so callers can
// correlate answers with /stats staleness. Cancellation flows through ctx
// into the search (a disconnected HTTP client sheds its in-flight query and
// frees its queue slot); the snapshot reference is released even on
// cancellation, so retirement is never blocked by abandoned queries.
//
// With Options.Tracer set, every call is also recorded into the telemetry
// plane (outcome counters, latency histograms, the slow-query log); the
// instrumentation is two clock reads and a handful of atomic adds — no
// allocations, no locks.
func (m *Manager) Query(ctx context.Context, req core.Request) (*core.Result, error) {
	if m.tracer == nil {
		return m.query(ctx, req)
	}
	t0 := time.Now()
	res, err := m.query(ctx, req)
	m.observeQuery(req, res, err, time.Since(t0))
	return res, err
}

func (m *Manager) query(ctx context.Context, req core.Request) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur := m.cur.Load()
	if err := req.Validate(cur.g.N()); err != nil {
		return nil, err
	}
	if res, cerr, ok := m.cache.Get(cur.epoch, req); ok {
		return cachedResult(res, cerr, req)
	}
	units := m.est.Units(cur.ix, req)
	t0 := time.Now()
	release, aerr := m.gate.Acquire(ctx, req.Tenant, m.est.Duration(units))
	if aerr != nil {
		return nil, aerr
	}
	defer release()
	wait := time.Since(t0)

	snap := m.Acquire()
	defer snap.Release()
	m.execQ.Add(1)
	e0 := time.Now()
	res, err := snap.Query(ctx, req)
	m.est.Observe(units, time.Since(e0))
	if err != nil {
		if cacheableErr(err) {
			m.cache.Put(snap.epoch, req, nil, err)
		}
		return nil, err
	}
	res.Stats.QueueWait = wait
	res.Stats.Tenant = req.Tenant
	m.cache.Put(snap.epoch, req, res, nil)
	return res, nil
}

// cachedResult materializes a cache hit: the stored Result is shared, so
// the caller gets a shallow copy with per-request stats restamped (the
// phase timings keep describing the execution that populated the entry).
func cachedResult(res *core.Result, err error, req core.Request) (*core.Result, error) {
	if err != nil {
		return nil, err
	}
	cp := *res
	cp.Stats.CacheHit = true
	cp.Stats.QueueWait = 0
	cp.Stats.Tenant = req.Tenant
	return &cp, nil
}

// cacheableErr reports whether a query failure is a deterministic property
// of the epoch (and therefore cacheable): the "no such community" shapes of
// every model. Cancellation and internal errors are never cached.
func cacheableErr(err error) bool {
	return errors.Is(err, trussindex.ErrNoCommunity) ||
		errors.Is(err, truss.ErrNoCommunity) ||
		errors.Is(err, steiner.ErrDisconnected) ||
		errors.Is(err, directed.ErrNoCommunity) ||
		errors.Is(err, prob.ErrNoCommunity) ||
		errors.Is(err, baseline.ErrNoCommunity)
}

// QueryBatch answers the requests in order against one latest-epoch
// snapshot on one pooled workspace (see core.Searcher.SearchBatch); every
// result is stamped with the snapshot's epoch, so the batch is also an
// atomic read — all answers describe the same graph state. The batch
// passes the admission gate once, with the summed cost estimate of its
// cache misses; individual cache hits are filled in without consuming
// capacity.
//
// With Options.Tracer set, each item is recorded individually (using its
// own phase breakdown; the total for an item is its pipeline time plus the
// batch's shared queue wait).
func (m *Manager) QueryBatch(ctx context.Context, reqs []core.Request) ([]core.BatchItem, error) {
	items, err := m.queryBatch(ctx, reqs)
	if m.tracer != nil {
		for i := range items {
			res := items[i].Result
			total := time.Duration(0)
			if res != nil {
				total = res.Stats.TotalWithQueue()
			}
			m.observeQuery(reqs[i], res, items[i].Err, total)
		}
	}
	return items, err
}

func (m *Manager) queryBatch(ctx context.Context, reqs []core.Request) ([]core.BatchItem, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	items := make([]core.BatchItem, len(reqs))
	if len(reqs) == 0 {
		return items, nil
	}
	cur := m.cur.Load()
	n := cur.g.N()
	var missIdx []int
	var units int64
	var tenant string
	for i := range reqs {
		if reqs[i].Tenant != "" {
			tenant = reqs[i].Tenant
		}
		if err := reqs[i].Validate(n); err != nil {
			items[i].Err = err
			continue
		}
		if res, cerr, ok := m.cache.Get(cur.epoch, reqs[i]); ok {
			r, e := cachedResult(res, cerr, reqs[i])
			items[i] = core.BatchItem{Result: r, Err: e}
			continue
		}
		missIdx = append(missIdx, i)
		units += m.est.Units(cur.ix, reqs[i])
	}
	if len(missIdx) == 0 {
		return items, nil
	}
	t0 := time.Now()
	release, aerr := m.gate.Acquire(ctx, tenant, m.est.Duration(units))
	if aerr != nil {
		for _, i := range missIdx {
			items[i].Err = aerr
		}
		return items, aerr
	}
	defer release()
	wait := time.Since(t0)

	snap := m.Acquire()
	defer snap.Release()
	m.execQ.Add(1)
	if snap.epoch != cur.epoch {
		// A publish raced the cache pass. Cached answers came from the old
		// epoch, so recompute everything instead of mixing graph states —
		// the batch must stay an atomic read of one epoch.
		missIdx = missIdx[:0]
		for i := range reqs {
			if err := reqs[i].Validate(n); err == nil {
				items[i] = core.BatchItem{}
				missIdx = append(missIdx, i)
			}
		}
	}
	miss := make([]core.Request, len(missIdx))
	for j, i := range missIdx {
		miss[j] = reqs[i]
	}
	e0 := time.Now()
	sub, err := snap.searcher.SearchBatch(ctx, miss)
	m.est.Observe(units, time.Since(e0))
	for j, i := range missIdx {
		items[i] = sub[j]
		if r := sub[j].Result; r != nil {
			r.Stats.Epoch = snap.epoch
			r.Stats.QueueWait = wait
			r.Stats.Tenant = reqs[i].Tenant
			m.cache.Put(snap.epoch, reqs[i], r, nil)
		} else if cacheableErr(sub[j].Err) {
			m.cache.Put(snap.epoch, reqs[i], nil, sub[j].Err)
		}
	}
	return items, err
}

// Overloaded reports whether the admission gate is currently shedding or
// saturated (queue non-empty, or a shed within the last second). /healthz
// uses it to distinguish "overloaded" from WAL-failure "degraded".
func (m *Manager) Overloaded() bool { return m.gate.Overloaded() }

// Stats assembles the current counters and snapshot dimensions.
func (m *Manager) Stats() Stats {
	s := m.Acquire()
	defer s.Release()
	st := Stats{
		Epoch:         s.epoch,
		SnapshotAge:   time.Since(s.created),
		FullRebuild:   s.full,
		Vertices:      s.g.N(),
		Edges:         s.g.M(),
		MaxTruss:      s.ix.MaxTruss(),
		Dirty:         m.dirtyGauge.Load(),
		QueueLen:      len(m.msgs),
		Publishes:     m.publishes.Load(),
		FullRebuilds:  m.fulls.Load(),
		LiveSnapshots: m.liveSnaps.Load(),
		Retired:       m.retired.Load(),
		Adds:          m.adds.Load(),
		Removes:       m.removes.Load(),
		Rejected:      m.rejected.Load(),
	}
	if w := m.opts.WAL; w != nil {
		ws := w.Stats()
		st.WALEnabled = true
		st.WALLastSeq = ws.LastSeq
		st.WALDurableSeq = ws.DurableSeq
		st.WALCheckpointSeq = ws.CheckpointSeq
		st.WALSegments = ws.Segments
		st.WALBytes = ws.Bytes
		st.WALAppends = ws.Appends
		st.WALSyncs = ws.Syncs
		st.WALLastFsyncUS = ws.LastSyncTime.Microseconds()
	}
	st.Degraded = m.degraded.Load()
	if e, ok := m.walErr.Load().(string); ok {
		st.WALLastError = e
	}
	st.WALDropped = m.walDropped.Load()

	ac := m.gate.Counters()
	st.QueriesAdmitted = ac.Admitted
	st.QueriesExecuted = m.execQ.Load()
	st.ShedDeadline = ac.ShedDeadline
	st.ShedQueueFull = ac.ShedQueueFull
	st.CanceledInQueue = ac.CanceledInQueue
	st.QueryQueueDepth = ac.QueueDepth
	st.QueryInflight = ac.Inflight
	st.Overloaded = m.gate.Overloaded()
	st.EstCostNSPerUnit = m.est.CostNS()
	st.Tenants = ac.Tenants
	cs := m.cache.Stats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheEntries = cs.Entries
	if total := cs.Hits + cs.Misses; total > 0 {
		st.CacheHitRatio = float64(cs.Hits) / float64(total)
	}
	return st
}

// run is the writer goroutine: it drains the update queue in batches,
// maintains the incremental decomposition, and publishes snapshots when the
// dirty threshold or the staleness deadline is hit.
func (m *Manager) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.opts.PublishInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.quit:
			m.drainOnClose()
			return
		case mg := <-m.msgs:
			ups, flushes := m.collectBatch(mg)
			m.commitAndApply(ups)
			if len(flushes) > 0 {
				if m.dirty > 0 {
					m.publish()
				}
				for _, ch := range flushes {
					close(ch)
				}
			} else if m.dirty >= m.opts.PublishDirty {
				m.publish()
			}
		case <-ticker.C:
			if m.dirty > 0 {
				m.publish()
			}
		}
	}
}

// collectBatch gathers the first message plus up to MaxBatch-1 more that
// are already queued, preserving order, without applying anything — the
// caller commits the batch to the WAL first (commitAndApply). Flush markers
// encountered are collected and acknowledged by the caller after the
// publish decision.
func (m *Manager) collectBatch(first msg) (ups []Update, flushes []chan struct{}) {
	mg := first
	for n := 0; ; {
		if mg.flush != nil {
			flushes = append(flushes, mg.flush)
			// Order guarantees every earlier update is committed and
			// applied; stop here so the flush acknowledgment is not delayed
			// by later traffic.
			return ups, flushes
		}
		ups = append(ups, mg.up)
		if n++; n >= m.opts.MaxBatch {
			return ups, flushes
		}
		select {
		case mg = <-m.msgs:
		default:
			return ups, flushes
		}
	}
}

// commitAndApply makes one drained batch durable, then applies it. This is
// the write-ahead ordering invariant: nothing mutates the incremental state
// until the log's fsync has covered it, so a crash at any instant recovers
// a state at least as new as every acknowledged flush and never newer than
// the log. The whole batch shares one record and one group-commit fsync.
//
// On a WAL failure the batch is dropped *before* application — the served
// index never diverges from the log — and the manager degrades to
// read-only rather than panicking or silently continuing non-durably.
func (m *Manager) commitAndApply(ups []Update) {
	if len(ups) == 0 {
		return
	}
	if m.degraded.Load() {
		m.walDropped.Add(int64(len(ups)))
		return
	}
	if w := m.opts.WAL; w != nil {
		// Batches committed between publish E and E+1 all carry seq E+1:
		// the record's sequence number is the epoch whose snapshot first
		// contains it, which is what checkpoint pruning and replay key on.
		seq := uint64(m.cur.Load().epoch) + 1
		wb := make([]wal.Update, len(ups))
		for i, u := range ups {
			wb[i] = wal.Update{Op: wal.Op(u.Op), U: u.U, V: u.V}
		}
		if err := w.Append(seq, wb); err != nil {
			m.degrade("append", err, len(ups))
			return
		}
		s0 := time.Now()
		if err := w.Sync(); err != nil {
			m.degrade("sync", err, len(ups))
			return
		}
		m.logFsyncStall(time.Since(s0), len(ups))
	}
	for _, u := range ups {
		m.applyUpdate(u)
	}
}

// degrade records a WAL failure and switches the manager to read-only mode.
// Runs on the writer goroutine.
func (m *Manager) degrade(stage string, err error, dropped int) {
	m.walErr.Store(stage + ": " + err.Error())
	m.degraded.Store(true)
	m.walDropped.Add(int64(dropped))
	m.logDegraded(stage, err, dropped)
}

// drainOnClose commits and applies everything still queued, publishes once
// if anything changed, and acknowledges pending flushes.
func (m *Manager) drainOnClose() {
	var flushes []chan struct{}
	var ups []Update
	for {
		select {
		case mg := <-m.msgs:
			if mg.flush != nil {
				flushes = append(flushes, mg.flush)
			} else {
				ups = append(ups, mg.up)
			}
		default:
			m.commitAndApply(ups)
			if m.dirty > 0 {
				m.publish()
			}
			for _, ch := range flushes {
				close(ch)
			}
			return
		}
	}
}

func (m *Manager) markDirty() {
	m.dirty++
	m.dirtyGauge.Store(int64(m.dirty))
}

// applyUpdate routes one update into the incremental decomposition (base
// edges) or the pending-foreign set (edges outside the current base's
// edge-ID space, merged at the next rebase). Idempotent duplicates are
// dropped silently; structurally invalid ops count as rejected.
func (m *Manager) applyUpdate(up Update) {
	u, v := up.U, up.V
	if u == v || u < 0 || v < 0 || u > graph.MaxVertexID || v > graph.MaxVertexID {
		m.rejected.Add(1)
		return
	}
	base := m.inc.Graph().Base()
	key := graph.Key(u, v)
	switch up.Op {
	case OpAdd:
		if e := base.EdgeID(u, v); e >= 0 {
			if m.inc.InsertEdgeByID(e) {
				m.adds.Add(1)
				m.markDirty()
			}
		} else if !m.pending[key] {
			m.pending[key] = true
			m.adds.Add(1)
			m.markDirty()
		}
	case OpRemove:
		if m.pending[key] {
			delete(m.pending, key)
			m.removes.Add(1)
			m.markDirty()
		} else if m.inc.DeleteEdge(u, v) {
			m.removes.Add(1)
			m.markDirty()
		}
	default:
		m.rejected.Add(1)
	}
}

// publish freezes the live state into an immutable snapshot and installs it
// as the new epoch. Runs on the writer goroutine only (and once from
// newManager before the goroutine starts).
func (m *Manager) publish() {
	t0 := time.Now()
	applied := m.dirty
	full := false
	if len(m.pending) > 0 {
		full = m.rebase()
	}
	d := m.inc.Snapshot()
	m.install(trussindex.BuildFromDecomposition(d.G, d), d.G, full)
	dur := time.Since(t0)
	m.metrics.publishLatency.Observe(dur)
	m.logPublish(m.cur.Load().epoch, full, applied, dur)
	m.maybeCheckpoint()
}

// maybeCheckpoint writes a WAL checkpoint of the just-published snapshot
// every CheckpointEvery publishes: the index is serialized (with its own
// CRC trailer) to checkpoint-<epoch>.ctc and the log prunes every segment
// the checkpoint covers. Runs on the writer goroutine, so updates stall for
// the serialization — bounded by index size, and amortized by
// CheckpointEvery. A checkpoint failure degrades the manager: the log
// itself may be intact, but a storage layer that cannot complete an atomic
// rename cannot be trusted with the next append either.
func (m *Manager) maybeCheckpoint() {
	w := m.opts.WAL
	if w == nil || m.degraded.Load() {
		return
	}
	if m.sinceCkpt++; m.sinceCkpt < m.opts.CheckpointEvery {
		return
	}
	snap := m.cur.Load()
	c0 := time.Now()
	err := w.WriteCheckpoint(uint64(snap.epoch), func(dst io.Writer) error {
		_, err := snap.ix.WriteTo(dst)
		return err
	})
	if err != nil {
		m.degrade("checkpoint", err, 0)
		return
	}
	dur := time.Since(c0)
	m.metrics.checkpointLatency.Observe(dur)
	m.logCheckpoint(snap.epoch, dur)
	m.sinceCkpt = 0
}

// install makes (ix, g) the new epoch and releases the manager's reference
// on the previous one.
func (m *Manager) install(ix *trussindex.Index, g *graph.Graph, full bool) {
	prev := m.cur.Load()
	epoch := m.epochBase + 1
	if prev != nil && prev.epoch+1 > epoch {
		epoch = prev.epoch + 1
	}
	snap := &Snapshot{
		epoch:    epoch,
		ix:       ix,
		g:        g,
		created:  time.Now(),
		full:     full,
		searcher: core.NewSearcher(ix),
		mgr:      m,
	}
	snap.refs.Store(1) // the manager's own reference
	m.liveSnaps.Add(1)
	m.cur.Store(snap)
	m.dirty = 0
	m.dirtyGauge.Store(0)
	m.publishes.Add(1)
	if full {
		m.fulls.Add(1)
	}
	if m.opts.OnPublish != nil {
		m.opts.OnPublish(snap)
	}
	// Publish invalidates the result cache by construction (the epoch is
	// part of every key); the sweep just frees the stale generation's
	// memory promptly instead of waiting for LRU churn.
	m.cache.Sweep(epoch)
	if prev != nil {
		prev.Release()
	}
}

// rebase folds the pending foreign edges into a new base graph (growing the
// vertex-ID space just enough for the *currently* pending endpoints — a
// cancelled pending add must not inflate it) and rebuilds the incremental
// state over it: old labels are carried over by edge key and each foreign
// edge is then inserted through the localized shell re-decomposition —
// unless the batch is large relative to the graph, in which case a full
// decomposition is cheaper. Reports whether the full path ran.
func (m *Manager) rebase() (full bool) {
	live := m.inc.Graph()
	base := live.Base()
	needN := base.N()
	for key := range m.pending {
		if _, v := key.Endpoints(); v >= needN {
			needN = v + 1 // v is the larger endpoint
		}
	}
	b := graph.NewBuilder(needN, live.M()+len(m.pending))
	if needN > 0 {
		b.EnsureVertex(needN - 1)
	}
	live.ForEachLiveEdge(func(_ int32, u, v int) { b.AddEdge(u, v) })
	foreign := make([]graph.EdgeKey, 0, len(m.pending))
	for key := range m.pending {
		u, v := key.Endpoints()
		b.AddEdge(u, v)
		foreign = append(foreign, key)
	}
	ng := b.Build()
	full = float64(len(foreign)) > m.opts.RebuildFraction*float64(ng.M())
	if full || live.M() == 0 {
		m.inc = truss.NewIncremental(ng)
		full = true
	} else {
		// Start with the foreign edges dead and the old labels mapped onto
		// the new edge-ID space — an exact decomposition of that state —
		// then insert the foreign edges one at a time.
		mu := graph.NewMutable(ng, nil)
		tau := make([]int32, ng.M())
		for e := int32(0); e < int32(ng.M()); e++ {
			u, v := ng.EdgeEndpoints(e)
			if old := base.EdgeID(u, v); old >= 0 && live.EdgeAlive(old) {
				tau[e] = m.inc.EdgeTau(old)
			} else {
				mu.DeleteEdgeByID(e)
			}
		}
		inc := truss.ResumeIncremental(mu, tau)
		for _, key := range foreign {
			u, v := key.Endpoints()
			inc.InsertEdgeByID(ng.EdgeID(u, v))
		}
		m.inc = inc
	}
	clear(m.pending)
	return full
}
