package serve

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trussindex"
)

// fsyncStallThreshold: a group-commit fsync slower than this is logged as a
// stall — on healthy local storage an fsync is well under a millisecond, so
// 100ms means the disk (or the fault-injection FS) is misbehaving.
const fsyncStallThreshold = 100 * time.Millisecond

// shedLogInterval rate-limits the admission-shed warning: under sustained
// overload every rejected request would otherwise emit a log line, turning
// the log itself into a second overload victim.
const shedLogInterval = time.Second

// managerMetrics holds the manager's sample-recording metric handles (the
// scrape-time func metrics need no handles). All nil when Options.Metrics
// is unset; every recording site is nil-safe.
type managerMetrics struct {
	publishLatency    *telemetry.Histogram
	checkpointLatency *telemetry.Histogram
	walFsync          *telemetry.Histogram
}

// registerMetrics registers the manager's metric families in
// opts.Metrics. Counters the subsystems already keep (gate, cache, WAL,
// workspace pool, the manager's own atomics) are exposed as func metrics
// read at scrape time; only per-sample latency distributions get recording
// handles. Called once from newStoppedManager, before the writer goroutine
// starts and before WAL recovery replays — so fsync latencies during replay
// are already captured.
func (m *Manager) registerMetrics(reg *telemetry.Registry) {
	// --- Serving plane: epochs, snapshots, the update queue. ---
	reg.NewGaugeFunc("ctc_epoch",
		"Epoch of the currently served snapshot.",
		func() float64 { return float64(m.cur.Load().epoch) })
	reg.NewGaugeFunc("ctc_epoch_age_seconds",
		"Age of the currently served snapshot.",
		func() float64 { return time.Since(m.cur.Load().created).Seconds() })
	reg.NewGaugeFunc("ctc_snapshots_live",
		"Snapshots not yet retired (current plus any pinned by in-flight queries).",
		func() float64 { return float64(m.liveSnaps.Load()) })
	reg.NewCounterFunc("ctc_snapshots_retired_total",
		"Snapshots whose refcount reached zero and were retired.",
		func() int64 { return m.retired.Load() })
	reg.NewGaugeFunc("ctc_update_queue_depth",
		"Updates waiting in the writer's queue.",
		func() float64 { return float64(len(m.msgs)) })
	reg.NewGaugeFunc("ctc_update_queue_capacity",
		"Capacity of the writer's update queue.",
		func() float64 { return float64(cap(m.msgs)) })
	reg.NewGaugeFunc("ctc_dirty_updates",
		"Updates applied since the last publish (pending in the next snapshot).",
		func() float64 { return float64(m.dirtyGauge.Load()) })
	reg.NewCounterFunc("ctc_publishes_total",
		"Snapshot publishes (epoch handoffs).",
		func() int64 { return m.publishes.Load() })
	reg.NewCounterFunc("ctc_full_rebuilds_total",
		"Publishes that fell back to a full re-decomposition.",
		func() int64 { return m.fulls.Load() })
	reg.NewCounterFunc("ctc_updates_added_total",
		"Edge insertions applied.", func() int64 { return m.adds.Load() })
	reg.NewCounterFunc("ctc_updates_removed_total",
		"Edge deletions applied.", func() int64 { return m.removes.Load() })
	reg.NewCounterFunc("ctc_updates_rejected_total",
		"Structurally invalid updates rejected.", func() int64 { return m.rejected.Load() })
	reg.NewGaugeFunc("ctc_graph_vertices",
		"Vertices in the served snapshot.",
		func() float64 { return float64(m.cur.Load().g.N()) })
	reg.NewGaugeFunc("ctc_graph_edges",
		"Edges in the served snapshot.",
		func() float64 { return float64(m.cur.Load().g.M()) })
	reg.NewGaugeFunc("ctc_max_truss",
		"Maximum trussness in the served snapshot.",
		func() float64 { return float64(m.cur.Load().ix.MaxTruss()) })
	reg.NewGaugeFunc("ctc_degraded",
		"1 while the manager is read-only after a WAL failure, else 0.",
		func() float64 {
			if m.degraded.Load() {
				return 1
			}
			return 0
		})
	m.metrics.publishLatency = reg.NewHistogram("ctc_publish_duration_seconds",
		"Wall time of one publish: rebase (if pending foreign edges), index freeze, epoch install.", nil)

	// --- Admission plane. ---
	reg.NewCounterFunc("ctc_admission_admitted_total",
		"Queries admitted by the gate.",
		func() int64 { a, _, _, _, _, _ := m.gate.QuickCounters(); return a })
	reg.NewCounterFunc("ctc_admission_shed_deadline_total",
		"Queries shed because their estimated start overran the deadline.",
		func() int64 { _, d, _, _, _, _ := m.gate.QuickCounters(); return d })
	reg.NewCounterFunc("ctc_admission_shed_queue_full_total",
		"Queries shed because the admission queue was full.",
		func() int64 { _, _, q, _, _, _ := m.gate.QuickCounters(); return q })
	reg.NewCounterFunc("ctc_admission_canceled_total",
		"Queries canceled while waiting in the admission queue.",
		func() int64 { _, _, _, c, _, _ := m.gate.QuickCounters(); return c })
	reg.NewGaugeFunc("ctc_admission_queue_depth",
		"Requests waiting in the admission queue.",
		func() float64 { _, _, _, _, q, _ := m.gate.QuickCounters(); return float64(q) })
	reg.NewGaugeFunc("ctc_admission_inflight",
		"Queries currently holding a concurrency slot.",
		func() float64 { _, _, _, _, _, i := m.gate.QuickCounters(); return float64(i) })
	reg.NewCounterFunc("ctc_queries_executed_total",
		"Queries that acquired a snapshot and ran (admitted minus still in flight).",
		func() int64 { return m.execQ.Load() })

	// --- Result cache. ---
	reg.NewCounterFunc("ctc_cache_hits_total",
		"Result-cache hits.", func() int64 { return m.cache.Stats().Hits })
	reg.NewCounterFunc("ctc_cache_misses_total",
		"Result-cache misses.", func() int64 { return m.cache.Stats().Misses })
	reg.NewGaugeFunc("ctc_cache_entries",
		"Live result-cache entries.", func() float64 { return float64(m.cache.Stats().Entries) })
	reg.NewGaugeFunc("ctc_cache_hit_ratio",
		"Lifetime cache hit ratio (hits / (hits + misses)).",
		func() float64 {
			cs := m.cache.Stats()
			if total := cs.Hits + cs.Misses; total > 0 {
				return float64(cs.Hits) / float64(total)
			}
			return 0
		})

	// --- Cost estimator calibration. ---
	reg.NewGaugeFunc("ctc_estimator_cost_ns_per_unit",
		"Calibrated nanoseconds per abstract cost unit.",
		func() float64 { return float64(m.est.CostNS()) })
	reg.NewCounterFunc("ctc_estimator_predicted_ns_total",
		"Cumulative predicted execution nanoseconds across observed queries.",
		func() int64 { p, _, _, _ := m.est.ErrorStats(); return p })
	reg.NewCounterFunc("ctc_estimator_actual_ns_total",
		"Cumulative measured execution nanoseconds across observed queries.",
		func() int64 { _, a, _, _ := m.est.ErrorStats(); return a })
	reg.NewCounterFunc("ctc_estimator_abs_error_ns_total",
		"Cumulative |predicted - actual| nanoseconds (divide by actual_ns_total for relative error).",
		func() int64 { _, _, e, _ := m.est.ErrorStats(); return e })

	// --- Workspace pool (process-global counters). ---
	reg.NewCounterFunc("ctc_workspace_acquires_total",
		"Workspace acquisitions from the per-index pool.",
		func() int64 { a, _, _ := trussindex.ReadPoolStats(); return a })
	reg.NewCounterFunc("ctc_workspace_fresh_total",
		"Workspace acquisitions that missed the pool and allocated.",
		func() int64 { _, f, _ := trussindex.ReadPoolStats(); return f })
	reg.NewCounterFunc("ctc_workspace_releases_total",
		"Workspaces returned to the pool.",
		func() int64 { _, _, r := trussindex.ReadPoolStats(); return r })

	// --- Write-ahead log, when configured. ---
	if w := m.opts.WAL; w != nil {
		m.metrics.walFsync = reg.NewHistogram("ctc_wal_fsync_duration_seconds",
			"Latency of WAL group-commit fsyncs.", telemetry.DefFsyncBuckets)
		w.SetSyncObserver(func(d time.Duration) { m.metrics.walFsync.Observe(d) })
		m.metrics.checkpointLatency = reg.NewHistogram("ctc_wal_checkpoint_duration_seconds",
			"Wall time of one WAL checkpoint (index serialization plus segment pruning).", nil)
		reg.NewCounterFunc("ctc_wal_appends_total",
			"Records appended to the WAL.", func() int64 { return w.Stats().Appends })
		reg.NewCounterFunc("ctc_wal_syncs_total",
			"Completed WAL group commits.", func() int64 { return w.Stats().Syncs })
		reg.NewGaugeFunc("ctc_wal_bytes",
			"Bytes across live WAL segments.", func() float64 { return float64(w.Stats().Bytes) })
		reg.NewGaugeFunc("ctc_wal_segments",
			"Live WAL segment files.", func() float64 { return float64(w.Stats().Segments) })
		reg.NewGaugeFunc("ctc_wal_durable_seq",
			"Highest WAL sequence covered by a completed fsync.",
			func() float64 { return float64(w.Stats().DurableSeq) })
		reg.NewGaugeFunc("ctc_wal_checkpoint_seq",
			"Sequence of the newest WAL checkpoint (0 if none).",
			func() float64 { return float64(w.Stats().CheckpointSeq) })
		reg.NewCounterFunc("ctc_wal_dropped_updates_total",
			"Updates dropped (not applied) because the manager was degraded.",
			func() int64 { return m.walDropped.Load() })
	}
}

// observeQuery feeds one finished Query into the tracer: outcome
// classification, the phase breakdown from the result's stats, and the
// client-observed total (queue wait included). The QueryRecord stays on the
// stack, so an instrumented query path adds two time.Now calls and the
// tracer's atomic adds — no allocations.
func (m *Manager) observeQuery(req core.Request, res *core.Result, err error, total time.Duration) {
	rec := telemetry.QueryRecord{
		Algo:    req.Algo.String(),
		Tenant:  req.Tenant,
		Outcome: outcomeOf(err),
		Total:   total,
	}
	if res != nil {
		st := &res.Stats
		rec.Epoch = st.Epoch
		rec.CacheHit = st.CacheHit
		rec.Seed, rec.Expand, rec.Peel = st.Seed, st.Expand, st.Peel
		rec.QueueWait = st.QueueWait
		rec.SeedEdges, rec.PeelRounds, rec.EdgesPeeled = st.SeedEdges, st.PeelRounds, st.EdgesPeeled
	}
	m.tracer.Observe(rec)
	if rec.Outcome == "shed" {
		m.logShed(req, err)
	}
}

// outcomeOf classifies a query error into the bounded outcome label set of
// ctc_queries_total.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrOverloaded):
		return "shed"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case cacheableErr(err):
		return "no_community"
	case errors.Is(err, core.ErrEmptyQuery),
		errors.Is(err, core.ErrVertexOutOfRange),
		errors.Is(err, core.ErrBadParam):
		return "bad_request"
	default:
		return "error"
	}
}

// logShed emits the admission-shed warning, rate-limited to one line per
// shedLogInterval — under sustained overload the metrics carry the volume,
// the log carries the fact.
func (m *Manager) logShed(req core.Request, err error) {
	if m.logger == nil {
		return
	}
	now := time.Now().UnixNano()
	last := m.lastShedLog.Load()
	if now-last < int64(shedLogInterval) || !m.lastShedLog.CompareAndSwap(last, now) {
		return
	}
	m.logger.Warn("query shed by admission control",
		"tenant", req.Tenant, "algo", req.Algo.String(), "err", err)
}

// logPublish emits the per-publish writer-loop event.
func (m *Manager) logPublish(epoch int64, full bool, applied int, d time.Duration) {
	if m.logger == nil {
		return
	}
	if full {
		// Full rebuilds are rare and expensive — worth Info.
		m.logger.Info("published snapshot (full rebuild)",
			"epoch", epoch, "duration", d)
		return
	}
	m.logger.Debug("published snapshot",
		"epoch", epoch, "dirty_applied", applied, "duration", d)
}

// logCheckpoint emits the checkpoint event.
func (m *Manager) logCheckpoint(epoch int64, d time.Duration) {
	if m.logger == nil {
		return
	}
	m.logger.Info("wrote WAL checkpoint", "epoch", epoch, "duration", d)
}

// logFsyncStall warns when a group commit took pathologically long.
func (m *Manager) logFsyncStall(d time.Duration, batch int) {
	if m.logger == nil || d < fsyncStallThreshold {
		return
	}
	m.logger.Warn("WAL fsync stall", "duration", d, "batch", batch)
}

// logDegraded records the transition into read-only degraded mode.
func (m *Manager) logDegraded(stage string, err error, dropped int) {
	if m.logger == nil {
		return
	}
	m.logger.Error("WAL failure, manager degraded to read-only",
		"stage", stage, "err", err, "dropped_updates", dropped)
}

// Logger returns the manager's structured logger (nil when not configured).
func (m *Manager) Logger() *slog.Logger { return m.logger }

// Tracer returns the manager's query tracer (nil when not configured).
func (m *Manager) Tracer() *telemetry.Tracer { return m.tracer }
