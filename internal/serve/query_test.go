package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestManagerQuery checks the serve-layer entry point: answers match a
// direct search on the acquired snapshot, the snapshot epoch is stamped
// into the stats, validation errors surface typed, and epoch stamps track
// published updates.
func TestManagerQuery(t *testing.T) {
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 300, NumCommunities: 15, MinSize: 8, MaxSize: 20,
		Overlap: 0.25, PIntra: 0.55, BackgroundEdges: 200, Seed: 0xA11CE,
	})
	m := NewManager(g, Options{PublishDirty: 4, PublishInterval: 20 * time.Millisecond})
	defer m.Close()
	comm := truth[0]
	q := []int{comm[0], comm[len(comm)-1]}
	ctx := context.Background()

	res, err := m.Query(ctx, core.Request{Q: q})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Epoch != 1 {
		t.Fatalf("epoch stamp = %d, want 1", res.Stats.Epoch)
	}
	snap := m.Acquire()
	direct, err := snap.Searcher().Search(ctx, core.Request{Q: q})
	snap.Release()
	if err != nil || direct.N() != res.N() || direct.K != res.K {
		t.Fatalf("Query (n=%d k=%d) diverged from snapshot Search (n=%d k=%d): %v",
			res.N(), res.K, direct.N(), direct.K, err)
	}

	// Typed validation errors pass through.
	if _, err := m.Query(ctx, core.Request{}); !errors.Is(err, core.ErrEmptyQuery) {
		t.Fatalf("empty query err = %v", err)
	}
	if _, err := m.Query(ctx, core.Request{Q: []int{-3}}); !errors.Is(err, core.ErrVertexOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}

	// A batch is answered against one snapshot: every stamp is the same
	// epoch even while updates are being published underneath.
	for i := 0; i < 8; i++ {
		if err := m.Apply(Update{Op: OpRemove, U: comm[2], V: comm[3+i%3]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	items, err := m.QueryBatch(ctx, []core.Request{
		{Q: q}, {Q: q, Algo: core.AlgoTrussOnly}, {Q: []int{1 << 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(items[2].Err, core.ErrVertexOutOfRange) {
		t.Fatalf("batch item 2 err = %v", items[2].Err)
	}
	e0 := items[0].Result.Stats.Epoch
	if e0 < 2 {
		t.Fatalf("post-update batch epoch = %d, want >= 2", e0)
	}
	if e1 := items[1].Result.Stats.Epoch; e1 != e0 {
		t.Fatalf("batch answered across epochs: %d vs %d", e0, e1)
	}

	// Cancellation flows through the serve layer.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.Query(cctx, core.Request{Q: q}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Query err = %v", err)
	}

	// Queries still work against the final snapshot after Close.
	m.Close()
	if _, err := m.Query(ctx, core.Request{Q: q, Algo: core.AlgoTrussOnly}); err != nil {
		t.Fatalf("post-Close query: %v", err)
	}
}
