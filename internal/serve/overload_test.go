package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func overloadTestManager(t *testing.T, cfg admit.Config) (*Manager, [][]int) {
	t.Helper()
	g, truth := gen.CommunityGraph(gen.CommunityParams{
		N: 300, NumCommunities: 15, MinSize: 8, MaxSize: 20,
		Overlap: 0.25, PIntra: 0.55, BackgroundEdges: 200, Seed: 0xA11CE,
	})
	m := NewManager(g, Options{
		PublishDirty:    4,
		PublishInterval: 20 * time.Millisecond,
		Admission:       cfg,
	})
	t.Cleanup(m.Close)
	var qs [][]int
	for _, comm := range truth {
		qs = append(qs, []int{comm[0], comm[len(comm)-1]})
	}
	return m, qs
}

// TestQueryCancelledBeforeAnyWork: a context that is already dead must be
// rejected before Query touches the snapshot refcount, the admission gate,
// or the cache — satellite (a) of the overload PR.
func TestQueryCancelledBeforeAnyWork(t *testing.T) {
	m, qs := overloadTestManager(t, admit.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Query(ctx, core.Request{Q: qs[0]}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := m.QueryBatch(ctx, []core.Request{{Q: qs[0]}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch: want context.Canceled, got %v", err)
	}
	st := m.Stats()
	if st.QueriesAdmitted != 0 || st.QueriesExecuted != 0 {
		t.Fatalf("dead-ctx queries reached the gate: admitted=%d executed=%d",
			st.QueriesAdmitted, st.QueriesExecuted)
	}
	if st.CacheMisses != 0 || st.CacheHits != 0 {
		t.Fatalf("dead-ctx queries touched the cache: %+v", st)
	}
	if st.LiveSnapshots != 1 {
		t.Fatalf("live snapshots %d, want 1", st.LiveSnapshots)
	}
}

// TestCacheEpochInvalidation: two identical requests share one execution
// through the epoch-keyed cache; a publish between identical requests makes
// the next one recompute against the fresh epoch — invalidation needs no
// bookkeeping because the epoch is part of the key.
func TestCacheEpochInvalidation(t *testing.T) {
	m, qs := overloadTestManager(t, admit.Config{})
	ctx := context.Background()
	req := core.Request{Q: qs[0]}

	r1, err := m.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.CacheHit {
		t.Fatal("first query hit an empty cache")
	}
	r2, err := m.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.CacheHit {
		t.Fatal("identical repeat under the same epoch missed the cache")
	}
	if r2.Stats.Epoch != r1.Stats.Epoch || r2.N() != r1.N() || r2.K != r1.K {
		t.Fatalf("cached answer diverged: (%d,%d,%d) vs (%d,%d,%d)",
			r2.Stats.Epoch, r2.N(), r2.K, r1.Stats.Epoch, r1.N(), r1.K)
	}

	// Publish a new epoch between identical requests.
	if err := m.Apply(Update{Op: OpAdd, U: 0, V: 299}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	r3, err := m.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.CacheHit {
		t.Fatal("request served from the previous epoch's cache after a publish")
	}
	if r3.Stats.Epoch <= r1.Stats.Epoch {
		t.Fatalf("epoch did not advance: %d then %d", r1.Stats.Epoch, r3.Stats.Epoch)
	}
	st := m.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits %d, want exactly 1", st.CacheHits)
	}
}

// TestQueryStatsStamps: QueueWait/Tenant/CacheHit ride through the serve
// layer — satellite (b).
func TestQueryStatsStamps(t *testing.T) {
	m, qs := overloadTestManager(t, admit.Config{})
	res, err := m.Query(context.Background(), core.Request{Q: qs[1], Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tenant != "alice" || res.Stats.CacheHit {
		t.Fatalf("stats stamps: %+v", res.Stats)
	}
	hit, err := m.Query(context.Background(), core.Request{Q: qs[1], Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Stats.CacheHit || hit.Stats.Tenant != "bob" || hit.Stats.QueueWait != 0 {
		t.Fatalf("cache-hit stamps: %+v", hit.Stats)
	}
	st := m.Stats()
	if st.Tenants["alice"].Admitted != 1 {
		t.Fatalf("tenant accounting: %+v", st.Tenants)
	}
}

// TestErrorTaxonomy is the errors.Is table for the serve layer — each
// failure mode keeps its typed identity through Query (satellite (c)).
func TestErrorTaxonomy(t *testing.T) {
	// A long clique chain plus a star: a Basic k=2 query peels one vertex
	// per round, slow enough to hold the single execution slot while the
	// shed path is exercised. InitialCostNS is enormous, so with the slot
	// held, any deadline request is shed; CacheEntries < 0 keeps repeats
	// executing.
	const count, size, leaves = 220, 8, 1500
	var edges [][2]int
	base := 0
	for c := 0; c < count; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [2]int{base + i, base + j})
			}
		}
		base += size - 1
	}
	n := base + 1
	for l := 0; l < leaves; l++ {
		edges = append(edges, [2]int{0, n + l})
	}
	g := graph.FromEdges(n+leaves, edges)
	m := NewManager(g, Options{Admission: admit.Config{
		MaxConcurrent: 1, QueueSize: 4, CacheEntries: -1, InitialCostNS: 1 << 40,
	}})
	defer m.Close()
	slowQ := []int{1, (size-1)*count - 1}
	bg := context.Background()

	// Occupy the only slot with the slow query.
	holdCtx, holdCancel := context.WithCancel(bg)
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(held)
		_, _ = m.Query(holdCtx, core.Request{Q: slowQ, Algo: core.AlgoBasic, K: 2})
	}()
	<-held
	waitForStat(t, m, func(st Stats) bool { return st.QueryInflight == 1 })

	// Deadline-aware shed: typed ErrOverloaded, never a timeout.
	dctx, dcancel := context.WithTimeout(bg, 10*time.Millisecond)
	defer dcancel()
	_, err := m.Query(dctx, core.Request{Q: slowQ})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed: want ErrOverloaded, got %v", err)
	}
	var oe *admit.OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("shed error lacks the Retry-After hint: %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("shed error must not read as a timeout")
	}

	// Cancellation before entry.
	cctx, ccancel := context.WithCancel(bg)
	ccancel()
	if _, err := m.Query(cctx, core.Request{Q: slowQ}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled: got %v", err)
	}

	// Validation errors stay typed.
	if _, err := m.Query(bg, core.Request{}); !errors.Is(err, core.ErrEmptyQuery) {
		t.Fatalf("empty query: got %v", err)
	}

	holdCancel()
	wg.Wait()
	st := m.Stats()
	if st.QueriesAdmitted != st.QueriesExecuted {
		t.Fatalf("admitted=%d executed=%d after sheds — a rejected request consumed capacity",
			st.QueriesAdmitted, st.QueriesExecuted)
	}
}

func waitForStat(t *testing.T, m *Manager, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(m.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for stats condition (last: %+v)", m.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantFairnessUnderLoad drives N tenants of bursty closed-loop load
// over a live updater with the cache disabled (every query must pass the
// gate) and asserts no tenant's admitted share falls below 1/(2N) — the
// round-robin drain at work. Run under -race in CI (satellite (c)/(e)).
func TestTenantFairnessUnderLoad(t *testing.T) {
	const tenants = 3
	m, qs := overloadTestManager(t, admit.Config{
		MaxConcurrent: 1, QueueSize: 64, CacheEntries: -1,
	})
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Live updater: keep epochs publishing while the gate is contended.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			op := OpRemove
			if i%2 == 1 {
				op = OpAdd
			}
			_ = m.Apply(Update{Op: op, U: qs[2][0], V: qs[2][1]})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Bursty tenants: 3 goroutines each, alternating hammer and idle
	// phases offset per tenant so the queue composition keeps shifting.
	for tn := 0; tn < tenants; tn++ {
		name := fmt.Sprintf("t%d", tn)
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(tn, g int) {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					if (i+tn*7)%20 == 19 {
						time.Sleep(time.Millisecond) // burst gap
						continue
					}
					req := core.Request{Q: qs[(i+g)%len(qs)], Tenant: name, Algo: core.AlgoTrussOnly}
					ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
					_, _ = m.Query(ctx, req)
					cancel()
				}
			}(tn, g)
		}
	}
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	st := m.Stats()
	var total int64
	for tn := 0; tn < tenants; tn++ {
		total += st.Tenants[fmt.Sprintf("t%d", tn)].Admitted
	}
	if total == 0 {
		t.Fatal("no queries admitted")
	}
	floor := total / (2 * tenants)
	for tn := 0; tn < tenants; tn++ {
		name := fmt.Sprintf("t%d", tn)
		if got := st.Tenants[name].Admitted; got < floor {
			t.Errorf("tenant %s admitted %d < fair-share floor %d (total %d): starved",
				name, got, floor, total)
		}
	}
	if st.QueriesAdmitted != st.QueriesExecuted {
		t.Fatalf("admitted=%d executed=%d after the stress", st.QueriesAdmitted, st.QueriesExecuted)
	}
	waitForStat(t, m, func(st Stats) bool { return st.QueryInflight == 0 && st.QueryQueueDepth == 0 })
}

// TestAdmissionDisabledBypass: Options.Admission.Disabled keeps the legacy
// unthrottled behavior for tools that manage their own concurrency.
func TestAdmissionDisabledBypass(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	m := NewManager(g, Options{Admission: admit.Config{Disabled: true, CacheEntries: -1}})
	defer m.Close()
	for i := 0; i < 5; i++ {
		if _, err := m.Query(context.Background(), core.Request{Q: []int{0, 1}, Algo: core.AlgoTrussOnly}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.QueriesAdmitted != 0 || st.QueriesExecuted != 5 {
		t.Fatalf("disabled gate: admitted=%d executed=%d", st.QueriesAdmitted, st.QueriesExecuted)
	}
	if st.Overloaded {
		t.Fatal("disabled gate reports overloaded")
	}
}
