package serve

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/truss"
)

// Explicit edge-case coverage for the rebase path: serving from a graph
// with no vertices, rebasing after the live graph has been drained to
// empty, and a rebase whose pending set cancels down to nothing. These were
// previously only crossed implicitly by the random-stream differential.

// TestServeFromEmptyGraph starts a manager over the empty graph; every edge
// streamed in is foreign, so the very first publish is a rebase growing the
// vertex space from zero.
func TestServeFromEmptyGraph(t *testing.T) {
	m := NewManager(graph.NewBuilder(0, 0).Build(), fastOpts())
	defer m.Close()

	s := m.Acquire()
	if s.Graph().N() != 0 || s.Graph().M() != 0 || s.Index().MaxTruss() != 0 {
		t.Fatalf("epoch 1 of empty graph: n=%d m=%d", s.Graph().N(), s.Graph().M())
	}
	s.Release()

	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if err := m.Apply(Update{Op: OpAdd, U: e[0], V: e[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	s = m.Acquire()
	defer s.Release()
	if s.Graph().N() != 4 || s.Graph().M() != 4 {
		t.Fatalf("after foreign adds: n=%d m=%d, want 4/4", s.Graph().N(), s.Graph().M())
	}
	checkSnapshotAgainstScratch(t, s, [][]int{{0, 1}, {0, 2}, {2, 3}})
}

// TestRebaseAfterDrainToEmpty deletes every edge of the base graph, then
// streams a foreign edge: the rebase sees live.M() == 0 and must take the
// full-rebuild path without dividing by the empty edge count.
func TestRebaseAfterDrainToEmpty(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	m := NewManager(g, fastOpts())
	defer m.Close()

	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := m.Apply(Update{Op: OpRemove, U: e[0], V: e[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Apply(Update{Op: OpAdd, U: 4, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	s := m.Acquire()
	defer s.Release()
	if s.Graph().M() != 1 {
		t.Fatalf("after drain + foreign add: m=%d, want 1", s.Graph().M())
	}
	if got := s.Index().EdgeTruss(4, 5); got != 2 {
		t.Fatalf("τ(4,5) = %d, want 2", got)
	}
	if m.Stats().FullRebuilds == 0 {
		t.Fatal("drain-to-empty rebase must count as a full rebuild")
	}
	checkSnapshotAgainstScratch(t, s, [][]int{{4, 5}})
}

// TestRebaseCancelledPending pins the add-then-remove cancellation: a
// foreign add retracted before the next publish must neither rebase nor
// leave ghost state, and a later genuine rebase must still be exact.
func TestRebaseCancelledPending(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	m := NewManager(g, fastOpts())
	defer m.Close()

	if err := m.Apply(Update{Op: OpAdd, U: 7, V: 8}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Update{Op: OpRemove, U: 7, V: 8}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	s := m.Acquire()
	if s.Graph().N() != 3 || s.Graph().M() != 3 {
		t.Fatalf("cancelled pending add changed the graph: n=%d m=%d", s.Graph().N(), s.Graph().M())
	}
	s.Release()

	if err := m.Apply(Update{Op: OpAdd, U: 2, V: 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	s = m.Acquire()
	defer s.Release()
	if s.Graph().N() != 4 || s.Graph().M() != 4 {
		t.Fatalf("after real foreign add: n=%d m=%d, want 4/4", s.Graph().N(), s.Graph().M())
	}
	checkSnapshotAgainstScratch(t, s, [][]int{{0, 1, 2}, {2, 3}})
}

// TestIncrementalColdBuildMatchesSerial pins that the serving layer's cold
// build (NewIncremental, now the parallel decomposition) seeds the exact
// labels — the serve-side guard of the truss package's differential suite.
func TestIncrementalColdBuildMatchesSerial(t *testing.T) {
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}, {2, 4},
	})
	inc := truss.NewIncremental(g)
	want := truss.Decompose(g)
	for e := int32(0); e < int32(g.M()); e++ {
		if got := inc.EdgeTau(e); got != want.Truss[e] {
			t.Fatalf("cold-build τ[%d] = %d, want %d", e, got, want.Truss[e])
		}
	}
}
