package serve

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/trussindex"
)

// Snapshot is one published epoch of the index manager: an immutable frozen
// graph plus its truss index, shared by any number of concurrent queries.
//
// Lifetime follows an RCU-style refcount. The publisher creates a snapshot
// with one reference (its own), installs it in the manager's atomic pointer,
// and releases its reference on the *previous* snapshot; queries acquire a
// reference before use and release it after. The count can therefore reach
// zero only once the snapshot has been unpublished and its last reader has
// finished — and it never resurrects: Acquire refuses a zero count and
// re-reads the current pointer instead, so retirement is a one-way door.
type Snapshot struct {
	epoch   int64
	ix      *trussindex.Index
	g       *graph.Graph
	created time.Time
	full    bool // built by full re-decomposition rather than label patching

	// searcher is the epoch's shared query entry point (stateless apart
	// from ix, so one instance serves all concurrent queries).
	searcher *core.Searcher

	refs atomic.Int64
	mgr  *Manager
}

// Epoch returns the snapshot's publish sequence number (1 = initial build).
func (s *Snapshot) Epoch() int64 { return s.epoch }

// Index returns the immutable truss index of this epoch.
func (s *Snapshot) Index() *trussindex.Index { return s.ix }

// Graph returns the frozen graph this epoch was built from.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Created returns the publish time.
func (s *Snapshot) Created() time.Time { return s.created }

// Searcher returns the epoch's shared query entry point. Callers that hold
// a snapshot reference may run any number of concurrent Search calls on it.
func (s *Snapshot) Searcher() *core.Searcher { return s.searcher }

// Query runs one community search against this epoch, stamping the epoch
// into the result's stats. The caller must hold a snapshot reference for
// the duration of the call.
func (s *Snapshot) Query(ctx context.Context, req core.Request) (*core.Result, error) {
	res, err := s.searcher.Search(ctx, req)
	if err != nil {
		return nil, err
	}
	res.Stats.Epoch = s.epoch
	return res, nil
}

// FullRebuild reports whether this epoch required a full re-decomposition
// (foreign-edge rebase past the incremental threshold) rather than an
// incremental label patch.
func (s *Snapshot) FullRebuild() bool { return s.full }

// tryRef acquires a reference unless the snapshot is already retired
// (refcount zero). The CAS loop guarantees the count never moves 0 → 1.
func (s *Snapshot) tryRef() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops one reference. The snapshot retires when the count reaches
// zero, which can only happen after a newer epoch has been published.
func (s *Snapshot) Release() {
	if r := s.refs.Add(-1); r == 0 {
		s.mgr.retired.Add(1)
		s.mgr.liveSnaps.Add(-1)
	} else if r < 0 {
		panic("serve: Snapshot.Release without matching acquire")
	}
}

// Acquire returns the latest published snapshot with a reference held; pair
// it with Release. It is lock-free: a load of the epoch pointer plus a CAS
// on the refcount, retried only in the rare race where the loaded snapshot
// retired between the load and the CAS (in which case the pointer has
// already moved on).
func (m *Manager) Acquire() *Snapshot {
	for {
		s := m.cur.Load()
		if s.tryRef() {
			return s
		}
	}
}
