package steiner

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// paperGraph is Figure 1(a); q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7
// p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	return graph.FromEdges(12, edges)
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.EnsureVertex(n - 1)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestTrussDistancePaperSection5(t *testing.T) {
	// §5.2 worked example with γ=3: the tree T1 path q2..q3 through t has
	// ˆdist = 3 + 3·(4-2) = 9 hmm the paper says 8 for dist(q2,q3) in T1 —
	// T1 = {(q2,q1),(q1,t),(t,q3)} so dist_T1(q2,q3) = 3 and min τ = 2:
	// ˆdist = 3 + 3·(4−2) = 9. The paper's arithmetic (3+6=8) notwithstanding,
	// Definition 7 gives 9; what matters is the comparison with T2.
	// In G (not restricted to T1), the *optimal* truss distance q2→q3 is
	// min over thresholds; at t=4: shortest 4-truss path q2-v4-q3 has 2 hops
	// → 2 + 0 = 2.
	g := paperGraph()
	ix := trussindex.Build(g)
	if ix.MaxTruss() != 4 {
		t.Fatalf("τ̄(∅) = %d, want 4", ix.MaxTruss())
	}
	m := NewMetric(ix, 3)
	d, thr := m.TrussDistance(1, 2) // q2 → q3
	if d != 2 {
		t.Fatalf("ˆdist(q2,q3) = %f, want 2", d)
	}
	if thr != 4 {
		t.Fatalf("realizing threshold = %d, want 4", thr)
	}
	// Against the explicit-path oracle.
	pathT1 := []int{1, 0, 11, 2} // q2-q1-t-q3
	if got := PathTrussDistance(ix, pathT1, 3); got != 9 {
		t.Fatalf("T1 path truss distance = %f, want 3+3·2 = 9", got)
	}
	pathT2 := []int{1, 6, 2} // q2-v4-q3, all trussness-4 edges
	if got := PathTrussDistance(ix, pathT2, 3); got != 2 {
		t.Fatalf("T2 path truss distance = %f, want 2", got)
	}
}

func TestTrussDistanceGammaZeroIsHops(t *testing.T) {
	g := paperGraph()
	ix := trussindex.Build(g)
	m := NewMetric(ix, 0)
	hops := graph.Distances(g, 0)
	d, _ := m.DistancesFrom(0)
	for v := 0; v < g.N(); v++ {
		if hops[v] == graph.Unreachable {
			if !math.IsInf(d[v], 1) {
				t.Fatalf("vertex %d: want Inf", v)
			}
			continue
		}
		if d[v] != float64(hops[v]) {
			t.Fatalf("vertex %d: truss distance %f != hops %d at γ=0", v, d[v], hops[v])
		}
	}
}

func TestTrussDistanceMatchesBruteForce(t *testing.T) {
	// Oracle: enumerate all simple paths up to length 6 on small graphs and
	// take the minimum Definition-7 value.
	for seed := int64(0); seed < 6; seed++ {
		g := randomGraph(seed, 12, 0.3)
		ix := trussindex.Build(g)
		m := NewMetric(ix, 2)
		d, _ := m.DistancesFrom(0)
		want := brutePathDistances(ix, 0, 2)
		for v := 0; v < g.N(); v++ {
			// The brute force is capped at 6 hops; skip longer optima.
			if want[v] > 6+2*float64(ix.MaxTruss()) {
				continue
			}
			if math.IsInf(want[v], 1) {
				continue
			}
			if math.Abs(d[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: truss distance %f, brute force %f", seed, v, d[v], want[v])
			}
		}
	}
}

func brutePathDistances(ix *trussindex.Index, src int, gamma float64) []float64 {
	g := ix.Graph()
	n := g.N()
	best := make([]float64, n)
	for i := range best {
		best[i] = Inf
	}
	best[src] = 0
	var dfs func(v int, visited []bool, path []int)
	dfs = func(v int, visited []bool, path []int) {
		if len(path) > 7 { // up to 6 edges
			return
		}
		if len(path) > 1 {
			if d := PathTrussDistance(ix, path, gamma); d < best[v] {
				best[v] = d
			}
		}
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				visited[w] = true
				dfs(int(w), visited, append(path, int(w)))
				visited[w] = false
			}
		}
	}
	visited := make([]bool, n)
	visited[src] = true
	dfs(src, visited, []int{src})
	return best
}

func TestPathAtThreshold(t *testing.T) {
	g := paperGraph()
	ix := trussindex.Build(g)
	m := NewMetric(ix, 3)
	// At threshold 4 the path q2→q3 must avoid t.
	path := m.PathAtThreshold(1, 2, 4)
	if len(path) != 3 {
		t.Fatalf("path = %v, want 2 hops", path)
	}
	for _, v := range path {
		if v == 11 {
			t.Fatal("threshold-4 path must not use t")
		}
	}
	if PathMinTruss(ix, path) < 4 {
		t.Fatal("path uses a low-trussness edge")
	}
	// Unreachable at threshold above max.
	if m.PathAtThreshold(1, 2, 5) != nil {
		t.Fatal("no 5-truss path exists")
	}
}

func TestSteinerTreePrefersHighTrussness(t *testing.T) {
	// §5.2: with γ=3 the Steiner tree for Q={q1,q2,q3} should avoid the
	// trussness-2 shortcut through t and stay in the 4-truss.
	g := paperGraph()
	ix := trussindex.Build(g)
	tr, err := Build(ix, []int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MinTruss != 4 {
		t.Fatalf("tree min trussness = %d, want 4", tr.MinTruss)
	}
	for _, v := range tr.Vertices {
		if v == 11 {
			t.Fatal("Steiner tree must avoid t under truss distance")
		}
	}
	// Tree property: |E| = |V| - 1 and connected.
	if len(tr.Edges) != len(tr.Vertices)-1 {
		t.Fatalf("not a tree: %d vertices, %d edges", len(tr.Vertices), len(tr.Edges))
	}
	mu := graph.NewMutableFromEdges(g.N(), tr.Edges)
	if !graph.Connected(mu, tr.Terminals) {
		t.Fatal("tree does not connect terminals")
	}
}

func TestSteinerTreeHopMetricUsesShortcut(t *testing.T) {
	// With γ=0, the hop-optimal tree q1-t-q3 + q1-q2 (weight 3) may route
	// through t; at minimum its total weight must be <= the truss-aware one.
	g := paperGraph()
	ix := trussindex.Build(g)
	hop, err := Build(ix, []int{0, 1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hop.Edges) > 3 {
		t.Fatalf("hop Steiner tree has %d edges, expected <= 3", len(hop.Edges))
	}
}

func TestSteinerSingleTerminal(t *testing.T) {
	g := paperGraph()
	ix := trussindex.Build(g)
	tr, err := Build(ix, []int{2, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Vertices) != 1 || len(tr.Edges) != 0 {
		t.Fatalf("singleton tree: %v", tr)
	}
	if tr.MinTruss != 4 { // τ(q3) = 4
		t.Fatalf("MinTruss = %d, want τ(q3) = 4", tr.MinTruss)
	}
}

func TestSteinerDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	ix := trussindex.Build(g)
	if _, err := Build(ix, []int{0, 2}, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
	if _, err := Build(ix, nil, 1); err == nil {
		t.Fatal("empty terminals must fail")
	}
	if _, err := Build(ix, []int{-1}, 1); err == nil {
		t.Fatal("out-of-range terminal must fail")
	}
}

func TestSteinerRandomTreeInvariants(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(seed, 25, 0.15)
		ix := trussindex.Build(g)
		rng := rand.New(rand.NewSource(seed))
		q := []int{rng.Intn(25), rng.Intn(25), rng.Intn(25)}
		tr, err := Build(ix, q, 3)
		if errors.Is(err, ErrDisconnected) {
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(tr.Edges) != len(tr.Vertices)-1 {
			t.Fatalf("seed %d: not a tree (%d vertices, %d edges)", seed, len(tr.Vertices), len(tr.Edges))
		}
		mu := graph.NewMutableFromEdges(g.N(), tr.Edges)
		for _, v := range tr.Vertices {
			mu.EnsureVertex(v)
		}
		if !graph.Connected(mu, tr.Terminals) {
			t.Fatalf("seed %d: terminals not connected", seed)
		}
		if graph.ComponentCount(mu) != 1 {
			t.Fatalf("seed %d: tree not connected", seed)
		}
		// Every tree edge must exist in G.
		for _, e := range tr.Edges {
			u, v := e.Endpoints()
			if !g.HasEdge(u, v) {
				t.Fatalf("seed %d: phantom edge %s", seed, e)
			}
		}
		// Non-terminal leaves must have been pruned.
		isQ := map[int]bool{}
		for _, v := range tr.Terminals {
			isQ[v] = true
		}
		for _, v := range tr.Vertices {
			if mu.Degree(v) <= 1 && !isQ[v] && len(tr.Vertices) > 1 {
				t.Fatalf("seed %d: unpruned non-terminal leaf %d", seed, v)
			}
		}
	}
}
