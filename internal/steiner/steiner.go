package steiner

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// Tree is a Steiner tree connecting a set of terminals.
type Tree struct {
	// Terminals are the query vertices the tree connects.
	Terminals []int
	// Vertices is the sorted vertex set of the tree (terminals included).
	Vertices []int
	// Edges are the tree edges.
	Edges []graph.EdgeKey
	// MinTruss is the minimum edge trussness in the tree; for a single-
	// vertex tree it is the vertex trussness of the terminal.
	MinTruss int32
	// Weight is the total truss distance across the tree's MST edges.
	Weight float64
}

// ErrDisconnected is returned when the terminals do not share a connected
// component.
var ErrDisconnected = errors.New("steiner: terminals are not connected")

// Build computes a KMB-style 2-approximate Steiner tree for the terminals q
// under the truss-distance metric with penalty gamma:
//
//  1. build the complete distance graph over terminals using truss distance,
//  2. take its minimum spanning tree,
//  3. replace each MST edge by the realizing shortest path in G,
//  4. take a spanning tree of the union and prune non-terminal leaves.
//
// With gamma = 0 this is a plain hop-count Steiner approximation.
func Build(ix *trussindex.Index, q []int, gamma float64) (*Tree, error) {
	ws := ix.AcquireWorkspace()
	defer ws.Release()
	return BuildW(ix, q, gamma, ws)
}

// BuildW is Build running on an explicit workspace of ix, so a query
// pipeline that already holds one (e.g. LCTC) does not round-trip the pool.
func BuildW(ix *trussindex.Index, q []int, gamma float64, ws *trussindex.Workspace) (*Tree, error) {
	if len(q) == 0 {
		return nil, errors.New("steiner: no terminals")
	}
	uniq := dedupe(q)
	g := ix.Graph()
	for _, v := range uniq {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("steiner: terminal %d out of range", v)
		}
	}
	if len(uniq) == 1 {
		v := uniq[0]
		return &Tree{
			Terminals: uniq,
			Vertices:  []int{v},
			MinTruss:  ix.VertexTruss(v),
		}, nil
	}
	metric := NewMetric(ix, gamma)
	// Pairwise truss distances and realizing thresholds from each terminal.
	// The r output arrays are alive simultaneously, so they cannot come from
	// the (fixed-size) workspace; everything inside distancesInto does.
	r := len(uniq)
	dist := make([][]float64, r)
	thr := make([][]int32, r)
	for i, v := range uniq {
		d := make([]float64, g.N())
		t := make([]int32, g.N())
		if err := metric.distancesInto(v, d, t, ws); err != nil {
			return nil, err
		}
		dist[i] = d
		thr[i] = t
	}
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			if math.IsInf(dist[i][uniq[j]], 1) {
				return nil, ErrDisconnected
			}
		}
	}
	// Prim's MST over the complete terminal graph.
	inTree := make([]bool, r)
	best := make([]float64, r)
	bestFrom := make([]int, r)
	for i := range best {
		best[i] = Inf
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < r; j++ {
		best[j] = dist[0][uniq[j]]
		bestFrom[j] = 0
	}
	type mstEdge struct{ from, to int }
	mst := make([]mstEdge, 0, r-1)
	totalWeight := 0.0
	for len(mst) < r-1 {
		pick, pickD := -1, Inf
		for j := 0; j < r; j++ {
			if !inTree[j] && best[j] < pickD {
				pick, pickD = j, best[j]
			}
		}
		if pick < 0 {
			return nil, ErrDisconnected
		}
		inTree[pick] = true
		mst = append(mst, mstEdge{bestFrom[pick], pick})
		totalWeight += pickD
		for j := 0; j < r; j++ {
			if !inTree[j] && dist[pick][uniq[j]] < best[j] {
				best[j] = dist[pick][uniq[j]]
				bestFrom[j] = pick
			}
		}
	}
	// Expand MST edges into actual paths at their realizing thresholds. The
	// paths consist of indexed-graph edges, so the union is a bitset overlay.
	union := ws.Shell()
	for _, e := range mst {
		if err := ws.Canceled(); err != nil {
			return nil, err
		}
		src, dst := uniq[e.from], uniq[e.to]
		t := thr[e.from][dst]
		path := metric.pathAtThreshold(src, dst, t, ws)
		if path == nil {
			// The threshold subgraph should contain the path by
			// construction; fall back to any connecting threshold.
			path = metric.pathAtThreshold(src, dst, 2, ws)
		}
		if path == nil {
			return nil, ErrDisconnected
		}
		for i := 0; i+1 < len(path); i++ {
			union.AddEdge(path[i], path[i+1])
		}
	}
	for _, v := range uniq {
		union.EnsureVertex(v)
	}
	return treeFromUnion(ix, union, uniq, totalWeight, ws)
}

// treeFromUnion extracts a BFS spanning tree of the union subgraph and
// repeatedly prunes non-terminal leaves. union must be a workspace shell of
// the indexed graph; the returned Tree holds fresh copies of everything.
func treeFromUnion(ix *trussindex.Index, union *graph.Mutable, terminals []int, weight float64, ws *trussindex.Workspace) (*Tree, error) {
	termEpoch := ws.StampB.Next()
	for _, v := range terminals {
		ws.StampB.Mark[v] = termEpoch
	}
	// BFS spanning tree from the first terminal, carrying base edge IDs so
	// tree edges revive bits without per-edge lookups.
	root := terminals[0]
	tree := ws.Shell()
	tree.EnsureVertex(root)
	seen := ws.StampA
	seen.Next()
	seen.Set(int32(root))
	queue := ws.QueueA[:0]
	queue = append(queue, int32(root))
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		union.ForEachIncidentEdge(v, func(e int32, u int) {
			if seen.Visit(int32(u)) {
				tree.AddEdgeByID(e)
				queue = append(queue, int32(u))
			}
		})
	}
	ws.QueueA = queue
	for _, v := range terminals {
		if !tree.Present(v) {
			return nil, ErrDisconnected
		}
	}
	// Prune non-terminal leaves until fixpoint: seed the candidate queue
	// with the tree's touched vertices, then chase each deletion's
	// neighbor, so pruning costs O(tree), not passes over Vertices().
	cand := ws.QueueB[:0]
	for _, vq := range tree.TouchedVertices() {
		cand = append(cand, vq)
	}
	for head := 0; head < len(cand); head++ {
		v := int(cand[head])
		if !tree.Present(v) || tree.Degree(v) > 1 || ws.StampB.Mark[v] == termEpoch {
			continue
		}
		next := -1
		tree.ForEachIncidentEdge(v, func(_ int32, u int) { next = u })
		tree.DeleteVertex(v)
		if next >= 0 {
			cand = append(cand, int32(next))
		}
	}
	ws.QueueB = cand
	// Materialize the result (fresh storage: the shells are reused by the
	// next query).
	var (
		edges    []graph.EdgeKey
		minTruss = int32(math.MaxInt32)
	)
	tree.ForEachTouchedLiveEdge(func(e int32, _, _ int) {
		edges = append(edges, ix.Graph().EdgeKeyOf(e))
		if t := ix.EdgeTrussByID(e); t < minTruss {
			minTruss = t
		}
	})
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	if len(edges) == 0 {
		minTruss = ix.VertexTruss(terminals[0])
	}
	verts := make([]int, 0, len(edges)+1)
	for _, vq := range tree.TouchedVertices() {
		if tree.Present(int(vq)) {
			verts = append(verts, int(vq))
		}
	}
	sort.Ints(verts)
	// Touched-vertex lists can repeat a vertex that was deleted and
	// re-added, so dedupe after sorting.
	verts = slices.Compact(verts)
	return &Tree{
		Terminals: append([]int(nil), terminals...),
		Vertices:  verts,
		Edges:     edges,
		MinTruss:  minTruss,
		Weight:    weight,
	}, nil
}

func dedupe(q []int) []int {
	seen := make(map[int]bool, len(q))
	out := make([]int, 0, len(q))
	for _, v := range q {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
