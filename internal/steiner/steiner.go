package steiner

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/trussindex"
)

// Tree is a Steiner tree connecting a set of terminals.
type Tree struct {
	// Terminals are the query vertices the tree connects.
	Terminals []int
	// Vertices is the sorted vertex set of the tree (terminals included).
	Vertices []int
	// Edges are the tree edges.
	Edges []graph.EdgeKey
	// MinTruss is the minimum edge trussness in the tree; for a single-
	// vertex tree it is the vertex trussness of the terminal.
	MinTruss int32
	// Weight is the total truss distance across the tree's MST edges.
	Weight float64
}

// ErrDisconnected is returned when the terminals do not share a connected
// component.
var ErrDisconnected = errors.New("steiner: terminals are not connected")

// Build computes a KMB-style 2-approximate Steiner tree for the terminals q
// under the truss-distance metric with penalty gamma:
//
//  1. build the complete distance graph over terminals using truss distance,
//  2. take its minimum spanning tree,
//  3. replace each MST edge by the realizing shortest path in G,
//  4. take a spanning tree of the union and prune non-terminal leaves.
//
// With gamma = 0 this is a plain hop-count Steiner approximation.
func Build(ix *trussindex.Index, q []int, gamma float64) (*Tree, error) {
	if len(q) == 0 {
		return nil, errors.New("steiner: no terminals")
	}
	uniq := dedupe(q)
	g := ix.Graph()
	for _, v := range uniq {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("steiner: terminal %d out of range", v)
		}
	}
	if len(uniq) == 1 {
		v := uniq[0]
		return &Tree{
			Terminals: uniq,
			Vertices:  []int{v},
			MinTruss:  ix.VertexTruss(v),
		}, nil
	}
	metric := NewMetric(ix, gamma)
	// Pairwise truss distances and realizing thresholds from each terminal.
	r := len(uniq)
	dist := make([][]float64, r)
	thr := make([][]int32, r)
	for i, v := range uniq {
		d, t := metric.DistancesFrom(v)
		dist[i] = d
		thr[i] = t
	}
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			if math.IsInf(dist[i][uniq[j]], 1) {
				return nil, ErrDisconnected
			}
		}
	}
	// Prim's MST over the complete terminal graph.
	inTree := make([]bool, r)
	best := make([]float64, r)
	bestFrom := make([]int, r)
	for i := range best {
		best[i] = Inf
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < r; j++ {
		best[j] = dist[0][uniq[j]]
		bestFrom[j] = 0
	}
	type mstEdge struct{ from, to int }
	mst := make([]mstEdge, 0, r-1)
	totalWeight := 0.0
	for len(mst) < r-1 {
		pick, pickD := -1, Inf
		for j := 0; j < r; j++ {
			if !inTree[j] && best[j] < pickD {
				pick, pickD = j, best[j]
			}
		}
		if pick < 0 {
			return nil, ErrDisconnected
		}
		inTree[pick] = true
		mst = append(mst, mstEdge{bestFrom[pick], pick})
		totalWeight += pickD
		for j := 0; j < r; j++ {
			if !inTree[j] && dist[pick][uniq[j]] < best[j] {
				best[j] = dist[pick][uniq[j]]
				bestFrom[j] = pick
			}
		}
	}
	// Expand MST edges into actual paths at their realizing thresholds. The
	// paths consist of indexed-graph edges, so the union is a bitset overlay.
	union := graph.NewMutableShell(g)
	for _, e := range mst {
		src, dst := uniq[e.from], uniq[e.to]
		t := thr[e.from][dst]
		path := metric.PathAtThreshold(src, dst, t)
		if path == nil {
			// The threshold subgraph should contain the path by
			// construction; fall back to any connecting threshold.
			path = metric.PathAtThreshold(src, dst, 2)
		}
		if path == nil {
			return nil, ErrDisconnected
		}
		for i := 0; i+1 < len(path); i++ {
			union.AddEdge(path[i], path[i+1])
		}
	}
	for _, v := range uniq {
		union.EnsureVertex(v)
	}
	return treeFromUnion(ix, union, uniq, totalWeight)
}

// treeFromUnion extracts a BFS spanning tree of the union subgraph and
// repeatedly prunes non-terminal leaves.
func treeFromUnion(ix *trussindex.Index, union *graph.Mutable, terminals []int, weight float64) (*Tree, error) {
	isTerminal := make(map[int]bool, len(terminals))
	for _, v := range terminals {
		isTerminal[v] = true
	}
	// BFS spanning tree from the first terminal.
	n := union.NumIDs()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2
	}
	root := terminals[0]
	parent[root] = -1
	queue := []int32{int32(root)}
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		union.ForEachNeighbor(v, func(u int) {
			if parent[u] == -2 {
				parent[u] = int32(v)
				queue = append(queue, int32(u))
			}
		})
	}
	tree := graph.NewMutableShell(union.Base())
	for _, vq := range queue {
		v := int(vq)
		if parent[v] >= 0 {
			tree.AddEdge(v, int(parent[v]))
		}
	}
	tree.EnsureVertex(root)
	for _, v := range terminals {
		if !tree.Present(v) {
			return nil, ErrDisconnected
		}
	}
	// Prune non-terminal leaves until fixpoint.
	for {
		pruned := false
		for _, v := range tree.Vertices() {
			if tree.Degree(v) <= 1 && !isTerminal[v] {
				tree.DeleteVertex(v)
				pruned = true
			}
		}
		if !pruned {
			break
		}
	}
	edges := tree.EdgeKeys()
	minTruss := int32(math.MaxInt32)
	for _, e := range edges {
		u, v := e.Endpoints()
		if t := ix.EdgeTruss(u, v); t < minTruss {
			minTruss = t
		}
	}
	if len(edges) == 0 {
		minTruss = ix.VertexTruss(terminals[0])
	}
	return &Tree{
		Terminals: append([]int(nil), terminals...),
		Vertices:  tree.Vertices(),
		Edges:     edges,
		MinTruss:  minTruss,
		Weight:    weight,
	}, nil
}

func dedupe(q []int) []int {
	seen := make(map[int]bool, len(q))
	out := make([]int, 0, len(q))
	for _, v := range q {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
