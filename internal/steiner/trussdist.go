// Package steiner provides the truss-distance metric (Definition 7 of the
// paper) and a KMB/Mehlhorn-style 2-approximate Steiner tree over it, the
// seed structure of the LCTC local-exploration algorithm (Algorithm 5).
package steiner

import (
	"math"

	"repro/internal/trussindex"
)

// Inf marks unreachable truss distances.
var Inf = math.Inf(1)

// Metric evaluates the truss distance
//
//	ˆdist_P(u,v) = dist_P(u,v) + γ·(τ̄(∅) − min_{e∈P} τ(e))
//
// exactly, by scanning the distinct trussness thresholds t in descending
// order and running a BFS restricted to edges with τ ≥ t: the optimum over
// paths equals the minimum over thresholds of hops_t + γ(τ̄(∅) − t).
type Metric struct {
	ix         *trussindex.Index
	gamma      float64
	thresholds []int32
}

// NewMetric builds a Metric with penalty weight gamma >= 0. gamma = 0
// degenerates to plain hop distance. The threshold list is shared with the
// index, so construction is allocation-free.
func NewMetric(ix *trussindex.Index, gamma float64) *Metric {
	if gamma < 0 {
		gamma = 0
	}
	return &Metric{ix: ix, gamma: gamma, thresholds: ix.ThresholdsShared()}
}

// Gamma returns the penalty weight.
func (m *Metric) Gamma() float64 { return m.gamma }

// DistancesFrom returns for every vertex v the truss distance from src, plus
// for each v the threshold t achieving it (0 when unreachable). Unreachable
// vertices get Inf.
func (m *Metric) DistancesFrom(src int) (dist []float64, bestT []int32) {
	ws := m.ix.AcquireWorkspace()
	defer ws.Release()
	n := m.ix.Graph().N()
	dist = make([]float64, n)
	bestT = make([]int32, n)
	_ = m.distancesInto(src, dist, bestT, ws)
	return dist, bestT
}

// distancesInto fills caller-owned output arrays (length n) using workspace
// scratch. Per threshold, only the BFS-reached subgraph is traversed and
// merged — the whole-graph work is the one-time Inf fill of the outputs.
// The workspace cancel hook is polled once per threshold BFS (the natural
// "BFS-level" granularity of this metric); on cancellation the outputs are
// left partially filled and the context error is returned.
func (m *Metric) distancesInto(src int, dist []float64, bestT []int32, ws *trussindex.Workspace) error {
	for i := range dist {
		dist[i] = Inf
		bestT[i] = 0
	}
	if src < 0 || src >= len(dist) {
		return nil
	}
	dist[src] = 0
	if len(m.thresholds) > 0 {
		bestT[src] = m.thresholds[0]
	}
	hop, st := ws.ValA, ws.StampA
	queue := ws.QueueA
	maxT := float64(m.ix.MaxTruss())
	for _, t := range m.thresholds {
		if err := ws.Canceled(); err != nil {
			ws.QueueA = queue
			return err
		}
		penalty := m.gamma * (maxT - float64(t))
		// Stamped BFS over edges with τ >= t.
		st.Next()
		st.Set(int32(src))
		hop[src] = 0
		queue = queue[:0]
		queue = append(queue, int32(src))
		for head := 0; head < len(queue); head++ {
			v := int(queue[head])
			hv := hop[v]
			nbrs, _ := m.ix.NeighborsAtLeast(v, t)
			for _, u := range nbrs {
				if st.Visit(u) {
					hop[u] = hv + 1
					queue = append(queue, u)
				}
			}
		}
		// Merge over the reached set only.
		for _, vq := range queue {
			if d := float64(hop[vq]) + penalty; d < dist[vq] {
				dist[vq] = d
				bestT[vq] = t
			}
		}
	}
	ws.QueueA = queue
	return nil
}

// PathAtThreshold returns a shortest path (as a vertex sequence src..dst) in
// the subgraph of edges with trussness >= t, or nil if dst is unreachable.
func (m *Metric) PathAtThreshold(src, dst int, t int32) []int {
	ws := m.ix.AcquireWorkspace()
	defer ws.Release()
	return m.pathAtThreshold(src, dst, t, ws)
}

// pathAtThreshold is PathAtThreshold on workspace scratch: parent pointers
// live in ValB under StampB (unmarked = undiscovered), so only the
// traversed subgraph is touched. The returned path is freshly allocated.
func (m *Metric) pathAtThreshold(src, dst int, t int32, ws *trussindex.Workspace) []int {
	n := m.ix.Graph().N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil
	}
	parent, st := ws.ValB, ws.StampB
	st.Next()
	st.Set(int32(src))
	parent[src] = -1
	queue := ws.QueueB[:0]
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		if v == dst {
			break
		}
		nbrs, _ := m.ix.NeighborsAtLeast(v, t)
		for _, u := range nbrs {
			if st.Visit(u) {
				parent[u] = int32(v)
				queue = append(queue, u)
			}
		}
	}
	ws.QueueB = queue
	if !st.Marked(int32(dst)) {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = int(parent[v]) {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TrussDistance returns the exact truss distance between u and v (Inf if
// disconnected) together with the realizing threshold.
func (m *Metric) TrussDistance(u, v int) (float64, int32) {
	dist, bestT := m.DistancesFrom(u)
	if v < 0 || v >= len(dist) {
		return Inf, 0
	}
	return dist[v], bestT[v]
}

// PathMinTruss returns the minimum edge trussness along a vertex path.
func PathMinTruss(ix *trussindex.Index, path []int) int32 {
	if len(path) < 2 {
		return 0
	}
	min := int32(math.MaxInt32)
	for i := 0; i+1 < len(path); i++ {
		if t := ix.EdgeTruss(path[i], path[i+1]); t < min {
			min = t
		}
	}
	return min
}

// PathTrussDistance evaluates Definition 7 directly on an explicit path:
// len + γ(τ̄(∅) − min edge trussness). Used by tests as an oracle.
func PathTrussDistance(ix *trussindex.Index, path []int, gamma float64) float64 {
	if len(path) < 2 {
		return 0
	}
	return float64(len(path)-1) + gamma*float64(ix.MaxTruss()-PathMinTruss(ix, path))
}
