package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// On-disk layout of a log directory:
//
//	wal-<index>.seg          append-only record segments, monotonic index
//	checkpoint-<seq>.ctc     atomic full-state snapshots (opaque payload)
//	*.tmp                    in-flight checkpoint writes (ignored, removed)
//
// Segment format: an 8-byte header "CTCWAL1\n", then records:
//
//	u32 LE  payload length
//	u32 LE  CRC-32C (Castagnoli) of the payload
//	payload:
//	    uvarint seq        (the publish epoch this batch folds into)
//	    uvarint count
//	    count × { 1 byte op, uvarint u, uvarint v }
//
// Records are seq-nondecreasing within and across segments. A record is
// durable once the segment has been fsynced past it; the writer batches
// many records between fsyncs (group commit — see Sync). On Open, the tail
// of the *last* segment is scanned and any torn record (short header, short
// payload, CRC mismatch) is truncated away: it can only be the suffix the
// crash cut off, because every earlier segment was fully synced before the
// next was created. A torn record in a non-final segment means real
// corruption and fails Open with ErrCorruptLog.
const (
	segmentHeader = "CTCWAL1\n"
	segPrefix     = "wal-"
	segSuffix     = ".seg"
	ckptPrefix    = "checkpoint-"
	ckptSuffix    = ".ctc"
	tmpSuffix     = ".tmp"

	// maxRecordBytes bounds a single record; a length field beyond it is
	// treated as torn/corrupt rather than trusted as an allocation size.
	maxRecordBytes = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptLog reports damage that recovery must not silently repair: a
// bad record in the *interior* of the log (not the torn tail).
var ErrCorruptLog = errors.New("wal: corrupt log interior")

// Op is an update verb.
type Op byte

const (
	OpAdd    Op = 0
	OpRemove Op = 1
)

// Update is one logged edge mutation.
type Update struct {
	Op   Op
	U, V int
}

// Options tunes a Log. The zero value selects the defaults.
type Options struct {
	// FS is the filesystem; default OsFS{}.
	FS FS
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 4 MiB.
	SegmentBytes int64
	// NoSync makes Sync a no-op: appends stay in the page cache at the
	// kernel's mercy. Crash durability is forfeited — this exists to
	// measure fsync cost (ctcbench -wal) and for tests, not for serving.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OsFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Stats is a point-in-time view of the log, cheap enough for /stats.
type Stats struct {
	LastSeq       uint64        // highest appended (not necessarily synced) seq
	DurableSeq    uint64        // highest seq covered by a completed Sync
	CheckpointSeq uint64        // newest checkpoint, 0 if none
	Segments      int           // live segment files including the active one
	Bytes         int64         // bytes across live segments
	Appends       int64         // records appended this process
	Syncs         int64         // completed group commits
	LastSyncTime  time.Duration // latency of the most recent fsync
}

type segment struct {
	name  string
	index uint64 // monotonic rotation counter parsed from the name
	first uint64 // lowest seq in the segment, 0 if empty
	last  uint64 // highest seq in the segment, 0 if empty
	size  int64  // valid bytes (post tail repair)
}

// Log is an open write-ahead log. It is safe for one appender goroutine
// plus any number of Stats readers; Replay must finish before appending
// starts (Open → Replay → serve).
type Log struct {
	mu   sync.Mutex
	dir  string
	fs   FS
	opts Options

	segments []segment // ascending by index; last is active
	active   File      // nil until the first append after Open
	ckpts    []uint64  // ascending checkpoint seqs

	lastSeq    uint64
	durableSeq uint64
	appends    int64
	syncs      int64
	lastSync   time.Duration
	pendingSeq uint64 // highest appended-but-unsynced seq

	// syncObs, when set, receives the latency of every real fsync (telemetry
	// histogram feed). Install with SetSyncObserver before appending starts.
	syncObs func(time.Duration)
}

// SetSyncObserver installs fn to be called with each fsync's latency.
// Must be called before concurrent use of the log (wiring time); fn must
// not call back into the log.
func (l *Log) SetSyncObserver(fn func(time.Duration)) {
	l.mu.Lock()
	l.syncObs = fn
	l.mu.Unlock()
}

// Open opens (or initializes) the log directory, repairing any torn tail
// left by a crash: the last segment is truncated to its final valid record
// and leftover checkpoint temp files are removed.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{dir: dir, fs: opts.FS, opts: opts}
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	names, err := l.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A checkpoint write the crash interrupted; never renamed, so
			// never authoritative. Best-effort removal.
			_ = l.fs.Remove(l.path(name))
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("wal: unrecognized segment name %q", name)
			}
			l.segments = append(l.segments, segment{name: name, index: idx})
		case strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix):
			seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("wal: unrecognized checkpoint name %q", name)
			}
			l.ckpts = append(l.ckpts, seq)
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i].index < l.segments[j].index })
	sort.Slice(l.ckpts, func(i, j int) bool { return l.ckpts[i] < l.ckpts[j] })

	// Scan every segment: interior segments must be fully valid; the last
	// one may be torn and is repaired in place.
	for i := range l.segments {
		s := &l.segments[i]
		final := i == len(l.segments)-1
		validLen, first, last, scanErr := l.scanSegment(s.name, nil)
		if scanErr != nil && !final {
			return nil, fmt.Errorf("%w: segment %s: %v", ErrCorruptLog, s.name, scanErr)
		}
		if scanErr != nil { // torn tail in the final segment: truncate it away
			if err := l.fs.Truncate(l.path(s.name), validLen); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", s.name, err)
			}
		}
		s.size, s.first, s.last = validLen, first, last
		if last > l.lastSeq {
			l.lastSeq = last
		}
	}
	// Sequence numbers must not regress across segments (they may repeat:
	// rotation can split one epoch's batches).
	for i := 1; i < len(l.segments); i++ {
		prev, cur := l.segments[i-1], l.segments[i]
		if prev.last != 0 && cur.first != 0 && cur.first < prev.last {
			return nil, fmt.Errorf("%w: segment %s starts at seq %d below predecessor's %d",
				ErrCorruptLog, cur.name, cur.first, prev.last)
		}
	}
	// Everything that survived Open is durable by definition (it was read
	// back from the disk image).
	l.durableSeq = l.lastSeq
	return l, nil
}

func (l *Log) path(name string) string { return filepath.Join(l.dir, name) }

// scanSegment validates name front to back. It returns the length of the
// valid prefix, the first/last seqs seen, and a non-nil error describing
// the first invalid record, if any. When fn is non-nil it is called for
// every valid record in order.
func (l *Log) scanSegment(name string, fn func(seq uint64, batch []Update) error) (validLen int64, first, last uint64, err error) {
	f, err := l.fs.OpenFile(l.path(name), os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	head := make([]byte, len(segmentHeader))
	if _, err := io.ReadFull(f, head); err != nil {
		return 0, 0, 0, fmt.Errorf("short segment header: %v", err)
	}
	if string(head) != segmentHeader {
		return 0, 0, 0, fmt.Errorf("bad segment header %q", head)
	}
	validLen = int64(len(segmentHeader))
	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return validLen, first, last, nil // clean end
			}
			return validLen, first, last, fmt.Errorf("short record header: %v", err)
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > maxRecordBytes {
			return validLen, first, last, fmt.Errorf("implausible record length %d", n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return validLen, first, last, fmt.Errorf("short record payload: %v", err)
		}
		if got := crc32.Checksum(payload, crcTable); got != want {
			return validLen, first, last, fmt.Errorf("record CRC mismatch: %08x != %08x", got, want)
		}
		seq, batch, derr := decodeRecord(payload)
		if derr != nil {
			return validLen, first, last, derr
		}
		if seq < last {
			return validLen, first, last, fmt.Errorf("sequence regressed %d -> %d", last, seq)
		}
		if first == 0 {
			first = seq
		}
		last = seq
		validLen += int64(len(hdr)) + int64(n)
		if fn != nil {
			if err := fn(seq, batch); err != nil {
				return validLen, first, last, err
			}
		}
	}
}

func decodeRecord(p []byte) (seq uint64, batch []Update, err error) {
	seq, k := binary.Uvarint(p)
	if k <= 0 || seq == 0 {
		return 0, nil, fmt.Errorf("bad record seq")
	}
	p = p[k:]
	count, k := binary.Uvarint(p)
	if k <= 0 || count > uint64(len(p)) { // each op takes >= 3 bytes; cheap sanity bound
		return 0, nil, fmt.Errorf("bad record count")
	}
	p = p[k:]
	batch = make([]Update, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return 0, nil, fmt.Errorf("record truncated mid-op")
		}
		op := Op(p[0])
		if op != OpAdd && op != OpRemove {
			return 0, nil, fmt.Errorf("bad op %d", op)
		}
		p = p[1:]
		u, k := binary.Uvarint(p)
		if k <= 0 {
			return 0, nil, fmt.Errorf("record truncated in u")
		}
		p = p[k:]
		v, k := binary.Uvarint(p)
		if k <= 0 {
			return 0, nil, fmt.Errorf("record truncated in v")
		}
		p = p[k:]
		batch = append(batch, Update{Op: op, U: int(u), V: int(v)})
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("trailing bytes in record")
	}
	return seq, batch, nil
}

// Append encodes one update batch as a single record under seq and writes
// it to the active segment. It does NOT make the record durable — call Sync
// to group-commit everything appended since the last call. seq must be > 0
// and nondecreasing across calls (batches folding into the same publish
// epoch share its seq).
func (l *Log) Append(seq uint64, batch []Update) error {
	if seq == 0 {
		return fmt.Errorf("wal: seq must be positive")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.lastSeq {
		return fmt.Errorf("wal: sequence regressed %d -> %d", l.lastSeq, seq)
	}
	if err := l.ensureActive(); err != nil {
		return err
	}
	// Rotate before the record so a record never spans segments.
	if l.activeSeg().size > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	payload := make([]byte, 0, 16+8*len(batch))
	payload = binary.AppendUvarint(payload, seq)
	payload = binary.AppendUvarint(payload, uint64(len(batch)))
	for _, up := range batch {
		payload = append(payload, byte(up.Op))
		payload = binary.AppendUvarint(payload, uint64(up.U))
		payload = binary.AppendUvarint(payload, uint64(up.V))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := l.active.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	if _, err := l.active.Write(payload); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	s := l.activeSeg()
	s.size += int64(len(hdr)) + int64(len(payload))
	if s.first == 0 {
		s.first = seq
	}
	s.last = seq
	l.lastSeq = seq
	l.pendingSeq = seq
	l.appends++
	return nil
}

// Sync group-commits: one fsync covers every record appended since the
// previous Sync. After it returns, those records survive a crash. With
// Options.NoSync it only advances the bookkeeping.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.active == nil || l.pendingSeq == 0 {
		return nil
	}
	if !l.opts.NoSync {
		t0 := time.Now()
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.lastSync = time.Since(t0)
		if l.syncObs != nil {
			l.syncObs(l.lastSync)
		}
	}
	l.syncs++
	if l.pendingSeq > l.durableSeq {
		l.durableSeq = l.pendingSeq
	}
	l.pendingSeq = 0
	return nil
}

func (l *Log) activeSeg() *segment { return &l.segments[len(l.segments)-1] }

// ensureActive opens the newest segment for appending, creating the first
// segment on a fresh log. Reopened segments were already tail-repaired by
// Open, so appending continues at their valid end — except a segment torn
// before its header became durable (repaired to zero bytes), which is
// rewritten from scratch.
func (l *Log) ensureActive() error {
	if l.active != nil {
		return nil
	}
	if len(l.segments) == 0 {
		return l.createSegment(1)
	}
	s := l.activeSeg()
	if s.size < int64(len(segmentHeader)) {
		f, err := l.fs.OpenFile(l.path(s.name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("wal: rewriting torn segment %s: %w", s.name, err)
		}
		if _, err := f.Write([]byte(segmentHeader)); err != nil {
			f.Close()
			return fmt.Errorf("wal: rewriting segment header: %w", err)
		}
		s.size = int64(len(segmentHeader))
		l.active = f
		return nil
	}
	f, err := l.fs.OpenFile(l.path(s.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening active segment: %w", err)
	}
	l.active = f
	return nil
}

// createSegment starts segment idx: create, write the header, and make the
// directory entry durable. The header itself becomes durable with the first
// group commit; a crash before that leaves a short segment that Open
// tolerates as the (empty) torn tail.
func (l *Log) createSegment(idx uint64) error {
	name := fmt.Sprintf("%s%016x%s", segPrefix, idx, segSuffix)
	f, err := l.fs.OpenFile(l.path(name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	if _, err := f.Write([]byte(segmentHeader)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing dir after segment create: %w", err)
	}
	l.segments = append(l.segments, segment{name: name, index: idx, size: int64(len(segmentHeader))})
	l.active = f
	return nil
}

// rotate seals the active segment (fsync so its interior is fully durable —
// the Open invariant that only the last segment can be torn depends on
// this) and starts the next one.
func (l *Log) rotate() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync on rotate: %w", err)
	}
	if l.pendingSeq > l.durableSeq {
		l.durableSeq = l.pendingSeq
	}
	l.pendingSeq = 0
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: closing sealed segment: %w", err)
	}
	l.active = nil
	return l.createSegment(l.activeSeg().index + 1)
}

// Replay calls fn for every logged batch with seq > afterSeq, in append
// order. It must run before the first Append after Open.
func (l *Log) Replay(afterSeq uint64, fn func(seq uint64, batch []Update) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for _, s := range segs {
		if s.last != 0 && s.last <= afterSeq {
			continue // entirely below the checkpoint
		}
		if s.size < int64(len(segmentHeader)) {
			// The final segment, torn before even its header became durable
			// and repaired to zero length by Open. Nothing to replay.
			continue
		}
		_, _, _, err := l.scanSegment(s.name, func(seq uint64, batch []Update) error {
			if seq <= afterSeq {
				return nil
			}
			return fn(seq, batch)
		})
		// Open already repaired tails; a scan error now is a real failure.
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", s.name, err)
		}
	}
	return nil
}

// WriteCheckpoint atomically persists a full-state snapshot for seq: the
// payload is written to a temp file, fsynced, renamed into place, and the
// directory is fsynced — a crash anywhere leaves either the old checkpoint
// set or the new one, never a half-written file under the final name. On
// success, segments entirely at or below seq and older checkpoints are
// pruned (best effort: a crash mid-prune leaves stale files that the next
// checkpoint removes).
//
// The payload should carry its own integrity check (the trussindex CTCIDX3
// trailer does); recovery validates it at load time and falls back to an
// older checkpoint if damaged.
func (l *Log) WriteCheckpoint(seq uint64, payload func(io.Writer) error) error {
	if seq == 0 {
		return fmt.Errorf("wal: checkpoint seq must be positive")
	}
	// Everything the checkpoint covers must be durable in the log first;
	// otherwise pruning could discard the only copy of an unsynced batch.
	l.mu.Lock()
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	final := fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
	tmp := final + tmpSuffix
	f, err := l.fs.OpenFile(l.path(tmp), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	err = payload(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = l.fs.Remove(l.path(tmp))
		return fmt.Errorf("wal: writing checkpoint %d: %w", seq, err)
	}
	if err := l.fs.Rename(l.path(tmp), l.path(final)); err != nil {
		return fmt.Errorf("wal: installing checkpoint %d: %w", seq, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: syncing dir after checkpoint %d: %w", seq, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ckpts = append(l.ckpts, seq)
	sort.Slice(l.ckpts, func(i, j int) bool { return l.ckpts[i] < l.ckpts[j] })
	return l.pruneLocked()
}

// pruneLocked enforces the retention policy: the newest TWO checkpoints
// survive, along with every segment holding a record above the older
// retained checkpoint. Keeping the previous checkpoint (not just the
// newest) is what makes corruption fallback sound — if the newest
// checkpoint file is later found damaged, the previous one plus the
// retained segments can still roll the state fully forward; pruning up to
// the newest would have destroyed the only path. The active segment always
// survives.
func (l *Log) pruneLocked() error {
	if len(l.ckpts) == 0 {
		return nil
	}
	keepFrom := len(l.ckpts) - 2
	if keepFrom < 0 {
		keepFrom = 0
	}
	floor := l.ckpts[keepFrom]
	kept := l.segments[:0]
	for i, s := range l.segments {
		// An empty or fully-covered segment is prunable unless it is the
		// active (last) one.
		if i < len(l.segments)-1 && s.last <= floor {
			if err := l.fs.Remove(l.path(s.name)); err != nil {
				l.segments = append(kept, l.segments[i:]...)
				return fmt.Errorf("wal: pruning segment %s: %w", s.name, err)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.segments = kept
	keptCk := l.ckpts[:0]
	for _, c := range l.ckpts {
		if c < floor {
			name := fmt.Sprintf("%s%016x%s", ckptPrefix, c, ckptSuffix)
			if err := l.fs.Remove(l.path(name)); err != nil {
				return fmt.Errorf("wal: pruning checkpoint %d: %w", c, err)
			}
			continue
		}
		keptCk = append(keptCk, c)
	}
	l.ckpts = keptCk
	// Make the removals durable; a crash before this just resurrects
	// already-pruned files, which recovery ignores.
	return l.fs.SyncDir(l.dir)
}

// Checkpoints returns the available checkpoint seqs, newest first.
func (l *Log) Checkpoints() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, len(l.ckpts))
	for i, c := range l.ckpts {
		out[len(out)-1-i] = c
	}
	return out
}

// OpenCheckpoint opens the payload of checkpoint seq for reading.
func (l *Log) OpenCheckpoint(seq uint64) (io.ReadCloser, error) {
	name := fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
	return l.fs.OpenFile(l.path(name), os.O_RDONLY, 0)
}

// LastSeq returns the highest appended sequence number (durable or not).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LastSeq:      l.lastSeq,
		DurableSeq:   l.durableSeq,
		Segments:     len(l.segments),
		Appends:      l.appends,
		Syncs:        l.syncs,
		LastSyncTime: l.lastSync,
	}
	if len(l.ckpts) > 0 {
		st.CheckpointSeq = l.ckpts[len(l.ckpts)-1]
	}
	for _, s := range l.segments {
		st.Bytes += s.size
	}
	return st
}

// Close seals the log: outstanding appends are synced and the active
// segment handle is closed. The directory remains recoverable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if l.active != nil {
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	return err
}
