package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

func batch(ups ...Update) []Update { return ups }

func up(op Op, u, v int) Update { return Update{Op: op, U: u, V: v} }

// collect replays the whole log into a flat (seq, update) trace.
type traced struct {
	seq uint64
	up  Update
}

func replayAll(t *testing.T, l *Log, after uint64) []traced {
	t.Helper()
	var out []traced
	if err := l.Replay(after, func(seq uint64, b []Update) error {
		for _, u := range b {
			out = append(out, traced{seq, u})
		}
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestAppendSyncReplayRoundTrip is the basic contract on both the real and
// the in-memory filesystem: what is appended is replayed, in order, with
// seqs intact, across a close/reopen.
func TestAppendSyncReplayRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   FS
	}{
		{"osfs", OsFS{}},
		{"memfs", NewMemFS()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{FS: tc.fs})
			if err != nil {
				t.Fatal(err)
			}
			want := []traced{
				{2, up(OpAdd, 1, 2)},
				{2, up(OpRemove, 3, 4)},
				{3, up(OpAdd, 100000, 7)},
				{5, up(OpAdd, 8, 9)},
			}
			if err := l.Append(2, batch(want[0].up, want[1].up)); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(3, batch(want[2].up)); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(5, batch(want[3].up)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{FS: tc.fs})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			got := replayAll(t, l2, 0)
			if len(got) != len(want) {
				t.Fatalf("replayed %d updates, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("replay[%d] = %+v, want %+v", i, got[i], want[i])
				}
			}
			// Filtered replay skips everything at or below the watermark.
			if got := replayAll(t, l2, 3); len(got) != 1 || got[0].seq != 5 {
				t.Fatalf("replay after 3 = %+v, want just seq 5", got)
			}
			if l2.LastSeq() != 5 {
				t.Fatalf("LastSeq = %d, want 5", l2.LastSeq())
			}
		})
	}
}

// TestSeqMonotonicity pins the append-side guards: zero and regressing
// seqs are rejected, repeats are allowed (several batches can fold into one
// publish epoch).
func TestSeqMonotonicity(t *testing.T) {
	l, err := Open(t.TempDir(), Options{FS: NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(0, batch(up(OpAdd, 1, 2))); err == nil {
		t.Fatal("seq 0 accepted")
	}
	if err := l.Append(4, batch(up(OpAdd, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(4, batch(up(OpAdd, 2, 3))); err != nil {
		t.Fatal("repeated seq rejected")
	}
	if err := l.Append(3, batch(up(OpAdd, 3, 4))); err == nil {
		t.Fatal("regressing seq accepted")
	}
}

// TestSegmentRotationAndPrune rotates through several segments, then
// checkpoints and verifies fully-covered segments and stale checkpoints are
// pruned while replay stays complete above the checkpoint.
func TestSegmentRotationAndPrune(t *testing.T) {
	fs := NewMemFS()
	dir := t.TempDir()
	l, err := Open(dir, Options{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for seq := uint64(1); seq <= 40; seq++ {
		if err := l.Append(seq, batch(up(OpAdd, int(seq), int(seq)+1), up(OpRemove, 7, int(seq)))); err != nil {
			t.Fatal(err)
		}
		total += 2
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("only %d segments after 40 batches with 256-byte rotation", st.Segments)
	}
	if st.DurableSeq != 40 || st.LastSeq != 40 {
		t.Fatalf("durable/last = %d/%d, want 40/40", st.DurableSeq, st.LastSeq)
	}
	if got := replayAll(t, l, 0); len(got) != total {
		t.Fatalf("replayed %d, want %d", len(got), total)
	}

	// Three checkpoints: retention keeps the newest two (the older of them
	// is the corruption-fallback anchor) and prunes everything below —
	// checkpoint 20 and every segment fully covered by checkpoint 30.
	for _, seq := range []uint64{20, 30, 35} {
		payload := fmt.Sprintf("snap%d", seq)
		if err := l.WriteCheckpoint(seq, func(w io.Writer) error { _, err := w.Write([]byte(payload)); return err }); err != nil {
			t.Fatal(err)
		}
	}
	cks := l.Checkpoints()
	if len(cks) != 2 || cks[0] != 35 || cks[1] != 30 {
		t.Fatalf("checkpoints after prune = %v, want [35 30]", cks)
	}
	rc, err := l.OpenCheckpoint(35)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "snap35" {
		t.Fatalf("checkpoint payload %q", data)
	}
	after := replayAll(t, l, 35)
	if len(after) != 2*(40-35) {
		t.Fatalf("replay above checkpoint: %d updates, want %d", len(after), 2*(40-35))
	}
	st = l.Stats()
	if st.CheckpointSeq != 35 {
		t.Fatalf("stats checkpoint seq %d", st.CheckpointSeq)
	}
	// Every surviving segment must still be needed: its last record above
	// the checkpoint (or it is the active segment).
	names, _ := fs.ReadDir(dir)
	nseg := 0
	for _, n := range names {
		if strings.HasSuffix(n, segSuffix) {
			nseg++
		}
	}
	if nseg != st.Segments || nseg >= 5 {
		t.Fatalf("pruning left %d segments (stats says %d)", nseg, st.Segments)
	}

	// Reopen after all of that: state is intact.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Checkpoints(); len(got) != 2 || got[0] != 35 {
		t.Fatalf("reopened checkpoints = %v", got)
	}
	if got := replayAll(t, l2, 35); len(got) != 2*5 {
		t.Fatalf("reopened replay above checkpoint: %d updates", len(got))
	}
}

// TestTornTailTruncatedOnOpen crashes mid-write so a torn record prefix
// lands on disk, then reopens: the torn suffix must be dropped, every
// synced record kept, and appending must continue cleanly.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, keep := range []float64{0, 0.3, 0.7, 1} {
		t.Run(fmt.Sprintf("keep=%.1f", keep), func(t *testing.T) {
			fs := NewMemFS()
			dir := t.TempDir()
			l, err := Open(dir, Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(1, batch(up(OpAdd, 1, 2))); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			// Crash on the very next write: its torn prefix reaches disk.
			fs.CrashAfter(0, keep)
			err = l.Append(2, batch(up(OpAdd, 3, 4), up(OpAdd, 5, 6)))
			if err == nil {
				// The header write may have torn instead of the payload
				// write; either way something must have failed by Sync.
				err = l.Sync()
			}
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("crash not surfaced: %v", err)
			}
			fs.Crash()

			l2, err := Open(dir, Options{FS: fs})
			if err != nil {
				t.Fatalf("open after crash: %v", err)
			}
			got := replayAll(t, l2, 0)
			if len(got) != 1 || got[0].seq != 1 {
				t.Fatalf("replay after torn tail = %+v, want only seq 1", got)
			}
			// The log must keep working where it left off.
			if err := l2.Append(2, batch(up(OpAdd, 9, 9))); err != nil {
				t.Fatal(err)
			}
			if err := l2.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, err := Open(dir, Options{FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			defer l3.Close()
			if got := replayAll(t, l3, 0); len(got) != 2 {
				t.Fatalf("after repair+append, replay = %+v", got)
			}
		})
	}
}

// TestUnsyncedAppendLostOnCrash: without Sync, a crash loses the batch —
// and Open must see a clean (not corrupt) log.
func TestUnsyncedAppendLostOnCrash(t *testing.T) {
	fs := NewMemFS()
	dir := t.TempDir()
	l, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, batch(up(OpAdd, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, batch(up(OpAdd, 3, 4))); err != nil {
		t.Fatal(err)
	}
	// No sync; reboot.
	fs.Crash()
	l2, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := replayAll(t, l2, 0)
	if len(got) != 1 || got[0].seq != 1 {
		t.Fatalf("unsynced batch survived the crash: %+v", got)
	}
}

// TestInteriorCorruptionRefused: a bit flip in a sealed (non-final) segment
// is not a torn tail and must fail Open with ErrCorruptLog, not be
// silently truncated.
func TestInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 30; seq++ {
		if err := l.Append(seq, batch(up(OpAdd, int(seq), int(seq+1)))); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("need >= 2 segments, got %d", st.Segments)
	}
	first := l.segments[0].name
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(dir + "/" + first)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(dir+"/"+first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("interior corruption: Open err = %v, want ErrCorruptLog", err)
	}
}

// TestInjectedWriteFailure: a non-crash fault (ENOSPC-style) surfaces as an
// error without wedging the log data that was already durable.
func TestInjectedWriteFailure(t *testing.T) {
	fs := NewMemFS()
	dir := t.TempDir()
	l, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, batch(up(OpAdd, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("%w: disk full", ErrInjected)
	fs.Fail = func(op, name string) error {
		if op == "write" {
			return boom
		}
		return nil
	}
	if err := l.Append(2, batch(up(OpAdd, 3, 4))); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write failure not surfaced: %v", err)
	}
	fs.Fail = nil
}

// TestShortWriteDetected: a short write tears a record in the cache; after
// a crash the tail is repaired, and before any crash the in-process error
// is surfaced to the caller.
func TestShortWriteDetected(t *testing.T) {
	fs := NewMemFS()
	dir := t.TempDir()
	l, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, batch(up(OpAdd, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	armed := true
	fs.Fail = func(op, name string) error {
		if op == "write" && armed {
			armed = false
			return &ShortWrite{N: 3}
		}
		return nil
	}
	if err := l.Append(2, batch(up(OpAdd, 3, 4))); err == nil {
		t.Fatal("short write not surfaced")
	}
	fs.Fail = nil
	// The 3 stray bytes sit unsynced in the cache; a crash discards them
	// and the log reopens with exactly the synced record.
	fs.Crash()
	l2, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != 1 {
		t.Fatalf("replay = %+v, want 1 update", got)
	}
}

// TestNoSyncMode: appends replay without any fsync having run (clean close
// still flushes); the trade-off is crash durability, which MemFS shows by
// losing everything unsynced.
func TestNoSyncMode(t *testing.T) {
	fs := NewMemFS()
	dir := t.TempDir()
	l, err := Open(dir, Options{FS: fs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, batch(up(OpAdd, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // bookkeeping only
		t.Fatal(err)
	}
	if st := l.Stats(); st.DurableSeq != 1 {
		t.Fatalf("NoSync bookkeeping: durable %d", st.DurableSeq)
	}
	fs.Crash()
	l2, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := replayAll(t, l2, 0); len(got) != 0 {
		t.Fatalf("NoSync data survived a crash: %+v", got)
	}
}

// TestCheckpointAtomicity: crash at every single filesystem operation of
// WriteCheckpoint; after each crash the directory must hold either the old
// checkpoint set or the new one — never a half-written file under the
// final checkpoint name.
func TestCheckpointAtomicity(t *testing.T) {
	// First, count the ops a successful checkpoint takes.
	probe := NewMemFS()
	l, err := Open(t.TempDir(), Options{FS: probe})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, batch(up(OpAdd, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(1, func(w io.Writer) error { _, err := w.Write(bytes.Repeat([]byte("x"), 64)); return err }); err != nil {
		t.Fatal(err)
	}
	base := probe.OpCount()

	for at := 0; at < base; at++ {
		fs := NewMemFS()
		dir := t.TempDir()
		l, err := Open(dir, Options{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		// Arm after setup so the crash lands somewhere in the append/sync/
		// checkpoint sequence.
		fs.CrashAfter(at, 0.5)
		_ = l.Append(1, batch(up(OpAdd, 1, 2)))
		_ = l.Sync()
		_ = l.WriteCheckpoint(1, func(w io.Writer) error { _, err := w.Write(bytes.Repeat([]byte("x"), 64)); return err })
		fs.Crash()

		l2, err := Open(dir, Options{FS: fs})
		if err != nil {
			t.Fatalf("crash at op %d: reopen failed: %v", at, err)
		}
		for _, seq := range l2.Checkpoints() {
			rc, err := l2.OpenCheckpoint(seq)
			if err != nil {
				t.Fatalf("crash at op %d: checkpoint %d unopenable: %v", at, seq, err)
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || len(data) != 64 {
				t.Fatalf("crash at op %d: checkpoint %d torn: %d bytes, err %v", at, seq, len(data), err)
			}
		}
		l2.Close()
	}
}
