package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// ErrCrashed is returned by every MemFS operation issued through a handle
// that predates a simulated crash, and by new operations while the crash
// budget has fired but Crash has not yet been called.
var ErrCrashed = errors.New("wal: simulated crash")

// ErrInjected is the base error of hook-injected failures.
var ErrInjected = errors.New("wal: injected fault")

// MemFS is an in-memory FS with page-cache crash semantics, built for
// fault-injection tests of the durability protocol:
//
//   - Written data is buffered: it becomes durable only when the file is
//     Sync'd. A simulated Crash reverts every file to its last-synced
//     prefix (WAL files are append-only, so "synced content" is a length
//     watermark).
//   - Directory entries are buffered too: a created, renamed, or removed
//     name survives a crash only if SyncDir ran after the change.
//   - CrashAfter(n) arms a budget: the (n+1)-th durability-relevant
//     operation fails with ErrCrashed and every later operation fails too,
//     as if the process died there. For a write, a configurable fraction of
//     the in-flight data is persisted anyway (TornWriteKeep), modelling the
//     sectors that hit the platter mid-crash — this is what produces torn
//     tail records.
//   - Fail hooks inject non-crash errors (ENOSPC-style) at chosen
//     operations, for degraded-mode tests.
//
// After Crash(), the post-crash state is visible to fresh OpenFile/ReadDir
// calls — recovery code runs against the same MemFS, exactly like a process
// restart on the same disk.
type MemFS struct {
	mu    sync.Mutex
	gen   int // bumped by Crash; handles from older generations fail
	files map[string]*memFile
	// durableLinks is the directory as it exists on "disk": name -> file.
	// SyncDir copies the live namespace here; Crash restores from here.
	durableLinks map[string]*memFile

	ops      int // durability-relevant operations seen so far
	crashAt  int // fire a crash at this op index; -1 = disarmed
	crashed  bool
	tornKeep float64 // fraction of an in-flight write persisted at crash
	// Fail, when set, is consulted before every durability-relevant
	// operation; a non-nil return fails that operation with the error
	// (wrap ErrInjected for errors.Is matching). It runs after the crash
	// budget check.
	Fail func(op, name string) error
}

type memFile struct {
	content []byte
	synced  int // bytes of content that survive a crash
}

// NewMemFS returns an empty filesystem with no faults armed.
func NewMemFS() *MemFS {
	return &MemFS{
		files:        map[string]*memFile{},
		durableLinks: map[string]*memFile{},
		crashAt:      -1,
	}
}

// CrashAfter arms the crash budget: the op-th durability-relevant operation
// from now (0-based, counted by OpCount) fails as a crash. keep is the
// fraction of an in-flight write persisted if the crash lands on a write.
func (fs *MemFS) CrashAfter(op int, keep float64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = fs.ops + op
	fs.tornKeep = keep
}

// OpCount reports how many durability-relevant operations have run, which
// sizes the crash-point matrix.
func (fs *MemFS) OpCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the armed crash has fired.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Crash completes the simulated crash ("the machine reboots"): buffered
// file contents and directory changes are discarded, handles from before
// the crash go dead, and subsequent fresh operations succeed against the
// durable state. Valid to call whether or not a budgeted crash fired first.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.gen++
	fs.crashed = false
	fs.crashAt = -1
	// Directory reverts to its last-synced shape...
	fs.files = map[string]*memFile{}
	for name, f := range fs.durableLinks {
		fs.files[name] = f
	}
	// ...and every file to its last-synced prefix.
	for _, f := range fs.files {
		f.content = f.content[:f.synced]
	}
}

// step gates one durability-relevant operation: it fires the armed crash,
// rejects everything after a fired crash, and consults the Fail hook.
// Callers hold fs.mu. The returned "tear" is non-nil only when a crash
// landed on this very operation and the caller is a write — it receives the
// number of in-flight bytes to persist durably.
func (fs *MemFS) step(op, name string) (tear func(n int) int, err error) {
	if fs.crashed {
		return nil, ErrCrashed
	}
	idx := fs.ops
	fs.ops++
	if fs.crashAt >= 0 && idx >= fs.crashAt {
		fs.crashed = true
		keep := fs.tornKeep
		return func(n int) int { return int(float64(n) * keep) }, ErrCrashed
	}
	if fs.Fail != nil {
		if ferr := fs.Fail(op, name); ferr != nil {
			return nil, ferr
		}
	}
	return nil, nil
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	gen    int
	pos    int
	read   bool
	write  bool
	closed bool
}

func (fs *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = base(name)
	create := flag&os.O_CREATE != 0
	if create {
		// Creating a directory entry is durability-relevant.
		if _, err := fs.step("create", name); err != nil {
			return nil, err
		}
	} else if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		if !create {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &memFile{}
		fs.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.content = f.content[:0]
		if f.synced > 0 {
			f.synced = 0
		}
	}
	h := &memHandle{
		fs:    fs,
		f:     f,
		name:  name,
		gen:   fs.gen,
		read:  flag&(os.O_WRONLY) == 0,
		write: flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0,
	}
	if flag&os.O_APPEND == 0 && h.write {
		h.pos = 0
	}
	return h, nil
}

func (h *memHandle) check() error {
	if h.closed {
		return os.ErrClosed
	}
	if h.gen != h.fs.gen {
		return ErrCrashed
	}
	return nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if !h.read {
		return 0, &os.PathError{Op: "read", Path: h.name, Err: os.ErrPermission}
	}
	if h.pos >= len(h.f.content) {
		return 0, io.EOF
	}
	n := copy(p, h.f.content[h.pos:])
	h.pos += n
	return n, nil
}

// Write appends to the file (the log only ever writes sequentially; the
// checkpoint path writes a fresh O_TRUNC file front to back). A write that
// the crash budget lands on persists tornKeep of its bytes durably —
// modelling the part of an in-flight write that reached the platter — and
// returns ErrCrashed. A Fail-hook error may also deliver a short write by
// wrapping ShortWrite.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if !h.write {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrPermission}
	}
	tear, err := h.fs.step("write", h.name)
	if err != nil {
		if tear != nil {
			// The crash landed mid-write: a prefix of p hit the disk.
			keep := tear(len(p))
			h.f.content = append(h.f.content, p[:keep]...)
			h.f.synced = len(h.f.content)
			return keep, err
		}
		var sw *ShortWrite
		if errors.As(err, &sw) {
			n := min(sw.N, len(p))
			h.f.content = append(h.f.content, p[:n]...)
			return n, err
		}
		return 0, err
	}
	h.f.content = append(h.f.content, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if _, err := h.fs.step("sync", h.name); err != nil {
		return err
	}
	h.f.synced = len(h.f.content)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

// ShortWrite, returned (wrapped) from a Fail hook on a "write" op, makes
// the write deliver only N bytes before failing.
type ShortWrite struct{ N int }

func (s *ShortWrite) Error() string { return fmt.Sprintf("wal: injected short write (%d bytes)", s.N) }
func (s *ShortWrite) Unwrap() error { return ErrInjected }

func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldname, newname = base(oldname), base(newname)
	if _, err := fs.step("rename", oldname); err != nil {
		return err
	}
	f, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = base(name)
	if _, err := fs.step("remove", name); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = base(name)
	if _, err := fs.step("truncate", name); err != nil {
		return err
	}
	f, ok := fs.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if int(size) < len(f.content) {
		f.content = f.content[:size]
	}
	if f.synced > len(f.content) {
		f.synced = len(f.content)
	}
	return nil
}

// SyncDir makes the current directory shape durable: names created,
// renamed, or removed since the last SyncDir now survive a crash.
func (fs *MemFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.step("syncdir", dir); err != nil {
		return err
	}
	fs.durableLinks = map[string]*memFile{}
	for name, f := range fs.files {
		fs.durableLinks[name] = f
	}
	return nil
}

func (fs *MemFS) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = base(name)
	if fs.crashed {
		return 0, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(f.content)), nil
}
