// Package wal is an append-only, CRC-checked write-ahead log of edge-update
// batches with group-commit fsync batching, segment rotation, and atomic
// checkpointing, built for the serving tier's durability path (crash
// recovery = last checkpoint + replay).
//
// Every filesystem touch goes through the FS interface, so the whole
// durability protocol — writes, fsyncs, renames, directory syncs — can be
// driven against an injected in-memory filesystem (MemFS) that models a
// page cache: unsynced data is lost at a simulated crash, in-flight writes
// can tear, and any single operation can be made to fail. The crash-point
// matrix test in internal/serve kills the protocol at every such operation
// and proves recovery.
package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the log needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem operations of the durability protocol. All
// paths are interpreted relative to a single log directory; implementations
// need not support nested directories.
type FS interface {
	// OpenFile opens name with os-style flags (os.O_RDONLY, os.O_CREATE|
	// os.O_WRONLY|os.O_APPEND, ...).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	Remove(name string) error
	// ReadDir lists the file names in dir.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
	// Truncate cuts name to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making created/renamed/removed
	// directory entries durable.
	SyncDir(dir string) error
	// Size returns the current length of name in bytes.
	Size(name string) (int64, error)
}

// OsFS is the production FS backed by the os package.
type OsFS struct{}

func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OsFS) Remove(name string) error             { return os.Remove(name) }
func (OsFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (OsFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OsFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// base returns the final path element; MemFS keys files by it so that both
// absolute and dir-relative paths address the same namespace.
func base(name string) string { return filepath.Base(name) }
