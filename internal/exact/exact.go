// Package exact solves the CTC problem by exhaustive search on small graphs.
// The problem is NP-hard (Theorem 1), so this only scales to graphs whose
// maximal connected k-truss G0 has at most ~20 vertices; it exists to
// validate the approximation guarantees of the polynomial algorithms.
package exact

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/truss"
)

// MaxVertices bounds the size of G0 the solver will enumerate (2^MaxVertices
// subsets).
const MaxVertices = 20

// Result is an optimal closest truss community.
type Result struct {
	// Vertices is the optimal community's vertex set (original IDs).
	Vertices []int
	// K is the community trussness (the maximum feasible).
	K int32
	// Diameter is the minimum diameter over all connected K-truss subgraphs
	// containing the query.
	Diameter int
}

// ErrTooLarge is returned when G0 exceeds MaxVertices.
var ErrTooLarge = errors.New("exact: G0 too large for exhaustive search")

// Solve finds the exact minimum-diameter connected k-truss containing q,
// where k is the maximum trussness of any connected subgraph containing q.
// Because any optimal CTC is contained in the maximal connected k-truss G0,
// the search enumerates vertex subsets of G0.
func Solve(g *graph.Graph, q []int) (*Result, error) {
	d := truss.DecomposeParallel(g)
	g0, k, err := truss.MaxConnectedKTruss(g, d, q)
	if err != nil {
		return nil, err
	}
	return SolveWithin(g0, k, q)
}

// SolveWithin runs the exhaustive search inside a known G0 at trussness k.
func SolveWithin(g0 *graph.Mutable, k int32, q []int) (*Result, error) {
	verts := g0.Vertices()
	n := len(verts)
	if n > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices", ErrTooLarge, n)
	}
	idx := make(map[int]int, n)
	for i, v := range verts {
		idx[v] = i
	}
	var qMask uint32
	for _, v := range q {
		i, ok := idx[v]
		if !ok {
			return nil, fmt.Errorf("exact: query vertex %d not in G0", v)
		}
		qMask |= 1 << i
	}
	// Compact adjacency bitmasks.
	adj := make([]uint32, n)
	for i, v := range verts {
		g0.ForEachNeighbor(v, func(u int) {
			if j, ok := idx[u]; ok {
				adj[i] |= 1 << j
			}
		})
	}
	bestDiam := math.MaxInt32
	var bestMask uint32
	peeled := make([]uint32, n)
	total := uint32(1) << n
	for mask := uint32(0); mask < total; mask++ {
		if mask&qMask != qMask {
			continue
		}
		// The optimal CTC on a vertex set need not be the induced subgraph
		// (extra low-support edges may violate the truss condition), but the
		// union of all k-trusses on the set is a k-truss: peel the induced
		// subgraph down to its maximal k-truss and evaluate that.
		if !peelToKTruss(adj, mask, k, peeled) {
			continue // some vertex lost all edges: covered by a smaller mask
		}
		if !connectedMask(peeled, mask) {
			continue
		}
		if dm := diameterMask(peeled, mask); dm < bestDiam {
			bestDiam = dm
			bestMask = mask
		}
	}
	if bestDiam == math.MaxInt32 {
		return nil, errors.New("exact: no feasible subgraph (G0 itself should qualify)")
	}
	out := make([]int, 0, bits.OnesCount32(bestMask))
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			out = append(out, verts[i])
		}
	}
	return &Result{Vertices: out, K: k, Diameter: bestDiam}, nil
}

// connectedMask reports whether the vertices of mask form one connected
// induced subgraph (singleton masks are connected; empty is not).
func connectedMask(adj []uint32, mask uint32) bool {
	if mask == 0 {
		return false
	}
	start := uint32(1) << uint(bits.TrailingZeros32(mask))
	seen := start
	frontier := start
	for frontier != 0 {
		next := uint32(0)
		f := frontier
		for f != 0 {
			i := bits.TrailingZeros32(f)
			f &^= 1 << i
			next |= adj[i] & mask &^ seen
		}
		seen |= next
		frontier = next
	}
	return seen == mask
}

// peelToKTruss fills out with the adjacency of the maximal k-truss of the
// induced subgraph on mask: it repeatedly drops edges with fewer than k-2
// common neighbors until a fixpoint. It reports false if any mask vertex
// ends up isolated (an edgeless vertex cannot belong to a k-truss community
// for k >= 2; that vertex set is covered by a smaller mask).
func peelToKTruss(adj []uint32, mask uint32, k int32, out []uint32) bool {
	m := mask
	for m != 0 {
		i := bits.TrailingZeros32(m)
		m &^= 1 << i
		out[i] = adj[i] & mask
	}
	for changed := true; changed; {
		changed = false
		m = mask
		for m != 0 {
			i := bits.TrailingZeros32(m)
			m &^= 1 << i
			nb := out[i]
			for nb != 0 {
				j := bits.TrailingZeros32(nb)
				nb &^= 1 << j
				if j < i {
					continue
				}
				if int32(bits.OnesCount32(out[i]&out[j])) < k-2 {
					out[i] &^= 1 << j
					out[j] &^= 1 << i
					changed = true
				}
			}
		}
	}
	m = mask
	for m != 0 {
		i := bits.TrailingZeros32(m)
		m &^= 1 << i
		if out[i] == 0 {
			return false
		}
	}
	return true
}

// diameterMask computes the exact diameter of the induced subgraph by BFS
// from every member vertex.
func diameterMask(adj []uint32, mask uint32) int {
	diam := 0
	m := mask
	for m != 0 {
		i := bits.TrailingZeros32(m)
		m &^= 1 << i
		seen := uint32(1) << i
		frontier := seen
		depth := 0
		for seen != mask {
			next := uint32(0)
			f := frontier
			for f != 0 {
				j := bits.TrailingZeros32(f)
				f &^= 1 << j
				next |= adj[j] & mask &^ seen
			}
			if next == 0 {
				return math.MaxInt32 // disconnected (callers prevent this)
			}
			seen |= next
			frontier = next
			depth++
		}
		if depth > diam {
			diam = depth
		}
	}
	return diam
}
