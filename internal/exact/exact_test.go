package exact

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/truss"
)

// paperGraph is Figure 1(a); q1=0 q2=1 q3=2 v1=3 v2=4 v3=5 v4=6 v5=7
// p1=8 p2=9 p3=10 t=11.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 4}, {1, 3}, {1, 4}, {3, 4},
		{5, 6}, {5, 7}, {6, 7}, {2, 5}, {2, 6}, {2, 7},
		{1, 7}, {4, 7}, {1, 6}, {1, 5}, {3, 7},
		{2, 8}, {2, 9}, {2, 10}, {8, 9}, {8, 10}, {9, 10},
		{0, 11}, {11, 2},
	}
	return graph.FromEdges(12, edges)
}

func TestSolvePaperExample(t *testing.T) {
	// Example 1: the CTC for Q={q1,q2,q3} is the 4-truss of Figure 1(b)
	// with diameter 3 (and the paper notes it is optimal).
	g := paperGraph()
	res, err := Solve(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("k = %d, want 4", res.K)
	}
	if res.Diameter != 3 {
		t.Fatalf("optimal diameter = %d, want 3", res.Diameter)
	}
	for _, v := range res.Vertices {
		if v >= 8 && v <= 10 {
			t.Fatalf("optimal community contains free rider %d", v)
		}
	}
}

func TestSolveSingleQueryClique(t *testing.T) {
	// Q={q3}: the optimal 4-truss containing q3 alone is one of the two
	// diameter-1 4-cliques the paper mentions under Proposition 1.
	g := paperGraph()
	res, err := Solve(g, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || res.Diameter != 1 {
		t.Fatalf("k=%d diam=%d, want 4 and 1", res.K, res.Diameter)
	}
	if len(res.Vertices) != 4 {
		t.Fatalf("|V| = %d, want 4 (a 4-clique)", len(res.Vertices))
	}
}

func TestSolveInfeasible(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if _, err := Solve(g, []int{0, 2}); err == nil {
		t.Fatal("disconnected query should fail")
	}
}

func TestSolveTooLarge(t *testing.T) {
	// A 25-clique makes G0 exceed MaxVertices.
	b := graph.NewBuilder(25, 0)
	for u := 0; u < 25; u++ {
		for v := u + 1; v < 25; v++ {
			b.AddEdge(u, v)
		}
	}
	_, err := Solve(b.Build(), []int{0, 1})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestSolveMatchesNaiveOnRandom(t *testing.T) {
	// Cross-check the bitmask machinery against the graph package on a few
	// random instances: the result must be a connected k-truss containing Q
	// whose diameter the graph package agrees with.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(12, 0)
		b.EnsureVertex(11)
		for u := 0; u < 12; u++ {
			for v := u + 1; v < 12; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.Build()
		q := []int{rng.Intn(12), rng.Intn(12)}
		res, err := Solve(g, q)
		if err != nil {
			continue
		}
		// Rebuild the community the way the solver defines it: induce on the
		// winning vertex set inside the maximal k-truss, then peel back to a
		// k-truss, and verify the claimed properties with the independent
		// graph/truss machinery.
		d := truss.Decompose(g)
		level := truss.MaximalKTruss(g, d, res.K)
		sub := graph.InducedMutable(level, res.Vertices)
		sup := graph.MutableEdgeSupports(sub)
		truss.DropBelowSupport(sub, sup, res.K)
		if err := truss.VerifyCommunity(sub, res.K, q); err != nil {
			t.Fatalf("seed %d: exact result invalid: %v", seed, err)
		}
		if sub.N() != len(res.Vertices) {
			t.Fatalf("seed %d: peeling lost vertices (%d of %d)", seed, sub.N(), len(res.Vertices))
		}
		dm, ok := graph.Diameter(sub)
		if !ok || dm != res.Diameter {
			t.Fatalf("seed %d: diameter %d reported, graph says %d (ok=%v)", seed, res.Diameter, dm, ok)
		}
	}
}
