package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_counter", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("t_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every hot-path op must be a no-op on nil, so uninstrumented wiring
	// costs one branch.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	var tr *Tracer
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	_ = h.Snapshot()
	if cv.With("x") != nil {
		t.Fatal("nil CounterVec.With should return nil")
	}
	if hv.With("x") != nil {
		t.Fatal("nil HistogramVec.With should return nil")
	}
	tr.Observe(QueryRecord{Outcome: "ok"})
	if tr.SlowQueries() != nil {
		t.Fatal("nil tracer slowlog should be nil")
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil values should read 0")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (<= 1ms)
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(time.Second)            // +Inf bucket
	snap := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 1
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", snap.Sum, wantSum)
	}
}

func TestVecChildrenAndOverflow(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("t_vec_total", "labeled", "tenant")
	if cv.With("a") != cv.With("a") {
		t.Fatal("With must return the same child for the same value")
	}
	cv.f.vecMax = 3
	cv.With("a").Inc()
	cv.With("b").Inc()
	cv.With("c").Inc()
	// Past the cap: both land on the shared overflow child.
	cv.With("d").Inc()
	cv.With("e").Add(2)
	if got := cv.With("d").Value(); got != 3 {
		t.Fatalf("overflow child = %d, want 3", got)
	}
	if cv.With("d") != cv.With(VecOverflowLabel) {
		t.Fatal("overflowing values must share the overflow child")
	}

	hv := r.NewHistogramVec("t_vec_seconds", "labeled hist", "algo", []float64{1})
	hv.f.vecMax = 1
	hv.With("x").Observe(time.Second)
	hv.With("y").Observe(time.Second)
	if hv.With("y") != hv.With(VecOverflowLabel) {
		t.Fatal("histogram overflow must share the overflow child")
	}
}

func TestGaugeVecFunc(t *testing.T) {
	r := NewRegistry()
	gv := r.NewGaugeVecFunc("t_shard_epoch", "per-shard epoch", "shard")
	vals := []float64{3, 7}
	gv.With("0", func() float64 { return vals[0] })
	gv.With("1", func() float64 { return vals[1] })

	render := func() string {
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		return sb.String()
	}
	out := render()
	for _, want := range []string{
		"# TYPE t_shard_epoch gauge",
		`t_shard_epoch{shard="0"} 3`,
		`t_shard_epoch{shard="1"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Funcs are read at scrape time, not registration time.
	vals[0] = 11
	if out = render(); !strings.Contains(out, `t_shard_epoch{shard="0"} 11`) {
		t.Fatalf("scrape did not re-read func:\n%s", out)
	}
	// Re-registering a value replaces its fn.
	gv.With("1", func() float64 { return 99 })
	if out = render(); !strings.Contains(out, `t_shard_epoch{shard="1"} 99`) {
		t.Fatalf("re-registration did not replace fn:\n%s", out)
	}
	// Past the cap registrations are dropped, not aggregated.
	gv.f.vecMax = 2
	gv.With("2", func() float64 { return 1 })
	if out = render(); strings.Contains(out, `shard="2"`) {
		t.Fatalf("over-cap child should be dropped:\n%s", out)
	}
	// Nil-safety.
	var nilGV *GaugeVecFunc
	nilGV.With("x", func() float64 { return 1 })
	gv.With("ignored", nil)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.NewCounter("dup_total", "second")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	r.NewCounter("bad name!", "nope")
}

func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("race_total", "counter")
	h := r.NewHistogram("race_seconds", "hist", nil)
	hv := r.NewHistogramVec("race_vec_seconds", "vec", "algo", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algo := fmt.Sprintf("algo%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				hv.With(algo).Observe(time.Millisecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("scrape %d unparseable: %v\n%s", i, err, sb.String())
		}
		validateHistogramFamily(t, fams["race_seconds"], "race_seconds")
	}
	close(stop)
	wg.Wait()
}

// TestRecordZeroAlloc pins the hot-path contract: counter increments,
// gauge stores, histogram observations, resolved-vec observations and
// Tracer.Observe allocate nothing.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("za_total", "c")
	g := r.NewGauge("za_gauge", "g")
	h := r.NewHistogram("za_seconds", "h", nil)
	hv := r.NewHistogramVec("za_vec_seconds", "hv", "algo", nil)
	child := hv.With("LCTC")
	tr := NewTracer(r, TracerOptions{SlowThreshold: time.Hour})
	rec := QueryRecord{
		Algo: "LCTC", Outcome: "ok", Epoch: 3,
		Seed: time.Millisecond, Expand: time.Millisecond, Peel: time.Millisecond,
		Total: 3 * time.Millisecond,
	}
	tr.Observe(rec) // create the algo/tenant/outcome children once

	cases := []struct {
		name string
		fn   func()
	}{
		{"CounterInc", func() { c.Inc() }},
		{"GaugeSet", func() { g.Set(42) }},
		{"HistogramObserve", func() { h.Observe(time.Millisecond) }},
		{"VecResolvedObserve", func() { child.Observe(time.Millisecond) }},
		{"VecWithObserve", func() { hv.With("LCTC").Observe(time.Millisecond) }},
		{"TracerObserve", func() { tr.Observe(rec) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// TestSlowlogPushZeroAlloc: the slow path copies into a preallocated ring
// slot — recording a slow query allocates nothing either.
func TestSlowlogPushZeroAlloc(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, TracerOptions{SlowThreshold: time.Nanosecond})
	rec := QueryRecord{Algo: "Basic", Outcome: "ok", Total: time.Second, Time: time.Unix(0, 1)}
	tr.Observe(rec)
	if allocs := testing.AllocsPerRun(200, func() { tr.Observe(rec) }); allocs != 0 {
		t.Errorf("slow-path Observe allocates %.1f/op, want 0", allocs)
	}
}
